// Soak / stress suite (ctest label: "soak"): a 4-host star drives mixed
// injected/local traffic in both directions under the benchlib stress
// model (seeded DRAM contention + receiver preemption), with the hub
// draining through a 2-core receiver pool and LLC stashing toggled per
// run. The invariant under test is mailbox hygiene: at drain, no frame
// is left in any mailbox slice and every bank flag has returned to its
// owning sender — the "no mailbox leak" property that pooled, sharded
// banks must preserve under hostile timing.
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "benchlib/stress.hpp"
#include "benchlib/workloads.hpp"
#include "common/pump.hpp"
#include "common/rng.hpp"
#include "core/fabric.hpp"

namespace twochains::core {
namespace {

constexpr std::uint32_t kSpokes = 3;
constexpr std::uint32_t kToHubPerSpoke = 400;   // spoke -> hub
constexpr std::uint32_t kFromHubPerSpoke = 200; // hub -> spoke
constexpr std::uint64_t kSeed = 0x50AC;

FabricOptions SoakOptions(bool stashing, bool stealing) {
  FabricOptions options;
  options.hosts = kSpokes + 1;
  options.topology = Topology::kStar;
  options.hub = 0;
  options.runtime.banks = 4;
  options.runtime.mailboxes_per_bank = 4;
  options.runtime.mailbox_slot_bytes = KiB(64);
  options.runtime.sender_core = 2;  // keep sends off the hub's pool cores
  options.nic.stash_to_llc = stashing;
  options.runtime_overrides.assign(options.hosts, options.runtime);
  options.runtime_overrides[0].receiver_cores = 2;
  if (stealing) {
    // Hub pool steals aggressively (trigger 2-fresh / 1-armed) so the
    // stressed, skewed run exercises claim handoffs constantly.
    StealConfig steal;
    steal.enabled = true;
    steal.threshold = 1;
    steal.hysteresis = 1;
    options.runtime_overrides[0].steal = steal;
  }
  return options;
}

/// One seeded traffic pump: @p total mixed messages from @p rt to @p peer,
/// paced by flow control and the sender CPU. The caller owns @p pump and
/// must keep it alive while the engine runs.
void StartPump(Fabric& fabric, Runtime& rt, PeerId peer, std::uint32_t total,
               std::uint64_t seed, PumpLoop<>& pump) {
  struct PumpState {
    std::uint32_t sent = 0;
    Xoshiro256 rng;
    explicit PumpState(std::uint64_t s) : rng(s) {}
  };
  auto state = std::make_shared<PumpState>(seed);
  pump.Set([state, &fabric, &rt, peer, total, resume = pump.Handle()]() {
    if (state->sent >= total) return;
    if (!rt.HasFreeSlot(peer)) {
      rt.NotifyWhenSlotFree(peer, resume);
      return;
    }
    const std::uint64_t kind = state->rng.NextBelow(3);
    const std::string jam = kind == 0 ? "iput" : "ssum";
    const Invoke mode = kind == 2 ? Invoke::kLocal : Invoke::kInjected;
    const std::vector<std::uint64_t> args = {state->rng.NextBelow(128)};
    std::vector<std::uint8_t> usr(8 * (1 + state->rng.NextBelow(8)));
    for (std::size_t i = 0; i < usr.size(); i += 8) {
      const std::uint64_t v = state->rng.Next();
      std::memcpy(usr.data() + i, &v, 8);
    }
    auto receipt = rt.Send(peer, jam, mode, args, usr);
    ASSERT_TRUE(receipt.ok()) << receipt.status();
    ++state->sent;
    fabric.engine().ScheduleAfter(receipt->sender_cost, resume,
                                  "soak.send");
  });
  pump();
}

void RunSoak(bool stashing, bool stealing = false) {
  Fabric fabric(SoakOptions(stashing, stealing));
  auto package = bench::BuildBenchPackage();
  ASSERT_TRUE(package.ok()) << package.status();
  ASSERT_TRUE(fabric.LoadPackage(*package).ok());

  bench::StressConfig stress;
  stress.seed = kSeed;
  bench::ApplyStress(fabric, stress);

  // The steal variant skews the incast: spoke 1 pushes 3x the traffic,
  // backing up its affinity core while a sibling core idles.
  std::vector<std::uint32_t> to_hub(kSpokes + 1, kToHubPerSpoke);
  if (stealing) to_hub[1] = 3 * kToHubPerSpoke;

  std::vector<PumpLoop<>> pumps(2 * kSpokes);
  for (std::uint32_t s = 1; s <= kSpokes; ++s) {
    StartPump(fabric, fabric.runtime(s), *fabric.PeerIdFor(s, 0),
              to_hub[s], kSeed + 13 * s, pumps[2 * (s - 1)]);
    StartPump(fabric, fabric.runtime(0), *fabric.PeerIdFor(0, s),
              kFromHubPerSpoke, kSeed + 131 * s, pumps[2 * (s - 1) + 1]);
  }
  fabric.Run();
  bench::ClearStress(fabric);

  // Every message sent was delivered and executed.
  std::uint64_t hub_expect = 0;
  for (std::uint32_t s = 1; s <= kSpokes; ++s) hub_expect += to_hub[s];
  EXPECT_EQ(fabric.runtime(0).stats().messages_executed, hub_expect);
  for (std::uint32_t s = 1; s <= kSpokes; ++s) {
    EXPECT_EQ(fabric.runtime(s).stats().messages_executed,
              static_cast<std::uint64_t>(kFromHubPerSpoke));
  }

  // No mailbox leak: nothing in flight, every bank flag back home, and
  // every returned flag accounted to exactly one drainer — the
  // owner-drained + stolen-drained ledger must reconcile with the flag
  // counter on every host (a flag returned early or twice breaks it).
  for (std::uint32_t h = 0; h < fabric.size(); ++h) {
    Runtime& rt = fabric.runtime(h);
    EXPECT_EQ(rt.InFlightFrames(), 0u) << "host " << h;
    EXPECT_EQ(rt.stats().banks_drained_owner + rt.stats().banks_drained_stolen,
              rt.stats().bank_flags_returned)
        << "host " << h;
    for (PeerId p = 0; p < rt.peer_count(); ++p) {
      EXPECT_EQ(rt.ClosedSendBanks(p), 0u) << "host " << h << " peer " << p;
      EXPECT_TRUE(rt.HasFreeSlot(p)) << "host " << h << " peer " << p;
    }
    for (std::uint32_t c = 0; c < rt.receiver_pool_size(); ++c) {
      EXPECT_EQ(rt.StolenBanksHeld(c), 0u) << "host " << h << " core " << c;
    }
  }
  if (stealing) {
    // The skew really drove the contended path: banks were stolen, and
    // some were drained to flag return by their thief.
    EXPECT_GT(fabric.runtime(0).stats().steals, 0u);
    EXPECT_GT(fabric.runtime(0).stats().banks_drained_stolen, 0u);
  } else {
    EXPECT_EQ(fabric.runtime(0).stats().steals, 0u);
    EXPECT_EQ(fabric.runtime(0).stats().banks_drained_stolen, 0u);
  }

  // Flag traffic really happened (the invariant is not vacuous): each
  // spoke filled many banks toward the hub.
  const auto& hub_peers = fabric.runtime(0).stats().per_peer;
  ASSERT_EQ(hub_peers.size(), kSpokes);
  for (const PeerStats& p : hub_peers) {
    EXPECT_GE(p.bank_flags_returned, kToHubPerSpoke / 4 - 4);
  }
}

TEST(SoakTest, MixedTrafficWithStashingDrainsClean) { RunSoak(true); }

TEST(SoakTest, MixedTrafficWithoutStashingDrainsClean) { RunSoak(false); }

// Steal-mode soak: the same stressed star with a skewed incast and the
// hub pool stealing. Mailbox hygiene must survive constant claim
// handoffs, and the drained-bank ledger must reconcile exactly.
TEST(SoakTest, SkewedStealingPoolDrainsClean) {
  RunSoak(true, /*stealing=*/true);
}

}  // namespace
}  // namespace twochains::core
