// Tests for the UCX shim: protocol selection/thresholds, overhead shape,
// window-limited pipelining in kUcx mode, flush semantics, and the kUser
// bypass that Two-Chains uses.
#include <gtest/gtest.h>

#include "net/host.hpp"
#include "net/nic.hpp"
#include "sim/engine.hpp"
#include "ucxs/ucxs.hpp"

namespace twochains::ucxs {
namespace {

class UcxsTest : public ::testing::Test {
 protected:
  UcxsTest()
      : host0_(HostCfg(0)), host1_(HostCfg(1)),
        nic0_(engine_, host0_, net::NicConfig{}),
        nic1_(engine_, host1_, net::NicConfig{}),
        ctx0_(engine_, host0_, nic0_),
        worker0_(ctx0_) {
    EXPECT_TRUE(nic0_.ConnectTo(nic1_).ok());
    auto dst = host1_.memory().Allocate(MiB(1), 64, mem::Perm::kRW, "dst");
    EXPECT_TRUE(dst.ok());
    dst_ = *dst;
    auto key = host1_.regions().RegisterRegion(dst_, MiB(1),
                                               mem::RemoteAccess::kWrite,
                                               "dst");
    EXPECT_TRUE(key.ok());
    rkey_ = *key;
    auto src = host0_.memory().Allocate(MiB(1), 64, mem::Perm::kRW, "src");
    EXPECT_TRUE(src.ok());
    src_ = *src;
  }

  static net::HostConfig HostCfg(int id) {
    net::HostConfig cfg;
    cfg.host_id = id;
    cfg.memory_bytes = MiB(8);
    return cfg;
  }

  sim::Engine engine_;
  net::Host host0_, host1_;
  net::Nic nic0_, nic1_;
  Context ctx0_;
  Worker worker0_;
  mem::VirtAddr dst_ = 0, src_ = 0;
  mem::RKey rkey_;
};

TEST_F(UcxsTest, ProtocolThresholds) {
  Endpoint ep(worker0_, PutMode::kUser);
  const ProtocolConfig& cfg = ctx0_.config();
  EXPECT_EQ(ep.SelectProtocol(64), Protocol::kShort);
  EXPECT_EQ(ep.SelectProtocol(cfg.short_max), Protocol::kShort);
  EXPECT_EQ(ep.SelectProtocol(cfg.short_max + 1), Protocol::kBcopy);
  EXPECT_EQ(ep.SelectProtocol(cfg.bcopy_max), Protocol::kBcopy);
  EXPECT_EQ(ep.SelectProtocol(cfg.bcopy_max + 1), Protocol::kZcopy);
  EXPECT_EQ(ep.SelectProtocol(cfg.zcopy_max), Protocol::kZcopy);
  EXPECT_EQ(ep.SelectProtocol(cfg.zcopy_max + 1), Protocol::kRndv);
  EXPECT_EQ(ep.SelectProtocol(MiB(1)), Protocol::kRndv);
}

TEST_F(UcxsTest, ThresholdsPlacedForInjectedFrameBumps) {
  // The defaults must make the paper's Indirect Put Injected frames cross
  // protocols at the 8-int and 256-int payloads (Fig. 7's bumps):
  // frame(n ints) ~ 1472 + 64 * ceil stuff; we check the intent directly:
  Endpoint ep(worker0_, PutMode::kUser);
  EXPECT_EQ(ep.SelectProtocol(1472), Protocol::kBcopy);   // 1-int injected
  EXPECT_EQ(ep.SelectProtocol(1536), Protocol::kZcopy);   // 8-int injected
  EXPECT_EQ(ep.SelectProtocol(2496), Protocol::kRndv);    // 256-int injected
  EXPECT_EQ(ep.SelectProtocol(64), Protocol::kShort);     // 1-int local
}

TEST_F(UcxsTest, JustCrossedThresholdCostsMore) {
  // A message 1 byte over a threshold pays more setup than one at the
  // threshold — the "just within the acceptable range" penalty.
  Endpoint ep(worker0_, PutMode::kUser);
  const ProtocolConfig& cfg = ctx0_.config();
  EXPECT_GT(ep.EstimateOverhead(cfg.bcopy_max + 1),
            ep.EstimateOverhead(cfg.bcopy_max));
  EXPECT_GT(ep.EstimateOverhead(cfg.zcopy_max + 1),
            ep.EstimateOverhead(cfg.zcopy_max));
}

TEST_F(UcxsTest, UcxModeCostsMoreThanUserMode) {
  Endpoint ucx(worker0_, PutMode::kUcx);
  Endpoint user(worker0_, PutMode::kUser);
  for (std::uint64_t size : {64ull, 1024ull, 16384ull}) {
    EXPECT_GT(ucx.EstimateOverhead(size), user.EstimateOverhead(size));
  }
}

TEST_F(UcxsTest, PutDeliversThroughNic) {
  Endpoint ep(worker0_, PutMode::kUser);
  ASSERT_TRUE(host0_.memory().StoreU64(src_, 0xABCD).ok());
  bool delivered = false;
  auto receipt = ep.PutNbi(src_, dst_, 8, rkey_, false,
                           [&](const net::PutCompletion& c) {
                             EXPECT_TRUE(c.status.ok());
                             delivered = true;
                           });
  ASSERT_TRUE(receipt.ok()) << receipt.status();
  EXPECT_FALSE(receipt->queued);
  engine_.Run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(host1_.memory().LoadU64(dst_).value(), 0xABCDu);
  EXPECT_EQ(worker0_.ops_posted(), 1u);
  EXPECT_EQ(worker0_.ops_completed(), 1u);
}

TEST_F(UcxsTest, InlinePut) {
  Endpoint ep(worker0_, PutMode::kUser);
  auto receipt = ep.PutInline(0x77, dst_ + 64, rkey_);
  ASSERT_TRUE(receipt.ok());
  engine_.Run();
  EXPECT_EQ(host1_.memory().LoadU64(dst_ + 64).value(), 0x77u);
}

TEST_F(UcxsTest, WindowQueuesBeyondMaxOutstanding) {
  Endpoint ep(worker0_, PutMode::kUcx);
  const auto window = ctx0_.config().max_outstanding;
  int queued = 0;
  int posted = 0;
  for (std::uint32_t i = 0; i < window + 8; ++i) {
    auto receipt = ep.PutNbi(src_, dst_ + 64ull * i, 64, rkey_);
    ASSERT_TRUE(receipt.ok());
    (receipt->queued ? queued : posted)++;
  }
  EXPECT_EQ(posted, static_cast<int>(window));
  EXPECT_EQ(queued, 8);
  engine_.Run();
  // Everything eventually delivered.
  EXPECT_EQ(worker0_.ops_completed(), window + 8);
  EXPECT_EQ(ep.outstanding(), 0u);
}

TEST_F(UcxsTest, UserModeHasNoWindow) {
  Endpoint ep(worker0_, PutMode::kUser);
  for (std::uint32_t i = 0; i < 64; ++i) {
    auto receipt = ep.PutNbi(src_, dst_ + 64ull * i, 64, rkey_);
    ASSERT_TRUE(receipt.ok());
    EXPECT_FALSE(receipt->queued);
  }
  engine_.Run();
  EXPECT_EQ(worker0_.ops_completed(), 64u);
}

TEST_F(UcxsTest, FlushWaitsForAllOps) {
  Endpoint ep(worker0_, PutMode::kUcx);
  for (int i = 0; i < 24; ++i) {
    ASSERT_TRUE(ep.PutNbi(src_, dst_ + 64ull * i, 64, rkey_).ok());
  }
  bool flushed = false;
  ep.Flush([&] {
    flushed = true;
    EXPECT_EQ(ep.outstanding(), 0u);
  });
  EXPECT_FALSE(flushed);
  engine_.Run();
  EXPECT_TRUE(flushed);
}

TEST_F(UcxsTest, FlushOnIdleEndpointFiresImmediately) {
  Endpoint ep(worker0_, PutMode::kUser);
  bool flushed = false;
  ep.Flush([&] { flushed = true; });
  EXPECT_TRUE(flushed);
}

TEST_F(UcxsTest, ZeroSizeRejected) {
  Endpoint ep(worker0_, PutMode::kUser);
  EXPECT_EQ(ep.PutNbi(src_, dst_, 0, rkey_).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(UcxsTest, BcopyScalesWithSize) {
  Endpoint ep(worker0_, PutMode::kUser);
  // Within bcopy, overhead grows with bytes copied through the bounce
  // buffer.
  EXPECT_GT(ep.EstimateOverhead(1400), ep.EstimateOverhead(300));
}

TEST_F(UcxsTest, ProtocolNames) {
  EXPECT_EQ(ProtocolName(Protocol::kShort), "short");
  EXPECT_EQ(ProtocolName(Protocol::kBcopy), "bcopy");
  EXPECT_EQ(ProtocolName(Protocol::kZcopy), "zcopy");
  EXPECT_EQ(ProtocolName(Protocol::kRndv), "rndv");
}

}  // namespace
}  // namespace twochains::ucxs
