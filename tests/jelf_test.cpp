// Tests for the JELF toolchain layer: static linking, the GOT rewrite,
// serialization round trips, dynamic loading with namespace binding, and
// library hot-swap rebinding — the remote-linking machinery of §III.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cache/hierarchy.hpp"
#include "common/units.hpp"
#include "jamvm/assembler.hpp"
#include "jamvm/interpreter.hpp"
#include "jamvm/isa.hpp"
#include "jelf/format.hpp"
#include "jelf/got_rewriter.hpp"
#include "jelf/image.hpp"
#include "jelf/linker.hpp"
#include "jelf/loader.hpp"
#include "mem/host_memory.hpp"

namespace twochains::jelf {
namespace {

vm::ObjectCode MustAssemble(const std::string& src,
                            const std::string& name = "<test>") {
  auto obj = vm::Assemble(src, name);
  EXPECT_TRUE(obj.ok()) << obj.status();
  return std::move(obj).value();
}

LinkedImage MustLink(std::vector<vm::ObjectCode> objects,
                     LinkOptions options = {}) {
  auto image = Link(objects, options);
  EXPECT_TRUE(image.ok()) << image.status();
  return std::move(image).value();
}

// ----------------------------------------------------------------- link

TEST(LinkerTest, SingleObjectExports) {
  auto image = MustLink({MustAssemble(R"(
    .global f
    f:
      addi a0, a0, 1
      ret
  )")});
  ASSERT_TRUE(image.exports.contains("f"));
  EXPECT_EQ(image.exports.at("f").offset, 0u);
  EXPECT_EQ(image.got_slot_count(), 0u);
  EXPECT_TRUE(image.page_aligned);
  EXPECT_EQ(image.total_size % mem::kPageSize, 0u);
}

TEST(LinkerTest, CrossObjectPcrelIsAnErrorWithoutGot) {
  // Direct (PC-relative) calls to symbols in other objects are forbidden:
  // externals must go through the GOT, as the paper's -fno-plt flow forces.
  auto caller = MustAssemble(R"(
    .extern callee
    .global f
    f:
      call callee
      ret
  )", "caller.s");
  auto callee = MustAssemble(R"(
    .global callee
    callee: ret
  )", "callee.s");
  // The assembler emitted a pcrel reloc (call to undefined symbol)... which
  // links fine when the definition exists in the link set:
  auto both = Link(std::vector<vm::ObjectCode>{caller, callee}, {});
  EXPECT_TRUE(both.ok());
  // ...but fails when it does not.
  auto lone = Link(std::vector<vm::ObjectCode>{caller}, {});
  ASSERT_FALSE(lone.ok());
  EXPECT_EQ(lone.status().code(), StatusCode::kNotFound);
  EXPECT_NE(lone.status().message().find("GOT"), std::string::npos);
}

TEST(LinkerTest, GotSlotsAssignedPerUniqueSymbol) {
  auto image = MustLink({MustAssemble(R"(
    .extern alpha
    .extern beta
    .global f
    f:
      ldg t0, @alpha
      ldg t1, @beta
      ldg t2, @alpha     ; same slot as the first
      ret
  )")});
  ASSERT_EQ(image.got_slot_count(), 2u);
  EXPECT_EQ(image.got_symbols[0], "alpha");
  EXPECT_EQ(image.got_symbols[1], "beta");
  // Instruction 0 and 2 must point at slot 0, instruction 1 at slot 1.
  const auto i0 = vm::Decode(image.text.data());
  const auto i1 = vm::Decode(image.text.data() + 8);
  const auto i2 = vm::Decode(image.text.data() + 16);
  ASSERT_TRUE(i0 && i1 && i2);
  EXPECT_EQ(static_cast<std::uint64_t>(0 + i0->imm), image.got_offset);
  EXPECT_EQ(static_cast<std::uint64_t>(8 + i1->imm), image.got_offset + 8);
  EXPECT_EQ(static_cast<std::uint64_t>(16 + i2->imm), image.got_offset);
}

TEST(LinkerTest, DuplicateGlobalSymbolRejected) {
  auto a = MustAssemble(".global f\nf: ret", "a.s");
  auto b = MustAssemble(".global f\nf: ret", "b.s");
  auto image = Link(std::vector<vm::ObjectCode>{a, b}, {});
  ASSERT_FALSE(image.ok());
  EXPECT_EQ(image.status().code(), StatusCode::kAlreadyExists);
}

TEST(LinkerTest, LocalSymbolsDoNotCollideAcrossObjects) {
  auto a = MustAssemble(R"(
    .global fa
    fa:
    .here:
      jmp .here
  )", "a.s");
  auto b = MustAssemble(R"(
    .global fb
    fb:
    .here:
      jmp .here
  )", "b.s");
  EXPECT_TRUE(Link(std::vector<vm::ObjectCode>{a, b}, {}).ok());
}

TEST(LinkerTest, RodataLeaResolvesAcrossSections) {
  auto image = MustLink({MustAssemble(R"(
    .rodata
    blob: .quad 0x1122334455667788
    .text
    .global f
    f:
      lea t0, blob
      ldd a0, [t0]
      ret
  )")});
  const auto lea = vm::Decode(image.text.data());
  ASSERT_TRUE(lea.has_value());
  const std::uint64_t target = 0 + static_cast<std::uint64_t>(lea->imm);
  EXPECT_EQ(target, image.rodata_offset);
}

TEST(LinkerTest, JamOptionsForbidWritableData) {
  LinkOptions jam_opts;
  jam_opts.page_align_sections = false;
  jam_opts.forbid_writable_data = true;
  auto with_data = vm::Assemble(".data\ng: .quad 0\n.text\nf: ret");
  ASSERT_TRUE(with_data.ok());
  auto image = Link(std::vector<vm::ObjectCode>{*with_data}, jam_opts);
  ASSERT_FALSE(image.ok());
  EXPECT_EQ(image.status().code(), StatusCode::kInvalidArgument);
}

TEST(LinkerTest, CompactLayoutForJams) {
  LinkOptions jam_opts;
  jam_opts.page_align_sections = false;
  auto image = MustLink({MustAssemble(R"(
    .rodata
    s: .asciz "x"
    .text
    .global f
    f:
      lea a0, s
      ret
  )")}, jam_opts);
  EXPECT_FALSE(image.page_aligned);
  // Compact: rodata within 16 bytes after text, not a page away.
  EXPECT_LE(image.rodata_offset, image.text.size() + 16);
}

TEST(LinkerTest, EmptyLinkRejected) {
  EXPECT_EQ(Link({}, {}).status().code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------------- layout validate

// A well-formed image exercising every section: rodata, a GOT slot, and
// writable data. Tests below mutate one field at a time and expect
// ValidateImageLayout to call out exactly that corruption — the same gate
// the runtime runs over attacker-supplied package layouts.
LinkedImage LayoutFixture() {
  return MustLink({MustAssemble(R"(
    .extern ext
    .rodata
    blob: .quad 0x1122334455667788
    .data
    g: .quad 2
    .text
    .global f
    f:
      lea t0, blob
      ldg t1, @ext
      ret
  )")});
}

TEST(LayoutValidationTest, WellFormedImageAccepted) {
  const LinkedImage image = LayoutFixture();
  ASSERT_GT(image.rodata.size(), 0u);
  ASSERT_GT(image.got_slot_count(), 0u);
  ASSERT_GT(image.data.size(), 0u);
  EXPECT_TRUE(ValidateImageLayout(image).ok());
}

TEST(LayoutValidationTest, RodataOverlappingTextRejected) {
  LinkedImage image = LayoutFixture();
  image.rodata_offset = image.text.size() / 2;
  const Status status = ValidateImageLayout(image);
  ASSERT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("overlaps text"), std::string::npos);
}

TEST(LayoutValidationTest, RodataOverlappingGotRejected) {
  LinkedImage image = LayoutFixture();
  image.got_offset = image.rodata_offset;  // GOT lands on top of rodata
  const Status status = ValidateImageLayout(image);
  ASSERT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("overlaps the GOT"), std::string::npos);
}

TEST(LayoutValidationTest, GotOverlappingDataRejected) {
  LinkedImage image = LayoutFixture();
  image.data_offset = image.got_offset;  // data lands on top of the GOT
  const Status status = ValidateImageLayout(image);
  ASSERT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("overlaps data"), std::string::npos);
}

TEST(LayoutValidationTest, DataExceedingTotalSizeRejected) {
  LinkedImage image = LayoutFixture();
  image.total_size = image.data_offset + image.data.size() - 1;
  const Status status = ValidateImageLayout(image);
  ASSERT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("exceeds total_size"), std::string::npos);

  // And the wrap bait: total_size below data_offset must not underflow the
  // subtraction into a huge "remaining" budget.
  image.total_size = image.data_offset - 1;
  EXPECT_EQ(ValidateImageLayout(image).code(), StatusCode::kInvalidArgument);
}

TEST(LayoutValidationTest, ExportOutsideImageRejected) {
  LinkedImage image = LayoutFixture();
  image.exports["rogue"].offset = image.total_size;
  const Status status = ValidateImageLayout(image);
  ASSERT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("export 'rogue'"), std::string::npos);
}

TEST(LayoutValidationTest, FixupSlotOutsideImageRejected) {
  LinkedImage image = LayoutFixture();
  LoadFixup rogue;
  rogue.image_offset = image.total_size - 4;  // 8-byte slot straddles end
  image.fixups.push_back(rogue);
  const Status status = ValidateImageLayout(image);
  ASSERT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("fixup slot"), std::string::npos);
}

TEST(LayoutValidationTest, InternalFixupTargetOutsideImageRejected) {
  LinkedImage image = LayoutFixture();
  LoadFixup rogue;
  rogue.image_offset = image.got_offset;  // slot itself is fine
  rogue.internal = true;
  rogue.target_offset = image.total_size;  // target is not
  image.fixups.push_back(rogue);
  const Status status = ValidateImageLayout(image);
  ASSERT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("fixup target"), std::string::npos);
}

// ------------------------------------------------------------- rewriter

TEST(GotRewriterTest, RewritesFixToPre) {
  LinkOptions jam_opts;
  jam_opts.page_align_sections = false;
  auto image = MustLink({MustAssemble(R"(
    .extern helper
    .extern other
    .global f
    f:
      ldg t0, @helper
      ldg t1, @other
      ret
  )")}, jam_opts);
  ASSERT_FALSE(IsFullyRewritten(image));
  auto stats = RewriteGotAccesses(image);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->rewritten, 2u);
  EXPECT_TRUE(IsFullyRewritten(image));

  const auto i0 = vm::Decode(image.text.data());
  const auto i1 = vm::Decode(image.text.data() + 8);
  ASSERT_TRUE(i0 && i1);
  EXPECT_EQ(i0->op, vm::Opcode::kLdgPre);
  EXPECT_EQ(i0->rs2, 0);  // slot of 'helper'
  EXPECT_EQ(i1->rs2, 1);  // slot of 'other'
  // Both point at the preamble slot 16 bytes before code start.
  EXPECT_EQ(i0->imm, kPreambleSlotOffset - 0);
  EXPECT_EQ(i1->imm, kPreambleSlotOffset - 8);
}

TEST(GotRewriterTest, IdempotentOnRewrittenImage) {
  LinkOptions jam_opts;
  jam_opts.page_align_sections = false;
  auto image = MustLink({MustAssemble(R"(
    .extern helper
    f:
      ldg t0, @helper
      ret
  )")}, jam_opts);
  ASSERT_TRUE(RewriteGotAccesses(image).ok());
  auto again = RewriteGotAccesses(image);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->rewritten, 0u);
}

// --------------------------------------------------------------- format

TEST(FormatTest, ObjectRoundTrip) {
  auto obj = MustAssemble(R"(
    .extern helper
    .rodata
    s: .asciz "two-chains"
    .data
    g: .quad s
    .text
    .global f
    f:
      ldg t0, @helper
      lea a0, s
      ret
  )", "roundtrip.s");
  const auto bytes = SerializeObject(obj);
  auto parsed = ParseObject(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->source_name, obj.source_name);
  EXPECT_EQ(parsed->text, obj.text);
  EXPECT_EQ(parsed->rodata, obj.rodata);
  EXPECT_EQ(parsed->data, obj.data);
  EXPECT_EQ(parsed->symbols.size(), obj.symbols.size());
  EXPECT_EQ(parsed->relocs.size(), obj.relocs.size());
  for (std::size_t i = 0; i < obj.relocs.size(); ++i) {
    EXPECT_EQ(parsed->relocs[i].kind, obj.relocs[i].kind);
    EXPECT_EQ(parsed->relocs[i].symbol, obj.relocs[i].symbol);
    EXPECT_EQ(parsed->relocs[i].offset, obj.relocs[i].offset);
  }
}

TEST(FormatTest, ImageRoundTrip) {
  auto image = MustLink({MustAssemble(R"(
    .extern helper
    .global f
    f:
      ldg t0, @helper
      ret
  )")});
  const auto bytes = SerializeImage(image);
  auto parsed = ParseImage(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->name, image.name);
  EXPECT_EQ(parsed->text, image.text);
  EXPECT_EQ(parsed->got_symbols, image.got_symbols);
  EXPECT_EQ(parsed->got_offset, image.got_offset);
  EXPECT_EQ(parsed->total_size, image.total_size);
  EXPECT_EQ(parsed->exports.size(), image.exports.size());
}

TEST(FormatTest, CorruptionDetected) {
  auto obj = MustAssemble("f: ret");
  auto bytes = SerializeObject(obj);
  bytes[0] ^= 0xFF;  // break magic
  EXPECT_EQ(ParseObject(bytes).status().code(), StatusCode::kDataLoss);

  auto good = SerializeObject(obj);
  good.resize(good.size() / 2);  // truncate
  EXPECT_EQ(ParseObject(good).status().code(), StatusCode::kDataLoss);

  // Wrong record type.
  auto image = MustLink({obj});
  EXPECT_EQ(ParseObject(SerializeImage(image)).status().code(),
            StatusCode::kDataLoss);
}

// --------------------------------------------------------------- loader

class LoaderTest : public ::testing::Test {
 protected:
  LoaderTest() : mem_(0, MiB(16)), caches_(CacheConfig()) {}

  static cache::HierarchyConfig CacheConfig() {
    cache::HierarchyConfig cfg;
    cfg.l1 = {"L1", KiB(16), 4, 2};
    cfg.l2 = {"L2", KiB(64), 8, 12};
    cfg.l3 = {"L3", KiB(128), 16, 30};
    cfg.llc = {"LLC", KiB(256), 16, 55};
    return cfg;
  }

  std::uint64_t RunFunction(mem::VirtAddr entry,
                            std::vector<std::uint64_t> args,
                            const vm::NativeTable* natives = nullptr) {
    auto stack = mem_.Allocate(KiB(64), 16, mem::Perm::kRW, "stack");
    EXPECT_TRUE(stack.ok());
    vm::Interpreter interp(mem_, caches_, 0, natives);
    const auto r = interp.Execute(entry, args, *stack + KiB(64));
    EXPECT_TRUE(r.status.ok()) << r.status;
    return r.return_value;
  }

  mem::HostMemory mem_;
  cache::CacheHierarchy caches_;
  HostNamespace ns_;
};

TEST_F(LoaderTest, LoadBindExecute) {
  // Library A exports add5; library B calls it through the GOT.
  auto lib_a = MustLink({MustAssemble(R"(
    .global add5
    add5:
      addi a0, a0, 5
      ret
  )", "a.s")}, {.image_name = "liba"});
  auto lib_b = MustLink({MustAssemble(R"(
    .extern add5
    .global calls_add5
    calls_add5:
      addi sp, sp, -16
      std lr, [sp]
      ldg t0, @add5
      jalr lr, t0, 0
      ldd lr, [sp]
      addi sp, sp, 16
      addi a0, a0, 100
      ret
  )", "b.s")}, {.image_name = "libb"});

  auto loaded_a = LoadLibrary(mem_, lib_a, ns_);
  ASSERT_TRUE(loaded_a.ok()) << loaded_a.status();
  auto loaded_b = LoadLibrary(mem_, lib_b, ns_);
  ASSERT_TRUE(loaded_b.ok()) << loaded_b.status();

  EXPECT_EQ(RunFunction(loaded_b->exports.at("calls_add5"), {1}), 106u);
}

TEST_F(LoaderTest, SectionPermissionsEnforced) {
  auto lib = MustLink({MustAssemble(R"(
    .rodata
    r: .quad 7
    .data
    d: .quad 9
    .global f
    .text
    f: ret
  )", "perm.s")}, {.image_name = "libperm"});
  auto loaded = LoadLibrary(mem_, lib, ns_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  // text page: r-x ; rodata page: r-- ; data page: rw-.
  EXPECT_EQ(mem_.PagePerms(loaded->base).value(), mem::Perm::kRX);
  EXPECT_EQ(mem_.PagePerms(loaded->base + lib.rodata_offset).value(),
            mem::Perm::kRead);
  EXPECT_EQ(mem_.PagePerms(loaded->base + lib.data_offset).value(),
            mem::Perm::kRW);
  // And the data fixup-free values actually landed.
  EXPECT_EQ(mem_.LoadU64(loaded->base + lib.rodata_offset).value(), 7u);
  EXPECT_EQ(mem_.LoadU64(loaded->base + lib.data_offset).value(), 9u);
}

TEST_F(LoaderTest, GotReadOnlyOption) {
  auto lib = MustLink({MustAssemble(R"(
    .extern ext
    .global f
    f:
      ldg t0, @ext
      ret
  )", "g.s")}, {.image_name = "libro"});
  ASSERT_TRUE(ns_.Define("ext", 0xABC).ok());
  LoadOptions opts;
  opts.got_read_only = true;
  auto loaded = LoadLibrary(mem_, lib, ns_, opts);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(mem_.PagePerms(loaded->got_addr).value(), mem::Perm::kRead);
  EXPECT_EQ(mem_.LoadU64(loaded->got_addr).value(), 0xABCu);
  // Direct CPU stores to the sealed GOT are denied (the §V GOT-overwrite
  // mitigation).
  EXPECT_EQ(mem_.StoreU64(loaded->got_addr, 0xBAD).code(),
            StatusCode::kPermissionDenied);
}

TEST_F(LoaderTest, UnresolvedSymbolFailsAndRollsBack) {
  auto lib = MustLink({MustAssemble(R"(
    .extern missing
    .global f
    f:
      ldg t0, @missing
      ret
  )", "u.s")}, {.image_name = "libu"});
  const auto before = mem_.allocated_bytes();
  auto loaded = LoadLibrary(mem_, lib, ns_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(mem_.allocated_bytes(), before);   // allocation rolled back
  EXPECT_FALSE(ns_.Contains("f"));             // exports rolled back
}

TEST_F(LoaderTest, DuplicateExportRejectedWithoutOverride) {
  auto lib1 = MustLink({MustAssemble(".global f\nf: ret", "1.s")},
                       {.image_name = "lib1"});
  auto lib2 = MustLink({MustAssemble(".global f\nf: ret", "2.s")},
                       {.image_name = "lib2"});
  ASSERT_TRUE(LoadLibrary(mem_, lib1, ns_).ok());
  auto second = LoadLibrary(mem_, lib2, ns_);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kAlreadyExists);
  LoadOptions override_opts;
  override_opts.allow_export_override = true;
  EXPECT_TRUE(LoadLibrary(mem_, lib2, ns_, override_opts).ok());
}

TEST_F(LoaderTest, HotSwapWithRebindChangesBehavior) {
  // The remote-update story (§III): load v1, bind a caller, hot-swap v2,
  // rebind, and the same call site now runs the new code.
  auto v1 = MustLink({MustAssemble(R"(
    .global impl
    impl:
      movi a0, 1
      ret
  )", "v1.s")}, {.image_name = "impl_v1"});
  auto v2 = MustLink({MustAssemble(R"(
    .global impl
    impl:
      movi a0, 2
      ret
  )", "v2.s")}, {.image_name = "impl_v2"});
  auto caller = MustLink({MustAssemble(R"(
    .extern impl
    .global call_impl
    call_impl:
      addi sp, sp, -16
      std lr, [sp]
      ldg t0, @impl
      jalr lr, t0, 0
      ldd lr, [sp]
      addi sp, sp, 16
      ret
  )", "caller.s")}, {.image_name = "caller"});

  ASSERT_TRUE(LoadLibrary(mem_, v1, ns_).ok());
  auto loaded_caller = LoadLibrary(mem_, caller, ns_);
  ASSERT_TRUE(loaded_caller.ok());
  const auto entry = loaded_caller->exports.at("call_impl");
  EXPECT_EQ(RunFunction(entry, {}), 1u);

  LoadOptions swap;
  swap.allow_export_override = true;
  ASSERT_TRUE(LoadLibrary(mem_, v2, ns_, swap).ok());
  // Old binding still in the caller's GOT until rebind.
  EXPECT_EQ(RunFunction(entry, {}), 1u);
  ASSERT_TRUE(RebindGot(mem_, *loaded_caller, ns_).ok());
  EXPECT_EQ(RunFunction(entry, {}), 2u);
}

TEST_F(LoaderTest, NativeSymbolsBindThroughNamespace) {
  vm::NativeTable natives;
  ASSERT_TRUE(vm::RegisterStandardNatives(natives, {}).ok());
  const auto idx = natives.IndexOf("tc_hash64");
  ASSERT_TRUE(idx.ok());
  ASSERT_TRUE(ns_.Define("tc_hash64", vm::MakeNativeHandle(*idx)).ok());

  auto lib = MustLink({MustAssemble(R"(
    .extern tc_hash64
    .global hash_it
    hash_it:
      addi sp, sp, -16
      std lr, [sp]
      ldg t0, @tc_hash64
      jalr lr, t0, 0
      ldd lr, [sp]
      addi sp, sp, 16
      ret
  )", "n.s")}, {.image_name = "libn"});
  auto loaded = LoadLibrary(mem_, lib, ns_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const auto h = RunFunction(loaded->exports.at("hash_it"), {42}, &natives);
  EXPECT_NE(h, 42u);  // mixed
}

TEST(NamespaceTest, DefineLookupRemove) {
  HostNamespace ns;
  EXPECT_TRUE(ns.Define("a", 1).ok());
  EXPECT_EQ(ns.Define("a", 2).code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(ns.Define("a", 2, /*allow_redefine=*/true).ok());
  EXPECT_EQ(ns.Lookup("a").value(), 2u);
  EXPECT_EQ(ns.Lookup("b").status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(ns.Remove("a").ok());
  EXPECT_EQ(ns.Remove("a").code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace twochains::jelf
