// Tests for the RDMA NIC/link model: put pipeline timing, functional
// delivery, rkey enforcement at the HCA, ordering/fences, stash vs DRAM
// delivery, and the out-of-band control channel.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "net/host.hpp"
#include "net/nic.hpp"
#include "sim/engine.hpp"

namespace twochains::net {
namespace {

class NetTest : public ::testing::Test {
 protected:
  NetTest()
      : host0_(MakeHost(0)), host1_(MakeHost(1)),
        nic0_(engine_, host0_, NicConfig{}),
        nic1_(engine_, host1_, NicConfig{}) {
    EXPECT_TRUE(nic0_.ConnectTo(nic1_).ok());
  }

  static HostConfig MakeHostConfig(int id) {
    HostConfig cfg;
    cfg.host_id = id;
    cfg.memory_bytes = MiB(16);
    return cfg;
  }
  Host MakeHost(int id) { return Host(MakeHostConfig(id)); }

  /// Allocates a buffer on @p host, RDMA-registers it for write, returns
  /// (addr, rkey).
  std::pair<mem::VirtAddr, mem::RKey> MakeTarget(Host& host,
                                                 std::uint64_t size) {
    auto addr = host.memory().Allocate(size, 64, mem::Perm::kRW, "target");
    EXPECT_TRUE(addr.ok());
    auto key = host.regions().RegisterRegion(*addr, size,
                                             mem::RemoteAccess::kWrite, "t");
    EXPECT_TRUE(key.ok());
    return {*addr, *key};
  }

  mem::VirtAddr MakeSource(Host& host, std::vector<std::uint8_t> data) {
    auto addr =
        host.memory().Allocate(data.size(), 64, mem::Perm::kRW, "src");
    EXPECT_TRUE(addr.ok());
    EXPECT_TRUE(host.memory().Write(*addr, data).ok());
    return *addr;
  }

  sim::Engine engine_;
  Host host0_;
  Host host1_;
  Nic nic0_;
  Nic nic1_;
};

TEST_F(NetTest, PutMovesBytes) {
  auto [dst, rkey] = MakeTarget(host1_, 4096);
  const std::vector<std::uint8_t> payload = {0xDE, 0xAD, 0xBE, 0xEF};
  const mem::VirtAddr src = MakeSource(host0_, payload);

  bool delivered = false;
  ASSERT_TRUE(nic0_
                  .PostPut(src, dst, payload.size(), rkey, false,
                           [&](const PutCompletion& c) {
                             EXPECT_TRUE(c.status.ok());
                             delivered = true;
                           })
                  .ok());
  engine_.Run();
  EXPECT_TRUE(delivered);
  std::array<std::uint8_t, 4> out{};
  ASSERT_TRUE(host1_.memory().Read(dst, out).ok());
  EXPECT_EQ(out[0], 0xDE);
  EXPECT_EQ(out[3], 0xEF);
  EXPECT_EQ(nic1_.bytes_delivered(), 4u);
}

TEST_F(NetTest, PutLatencyIsPipelineSum) {
  auto [dst, rkey] = MakeTarget(host1_, 4096);
  const std::vector<std::uint8_t> payload(256, 0xAA);
  const mem::VirtAddr src = MakeSource(host0_, payload);

  PicoTime delivered_at = 0;
  ASSERT_TRUE(nic0_
                  .PostPut(src, dst, payload.size(), rkey, false,
                           [&](const PutCompletion& c) {
                             delivered_at = c.delivered_at;
                           })
                  .ok());
  engine_.Run();
  const NicConfig& cfg = nic0_.config();
  // doorbell + per-message + dma read + pcie transfer + wire serialize +
  // propagation + rx processing.
  const double expect_ns = cfg.doorbell_ns + cfg.per_message_ns +
                           cfg.dma_read_overhead_ns +
                           256 * 8.0 / cfg.pcie_gbps +
                           256 * 8.0 / cfg.wire_gbps + cfg.wire_latency_ns +
                           cfg.rx_processing_ns;
  EXPECT_NEAR(ToNanoseconds(delivered_at), expect_ns, 2.0);
}

TEST_F(NetTest, LargerMessagesTakeLonger) {
  auto [dst, rkey] = MakeTarget(host1_, KiB(64));
  PicoTime t_small = 0, t_large = 0;
  {
    const std::vector<std::uint8_t> p(64, 1);
    const mem::VirtAddr src = MakeSource(host0_, p);
    nic0_.PostPut(src, dst, p.size(), rkey, false,
                  [&](const PutCompletion& c) { t_small = c.delivered_at; });
    engine_.Run();
  }
  {
    const std::vector<std::uint8_t> p(KiB(32), 2);
    const mem::VirtAddr src = MakeSource(host0_, p);
    const PicoTime before = engine_.Now();
    nic0_.PostPut(src, dst, p.size(), rkey, false,
                  [&](const PutCompletion& c) { t_large = c.delivered_at; });
    engine_.Run();
    t_large -= before;
  }
  EXPECT_GT(t_large, t_small);
  // 32 KiB at 200 Gb/s is ~1.3 us of serialization alone.
  EXPECT_GT(ToNanoseconds(t_large), 1300.0);
}

TEST_F(NetTest, BadRkeyRejectedAtHardwareWithoutTouchingMemory) {
  auto [dst, rkey] = MakeTarget(host1_, 4096);
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4};
  const mem::VirtAddr src = MakeSource(host0_, payload);

  Status seen;
  mem::RKey bogus{rkey.value ^ 0x1234};
  ASSERT_TRUE(nic0_
                  .PostPut(src, dst, payload.size(), bogus, false,
                           [&](const PutCompletion& c) { seen = c.status; })
                  .ok());
  engine_.Run();
  EXPECT_EQ(seen.code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(nic1_.rkey_rejections(), 1u);
  // Target memory untouched.
  std::array<std::uint8_t, 4> out{};
  ASSERT_TRUE(host1_.memory().Read(dst, out).ok());
  EXPECT_EQ(out[0], 0);
}

TEST_F(NetTest, PutBeyondRegionRejected) {
  auto [dst, rkey] = MakeTarget(host1_, 128);
  const std::vector<std::uint8_t> payload(256, 7);
  const mem::VirtAddr src = MakeSource(host0_, payload);
  Status seen;
  nic0_.PostPut(src, dst, payload.size(), rkey, false,
                [&](const PutCompletion& c) { seen = c.status; });
  engine_.Run();
  EXPECT_EQ(seen.code(), StatusCode::kPermissionDenied);
}

TEST_F(NetTest, InlinePutWritesImmediateValue) {
  auto [dst, rkey] = MakeTarget(host1_, 64);
  ASSERT_TRUE(nic0_.PostInlinePut(0xCAFEBABEDEADBEEFull, dst, rkey).ok());
  engine_.Run();
  EXPECT_EQ(host1_.memory().LoadU64(dst).value(), 0xCAFEBABEDEADBEEFull);
}

TEST_F(NetTest, SnapshotSemanticsProtectInFlightData) {
  // Sender overwrites the source buffer right after posting; the delivered
  // message must contain the bytes as of post time.
  auto [dst, rkey] = MakeTarget(host1_, 64);
  const std::vector<std::uint8_t> payload = {0x11, 0x22};
  const mem::VirtAddr src = MakeSource(host0_, payload);
  nic0_.PostPut(src, dst, 2, rkey);
  ASSERT_TRUE(host0_.memory().StoreU8(src, 0xFF).ok());
  engine_.Run();
  EXPECT_EQ(host1_.memory().LoadU8(dst).value(), 0x11);
}

TEST_F(NetTest, OrderedDeliveryPreservesPostOrder) {
  auto [dst, rkey] = MakeTarget(host1_, 4096);
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    const std::vector<std::uint8_t> p(64 + 512 * (7 - i), 0);  // varied sizes
    const mem::VirtAddr src = MakeSource(host0_, p);
    nic0_.PostPut(src, dst, p.size(), rkey, false,
                  [&order, i](const PutCompletion&) { order.push_back(i); });
  }
  engine_.Run();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST_F(NetTest, StashingDeliversIntoLLC) {
  auto [dst, rkey] = MakeTarget(host1_, 4096);
  const std::vector<std::uint8_t> payload(512, 0x33);
  const mem::VirtAddr src = MakeSource(host0_, payload);
  nic0_.PostPut(src, dst, payload.size(), rkey);
  engine_.Run();
  EXPECT_TRUE(host1_.caches().ProbeLLC(dst));
  EXPECT_EQ(host1_.caches().stats().stash_lines, 8u);
}

TEST_F(NetTest, NonStashingDeliversToDram) {
  nic1_.set_stash_to_llc(false);
  auto [dst, rkey] = MakeTarget(host1_, 4096);
  // Warm the line first so we can observe the invalidation.
  host1_.caches().AccessLine(0, dst, cache::AccessKind::kLoad);
  const std::vector<std::uint8_t> payload(64, 0x44);
  const mem::VirtAddr src = MakeSource(host0_, payload);
  nic0_.PostPut(src, dst, payload.size(), rkey);
  engine_.Run();
  EXPECT_FALSE(host1_.caches().ProbeLLC(dst));
  EXPECT_FALSE(host1_.caches().ProbeL1(0, dst));
}

TEST_F(NetTest, BackToBackPutsPipelineOnTheWire) {
  // Two large puts: the second serializes behind the first, so the gap
  // between deliveries is at least the serialization time.
  auto [dst, rkey] = MakeTarget(host1_, KiB(64));
  const std::uint64_t size = KiB(16);
  std::vector<PicoTime> times;
  for (int i = 0; i < 2; ++i) {
    const std::vector<std::uint8_t> p(size, static_cast<std::uint8_t>(i));
    const mem::VirtAddr src = MakeSource(host0_, p);
    nic0_.PostPut(src, dst, size, rkey, false,
                  [&](const PutCompletion& c) {
                    times.push_back(c.delivered_at);
                  });
  }
  engine_.Run();
  ASSERT_EQ(times.size(), 2u);
  const double serialize_ns = size * 8.0 / nic0_.config().wire_gbps;
  EXPECT_GE(ToNanoseconds(times[1] - times[0]), serialize_ns * 0.9);
}

TEST_F(NetTest, UnorderedModeCanReorderButFenceRestoresOrder) {
  NicConfig cfg;
  cfg.enforce_write_ordering = false;
  cfg.reorder_window_ns = 5000.0;
  Host h0 = MakeHost(2), h1 = MakeHost(3);
  sim::Engine eng;
  Nic a(eng, h0, cfg), b(eng, h1, cfg);
  ASSERT_TRUE(a.ConnectTo(b).ok());
  auto dst = h1.memory().Allocate(4096, 64, mem::Perm::kRW, "t");
  ASSERT_TRUE(dst.ok());
  auto rkey = h1.regions().RegisterRegion(*dst, 4096,
                                          mem::RemoteAccess::kWrite, "t");
  ASSERT_TRUE(rkey.ok());

  // Without fences, some pair out of many should invert (probabilistic but
  // deterministic for a fixed NIC rng seed).
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    a.PostInlinePut(static_cast<std::uint64_t>(i), *dst + 8u * i, *rkey,
                    /*fence=*/false,
                    [&order, i](const PutCompletion&) { order.push_back(i); });
  }
  eng.Run();
  bool inverted = false;
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (order[i] < order[i - 1]) inverted = true;
  }
  EXPECT_TRUE(inverted) << "relaxed ordering should visibly reorder";

  // A fenced signal put must land after all prior deliveries.
  std::vector<int> order2;
  for (int i = 0; i < 8; ++i) {
    a.PostInlinePut(static_cast<std::uint64_t>(i), *dst + 8u * i, *rkey,
                    false,
                    [&order2, i](const PutCompletion&) { order2.push_back(i); });
  }
  a.PostInlinePut(99, *dst + 256, *rkey, /*fence=*/true,
                  [&order2](const PutCompletion&) { order2.push_back(99); });
  eng.Run();
  ASSERT_FALSE(order2.empty());
  EXPECT_EQ(order2.back(), 99);
}

TEST_F(NetTest, UnconnectedNicFailsPrecondition) {
  Host h = MakeHost(5);
  Nic lone(engine_, h, NicConfig{});
  EXPECT_EQ(lone.PostInlinePut(1, 0x1000, mem::RKey{1}).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(NetTest, ZeroLengthPutRejected) {
  auto [dst, rkey] = MakeTarget(host1_, 64);
  EXPECT_EQ(nic0_.PostPut(0, dst, 0, rkey).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(NetTest, ControlChannelDeliversInOrderWithLatency) {
  ControlChannel ctl(engine_, /*latency_us=*/15.0);
  std::vector<std::uint8_t> seen;
  PicoTime arrival = 0;
  ctl.SetHandler(1, [&](std::vector<std::uint8_t> msg) {
    seen.insert(seen.end(), msg.begin(), msg.end());
    arrival = engine_.Now();
  });
  ASSERT_TRUE(ctl.Send(1, {1}).ok());
  ASSERT_TRUE(ctl.Send(1, {2}).ok());
  ASSERT_TRUE(ctl.Send(1, {3}).ok());
  engine_.Run();
  EXPECT_EQ(seen, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_GE(arrival, Microseconds(15.0));
}

TEST_F(NetTest, ControlChannelUnknownHost) {
  ControlChannel ctl(engine_);
  EXPECT_EQ(ctl.Send(9, {1}).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace twochains::net
