// Differential tests for the jam standard library: every jamlib element
// is driven through the full compile→link→inject→execute stack on a
// two-host Testbed, against the same seeded op stream fed to its
// host-native reference twin (jamlib/reference.hpp). Return values and
// resident state must agree exactly — one suite validating amcc codegen,
// the linker/loader, the interpreter, and the library semantics at once.
// The open-loop serving driver (benchlib/openloop.hpp) is integration-
// tested at the bottom.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <optional>
#include <vector>

#include "benchlib/openloop.hpp"
#include "common/rng.hpp"
#include "core/two_chains.hpp"
#include "jamlib/jamlib.hpp"
#include "jamlib/kv_service.hpp"
#include "jamlib/reference.hpp"

namespace twochains::jamlib {
namespace {

using core::Invoke;
using core::ReceivedMessage;
using core::Testbed;
using core::TestbedOptions;

class JamlibTest : public ::testing::Test {
 protected:
  JamlibTest() {
    TestbedOptions options;
    options.runtime.banks = 2;
    options.runtime.mailboxes_per_bank = 4;
    testbed_ = std::make_unique<Testbed>(options);
    auto package = BuildJamlibPackage();
    EXPECT_TRUE(package.ok()) << package.status();
    EXPECT_TRUE(testbed_->LoadPackage(*package).ok());
  }

  /// Injects @p jam at host 1 and runs until it executes; retries through
  /// flow-control stalls so long op streams never trip kResourceExhausted.
  std::uint64_t Run(const std::string& jam, std::vector<std::uint64_t> args,
                    std::vector<std::uint8_t> usr = {}) {
    std::optional<ReceivedMessage> received;
    testbed_->runtime(1).SetOnExecuted(
        [&](const ReceivedMessage& msg) { received = msg; });
    for (;;) {
      auto receipt =
          testbed_->runtime(0).Send(jam, Invoke::kInjected, args, usr);
      if (receipt.ok()) break;
      if (receipt.status().code() != StatusCode::kResourceExhausted) {
        ADD_FAILURE() << "send " << jam << ": " << receipt.status();
        return ~std::uint64_t{0};
      }
      bool freed = false;
      testbed_->runtime(0).NotifyWhenSlotFree([&] { freed = true; });
      testbed_->RunUntil([&] { return freed; });
    }
    testbed_->RunUntil([&] { return received.has_value(); });
    testbed_->runtime(1).SetOnExecuted(nullptr);
    EXPECT_TRUE(received.has_value()) << jam << " never executed";
    EXPECT_TRUE(!received || received->executed);
    return received ? received->return_value : ~std::uint64_t{0};
  }

  std::int64_t RunS(const std::string& jam, std::vector<std::uint64_t> args,
                    std::vector<std::uint8_t> usr = {}) {
    return static_cast<std::int64_t>(Run(jam, std::move(args), std::move(usr)));
  }

  std::uint64_t Peek(const std::string& symbol, std::uint64_t index) {
    auto v = testbed_->runtime(1).PeekU64(symbol, index);
    EXPECT_TRUE(v.ok()) << symbol << "[" << index << "]: " << v.status();
    return v.ok() ? *v : ~std::uint64_t{0};
  }

  std::unique_ptr<Testbed> testbed_;
};

TEST(JamlibPackageTest, BuildsWithEveryAdvertisedElement) {
  auto package = BuildJamlibPackage();
  ASSERT_TRUE(package.ok()) << package.status();
  EXPECT_NE(package->Find(pkg::ElementKind::kRied, "kvtable"), nullptr);
  EXPECT_EQ(JamNames().size(), 10u);
  for (const std::string& name : JamNames()) {
    EXPECT_NE(package->Find(pkg::ElementKind::kJam, name), nullptr)
        << "missing jam " << name;
  }
}

TEST_F(JamlibTest, KvDifferentialAgainstReferenceTwin) {
  ref::KvTable twin;
  Xoshiro256 rng(101);
  // A small key universe over many ops forces overwrites, deletes of
  // absent keys, and tombstone-reuse probes.
  for (int op = 0; op < 300; ++op) {
    const std::int64_t key = static_cast<std::int64_t>(rng.NextBelow(48));
    const std::uint64_t ukey = static_cast<std::uint64_t>(key);
    switch (rng.NextBelow(4)) {
      case 0:
      case 1: {  // put (with payload on half of them)
        const std::int64_t value = static_cast<std::int64_t>(rng.Next() >> 8);
        std::vector<std::uint8_t> usr;
        if (rng.NextBernoulli(0.5)) {
          usr.resize(1 + rng.NextBelow(96));  // some exceed the 64-byte blob
          for (auto& b : usr) b = static_cast<std::uint8_t>(rng.Next());
        }
        const std::int64_t got =
            RunS("kv_put", {ukey, static_cast<std::uint64_t>(value)}, usr);
        EXPECT_EQ(got, twin.Put(key, value, usr)) << "op " << op;
        break;
      }
      case 2:
        EXPECT_EQ(RunS("kv_get", {ukey}), twin.Get(key)) << "op " << op;
        break;
      default:
        EXPECT_EQ(RunS("kv_del", {ukey}), twin.Del(key)) << "op " << op;
        break;
    }
  }
  // Resident-state parity: occupancy plus a full slot-table sweep.
  EXPECT_EQ(static_cast<std::int64_t>(Peek("kv_count", 0)), twin.count());
  for (std::uint64_t s = 0; s < kKvSlots; ++s) {
    ASSERT_EQ(static_cast<std::int64_t>(Peek("kv_keys", s)), twin.key_at(s))
        << "slot " << s;
    if (twin.key_at(s) >= 0) {
      ASSERT_EQ(static_cast<std::int64_t>(Peek("kv_vals", s)),
                twin.value_at(s))
          << "slot " << s;
    }
  }
}

TEST_F(JamlibTest, KvTombstoneSlotIsReused) {
  ref::KvTable twin;
  // Two keys with the same home slot (k and k + kKvSlots * m do not
  // necessarily collide under the multiplicative hash, so derive a
  // colliding pair by search).
  std::int64_t a = 1, b = -1;
  for (std::int64_t k = 2; k < 100000; ++k) {
    if (KvHomeSlot(k) == KvHomeSlot(a)) {
      b = k;
      break;
    }
  }
  ASSERT_GT(b, 0) << "no colliding key pair found";
  const auto ua = static_cast<std::uint64_t>(a);
  const auto ub = static_cast<std::uint64_t>(b);
  EXPECT_EQ(RunS("kv_put", {ua, 10}), twin.Put(a, 10, {}));
  EXPECT_EQ(RunS("kv_put", {ub, 20}), twin.Put(b, 20, {}));  // probed past a
  EXPECT_EQ(RunS("kv_del", {ua}), twin.Del(a));              // tombstone
  EXPECT_EQ(RunS("kv_get", {ub}), twin.Get(b));  // still reachable past it
  // Reinsert a: must land back in the tombstoned slot, not a fresh one.
  EXPECT_EQ(RunS("kv_put", {ua, 30}), twin.Put(a, 30, {}));
  EXPECT_EQ(RunS("kv_get", {ua}), twin.Get(a));
  EXPECT_EQ(static_cast<std::int64_t>(Peek("kv_count", 0)), twin.count());
}

TEST_F(JamlibTest, KvPutStoresUsrPayloadTruncatedToBlobCell) {
  std::vector<std::uint8_t> usr(80);
  for (std::size_t i = 0; i < usr.size(); ++i) {
    usr[i] = static_cast<std::uint8_t>(i + 1);
  }
  const std::int64_t slot = RunS("kv_put", {7, 99}, usr);
  ASSERT_GE(slot, 0);
  // kv_blob is a char array; PeekU64 reads 8 bytes per index. The first
  // 64 bytes of the payload must be there, the tail truncated.
  const std::uint64_t base = static_cast<std::uint64_t>(slot) * kKvBlobBytes;
  for (std::uint64_t w = 0; w < kKvBlobBytes / 8; ++w) {
    std::uint64_t expect = 0;
    std::memcpy(&expect, usr.data() + w * 8, 8);
    EXPECT_EQ(Peek("kv_blob", base / 8 + w), expect) << "word " << w;
  }
}

TEST_F(JamlibTest, CountersDifferentialAddAndCas) {
  ref::Counters twin;
  Xoshiro256 rng(202);
  for (int op = 0; op < 200; ++op) {
    // Unmasked cell ids probe the jam's index masking too.
    const std::int64_t cell = static_cast<std::int64_t>(rng.NextBelow(512));
    const auto ucell = static_cast<std::uint64_t>(cell);
    if (rng.NextBernoulli(0.6)) {
      const std::int64_t delta =
          static_cast<std::int64_t>(rng.NextBelow(2000)) - 1000;
      EXPECT_EQ(RunS("ctr_add", {ucell, static_cast<std::uint64_t>(delta)}),
                twin.Add(cell, delta))
          << "op " << op;
    } else {
      // Half the CAS attempts use the live value (success), half a stale
      // guess (failure); both must return the same old value as the twin.
      const std::int64_t expect =
          rng.NextBernoulli(0.5)
              ? twin.at(static_cast<std::uint64_t>(cell) % kCtrCells)
              : static_cast<std::int64_t>(rng.NextBelow(100)) - 50;
      const std::int64_t desired = static_cast<std::int64_t>(rng.NextBelow(99));
      EXPECT_EQ(RunS("cas", {ucell, static_cast<std::uint64_t>(expect),
                             static_cast<std::uint64_t>(desired)}),
                twin.Cas(cell, expect, desired))
          << "op " << op;
    }
  }
  for (std::uint64_t c = 0; c < kCtrCells; ++c) {
    ASSERT_EQ(static_cast<std::int64_t>(Peek("ctr_cells", c)), twin.at(c));
  }
}

TEST_F(JamlibTest, TopkDifferentialKeepsLargestDescending) {
  ref::TopK twin;
  Xoshiro256 rng(303);
  for (int op = 0; op < 64; ++op) {
    const std::int64_t v =
        static_cast<std::int64_t>(rng.NextBelow(10000)) - 5000;
    EXPECT_EQ(RunS("topk", {static_cast<std::uint64_t>(v)}), twin.Push(v))
        << "op " << op;
  }
  const auto kept = twin.kept();
  ASSERT_EQ(kept.size(), kTopK);
  for (std::uint64_t i = 0; i < kTopK; ++i) {
    ASSERT_EQ(static_cast<std::int64_t>(Peek("topk_vals", i)), kept[i]);
    if (i > 0) EXPECT_GE(kept[i - 1], kept[i]);  // descending order held
  }
}

TEST_F(JamlibTest, ScatterGatherDifferential) {
  ref::ScatterGather twin;
  Xoshiro256 rng(404);
  for (int round = 0; round < 8; ++round) {
    const std::size_t pairs = 1 + rng.NextBelow(16);
    std::vector<std::int64_t> flat;
    for (std::size_t i = 0; i < pairs; ++i) {
      flat.push_back(static_cast<std::int64_t>(rng.NextBelow(8192)));  // idx
      flat.push_back(static_cast<std::int64_t>(rng.Next() >> 4));      // val
    }
    std::vector<std::uint8_t> usr(flat.size() * 8);
    std::memcpy(usr.data(), flat.data(), usr.size());
    EXPECT_EQ(RunS("scatter", {}, usr), twin.Scatter(flat)) << round;

    const std::size_t reads = 1 + rng.NextBelow(24);
    std::vector<std::int64_t> indices;
    for (std::size_t i = 0; i < reads; ++i) {
      indices.push_back(static_cast<std::int64_t>(rng.NextBelow(8192)));
    }
    std::vector<std::uint8_t> gusr(indices.size() * 8);
    std::memcpy(gusr.data(), indices.data(), gusr.size());
    EXPECT_EQ(RunS("gather", {}, gusr), twin.Gather(indices)) << round;
  }
}

TEST_F(JamlibTest, AggregatorDifferentialPushAndTake) {
  ref::Aggregator twin;
  Xoshiro256 rng(505);
  for (int op = 0; op < 60; ++op) {
    if (rng.NextBernoulli(0.8)) {
      const std::int64_t v =
          static_cast<std::int64_t>(rng.NextBelow(100000)) - 50000;
      EXPECT_EQ(RunS("agg_push", {static_cast<std::uint64_t>(v)}),
                twin.Push(v))
          << "op " << op;
    } else {
      EXPECT_EQ(RunS("agg_take", {}), twin.Take()) << "op " << op;
      EXPECT_EQ(static_cast<std::int64_t>(Peek("agg_acc", 0)), 0);
      EXPECT_EQ(static_cast<std::int64_t>(Peek("agg_seen", 0)), 0);
    }
  }
}

// --------------------------------------------------------- KV service map

TEST(KvShardMapTest, SpreadsTheZipfHeadAcrossShards) {
  const KvShardMap map(4, 2);
  // The ten hottest ranks (keys 0..9) must not collapse onto one shard —
  // the whole point of the mixing hash.
  std::vector<int> per_shard(4, 0);
  for (std::uint64_t key = 0; key < 10; ++key) {
    const std::uint32_t s = map.ShardOf(key);
    ASSERT_LT(s, 4u);
    EXPECT_EQ(map.OwnerHostOf(key), 2 + s);
    ++per_shard[s];
  }
  int occupied = 0;
  for (int n : per_shard) occupied += (n > 0) ? 1 : 0;
  EXPECT_GE(occupied, 2) << "hot head landed on a single shard";
}

TEST(KvServiceTest, RequestEncodingMatchesJamContracts) {
  EXPECT_STREQ(KvJamFor(KvOp::kGet), "kv_get");
  EXPECT_STREQ(KvJamFor(KvOp::kPut), "kv_put");
  EXPECT_STREQ(KvJamFor(KvOp::kDel), "kv_del");
  KvRequest put{KvOp::kPut, 42, -7};
  const auto put_args = KvArgsFor(put);
  ASSERT_EQ(put_args.size(), 2u);
  EXPECT_EQ(put_args[0], 42u);
  EXPECT_EQ(static_cast<std::int64_t>(put_args[1]), -7);
  KvRequest get{KvOp::kGet, 9, 0};
  EXPECT_EQ(KvArgsFor(get).size(), 1u);
}

// ------------------------------------------------- open-loop serving runs

bench::OpenLoopConfig SmallServingConfig() {
  bench::OpenLoopConfig config;
  config.client_hosts = 2;
  config.shards = 2;
  config.simulated_clients = 10'000;
  config.keyspace = 256;
  config.zipf_theta = 1.0;
  config.put_fraction = 0.1;
  config.requests = 400;
  config.offered_rate_mops = 0.5;
  config.seed = 11;
  return config;
}

TEST(KvOpenLoopTest, WarmStoreServesEveryRequest) {
  const auto result = bench::RunKvOpenLoop(SmallServingConfig());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->ok) << result->error;
  EXPECT_EQ(result->completed, 400u);
  EXPECT_EQ(result->sent, 400u);
  EXPECT_EQ(result->gets + result->puts, 400u);
  // Preload warmed every key: no get may miss.
  EXPECT_EQ(result->get_hits, result->gets);
  EXPECT_EQ(result->latency.count(), 400u);
  EXPECT_GT(result->latency.Percentile(0.5), 0u);
  EXPECT_LE(result->latency.Percentile(0.5), result->latency.Percentile(0.99));
  std::uint64_t across_shards = 0;
  for (std::uint64_t n : result->per_shard_executed) across_shards += n;
  EXPECT_EQ(across_shards, result->completed);
  EXPECT_GT(result->distinct_clients, 0u);
  EXPECT_GT(result->hot_head_requests, 400u / 10)
      << "Zipf(1.0) head colder than plausible";
  EXPECT_GT(result->wire_bytes, 0u);
  EXPECT_GT(result->duration, 0u);
}

TEST(KvOpenLoopTest, JamCacheTurnsHotPathIntoByHandleSends) {
  auto config = SmallServingConfig();
  const auto cold = bench::RunKvOpenLoop(config);
  ASSERT_TRUE(cold.ok()) << cold.status();
  ASSERT_TRUE(cold->ok) << cold->error;

  config.jam_cache.enabled = true;
  config.jam_cache.capacity = 8;
  const auto warm = bench::RunKvOpenLoop(config);
  ASSERT_TRUE(warm.ok()) << warm.status();
  ASSERT_TRUE(warm->ok) << warm->error;

  // Same seed, same arrivals: the cached run must serve the bulk of the
  // window by handle and move measurably fewer bytes per request.
  EXPECT_EQ(warm->completed, cold->completed);
  EXPECT_GT(warm->jam.hits, warm->completed / 2);
  EXPECT_GT(warm->jam.by_handle_sends, 0u);
  EXPECT_EQ(warm->jam.hits + warm->jam.misses, warm->jam.by_handle_sends);
  EXPECT_LT(warm->wire_bytes, cold->wire_bytes);
  EXPECT_EQ(cold->jam.by_handle_sends, 0u);
}

TEST(KvOpenLoopTest, LanedServingRunMatchesSingleLane) {
  auto config = SmallServingConfig();
  config.jam_cache.enabled = true;
  config.jam_cache.capacity = 8;
  const auto one = bench::RunKvOpenLoop(config);
  ASSERT_TRUE(one.ok()) << one.status();
  ASSERT_TRUE(one->ok) << one->error;

  config.lanes = 4;
  const auto laned = bench::RunKvOpenLoop(config);
  ASSERT_TRUE(laned.ok()) << laned.status();
  ASSERT_TRUE(laned->ok) << laned->error;

  // The driver is lane-partitioned and the engine orders by
  // (time, lane, seq), so a 4-executor run must reproduce the single-lane
  // run exactly — counters, bytes, duration, and the full latency multiset.
  EXPECT_EQ(laned->completed, one->completed);
  EXPECT_EQ(laned->sent, one->sent);
  EXPECT_EQ(laned->gets, one->gets);
  EXPECT_EQ(laned->get_hits, one->get_hits);
  EXPECT_EQ(laned->queued, one->queued);
  EXPECT_EQ(laned->queue_peak, one->queue_peak);
  EXPECT_EQ(laned->wire_bytes, one->wire_bytes);
  EXPECT_EQ(laned->duration, one->duration);
  EXPECT_EQ(laned->per_shard_executed, one->per_shard_executed);
  EXPECT_EQ(laned->jam.hits, one->jam.hits);
  EXPECT_EQ(laned->jam.by_handle_sends, one->jam.by_handle_sends);
  std::vector<PicoTime> a = one->latency.samples();
  std::vector<PicoTime> b = laned->latency.samples();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(KvOpenLoopTest, RejectsDegenerateConfigs) {
  auto config = SmallServingConfig();
  config.shards = 0;
  EXPECT_EQ(bench::RunKvOpenLoop(config).status().code(),
            StatusCode::kInvalidArgument);
  config = SmallServingConfig();
  config.offered_rate_mops = 0;
  EXPECT_EQ(bench::RunKvOpenLoop(config).status().code(),
            StatusCode::kInvalidArgument);
  config = SmallServingConfig();
  config.keyspace = config.shards * kKvSlots;  // over the 3/4 bound
  EXPECT_EQ(bench::RunKvOpenLoop(config).status().code(),
            StatusCode::kInvalidArgument);
  config = SmallServingConfig();
  config.put_fraction = 1.5;
  EXPECT_EQ(bench::RunKvOpenLoop(config).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace twochains::jamlib
