// Seeded jam-mutation fuzz suite (the ISSUE's tentpole): three layers of
// adversarial coverage over the injection pipeline.
//
//  1. VM sweep — mutate valid amcc/assembled jams and synthesize random
//     ISA-shaped programs, push every candidate through the real verifier
//     and (when accepted) the real interpreter inside a canary-bracketed
//     sandbox. Contract: the verdict is deterministic, accepted code always
//     comes back as a *returned* ExecResult, and confined runs never touch
//     a byte outside image/ARGS/USR/stack.
//  2. Directed hostile programs — the ISSUE's named attacks (GOT-slot
//     aliasing, jalr trampolines into ARGS/USR bytes, lea rodata escapes,
//     straight-line runoff, native confused deputies), each proven *real*
//     unconfined and *contained* under the policy-armed windows.
//  3. Runtime storms — core::Runtime::InjectRawFrame puts forged and
//     mutated frames straight into a hardened receiver's mailbox: garbage
//     batches, mutated full-body injections, forged by-handle frames with
//     mismatched handles/element IDs, and hostile package layouts. The
//     receiver must reject cleanly (security_rejections), never wedge, and
//     keep serving canonical results afterwards.
//
// Every stream is seeded (Xoshiro256), so failures reproduce from the
// round number; TC_FUZZ_ITERS bounds the budget for CI.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "benchlib/workloads.hpp"
#include "core/frame.hpp"
#include "core/two_chains.hpp"
#include "fuzz_harness.hpp"
#include "jamlib/jamlib.hpp"
#include "jamvm/assembler.hpp"
#include "jelf/got_rewriter.hpp"
#include "pkg/package.hpp"

namespace twochains::core {
namespace {

using fuzz::AppendInstr;
using fuzz::MakeInstr;
using fuzz::VmSandbox;

vm::Instr Ret() { return MakeInstr(vm::Opcode::kJalr, vm::kZr, vm::kLr, 0, 0); }

/// movi+movhi pair: materializes a full 64-bit address (sandbox arenas sit
/// well above the 32-bit immediate range).
void AppendLoadAddr(std::vector<std::uint8_t>& code, std::uint8_t reg,
                    std::uint64_t addr) {
  AppendInstr(code, MakeInstr(vm::Opcode::kMovi, reg, 0, 0,
                              static_cast<std::int32_t>(
                                  static_cast<std::uint32_t>(addr))));
  AppendInstr(code, MakeInstr(vm::Opcode::kMovhi, reg, 0, 0,
                              static_cast<std::int32_t>(
                                  static_cast<std::uint32_t>(addr >> 32))));
}

// ------------------------------------------------------------- corpus

struct Seed {
  std::string label;
  std::vector<std::uint8_t> blob;   ///< code+rodata, as a frame carries it
  std::uint64_t verify_bytes = 0;   ///< text prefix the verifier covers
  std::uint32_t got_slots = VmSandbox::kDefaultGotSlots;
  std::uint64_t rodata_bytes = 0;
  std::uint64_t entry_offset = 0;
};

std::vector<std::uint8_t> AssembleSeed(const char* source) {
  auto obj = vm::Assemble(source, "fuzz-seed");
  EXPECT_TRUE(obj.ok()) << obj.status();
  return obj.ok() ? obj->text : std::vector<std::uint8_t>{};
}

/// Hand-assembled seeds (loops, GOT-routed native calls, USR traffic) plus
/// the bench package's real amcc-compiled jams.
std::vector<Seed> BuildCorpus() {
  std::vector<Seed> corpus;
  const auto add_asm = [&corpus](const char* label, const char* src) {
    Seed seed;
    seed.label = label;
    seed.blob = AssembleSeed(src);
    seed.verify_bytes = seed.blob.size();
    if (!seed.blob.empty()) corpus.push_back(std::move(seed));
  };
  add_asm("loop-sum",
          "f:\n"
          "  movi t1, 0\n"
          "  movi t2, 8\n"
          "  mov t3, a1\n"
          "loop:\n"
          "  ldd t4, [t3+0]\n"
          "  add t1, t1, t4\n"
          "  addi t3, t3, 8\n"
          "  addi t2, t2, -1\n"
          "  bne t2, zr, loop\n"
          "  mov a0, t1\n"
          "  ret\n");
  add_asm("got-native-call",
          "f:\n"
          "  ldg.pre t0, 0, -16\n"
          "  addi sp, sp, -16\n"
          "  std lr, [sp+0]\n"
          "  ldd a0, [a1+0]\n"
          "  jalr lr, t0, 0\n"
          "  ldd lr, [sp+0]\n"
          "  addi sp, sp, 16\n"
          "  ret\n");
  add_asm("usr-store-load",
          "f:\n"
          "  ldd t0, [a0+0]\n"
          "  std t0, [a1+8]\n"
          "  ldd t1, [a1+8]\n"
          "  add a0, t0, t1\n"
          "  ret\n");

  auto built = bench::BuildBenchPackage();
  EXPECT_TRUE(built.ok()) << built.status();
  if (built.ok()) {
    for (const char* name : {"ssum", "iput"}) {
      const pkg::BuiltElement* elem =
          built->Find(pkg::ElementKind::kJam, name);
      if (elem == nullptr) continue;
      const auto entry =
          elem->injected_image.exports.find(elem->entry_symbol);
      if (entry == elem->injected_image.exports.end()) continue;
      Seed seed;
      seed.label = std::string("amcc-") + name;
      seed.blob = fuzz::CodeBlobOf(elem->injected_image);
      seed.verify_bytes = elem->injected_image.text.size();
      seed.got_slots = elem->injected_image.got_slot_count();
      seed.rodata_bytes = seed.blob.size() - seed.verify_bytes;
      seed.entry_offset = entry->second.offset;
      if (seed.blob.size() <= VmSandbox::kImageBytes - VmSandbox::kCodeOffset) {
        corpus.push_back(std::move(seed));
      }
    }
  }

  // The jam standard library: every jamlib element doubles as a fuzz seed,
  // so the mutation sweep exercises the codegen shapes real applications
  // inject (probe loops, masked indexing, usr-driven scatter/gather).
  auto jamlib_pkg = jamlib::BuildJamlibPackage();
  EXPECT_TRUE(jamlib_pkg.ok()) << jamlib_pkg.status();
  if (jamlib_pkg.ok()) {
    for (const std::string& name : jamlib::JamNames()) {
      const pkg::BuiltElement* elem =
          jamlib_pkg->Find(pkg::ElementKind::kJam, name);
      if (elem == nullptr) continue;
      const auto entry =
          elem->injected_image.exports.find(elem->entry_symbol);
      if (entry == elem->injected_image.exports.end()) continue;
      Seed seed;
      seed.label = "jamlib-" + name;
      seed.blob = fuzz::CodeBlobOf(elem->injected_image);
      seed.verify_bytes = elem->injected_image.text.size();
      seed.got_slots = elem->injected_image.got_slot_count();
      seed.rodata_bytes = seed.blob.size() - seed.verify_bytes;
      seed.entry_offset = entry->second.offset;
      if (seed.blob.size() <= VmSandbox::kImageBytes - VmSandbox::kCodeOffset) {
        corpus.push_back(std::move(seed));
      }
    }
  }
  return corpus;
}

/// ISA-shaped random program: valid field ranges, adversarial immediates.
std::vector<std::uint8_t> SynthesizeProgram(Xoshiro256& rng) {
  std::vector<std::uint8_t> code;
  const std::uint64_t count = 2 + rng.NextBelow(30);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::int32_t imm;
    switch (rng.NextBelow(3)) {
      case 0:  // small, often 8-aligned — plausible offsets and branches
        imm = static_cast<std::int32_t>(rng.NextBelow(65)) * 8 - 256;
        break;
      case 1:  // full-range hostile
        imm = static_cast<std::int32_t>(rng.Next());
        break;
      default:  // the preamble-slot magic value
        imm = -16;
        break;
    }
    AppendInstr(code,
                MakeInstr(static_cast<vm::Opcode>(rng.NextBelow(
                              static_cast<std::uint64_t>(
                                  vm::Opcode::kOpcodeCount))),
                          static_cast<std::uint8_t>(
                              rng.NextBelow(vm::kNumRegs)),
                          static_cast<std::uint8_t>(
                              rng.NextBelow(vm::kNumRegs)),
                          static_cast<std::uint8_t>(
                              rng.NextBelow(vm::kNumRegs)),
                          imm));
  }
  if (rng.NextBelow(2) != 0) AppendInstr(code, Ret());
  return code;
}

// ----------------------------------------------------- VM-level sweep

TEST(FuzzVmTest, SeededMutationSweepHoldsContainment) {
  VmSandbox sandbox;
  ASSERT_TRUE(sandbox.ok());
  const std::vector<Seed> corpus = BuildCorpus();
  ASSERT_FALSE(corpus.empty());

  const int iterations = fuzz::FuzzIterations(10000);
  Xoshiro256 rng(0xF0221u);
  int accepted = 0;
  int rejected = 0;
  int clean = 0;
  int contained_faults = 0;

  for (int round = 0; round < iterations; ++round) {
    std::vector<std::uint8_t> code;
    std::uint32_t got_slots = VmSandbox::kDefaultGotSlots;
    std::uint64_t verify_bytes = 0;
    std::uint64_t rodata_bytes = 0;
    std::uint64_t entry_offset = 0;
    std::string label;
    if (rng.NextBelow(8) == 0) {
      code = SynthesizeProgram(rng);
      verify_bytes = code.size();
      rodata_bytes = rng.NextBelow(2) != 0 ? 64 : 0;
      label = "synthesized";
    } else {
      const Seed& seed = corpus[rng.NextBelow(corpus.size())];
      code = seed.blob;
      got_slots = seed.got_slots;
      verify_bytes = seed.verify_bytes;
      rodata_bytes = seed.rodata_bytes;
      entry_offset = seed.entry_offset;
      label = seed.label;
      fuzz::MutateCode(rng, code);
    }
    const std::span<const std::uint8_t> text =
        std::span<const std::uint8_t>(code).first(
            std::min<std::uint64_t>(verify_bytes, code.size()));

    // The verdict must be a pure function of the bytes.
    const Status first = sandbox.Verify(text, got_slots, rodata_bytes);
    const Status again = sandbox.Verify(text, got_slots, rodata_bytes);
    ASSERT_EQ(first.code(), again.code())
        << "verifier verdict flapped in round " << round << " (" << label
        << ")";
    if (!first.ok()) {
      ++rejected;
      continue;
    }
    ++accepted;

    // Confined execution: however the mutant behaves, it must come back as
    // a returned ExecResult with every canary byte untouched.
    const fuzz::RunOutcome confined = sandbox.Run(
        code, /*confined=*/true, {}, {}, {}, /*max_instructions=*/512,
        entry_offset);
    ASSERT_TRUE(confined.canaries_intact)
        << "confined escape in round " << round << " (" << label
        << "): " << confined.result.status;
    ASSERT_LE(confined.result.instructions, 512u);
    if (confined.result.status.ok()) {
      ++clean;
    } else {
      ++contained_faults;
    }

    // Unconfined subsample: even with no windows armed the interpreter
    // must fault cleanly, never crash or hang (canaries MAY die here —
    // that is what confinement is for).
    if (round % 7 == 0) {
      const fuzz::RunOutcome raw = sandbox.Run(
          code, /*confined=*/false, {}, {}, {}, 512, entry_offset);
      ASSERT_LE(raw.result.instructions, 512u);
    }

    // Execution-determinism spot check: same bytes, same outcome.
    if (round % 509 == 0) {
      const fuzz::RunOutcome replay = sandbox.Run(
          code, /*confined=*/true, {}, {}, {}, 512, entry_offset);
      ASSERT_EQ(confined.result.status.code(), replay.result.status.code());
      ASSERT_EQ(confined.result.return_value, replay.result.return_value);
      ASSERT_EQ(confined.result.instructions, replay.result.instructions);
    }
  }

  // The sweep must have exercised both sides of the verifier.
  EXPECT_GT(accepted, 0);
  EXPECT_GT(rejected, 0);
  EXPECT_GT(clean, 0);
  EXPECT_GT(contained_faults, 0);
  RecordProperty("iterations", iterations);
  RecordProperty("accepted", accepted);
  RecordProperty("rejected", rejected);
  RecordProperty("clean", clean);
  RecordProperty("contained_faults", contained_faults);
}

// ------------------------------------------------ directed hostile code

TEST(HostileProgramTest, GotSlotAliasingIsRejected) {
  VmSandbox sandbox;
  ASSERT_TRUE(sandbox.ok());

  // Slot index beyond the GOTP table.
  std::vector<std::uint8_t> beyond;
  AppendInstr(beyond, MakeInstr(vm::Opcode::kLdgPre, vm::kT0, 0, 8, -16));
  AppendInstr(beyond, Ret());
  EXPECT_EQ(sandbox.Verify(beyond, 8, 0).code(), StatusCode::kOutOfRange);

  // Correct slot, but the site+imm aims past the pinned PRE slot — an
  // aliased "GOT pointer" read from attacker-controlled frame bytes.
  std::vector<std::uint8_t> off_pre;
  AppendInstr(off_pre, MakeInstr(vm::Opcode::kLdgPre, vm::kT0, 0, 0, -24));
  AppendInstr(off_pre, Ret());
  EXPECT_EQ(sandbox.Verify(off_pre, 8, 0).code(), StatusCode::kOutOfRange);

  // The legitimate shape verifies and runs clean under confinement.
  std::vector<std::uint8_t> good;
  AppendInstr(good, MakeInstr(vm::Opcode::kLdgPre, vm::kT0, 0, 7, -16));
  AppendInstr(good, Ret());
  ASSERT_TRUE(sandbox.Verify(good, 8, 0).ok());
  const fuzz::RunOutcome out = sandbox.Run(good, /*confined=*/true);
  EXPECT_TRUE(out.result.status.ok()) << out.result.status;
  EXPECT_TRUE(out.canaries_intact);
}

TEST(HostileProgramTest, LdgFixHasNoWindowInInjectedFrames) {
  // ldg.fix addresses an in-image GOT at a link-time offset. Library
  // images carry that window (VerifyLimits::fixed_got_offset); injected
  // frames do not — the amcc pipeline rewrites every ldg.fix to ldg.pre,
  // so a surviving ldg.fix is hostile by construction.
  VmSandbox sandbox;
  ASSERT_TRUE(sandbox.ok());
  std::vector<std::uint8_t> code;
  AppendInstr(code, MakeInstr(vm::Opcode::kLdgFix, vm::kT0, 0, 0, 16));
  AppendInstr(code, Ret());
  EXPECT_EQ(sandbox.Verify(code, 8, 64).code(), StatusCode::kPermissionDenied);
}

TEST(HostileProgramTest, ZeroRegisterJalrIsRejected) {
  // jalr through zr is an unconditional jump to a raw immediate — an
  // absolute pc the verifier can never prove. It must die statically.
  VmSandbox sandbox;
  ASSERT_TRUE(sandbox.ok());
  std::vector<std::uint8_t> code;
  AppendInstr(code, MakeInstr(vm::Opcode::kJalr, vm::kA0, vm::kZr, 0, 4096));
  AppendInstr(code, Ret());
  EXPECT_EQ(sandbox.Verify(code, 8, 0).code(), StatusCode::kOutOfRange);
}

TEST(HostileProgramTest, JalrTrampolineIntoUsrBytesIsConfined) {
  // The ISSUE's marquee attack: encode instructions into the USR payload,
  // then jalr into them through a register. The verifier cannot see the
  // target; the interpreter's exec windows must.
  VmSandbox sandbox;
  ASSERT_TRUE(sandbox.ok());

  // USR carries a payload that stomps the high canary and returns.
  std::vector<std::uint8_t> payload;
  AppendLoadAddr(payload, vm::kT0, sandbox.canary_hi_addr());
  AppendInstr(payload,
              MakeInstr(vm::Opcode::kStd, 0, vm::kT0, vm::kT0, 0));
  AppendInstr(payload, Ret());

  // The jam itself is tiny and verifies: save the return sentinel, jump
  // through a1 (the USR pointer the runtime hands every jam), return.
  std::vector<std::uint8_t> code;
  AppendInstr(code, MakeInstr(vm::Opcode::kAdd, vm::kT0 + 6, vm::kLr,
                              vm::kZr, 0));
  AppendInstr(code, MakeInstr(vm::Opcode::kJalr, vm::kLr, vm::kA0 + 1, 0, 0));
  AppendInstr(code, MakeInstr(vm::Opcode::kJalr, vm::kZr, vm::kT0 + 6, 0, 0));
  ASSERT_TRUE(sandbox.Verify(code, 8, 0).ok());

  // Unconfined, the attack is real: the payload executes and kills the
  // canary — which is exactly why confine_control_flow exists.
  const fuzz::RunOutcome raw =
      sandbox.Run(code, /*confined=*/false, {}, {}, payload);
  EXPECT_TRUE(raw.result.status.ok()) << raw.result.status;
  EXPECT_FALSE(raw.canaries_intact);

  // Confined, the first fetch outside the code window faults cleanly.
  const fuzz::RunOutcome confined =
      sandbox.Run(code, /*confined=*/true, {}, {}, payload);
  EXPECT_EQ(confined.result.status.code(), StatusCode::kPermissionDenied);
  EXPECT_TRUE(confined.canaries_intact);
}

TEST(HostileProgramTest, JalrIntoGotTableIsConfined) {
  // Jumping into the GOT executes pointer bytes as code. The GOT lives
  // inside the *data* windows (jams may read it) but not the exec window.
  VmSandbox sandbox;
  ASSERT_TRUE(sandbox.ok());
  std::vector<std::uint8_t> code;
  AppendLoadAddr(code, vm::kT0, sandbox.got_addr());
  AppendInstr(code, MakeInstr(vm::Opcode::kJalr, vm::kLr, vm::kT0, 0, 0));
  AppendInstr(code, Ret());
  ASSERT_TRUE(sandbox.Verify(code, 8, 0).ok());
  const fuzz::RunOutcome confined = sandbox.Run(code, /*confined=*/true);
  EXPECT_EQ(confined.result.status.code(), StatusCode::kPermissionDenied);
  EXPECT_TRUE(confined.canaries_intact);
}

TEST(HostileProgramTest, LeaRodataEscapeIsRejected) {
  VmSandbox sandbox;
  ASSERT_TRUE(sandbox.ok());

  // lea past the declared code+rodata extent: address formation aimed at
  // whatever the receiver mapped after the frame.
  std::vector<std::uint8_t> escape;
  AppendInstr(escape, MakeInstr(vm::Opcode::kLea, vm::kA0, 0, 0, 4096));
  AppendInstr(escape, Ret());
  EXPECT_EQ(sandbox.Verify(escape, 8, 0).code(), StatusCode::kOutOfRange);

  // Backwards, before the code start (into PRE/GOTP bytes).
  std::vector<std::uint8_t> backward;
  AppendInstr(backward, MakeInstr(vm::Opcode::kLea, vm::kA0, 0, 0, -32));
  AppendInstr(backward, Ret());
  EXPECT_EQ(sandbox.Verify(backward, 8, 0).code(), StatusCode::kOutOfRange);

  // The same lea with the rodata window actually declared is legitimate.
  std::vector<std::uint8_t> good;
  AppendInstr(good, MakeInstr(vm::Opcode::kLea, vm::kA0, 0, 0, 4096));
  AppendInstr(good, Ret());
  ASSERT_TRUE(sandbox.Verify(good, 8, 8192).ok());
  const fuzz::RunOutcome out = sandbox.Run(good, /*confined=*/true);
  EXPECT_TRUE(out.result.status.ok()) << out.result.status;
  EXPECT_TRUE(out.canaries_intact);
}

TEST(HostileProgramTest, StraightLineRunoffIsCaughtByExecWindows) {
  // No branch, no ret: execution falls off the end of the blob into
  // whatever bytes follow. Statically legal; dynamically the very next
  // fetch leaves the exec window.
  VmSandbox sandbox;
  ASSERT_TRUE(sandbox.ok());
  std::vector<std::uint8_t> code;
  AppendInstr(code, MakeInstr(vm::Opcode::kAddi, vm::kA0, vm::kA0, 0, 1));
  ASSERT_TRUE(sandbox.Verify(code, 8, 0).ok());
  const fuzz::RunOutcome out = sandbox.Run(code, /*confined=*/true);
  EXPECT_EQ(out.result.status.code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(out.result.instructions, 1u);
  EXPECT_TRUE(out.canaries_intact);
}

TEST(HostileProgramTest, NativeConfusedDeputyIsFencedByDataWindows) {
  // The jam itself never touches the canary — it asks tc_memcpy to do it.
  // Natives act on behalf of jam code, so they must observe the same data
  // windows (the confused-deputy fence).
  VmSandbox sandbox;
  ASSERT_TRUE(sandbox.ok());
  std::vector<std::uint8_t> code;
  AppendInstr(code, MakeInstr(vm::Opcode::kLdgPre, vm::kT0, 0, 1, -16));
  AppendInstr(code, MakeInstr(vm::Opcode::kAdd, vm::kT0 + 6, vm::kLr,
                              vm::kZr, 0));
  AppendLoadAddr(code, vm::kA0, sandbox.canary_lo_addr());
  AppendInstr(code, MakeInstr(vm::Opcode::kMovi, vm::kA0 + 2, 0, 0, 64));
  AppendInstr(code, MakeInstr(vm::Opcode::kJalr, vm::kLr, vm::kT0, 0, 0));
  AppendInstr(code, MakeInstr(vm::Opcode::kJalr, vm::kZr, vm::kT0 + 6, 0, 0));
  ASSERT_TRUE(sandbox.Verify(code, 8, 0).ok());

  // Unconfined the deputy obliges (default GOT slot 1 is tc_memcpy; a1 is
  // the USR pointer, a perfectly readable source).
  const fuzz::RunOutcome raw = sandbox.Run(code, /*confined=*/false);
  EXPECT_TRUE(raw.result.status.ok()) << raw.result.status;
  EXPECT_FALSE(raw.canaries_intact);

  // Confined the native's destination check fails before a byte moves.
  const fuzz::RunOutcome confined = sandbox.Run(code, /*confined=*/true);
  EXPECT_FALSE(confined.result.status.ok());
  EXPECT_TRUE(confined.canaries_intact);
}

// ------------------------------------------------- runtime-level storms

JamCacheConfig FuzzCache() {
  JamCacheConfig config;
  config.enabled = true;
  config.capacity = 8;
  return config;
}

class RuntimeFuzzTest : public ::testing::Test {
 protected:
  static TestbedOptions Options() {
    TestbedOptions options;
    options.runtime.banks = 2;
    options.runtime.mailboxes_per_bank = 4;
    options.runtime.mailbox_slot_bytes = KiB(64);
    // A mutated-but-verified mutant may still loop; bound the damage the
    // way a deployment would (high enough for ried auto-init at load).
    options.runtime.exec.max_instructions = 2'000'000;
    SecurityPolicy policy = SecurityPolicy::Hardened();
    policy.verify_cached_invokes = true;  // the full-paranoia receiver
    options.WithSecurity(policy);
    options.WithJamCache(FuzzCache());
    return options;
  }

  void SetUpTestbed() {
    testbed_ = std::make_unique<Testbed>(Options());
    auto built = bench::BuildBenchPackage();
    ASSERT_TRUE(built.ok()) << built.status();
    pkg_ = *built;
    const Status loaded = testbed_->LoadPackage(pkg_);
    ASSERT_TRUE(loaded.ok()) << loaded;
    receiver().SetOnExecuted(
        [this](const ReceivedMessage& msg) { completions_.push_back(msg); });
  }

  Runtime& sender() { return testbed_->runtime(0); }
  Runtime& receiver() { return testbed_->runtime(1); }

  bool WaitForCompletions(std::size_t n) {
    return testbed_->RunUntil([&] { return completions_.size() >= n; });
  }

  StatusOr<ReceivedMessage> SendLegit(const std::string& jam,
                                      std::vector<std::uint64_t> args,
                                      std::vector<std::uint8_t> usr) {
    const std::size_t before = completions_.size();
    TC_RETURN_IF_ERROR(
        sender().Send(jam, Invoke::kInjected, args, usr).status());
    const auto executed_after = [&]() -> const ReceivedMessage* {
      for (std::size_t i = before; i < completions_.size(); ++i) {
        if (completions_[i].executed) return &completions_[i];
      }
      return nullptr;
    };
    testbed_->RunUntil([&] { return executed_after() != nullptr; });
    const ReceivedMessage* msg = executed_after();
    if (msg == nullptr) return Internal("legit send never executed");
    return *msg;
  }

  std::vector<std::uint8_t> SumPayload(std::uint64_t* expect_out) {
    std::vector<std::uint8_t> usr(64);
    std::uint64_t expect = 0;
    for (std::uint64_t i = 0; i < 8; ++i) {
      const std::uint64_t v = 3 * i + 1;
      std::memcpy(usr.data() + 8 * i, &v, 8);
      expect += v;
    }
    *expect_out = expect;
    return usr;
  }

  /// A wire-exact full-body frame for @p elem, as a compromised sender
  /// with the exchanged rkey would construct it.
  StatusOr<std::vector<std::uint8_t>> ForgeFullBody(
      const pkg::BuiltElement& elem, std::uint32_t sn,
      std::span<const std::uint64_t> args_words,
      std::span<const std::uint8_t> usr) {
    FrameSpec spec;
    spec.injected = true;
    spec.got_slots = elem.injected_image.got_slot_count();
    const std::vector<std::uint8_t> blob =
        fuzz::CodeBlobOf(elem.injected_image);
    spec.code_size = blob.size();
    spec.args_size = args_words.size() * 8;
    spec.usr_size = usr.size();
    // The hardened receiver computes the split layout; the wire image must
    // match it or the signal word lands in the wrong place.
    spec.split_code_data = true;
    FrameHeader header;
    header.sn = sn;
    header.elem_id = elem.element_id;
    const std::vector<std::uint64_t> gotp(spec.got_slots, 0);
    const std::span<const std::uint8_t> args_bytes(
        reinterpret_cast<const std::uint8_t*>(args_words.data()),
        args_words.size() * 8);
    return PackFrame(spec, header, gotp, blob, args_bytes, usr);
  }

  StatusOr<std::vector<std::uint8_t>> ForgeByHandle(
      std::uint64_t handle, std::uint32_t elem_id, std::uint32_t sn,
      std::span<const std::uint64_t> args_words,
      std::span<const std::uint8_t> usr) {
    FrameSpec spec;
    spec.by_handle = true;
    spec.args_size = args_words.size() * 8;
    spec.usr_size = usr.size();
    FrameHeader header;
    header.sn = sn;
    header.elem_id = elem_id;
    header.flags = kFlagInjected;
    const std::span<const std::uint8_t> args_bytes(
        reinterpret_cast<const std::uint8_t*>(args_words.data()),
        args_words.size() * 8);
    return PackHandleFrame(spec, header, handle, args_bytes, usr);
  }

  std::unique_ptr<Testbed> testbed_;
  pkg::Package pkg_;
  std::vector<ReceivedMessage> completions_;
};

TEST_F(RuntimeFuzzTest, GarbageFrameBatchesDrainWithoutWedging) {
  SetUpTestbed();
  Xoshiro256 rng(0xBADF00D5EEDull);
  const int rounds = std::max(4, fuzz::FuzzIterations(10000) / 256);
  std::size_t injected = 0;
  for (int round = 0; round < rounds; ++round) {
    const std::uint32_t bank = static_cast<std::uint32_t>(round % 2);
    for (std::uint32_t i = 0; i < 4; ++i) {
      std::vector<std::uint8_t> bytes(64 + rng.NextBelow(512));
      for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.Next());
      if (rng.NextBelow(2) == 0) {
        // Half carry a valid magic so they die deeper in the pipeline
        // (self-consistency, signal word) rather than at the first check.
        std::memcpy(bytes.data(), &kFrameMagic, sizeof(kFrameMagic));
      }
      ASSERT_TRUE(
          receiver().InjectRawFrame(kDefaultPeer, bank * 4 + i, bytes).ok());
      ++injected;
    }
    ASSERT_TRUE(WaitForCompletions(injected)) << "receiver wedged in round "
                                              << round;
  }
  EXPECT_EQ(completions_.size(), injected);
  EXPECT_EQ(receiver().stats().security_rejections, injected);
  EXPECT_EQ(receiver().InFlightFrames(), 0u);
  for (const auto& msg : completions_) EXPECT_FALSE(msg.executed);

  // The storm over, the receiver still serves canonical traffic.
  std::uint64_t expect = 0;
  const std::vector<std::uint8_t> usr = SumPayload(&expect);
  auto alive = SendLegit("ssum", {0}, usr);
  ASSERT_TRUE(alive.ok()) << alive.status();
  EXPECT_EQ(alive->return_value, expect);
}

TEST_F(RuntimeFuzzTest, MutatedInjectedFramesNeverEscapeOrWedge) {
  SetUpTestbed();
  const pkg::BuiltElement* ssum = pkg_.Find(pkg::ElementKind::kJam, "ssum");
  ASSERT_NE(ssum, nullptr);
  std::uint64_t expect = 0;
  const std::vector<std::uint8_t> usr = SumPayload(&expect);
  const std::vector<std::uint64_t> args = {0};

  Xoshiro256 rng(0x5EED0FF1CEull);
  const int frames = ((std::max(8, fuzz::FuzzIterations(10000) / 16) + 7) / 8) * 8;
  std::size_t injected = 0;
  std::uint32_t sn = 0x4000;
  for (int batch = 0; batch * 4 < frames; ++batch) {
    const std::uint32_t bank = static_cast<std::uint32_t>(batch % 2);
    for (std::uint32_t i = 0; i < 4; ++i) {
      auto forged = ForgeFullBody(*ssum, sn++, args, usr);
      ASSERT_TRUE(forged.ok()) << forged.status();
      std::vector<std::uint8_t>& frame = *forged;
      const std::uint64_t len = frame.size();
      // Mostly the body (GOTP/CODE/ARGS/USR); sometimes the header or the
      // signal word, so every pipeline stage sees hostile input.
      std::uint64_t lo = kHeaderBytes;
      std::uint64_t hi = len - 8;
      const std::uint64_t region = rng.NextBelow(10);
      if (region >= 9) {
        lo = len - 8;
        hi = len;
      } else if (region >= 7) {
        lo = 0;
        hi = kHeaderBytes;
      }
      const std::uint64_t hits = 1 + rng.NextBelow(8);
      for (std::uint64_t h = 0; h < hits; ++h) {
        const std::uint64_t at = lo + rng.NextBelow(hi - lo);
        if (rng.NextBelow(2) != 0) {
          frame[at] ^= static_cast<std::uint8_t>(1u << rng.NextBelow(8));
        } else {
          frame[at] = static_cast<std::uint8_t>(rng.Next());
        }
      }
      ASSERT_TRUE(
          receiver().InjectRawFrame(kDefaultPeer, bank * 4 + i, frame).ok());
      ++injected;
    }
    ASSERT_TRUE(WaitForCompletions(injected)) << "receiver wedged at frame "
                                              << injected;
  }

  EXPECT_EQ(completions_.size(), injected);
  EXPECT_EQ(receiver().InFlightFrames(), 0u);
  std::size_t executed = 0;
  for (const auto& msg : completions_) executed += msg.executed ? 1 : 0;
  // The stream must straddle the verifier: some mutants die (rejections),
  // some survive and execute — contained by the confined interpreter.
  EXPECT_GT(executed, 0u);
  EXPECT_GT(receiver().stats().security_rejections, 0u);

  // Cache-poisoning probe: the storm's verified forgeries installed into
  // the jam cache, but installs link from the receiver's *resident* blob,
  // never the wire copy — so the by-handle fast path still computes the
  // canonical sum afterwards.
  auto full = SendLegit("ssum", {0}, usr);
  ASSERT_TRUE(full.ok()) << full.status();
  EXPECT_EQ(full->return_value, expect);
  auto hot = SendLegit("ssum", {0}, usr);
  ASSERT_TRUE(hot.ok()) << hot.status();
  EXPECT_TRUE(hot->by_handle);
  EXPECT_EQ(hot->return_value, expect);
}

TEST_F(RuntimeFuzzTest, ForgedByHandleFramesNakButNeverSubstituteCode) {
  SetUpTestbed();
  const pkg::BuiltElement* ssum = pkg_.Find(pkg::ElementKind::kJam, "ssum");
  const pkg::BuiltElement* iput = pkg_.Find(pkg::ElementKind::kJam, "iput");
  ASSERT_NE(ssum, nullptr);
  ASSERT_NE(iput, nullptr);

  // Warm: one install + three by-handle hits fill bank 0; the sender's
  // round-robin moves on to bank 1, so bank 0 is ours to forge into.
  std::uint64_t expect = 0;
  const std::vector<std::uint8_t> usr = SumPayload(&expect);
  for (int i = 0; i < 4; ++i) {
    auto msg = SendLegit("ssum", {0}, usr);
    ASSERT_TRUE(msg.ok()) << msg.status();
    EXPECT_EQ(msg->return_value, expect);
  }
  const JamCacheStats before = receiver().jam_cache_stats();
  EXPECT_EQ(before.installs, 1u);
  EXPECT_EQ(before.hits, 3u);
  const std::uint64_t rejections_before =
      receiver().stats().security_rejections;
  const std::size_t done_before = completions_.size();

  const std::uint64_t ssum_handle = jelf::ComputeJamHandle(
      fuzz::CodeBlobOf(ssum->injected_image),
      ssum->injected_image.got_symbols);
  const std::vector<std::uint64_t> args = {0};

  // Slot 0: real handle under the *wrong* element — a cross-namespace
  // handle trick. Must NAK, not execute ssum as "iput".
  auto cross = ForgeByHandle(ssum_handle, iput->element_id, 0x9000, args, usr);
  ASSERT_TRUE(cross.ok()) << cross.status();
  // Slot 1: unknown handle under the right element. NAK.
  auto bogus =
      ForgeByHandle(0xDEADBEEFDEADBEEFull, ssum->element_id, 0x9001, args, usr);
  ASSERT_TRUE(bogus.ok()) << bogus.status();
  // Slot 2: a replayed consistent pair — executes the receiver's own
  // cached, verified image (attacker args, canonical code).
  auto replay = ForgeByHandle(ssum_handle, ssum->element_id, 0x9002, args, usr);
  ASSERT_TRUE(replay.ok()) << replay.status();
  // Slot 3: garbage.
  Xoshiro256 rng(0xC0FFEEull);
  std::vector<std::uint8_t> garbage(96);
  for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.Next());

  ASSERT_TRUE(receiver().InjectRawFrame(kDefaultPeer, 0, *cross).ok());
  ASSERT_TRUE(receiver().InjectRawFrame(kDefaultPeer, 1, *bogus).ok());
  ASSERT_TRUE(receiver().InjectRawFrame(kDefaultPeer, 2, *replay).ok());
  ASSERT_TRUE(receiver().InjectRawFrame(kDefaultPeer, 3, garbage).ok());
  ASSERT_TRUE(WaitForCompletions(done_before + 4));

  const JamCacheStats after = receiver().jam_cache_stats();
  EXPECT_EQ(after.misses, before.misses + 2);
  EXPECT_EQ(after.naks_sent, before.naks_sent + 2);
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_EQ(receiver().stats().security_rejections, rejections_before + 1);
  for (std::size_t i = done_before; i < completions_.size(); ++i) {
    const ReceivedMessage& msg = completions_[i];
    if (msg.sn == 0x9000 || msg.sn == 0x9001) {
      EXPECT_TRUE(msg.cache_miss);
      EXPECT_FALSE(msg.executed);
    } else if (msg.sn == 0x9002) {
      EXPECT_TRUE(msg.by_handle);
      EXPECT_TRUE(msg.executed);
      EXPECT_EQ(msg.return_value, expect);
    }
  }

  // The forged NAK bits ride back on bank 0's flag, but the sender has no
  // pending by-handle sends in those slots — it must ignore them rather
  // than resend (a forged-NAK amplification would be a free DoS lever).
  EXPECT_EQ(sender().jam_cache_stats().naks_received, 0u);
  EXPECT_EQ(sender().jam_cache_stats().resends, 0u);

  // And the legitimate fast path is unharmed.
  auto alive = SendLegit("ssum", {0}, usr);
  ASSERT_TRUE(alive.ok()) << alive.status();
  EXPECT_TRUE(alive->by_handle);
  EXPECT_EQ(alive->return_value, expect);
}

StatusOr<pkg::Package> TagPackage(long addend) {
  pkg::PackageBuilder builder;
  const std::string source =
      "long jam_tag(long* args, char* usr, long usr_bytes) {\n"
      "  return args[0] + " + std::to_string(addend) + ";\n"
      "}\n";
  TC_RETURN_IF_ERROR(builder.AddSourceFile("jam_tag.amc", source));
  return builder.Build("tagpkg");
}

TEST_F(RuntimeFuzzTest, HostilePackagesAreRejectedAtLoad) {
  SetUpTestbed();
  auto tag = TagPackage(100);
  ASSERT_TRUE(tag.ok()) << tag.status();

  // got_offset pulled inside text: pre-clamp this wrapped the unsigned
  // rodata bound and overflowed the injectable-blob copy. Layout
  // validation must kill it before either.
  {
    pkg::Package hostile = *tag;
    bool mutated = false;
    for (auto& elem : hostile.elements) {
      if (elem.kind != pkg::ElementKind::kJam) continue;
      elem.injected_image.got_offset = elem.injected_image.text.size() / 2;
      mutated = true;
    }
    ASSERT_TRUE(mutated);
    const Status st = receiver().LoadPackage(hostile, /*allow_reload=*/true);
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << st;
  }

  // Library text replaced wholesale: the hardened receiver verifies every
  // library it loads, so the package dies at the loader.
  {
    pkg::Package hostile = *tag;
    ASSERT_FALSE(hostile.local_library.text.empty());
    std::fill(hostile.local_library.text.begin(),
              hostile.local_library.text.end(), std::uint8_t{0xFF});
    const Status st = receiver().LoadPackage(hostile, /*allow_reload=*/true);
    EXPECT_FALSE(st.ok());
    EXPECT_NE(std::string(st.message()).find("failed verification"),
              std::string::npos)
        << st;
  }

  // Neither failed load disturbed the resident bench package.
  std::uint64_t expect = 0;
  const std::vector<std::uint8_t> usr = SumPayload(&expect);
  auto alive = SendLegit("ssum", {0}, usr);
  ASSERT_TRUE(alive.ok()) << alive.status();
  EXPECT_EQ(alive->return_value, expect);
}

}  // namespace
}  // namespace twochains::core
