// Integration tests for the Two-Chains core: frame codec, end-to-end
// injected + local invocation over the simulated RDMA testbed, flow
// control, security modes, and failure injection.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "benchlib/workloads.hpp"
#include "common/pump.hpp"
#include "core/frame.hpp"
#include "core/two_chains.hpp"

namespace twochains::core {
namespace {

// ------------------------------------------------------------ frame codec

TEST(FrameLayoutTest, LocalFrameIsCompact) {
  FrameSpec spec;
  spec.injected = false;
  spec.args_size = 8;
  spec.usr_size = 4;
  const FrameLayout layout = FrameLayout::Compute(spec);
  EXPECT_EQ(layout.code_off, 0u);
  EXPECT_EQ(layout.args_off, kHeaderBytes);
  EXPECT_EQ(layout.frame_len, 64u);  // paper: 1-int local frame is 64 B
  EXPECT_EQ(layout.sig_off, 56u);
}

TEST(FrameLayoutTest, InjectedFrameCarriesGotpAndCode) {
  FrameSpec spec;
  spec.injected = true;
  spec.got_slots = 3;
  spec.code_size = 1408;  // the paper's Indirect Put code size
  spec.args_size = 8;
  spec.usr_size = 4;
  const FrameLayout layout = FrameLayout::Compute(spec);
  EXPECT_EQ(layout.gotp_off, kHeaderBytes);
  EXPECT_EQ(layout.pre_off, layout.code_off - 16);
  EXPECT_GE(layout.code_off, layout.gotp_off + 3 * 8 + 16);
  EXPECT_EQ(layout.code_off % 16, 0u);
  EXPECT_GE(layout.args_off, layout.code_off + spec.code_size);
  EXPECT_EQ(layout.frame_len % 64, 0u);
  EXPECT_GT(layout.frame_len, 1408u);
}

TEST(FrameLayoutTest, SplitModePutsDataOnFreshPage) {
  FrameSpec spec;
  spec.injected = true;
  spec.got_slots = 1;
  spec.code_size = 256;
  spec.args_size = 8;
  spec.usr_size = 64;
  spec.split_code_data = true;
  const FrameLayout layout = FrameLayout::Compute(spec);
  EXPECT_EQ(layout.args_off % mem::kPageSize, 0u);
  EXPECT_GT(layout.args_off, layout.code_off + spec.code_size - 1);
}

TEST(FrameCodecTest, PackAndParseRoundTrip) {
  FrameSpec spec;
  spec.injected = true;
  spec.got_slots = 2;
  spec.code_size = 16;
  spec.args_size = 16;
  spec.usr_size = 5;
  FrameHeader header;
  header.sn = 42;
  header.elem_id = 7;
  const std::vector<std::uint64_t> gotp = {0x1111, 0x2222};
  const std::vector<std::uint8_t> code = {1, 2, 3, 4, 5, 6, 7, 8,
                                          9, 10, 11, 12, 13, 14, 15, 16};
  const std::vector<std::uint8_t> args(16, 0xAA);
  const std::vector<std::uint8_t> usr = {9, 8, 7, 6, 5};
  auto frame = PackFrame(spec, header, gotp, code, args, usr);
  ASSERT_TRUE(frame.ok()) << frame.status();

  auto parsed = ReadHeader(*frame);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->sn, 42u);
  EXPECT_EQ(parsed->elem_id, 7u);
  EXPECT_TRUE(parsed->flags & kFlagInjected);
  EXPECT_EQ(parsed->frame_len, frame->size());
  EXPECT_EQ(parsed->usr_size, 5u);

  const FrameLayout layout = FrameLayout::Compute(spec);
  std::uint64_t sig;
  std::memcpy(&sig, frame->data() + layout.sig_off, 8);
  EXPECT_EQ(sig, SignalWord(42));
  EXPECT_EQ((*frame)[layout.code_off], 1);
  EXPECT_EQ((*frame)[layout.usr_off], 9);
}

TEST(FrameCodecTest, SizeMismatchesRejected) {
  FrameSpec spec;
  spec.injected = false;
  spec.args_size = 8;
  spec.usr_size = 0;
  const std::vector<std::uint8_t> args(16, 0);  // wrong size
  EXPECT_FALSE(PackFrame(spec, {}, {}, {}, args, {}).ok());
  // Local frames cannot carry code.
  const std::vector<std::uint8_t> good_args(8, 0);
  const std::vector<std::uint8_t> code(8, 0);
  EXPECT_FALSE(PackFrame(spec, {}, {}, code, good_args, {}).ok());
}

TEST(FrameCodecTest, BadMagicRejected) {
  std::vector<std::uint8_t> bytes(kHeaderBytes, 0);
  EXPECT_EQ(ReadHeader(bytes).status().code(), StatusCode::kDataLoss);
  std::vector<std::uint8_t> tiny(4, 0);
  EXPECT_EQ(ReadHeader(tiny).status().code(), StatusCode::kDataLoss);
}

TEST(FrameCodecTest, InconsistentSizeFieldsRejected) {
  // Build a valid local frame, then corrupt individual header size fields;
  // the hardened ReadHeader must reject every inconsistency as kDataLoss.
  FrameSpec spec;
  spec.args_size = 8;
  auto frame = PackFrame(spec, {}, {}, {}, std::vector<std::uint8_t>(8), {});
  ASSERT_TRUE(frame.ok());

  auto corrupt = [&](std::uint32_t off, std::uint32_t value) {
    std::vector<std::uint8_t> bad = *frame;
    std::memcpy(bad.data() + off, &value, 4);
    return ReadHeader(bad).status().code();
  };
  // frame_len: zero, non-64B-multiple, too small for declared sections.
  EXPECT_EQ(corrupt(8, 0), StatusCode::kDataLoss);
  EXPECT_EQ(corrupt(8, 96), StatusCode::kDataLoss);
  EXPECT_EQ(corrupt(8, 63), StatusCode::kDataLoss);
  // args_size / usr_size that overflow the declared frame_len.
  EXPECT_EQ(corrupt(16, 4096), StatusCode::kDataLoss);
  EXPECT_EQ(corrupt(20, 4096), StatusCode::kDataLoss);
  // args_size near UINT32_MAX must not wrap the 64-bit section arithmetic.
  EXPECT_EQ(corrupt(16, 0xFFFFFFF8u), StatusCode::kDataLoss);
  // The pristine frame still parses, with and without a slot capacity.
  EXPECT_TRUE(ReadHeader(*frame).ok());
  EXPECT_TRUE(ReadHeader(*frame, /*slot_capacity=*/frame->size()).ok());
  // ...but not into a slot smaller than frame_len.
  EXPECT_EQ(ReadHeader(*frame, /*slot_capacity=*/32).status().code(),
            StatusCode::kDataLoss);
}

TEST(FrameCodecTest, HandleFrameRoundTrip) {
  FrameSpec spec;
  spec.by_handle = true;
  spec.args_size = 16;
  spec.usr_size = 5;
  FrameHeader header;
  header.sn = 11;
  header.elem_id = 3;
  const std::vector<std::uint8_t> args(16, 0xAB);
  const std::vector<std::uint8_t> usr = {1, 2, 3, 4, 5};
  auto frame = PackHandleFrame(spec, header, 0xFEEDC0DEDEADBEEFull, args, usr);
  ASSERT_TRUE(frame.ok()) << frame.status();

  // A by-handle frame drops GOTP/PRE/CODE: header + handle + args + usr +
  // sig, rounded to a cache line — a single line for this payload.
  const FrameLayout layout = FrameLayout::Compute(spec);
  EXPECT_EQ(layout.handle_off, kHeaderBytes);
  EXPECT_EQ(layout.args_off, kHeaderBytes + 8u);
  EXPECT_EQ(frame->size(), 64u);

  auto parsed = ReadHeader(*frame);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(parsed->flags & kFlagByHandle);
  auto handle = ReadHandle(*frame, *parsed);
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(*handle, 0xFEEDC0DEDEADBEEFull);
  EXPECT_EQ((*frame)[layout.args_off], 0xAB);
  EXPECT_EQ((*frame)[layout.usr_off], 1);

  // PackFrame refuses by-handle specs; ReadHandle refuses full frames.
  EXPECT_FALSE(PackFrame(spec, header, {}, {}, args, usr).ok());
  FrameHeader full = *parsed;
  full.flags = static_cast<std::uint16_t>(full.flags & ~kFlagByHandle);
  EXPECT_EQ(ReadHandle(*frame, full).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(FrameCodecTest, PreSlotPatching) {
  FrameSpec spec;
  spec.injected = true;
  spec.got_slots = 1;
  spec.code_size = 8;
  const std::vector<std::uint64_t> gotp = {0};
  const std::vector<std::uint8_t> code(8, 0);
  auto frame = PackFrame(spec, {}, gotp, code, {}, {});
  ASSERT_TRUE(frame.ok());
  const FrameLayout layout = FrameLayout::Compute(spec);
  ASSERT_TRUE(PatchPreSlot(*frame, layout, 0xFEEDFACE).ok());
  std::uint64_t pre;
  std::memcpy(&pre, frame->data() + layout.pre_off, 8);
  EXPECT_EQ(pre, 0xFEEDFACEu);
  // Local layout has no PRE slot.
  FrameSpec local;
  const FrameLayout local_layout = FrameLayout::Compute(local);
  EXPECT_EQ(PatchPreSlot(*frame, local_layout, 1).code(),
            StatusCode::kFailedPrecondition);
}

// -------------------------------------------------------------- testbed

class TwoChainsTest : public ::testing::Test {
 protected:
  static TestbedOptions Options() {
    TestbedOptions options;
    options.runtime.banks = 2;
    options.runtime.mailboxes_per_bank = 4;
    options.runtime.mailbox_slot_bytes = KiB(64);
    return options;
  }

  void SetUpTestbed(TestbedOptions options = Options()) {
    testbed_ = std::make_unique<Testbed>(options);
    auto pkg = bench::BuildBenchPackage();
    ASSERT_TRUE(pkg.ok()) << pkg.status();
    ASSERT_TRUE(testbed_->LoadPackage(*pkg).ok());
  }

  /// Sends one jam and runs until it executes; returns the result.
  StatusOr<ReceivedMessage> SendAndRun(const std::string& jam, Invoke mode,
                                       std::vector<std::uint64_t> args,
                                       std::vector<std::uint8_t> usr,
                                       std::uint16_t flags = 0) {
    std::optional<ReceivedMessage> received;
    testbed_->runtime(1).SetOnExecuted(
        [&](const ReceivedMessage& msg) { received = msg; });
    TC_ASSIGN_OR_RETURN(const SendReceipt receipt,
                        testbed_->runtime(0).Send(jam, mode, args, usr,
                                                  flags));
    last_receipt_ = receipt;
    testbed_->RunUntil([&] { return received.has_value(); });
    testbed_->runtime(1).SetOnExecuted(nullptr);
    if (!received.has_value()) return Internal("message never executed");
    return *received;
  }

  std::unique_ptr<Testbed> testbed_;
  SendReceipt last_receipt_;
};

TEST_F(TwoChainsTest, InjectedServerSideSum) {
  SetUpTestbed();
  // Payload: 8 longs summing to 36, like the paper's Server-Side Sum.
  std::vector<std::uint8_t> usr(64);
  std::uint64_t expect = 0;
  for (std::uint64_t i = 0; i < 8; ++i) {
    const std::uint64_t v = i + 1;
    std::memcpy(usr.data() + 8 * i, &v, 8);
    expect += v;
  }
  auto msg = SendAndRun("ssum", Invoke::kInjected, {0}, usr);
  ASSERT_TRUE(msg.ok()) << msg.status();
  EXPECT_TRUE(msg->executed);
  EXPECT_TRUE(msg->injected);
  EXPECT_EQ(msg->return_value, expect);
  // The result landed in the server-resident ried array.
  EXPECT_EQ(testbed_->runtime(1).PeekU64("sum_results", 0).value(), expect);
  EXPECT_EQ(testbed_->runtime(1).PeekU64("sum_cursor").value(), 1u);
}

TEST_F(TwoChainsTest, LocalServerSideSumMatchesInjected) {
  SetUpTestbed();
  std::vector<std::uint8_t> usr(32);
  std::uint64_t expect = 0;
  for (std::uint64_t i = 0; i < 4; ++i) {
    const std::uint64_t v = 10 * (i + 1);
    std::memcpy(usr.data() + 8 * i, &v, 8);
    expect += v;
  }
  auto injected = SendAndRun("ssum", Invoke::kInjected, {0}, usr);
  ASSERT_TRUE(injected.ok()) << injected.status();
  auto local = SendAndRun("ssum", Invoke::kLocal, {0}, usr);
  ASSERT_TRUE(local.ok()) << local.status();
  EXPECT_EQ(injected->return_value, expect);
  EXPECT_EQ(local->return_value, expect);
  EXPECT_FALSE(local->injected);
  // The local frame is much smaller than the injected one (no code).
  auto local_layout =
      testbed_->runtime(0).LayoutFor("ssum", Invoke::kLocal, 8, 32);
  auto injected_layout =
      testbed_->runtime(0).LayoutFor("ssum", Invoke::kInjected, 8, 32);
  ASSERT_TRUE(local_layout.ok());
  ASSERT_TRUE(injected_layout.ok());
  EXPECT_LT(local_layout->frame_len + 512, injected_layout->frame_len);
}

TEST_F(TwoChainsTest, IndirectPutStoresPayloadAtHashedOffset) {
  SetUpTestbed();
  std::vector<std::uint8_t> usr(16);
  for (std::size_t i = 0; i < usr.size(); ++i) {
    usr[i] = static_cast<std::uint8_t>(i + 1);
  }
  auto msg = SendAndRun("iput", Invoke::kInjected, {12345}, usr);
  ASSERT_TRUE(msg.ok()) << msg.status();
  ASSERT_TRUE(msg->executed);
  const std::uint64_t offset = msg->return_value;
  EXPECT_NE(offset, static_cast<std::uint64_t>(-1));
  // Server heap holds the payload at the returned offset.
  auto heap_word =
      testbed_->runtime(1).PeekU64("ht_heap", offset / 8);
  ASSERT_TRUE(heap_word.ok());
  std::uint64_t expect;
  std::memcpy(&expect, usr.data(), 8);
  EXPECT_EQ(*heap_word, expect);
  // Re-putting the same key reuses the offset (hash-table hit path).
  auto again = SendAndRun("iput", Invoke::kInjected, {12345}, usr);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->return_value, offset);
  // A different key gets a different offset.
  auto other = SendAndRun("iput", Invoke::kInjected, {999}, usr);
  ASSERT_TRUE(other.ok());
  EXPECT_NE(other->return_value, offset);
}

TEST_F(TwoChainsTest, WithoutExecutionSkipsInvocation) {
  SetUpTestbed();
  std::vector<std::uint8_t> usr(64, 1);
  auto msg = SendAndRun("ssum", Invoke::kInjected, {0}, usr, kFlagNoExecute);
  ASSERT_TRUE(msg.ok()) << msg.status();
  EXPECT_FALSE(msg->executed);
  EXPECT_EQ(msg->instructions, 0u);
  EXPECT_EQ(testbed_->runtime(1).PeekU64("sum_cursor").value(), 0u);
}

TEST_F(TwoChainsTest, ManyMessagesExerciseBankRecycling) {
  SetUpTestbed();  // 2 banks x 4 slots
  const int total = 50;  // > 6 bank cycles
  int executed = 0;
  std::uint64_t sum_of_returns = 0;
  testbed_->runtime(1).SetOnExecuted([&](const ReceivedMessage& msg) {
    ++executed;
    sum_of_returns += msg.return_value;
  });
  std::vector<std::uint8_t> usr(8);
  int sent = 0;
  // Pump sends through flow control.
  PumpLoop<> pump;
  pump.Set([&, resume = pump.Handle()] {
    while (sent < total) {
      if (!testbed_->runtime(0).HasFreeSlot()) {
        testbed_->runtime(0).NotifyWhenSlotFree(resume);
        return;
      }
      const std::uint64_t v = static_cast<std::uint64_t>(sent + 1);
      std::memcpy(usr.data(), &v, 8);
      auto receipt =
          testbed_->runtime(0).Send("ssum", Invoke::kInjected, {}, usr);
      ASSERT_TRUE(receipt.ok()) << receipt.status();
      ++sent;
    }
  });
  pump();
  testbed_->RunUntil([&] { return executed == total; });
  EXPECT_EQ(executed, total);
  // sum of 1..50
  EXPECT_EQ(sum_of_returns, 50u * 51 / 2);
  EXPECT_GE(testbed_->runtime(1).stats().bank_flags_returned, 10u);
}

TEST_F(TwoChainsTest, SendWithoutFreeSlotFails) {
  SetUpTestbed();
  std::vector<std::uint8_t> usr(8, 0);
  // Fill both banks without letting the receiver drain (don't run engine).
  int ok_sends = 0;
  while (testbed_->runtime(0).HasFreeSlot()) {
    auto r = testbed_->runtime(0).Send("ssum", Invoke::kInjected, {}, usr);
    ASSERT_TRUE(r.ok());
    ++ok_sends;
  }
  EXPECT_EQ(ok_sends, 8);  // 2 banks x 4 slots
  auto blocked = testbed_->runtime(0).Send("ssum", Invoke::kInjected, {}, usr);
  EXPECT_EQ(blocked.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(TwoChainsTest, UnknownJamRejected) {
  SetUpTestbed();
  auto r = testbed_->runtime(0).Send("nope", Invoke::kInjected, {}, {});
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(TwoChainsTest, PingPongBothDirections) {
  SetUpTestbed();
  std::vector<std::uint8_t> usr(8, 2);
  // 0 -> 1
  auto there = SendAndRun("nop", Invoke::kInjected, {7}, usr);
  ASSERT_TRUE(there.ok()) << there.status();
  EXPECT_EQ(there->return_value, 7u);
  // 1 -> 0
  std::optional<ReceivedMessage> received;
  testbed_->runtime(0).SetOnExecuted(
      [&](const ReceivedMessage& msg) { received = msg; });
  const std::vector<std::uint64_t> args = {9};
  ASSERT_TRUE(
      testbed_->runtime(1).Send("nop", Invoke::kInjected, args, usr).ok());
  testbed_->RunUntil([&] { return received.has_value(); });
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->return_value, 9u);
}

TEST_F(TwoChainsTest, InjectedCodeExecutesFromMailbox) {
  SetUpTestbed();
  // The executed code's instructions must be fetched from the mailbox
  // region (i.e. code really travelled): check instruction counts.
  std::vector<std::uint8_t> usr(256, 1);
  auto msg = SendAndRun("ssum", Invoke::kInjected, {0}, usr);
  ASSERT_TRUE(msg.ok());
  EXPECT_GT(msg->instructions, 100u);  // the sum loop ran in the interpreter
}

// ----------------------------------------------------------- security

TEST_F(TwoChainsTest, ReceiverInstalledGotMode) {
  TestbedOptions options = Options();
  options.runtime.security.receiver_installs_got = true;
  SetUpTestbed(options);
  std::vector<std::uint8_t> usr(16, 3);
  auto msg = SendAndRun("iput", Invoke::kInjected, {42}, usr);
  ASSERT_TRUE(msg.ok()) << msg.status();
  EXPECT_TRUE(msg->executed);
  EXPECT_NE(msg->return_value, static_cast<std::uint64_t>(-1));
}

TEST_F(TwoChainsTest, HardenedPolicyEndToEnd) {
  TestbedOptions options = Options();
  options.runtime.security = SecurityPolicy::Hardened();
  SetUpTestbed(options);
  std::vector<std::uint8_t> usr(64);
  std::uint64_t expect = 0;
  for (std::uint64_t i = 0; i < 8; ++i) {
    std::memcpy(usr.data() + 8 * i, &i, 8);
    expect += i;
  }
  auto msg = SendAndRun("ssum", Invoke::kInjected, {0}, usr);
  ASSERT_TRUE(msg.ok()) << msg.status();
  EXPECT_TRUE(msg->executed);
  EXPECT_EQ(msg->return_value, expect);
}

TEST_F(TwoChainsTest, VerifierModeExecutes) {
  TestbedOptions options = Options();
  options.runtime.security.verify_injected_code = true;
  SetUpTestbed(options);
  std::vector<std::uint8_t> usr(8, 1);
  auto msg = SendAndRun("nop", Invoke::kInjected, {1}, usr);
  ASSERT_TRUE(msg.ok()) << msg.status();
  EXPECT_TRUE(msg->executed);
}

TEST_F(TwoChainsTest, SeparateSignalPutStillDelivers) {
  TestbedOptions options = Options();
  options.runtime.separate_signal_put = true;
  options.nic.enforce_write_ordering = false;  // the mode that needs it
  SetUpTestbed(options);
  std::vector<std::uint8_t> usr(16, 4);
  auto msg = SendAndRun("ssum", Invoke::kInjected, {0}, usr);
  ASSERT_TRUE(msg.ok()) << msg.status();
  EXPECT_TRUE(msg->executed);
  EXPECT_EQ(msg->return_value, 4ull * 0x0404040404040404ull / 4 * 2 == 0
                ? 0
                : msg->return_value);  // value checked below
  // 16 bytes of 0x04 = two longs of 0x0404040404040404.
  EXPECT_EQ(msg->return_value, 2ull * 0x0404040404040404ull);
}

TEST_F(TwoChainsTest, StatsAccumulate) {
  SetUpTestbed();
  std::vector<std::uint8_t> usr(8, 1);
  ASSERT_TRUE(SendAndRun("ssum", Invoke::kInjected, {}, usr).ok());
  ASSERT_TRUE(SendAndRun("ssum", Invoke::kLocal, {}, usr).ok());
  const auto& tx = testbed_->runtime(0).stats();
  const auto& rx = testbed_->runtime(1).stats();
  EXPECT_EQ(tx.messages_sent, 2u);
  EXPECT_EQ(rx.messages_executed, 2u);
  EXPECT_EQ(rx.messages_delivered, 2u);
  EXPECT_GT(tx.bytes_sent, 0u);
  EXPECT_GT(rx.wait_episodes, 0u);
}

TEST_F(TwoChainsTest, ReceiverCountersTrackWork) {
  SetUpTestbed();
  std::vector<std::uint8_t> usr(1024, 1);
  ASSERT_TRUE(SendAndRun("ssum", Invoke::kInjected, {}, usr).ok());
  const auto& counters = testbed_->runtime(1).receiver_cpu().counters();
  EXPECT_GT(counters.Of(cpu::CycleClass::kWait), 0u);
  EXPECT_GT(counters.Of(cpu::CycleClass::kExecute), 0u);
  EXPECT_GT(counters.instructions, 0u);
  EXPECT_EQ(counters.messages_handled, 1u);
}

// ------------------------------------------------ per-host overloading

namespace overload {

constexpr const char* kJamApply = R"(
extern long transform(long x);

long jam_apply(long* args, char* usr, long usr_bytes) {
  return transform(args[0]);
}
)";

constexpr const char* kRiedDoubler = R"(
long ried_math(void) { return 0; }
long transform(long x) { return 2 * x; }
)";

constexpr const char* kRiedSquarer = R"(
long ried_math(void) { return 0; }
long transform(long x) { return x * x; }
)";

StatusOr<pkg::Package> BuildVariant(const char* ried, const char* name) {
  pkg::PackageBuilder builder;
  TC_RETURN_IF_ERROR(builder.AddSourceFile("ried_math.rdc", ried));
  TC_RETURN_IF_ERROR(builder.AddSourceFile("jam_apply.amc", kJamApply));
  return builder.Build(name);
}

}  // namespace overload

TEST_F(TwoChainsTest, LoadPackagesPerHostOverloading) {
  // §IV: the same element names, different implementations per host. The
  // same injected jam must remote-link `transform` against whichever
  // host it lands on.
  auto doubler = overload::BuildVariant(overload::kRiedDoubler, "math_d");
  auto squarer = overload::BuildVariant(overload::kRiedSquarer, "math_s");
  ASSERT_TRUE(doubler.ok()) << doubler.status();
  ASSERT_TRUE(squarer.ok()) << squarer.status();

  testbed_ = std::make_unique<Testbed>(Options());
  ASSERT_TRUE(testbed_->LoadPackages(*doubler, *squarer).ok());

  // 0 -> 1 lands on the squarer.
  auto on_squarer = SendAndRun("apply", Invoke::kInjected, {9}, {});
  ASSERT_TRUE(on_squarer.ok()) << on_squarer.status();
  EXPECT_EQ(on_squarer->return_value, 81u);

  // 1 -> 0 lands on the doubler.
  std::optional<ReceivedMessage> received;
  testbed_->runtime(0).SetOnExecuted(
      [&](const ReceivedMessage& msg) { received = msg; });
  const std::vector<std::uint64_t> args = {9};
  ASSERT_TRUE(
      testbed_->runtime(1).Send("apply", Invoke::kInjected, args, {}).ok());
  testbed_->RunUntil([&] { return received.has_value(); });
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->return_value, 18u);
}

TEST_F(TwoChainsTest, LoadPackagesCountMismatchRejected) {
  auto package = bench::BuildBenchPackage();
  ASSERT_TRUE(package.ok());
  Testbed testbed(Options());
  // The underlying fabric checks the per-host package count.
  EXPECT_EQ(testbed.fabric()
                .LoadPackages({&*package})
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(testbed.fabric()
                .LoadPackages({&*package, nullptr})
                .code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------- receiver pooling

TEST_F(TwoChainsTest, ReceiverPoolSharesTheDrain) {
  TestbedOptions options = Options();
  options.runtime.receiver_cores = 2;
  options.runtime.sender_core = 2;  // keep sends off the pool cores
  SetUpTestbed(options);

  const int total = 48;  // several bank cycles over both banks
  int executed = 0;
  std::uint64_t sum_of_returns = 0;
  testbed_->runtime(1).SetOnExecuted([&](const ReceivedMessage& msg) {
    ++executed;
    sum_of_returns += msg.return_value;
  });
  std::vector<std::uint8_t> usr(8);
  int sent = 0;
  PumpLoop<> pump;
  pump.Set([&, resume = pump.Handle()] {
    while (sent < total) {
      if (!testbed_->runtime(0).HasFreeSlot()) {
        testbed_->runtime(0).NotifyWhenSlotFree(resume);
        return;
      }
      const std::uint64_t v = static_cast<std::uint64_t>(sent + 1);
      std::memcpy(usr.data(), &v, 8);
      ASSERT_TRUE(
          testbed_->runtime(0).Send("ssum", Invoke::kInjected, {}, usr).ok());
      ++sent;
    }
  });
  pump();
  testbed_->RunUntil([&] { return executed == total; });
  EXPECT_EQ(executed, total);
  EXPECT_EQ(sum_of_returns,
            static_cast<std::uint64_t>(total) * (total + 1) / 2);

  // Both pool cores really processed messages, and their per-core
  // counters aggregate to the runtime totals.
  Runtime& rx = testbed_->runtime(1);
  ASSERT_EQ(rx.receiver_pool_size(), 2u);
  std::uint64_t pool_total = 0;
  for (std::uint32_t c = 0; c < rx.receiver_pool_size(); ++c) {
    const auto& counters = rx.receiver_cpu(c).counters();
    EXPECT_GT(counters.messages_handled, 0u) << "core " << c;
    EXPECT_GT(rx.receiver_wait_stats(c).episodes, 0u) << "core " << c;
    pool_total += counters.messages_handled;
  }
  EXPECT_EQ(pool_total, static_cast<std::uint64_t>(total));
  EXPECT_EQ(rx.InFlightFrames(), 0u);
}

TEST_F(TwoChainsTest, ReceiverPoolClampsToHostCores) {
  TestbedOptions options = Options();
  options.runtime.receiver_cores = 64;  // host only has 4 cores
  SetUpTestbed(options);
  EXPECT_EQ(testbed_->runtime(1).receiver_pool_size(),
            testbed_->host(1).core_count());
  // A clamped pool still receives correctly.
  std::vector<std::uint8_t> usr(8, 1);
  auto msg = SendAndRun("nop", Invoke::kInjected, {5}, usr);
  ASSERT_TRUE(msg.ok()) << msg.status();
  EXPECT_EQ(msg->return_value, 5u);
}

// ------------------------------------------------------- work stealing

TEST_F(TwoChainsTest, StealOnSingleCorePoolIsNoOp) {
  StealConfig steal;
  steal.enabled = true;
  SetUpTestbed(Options().WithStealing(steal));  // receiver_cores stays 1

  // The config survives but resolves inactive: a 1-core pool allocates no
  // steal state and never records a steal event.
  Runtime& rx = testbed_->runtime(1);
  EXPECT_TRUE(rx.config().steal.enabled);
  EXPECT_FALSE(rx.stealing_active());
  ASSERT_EQ(rx.receiver_pool_size(), 1u);
  EXPECT_EQ(rx.StolenBanksHeld(0), 0u);

  std::vector<std::uint8_t> usr(16, 3);
  for (int i = 0; i < 12; ++i) {
    auto msg = SendAndRun("ssum", Invoke::kInjected, {0}, usr);
    ASSERT_TRUE(msg.ok()) << msg.status();
  }
  EXPECT_EQ(rx.stats().steals, 0u);
  EXPECT_EQ(rx.stats().frames_stolen, 0u);
  EXPECT_EQ(rx.stats().banks_drained_stolen, 0u);
  EXPECT_EQ(rx.StolenBanksHeld(0), 0u);
  // Every drained bank was accounted as owner-drained.
  EXPECT_EQ(rx.stats().banks_drained_owner, rx.stats().bank_flags_returned);
}

TEST_F(TwoChainsTest, StealThresholdZeroClampsToOne) {
  StealConfig steal;
  steal.enabled = true;
  steal.threshold = 0;  // would flip claims with no work behind them
  TestbedOptions options = Options();
  options.runtime.receiver_cores = 2;
  options.runtime.sender_core = 2;
  options.WithStealing(steal);
  SetUpTestbed(options);

  EXPECT_TRUE(testbed_->runtime(1).stealing_active());
  EXPECT_EQ(testbed_->runtime(1).config().steal.threshold, 1u);
  // Clamped config still drains traffic instead of spinning on claims.
  std::vector<std::uint8_t> usr(8, 7);
  for (int i = 0; i < 20; ++i) {
    auto msg = SendAndRun("ssum", Invoke::kInjected, {0}, usr);
    ASSERT_TRUE(msg.ok()) << msg.status();
  }
  EXPECT_EQ(testbed_->runtime(1).InFlightFrames(), 0u);
}

TEST_F(TwoChainsTest, HugeStealKnobsClampToInboundCapacity) {
  StealConfig steal;
  steal.enabled = true;
  steal.threshold = ~std::uint32_t{0};
  steal.hysteresis = ~std::uint32_t{0};
  TestbedOptions options = Options();  // 2 banks x 4 slots -> 8-slot slice
  options.runtime.receiver_cores = 2;
  options.runtime.sender_core = 2;
  options.WithStealing(steal);
  SetUpTestbed(options);

  // The config keeps what the user asked for; the value *in force* clamps
  // to the whole inbound capacity — one peer's slice on this testbed.
  // (Backlog spans every peer's slice, so the bound is peer-count-aware,
  // not a single slice.)
  Runtime& rx = testbed_->runtime(1);
  const std::uint32_t capacity = rx.peer_count() * rx.config().banks *
                                 rx.config().mailboxes_per_bank;
  EXPECT_EQ(rx.config().steal.threshold, ~std::uint32_t{0});
  EXPECT_EQ(rx.EffectiveStealThreshold(), capacity);
  EXPECT_EQ(rx.EffectiveStealHysteresis(), capacity);
  // A full-capacity threshold still drains traffic like steal-off.
  std::vector<std::uint8_t> usr(8, 9);
  auto msg = SendAndRun("nop", Invoke::kInjected, {1}, usr);
  ASSERT_TRUE(msg.ok()) << msg.status();
  EXPECT_EQ(rx.stats().steals, 0u);
}

// -------------------------------------------------- core-range clamping

TEST_F(TwoChainsTest, SenderCoreClampsToCacheModelCores) {
  TestbedOptions options = Options();
  options.runtime.sender_core = 64;  // cache model has 4 cores
  SetUpTestbed(options);
  EXPECT_EQ(testbed_->runtime(0).config().sender_core,
            testbed_->host(0).core_count() - 1);
  // A clamped sender core still sends correctly.
  std::vector<std::uint8_t> usr(8, 1);
  auto msg = SendAndRun("nop", Invoke::kInjected, {3}, usr);
  ASSERT_TRUE(msg.ok()) << msg.status();
  EXPECT_EQ(msg->return_value, 3u);
}

TEST_F(TwoChainsTest, ReceiverCoreOutOfRangeClampsToZero) {
  TestbedOptions options = Options();
  options.runtime.receiver_core = 64;  // cache model has 4 cores
  SetUpTestbed(options);
  EXPECT_EQ(testbed_->runtime(1).config().receiver_core, 0u);
  std::vector<std::uint8_t> usr(8, 1);
  auto msg = SendAndRun("nop", Invoke::kInjected, {4}, usr);
  ASSERT_TRUE(msg.ok()) << msg.status();
  EXPECT_EQ(msg->return_value, 4u);
}

// ------------------------------------------------------ memory domains

/// 4-core hosts split into 2 domains ({0,1} and {2,3}) with the receiver
/// pool spanning them: core 1 (domain 0) and core 2 (domain 1).
TestbedOptions NumaOptions(bool placement) {
  TestbedOptions options;
  options.runtime.banks = 2;
  options.runtime.mailboxes_per_bank = 4;
  options.runtime.mailbox_slot_bytes = KiB(64);
  options.runtime.receiver_core = 1;
  options.runtime.receiver_cores = 2;
  options.runtime.sender_core = 3;
  options.runtime.domain_aware_placement = placement;
  options.WithDomains(2);
  return options;
}

TEST_F(TwoChainsTest, DomainPlacementKeepsAffinityDrainsLocal) {
  SetUpTestbed(NumaOptions(/*placement=*/true));
  std::vector<std::uint8_t> usr(256, 2);
  for (int i = 0; i < 24; ++i) {
    auto msg = SendAndRun("ssum", Invoke::kInjected, {0}, usr);
    ASSERT_TRUE(msg.ok()) << msg.status();
  }
  Runtime& rx = testbed_->runtime(1);
  // Both pool cores drained, and every frame's bank was homed in its
  // draining core's domain.
  ASSERT_EQ(rx.receiver_pool_size(), 2u);
  EXPECT_GT(rx.receiver_cpu(0).counters().messages_handled, 0u);
  EXPECT_GT(rx.receiver_cpu(1).counters().messages_handled, 0u);
  EXPECT_EQ(rx.stats().frames_drained_remote, 0u);
  EXPECT_EQ(rx.receiver_wait_stats(0).frames_drained_remote, 0u);
  EXPECT_EQ(rx.receiver_wait_stats(1).frames_drained_remote, 0u);
}

TEST_F(TwoChainsTest, FlatPlacementDrainsRemoteAndPaysThePenalty) {
  SetUpTestbed(NumaOptions(/*placement=*/false));
  std::vector<std::uint8_t> usr(256, 2);
  for (int i = 0; i < 24; ++i) {
    auto msg = SendAndRun("ssum", Invoke::kInjected, {0}, usr);
    ASSERT_TRUE(msg.ok()) << msg.status();
  }
  Runtime& rx = testbed_->runtime(1);
  // Flat placement homes every bank in domain 0, so the domain-1 pool
  // core's drains are all cross-domain — and they cost real cycles.
  const std::uint64_t pool1_drained =
      rx.receiver_cpu(1).counters().messages_handled;
  EXPECT_GT(pool1_drained, 0u);
  EXPECT_EQ(rx.stats().frames_drained_remote, pool1_drained);
  EXPECT_EQ(rx.receiver_wait_stats(1).frames_drained_remote, pool1_drained);
  EXPECT_EQ(rx.receiver_wait_stats(0).frames_drained_remote, 0u);
  EXPECT_GT(rx.stats().remote_drain_cycles, 0u);
  EXPECT_GT(rx.receiver_wait_stats(1).remote_drain_cycles, 0u);
}

TEST_F(TwoChainsTest, SingleDomainReportsNoRemoteDrains) {
  TestbedOptions options = Options();
  options.runtime.receiver_cores = 2;
  options.runtime.sender_core = 2;
  SetUpTestbed(options);  // domains = 1 (default)
  std::vector<std::uint8_t> usr(64, 5);
  for (int i = 0; i < 16; ++i) {
    auto msg = SendAndRun("ssum", Invoke::kInjected, {0}, usr);
    ASSERT_TRUE(msg.ok()) << msg.status();
  }
  EXPECT_EQ(testbed_->runtime(1).stats().frames_drained_remote, 0u);
  EXPECT_EQ(testbed_->runtime(1).stats().remote_drain_cycles, 0u);
}

// --------------------------------------------------- flow-control bias

TEST_F(TwoChainsTest, FlowBiasRoutesAroundAStalledPoolCore) {
  TestbedOptions options = Options();  // 2 banks x 4 slots
  options.runtime.receiver_cores = 2;
  options.runtime.sender_core = 2;
  options.runtime.flow_bias = true;
  SetUpTestbed(options);

  // Stall the first frame's pool core for a long stretch: bank 0 freezes
  // mid-drain while bank 1 keeps cycling. The biased sender must divert
  // bank-boundary picks to bank 1 instead of parking on bank 0's flag.
  Runtime& rx = testbed_->runtime(1);
  bool stalled = false;
  rx.SetPreemptionHook([&stalled]() -> PicoTime {
    if (stalled) return 0;
    stalled = true;
    return Microseconds(2000);
  });

  const int total = 32;
  int executed = 0;
  rx.SetOnExecuted([&](const ReceivedMessage&) { ++executed; });
  std::vector<std::uint8_t> usr(8, 1);
  int sent = 0;
  PumpLoop<> pump;
  pump.Set([&, resume = pump.Handle()] {
    while (sent < total) {
      if (!testbed_->runtime(0).HasFreeSlot()) {
        testbed_->runtime(0).NotifyWhenSlotFree(resume);
        return;
      }
      const std::vector<std::uint64_t> args = {1};
      ASSERT_TRUE(
          testbed_->runtime(0).Send("nop", Invoke::kInjected, args, usr)
              .ok());
      ++sent;
    }
  });
  pump();
  testbed_->RunUntil([&] { return executed == total; });
  EXPECT_EQ(executed, total);
  EXPECT_GT(testbed_->runtime(0).stats().biased_sends, 0u);
  EXPECT_EQ(rx.InFlightFrames(), 0u);
}

TEST_F(TwoChainsTest, FlowBiasOffNeverDiverts) {
  TestbedOptions options = Options();
  options.runtime.receiver_cores = 2;
  options.runtime.sender_core = 2;
  SetUpTestbed(options);  // flow_bias defaults off
  std::vector<std::uint8_t> usr(8, 1);
  for (int i = 0; i < 24; ++i) {
    auto msg = SendAndRun("nop", Invoke::kInjected, {1}, usr);
    ASSERT_TRUE(msg.ok()) << msg.status();
  }
  EXPECT_EQ(testbed_->runtime(0).stats().biased_sends, 0u);
}

}  // namespace
}  // namespace twochains::core
