// Unit tests for simulated host memory: allocation, permissions, CPU vs DMA
// access planes, and the RDMA region/rkey registry.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "common/units.hpp"
#include "mem/address.hpp"
#include "mem/host_memory.hpp"
#include "mem/region.hpp"

namespace twochains::mem {
namespace {

TEST(AddressTest, HostBasesAreDisjoint) {
  EXPECT_EQ(HostBase(0), 1ull << 40);
  EXPECT_EQ(HostBase(1), 2ull << 40);
  EXPECT_EQ(HostOfAddress(HostBase(0)), 0);
  EXPECT_EQ(HostOfAddress(HostBase(1) + 123), 1);
  EXPECT_EQ(HostOfAddress(100), -1);
}

TEST(AddressTest, PermStrings) {
  EXPECT_EQ(PermString(Perm::kNone), "---");
  EXPECT_EQ(PermString(Perm::kRead), "r--");
  EXPECT_EQ(PermString(Perm::kRW), "rw-");
  EXPECT_EQ(PermString(Perm::kRWX), "rwx");
  EXPECT_EQ(PermString(Perm::kRX), "r-x");
}

TEST(AddressTest, PermAlgebra) {
  EXPECT_TRUE(HasPerm(Perm::kRWX, Perm::kExec));
  EXPECT_TRUE(HasPerm(Perm::kRW, Perm::kRead));
  EXPECT_FALSE(HasPerm(Perm::kRW, Perm::kExec));
  EXPECT_FALSE(HasPerm(Perm::kNone, Perm::kRead));
  EXPECT_TRUE(HasPerm(Perm::kRead | Perm::kWrite, Perm::kRW));
}

class HostMemoryTest : public ::testing::Test {
 protected:
  HostMemory mem_{0, MiB(4)};
};

TEST_F(HostMemoryTest, ArenaGeometry) {
  EXPECT_EQ(mem_.base(), HostBase(0));
  EXPECT_EQ(mem_.size(), MiB(4));
  EXPECT_TRUE(mem_.Contains(mem_.base(), MiB(4)));
  EXPECT_FALSE(mem_.Contains(mem_.base(), MiB(4) + 1));
  EXPECT_FALSE(mem_.Contains(mem_.base() - 1, 1));
}

TEST_F(HostMemoryTest, AllocateAlignsAndGrantsPerms) {
  auto a = mem_.Allocate(100, 64, Perm::kRW, "buf");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a % kPageSize, 0u);  // page granular
  EXPECT_EQ(mem_.PagePerms(*a).value(), Perm::kRW);
  EXPECT_EQ(mem_.allocated_bytes(), 100u);
}

TEST_F(HostMemoryTest, AllocationsDoNotOverlap) {
  auto a = mem_.Allocate(KiB(8), 64, Perm::kRW, "a");
  auto b = mem_.Allocate(KiB(8), 64, Perm::kRW, "b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GE(*b, *a + KiB(8));
}

TEST_F(HostMemoryTest, ZeroSizeAllocationRejected) {
  EXPECT_EQ(mem_.Allocate(0, 8, Perm::kRW, "z").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(HostMemoryTest, NonPow2AlignmentRejected) {
  EXPECT_EQ(mem_.Allocate(64, 3, Perm::kRW, "z").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(HostMemoryTest, ExhaustionIsResourceExhausted) {
  auto a = mem_.Allocate(MiB(8), 64, Perm::kRW, "big");
  EXPECT_EQ(a.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(HostMemoryTest, FreeReleasesAndProtectsNone) {
  auto a = mem_.Allocate(KiB(4), 64, Perm::kRW, "a");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(mem_.Free(*a).ok());
  EXPECT_EQ(mem_.allocated_bytes(), 0u);
  EXPECT_EQ(mem_.PagePerms(*a).value(), Perm::kNone);
  EXPECT_EQ(mem_.Free(*a).code(), StatusCode::kNotFound);
}

TEST_F(HostMemoryTest, ReadWriteRoundTrip) {
  auto a = mem_.Allocate(256, 64, Perm::kRW, "rw");
  ASSERT_TRUE(a.ok());
  std::array<std::uint8_t, 4> data = {1, 2, 3, 4};
  ASSERT_TRUE(mem_.Write(*a, data).ok());
  std::array<std::uint8_t, 4> out{};
  ASSERT_TRUE(mem_.Read(*a, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(HostMemoryTest, TypedAccessors) {
  auto a = mem_.Allocate(64, 64, Perm::kRW, "t");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(mem_.StoreU64(*a, 0x1122334455667788ull).ok());
  EXPECT_EQ(mem_.LoadU64(*a).value(), 0x1122334455667788ull);
  EXPECT_EQ(mem_.LoadU32(*a).value(), 0x55667788u);   // little endian
  EXPECT_EQ(mem_.LoadU16(*a).value(), 0x7788u);
  EXPECT_EQ(mem_.LoadU8(*a).value(), 0x88u);
  ASSERT_TRUE(mem_.StoreU16(*a + 8, 0xBEEF).ok());
  EXPECT_EQ(mem_.LoadU16(*a + 8).value(), 0xBEEF);
}

TEST_F(HostMemoryTest, WriteToReadOnlyPageDenied) {
  auto a = mem_.Allocate(64, 64, Perm::kRead, "ro");
  ASSERT_TRUE(a.ok());
  std::array<std::uint8_t, 1> b = {9};
  EXPECT_EQ(mem_.Write(*a, b).code(), StatusCode::kPermissionDenied);
  std::array<std::uint8_t, 1> out{};
  EXPECT_TRUE(mem_.Read(*a, out).ok());
}

TEST_F(HostMemoryTest, ReadFromWriteOnlyDenied) {
  auto a = mem_.Allocate(64, 64, Perm::kWrite, "wo");
  ASSERT_TRUE(a.ok());
  std::array<std::uint8_t, 1> out{};
  EXPECT_EQ(mem_.Read(*a, out).code(), StatusCode::kPermissionDenied);
}

TEST_F(HostMemoryTest, ProtectFlipsPermissionsAtPageGranularity) {
  auto a = mem_.Allocate(2 * kPageSize, 64, Perm::kRW, "two-pages");
  ASSERT_TRUE(a.ok());
  // W^X split: first page stays RW, second becomes RX.
  ASSERT_TRUE(mem_.Protect(*a + kPageSize, kPageSize, Perm::kRX).ok());
  EXPECT_EQ(mem_.PagePerms(*a).value(), Perm::kRW);
  EXPECT_EQ(mem_.PagePerms(*a + kPageSize).value(), Perm::kRX);
  // A write spanning both pages must fail (second page not writable).
  std::array<std::uint8_t, 8> data{};
  EXPECT_EQ(mem_.Write(*a + kPageSize - 4, data).code(),
            StatusCode::kPermissionDenied);
}

TEST_F(HostMemoryTest, CheckPermsExecPages) {
  auto a = mem_.Allocate(kPageSize, 64, Perm::kRX, "code");
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(mem_.CheckPerms(*a, 100, Perm::kExec).ok());
  ASSERT_TRUE(mem_.Protect(*a, kPageSize, Perm::kRW).ok());
  EXPECT_EQ(mem_.CheckPerms(*a, 100, Perm::kExec).code(),
            StatusCode::kPermissionDenied);
}

TEST_F(HostMemoryTest, OutOfRangeAccess) {
  std::array<std::uint8_t, 16> out{};
  EXPECT_EQ(mem_.Read(mem_.base() + mem_.size() - 8, out).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(mem_.Read(HostBase(3), out).code(), StatusCode::kOutOfRange);
}

TEST_F(HostMemoryTest, DmaBypassesPagePermissions) {
  // DMA plane models the HCA writing registered memory: page perms do not
  // apply (rkey validation guards that path instead).
  auto a = mem_.Allocate(64, 64, Perm::kRead, "dma-target");
  ASSERT_TRUE(a.ok());
  std::array<std::uint8_t, 4> data = {7, 7, 7, 7};
  EXPECT_TRUE(mem_.DmaWrite(*a, data).ok());
  std::array<std::uint8_t, 4> out{};
  EXPECT_TRUE(mem_.DmaRead(*a, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(HostMemoryTest, DmaStillBoundsChecked) {
  std::array<std::uint8_t, 8> buf{};
  EXPECT_EQ(mem_.DmaWrite(mem_.base() + mem_.size(), buf).code(),
            StatusCode::kOutOfRange);
}

TEST_F(HostMemoryTest, RawSpanViewsArena) {
  auto a = mem_.Allocate(64, 64, Perm::kRW, "raw");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(mem_.StoreU8(*a, 0x5A).ok());
  auto span = mem_.RawSpan(*a, 8);
  ASSERT_TRUE(span.ok());
  EXPECT_EQ((*span)[0], 0x5A);
}

// ---------------------------------------------------------------- regions

class RegionTest : public ::testing::Test {
 protected:
  RegionRegistry reg_;
  static constexpr VirtAddr kBase = 0x1000;
};

TEST_F(RegionTest, RegisterAndValidate) {
  auto key = reg_.RegisterRegion(kBase, 4096, RemoteAccess::kWrite, "mbox");
  ASSERT_TRUE(key.ok());
  EXPECT_NE(key->value, 0u);
  auto r = reg_.Validate(*key, kBase + 100, 64, RemoteAccess::kWrite);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->addr, kBase);
}

TEST_F(RegionTest, InvalidKeyRejected) {
  auto key = reg_.RegisterRegion(kBase, 4096, RemoteAccess::kWrite, "mbox");
  ASSERT_TRUE(key.ok());
  RKey bogus{key->value ^ 0xFFFF};
  EXPECT_EQ(reg_.Validate(bogus, kBase, 64, RemoteAccess::kWrite)
                .status()
                .code(),
            StatusCode::kPermissionDenied);
}

TEST_F(RegionTest, RangeMustBeFullyCovered) {
  auto key = reg_.RegisterRegion(kBase, 4096, RemoteAccess::kWrite, "mbox");
  ASSERT_TRUE(key.ok());
  EXPECT_FALSE(reg_.Validate(*key, kBase + 4000, 200, RemoteAccess::kWrite)
                   .ok());  // runs past the end
  EXPECT_FALSE(
      reg_.Validate(*key, kBase - 8, 16, RemoteAccess::kWrite).ok());
}

TEST_F(RegionTest, AccessClassEnforced) {
  auto key = reg_.RegisterRegion(kBase, 4096, RemoteAccess::kRead, "ro");
  ASSERT_TRUE(key.ok());
  EXPECT_TRUE(reg_.Validate(*key, kBase, 64, RemoteAccess::kRead).ok());
  EXPECT_EQ(
      reg_.Validate(*key, kBase, 64, RemoteAccess::kWrite).status().code(),
      StatusCode::kPermissionDenied);
}

TEST_F(RegionTest, CombinedAccessClasses) {
  auto key = reg_.RegisterRegion(
      kBase, 4096, RemoteAccess::kRead | RemoteAccess::kWrite, "rw");
  ASSERT_TRUE(key.ok());
  EXPECT_TRUE(reg_.Validate(*key, kBase, 64, RemoteAccess::kRead).ok());
  EXPECT_TRUE(reg_.Validate(*key, kBase, 64, RemoteAccess::kWrite).ok());
  EXPECT_FALSE(reg_.Validate(*key, kBase, 64, RemoteAccess::kAtomic).ok());
}

TEST_F(RegionTest, ExecutableAccessClassExtension) {
  // §V of the paper proposes extending IBTA with an executable permission;
  // the registry supports it as a first-class access class.
  auto key = reg_.RegisterRegion(kBase, 4096,
                                 RemoteAccess::kWrite | RemoteAccess::kExec,
                                 "injectable");
  ASSERT_TRUE(key.ok());
  EXPECT_TRUE(reg_.Validate(*key, kBase, 64, RemoteAccess::kExec).ok());
}

TEST_F(RegionTest, DeregisterInvalidates) {
  auto key = reg_.RegisterRegion(kBase, 4096, RemoteAccess::kWrite, "mbox");
  ASSERT_TRUE(key.ok());
  ASSERT_TRUE(reg_.Deregister(*key).ok());
  EXPECT_EQ(reg_.Validate(*key, kBase, 64, RemoteAccess::kWrite)
                .status()
                .code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(reg_.Deregister(*key).code(), StatusCode::kNotFound);
  EXPECT_EQ(reg_.LiveRegions(), 0u);
}

TEST_F(RegionTest, KeysAreUniquePerRegistration) {
  // Same address + permissions registered repeatedly must yield distinct
  // keys (the serial mixes in), so a stale key from a prior registration
  // cannot authorize access to a new one.
  auto k1 = reg_.RegisterRegion(kBase, 4096, RemoteAccess::kWrite, "a");
  ASSERT_TRUE(k1.ok());
  ASSERT_TRUE(reg_.Deregister(*k1).ok());
  auto k2 = reg_.RegisterRegion(kBase, 4096, RemoteAccess::kWrite, "b");
  ASSERT_TRUE(k2.ok());
  EXPECT_NE(k1->value, k2->value);
  EXPECT_FALSE(reg_.Validate(*k1, kBase, 64, RemoteAccess::kWrite).ok());
}

TEST_F(RegionTest, ZeroSizeRegionRejected) {
  EXPECT_EQ(
      reg_.RegisterRegion(kBase, 0, RemoteAccess::kRead, "z").status().code(),
      StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace twochains::mem
