// Unit tests for simulated host memory: allocation, permissions, CPU vs DMA
// access planes, and the RDMA region/rkey registry.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "common/units.hpp"
#include "mem/address.hpp"
#include "mem/host_memory.hpp"
#include "mem/region.hpp"

namespace twochains::mem {
namespace {

TEST(AddressTest, HostBasesAreDisjoint) {
  EXPECT_EQ(HostBase(0), 1ull << 40);
  EXPECT_EQ(HostBase(1), 2ull << 40);
  EXPECT_EQ(HostOfAddress(HostBase(0)), 0);
  EXPECT_EQ(HostOfAddress(HostBase(1) + 123), 1);
  EXPECT_EQ(HostOfAddress(100), -1);
}

TEST(AddressTest, PermStrings) {
  EXPECT_EQ(PermString(Perm::kNone), "---");
  EXPECT_EQ(PermString(Perm::kRead), "r--");
  EXPECT_EQ(PermString(Perm::kRW), "rw-");
  EXPECT_EQ(PermString(Perm::kRWX), "rwx");
  EXPECT_EQ(PermString(Perm::kRX), "r-x");
}

TEST(AddressTest, PermAlgebra) {
  EXPECT_TRUE(HasPerm(Perm::kRWX, Perm::kExec));
  EXPECT_TRUE(HasPerm(Perm::kRW, Perm::kRead));
  EXPECT_FALSE(HasPerm(Perm::kRW, Perm::kExec));
  EXPECT_FALSE(HasPerm(Perm::kNone, Perm::kRead));
  EXPECT_TRUE(HasPerm(Perm::kRead | Perm::kWrite, Perm::kRW));
}

class HostMemoryTest : public ::testing::Test {
 protected:
  HostMemory mem_{0, MiB(4)};
};

TEST_F(HostMemoryTest, ArenaGeometry) {
  EXPECT_EQ(mem_.base(), HostBase(0));
  EXPECT_EQ(mem_.size(), MiB(4));
  EXPECT_TRUE(mem_.Contains(mem_.base(), MiB(4)));
  EXPECT_FALSE(mem_.Contains(mem_.base(), MiB(4) + 1));
  EXPECT_FALSE(mem_.Contains(mem_.base() - 1, 1));
}

TEST_F(HostMemoryTest, AllocateAlignsAndGrantsPerms) {
  auto a = mem_.Allocate(100, 64, Perm::kRW, "buf");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a % kPageSize, 0u);  // page granular
  EXPECT_EQ(mem_.PagePerms(*a).value(), Perm::kRW);
  EXPECT_EQ(mem_.allocated_bytes(), 100u);
}

TEST_F(HostMemoryTest, AllocationsDoNotOverlap) {
  auto a = mem_.Allocate(KiB(8), 64, Perm::kRW, "a");
  auto b = mem_.Allocate(KiB(8), 64, Perm::kRW, "b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GE(*b, *a + KiB(8));
}

TEST_F(HostMemoryTest, ZeroSizeAllocationRejected) {
  EXPECT_EQ(mem_.Allocate(0, 8, Perm::kRW, "z").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(HostMemoryTest, NonPow2AlignmentRejected) {
  EXPECT_EQ(mem_.Allocate(64, 3, Perm::kRW, "z").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(HostMemoryTest, ExhaustionIsResourceExhausted) {
  auto a = mem_.Allocate(MiB(8), 64, Perm::kRW, "big");
  EXPECT_EQ(a.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(HostMemoryTest, FreeReleasesAndProtectsNone) {
  auto a = mem_.Allocate(KiB(4), 64, Perm::kRW, "a");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(mem_.Free(*a).ok());
  EXPECT_EQ(mem_.allocated_bytes(), 0u);
  EXPECT_EQ(mem_.PagePerms(*a).value(), Perm::kNone);
  EXPECT_EQ(mem_.Free(*a).code(), StatusCode::kNotFound);
}

TEST_F(HostMemoryTest, ReadWriteRoundTrip) {
  auto a = mem_.Allocate(256, 64, Perm::kRW, "rw");
  ASSERT_TRUE(a.ok());
  std::array<std::uint8_t, 4> data = {1, 2, 3, 4};
  ASSERT_TRUE(mem_.Write(*a, data).ok());
  std::array<std::uint8_t, 4> out{};
  ASSERT_TRUE(mem_.Read(*a, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(HostMemoryTest, TypedAccessors) {
  auto a = mem_.Allocate(64, 64, Perm::kRW, "t");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(mem_.StoreU64(*a, 0x1122334455667788ull).ok());
  EXPECT_EQ(mem_.LoadU64(*a).value(), 0x1122334455667788ull);
  EXPECT_EQ(mem_.LoadU32(*a).value(), 0x55667788u);   // little endian
  EXPECT_EQ(mem_.LoadU16(*a).value(), 0x7788u);
  EXPECT_EQ(mem_.LoadU8(*a).value(), 0x88u);
  ASSERT_TRUE(mem_.StoreU16(*a + 8, 0xBEEF).ok());
  EXPECT_EQ(mem_.LoadU16(*a + 8).value(), 0xBEEF);
}

TEST_F(HostMemoryTest, WriteToReadOnlyPageDenied) {
  auto a = mem_.Allocate(64, 64, Perm::kRead, "ro");
  ASSERT_TRUE(a.ok());
  std::array<std::uint8_t, 1> b = {9};
  EXPECT_EQ(mem_.Write(*a, b).code(), StatusCode::kPermissionDenied);
  std::array<std::uint8_t, 1> out{};
  EXPECT_TRUE(mem_.Read(*a, out).ok());
}

TEST_F(HostMemoryTest, ReadFromWriteOnlyDenied) {
  auto a = mem_.Allocate(64, 64, Perm::kWrite, "wo");
  ASSERT_TRUE(a.ok());
  std::array<std::uint8_t, 1> out{};
  EXPECT_EQ(mem_.Read(*a, out).code(), StatusCode::kPermissionDenied);
}

TEST_F(HostMemoryTest, ProtectFlipsPermissionsAtPageGranularity) {
  auto a = mem_.Allocate(2 * kPageSize, 64, Perm::kRW, "two-pages");
  ASSERT_TRUE(a.ok());
  // W^X split: first page stays RW, second becomes RX.
  ASSERT_TRUE(mem_.Protect(*a + kPageSize, kPageSize, Perm::kRX).ok());
  EXPECT_EQ(mem_.PagePerms(*a).value(), Perm::kRW);
  EXPECT_EQ(mem_.PagePerms(*a + kPageSize).value(), Perm::kRX);
  // A write spanning both pages must fail (second page not writable).
  std::array<std::uint8_t, 8> data{};
  EXPECT_EQ(mem_.Write(*a + kPageSize - 4, data).code(),
            StatusCode::kPermissionDenied);
}

TEST_F(HostMemoryTest, CheckPermsExecPages) {
  auto a = mem_.Allocate(kPageSize, 64, Perm::kRX, "code");
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(mem_.CheckPerms(*a, 100, Perm::kExec).ok());
  ASSERT_TRUE(mem_.Protect(*a, kPageSize, Perm::kRW).ok());
  EXPECT_EQ(mem_.CheckPerms(*a, 100, Perm::kExec).code(),
            StatusCode::kPermissionDenied);
}

TEST_F(HostMemoryTest, OutOfRangeAccess) {
  std::array<std::uint8_t, 16> out{};
  EXPECT_EQ(mem_.Read(mem_.base() + mem_.size() - 8, out).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(mem_.Read(HostBase(3), out).code(), StatusCode::kOutOfRange);
}

TEST_F(HostMemoryTest, DmaBypassesPagePermissions) {
  // DMA plane models the HCA writing registered memory: page perms do not
  // apply (rkey validation guards that path instead).
  auto a = mem_.Allocate(64, 64, Perm::kRead, "dma-target");
  ASSERT_TRUE(a.ok());
  std::array<std::uint8_t, 4> data = {7, 7, 7, 7};
  EXPECT_TRUE(mem_.DmaWrite(*a, data).ok());
  std::array<std::uint8_t, 4> out{};
  EXPECT_TRUE(mem_.DmaRead(*a, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(HostMemoryTest, DmaStillBoundsChecked) {
  std::array<std::uint8_t, 8> buf{};
  EXPECT_EQ(mem_.DmaWrite(mem_.base() + mem_.size(), buf).code(),
            StatusCode::kOutOfRange);
}

TEST_F(HostMemoryTest, RawSpanViewsArena) {
  auto a = mem_.Allocate(64, 64, Perm::kRW, "raw");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(mem_.StoreU8(*a, 0x5A).ok());
  auto span = mem_.RawSpan(*a, 8);
  ASSERT_TRUE(span.ok());
  EXPECT_EQ((*span)[0], 0x5A);
}

// ---------------------------------------------------------------- domains

class DomainMemoryTest : public ::testing::Test {
 protected:
  // 4 MiB arena split into two 2 MiB domain slices.
  static constexpr std::uint64_t kSpan = MiB(2);
  HostMemory mem_{0, MiB(4), 2};
};

TEST_F(DomainMemoryTest, GeometryAndDomainOfBoundaries) {
  EXPECT_EQ(mem_.domains(), 2u);
  EXPECT_EQ(mem_.domain_span(), kSpan);
  // Exact boundary addresses: the last byte of domain 0, the first of
  // domain 1, and the clamp past the arena end.
  EXPECT_EQ(mem_.DomainOf(mem_.base()), 0u);
  EXPECT_EQ(mem_.DomainOf(mem_.base() + kSpan - 1), 0u);
  EXPECT_EQ(mem_.DomainOf(mem_.base() + kSpan), 1u);
  EXPECT_EQ(mem_.DomainOf(mem_.base() + MiB(4) - 1), 1u);
  EXPECT_EQ(mem_.DomainOf(mem_.base() + MiB(64)), 1u);  // clamps to last
  EXPECT_EQ(mem_.DomainOf(0), 0u);                      // below the arena
}

TEST_F(DomainMemoryTest, NonPowerOfTwoDomainCountKeepsSlicesPageAligned) {
  // 3 domains over an 8 KiB request: each slice rounds up to whole pages
  // independently, so boundaries stay page-aligned and every domain can
  // serve at least one page.
  HostMemory mem(2, KiB(8), 3);
  EXPECT_EQ(mem.domains(), 3u);
  EXPECT_EQ(mem.domain_span() % kPageSize, 0u);
  EXPECT_EQ(mem.size(), 3 * mem.domain_span());
  for (DomainId d = 0; d < 3; ++d) {
    auto a = mem.Allocate(KiB(4), 64, Perm::kRW, "page", d);
    ASSERT_TRUE(a.ok()) << "domain " << d;
    EXPECT_EQ(mem.DomainOf(*a), d);
  }
}

TEST_F(DomainMemoryTest, SingleDomainDegeneratesToFlatArena) {
  HostMemory flat(1, MiB(4));
  EXPECT_EQ(flat.domains(), 1u);
  EXPECT_EQ(flat.DomainOf(flat.base() + MiB(3)), 0u);
  auto a = flat.Allocate(KiB(4), 64, Perm::kRW, "flat");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, flat.base());
}

TEST_F(DomainMemoryTest, AllocateHonorsHintAndAlignsWithinDomain) {
  auto a = mem_.Allocate(100, 256, Perm::kRW, "d1", /*domain_hint=*/1);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(mem_.DomainOf(*a), 1u);
  EXPECT_EQ(*a % kPageSize, 0u);  // page granular
  EXPECT_EQ(*a % 256, 0u);       // requested alignment
  EXPECT_GE(*a, mem_.base() + kSpan);
  // Large alignment is honored inside the hinted slice too.
  auto b = mem_.Allocate(100, KiB(64), Perm::kRW, "d1-big-align", 1);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(mem_.DomainOf(*b), 1u);
  EXPECT_EQ(*b % KiB(64), 0u);
}

TEST_F(DomainMemoryTest, OversizedHintClampsToLastDomain) {
  auto a = mem_.Allocate(KiB(4), 64, Perm::kRW, "clamped", 99);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(mem_.DomainOf(*a), 1u);
}

TEST_F(DomainMemoryTest, SpillsToNeighborOnExhaustion) {
  // Fill domain 0 completely, then hint at it again: the allocation must
  // land in domain 1 instead of failing.
  auto fill = mem_.Allocate(kSpan, 64, Perm::kRW, "fill-d0", 0);
  ASSERT_TRUE(fill.ok());
  EXPECT_EQ(mem_.DomainOf(*fill), 0u);
  auto spill = mem_.Allocate(KiB(8), 64, Perm::kRW, "spill", 0);
  ASSERT_TRUE(spill.ok());
  EXPECT_EQ(mem_.DomainOf(*spill), 1u);
  // Both slices full -> exhaustion, however the hint points.
  auto fill1 = mem_.Allocate(kSpan - KiB(8), 64, Perm::kRW, "fill-d1", 1);
  ASSERT_TRUE(fill1.ok());
  EXPECT_EQ(mem_.Allocate(KiB(4), 64, Perm::kRW, "none", 0).status().code(),
            StatusCode::kResourceExhausted);
}

TEST_F(DomainMemoryTest, FreeRestoresTheDomainFreeList) {
  // A full alloc/free cycle restores the slice: the next same-sized
  // allocation in that domain reuses the released pages.
  auto a = mem_.Allocate(KiB(8), 64, Perm::kRW, "a", 1);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(mem_.Free(*a).ok());
  auto b = mem_.Allocate(KiB(8), 64, Perm::kRW, "b", 1);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, *a);
  EXPECT_EQ(mem_.DomainOf(*b), 1u);
}

TEST_F(DomainMemoryTest, FreeListReusesInteriorHoles) {
  // a | b | c packed in domain 0; freeing b leaves an interior hole that
  // a same-sized allocation must reuse (first fit), without touching the
  // neighbours.
  auto a = mem_.Allocate(KiB(4), 64, Perm::kRW, "a", 0);
  auto b = mem_.Allocate(KiB(8), 64, Perm::kRW, "b", 0);
  auto c = mem_.Allocate(KiB(4), 64, Perm::kRW, "c", 0);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(mem_.Free(*b).ok());
  auto again = mem_.Allocate(KiB(8), 64, Perm::kRW, "b2", 0);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *b);
  // The hole only fits page-granular sizes up to the freed span: a larger
  // request must come from fresh pages past c.
  ASSERT_TRUE(mem_.Free(*again).ok());
  auto bigger = mem_.Allocate(KiB(16), 64, Perm::kRW, "bigger", 0);
  ASSERT_TRUE(bigger.ok());
  EXPECT_GT(*bigger, *c);
}

TEST_F(DomainMemoryTest, FreeCoalescesAdjacentRuns) {
  // Free two adjacent blocks in either order; a request spanning both
  // must fit in the coalesced run.
  auto a = mem_.Allocate(KiB(4), 64, Perm::kRW, "a", 0);
  auto b = mem_.Allocate(KiB(4), 64, Perm::kRW, "b", 0);
  auto c = mem_.Allocate(KiB(4), 64, Perm::kRW, "c", 0);  // pins the bump
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(mem_.Free(*a).ok());
  ASSERT_TRUE(mem_.Free(*b).ok());
  auto merged = mem_.Allocate(KiB(8), 64, Perm::kRW, "merged", 0);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(*merged, *a);
}

TEST_F(DomainMemoryTest, SpilledAllocationFreesBackToItsRealDomain) {
  // An allocation that spilled into domain 1 returns to *domain 1's*
  // free list, not the hinted domain's.
  auto fill = mem_.Allocate(kSpan, 64, Perm::kRW, "fill-d0", 0);
  ASSERT_TRUE(fill.ok());
  auto spill = mem_.Allocate(KiB(8), 64, Perm::kRW, "spill", 0);
  ASSERT_TRUE(spill.ok());
  ASSERT_EQ(mem_.DomainOf(*spill), 1u);
  ASSERT_TRUE(mem_.Free(*spill).ok());
  auto d1 = mem_.Allocate(KiB(8), 64, Perm::kRW, "d1", 1);
  ASSERT_TRUE(d1.ok());
  EXPECT_EQ(*d1, *spill);
}

TEST_F(DomainMemoryTest, PermissionsSurviveTheDomainPlane) {
  // Perms still apply per page regardless of which domain served the
  // allocation.
  auto a = mem_.Allocate(64, 64, Perm::kRead, "ro-d1", 1);
  ASSERT_TRUE(a.ok());
  std::array<std::uint8_t, 1> buf = {1};
  EXPECT_EQ(mem_.Write(*a, buf).code(), StatusCode::kPermissionDenied);
  ASSERT_TRUE(mem_.Free(*a).ok());
  EXPECT_EQ(mem_.PagePerms(*a).value(), Perm::kNone);
}

// ---------------------------------------------------------------- regions

class RegionTest : public ::testing::Test {
 protected:
  RegionRegistry reg_;
  static constexpr VirtAddr kBase = 0x1000;
};

TEST_F(RegionTest, RegisterAndValidate) {
  auto key = reg_.RegisterRegion(kBase, 4096, RemoteAccess::kWrite, "mbox");
  ASSERT_TRUE(key.ok());
  EXPECT_NE(key->value, 0u);
  auto r = reg_.Validate(*key, kBase + 100, 64, RemoteAccess::kWrite);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->addr, kBase);
}

TEST_F(RegionTest, InvalidKeyRejected) {
  auto key = reg_.RegisterRegion(kBase, 4096, RemoteAccess::kWrite, "mbox");
  ASSERT_TRUE(key.ok());
  RKey bogus{key->value ^ 0xFFFF};
  EXPECT_EQ(reg_.Validate(bogus, kBase, 64, RemoteAccess::kWrite)
                .status()
                .code(),
            StatusCode::kPermissionDenied);
}

TEST_F(RegionTest, RangeMustBeFullyCovered) {
  auto key = reg_.RegisterRegion(kBase, 4096, RemoteAccess::kWrite, "mbox");
  ASSERT_TRUE(key.ok());
  EXPECT_FALSE(reg_.Validate(*key, kBase + 4000, 200, RemoteAccess::kWrite)
                   .ok());  // runs past the end
  EXPECT_FALSE(
      reg_.Validate(*key, kBase - 8, 16, RemoteAccess::kWrite).ok());
}

TEST_F(RegionTest, AccessClassEnforced) {
  auto key = reg_.RegisterRegion(kBase, 4096, RemoteAccess::kRead, "ro");
  ASSERT_TRUE(key.ok());
  EXPECT_TRUE(reg_.Validate(*key, kBase, 64, RemoteAccess::kRead).ok());
  EXPECT_EQ(
      reg_.Validate(*key, kBase, 64, RemoteAccess::kWrite).status().code(),
      StatusCode::kPermissionDenied);
}

TEST_F(RegionTest, CombinedAccessClasses) {
  auto key = reg_.RegisterRegion(
      kBase, 4096, RemoteAccess::kRead | RemoteAccess::kWrite, "rw");
  ASSERT_TRUE(key.ok());
  EXPECT_TRUE(reg_.Validate(*key, kBase, 64, RemoteAccess::kRead).ok());
  EXPECT_TRUE(reg_.Validate(*key, kBase, 64, RemoteAccess::kWrite).ok());
  EXPECT_FALSE(reg_.Validate(*key, kBase, 64, RemoteAccess::kAtomic).ok());
}

TEST_F(RegionTest, ExecutableAccessClassExtension) {
  // §V of the paper proposes extending IBTA with an executable permission;
  // the registry supports it as a first-class access class.
  auto key = reg_.RegisterRegion(kBase, 4096,
                                 RemoteAccess::kWrite | RemoteAccess::kExec,
                                 "injectable");
  ASSERT_TRUE(key.ok());
  EXPECT_TRUE(reg_.Validate(*key, kBase, 64, RemoteAccess::kExec).ok());
}

TEST_F(RegionTest, DeregisterInvalidates) {
  auto key = reg_.RegisterRegion(kBase, 4096, RemoteAccess::kWrite, "mbox");
  ASSERT_TRUE(key.ok());
  ASSERT_TRUE(reg_.Deregister(*key).ok());
  EXPECT_EQ(reg_.Validate(*key, kBase, 64, RemoteAccess::kWrite)
                .status()
                .code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(reg_.Deregister(*key).code(), StatusCode::kNotFound);
  EXPECT_EQ(reg_.LiveRegions(), 0u);
}

TEST_F(RegionTest, KeysAreUniquePerRegistration) {
  // Same address + permissions registered repeatedly must yield distinct
  // keys (the serial mixes in), so a stale key from a prior registration
  // cannot authorize access to a new one.
  auto k1 = reg_.RegisterRegion(kBase, 4096, RemoteAccess::kWrite, "a");
  ASSERT_TRUE(k1.ok());
  ASSERT_TRUE(reg_.Deregister(*k1).ok());
  auto k2 = reg_.RegisterRegion(kBase, 4096, RemoteAccess::kWrite, "b");
  ASSERT_TRUE(k2.ok());
  EXPECT_NE(k1->value, k2->value);
  EXPECT_FALSE(reg_.Validate(*k1, kBase, 64, RemoteAccess::kWrite).ok());
}

TEST_F(RegionTest, ZeroSizeRegionRejected) {
  EXPECT_EQ(
      reg_.RegisterRegion(kBase, 0, RemoteAccess::kRead, "z").status().code(),
      StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace twochains::mem
