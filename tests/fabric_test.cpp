// Tests for the N-host fabric: topology wireup, cluster-wide namespace
// sync, per-peer flow-control isolation, bank-flag demultiplexing back to
// the owning sender, and per-peer stats.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "benchlib/perftest.hpp"
#include "benchlib/stress.hpp"
#include "benchlib/workloads.hpp"
#include "common/pump.hpp"
#include "core/fabric.hpp"

namespace twochains::core {
namespace {

FabricOptions SmallOptions(std::uint32_t hosts,
                           Topology topology = Topology::kFullMesh,
                           std::uint32_t hub = 0) {
  FabricOptions options;
  options.hosts = hosts;
  options.topology = topology;
  options.hub = hub;
  options.runtime.banks = 2;
  options.runtime.mailboxes_per_bank = 4;
  options.runtime.mailbox_slot_bytes = KiB(64);
  return options;
}

std::unique_ptr<Fabric> MakeLoadedFabric(FabricOptions options) {
  auto fabric = std::make_unique<Fabric>(std::move(options));
  auto package = bench::BuildBenchPackage();
  EXPECT_TRUE(package.ok()) << package.status();
  EXPECT_TRUE(fabric->LoadPackage(*package).ok());
  return fabric;
}

/// Sends one jam from src to dst and runs until it executes there.
StatusOr<ReceivedMessage> SendAndRun(Fabric& fabric, std::uint32_t src,
                                     std::uint32_t dst,
                                     const std::string& jam,
                                     std::vector<std::uint64_t> args,
                                     std::vector<std::uint8_t> usr) {
  TC_ASSIGN_OR_RETURN(const PeerId peer, fabric.PeerIdFor(src, dst));
  std::optional<ReceivedMessage> received;
  fabric.runtime(dst).SetOnExecuted(
      [&](const ReceivedMessage& msg) { received = msg; });
  TC_ASSIGN_OR_RETURN(
      const SendReceipt receipt,
      fabric.runtime(src).Send(peer, jam, Invoke::kInjected, args, usr));
  (void)receipt;
  fabric.RunUntil([&] { return received.has_value(); });
  fabric.runtime(dst).SetOnExecuted(nullptr);
  if (!received.has_value()) return Internal("message never executed");
  return *received;
}

// ------------------------------------------------------------- topology

TEST(FabricTest, FullMeshWiresEveryPair) {
  auto fabric = MakeLoadedFabric(SmallOptions(3));
  for (std::uint32_t a = 0; a < 3; ++a) {
    EXPECT_EQ(fabric->runtime(a).peer_count(), 2u);
    for (std::uint32_t b = 0; b < 3; ++b) {
      if (a == b) {
        EXPECT_FALSE(fabric->Connected(a, b));
        continue;
      }
      EXPECT_TRUE(fabric->Connected(a, b));
      auto peer = fabric->PeerIdFor(a, b);
      ASSERT_TRUE(peer.ok());
      EXPECT_LT(*peer, 2u);
    }
  }
}

TEST(FabricTest, StarWiresSpokesToHubOnly) {
  auto fabric = MakeLoadedFabric(SmallOptions(4, Topology::kStar, 0));
  EXPECT_EQ(fabric->runtime(0).peer_count(), 3u);
  for (std::uint32_t spoke = 1; spoke < 4; ++spoke) {
    EXPECT_EQ(fabric->runtime(spoke).peer_count(), 1u);
    EXPECT_TRUE(fabric->Connected(0, spoke));
  }
  EXPECT_FALSE(fabric->Connected(1, 2));
  EXPECT_EQ(fabric->PeerIdFor(1, 2).status().code(), StatusCode::kNotFound);
}

TEST(FabricTest, MessagesFlowBetweenEveryConnectedPair) {
  auto fabric = MakeLoadedFabric(SmallOptions(3));
  std::vector<std::uint8_t> usr(16);
  for (std::uint32_t src = 0; src < 3; ++src) {
    for (std::uint32_t dst = 0; dst < 3; ++dst) {
      if (src == dst) continue;
      const std::uint64_t v = 100 * src + dst;
      std::memcpy(usr.data(), &v, 8);
      auto msg = SendAndRun(*fabric, src, dst, "nop", {v}, usr);
      ASSERT_TRUE(msg.ok()) << "src=" << src << " dst=" << dst << ": "
                            << msg.status();
      EXPECT_TRUE(msg->executed);
      EXPECT_EQ(msg->return_value, v);
      // The receiver saw the frame on the peer slot that maps back to src.
      auto expect_from = fabric->PeerIdFor(dst, src);
      ASSERT_TRUE(expect_from.ok());
      EXPECT_EQ(msg->from, *expect_from);
    }
  }
}

// ------------------------------------------------------- namespace sync

TEST(FabricTest, ClusterNamespaceSyncVisibleFromEveryHost) {
  // Injected ssum links against the receiver-resident kvstore ried; a send
  // from every host to every other host only packs a valid GOTP if the
  // cluster-wide namespace exchange reached that pair.
  auto fabric = MakeLoadedFabric(SmallOptions(3));
  std::vector<std::uint8_t> usr(32);
  for (std::uint32_t src = 0; src < 3; ++src) {
    for (std::uint32_t dst = 0; dst < 3; ++dst) {
      if (src == dst) continue;
      std::uint64_t expect = 0;
      for (std::uint64_t i = 0; i < 4; ++i) {
        const std::uint64_t v = src * 1000 + dst * 10 + i;
        std::memcpy(usr.data() + 8 * i, &v, 8);
        expect += v;
      }
      auto msg = SendAndRun(*fabric, src, dst, "ssum", {0}, usr);
      ASSERT_TRUE(msg.ok()) << "src=" << src << " dst=" << dst << ": "
                            << msg.status();
      EXPECT_EQ(msg->return_value, expect);
    }
  }
  // Every host executed exactly the two messages addressed to it, each
  // accounted to the correct peer.
  for (std::uint32_t h = 0; h < 3; ++h) {
    const auto& stats = fabric->runtime(h).stats();
    EXPECT_EQ(stats.messages_executed, 2u);
    ASSERT_EQ(stats.per_peer.size(), 2u);
    EXPECT_EQ(stats.per_peer[0].messages_executed, 1u);
    EXPECT_EQ(stats.per_peer[1].messages_executed, 1u);
  }
}

// --------------------------------------------------------- flow control

TEST(FabricTest, PerPeerFlowControlIsolation) {
  // Exhausting every bank toward peer A must not stall sends to peer B.
  auto fabric = MakeLoadedFabric(SmallOptions(3));
  Runtime& sender = fabric->runtime(0);
  auto to_a = fabric->PeerIdFor(0, 1);
  auto to_b = fabric->PeerIdFor(0, 2);
  ASSERT_TRUE(to_a.ok());
  ASSERT_TRUE(to_b.ok());

  std::vector<std::uint8_t> usr(8, 0);
  // Fill all of peer A's banks without letting the engine run.
  int sends_to_a = 0;
  while (sender.HasFreeSlot(*to_a)) {
    ASSERT_TRUE(sender.Send(*to_a, "ssum", Invoke::kInjected, {}, usr).ok());
    ++sends_to_a;
  }
  EXPECT_EQ(sends_to_a, 8);  // 2 banks x 4 slots
  auto blocked = sender.Send(*to_a, "ssum", Invoke::kInjected, {}, usr);
  EXPECT_EQ(blocked.status().code(), StatusCode::kResourceExhausted);

  // Peer B is untouched: its banks are all open and sends succeed.
  EXPECT_TRUE(sender.HasFreeSlot(*to_b));
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(sender.Send(*to_b, "ssum", Invoke::kInjected, {}, usr).ok());
  }
  EXPECT_EQ(sender.Send(*to_b, "ssum", Invoke::kInjected, {}, usr)
                .status()
                .code(),
            StatusCode::kResourceExhausted);

  // Stalls were accounted to the right peers.
  const auto& per_peer = sender.stats().per_peer;
  EXPECT_EQ(per_peer[*to_a].send_stalls, 1u);
  EXPECT_EQ(per_peer[*to_b].send_stalls, 1u);
  EXPECT_EQ(per_peer[*to_a].messages_sent, 8u);
  EXPECT_EQ(per_peer[*to_b].messages_sent, 8u);

  // Waiters are per peer too: a waiter on A fires once A's flags return,
  // even though B stays exhausted (nothing drains B here... both drain).
  fabric->Run();
  EXPECT_TRUE(sender.HasFreeSlot(*to_a));
  EXPECT_TRUE(sender.HasFreeSlot(*to_b));
  EXPECT_EQ(fabric->runtime(1).stats().messages_executed, 8u);
  EXPECT_EQ(fabric->runtime(2).stats().messages_executed, 8u);
}

TEST(FabricTest, BankFlagsReturnToOwningSenderUnderInterleavedTraffic) {
  // Two senders incast one receiver with interleaved streams, several bank
  // cycles deep. Each sender's flow control must be replenished by its own
  // flags (never the other sender's), and every payload must execute from
  // the mailbox slice of the peer that sent it.
  auto fabric = MakeLoadedFabric(SmallOptions(3, Topology::kStar, 2));
  Runtime& receiver = fabric->runtime(2);
  const int kPerSender = 40;  // 5 bank cycles at 2x4 slots

  std::map<PeerId, std::uint64_t> sum_by_peer;
  std::map<PeerId, int> count_by_peer;
  receiver.SetOnExecuted([&](const ReceivedMessage& msg) {
    sum_by_peer[msg.from] += msg.return_value;
    ++count_by_peer[msg.from];
  });

  std::uint64_t expect_sum[2] = {0, 0};
  int sent[2] = {0, 0};
  std::vector<std::uint8_t> usr(8);

  // Interleave: alternate pumps, each parking on its own flow control.
  PumpLoop<int> pump;
  pump.Set([&, resume = pump.Handle()](int s) {
    Runtime& sender = fabric->runtime(s);
    const PeerId to_rx = *fabric->PeerIdFor(s, 2);
    while (sent[s] < kPerSender) {
      if (!sender.HasFreeSlot(to_rx)) {
        sender.NotifyWhenSlotFree(to_rx, [resume, s] { resume(s); });
        return;
      }
      // Distinct value streams: sender 0 sends odd, sender 1 sends even.
      const std::uint64_t v = 2 * (sent[s] + 1) + (s == 0 ? 1 : 0);
      std::memcpy(usr.data(), &v, 8);
      expect_sum[s] += v;
      ASSERT_TRUE(sender.Send(to_rx, "ssum", Invoke::kInjected, {}, usr).ok());
      ++sent[s];
    }
  });
  pump(0);
  pump(1);
  fabric->RunUntil([&] {
    return receiver.stats().messages_executed >=
           static_cast<std::uint64_t>(2 * kPerSender);
  });
  receiver.SetOnExecuted(nullptr);

  const PeerId from0 = *fabric->PeerIdFor(2, 0);
  const PeerId from1 = *fabric->PeerIdFor(2, 1);
  EXPECT_EQ(count_by_peer[from0], kPerSender);
  EXPECT_EQ(count_by_peer[from1], kPerSender);
  // No cross-talk: each sender's distinct value stream arrived intact.
  EXPECT_EQ(sum_by_peer[from0], expect_sum[0]);
  EXPECT_EQ(sum_by_peer[from1], expect_sum[1]);

  // Flags went back to the right sender: both senders finished all 40
  // sends (10 bank closures each), and the receiver returned flags on
  // both peer slices.
  const auto& rx_peers = receiver.stats().per_peer;
  EXPECT_GE(rx_peers[from0].bank_flags_returned, 9u);
  EXPECT_GE(rx_peers[from1].bank_flags_returned, 9u);
  EXPECT_EQ(fabric->runtime(0).stats().per_peer[*fabric->PeerIdFor(0, 2)]
                .messages_sent,
            static_cast<std::uint64_t>(kPerSender));
  EXPECT_EQ(fabric->runtime(1).stats().per_peer[*fabric->PeerIdFor(1, 2)]
                .messages_sent,
            static_cast<std::uint64_t>(kPerSender));
}

TEST(FabricTest, BankFlagsReturnToOwningSenderAcrossShardedPool) {
  // Same invariant as above, but the receiver drains through a 2-core
  // pool with its banks sharded across the cores: flags must still
  // return to the owning sender only, and only after the owning core
  // fully drained the bank — never early because *another* core's bank
  // finished first.
  FabricOptions options = SmallOptions(3, Topology::kStar, 2);
  options.runtime.sender_core = 2;
  options.runtime_overrides.assign(3, options.runtime);
  options.runtime_overrides[2].receiver_cores = 2;
  auto fabric = MakeLoadedFabric(options);
  Runtime& receiver = fabric->runtime(2);
  ASSERT_EQ(receiver.receiver_pool_size(), 2u);
  const int kPerSender = 40;  // 5 bank cycles at 2x4 slots

  std::map<PeerId, std::uint64_t> sum_by_peer;
  std::map<PeerId, int> count_by_peer;
  receiver.SetOnExecuted([&](const ReceivedMessage& msg) {
    sum_by_peer[msg.from] += msg.return_value;
    ++count_by_peer[msg.from];
  });

  std::uint64_t expect_sum[2] = {0, 0};
  int sent[2] = {0, 0};
  std::vector<std::uint8_t> usr(8);

  PumpLoop<int> pump;
  pump.Set([&, resume = pump.Handle()](int s) {
    Runtime& sender = fabric->runtime(s);
    const PeerId to_rx = *fabric->PeerIdFor(s, 2);
    while (sent[s] < kPerSender) {
      if (!sender.HasFreeSlot(to_rx)) {
        sender.NotifyWhenSlotFree(to_rx, [resume, s] { resume(s); });
        return;
      }
      const std::uint64_t v = 2 * (sent[s] + 1) + (s == 0 ? 1 : 0);
      std::memcpy(usr.data(), &v, 8);
      expect_sum[s] += v;
      ASSERT_TRUE(sender.Send(to_rx, "ssum", Invoke::kInjected, {}, usr).ok());
      ++sent[s];
    }
  });
  pump(0);
  pump(1);
  fabric->RunUntil([&] {
    return receiver.stats().messages_executed >=
           static_cast<std::uint64_t>(2 * kPerSender);
  });
  receiver.SetOnExecuted(nullptr);

  const PeerId from0 = *fabric->PeerIdFor(2, 0);
  const PeerId from1 = *fabric->PeerIdFor(2, 1);
  EXPECT_EQ(count_by_peer[from0], kPerSender);
  EXPECT_EQ(count_by_peer[from1], kPerSender);
  // No cross-talk across the sharded banks.
  EXPECT_EQ(sum_by_peer[from0], expect_sum[0]);
  EXPECT_EQ(sum_by_peer[from1], expect_sum[1]);

  // Both pool cores took part in the drain, and every bank flag went
  // home: both senders completed all 40 sends (10 bank closures each).
  EXPECT_GT(receiver.receiver_cpu(0).counters().messages_handled, 0u);
  EXPECT_GT(receiver.receiver_cpu(1).counters().messages_handled, 0u);
  const auto& rx_peers = receiver.stats().per_peer;
  EXPECT_GE(rx_peers[from0].bank_flags_returned, 9u);
  EXPECT_GE(rx_peers[from1].bank_flags_returned, 9u);
  fabric->Run();  // drain the trailing flag puts
  EXPECT_EQ(receiver.InFlightFrames(), 0u);
  for (int s = 0; s < 2; ++s) {
    EXPECT_EQ(fabric->runtime(s).ClosedSendBanks(*fabric->PeerIdFor(s, 2)),
              0u);
  }
}

// ---------------------------------------------------------- guard rails

TEST(FabricTest, SendToUnwiredPeerFails) {
  auto fabric = MakeLoadedFabric(SmallOptions(2));
  std::vector<std::uint8_t> usr(8, 0);
  auto r = fabric->runtime(0).Send(5, "ssum", Invoke::kInjected, {}, usr);
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(fabric->runtime(0).HasFreeSlot(5));
}

TEST(FabricTest, ConnectRejectsDuplicateAndSelf) {
  auto fabric = MakeLoadedFabric(SmallOptions(2));
  auto dup = Runtime::Connect(fabric->runtime(0), fabric->runtime(1));
  EXPECT_EQ(dup.status().code(), StatusCode::kFailedPrecondition);
  auto self = Runtime::Connect(fabric->runtime(0), fabric->runtime(0));
  EXPECT_EQ(self.status().code(), StatusCode::kInvalidArgument);
}

TEST(FabricTest, DuplicateCableRejectedAtTheNic) {
  // Fabric wires 0<->1 already; a second cable between the same NICs
  // would shadow the first link's wire state, so it must fail loudly
  // instead of silently rewiring.
  auto fabric = MakeLoadedFabric(SmallOptions(2));
  EXPECT_EQ(fabric->nic(0).ConnectTo(fabric->nic(1)).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(fabric->nic(1).ConnectTo(fabric->nic(0)).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(fabric->nic(0).ConnectTo(fabric->nic(0)).code(),
            StatusCode::kInvalidArgument);
}

// ------------------------------------------------ switched-tree fabric

FabricOptions TreeOptions(std::uint32_t hosts, std::uint32_t arity,
                          std::uint32_t tiers, double oversub = 1.0) {
  FabricOptions options = SmallOptions(hosts, Topology::kTree);
  options.tree.arity = arity;
  options.tree.tiers = tiers;
  options.tree.oversub = oversub;
  return options;
}

TEST(FabricTest, TreeWiresHubSpokeThroughSwitches) {
  // 5 hosts at arity 2 need ceil(5/2) = 3 ToRs plus a spine; the logical
  // peering stays hub-spoke while every frame transits the switches.
  auto fabric = MakeLoadedFabric(TreeOptions(5, 2, 2));
  EXPECT_EQ(fabric->switch_count(), 4u);
  for (std::uint32_t s = 1; s < 5; ++s) {
    EXPECT_TRUE(fabric->Connected(0, s));
    EXPECT_TRUE(fabric->Connected(s, 0));
  }
  EXPECT_FALSE(fabric->Connected(1, 2));
  // No direct cable anywhere: hosts reach each other via uplinks only.
  EXPECT_TRUE(fabric->nic(1).HasUplink());
  EXPECT_TRUE(fabric->nic(0).CanReach(fabric->nic(1)));

  std::vector<std::uint8_t> usr(8, 2);
  auto there = SendAndRun(*fabric, 3, 0, "nop", {7}, usr);
  ASSERT_TRUE(there.ok()) << there.status();
  EXPECT_EQ(there->return_value, 7u);
  std::uint64_t forwarded = 0;
  for (std::uint32_t i = 0; i < fabric->switch_count(); ++i) {
    forwarded += fabric->sw(i).frames_forwarded();
    EXPECT_EQ(fabric->sw(i).frames_dropped(), 0u);
  }
  EXPECT_GT(forwarded, 0u);
}

TEST(FabricTest, SingleTierTreeUsesOneSwitch) {
  auto fabric = MakeLoadedFabric(TreeOptions(4, 8, 1));
  EXPECT_EQ(fabric->switch_count(), 1u);
  std::vector<std::uint8_t> usr(8, 1);
  auto r = SendAndRun(*fabric, 2, 0, "nop", {3}, usr);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->return_value, 3u);
}

TEST(FabricTest, TreeConfigClampsBadKnobs) {
  // arity 0, tiers 0, and a non-positive oversubscription are all
  // impossible shapes; the fabric builds the nearest sane tree instead
  // of dividing by zero.
  Fabric fabric(TreeOptions(3, 0, 0, -2.0));
  EXPECT_EQ(fabric.options().tree.arity, 1u);
  EXPECT_EQ(fabric.options().tree.tiers, 1u);
  EXPECT_DOUBLE_EQ(fabric.options().tree.oversub, 1.0);
  EXPECT_EQ(fabric.switch_count(), 1u);
}

TEST(FabricTest, SwitchConfigClampsBadKnobs) {
  // A zero shared buffer could never admit a frame and a threshold above
  // the buffer could never mark; both are dead knobs a config audit
  // should see clamped, not silently kept.
  net::SwitchConfig config;
  config.buffer_bytes = 0;
  config.ecn_threshold_bytes = MiB(4);
  config.forward_latency_ns = -5.0;
  config.wire_latency_ns = -1.0;
  sim::Engine engine;
  net::Switch sw(engine, config, "clamp");
  EXPECT_EQ(sw.config().buffer_bytes, KiB(256));
  EXPECT_LE(sw.config().ecn_threshold_bytes, sw.config().buffer_bytes);
  EXPECT_DOUBLE_EQ(sw.config().forward_latency_ns, 0.0);
  EXPECT_DOUBLE_EQ(sw.config().wire_latency_ns, 0.0);
}

// ----------------------------------------------- adaptive bank windows

FabricOptions AdaptiveOptions() {
  FabricOptions options = SmallOptions(2);
  options.runtime.banks = 4;
  options.runtime.adaptive.enabled = true;
  return options;
}

TEST(FabricTest, ForgedEcnEchoShrinksTheWindow) {
  // A flag word with the ECE bit (bit 2) set must trigger exactly one
  // multiplicative decrease — no switch required, the flag-word protocol
  // is the whole carrier.
  auto fabric = MakeLoadedFabric(AdaptiveOptions());
  Runtime& rt = fabric->runtime(0);
  auto peer = fabric->PeerIdFor(0, 1);
  ASSERT_TRUE(peer.ok());
  const std::uint64_t ceiling = 4000;  // 4 banks
  EXPECT_EQ(rt.AdaptiveWindowMilli(*peer), ceiling);
  ASSERT_TRUE(rt.InjectFlagWordForTest(*peer, 0, /*open|ECE=*/1 | 4).ok());
  EXPECT_EQ(rt.stats().cwnd_decreases, 1u);
  EXPECT_EQ(rt.stats().ecn_echoes_seen, 1u);
  EXPECT_EQ(rt.AdaptiveWindowMilli(*peer), ceiling / 2);
  EXPECT_GE(rt.AdaptiveWindowMilli(*peer), 1000u);  // never below the floor

  // Bounds checking on the injection hook itself.
  EXPECT_EQ(rt.InjectFlagWordForTest(99, 0, 1).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(rt.InjectFlagWordForTest(*peer, 99, 1).code(),
            StatusCode::kInvalidArgument);
}

TEST(FabricTest, CleanFlagReturnsRampTheWindowBackToCeiling) {
  // RTT-ramp convergence: after a forged decrease, additive increases on
  // clean (un-echoed) flag returns must climb the window back to the
  // static ceiling, and the flag RTT estimator must have real samples.
  auto fabric = MakeLoadedFabric(AdaptiveOptions());
  Runtime& rt = fabric->runtime(0);
  auto peer = fabric->PeerIdFor(0, 1);
  ASSERT_TRUE(peer.ok());
  ASSERT_TRUE(rt.InjectFlagWordForTest(*peer, 0, 1 | 4).ok());
  ASSERT_EQ(rt.AdaptiveWindowMilli(*peer), 2000u);

  // 4 banks x 4 mailboxes: every 4 sends closes a bank whose returning
  // flag, unmarked on a direct cable, opens the window by 250 milli.
  std::vector<std::uint8_t> usr(8, 0);
  const std::vector<std::uint64_t> args = {1};
  for (int i = 0; i < 64; ++i) {
    auto receipt = rt.Send(*peer, "nop", Invoke::kInjected, args, usr);
    ASSERT_TRUE(receipt.ok()) << receipt.status();
    fabric->Run();
  }
  EXPECT_EQ(rt.AdaptiveWindowMilli(*peer), 4000u);
  EXPECT_GT(rt.stats().cwnd_increases, 0u);
  EXPECT_EQ(rt.stats().cwnd_decreases, 1u);
  EXPECT_GT(rt.LastFlagRtt(*peer), 0u);
  EXPECT_GE(rt.LastFlagRtt(*peer), rt.MinFlagRtt(*peer));
  EXPECT_EQ(rt.AdaptiveWindowMaxMilli(*peer), 4000u);
  EXPECT_EQ(rt.AdaptiveWindowMinMilli(*peer), 2000u);
}

TEST(FabricTest, TwoHostFabricMatchesTestbedSemantics) {
  // The 2-host fabric is the paper's testbed: default-peer sends work and
  // both directions execute.
  auto fabric = MakeLoadedFabric(SmallOptions(2));
  std::vector<std::uint8_t> usr(8, 2);
  auto there = SendAndRun(*fabric, 0, 1, "nop", {7}, usr);
  ASSERT_TRUE(there.ok()) << there.status();
  EXPECT_EQ(there->return_value, 7u);
  auto back = SendAndRun(*fabric, 1, 0, "nop", {9}, usr);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->return_value, 9u);
}

// Regression for the skewed-incast fairness normalization: a weight-0
// (silent) sender used to be rejected outright, and — had it run — its
// zero rate divided by its zero weight would have poisoned Jain fairness
// with NaN. Silent senders must be allowed, excluded from the fairness
// denominator, and the index must stay exact over the active senders.
TEST(FabricTest, ZeroWeightSenderExcludedFromIncastFairness) {
  auto fabric = MakeLoadedFabric(SmallOptions(4, Topology::kStar, 0));
  bench::IncastConfig config;
  config.jam = "nop";
  config.usr_bytes = 16;
  config.iterations_per_sender = 40;
  config.sender_weights = {2, 0, 2};  // host 2 is wired but silent
  auto result = bench::RunIncastRate(*fabric, 0, {1, 2, 3}, config);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->per_sender[1].messages, 0u);
  EXPECT_GT(result->per_sender[0].messages, 0u);
  EXPECT_GT(result->per_sender[2].messages, 0u);
  EXPECT_TRUE(std::isfinite(result->fairness)) << result->fairness;
  EXPECT_GT(result->fairness, 0.0);
  EXPECT_LE(result->fairness, 1.0 + 1e-9);
  // The two active senders pushed identical loads through symmetric
  // paths, so excluding the silent one must leave Jain ~1, not the 2/3 a
  // zero-share participant would drag it to.
  EXPECT_GT(result->fairness, 0.9);
}

TEST(FabricTest, AllZeroWeightIncastIsRejected) {
  auto fabric = MakeLoadedFabric(SmallOptions(3, Topology::kStar, 0));
  bench::IncastConfig config;
  config.jam = "nop";
  config.iterations_per_sender = 10;
  config.sender_weights = {0, 0};
  auto result = bench::RunIncastRate(*fabric, 0, {1, 2}, config);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// Regression: ApplyStress boosts every runtime's wait-loop steal
// hysteresis (seeded per host in host-index order), and ClearStress must
// restore the pre-stress defaults exactly — clear/apply must round-trip,
// including repeated and double applies.
TEST(FabricTest, StressApplyClearRoundTripsWaitLoopHysteresis) {
  FabricOptions options = SmallOptions(3, Topology::kStar, 0);
  StealConfig steal;
  steal.enabled = true;
  steal.threshold = 3;
  steal.hysteresis = 2;
  options.WithStealing(steal);
  options.runtime_overrides.assign(3, options.runtime);
  options.runtime_overrides[0].receiver_cores = 2;
  options.runtime_overrides[0].sender_core = 2;
  auto fabric = MakeLoadedFabric(std::move(options));

  std::vector<StealConfig> pristine;
  for (std::uint32_t i = 0; i < fabric->size(); ++i) {
    pristine.push_back(fabric->runtime(i).config().steal);
  }

  bench::StressConfig stress;
  stress.steal_hysteresis_boost = 2;
  bench::ApplyStress(*fabric, stress);
  for (std::uint32_t i = 0; i < fabric->size(); ++i) {
    EXPECT_EQ(fabric->runtime(i).config().steal.hysteresis,
              pristine[i].hysteresis + 2)
        << "host " << i;
  }
  // Double apply must not compound the boost.
  bench::ApplyStress(*fabric, stress);
  for (std::uint32_t i = 0; i < fabric->size(); ++i) {
    EXPECT_EQ(fabric->runtime(i).config().steal.hysteresis,
              pristine[i].hysteresis + 2)
        << "host " << i;
  }

  bench::ClearStress(*fabric);
  for (std::uint32_t i = 0; i < fabric->size(); ++i) {
    const StealConfig& restored = fabric->runtime(i).config().steal;
    EXPECT_EQ(restored.enabled, pristine[i].enabled) << "host " << i;
    EXPECT_EQ(restored.threshold, pristine[i].threshold) << "host " << i;
    EXPECT_EQ(restored.hysteresis, pristine[i].hysteresis) << "host " << i;
  }

  // A second full round-trip lands on the same defaults (the snapshot is
  // re-taken from pristine state, not from a stale boosted copy).
  bench::ApplyStress(*fabric, stress);
  bench::ClearStress(*fabric);
  for (std::uint32_t i = 0; i < fabric->size(); ++i) {
    EXPECT_EQ(fabric->runtime(i).config().steal.hysteresis,
              pristine[i].hysteresis)
        << "host " << i;
  }
}

}  // namespace
}  // namespace twochains::core
