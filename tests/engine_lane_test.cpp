// Directed tests for lane-sharded event execution: byte-identical results
// across executor counts, cross-lane causality at exactly the lookahead
// horizon, Stop()/Cancel() semantics under lanes, timing-wheel overflow,
// generation-counter id reuse, and the bounded-memory regression for
// schedule/cancel churn.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/engine.hpp"

namespace twochains::sim {
namespace {

constexpr PicoTime kLook = 1000;  // ps; test-model cross-lane horizon
constexpr std::uint32_t kHosts = 4;

// Per-host mutable state: only events homed to the host's lane touch it,
// which is exactly the invariant the fabric relies on.
struct HostState {
  std::uint64_t acc = 0;
  std::vector<std::pair<PicoTime, std::uint64_t>> trace;
};

using Hosts = std::array<HostState, kHosts>;

// One model event: mix the token into the host's accumulator, record the
// (time, value) observation, then fan out one same-lane hop and one
// cross-lane hop beyond the lookahead horizon.
void Fire(Engine& e, Hosts& hosts, std::uint32_t host, std::uint64_t token,
          int depth) {
  HostState& hs = hosts[host];
  hs.acc = hs.acc * 6364136223846793005ull + token + e.Now() + host;
  hs.trace.emplace_back(e.Now(), hs.acc);
  if (depth == 0) return;
  const std::uint64_t a = hs.acc;
  e.ScheduleAfter(1 + (a % 700),
                  [&e, &hosts, host, t = a, depth] {
                    Fire(e, hosts, host, t, depth - 1);
                  },
                  "model.local");
  const std::uint32_t dst =
      static_cast<std::uint32_t>((host + 1 + (a >> 8) % (kHosts - 1)) %
                                 kHosts);
  e.ScheduleAtOn(dst, e.Now() + kLook + (a % 900),
                 [&e, &hosts, dst, t = a ^ 0x9e3779b97f4a7c15ull, depth] {
                   Fire(e, hosts, dst, t, depth - 1);
                 },
                 "model.cross");
}

struct ModelResult {
  Hosts hosts;
  PicoTime final_now = 0;
  std::uint64_t processed = 0;
};

enum class Drive { kRun, kUntilSteps };

ModelResult RunModel(std::uint32_t lanes, Drive drive) {
  Engine e(EngineConfig{lanes, kLook});
  e.SetVirtualLanes(kHosts);
  ModelResult r;
  for (std::uint32_t i = 0; i < kHosts; ++i) {
    e.ScheduleAtOn(i, 100 + 37 * i,
                   [&e, &r, i] { Fire(e, r.hosts, i, 0x51ed * i, 7); },
                   "model.seed");
  }
  if (drive == Drive::kRun) {
    e.Run();
  } else {
    PicoTime t = 0;
    while (!e.Idle()) {
      t += 5000;
      e.RunUntil(t);
    }
  }
  r.final_now = e.Now();
  r.processed = e.EventsProcessed();
  return r;
}

void ExpectSameResult(const ModelResult& a, const ModelResult& b) {
  EXPECT_EQ(a.processed, b.processed);
  EXPECT_EQ(a.final_now, b.final_now);
  for (std::uint32_t h = 0; h < kHosts; ++h) {
    ASSERT_EQ(a.hosts[h].trace.size(), b.hosts[h].trace.size())
        << "host " << h;
    EXPECT_EQ(a.hosts[h].trace, b.hosts[h].trace) << "host " << h;
    EXPECT_EQ(a.hosts[h].acc, b.hosts[h].acc) << "host " << h;
  }
}

TEST(LaneEngineTest, LanedRunsAreByteIdenticalToScalar) {
  const ModelResult scalar = RunModel(1, Drive::kRun);
  EXPECT_GT(scalar.processed, 1000u);  // the model actually exercised fanout
  for (std::uint32_t lanes : {2u, 3u, 4u, 8u}) {
    SCOPED_TRACE(lanes);
    ExpectSameResult(scalar, RunModel(lanes, Drive::kRun));
  }
}

TEST(LaneEngineTest, RunUntilSteppingMatchesScalarSteppingAtEveryLaneCount) {
  // Deadline-stepped drives (the harness pump idiom) must replay the same
  // trace at every executor count; final time is the deadline, not the
  // last event, so the baseline is the scalar *stepped* run.
  const ModelResult scalar = RunModel(1, Drive::kUntilSteps);
  const ModelResult free_run = RunModel(1, Drive::kRun);
  for (std::uint32_t h = 0; h < kHosts; ++h) {
    EXPECT_EQ(scalar.hosts[h].trace, free_run.hosts[h].trace);
  }
  for (std::uint32_t lanes : {2u, 4u}) {
    SCOPED_TRACE(lanes);
    ExpectSameResult(scalar, RunModel(lanes, Drive::kUntilSteps));
  }
}

TEST(LaneEngineTest, CrossLaneScheduleAtExactlyTheHorizonSeesSenderState) {
  Engine e(EngineConfig{2, kLook});
  e.SetVirtualLanes(2);
  std::uint64_t shared = 0;  // written on lane 0 strictly before lane 1 reads
  std::uint64_t observed = 0;
  PicoTime observed_at = 0;
  std::uint32_t observed_lane = 99;
  e.ScheduleAtOn(0, 500, [&] {
    shared = 42;
    // The tightest legal cross-lane schedule: exactly now + lookahead.
    e.ScheduleAtOn(1, e.Now() + kLook, [&] {
      observed = shared;
      observed_at = e.Now();
      observed_lane = e.CurrentLane();
    });
  });
  e.Run();
  EXPECT_EQ(observed, 42u);
  EXPECT_EQ(observed_at, 500u + kLook);
  EXPECT_EQ(observed_lane, 1u);
}

TEST(LaneEngineTest, StopFromOneLaneHaltsAllAndTheRunIsResumable) {
  Engine e(EngineConfig{2, kLook});
  e.SetVirtualLanes(2);
  int early = 0, late = 0;
  // Lane 1 is the lagging lane: one lone event that pulls the plug while
  // lane 0 has a long runway of future work.
  e.ScheduleAtOn(1, 300, [&] { e.Stop(); });
  e.ScheduleAtOn(0, 100, [&] { ++early; });
  for (int i = 0; i < 16; ++i) {
    e.ScheduleAtOn(0, 1'000'000 + i * kLook, [&] { ++late; });
  }
  e.Run();
  EXPECT_EQ(early, 1);     // work before the stop still fired
  EXPECT_EQ(late, 0);      // far-future work did not run past the stop
  EXPECT_EQ(e.PendingEvents(), 16u);
  e.Run();                 // stop is per-run: resume drains the rest
  EXPECT_EQ(late, 16);
  EXPECT_TRUE(e.Idle());
}

TEST(LaneEngineTest, CancelWorksAcrossLanesFromIdleButNotMidRun) {
  Engine e(EngineConfig{2, kLook});
  e.SetVirtualLanes(2);
  int fired = 0;
  // From idle (outside any lane) every schedule is a direct insert and
  // returns a cancellable id, whatever the target lane.
  const EventId keep = e.ScheduleAtOn(1, 200, [&] { ++fired; });
  const EventId victim = e.ScheduleAtOn(1, 300, [&] { fired += 100; });
  ASSERT_NE(keep, 0u);
  ASSERT_NE(victim, 0u);
  EXPECT_TRUE(e.Cancel(victim));
  EXPECT_FALSE(e.Cancel(victim));  // second cancel: already dead

  // From inside a run, a cross-lane schedule goes through the target's
  // inbox and is deliberately uncancellable: id 0.
  EventId cross = 1;
  e.ScheduleAtOn(0, 100, [&] {
    cross = e.ScheduleAtOn(1, e.Now() + kLook, [&] { ++fired; });
  });
  e.Run();
  EXPECT_EQ(cross, 0u);
  EXPECT_FALSE(e.Cancel(cross));
  EXPECT_EQ(fired, 2);  // keep + the cross-lane event; victim never ran
}

TEST(LaneEngineTest, WheelOverflowEventsInterleaveCorrectly) {
  // Events far beyond the wheel horizon (the overflow tier) must still
  // merge in time order with near-term bucket events.
  Engine e;
  std::vector<PicoTime> fired_at;
  const PicoTime far = PicoTime{1} << 40;  // way past any wheel window
  e.ScheduleAt(far + 5, [&] { fired_at.push_back(e.Now()); });
  e.ScheduleAt(3, [&] {
    fired_at.push_back(e.Now());
    e.ScheduleAt(far + 1, [&] { fired_at.push_back(e.Now()); });
  });
  e.ScheduleAt(far - 7, [&] { fired_at.push_back(e.Now()); });
  e.Run();
  EXPECT_EQ(fired_at,
            (std::vector<PicoTime>{3, far - 7, far + 1, far + 5}));
}

TEST(LaneEngineTest, StaleIdsFromReusedSlotsNeverCancelTheNewTenant) {
  Engine e;
  int fired = 0;
  const EventId first = e.ScheduleAt(10, [&] { ++fired; });
  e.Run();
  ASSERT_EQ(fired, 1);
  // The slab slot is recycled; the generation counter makes the old id
  // stale rather than aliasing the new event.
  const EventId second = e.ScheduleAt(20, [&] { ++fired; });
  EXPECT_NE(first, second);
  EXPECT_FALSE(e.Cancel(first));
  EXPECT_TRUE(e.Cancel(second));
  e.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(e.Cancel(0));    // the invalid id is never cancellable
  EXPECT_FALSE(e.Cancel(~0ull));  // nor is garbage
}

TEST(LaneEngineTest, ScheduleCancelChurnKeepsMemoryBounded) {
  // The regression for the old engine's Cancel leak: a million
  // schedule/cancel cycles (plus a sprinkling of survivors) must reuse a
  // small working set of slab slots, not grow one per cycle.
  Engine e;
  std::uint64_t survivors = 0;
  for (int i = 0; i < 1'000'000; ++i) {
    // Mix horizons so the churn crosses the wheel, the current granule,
    // and the overflow tier.
    const PicoTime when = 1 + (static_cast<PicoTime>(i) % 3) * 50'000'000;
    const EventId id = e.ScheduleAfter(when, [&] { ++survivors; });
    if (i % 97 != 0) {
      ASSERT_TRUE(e.Cancel(id));
    }
    if (i % 4096 == 0) e.RunUntil(e.Now() + 1000);
  }
  e.Run();
  EXPECT_EQ(survivors, 1'000'000u / 97 + 1);
  // Well under one slot per cycle: the pool stays a small multiple of the
  // live high-water mark (chunked allocation rounds up to 512).
  EXPECT_LE(e.AllocatedEventSlots(), 65536u);
}

TEST(LaneEngineTest, EventHookSeesTagsAndDoesNotPerturbExecution) {
  // Tag capture is gated on hook presence; installing a hook must change
  // what is observed, never what runs.
  auto build = [](Engine& e, int& fired) {
    e.ScheduleAt(10, [&] { ++fired; }, "tag.a");
    e.ScheduleAt(20, [&] { ++fired; });  // untagged
  };
  Engine plain;
  int plain_fired = 0;
  build(plain, plain_fired);
  plain.Run();

  Engine hooked;
  int hooked_fired = 0;
  std::vector<std::pair<PicoTime, std::string>> seen;
  hooked.SetEventHook([&](PicoTime t, const char* tag) {
    seen.emplace_back(t, tag);
  });
  build(hooked, hooked_fired);
  hooked.Run();

  EXPECT_EQ(plain_fired, hooked_fired);
  EXPECT_EQ(plain.EventsProcessed(), hooked.EventsProcessed());
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair<PicoTime, std::string>{10, "tag.a"}));
  EXPECT_EQ(seen[1], (std::pair<PicoTime, std::string>{20, ""}));
}

TEST(LaneEngineTest, LaneEngineAliasConstructsTheLanedExecutor) {
  LaneEngine e({.lanes = 4, .lookahead_ps = kLook});
  e.SetVirtualLanes(8);
  EXPECT_EQ(e.VirtualLanes(), 8u);
  EXPECT_EQ(e.ExecutorShards(), 4u);
  // Per-lane counters: events on different lanes run concurrently, so a
  // single shared counter would be a data race by the engine's own rules.
  std::array<int, 8> fired{};
  for (std::uint32_t i = 0; i < 8; ++i) {
    e.ScheduleAtOn(i, 100 + i, [&fired, i] { ++fired[i]; });
  }
  e.Run();
  for (std::uint32_t i = 0; i < 8; ++i) EXPECT_EQ(fired[i], 1) << i;
}

}  // namespace
}  // namespace twochains::sim
