// Tests for the cache hierarchy timing model: LRU tag behaviour, hierarchy
// walks, stashing vs DRAM delivery, and the stream prefetcher — the
// machinery behind Figures 9-12 of the paper.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cache/cache_level.hpp"
#include "cache/config.hpp"
#include "cache/hierarchy.hpp"
#include "cache/prefetcher.hpp"
#include "common/rng.hpp"

namespace twochains::cache {
namespace {

constexpr std::uint64_t kLine = 64;

LevelConfig TinyLevel(std::uint64_t size, std::uint32_t ways, Cycles lat) {
  return LevelConfig{"tiny", size, ways, lat};
}

// ------------------------------------------------------------ CacheLevel

TEST(CacheLevelTest, MissThenHit) {
  CacheLevel c(TinyLevel(KiB(4), 4, 7), kLine);
  EXPECT_FALSE(c.Lookup(0x1000));
  c.Insert(0x1000);
  EXPECT_TRUE(c.Lookup(0x1000));
  EXPECT_TRUE(c.Lookup(0x1001));  // same line
  EXPECT_FALSE(c.Lookup(0x1040)); // next line
  EXPECT_EQ(c.hit_cycles(), 7u);
}

TEST(CacheLevelTest, LruEvictionOrder) {
  // 4-way, and addresses chosen to land in the same set: stride = sets*line.
  CacheLevel c(TinyLevel(KiB(4), 4, 1), kLine);
  const std::uint64_t stride = c.sets() * kLine;
  // Fill the set with 4 lines.
  for (std::uint64_t i = 0; i < 4; ++i) c.Insert(i * stride);
  // Touch line 0 so line 1 becomes LRU.
  EXPECT_TRUE(c.Lookup(0));
  // Insert a 5th line; line 1 (LRU) must be evicted.
  c.Insert(4 * stride);
  EXPECT_TRUE(c.Probe(0));
  EXPECT_FALSE(c.Probe(1 * stride));
  EXPECT_TRUE(c.Probe(2 * stride));
  EXPECT_TRUE(c.Probe(3 * stride));
  EXPECT_TRUE(c.Probe(4 * stride));
}

TEST(CacheLevelTest, InsertIsIdempotentForPresentLine) {
  CacheLevel c(TinyLevel(KiB(4), 4, 1), kLine);
  c.Insert(0x2000);
  c.Insert(0x2000);
  EXPECT_EQ(c.PopulationCount(), 1u);
}

TEST(CacheLevelTest, InvalidateRemovesLine) {
  CacheLevel c(TinyLevel(KiB(4), 4, 1), kLine);
  c.Insert(0x3000);
  EXPECT_TRUE(c.Invalidate(0x3000));
  EXPECT_FALSE(c.Probe(0x3000));
  EXPECT_FALSE(c.Invalidate(0x3000));
}

TEST(CacheLevelTest, InvalidateRangeCoversPartialLines) {
  CacheLevel c(TinyLevel(KiB(4), 4, 1), kLine);
  c.Insert(0x1000);
  c.Insert(0x1040);
  c.Insert(0x1080);
  // Range [0x1030, 0x1050) touches lines 0x1000 and 0x1040 but not 0x1080.
  c.InvalidateRange(0x1030, 0x20);
  EXPECT_FALSE(c.Probe(0x1000));
  EXPECT_FALSE(c.Probe(0x1040));
  EXPECT_TRUE(c.Probe(0x1080));
}

TEST(CacheLevelTest, ClearEmptiesEverything) {
  CacheLevel c(TinyLevel(KiB(4), 4, 1), kLine);
  for (std::uint64_t i = 0; i < 32; ++i) c.Insert(i * kLine);
  EXPECT_GT(c.PopulationCount(), 0u);
  c.Clear();
  EXPECT_EQ(c.PopulationCount(), 0u);
}

TEST(CacheLevelTest, PopulationNeverExceedsCapacity) {
  CacheLevel c(TinyLevel(KiB(4), 4, 1), kLine);
  Xoshiro256 rng(42);
  for (int i = 0; i < 10000; ++i) {
    c.Insert(rng.NextBelow(1 << 20) * kLine);
  }
  EXPECT_LE(c.PopulationCount(), KiB(4) / kLine);
}

// Property: after inserting N distinct lines mapping to one set of a
// W-way cache, exactly the last W survive, in LRU order.
class CacheLevelPropertyTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CacheLevelPropertyTest, SetKeepsMostRecentWays) {
  const std::uint32_t ways = GetParam();
  CacheLevel c(TinyLevel(ways * 8 * kLine, ways, 1), kLine);  // 8 sets
  const std::uint64_t stride = c.sets() * kLine;
  const int n = static_cast<int>(ways) + 5;
  for (int i = 0; i < n; ++i) c.Insert(static_cast<std::uint64_t>(i) * stride);
  for (int i = 0; i < n; ++i) {
    const bool expect_present = i >= n - static_cast<int>(ways);
    EXPECT_EQ(c.Probe(static_cast<std::uint64_t>(i) * stride), expect_present)
        << "line " << i << " ways=" << ways;
  }
}

INSTANTIATE_TEST_SUITE_P(Ways, CacheLevelPropertyTest,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

// ------------------------------------------------------------ Prefetcher

TEST(PrefetcherTest, CoversAfterTraining) {
  PrefetcherConfig cfg;
  cfg.train_misses = 2;
  StreamPrefetcher p(cfg, kLine);
  EXPECT_FALSE(p.OnDemandMiss(0x0));     // run=1
  EXPECT_TRUE(p.OnDemandMiss(0x40));     // run=2: trained, covered
  EXPECT_TRUE(p.OnDemandMiss(0x80));
  EXPECT_EQ(p.covered_count(), 2u);
  EXPECT_EQ(p.trained_streams_formed(), 1u);
}

TEST(PrefetcherTest, NonSequentialMissesNeverCover) {
  PrefetcherConfig cfg;
  cfg.train_misses = 2;
  StreamPrefetcher p(cfg, kLine);
  Xoshiro256 rng(3);
  int covered = 0;
  for (int i = 0; i < 200; ++i) {
    // Random lines with huge stride jumps: no stream should train.
    covered += p.OnDemandMiss(rng.NextBelow(1 << 30) * kLine * 3 + kLine * 7);
  }
  EXPECT_EQ(covered, 0);
}

TEST(PrefetcherTest, TracksMultipleConcurrentStreams) {
  PrefetcherConfig cfg;
  cfg.train_misses = 2;
  cfg.streams = 4;
  StreamPrefetcher p(cfg, kLine);
  // Interleave two streams; both should train and cover.
  EXPECT_FALSE(p.OnDemandMiss(0x0));
  EXPECT_FALSE(p.OnDemandMiss(0x100000));
  EXPECT_TRUE(p.OnDemandMiss(0x40));
  EXPECT_TRUE(p.OnDemandMiss(0x100040));
  EXPECT_TRUE(p.OnDemandMiss(0x80));
  EXPECT_TRUE(p.OnDemandMiss(0x100080));
}

TEST(PrefetcherTest, DisabledNeverCovers) {
  PrefetcherConfig cfg;
  cfg.enabled = false;
  StreamPrefetcher p(cfg, kLine);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(p.OnDemandMiss(static_cast<std::uint64_t>(i) * kLine));
  }
}

TEST(PrefetcherTest, ResetForgetsTraining) {
  PrefetcherConfig cfg;
  cfg.train_misses = 2;
  StreamPrefetcher p(cfg, kLine);
  p.OnDemandMiss(0x0);
  p.OnDemandMiss(0x40);
  p.Reset();
  EXPECT_FALSE(p.OnDemandMiss(0x80));  // stream forgotten
}

// ------------------------------------------------------------ Hierarchy

HierarchyConfig SmallHierarchy() {
  HierarchyConfig cfg;
  cfg.cores = 4;
  cfg.cores_per_cluster = 2;
  cfg.l1 = LevelConfig{"L1", KiB(4), 4, 2};
  cfg.l2 = LevelConfig{"L2", KiB(16), 8, 12};
  cfg.l3 = LevelConfig{"L3", KiB(32), 16, 30};
  cfg.llc = LevelConfig{"LLC", KiB(64), 16, 55};
  cfg.dram_latency_ns = 88.0;
  cfg.prefetch.enabled = false;  // most tests want raw level behaviour
  return cfg;
}

TEST(HierarchyTest, ColdAccessGoesToDram) {
  CacheHierarchy h(SmallHierarchy());
  HitLevel level;
  const Cycles cost = h.AccessLine(0, 0x10000, AccessKind::kLoad, &level);
  EXPECT_EQ(level, HitLevel::kDram);
  EXPECT_EQ(cost, h.config().DramCycles());
  EXPECT_EQ(h.stats().dram_accesses, 1u);
}

TEST(HierarchyTest, SecondAccessHitsL1) {
  CacheHierarchy h(SmallHierarchy());
  h.AccessLine(0, 0x10000, AccessKind::kLoad);
  HitLevel level;
  const Cycles cost = h.AccessLine(0, 0x10000, AccessKind::kLoad, &level);
  EXPECT_EQ(level, HitLevel::kL1);
  EXPECT_EQ(cost, 2u);
}

TEST(HierarchyTest, OtherCoreHitsSharedLLC) {
  CacheHierarchy h(SmallHierarchy());
  h.AccessLine(0, 0x10000, AccessKind::kLoad);  // fills core 0 path + LLC
  HitLevel level;
  // Core 3 is in the other cluster: misses L1/L2/L3, hits shared LLC.
  const Cycles cost = h.AccessLine(3, 0x10000, AccessKind::kLoad, &level);
  EXPECT_EQ(level, HitLevel::kLLC);
  EXPECT_EQ(cost, 55u);
}

TEST(HierarchyTest, ClusterSiblingHitsL3) {
  CacheHierarchy h(SmallHierarchy());
  h.AccessLine(0, 0x10000, AccessKind::kLoad);
  HitLevel level;
  // Core 1 shares the L3 with core 0.
  const Cycles cost = h.AccessLine(1, 0x10000, AccessKind::kLoad, &level);
  EXPECT_EQ(level, HitLevel::kL3);
  EXPECT_EQ(cost, 30u);
}

TEST(HierarchyTest, StashDeliverPlacesLinesInLLCOnly) {
  CacheHierarchy h(SmallHierarchy());
  // Warm core 0's caches with the target lines, then deliver: upper levels
  // must be invalidated (stale), LLC populated.
  h.AccessLine(0, 0x20000, AccessKind::kLoad);
  EXPECT_TRUE(h.ProbeL1(0, 0x20000));
  h.StashDeliver(0x20000, 128);
  EXPECT_FALSE(h.ProbeL1(0, 0x20000));
  EXPECT_FALSE(h.ProbeL2(0, 0x20000));
  EXPECT_FALSE(h.ProbeL3(0, 0x20000));
  EXPECT_TRUE(h.ProbeLLC(0x20000));
  EXPECT_TRUE(h.ProbeLLC(0x20040));
  EXPECT_EQ(h.stats().stash_lines, 2u);

  HitLevel level;
  const Cycles cost = h.AccessLine(0, 0x20000, AccessKind::kLoad, &level);
  EXPECT_EQ(level, HitLevel::kLLC);
  EXPECT_EQ(cost, 55u);
}

TEST(HierarchyTest, DramDeliverInvalidatesEverywhere) {
  CacheHierarchy h(SmallHierarchy());
  h.AccessLine(0, 0x30000, AccessKind::kLoad);
  h.AccessLine(3, 0x30000, AccessKind::kLoad);
  h.DramDeliver(0x30000, 64);
  EXPECT_FALSE(h.ProbeL1(0, 0x30000));
  EXPECT_FALSE(h.ProbeLLC(0x30000));
  HitLevel level;
  h.AccessLine(0, 0x30000, AccessKind::kLoad, &level);
  EXPECT_EQ(level, HitLevel::kDram);
}

TEST(HierarchyTest, StashedDeliveryIsCheaperThanDramDelivery) {
  // The core claim of the paper in one assertion: reading a freshly
  // delivered message costs less when the NIC stashed it into the LLC.
  auto cfg = SmallHierarchy();
  CacheHierarchy stash(cfg), nostash(cfg);
  stash.StashDeliver(0x40000, 1024);
  nostash.DramDeliver(0x40000, 1024);
  const Cycles stash_cost =
      stash.Access(0, 0x40000, 1024, AccessKind::kLoad);
  const Cycles nostash_cost =
      nostash.Access(0, 0x40000, 1024, AccessKind::kLoad);
  EXPECT_LT(stash_cost, nostash_cost);
  // 16 lines at LLC (55) vs DRAM (229ish): ratio must be substantial.
  EXPECT_GT(static_cast<double>(nostash_cost) /
                static_cast<double>(stash_cost),
            2.0);
}

TEST(HierarchyTest, PrefetcherNarrowsTheStashGapOnLongStreams) {
  // Fig 9's "narrowing": with the prefetcher on, long linear scans converge
  // to similar cost with and without stashing.
  auto cfg = SmallHierarchy();
  cfg.prefetch.enabled = true;
  cfg.prefetch.train_misses = 2;
  const std::uint64_t big = KiB(32);
  CacheHierarchy stash(cfg), nostash(cfg);
  stash.StashDeliver(0x80000, big);
  nostash.DramDeliver(0x80000, big);
  const auto stash_cost =
      static_cast<double>(stash.Access(0, 0x80000, big, AccessKind::kLoad));
  const auto nostash_cost = static_cast<double>(
      nostash.Access(0, 0x80000, big, AccessKind::kLoad));
  // Within 25% of each other once the stream is trained.
  EXPECT_LT(nostash_cost / stash_cost, 1.25);
}

TEST(HierarchyTest, MultiLineAccessChargesPerLine) {
  CacheHierarchy h(SmallHierarchy());
  // 256 bytes = 4 lines, all cold -> 4 DRAM accesses.
  h.Access(0, 0x50000, 256, AccessKind::kLoad);
  EXPECT_EQ(h.stats().dram_accesses, 4u);
  // Unaligned range straddling one extra line.
  h.ResetStats();
  h.Access(0, 0x60020, 64, AccessKind::kLoad);  // crosses 2 lines
  EXPECT_EQ(h.stats().TotalAccesses(), 2u);
}

TEST(HierarchyTest, ZeroSizeAccessFree) {
  CacheHierarchy h(SmallHierarchy());
  EXPECT_EQ(h.Access(0, 0x1000, 0, AccessKind::kLoad), 0u);
  EXPECT_EQ(h.stats().TotalAccesses(), 0u);
}

TEST(HierarchyTest, DramContentionHookAddsCost) {
  CacheHierarchy h(SmallHierarchy());
  h.SetDramContentionHook([] { return Cycles{1000}; });
  HitLevel level;
  const Cycles cost = h.AccessLine(0, 0x90000, AccessKind::kLoad, &level);
  EXPECT_EQ(level, HitLevel::kDram);
  EXPECT_EQ(cost, h.config().DramCycles() + 1000);
  // LLC hits are immune to DRAM contention — the stashing tail-latency
  // mechanism of Figures 11/12.
  const Cycles again = h.AccessLine(0, 0x90000, AccessKind::kLoad, &level);
  EXPECT_EQ(level, HitLevel::kL1);
  EXPECT_EQ(again, 2u);
}

TEST(HierarchyTest, ClearColdStartsEverything) {
  CacheHierarchy h(SmallHierarchy());
  h.AccessLine(0, 0xA0000, AccessKind::kLoad);
  h.Clear();
  HitLevel level;
  h.AccessLine(0, 0xA0000, AccessKind::kLoad, &level);
  EXPECT_EQ(level, HitLevel::kDram);
}

TEST(HierarchyTest, PaperGeometryDramCycles) {
  HierarchyConfig cfg;  // paper defaults: 88 ns @ 2.6 GHz ~ 229 cycles
  EXPECT_NEAR(static_cast<double>(cfg.DramCycles()), 88e-9 * 2.6e9, 2.0);
}

TEST(HierarchyTest, StoreMissesBehaveLikeLoads) {
  CacheHierarchy h(SmallHierarchy());
  HitLevel level;
  h.AccessLine(0, 0xB0000, AccessKind::kStore, &level);
  EXPECT_EQ(level, HitLevel::kDram);  // write-allocate
  h.AccessLine(0, 0xB0000, AccessKind::kStore, &level);
  EXPECT_EQ(level, HitLevel::kL1);
}

// ------------------------------------------------------------- domains

constexpr mem::VirtAddr kDomain1Base = 0x100000;

/// 4 cores over 2 domains ({0,1} and {2,3}); addresses at or above
/// kDomain1Base home in domain 1.
HierarchyConfig DomainHierarchy() {
  HierarchyConfig cfg = SmallHierarchy();
  cfg.domains = 2;
  cfg.remote_penalty_cycles = 100;
  return cfg;
}

CacheHierarchy MakeDomainHierarchy(HierarchyConfig cfg = DomainHierarchy()) {
  CacheHierarchy h(cfg);
  h.SetDomainMapper(
      [](mem::VirtAddr a) { return a >= kDomain1Base ? 1u : 0u; });
  return h;
}

TEST(DomainHierarchyTest, DomainOfCoreBlocks) {
  HierarchyConfig cfg = DomainHierarchy();
  EXPECT_EQ(cfg.CoresPerDomain(), 2u);
  EXPECT_EQ(cfg.DomainOfCore(0), 0u);
  EXPECT_EQ(cfg.DomainOfCore(1), 0u);
  EXPECT_EQ(cfg.DomainOfCore(2), 1u);
  EXPECT_EQ(cfg.DomainOfCore(3), 1u);
  // Uneven split: ceil-sized blocks, the last domain takes the remainder.
  cfg.cores = 5;
  EXPECT_EQ(cfg.CoresPerDomain(), 3u);
  EXPECT_EQ(cfg.DomainOfCore(2), 0u);
  EXPECT_EQ(cfg.DomainOfCore(3), 1u);
  EXPECT_EQ(cfg.DomainOfCore(4), 1u);
}

TEST(DomainHierarchyTest, NonPowerOfTwoDomainCountKeepsSliceGeometry) {
  // A 3-domain split of the LLC must still give each slice a
  // power-of-two set count (CacheLevel's requirement): the slice rounds
  // down, and stash/probe/access still work against every domain.
  HierarchyConfig cfg = DomainHierarchy();
  cfg.cores = 6;
  cfg.domains = 3;
  CacheHierarchy h(cfg);
  h.SetDomainMapper([](mem::VirtAddr a) {
    return static_cast<std::uint32_t>(a / 0x100000);
  });
  for (std::uint32_t d = 0; d < 3; ++d) {
    const mem::VirtAddr addr = d * 0x100000ull + 0x40;
    h.StashDeliver(addr, 64);
    EXPECT_TRUE(h.ProbeLLC(addr)) << "domain " << d;
    HitLevel level;
    h.AccessLine(2 * d, addr, AccessKind::kLoad, &level);
    EXPECT_EQ(level, HitLevel::kLLC) << "domain " << d;
  }
}

TEST(DomainHierarchyTest, RemoteDramAccessPaysThePenalty) {
  CacheHierarchy h = MakeDomainHierarchy();
  HitLevel level;
  // Core 0 (domain 0) touches a line homed in domain 1: DRAM + hop.
  const Cycles cost = h.AccessLine(0, kDomain1Base, AccessKind::kLoad,
                                   &level);
  EXPECT_EQ(level, HitLevel::kDram);
  EXPECT_EQ(cost, h.config().DramCycles() + 100);
  EXPECT_EQ(h.stats().remote_accesses, 1u);
  EXPECT_EQ(h.stats().remote_penalty_cycles, 100u);
  // The locally cached copy absorbs the hop: the next touch is a plain
  // L1 hit.
  const Cycles again = h.AccessLine(0, kDomain1Base, AccessKind::kLoad,
                                    &level);
  EXPECT_EQ(level, HitLevel::kL1);
  EXPECT_EQ(again, 2u);
  EXPECT_EQ(h.stats().remote_accesses, 1u);
}

TEST(DomainHierarchyTest, LocalDomainAccessPaysNoPenalty) {
  CacheHierarchy h = MakeDomainHierarchy();
  HitLevel level;
  // Core 2 lives in domain 1 — same-domain DRAM costs the plain latency.
  const Cycles cost = h.AccessLine(2, kDomain1Base, AccessKind::kLoad,
                                   &level);
  EXPECT_EQ(level, HitLevel::kDram);
  EXPECT_EQ(cost, h.config().DramCycles());
  EXPECT_EQ(h.stats().remote_accesses, 0u);
}

TEST(DomainHierarchyTest, StashTargetsTheHomeDomainSlice) {
  CacheHierarchy h = MakeDomainHierarchy();
  h.StashDeliver(kDomain1Base, 128);
  EXPECT_TRUE(h.ProbeLLC(kDomain1Base));
  HitLevel level;
  // Domain-local core: plain LLC hit — the stash landed next to it.
  const Cycles local = h.AccessLine(2, kDomain1Base, AccessKind::kLoad,
                                    &level);
  EXPECT_EQ(level, HitLevel::kLLC);
  EXPECT_EQ(local, h.config().llc.hit_cycles);
  // Remote core reaching into the domain-1 slice: LLC hit + hop.
  const Cycles remote = h.AccessLine(0, kDomain1Base + 64,
                                     AccessKind::kLoad, &level);
  EXPECT_EQ(level, HitLevel::kLLC);
  EXPECT_EQ(remote, h.config().llc.hit_cycles + 100);
  EXPECT_EQ(h.stats().remote_accesses, 1u);
}

TEST(DomainHierarchyTest, ClusterCopyIsLocalWhateverTheHome) {
  CacheHierarchy h = MakeDomainHierarchy();
  // Core 0 pulls a domain-1 line (remote DRAM); its cluster sibling core
  // 1 then finds it in the shared L3 — a local copy, no penalty.
  h.AccessLine(0, kDomain1Base, AccessKind::kLoad);
  HitLevel level;
  const Cycles cost = h.AccessLine(1, kDomain1Base, AccessKind::kLoad,
                                   &level);
  EXPECT_EQ(level, HitLevel::kL3);
  EXPECT_EQ(cost, h.config().l3.hit_cycles);
  EXPECT_EQ(h.stats().remote_accesses, 1u);  // only core 0's DRAM pull
}

TEST(DomainHierarchyTest, DramDeliverEvictsTheHomeSlice) {
  CacheHierarchy h = MakeDomainHierarchy();
  h.StashDeliver(kDomain1Base, 64);
  ASSERT_TRUE(h.ProbeLLC(kDomain1Base));
  h.DramDeliver(kDomain1Base, 64);
  EXPECT_FALSE(h.ProbeLLC(kDomain1Base));
  HitLevel level;
  h.AccessLine(2, kDomain1Base, AccessKind::kLoad, &level);
  EXPECT_EQ(level, HitLevel::kDram);
}

TEST(DomainHierarchyTest, SingleDomainNeverChargesThePenalty) {
  // domains=1 with a mapper that claims everything homes in domain 7:
  // the clamp pins it to slice 0 and no access is ever remote.
  HierarchyConfig cfg = SmallHierarchy();
  cfg.remote_penalty_cycles = 100;
  CacheHierarchy h(cfg);
  h.SetDomainMapper([](mem::VirtAddr) { return 7u; });
  HitLevel level;
  const Cycles cost = h.AccessLine(0, 0x40000, AccessKind::kLoad, &level);
  EXPECT_EQ(level, HitLevel::kDram);
  EXPECT_EQ(cost, h.config().DramCycles());
  EXPECT_EQ(h.stats().remote_accesses, 0u);
}

TEST(DomainHierarchyTest, StashedDrainCheaperWhenDomainLocal) {
  // The fig17 mechanism in one assertion: draining a stash-delivered
  // buffer from the home domain's core beats draining it from across
  // the interconnect.
  CacheHierarchy local = MakeDomainHierarchy();
  CacheHierarchy remote = MakeDomainHierarchy();
  local.StashDeliver(kDomain1Base, 1024);
  remote.StashDeliver(kDomain1Base, 1024);
  const Cycles local_cost =
      local.Access(2, kDomain1Base, 1024, AccessKind::kLoad);
  const Cycles remote_cost =
      remote.Access(0, kDomain1Base, 1024, AccessKind::kLoad);
  EXPECT_LT(local_cost, remote_cost);
  EXPECT_EQ(remote_cost - local_cost,
            16 * local.config().remote_penalty_cycles);
}

}  // namespace
}  // namespace twochains::cache
