// Switched-fabric invariant suite: the first topology where frames cross
// shared switch buffers instead of a dedicated cable, so it ships with
// the harness that proves multi-hop delivery safe. A seeded generator
// draws randomized host->ToR->spine trees (arity, tiers, oversubscription,
// switch buffer and ECN threshold, pool width {1,4}, stealing on/off,
// adaptive AIMD banks on/off, per-spoke load all randomized) and checks
// after every run: each frame executed exactly once and in bank order
// across every hop, zero frames dropped (backpressure holds instead),
// the mark ledger reconciles (every ECN mark a switch applies is
// delivered to exactly one NIC, every echoed mark is seen by exactly one
// sender), the adaptive window never leaves [min_banks, banks], and a
// seed subsample reruns byte-identically — including laned executor runs.
// Directed cases pin that an oversubscribed trunk actually marks, that
// AIMD actually backs off and recovers, and that a starved buffer holds
// rather than drops. TC_SWITCH_TOPOLOGIES overrides the sweep size.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/rng.hpp"
#include "pool_harness.hpp"

namespace twochains::core {
namespace {

using pooltest::PoolRunResult;
using pooltest::PoolTopology;
using pooltest::RunPoolIncast;

const pkg::Package& BenchPackage() {
  static const pkg::Package package = [] {
    auto built = bench::BuildBenchPackage();
    if (!built.ok()) {
      ADD_FAILURE() << "package build failed: " << built.status();
      std::abort();
    }
    return *built;
  }();
  return package;
}

/// Draws one short random switched-tree topology. Small shared buffers
/// and low ECN thresholds against a skewed incast are what make the
/// backpressure and marking paths fire, not just the happy path.
PoolTopology RandomTreeTopology(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  PoolTopology topo;
  topo.seed = seed;
  topo.topology = Topology::kTree;
  topo.spokes = 2 + static_cast<std::uint32_t>(rng.NextBelow(5));     // 2..6
  // The issue's pool axis: a lone receiver core or a wide pool.
  topo.receiver_cores = rng.NextBelow(2) == 0 ? 1 : 4;
  topo.banks = 1 + static_cast<std::uint32_t>(rng.NextBelow(3));      // 1..3
  topo.mailboxes_per_bank =
      2 + static_cast<std::uint32_t>(rng.NextBelow(3));               // 2..4
  topo.wait_mode =
      rng.NextBelow(2) == 0 ? cpu::WaitMode::kPoll : cpu::WaitMode::kWfe;
  topo.steal.enabled = rng.NextBelow(2) == 0;
  topo.steal.threshold = 1 + static_cast<std::uint32_t>(rng.NextBelow(3));
  topo.steal.hysteresis = static_cast<std::uint32_t>(rng.NextBelow(2));
  // Tree shape: arity 1 puts every host on its own ToR (pure spine
  // traffic), tiers 1 collapses to a single shared switch.
  topo.tree.arity = 1 + static_cast<std::uint32_t>(rng.NextBelow(4));
  topo.tree.tiers = 1 + static_cast<std::uint32_t>(rng.NextBelow(2));
  topo.tree.oversub = static_cast<double>(1 + rng.NextBelow(4));      // 1..4
  // 2..16 KiB shared buffer: one to ten frames deep, so incast bursts
  // regularly fill it and exercise the hold/wake path.
  topo.switches.buffer_bytes = KiB(2) << rng.NextBelow(4);
  // 1..8 KiB marking threshold, sometimes above the buffer (clamp path).
  topo.switches.ecn_threshold_bytes = KiB(1) << rng.NextBelow(4);
  // Adaptive AIMD banks mostly on; min_banks 0 and beta 1000 exercise
  // the Initialize clamps on live traffic.
  topo.adaptive.enabled = rng.NextBelow(4) != 0;
  topo.adaptive.min_banks = static_cast<std::uint32_t>(rng.NextBelow(3));
  topo.adaptive.additive_increase_milli =
      static_cast<std::uint32_t>(125 * rng.NextBelow(5));             // 0..500
  topo.adaptive.decrease_beta_milli =
      250 + static_cast<std::uint32_t>(250 * rng.NextBelow(4));       // ..1000
  // Every spoke carries real load (concurrent arrivals from *different*
  // hosts are what fill a shared buffer), plus one hot spoke for skew.
  topo.messages_per_spoke.resize(topo.spokes);
  for (std::uint32_t s = 0; s < topo.spokes; ++s) {
    topo.messages_per_spoke[s] =
        4 + static_cast<std::uint32_t>(rng.NextBelow(9));             // 4..12
  }
  const std::uint32_t hot =
      static_cast<std::uint32_t>(rng.NextBelow(topo.spokes));
  topo.messages_per_spoke[hot] *=
      3 + static_cast<std::uint32_t>(rng.NextBelow(6));               // x3..8
  return topo;
}

std::uint32_t TopologyCount() {
  if (const char* env = std::getenv("TC_SWITCH_TOPOLOGIES")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::uint32_t>(v);
  }
  return 1000;
}

TEST(SwitchInvariantTest, RandomizedTreesPreserveMultiHopInvariants) {
  const pkg::Package& package = BenchPackage();
  const std::uint32_t runs = TopologyCount();
  std::uint64_t runs_with_marks = 0;
  std::uint64_t runs_with_holds = 0;
  std::uint64_t runs_with_backoff = 0;
  for (std::uint32_t t = 0; t < runs; ++t) {
    const PoolTopology topo = RandomTreeTopology(0x5D17C4000 + t);
    const PoolRunResult result = RunPoolIncast(topo, package);
    pooltest::ExpectPoolInvariants(topo, result);
    // Every logical frame crossed the switch fabric: with tiers=2 each
    // spoke->hub put transits its ToR (and possibly the spine), so the
    // forwarded count can never trail the delivered count.
    EXPECT_GE(result.switch_frames_forwarded, result.executed)
        << topo.Describe();
    if (result.switch_frames_marked > 0) ++runs_with_marks;
    if (result.switch_backpressure_holds > 0) ++runs_with_holds;
    if (result.cwnd_decreases_sum > 0) ++runs_with_backoff;
    // Byte-identical rerun on a seed subsample: the whole observable
    // state — engine counters, stats tables, switch counters, ECN
    // ledgers — must reproduce exactly from the topology spec.
    if (t % 25 == 0) {
      const PoolRunResult again = RunPoolIncast(topo, package);
      EXPECT_EQ(result.fingerprint, again.fingerprint) << topo.Describe();
    }
    // And the laned executor must replay the scalar run byte for byte,
    // switch lanes included (each switch is homed past the hosts).
    if (t % 50 == 0) {
      PoolTopology laned = topo;
      laned.lanes = 2 + static_cast<std::uint32_t>(t % 100 == 0 ? 2 : 0);
      const PoolRunResult lr = RunPoolIncast(laned, package);
      EXPECT_EQ(result.fingerprint, lr.fingerprint)
          << laned.Describe() << " (lanes=" << laned.lanes << ")";
    }
    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << "first failing topology: " << topo.Describe();
      break;
    }
  }
  // The sweep must actually exercise the congestion paths, not vacuously
  // pass on uncontended runs.
  EXPECT_GT(runs_with_marks, runs / 20)
      << "ECN marks fired in too few topologies (" << runs_with_marks << "/"
      << runs << ")";
  EXPECT_GT(runs_with_holds, runs / 20)
      << "buffer backpressure fired in too few topologies ("
      << runs_with_holds << "/" << runs << ")";
  EXPECT_GT(runs_with_backoff, 0u)
      << "no topology ever triggered an AIMD decrease";
}

/// An oversubscribed 2-tier trunk under a hot incast must mark, the
/// marks must come home as echoes, and the adaptive sender must back
/// off below its static ceiling — and still deliver everything.
TEST(SwitchInvariantTest, OversubscribedTrunkMarksAndAdaptiveBacksOff) {
  PoolTopology topo;
  topo.topology = Topology::kTree;
  topo.spokes = 6;
  topo.receiver_cores = 2;
  topo.banks = 3;
  topo.mailboxes_per_bank = 4;
  topo.tree.arity = 2;
  topo.tree.tiers = 2;
  topo.tree.oversub = 4.0;
  topo.switches.buffer_bytes = KiB(16);
  topo.switches.ecn_threshold_bytes = KiB(2);
  topo.adaptive.enabled = true;
  topo.messages_per_spoke.assign(topo.spokes, 48);
  topo.seed = 0xECEC;
  const PoolRunResult r = RunPoolIncast(topo, BenchPackage());
  pooltest::ExpectPoolInvariants(topo, r);
  EXPECT_GT(r.switch_frames_marked, 0u);
  EXPECT_GT(r.ecn_echoes_seen_sum, 0u);
  EXPECT_GT(r.cwnd_decreases_sum, 0u);
  std::uint64_t min_window = 3000;
  for (const std::uint64_t w : r.window_min_milli) {
    min_window = std::min(min_window, w);
  }
  EXPECT_LT(min_window, 3000u) << "no sender ever shrank its window";
  // AIMD recovers: clean flag returns after the burst reopen the window.
  EXPECT_GT(r.cwnd_increases_sum, 0u);
}

/// The same saturated trunk with static banks keeps pushing at full
/// window: no refusals, no window movement — the control in the
/// adaptive-vs-static comparison fig15 --tree tabulates.
TEST(SwitchInvariantTest, StaticBanksNeverRefuseOrMove) {
  PoolTopology topo;
  topo.topology = Topology::kTree;
  topo.spokes = 6;
  topo.receiver_cores = 2;
  topo.banks = 3;
  topo.mailboxes_per_bank = 4;
  topo.tree.arity = 2;
  topo.tree.tiers = 2;
  topo.tree.oversub = 4.0;
  topo.switches.buffer_bytes = KiB(16);
  topo.switches.ecn_threshold_bytes = KiB(2);
  topo.adaptive.enabled = false;
  topo.messages_per_spoke.assign(topo.spokes, 48);
  topo.seed = 0xECEC;
  const PoolRunResult r = RunPoolIncast(topo, BenchPackage());
  pooltest::ExpectPoolInvariants(topo, r);
  // Marks still happen (the switch doesn't care who listens) and still
  // reconcile — but nobody acts on them.
  EXPECT_GT(r.switch_frames_marked, 0u);
  EXPECT_EQ(r.adaptive_refusals_sum, 0u);
  EXPECT_EQ(r.cwnd_decreases_sum, 0u);
}

/// A buffer two frames deep under a 6-spoke burst holds frames at
/// ingress (drop-free backpressure) yet everything still lands.
TEST(SwitchInvariantTest, StarvedBufferHoldsInsteadOfDropping) {
  PoolTopology topo;
  topo.topology = Topology::kTree;
  topo.spokes = 6;
  topo.receiver_cores = 1;
  topo.banks = 2;
  topo.mailboxes_per_bank = 4;
  topo.tree.arity = 3;
  topo.tree.tiers = 2;
  topo.tree.oversub = 2.0;
  topo.switches.buffer_bytes = KiB(4);
  topo.switches.ecn_threshold_bytes = KiB(1);
  topo.adaptive.enabled = true;
  topo.messages_per_spoke.assign(topo.spokes, 24);
  topo.seed = 0xB0FFE2;
  const PoolRunResult r = RunPoolIncast(topo, BenchPackage());
  pooltest::ExpectPoolInvariants(topo, r);
  EXPECT_GT(r.switch_backpressure_holds, 0u);
  EXPECT_EQ(r.switch_frames_dropped, 0u);
  EXPECT_EQ(r.executed, r.sent);
}

/// tiers=1 collapses the tree to one shared switch; the invariants and
/// the mark ledger hold there too.
TEST(SwitchInvariantTest, SingleTierTreeDeliversEverything) {
  PoolTopology topo;
  topo.topology = Topology::kTree;
  topo.spokes = 4;
  topo.receiver_cores = 4;
  topo.banks = 2;
  topo.mailboxes_per_bank = 4;
  topo.steal.enabled = true;
  topo.steal.threshold = 2;
  topo.tree.tiers = 1;
  topo.switches.buffer_bytes = KiB(8);
  topo.switches.ecn_threshold_bytes = KiB(2);
  topo.adaptive.enabled = true;
  topo.messages_per_spoke.assign(topo.spokes, 32);
  topo.seed = 0x111;
  const PoolRunResult r = RunPoolIncast(topo, BenchPackage());
  pooltest::ExpectPoolInvariants(topo, r);
  EXPECT_EQ(r.executed, r.sent);
  EXPECT_GE(r.switch_frames_forwarded, r.executed);
}

}  // namespace
}  // namespace twochains::core
