// Reusable jam-mutation fuzz harness (see tests/fuzz_test.cpp).
//
// The VM-level half of the security story: a VmSandbox is one simulated
// host memory holding a jam image bracketed by pattern-filled canary
// regions, plus ARGS/USR buffers and a stack. Fuzzed code runs through the
// real verifier and the real interpreter; the containment contract is
//
//   * the verifier's verdict is deterministic,
//   * anything it accepts executes to a *returned* ExecResult (a clean
//     Status fault is fine; a crash, hang, or silent escape is not), and
//   * under confinement (exec + data windows, the interpreter state
//     SecurityPolicy::confine_control_flow arms) no accepted program ever
//     reads or writes a byte outside its image/ARGS/USR/stack — which the
//     canaries witness.
//
// Mutators cover the ISSUE's corpus: bit flips, byte splats, instruction
// splices, immediate extremes, and operand-field scrambles, all seeded
// (Xoshiro256) so every failure reproduces from its round number.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <span>
#include <string>
#include <vector>

#include "cache/hierarchy.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/units.hpp"
#include "jamvm/interpreter.hpp"
#include "jamvm/isa.hpp"
#include "jamvm/verifier.hpp"
#include "jelf/image.hpp"
#include "mem/host_memory.hpp"

namespace twochains::fuzz {

/// Iteration budget: TC_FUZZ_ITERS overrides (CI bounds the suite with it;
/// the default meets the ISSUE's >= 10k-mutations acceptance bar).
inline int FuzzIterations(int fallback) {
  if (const char* env = std::getenv("TC_FUZZ_ITERS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<int>(v);
  }
  return fallback;
}

inline vm::Instr MakeInstr(vm::Opcode op, std::uint8_t rd, std::uint8_t rs1,
                           std::uint8_t rs2, std::int32_t imm) {
  vm::Instr instr;
  instr.op = op;
  instr.rd = rd;
  instr.rs1 = rs1;
  instr.rs2 = rs2;
  instr.imm = imm;
  return instr;
}

inline void AppendInstr(std::vector<std::uint8_t>& code,
                        const vm::Instr& instr) {
  std::uint8_t buf[vm::kInstrBytes];
  vm::Encode(instr, buf);
  code.insert(code.end(), buf, buf + vm::kInstrBytes);
}

/// The injectable blob of a jam image (text .. rodata, padded), exactly the
/// CODE section a full-body frame carries and ComputeJamHandle hashes.
inline std::vector<std::uint8_t> CodeBlobOf(const jelf::LinkedImage& image) {
  std::vector<std::uint8_t> blob(image.code_blob_size(), 0);
  std::memcpy(blob.data(), image.text.data(), image.text.size());
  if (!image.rodata.empty()) {
    std::memcpy(blob.data() + image.rodata_offset, image.rodata.data(),
                image.rodata.size());
  }
  return blob;
}

// ----------------------------------------------------------- mutators

/// 1..8 single-bit flips at random positions.
inline void FlipBits(Xoshiro256& rng, std::vector<std::uint8_t>& code) {
  if (code.empty()) return;
  const std::uint64_t flips = 1 + rng.NextBelow(8);
  for (std::uint64_t i = 0; i < flips; ++i) {
    code[rng.NextBelow(code.size())] ^=
        static_cast<std::uint8_t>(1u << rng.NextBelow(8));
  }
}

/// 1..4 random byte overwrites.
inline void SplatBytes(Xoshiro256& rng, std::vector<std::uint8_t>& code) {
  if (code.empty()) return;
  const std::uint64_t n = 1 + rng.NextBelow(4);
  for (std::uint64_t i = 0; i < n; ++i) {
    code[rng.NextBelow(code.size())] = static_cast<std::uint8_t>(rng.Next());
  }
}

/// Splices a random (possibly ill-formed) instruction over a random slot.
inline void SpliceInstr(Xoshiro256& rng, std::vector<std::uint8_t>& code) {
  if (code.size() < vm::kInstrBytes) return;
  const std::size_t slot =
      rng.NextBelow(code.size() / vm::kInstrBytes) * vm::kInstrBytes;
  // Mostly ISA-shaped (valid opcode/register ranges, arbitrary imm), so
  // splices survive Decode and stress the *semantic* checks; sometimes raw.
  if (rng.NextBelow(4) != 0) {
    const vm::Instr instr = MakeInstr(
        static_cast<vm::Opcode>(rng.NextBelow(
            static_cast<std::uint64_t>(vm::Opcode::kOpcodeCount))),
        static_cast<std::uint8_t>(rng.NextBelow(vm::kNumRegs)),
        static_cast<std::uint8_t>(rng.NextBelow(vm::kNumRegs)),
        static_cast<std::uint8_t>(rng.NextBelow(vm::kNumRegs)),
        static_cast<std::int32_t>(rng.Next()));
    vm::Encode(instr, code.data() + slot);
  } else {
    for (std::size_t i = 0; i < vm::kInstrBytes; ++i) {
      code[slot + i] = static_cast<std::uint8_t>(rng.Next());
    }
  }
}

/// Rewrites a random slot's immediate to a boundary extreme (the targets a
/// branch/lea/ldg bound check must hold against).
inline void ExtremeImm(Xoshiro256& rng, std::vector<std::uint8_t>& code) {
  if (code.size() < vm::kInstrBytes) return;
  const std::size_t slot =
      rng.NextBelow(code.size() / vm::kInstrBytes) * vm::kInstrBytes;
  auto decoded = vm::Decode(code.data() + slot);
  if (!decoded) {
    SplatBytes(rng, code);
    return;
  }
  const std::int32_t size = static_cast<std::int32_t>(code.size());
  const std::int32_t extremes[] = {
      INT32_MIN, INT32_MAX,         -size,      size,
      size - vm::kInstrBytes,       -16,        -8,
      0,                            8,
  };
  decoded->imm = extremes[rng.NextBelow(std::size(extremes))];
  vm::Encode(*decoded, code.data() + slot);
}

/// Scrambles the register operands of a random decodable slot.
inline void ScrambleFields(Xoshiro256& rng, std::vector<std::uint8_t>& code) {
  if (code.size() < vm::kInstrBytes) return;
  const std::size_t slot =
      rng.NextBelow(code.size() / vm::kInstrBytes) * vm::kInstrBytes;
  auto decoded = vm::Decode(code.data() + slot);
  if (!decoded) {
    SplatBytes(rng, code);
    return;
  }
  decoded->rd = static_cast<std::uint8_t>(rng.NextBelow(vm::kNumRegs));
  decoded->rs1 = static_cast<std::uint8_t>(rng.NextBelow(vm::kNumRegs));
  decoded->rs2 = static_cast<std::uint8_t>(rng.NextBelow(vm::kNumRegs));
  vm::Encode(*decoded, code.data() + slot);
}

/// Applies 1..3 mutators drawn from the whole palette.
inline void MutateCode(Xoshiro256& rng, std::vector<std::uint8_t>& code) {
  const std::uint64_t rounds = 1 + rng.NextBelow(3);
  for (std::uint64_t i = 0; i < rounds; ++i) {
    switch (rng.NextBelow(5)) {
      case 0: FlipBits(rng, code); break;
      case 1: SplatBytes(rng, code); break;
      case 2: SpliceInstr(rng, code); break;
      case 3: ExtremeImm(rng, code); break;
      default: ScrambleFields(rng, code); break;
    }
  }
}

// ------------------------------------------------------------ sandbox

struct RunOutcome {
  vm::ExecResult result;
  bool canaries_intact = true;
};

/// One reusable arena: GOT + PRE + code image bracketed by canaries, with
/// ARGS/USR buffers and a stack. Run() resets every region it hands the
/// jam, so iterations are independent (only cache *timing* state carries).
class VmSandbox {
 public:
  static constexpr std::uint32_t kGotSlots = 32;     ///< slot capacity
  static constexpr std::uint32_t kDefaultGotSlots = 8;
  static constexpr std::uint64_t kCodeOffset = 512;  ///< within the image
  static constexpr std::uint64_t kImageBytes = 16 * 1024;
  static constexpr std::uint64_t kCanaryBytes = 256;
  static constexpr std::uint64_t kArgsBytes = 512;
  static constexpr std::uint64_t kUsrBytes = 512;
  static constexpr std::uint64_t kStackBytes = 16 * 1024;
  static constexpr std::uint8_t kCanaryFill = 0xC5;

  VmSandbox() : mem_(0, MiB(8)), caches_(CacheConfig()) {
    const Status natives = vm::RegisterStandardNatives(natives_, {&print_});
    ok_ = natives.ok();
    canary_lo_ = MustAllocate(kCanaryBytes, "fuzz.canary.lo", mem::Perm::kRW);
    image_ = MustAllocate(kImageBytes, "fuzz.image", mem::Perm::kRWX);
    canary_mid_ = MustAllocate(kCanaryBytes, "fuzz.canary.mid",
                               mem::Perm::kRW);
    args_ = MustAllocate(kArgsBytes, "fuzz.args", mem::Perm::kRW);
    usr_ = MustAllocate(kUsrBytes, "fuzz.usr", mem::Perm::kRW);
    canary_hi_ = MustAllocate(kCanaryBytes, "fuzz.canary.hi", mem::Perm::kRW);
    stack_ = MustAllocate(kStackBytes, "fuzz.stack", mem::Perm::kRW);
  }

  /// False when construction failed (asserted once by the test fixture).
  bool ok() const noexcept { return ok_; }

  mem::VirtAddr got_addr() const noexcept { return image_; }
  mem::VirtAddr pre_addr() const noexcept { return code_addr() - 16; }
  mem::VirtAddr code_addr() const noexcept { return image_ + kCodeOffset; }
  mem::VirtAddr args_addr() const noexcept { return args_; }
  mem::VirtAddr usr_addr() const noexcept { return usr_; }
  mem::VirtAddr canary_lo_addr() const noexcept { return canary_lo_; }
  mem::VirtAddr canary_hi_addr() const noexcept { return canary_hi_; }
  std::uint64_t code_capacity() const noexcept {
    return kImageBytes - kCodeOffset;
  }
  vm::NativeTable& natives() noexcept { return natives_; }
  mem::HostMemory& memory() noexcept { return mem_; }

  /// The native handle for @p name, or 0 when absent.
  std::uint64_t NativeHandle(std::string_view name) const {
    const auto idx = natives_.IndexOf(name);
    return idx.ok() ? vm::MakeNativeHandle(*idx) : 0;
  }

  /// Harness verifier call: the limits an injected-frame receive would use
  /// (ldg.pre pinned to the preamble slot, no fixed in-image GOT).
  Status Verify(std::span<const std::uint8_t> code, std::uint32_t got_slots,
                std::uint64_t rodata_bytes) const {
    vm::VerifyLimits limits;
    limits.got_slots = got_slots;
    limits.rodata_bytes = rodata_bytes;
    return vm::VerifyCode(code, limits);
  }

  /// Executes @p blob (code+rodata) at entry offset 0. @p got_values fills
  /// the GOT (defaults: a native-handle / data-pointer mix); ARGS receives
  /// @p arg_words and a0..a2 get the jam convention (args, usr, usr_bytes).
  /// Confined runs arm exec windows over the blob and data windows over
  /// {image, args, usr, stack} — exactly the interpreter state the runtime
  /// builds under SecurityPolicy::confine_control_flow, plus the data
  /// fence the harness adds so the canaries can witness containment.
  RunOutcome Run(std::span<const std::uint8_t> blob, bool confined,
                 std::span<const std::uint64_t> got_values = {},
                 std::span<const std::uint64_t> arg_words = {},
                 std::span<const std::uint8_t> usr_bytes = {},
                 std::uint64_t max_instructions = 4096,
                 std::uint64_t entry_offset = 0) {
    RunOutcome out;
    if (blob.empty() || blob.size() > code_capacity() ||
        entry_offset >= blob.size()) {
      out.result.status = InvalidArgument("blob does not fit the sandbox");
      return out;
    }
    ResetArena(blob, got_values, arg_words, usr_bytes);

    vm::ExecConfig config;
    config.max_instructions = max_instructions;
    config.enforce_exec_permission = false;  // the image region is RWX
    if (confined) {
      config.exec_windows = {{code_addr(), blob.size()}};
      config.data_windows = {{image_, kImageBytes},
                             {args_, kArgsBytes},
                             {usr_, kUsrBytes},
                             {stack_, kStackBytes}};
    }
    vm::Interpreter interp(mem_, caches_, /*core=*/0, &natives_, config);
    const std::uint64_t args[3] = {args_, usr_, usr_bytes.size()};
    out.result =
        interp.Execute(code_addr() + entry_offset, args, stack_ + kStackBytes);
    out.canaries_intact = CanariesIntact();
    return out;
  }

  /// True while every byte of all three canary regions still holds the
  /// fill pattern.
  bool CanariesIntact() {
    return RegionIntact(canary_lo_) && RegionIntact(canary_mid_) &&
           RegionIntact(canary_hi_);
  }

 private:
  static cache::HierarchyConfig CacheConfig() {
    cache::HierarchyConfig cfg;
    cfg.l1 = {"L1", KiB(16), 4, 2};
    cfg.l2 = {"L2", KiB(64), 8, 12};
    cfg.l3 = {"L3", KiB(128), 16, 30};
    cfg.llc = {"LLC", KiB(256), 16, 55};
    return cfg;
  }

  mem::VirtAddr MustAllocate(std::uint64_t size, const char* tag,
                             mem::Perm perm) {
    auto addr = mem_.Allocate(size, 64, perm, tag);
    if (!addr.ok()) {
      ok_ = false;
      return 0;
    }
    return *addr;
  }

  void ResetArena(std::span<const std::uint8_t> blob,
                  std::span<const std::uint64_t> got_values,
                  std::span<const std::uint64_t> arg_words,
                  std::span<const std::uint8_t> usr_bytes) {
    // Canaries first: a hostile *unconfined* run may have stomped them.
    const std::vector<std::uint8_t> pattern(kCanaryBytes, kCanaryFill);
    (void)mem_.DmaWrite(canary_lo_, pattern);
    (void)mem_.DmaWrite(canary_mid_, pattern);
    (void)mem_.DmaWrite(canary_hi_, pattern);

    // GOT: provided values, else the default native/data mix; spare slots
    // point at USR (a writable in-window data pointer — the hostile case a
    // confined jalr must still not execute).
    for (std::uint32_t slot = 0; slot < kGotSlots; ++slot) {
      std::uint64_t value = usr_;
      if (slot < got_values.size()) {
        value = got_values[slot];
      } else if (got_values.empty() && slot < kDefaultGotSlots) {
        switch (slot) {
          case 0: value = NativeHandle("tc_hash64"); break;
          case 1: value = NativeHandle("tc_memcpy"); break;
          case 2: value = NativeHandle("tc_memset"); break;
          case 3: value = NativeHandle("tc_print_u64"); break;
          default: value = usr_; break;
        }
      }
      (void)mem_.StoreU64(got_addr() + 8ull * slot, value);
    }
    (void)mem_.StoreU64(pre_addr(), got_addr());

    // Code region: previous iteration's tail cleared, then the blob.
    const std::vector<std::uint8_t> zeros(code_capacity(), 0);
    (void)mem_.DmaWrite(code_addr(), zeros);
    (void)mem_.DmaWrite(code_addr(), blob);

    // ARGS / USR.
    const std::vector<std::uint8_t> arg_zeros(kArgsBytes, 0);
    (void)mem_.DmaWrite(args_, arg_zeros);
    if (!arg_words.empty()) {
      const std::uint64_t n =
          std::min<std::uint64_t>(arg_words.size(), kArgsBytes / 8);
      (void)mem_.DmaWrite(
          args_, std::span<const std::uint8_t>(
                     reinterpret_cast<const std::uint8_t*>(arg_words.data()),
                     n * 8));
    }
    const std::vector<std::uint8_t> usr_zeros(kUsrBytes, 0);
    (void)mem_.DmaWrite(usr_, usr_zeros);
    if (!usr_bytes.empty()) {
      (void)mem_.DmaWrite(usr_,
                          usr_bytes.subspan(
                              0, std::min<std::uint64_t>(usr_bytes.size(),
                                                         kUsrBytes)));
    }
  }

  bool RegionIntact(mem::VirtAddr base) {
    auto span = mem_.RawSpan(base, kCanaryBytes);
    if (!span.ok()) return false;
    for (const std::uint8_t byte : *span) {
      if (byte != kCanaryFill) return false;
    }
    return true;
  }

  mem::HostMemory mem_;
  cache::CacheHierarchy caches_;
  vm::NativeTable natives_;
  std::string print_;
  bool ok_ = true;
  mem::VirtAddr canary_lo_ = 0;
  mem::VirtAddr image_ = 0;
  mem::VirtAddr canary_mid_ = 0;
  mem::VirtAddr args_ = 0;
  mem::VirtAddr usr_ = 0;
  mem::VirtAddr canary_hi_ = 0;
  mem::VirtAddr stack_ = 0;
};

}  // namespace twochains::fuzz
