// Tests for CPU cycle accounting and the POLL / WFE wait models — the
// substrate of Figures 13 and 14 (latency parity, large cycle savings).
#include <gtest/gtest.h>

#include "cpu/core.hpp"
#include "cpu/spinwait.hpp"

namespace twochains::cpu {
namespace {

TEST(CpuCoreTest, ChargeAccumulatesPerClass) {
  CpuCore core(0);
  const PicoTime d1 = core.Charge(260, CycleClass::kExecute);
  core.Charge(130, CycleClass::kWait);
  core.Charge(10, CycleClass::kExecute);
  EXPECT_EQ(core.counters().Of(CycleClass::kExecute), 270u);
  EXPECT_EQ(core.counters().Of(CycleClass::kWait), 130u);
  EXPECT_EQ(core.counters().Total(), 400u);
  // 260 cycles at 2.6 GHz = exactly 100 ns.
  EXPECT_EQ(d1, Nanoseconds(100.0));
}

TEST(CpuCoreTest, InstructionAndMessageCounters) {
  CpuCore core(1);
  core.CountInstructions(100);
  core.CountInstructions(23);
  core.CountMessage();
  EXPECT_EQ(core.counters().instructions, 123u);
  EXPECT_EQ(core.counters().messages_handled, 1u);
  core.ResetCounters();
  EXPECT_EQ(core.counters().Total(), 0u);
  EXPECT_EQ(core.counters().instructions, 0u);
}

WaitModelConfig PollConfig() {
  WaitModelConfig cfg;
  cfg.mode = WaitMode::kPoll;
  cfg.poll_iteration_cycles = 10;
  return cfg;
}

WaitModelConfig WfeConfig() {
  WaitModelConfig cfg;
  cfg.mode = WaitMode::kWfe;
  cfg.wfe_wakeup_cycles = 130;
  cfg.wfe_entry_cycles = 24;
  cfg.wfe_halted_cycles_per_us = 12;
  return cfg;
}

TEST(WaitModelTest, PollBurnsTheFullWaitInCycles) {
  WaitModel poll(PollConfig(), kCoreClock);
  const PicoTime wait = Microseconds(1.0);  // 2600 cycles
  const WaitOutcome out = poll.Wait(wait);
  // Burned at least the full wait duration.
  EXPECT_GE(out.cycles_burned, kCoreClock.ToCycles(wait));
  // Detection at the next iteration boundary: strictly less than one
  // iteration away.
  EXPECT_LT(out.detection_delay, kCoreClock.ToPicos(10));
}

TEST(WaitModelTest, WfeBurnsAlmostNothing) {
  WaitModel wfe(WfeConfig(), kCoreClock);
  const PicoTime wait = Microseconds(1.0);
  const WaitOutcome out = wfe.Wait(wait);
  // entry + wakeup + 1us of halted residual = 24 + 130 + 12.
  EXPECT_EQ(out.cycles_burned, 24u + 130u + 12u);
  EXPECT_EQ(out.detection_delay, kCoreClock.ToPicos(130));
}

TEST(WaitModelTest, WfeCycleAdvantageGrowsWithWaitTime) {
  WaitModel poll(PollConfig(), kCoreClock);
  WaitModel wfe(WfeConfig(), kCoreClock);
  double prev_ratio = 0.0;
  for (double us : {0.5, 1.0, 2.0, 5.0, 10.0}) {
    const auto p = poll.Wait(Microseconds(us));
    const auto w = wfe.Wait(Microseconds(us));
    const double ratio = static_cast<double>(p.cycles_burned) /
                         static_cast<double>(w.cycles_burned);
    EXPECT_GT(ratio, prev_ratio);  // monotone in wait length
    prev_ratio = ratio;
  }
  // At 10 us the advantage is enormous (paper sees 2.5-3.8x for *whole-run*
  // counts which include execution; the wait portion alone is far larger).
  EXPECT_GT(prev_ratio, 50.0);
}

TEST(WaitModelTest, WfeLatencyPenaltyIsBounded) {
  // The paper: "up to 1.5% latency penalty". For a 2 us one-way message the
  // fixed wake-up penalty must stay in single-digit percent.
  WaitModel poll(PollConfig(), kCoreClock);
  WaitModel wfe(WfeConfig(), kCoreClock);
  const PicoTime wait = Microseconds(2.0);
  const auto p = poll.Wait(wait);
  const auto w = wfe.Wait(wait);
  const double base = ToNanoseconds(wait + p.detection_delay);
  const double with_wfe = ToNanoseconds(wait + w.detection_delay);
  EXPECT_LT((with_wfe - base) / base, 0.03);
}

TEST(WaitModelTest, PollDetectionAlignsToIterationBoundary) {
  WaitModel poll(PollConfig(), kCoreClock);
  const PicoTime iter = kCoreClock.ToPicos(10);
  // A wait of exactly k iterations is detected with zero added delay.
  const auto exact = poll.Wait(iter * 3);
  EXPECT_EQ(exact.detection_delay, 0u);
  // A wait of k iterations + 1 ps waits out the remainder of the iteration.
  const auto off = poll.Wait(iter * 3 + 1);
  EXPECT_EQ(off.detection_delay, iter - 1);
}

TEST(WaitStatsTest, RecordAccumulatesEpisodes) {
  // The per-core ledger a pooled receiver keeps: each wait episode folds
  // its idle time, detection delay, and cycle burn into the totals.
  WaitModel poll(PollConfig(), kCoreClock);
  WaitModel wfe(WfeConfig(), kCoreClock);
  WaitStats stats;
  const PicoTime w1 = Microseconds(1.0);
  const PicoTime w2 = Microseconds(2.5);
  const auto o1 = poll.Wait(w1);
  stats.Record(w1, o1);
  const auto o2 = wfe.Wait(w2);
  stats.Record(w2, o2);
  EXPECT_EQ(stats.episodes, 2u);
  EXPECT_EQ(stats.idle_picos, w1 + w2);
  EXPECT_EQ(stats.detection_picos, o1.detection_delay + o2.detection_delay);
  EXPECT_EQ(stats.cycles_burned, o1.cycles_burned + o2.cycles_burned);
}

TEST(WaitStatsTest, IndependentLedgersDoNotBleed) {
  // Two pool cores waiting on the same model keep separate books.
  WaitModel poll(PollConfig(), kCoreClock);
  WaitStats a, b;
  a.Record(Microseconds(1.0), poll.Wait(Microseconds(1.0)));
  EXPECT_EQ(a.episodes, 1u);
  EXPECT_EQ(b.episodes, 0u);
  EXPECT_EQ(b.cycles_burned, 0u);
  b.Record(0, poll.Wait(0));
  EXPECT_EQ(a.episodes, 1u);
  EXPECT_EQ(b.episodes, 1u);
  EXPECT_EQ(b.idle_picos, 0u);
}

TEST(WaitModelTest, ZeroWaitEdgeCases) {
  WaitModel poll(PollConfig(), kCoreClock);
  WaitModel wfe(WfeConfig(), kCoreClock);
  const auto p = poll.Wait(0);
  EXPECT_EQ(p.detection_delay, 0u);
  EXPECT_EQ(p.cycles_burned, 10u);  // one final check
  const auto w = wfe.Wait(0);
  EXPECT_EQ(w.cycles_burned, 24u + 130u);
}

}  // namespace
}  // namespace twochains::cpu
