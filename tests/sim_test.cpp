// Unit tests for the discrete-event engine: ordering, determinism,
// cancellation, stop conditions.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"

namespace twochains::sim {
namespace {

TEST(EngineTest, StartsAtTimeZeroAndIdle) {
  Engine e;
  EXPECT_EQ(e.Now(), 0u);
  EXPECT_TRUE(e.Idle());
  e.Run();  // no events: returns immediately
  EXPECT_EQ(e.EventsProcessed(), 0u);
}

TEST(EngineTest, EventsFireInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.ScheduleAt(300, [&] { order.push_back(3); });
  e.ScheduleAt(100, [&] { order.push_back(1); });
  e.ScheduleAt(200, [&] { order.push_back(2); });
  e.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.Now(), 300u);
}

TEST(EngineTest, EqualTimestampsFireInScheduleOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.ScheduleAt(50, [&order, i] { order.push_back(i); });
  }
  e.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EngineTest, CallbackCanScheduleMore) {
  Engine e;
  int fired = 0;
  e.ScheduleAt(10, [&] {
    ++fired;
    e.ScheduleAfter(5, [&] { ++fired; });
  });
  e.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(e.Now(), 15u);
}

TEST(EngineTest, PastTimesClampToNow) {
  Engine e;
  PicoTime seen = 12345;
  e.ScheduleAt(100, [&] {
    e.ScheduleAt(10, [&] { seen = e.Now(); });  // 10 < now: clamp
  });
  e.Run();
  EXPECT_EQ(seen, 100u);
}

TEST(EngineTest, CancelPreventsExecution) {
  Engine e;
  bool ran = false;
  const EventId id = e.ScheduleAt(10, [&] { ran = true; });
  EXPECT_TRUE(e.Cancel(id));
  EXPECT_FALSE(e.Cancel(id));  // double cancel is a no-op
  e.Run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(e.EventsProcessed(), 0u);
}

TEST(EngineTest, CancelUnknownIdReturnsFalse) {
  Engine e;
  EXPECT_FALSE(e.Cancel(0));
  EXPECT_FALSE(e.Cancel(999));
}

TEST(EngineTest, RunUntilStopsAtDeadline) {
  Engine e;
  int fired = 0;
  e.ScheduleAt(100, [&] { ++fired; });
  e.ScheduleAt(200, [&] { ++fired; });
  e.ScheduleAt(300, [&] { ++fired; });
  e.RunUntil(200);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(e.Now(), 200u);
  EXPECT_EQ(e.PendingEvents(), 1u);
  e.Run();
  EXPECT_EQ(fired, 3);
}

TEST(EngineTest, RunUntilAdvancesTimeEvenWithoutEvents) {
  Engine e;
  e.RunUntil(5000);
  EXPECT_EQ(e.Now(), 5000u);
}

TEST(EngineTest, StopHaltsRun) {
  Engine e;
  int fired = 0;
  e.ScheduleAt(10, [&] {
    ++fired;
    e.Stop();
  });
  e.ScheduleAt(20, [&] { ++fired; });
  e.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.PendingEvents(), 1u);
}

TEST(EngineTest, RunUntilConditionStopsEarly) {
  Engine e;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    e.ScheduleAt(static_cast<PicoTime>(i * 10), [&] { ++count; });
  }
  const bool met = e.RunUntilCondition([&] { return count >= 4; });
  EXPECT_TRUE(met);
  EXPECT_EQ(count, 4);
  EXPECT_EQ(e.Now(), 40u);
}

TEST(EngineTest, RunUntilConditionReturnsFalseWhenQueueDrains) {
  Engine e;
  int count = 0;
  e.ScheduleAt(10, [&] { ++count; });
  const bool met = e.RunUntilCondition([&] { return count >= 5; });
  EXPECT_FALSE(met);
  EXPECT_EQ(count, 1);
}

TEST(EngineTest, ConditionAlreadyTrueDoesNotRunEvents) {
  Engine e;
  int count = 0;
  e.ScheduleAt(10, [&] { ++count; });
  EXPECT_TRUE(e.RunUntilCondition([] { return true; }));
  EXPECT_EQ(count, 0);
}

TEST(EngineTest, EventHookObservesTags) {
  Engine e;
  std::vector<std::string> tags;
  e.SetEventHook([&](PicoTime, const std::string& tag) { tags.push_back(tag); });
  e.ScheduleAt(1, [] {}, "alpha");
  e.ScheduleAt(2, [] {}, "beta");
  e.Run();
  EXPECT_EQ(tags, (std::vector<std::string>{"alpha", "beta"}));
}

TEST(EngineTest, ManyEventsDeterministicOrder) {
  // Schedule a shuffled batch; the pop order must be fully determined by
  // (time, schedule-sequence).
  Engine e1, e2;
  std::vector<int> o1, o2;
  auto schedule = [](Engine& e, std::vector<int>& o) {
    for (int i = 0; i < 500; ++i) {
      const PicoTime t = static_cast<PicoTime>((i * 7919) % 100);
      e.ScheduleAt(t, [&o, i] { o.push_back(i); });
    }
  };
  schedule(e1, o1);
  schedule(e2, o2);
  e1.Run();
  e2.Run();
  EXPECT_EQ(o1, o2);
  EXPECT_EQ(o1.size(), 500u);
}

TEST(EngineTest, CancelOfAlreadyFiredEventIsRejected) {
  // The fabric cancels flow-control timeouts that usually fire first; a
  // stale id must be a clean no-op.
  Engine e;
  int fired = 0;
  const EventId id = e.ScheduleAt(10, [&] { ++fired; });
  e.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(e.Cancel(id));  // already fired
  EXPECT_FALSE(e.Cancel(id));  // still a no-op
  EXPECT_EQ(e.PendingEvents(), 0u);
  EXPECT_TRUE(e.Idle());
  // The engine stays consistent: new events still schedule and fire.
  e.ScheduleAt(20, [&] { ++fired; });
  EXPECT_EQ(e.PendingEvents(), 1u);
  e.Run();
  EXPECT_EQ(fired, 2);
}

TEST(EngineTest, CancelAfterFireDoesNotCorruptPendingCount) {
  Engine e;
  const EventId a = e.ScheduleAt(10, [] {});
  e.ScheduleAt(20, [] {});
  e.RunUntil(15);  // fires a, leaves b pending
  EXPECT_FALSE(e.Cancel(a));
  EXPECT_EQ(e.PendingEvents(), 1u);  // b must still be counted
  EXPECT_FALSE(e.Idle());
  e.Run();
  EXPECT_EQ(e.PendingEvents(), 0u);
}

TEST(EngineTest, RunUntilConditionStopsInsideSameTimestampBurst) {
  // All events land on one timestamp; the condition is evaluated after
  // each event, so the run stops mid-burst in schedule order.
  Engine e;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    e.ScheduleAt(50, [&] { ++count; });
  }
  const bool met = e.RunUntilCondition([&] { return count >= 3; });
  EXPECT_TRUE(met);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(e.Now(), 50u);
  EXPECT_EQ(e.PendingEvents(), 7u);
  // The rest of the burst still fires, in order, at the same time.
  e.Run();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(e.Now(), 50u);
}

TEST(EngineTest, RunUntilConditionBurstResumesDeterministically) {
  // Two engines driven through the same burst via different stop/resume
  // points must observe the same total order.
  auto run_with_stops = [](int first_stop) {
    Engine e;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i) {
      e.ScheduleAt(100, [&order, i] { order.push_back(i); });
    }
    e.RunUntilCondition([&] {
      return static_cast<int>(order.size()) >= first_stop;
    });
    e.Run();
    return order;
  };
  const auto a = run_with_stops(2);
  const auto b = run_with_stops(5);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 8u);
}

TEST(EngineTest, ManyInterleavedSchedulersAreDeterministic) {
  // K independent "schedulers" (self-rescheduling chains, like K receiver
  // agents on one engine) interleave heavily, with frequent timestamp
  // collisions. The (time, seq) order must make two engines agree on the
  // full interleaving, and time must never run backwards.
  auto drive = [](Engine& e, std::vector<std::pair<int, int>>& order) {
    constexpr int kSchedulers = 8;
    constexpr int kSteps = 60;
    std::function<void(int, int)> chain = [&](int scheduler, int step) {
      order.emplace_back(scheduler, step);
      if (step >= kSteps) return;
      // Collision-heavy delays: many chains land on the same timestamps.
      const PicoTime delay = 10 * ((scheduler + step) % 4);
      e.ScheduleAfter(delay,
                      [&chain, scheduler, step] { chain(scheduler, step + 1); },
                      "chain");
    };
    for (int s = 0; s < kSchedulers; ++s) {
      e.ScheduleAt(5 * (s % 3), [&chain, s] { chain(s, 0); });
    }
    PicoTime last = 0;
    bool monotonic = true;
    e.SetEventHook([&](PicoTime t, const std::string&) {
      monotonic &= t >= last;
      last = t;
    });
    e.Run();
    EXPECT_TRUE(monotonic);
    EXPECT_EQ(order.size(), kSchedulers * (kSteps + 1));
  };
  Engine e1, e2;
  std::vector<std::pair<int, int>> o1, o2;
  drive(e1, o1);
  drive(e2, o2);
  EXPECT_EQ(o1, o2);
}

TEST(EngineTest, PendingEventsTracksQueue) {
  Engine e;
  EXPECT_EQ(e.PendingEvents(), 0u);
  const EventId a = e.ScheduleAt(10, [] {});
  e.ScheduleAt(20, [] {});
  EXPECT_EQ(e.PendingEvents(), 2u);
  e.Cancel(a);
  EXPECT_EQ(e.PendingEvents(), 1u);
  e.Run();
  EXPECT_EQ(e.PendingEvents(), 0u);
}

}  // namespace
}  // namespace twochains::sim
