// Receiver-side jam cache suite: send-once/invoke-many over the two-host
// testbed — the by-handle fast path, the miss -> NAK -> resend degrade
// path, capacity eviction under thrash, reload/re-sync invalidation (a
// reloaded package must never execute a stale cached image), hardened
// security modes over cached images, and exactly-once under a stealing,
// hotplugging receiver pool with the cache armed.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "benchlib/workloads.hpp"
#include "core/two_chains.hpp"
#include "pool_harness.hpp"

namespace twochains::core {
namespace {

JamCacheConfig CacheOn(std::uint32_t capacity = 8) {
  JamCacheConfig config;
  config.enabled = true;
  config.capacity = capacity;
  return config;
}

class JamCacheTest : public ::testing::Test {
 protected:
  static TestbedOptions Options(std::uint32_t capacity = 8) {
    TestbedOptions options;
    options.runtime.banks = 2;
    options.runtime.mailboxes_per_bank = 4;
    options.runtime.mailbox_slot_bytes = KiB(64);
    options.WithJamCache(CacheOn(capacity));
    return options;
  }

  void SetUpTestbed(TestbedOptions options = Options()) {
    testbed_ = std::make_unique<Testbed>(options);
    auto pkg = bench::BuildBenchPackage();
    ASSERT_TRUE(pkg.ok()) << pkg.status();
    ASSERT_TRUE(testbed_->LoadPackage(*pkg).ok());
  }

  /// Sends one jam and runs until a frame actually *executes* (a cache
  /// miss completes without executing; its full-body resend follows).
  StatusOr<ReceivedMessage> SendAndRun(const std::string& jam,
                                       std::vector<std::uint64_t> args,
                                       std::vector<std::uint8_t> usr) {
    std::optional<ReceivedMessage> executed;
    testbed_->runtime(1).SetOnExecuted([&](const ReceivedMessage& msg) {
      if (msg.executed) executed = msg;
    });
    TC_ASSIGN_OR_RETURN(
        const SendReceipt receipt,
        testbed_->runtime(0).Send(jam, Invoke::kInjected, args, usr));
    last_receipt_ = receipt;
    testbed_->RunUntil([&] { return executed.has_value(); });
    testbed_->runtime(1).SetOnExecuted(nullptr);
    if (!executed.has_value()) return Internal("message never executed");
    return *executed;
  }

  std::vector<std::uint8_t> SumPayload(std::uint64_t* expect_out) {
    std::vector<std::uint8_t> usr(64);
    std::uint64_t expect = 0;
    for (std::uint64_t i = 0; i < 8; ++i) {
      const std::uint64_t v = 3 * i + 1;
      std::memcpy(usr.data() + 8 * i, &v, 8);
      expect += v;
    }
    *expect_out = expect;
    return usr;
  }

  std::unique_ptr<Testbed> testbed_;
  SendReceipt last_receipt_;
};

TEST_F(JamCacheTest, SecondSendGoesByHandleAndSavesWire) {
  SetUpTestbed();
  Runtime& sender = testbed_->runtime(0);
  Runtime& receiver = testbed_->runtime(1);
  std::uint64_t expect = 0;
  const std::vector<std::uint8_t> usr = SumPayload(&expect);

  // First send travels full-body and installs at the receiver.
  auto first = SendAndRun("ssum", {0}, usr);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(last_receipt_.by_handle);
  EXPECT_FALSE(first->by_handle);
  EXPECT_EQ(first->return_value, expect);
  EXPECT_EQ(receiver.jam_cache_stats().installs, 1u);
  EXPECT_EQ(receiver.JamCacheSize(), 1u);
  EXPECT_GT(receiver.JamCacheResidentBytes(), 0u);
  EXPECT_TRUE(sender.PeerHasJamHandle(kDefaultPeer, "ssum"));
  const std::uint64_t full_bytes = sender.stats().bytes_sent;

  // Second send rides the slim by-handle frame and still computes the sum.
  auto second = SendAndRun("ssum", {0}, usr);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(last_receipt_.by_handle);
  EXPECT_TRUE(second->by_handle);
  EXPECT_EQ(second->return_value, expect);
  EXPECT_EQ(receiver.PeekU64("sum_results", 1).value(), expect);

  const JamCacheStats& js = receiver.jam_cache_stats();
  EXPECT_EQ(js.hits, 1u);
  EXPECT_EQ(js.misses, 0u);
  EXPECT_GT(js.bytes_saved, 0u);
  EXPECT_GT(js.link_cycles_saved, 0u);
  EXPECT_EQ(sender.jam_cache_stats().by_handle_sends, 1u);

  // The by-handle frame is dramatically smaller than the full-body one:
  // the second send's wire bytes must undercut the first send's by at
  // least the code blob it no longer carries.
  const std::uint64_t slim_bytes = sender.stats().bytes_sent - full_bytes;
  EXPECT_LT(slim_bytes + 512, full_bytes);
  EXPECT_EQ(last_receipt_.frame_len, slim_bytes);
}

TEST_F(JamCacheTest, EvictionMissTriggersNakAndFullResend) {
  // Capacity 1: installing a second jam evicts the first, so re-invoking
  // the first by handle MUST miss, NAK, and resend full-body — the wire
  // protocol's designed degrade path, observed step by step.
  SetUpTestbed(Options(/*capacity=*/1));
  Runtime& sender = testbed_->runtime(0);
  Runtime& receiver = testbed_->runtime(1);
  std::uint64_t expect = 0;
  const std::vector<std::uint8_t> usr = SumPayload(&expect);

  ASSERT_TRUE(SendAndRun("ssum", {0}, usr).ok());   // installs ssum
  ASSERT_TRUE(SendAndRun("iput", {77}, usr).ok());  // evicts ssum for iput
  EXPECT_EQ(receiver.jam_cache_stats().evictions, 1u);
  EXPECT_EQ(receiver.JamCacheSize(), 1u);

  // The sender still believes the peer holds ssum — this send goes
  // by-handle, misses, and the NAK forces a full-body resend that
  // executes exactly once.
  auto msg = SendAndRun("ssum", {0}, usr);
  ASSERT_TRUE(msg.ok()) << msg.status();
  EXPECT_TRUE(last_receipt_.by_handle);
  EXPECT_FALSE(msg->by_handle);  // the executing frame is the resend
  EXPECT_EQ(msg->return_value, expect);
  EXPECT_EQ(receiver.PeekU64("sum_results", 1).value(), expect);
  EXPECT_EQ(receiver.PeekU64("sum_cursor").value(), 2u);

  const JamCacheStats& hub = receiver.jam_cache_stats();
  const JamCacheStats& cli = sender.jam_cache_stats();
  EXPECT_EQ(hub.misses, 1u);
  EXPECT_EQ(hub.naks_sent, 1u);
  EXPECT_EQ(cli.naks_received, 1u);
  EXPECT_EQ(cli.resends, 1u);
  EXPECT_EQ(hub.hits, 0u);

  // The resend re-installed ssum (evicting iput), so the next send hits.
  auto hot = SendAndRun("ssum", {0}, usr);
  ASSERT_TRUE(hot.ok()) << hot.status();
  EXPECT_TRUE(hot->by_handle);
  EXPECT_EQ(hot->return_value, expect);
  EXPECT_EQ(receiver.jam_cache_stats().hits, 1u);
  EXPECT_LE(receiver.JamCacheSize(), 1u);
}

TEST_F(JamCacheTest, CapacityOneThrashStaysCorrect) {
  SetUpTestbed(Options(/*capacity=*/1));
  Runtime& receiver = testbed_->runtime(1);
  std::uint64_t expect = 0;
  const std::vector<std::uint8_t> usr = SumPayload(&expect);

  // Alternating jams through a 1-entry cache: every re-invoke of the
  // displaced jam misses and resends, and every result must stay right.
  for (int round = 0; round < 6; ++round) {
    auto sum = SendAndRun("ssum", {0}, usr);
    ASSERT_TRUE(sum.ok()) << sum.status();
    EXPECT_EQ(sum->return_value, expect) << "round " << round;
    auto put = SendAndRun("iput", {1000 + static_cast<std::uint64_t>(round)},
                          usr);
    ASSERT_TRUE(put.ok()) << put.status();
    EXPECT_NE(put->return_value, static_cast<std::uint64_t>(-1))
        << "round " << round;
  }
  EXPECT_EQ(receiver.PeekU64("sum_cursor").value(), 6u);

  const JamCacheStats& hub = receiver.jam_cache_stats();
  const JamCacheStats& cli = testbed_->runtime(0).jam_cache_stats();
  EXPECT_GT(hub.evictions, 0u);
  EXPECT_GT(hub.misses, 0u);
  EXPECT_EQ(hub.misses, hub.naks_sent);
  EXPECT_EQ(cli.naks_received, hub.naks_sent);
  EXPECT_EQ(cli.resends, cli.naks_received);
  EXPECT_EQ(hub.hits + hub.misses, cli.by_handle_sends);
  EXPECT_LE(receiver.JamCacheSize(), 1u);
  EXPECT_EQ(receiver.JamCacheSize(),
            hub.installs - hub.evictions - hub.invalidations);
}

// Two builds of the same element name with different bodies: the reload
// path must guarantee the stale cached image never executes again.
StatusOr<pkg::Package> TagPackage(long addend) {
  pkg::PackageBuilder builder;
  const std::string source =
      "long jam_tag(long* args, char* usr, long usr_bytes) {\n"
      "  return args[0] + " + std::to_string(addend) + ";\n"
      "}\n";
  TC_RETURN_IF_ERROR(builder.AddSourceFile("jam_tag.amc", source));
  return builder.Build("tagpkg");
}

TEST_F(JamCacheTest, ReloadAndResyncInvalidateStaleImage) {
  testbed_ = std::make_unique<Testbed>(Options());
  auto v1 = TagPackage(100);
  ASSERT_TRUE(v1.ok()) << v1.status();
  ASSERT_TRUE(testbed_->LoadPackage(*v1).ok());
  Runtime& sender = testbed_->runtime(0);
  Runtime& receiver = testbed_->runtime(1);

  // Warm the cache: install, then a by-handle hit.
  auto cold = SendAndRun("tag", {42}, {});
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_EQ(cold->return_value, 142u);
  auto hot = SendAndRun("tag", {42}, {});
  ASSERT_TRUE(hot.ok()) << hot.status();
  EXPECT_TRUE(hot->by_handle);
  EXPECT_EQ(hot->return_value, 142u);
  EXPECT_EQ(receiver.JamCacheSize(), 1u);

  // Hot-reload v2 on both hosts and re-sync. The re-sync is the cache's
  // invalidation point: every cached image is flushed and every armed
  // peer handle forgotten.
  auto v2 = TagPackage(200);
  ASSERT_TRUE(v2.ok()) << v2.status();
  ASSERT_TRUE(sender.LoadPackage(*v2, /*allow_reload=*/true).ok());
  ASSERT_TRUE(receiver.LoadPackage(*v2, /*allow_reload=*/true).ok());
  ASSERT_TRUE(testbed_->fabric().SyncNamespaces().ok());
  EXPECT_EQ(receiver.JamCacheSize(), 0u);
  EXPECT_GT(receiver.jam_cache_stats().invalidations, 0u);
  EXPECT_FALSE(sender.PeerHasJamHandle(kDefaultPeer, "tag"));

  // Post-reload sends must observe v2 — the stale image never runs.
  auto fresh = SendAndRun("tag", {42}, {});
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  EXPECT_FALSE(last_receipt_.by_handle);  // handles were forgotten
  EXPECT_EQ(fresh->return_value, 242u);
  auto fresh_hot = SendAndRun("tag", {42}, {});
  ASSERT_TRUE(fresh_hot.ok()) << fresh_hot.status();
  EXPECT_TRUE(fresh_hot->by_handle);
  EXPECT_EQ(fresh_hot->return_value, 242u);
}

TEST_F(JamCacheTest, HitPathUnderHardenedSecurityModes) {
  // All three hardening modes on: the cached image was verified at
  // install, its GOTP equals the sealed receiver-built table, and its
  // pages never intersect the mailbox — hits skip the per-invoke checks
  // yet produce identical results.
  TestbedOptions options = Options();
  SecurityPolicy policy;
  policy.verify_injected_code = true;
  policy.receiver_installs_got = true;
  policy.split_code_data_pages = true;
  options.WithSecurity(policy);
  SetUpTestbed(options);
  Runtime& receiver = testbed_->runtime(1);
  std::uint64_t expect = 0;
  const std::vector<std::uint8_t> usr = SumPayload(&expect);

  auto cold = SendAndRun("ssum", {0}, usr);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_EQ(cold->return_value, expect);
  auto hot = SendAndRun("ssum", {0}, usr);
  ASSERT_TRUE(hot.ok()) << hot.status();
  EXPECT_TRUE(hot->by_handle);
  EXPECT_EQ(hot->return_value, expect);
  EXPECT_EQ(receiver.jam_cache_stats().hits, 1u);
  EXPECT_EQ(receiver.stats().security_rejections, 0u);
  // The hardened cold path saves more per hit, and the ledger says so.
  EXPECT_GT(receiver.jam_cache_stats().link_cycles_saved, 0u);
}

TEST_F(JamCacheTest, SecurityModeGridKeepsCachedPathExact) {
  // The full security-mode × cache grid: under every policy tier the
  // by-handle image must behave exactly like the full-body frame —
  // verify-on-install (Hardened) and verify-on-every-invoke
  // (verify_cached_invokes) change the cost, never the result.
  struct Mode {
    const char* name;
    SecurityPolicy policy;
  };
  std::vector<Mode> modes;
  modes.push_back({"paper-default", SecurityPolicy::PaperDefault()});
  modes.push_back({"hardened", SecurityPolicy::Hardened()});
  {
    SecurityPolicy paranoid = SecurityPolicy::Hardened();
    paranoid.verify_cached_invokes = true;
    modes.push_back({"hardened+verify-cached", paranoid});
  }

  for (const Mode& mode : modes) {
    TestbedOptions options = Options();
    options.WithSecurity(mode.policy);
    SetUpTestbed(options);
    Runtime& receiver = testbed_->runtime(1);
    std::uint64_t expect = 0;
    const std::vector<std::uint8_t> usr = SumPayload(&expect);

    auto cold = SendAndRun("ssum", {0}, usr);
    ASSERT_TRUE(cold.ok()) << mode.name << ": " << cold.status();
    EXPECT_FALSE(cold->by_handle) << mode.name;
    EXPECT_EQ(cold->return_value, expect) << mode.name;
    for (int hit = 0; hit < 3; ++hit) {
      auto hot = SendAndRun("ssum", {0}, usr);
      ASSERT_TRUE(hot.ok()) << mode.name << ": " << hot.status();
      EXPECT_TRUE(hot->by_handle) << mode.name << " hit " << hit;
      EXPECT_EQ(hot->return_value, expect) << mode.name << " hit " << hit;
    }
    EXPECT_EQ(receiver.jam_cache_stats().hits, 3u) << mode.name;
    EXPECT_EQ(receiver.jam_cache_stats().misses, 0u) << mode.name;
    EXPECT_EQ(receiver.stats().security_rejections, 0u) << mode.name;
    EXPECT_EQ(receiver.PeekU64("sum_results", 1).value(), expect)
        << mode.name;
  }
}

TEST_F(JamCacheTest, VerifyCachedInvokesChargesEveryHit) {
  // verify_cached_invokes trades hit latency for paranoia: identical
  // deterministic testbeds, identical send sequences — the only delta is
  // the knob, so the hit's delivered->completed latency must grow.
  const auto hot_latency = [this](bool verify_hits) -> PicoTime {
    TestbedOptions options = Options();
    SecurityPolicy policy = SecurityPolicy::Hardened();
    policy.verify_cached_invokes = verify_hits;
    options.WithSecurity(policy);
    SetUpTestbed(options);
    std::uint64_t expect = 0;
    const std::vector<std::uint8_t> usr = SumPayload(&expect);
    auto cold = SendAndRun("ssum", {0}, usr);
    EXPECT_TRUE(cold.ok()) << cold.status();
    auto hot = SendAndRun("ssum", {0}, usr);
    EXPECT_TRUE(hot.ok()) << hot.status();
    if (!hot.ok() || !hot->by_handle) return 0;
    return hot->completed_at - hot->delivered_at;
  };
  const PicoTime trusting = hot_latency(false);
  const PicoTime paranoid = hot_latency(true);
  ASSERT_GT(trusting, 0u);
  EXPECT_GT(paranoid, trusting);
}

TEST_F(JamCacheTest, EvictionResendReverifiesUnderHardenedPolicy) {
  // NAK/resend × hardening: after an eviction the full-body resend walks
  // the entire hardened install path again — wire-code verification,
  // receiver GOT, W^X, and a fresh verified install — and the ledger
  // accounts every step.
  TestbedOptions options = Options(/*capacity=*/1);
  SecurityPolicy policy = SecurityPolicy::Hardened();
  policy.verify_cached_invokes = true;
  options.WithSecurity(policy);
  SetUpTestbed(options);
  Runtime& sender = testbed_->runtime(0);
  Runtime& receiver = testbed_->runtime(1);
  std::uint64_t expect = 0;
  const std::vector<std::uint8_t> usr = SumPayload(&expect);

  ASSERT_TRUE(SendAndRun("ssum", {0}, usr).ok());   // verified install
  ASSERT_TRUE(SendAndRun("iput", {77}, usr).ok());  // evicts ssum
  EXPECT_EQ(receiver.jam_cache_stats().evictions, 1u);

  // By-handle miss -> NAK -> full-body resend, executing under the full
  // policy (the resend is a cold frame: wire verify + install verify).
  auto resent = SendAndRun("ssum", {0}, usr);
  ASSERT_TRUE(resent.ok()) << resent.status();
  EXPECT_TRUE(last_receipt_.by_handle);
  EXPECT_FALSE(resent->by_handle);
  EXPECT_EQ(resent->return_value, expect);

  const JamCacheStats& hub = receiver.jam_cache_stats();
  EXPECT_EQ(hub.misses, 1u);
  EXPECT_EQ(hub.naks_sent, 1u);
  EXPECT_EQ(sender.jam_cache_stats().resends, 1u);
  EXPECT_EQ(hub.installs, 3u);  // ssum, iput, ssum again — each verified
  EXPECT_EQ(receiver.stats().security_rejections, 0u);

  // And the re-installed image still hits — re-verified per invoke.
  auto hot = SendAndRun("ssum", {0}, usr);
  ASSERT_TRUE(hot.ok()) << hot.status();
  EXPECT_TRUE(hot->by_handle);
  EXPECT_EQ(hot->return_value, expect);
  EXPECT_EQ(receiver.jam_cache_stats().hits, 1u);
}

TEST_F(JamCacheTest, NoExecuteFramesNeverGoByHandle) {
  SetUpTestbed();
  Runtime& sender = testbed_->runtime(0);
  std::optional<ReceivedMessage> done;
  testbed_->runtime(1).SetOnExecuted(
      [&](const ReceivedMessage& msg) { done = msg; });
  for (int i = 0; i < 2; ++i) {
    done.reset();
    const std::vector<std::uint64_t> args = {0};
    auto receipt =
        sender.Send("ssum", Invoke::kInjected, args, {},
                    static_cast<std::uint16_t>(kFlagNoExecute));
    ASSERT_TRUE(receipt.ok()) << receipt.status();
    // Delivery-only frames must pay full freight: the receiver skips
    // invocation entirely, so a by-handle miss could never be serviced.
    EXPECT_FALSE(receipt->by_handle);
    testbed_->RunUntil([&] { return done.has_value(); });
    ASSERT_TRUE(done.has_value());
    EXPECT_FALSE(done->executed);
  }
  testbed_->runtime(1).SetOnExecuted(nullptr);
  EXPECT_EQ(sender.jam_cache_stats().by_handle_sends, 0u);
}

// --------------------------------------------- pool scheduler integration

/// Exactly-once and ledger reconciliation with the cache armed on a
/// stealing pool, including mid-drain hotplug — the cache's NAK/resend
/// traffic must not break a single scheduler invariant.
TEST(JamCachePoolTest, ExactlyOnceUnderStealAndQuiesce) {
  auto package = bench::BuildBenchPackage();
  ASSERT_TRUE(package.ok()) << package.status();

  for (const std::uint64_t seed : {1ull, 42ull, 1337ull}) {
    pooltest::PoolTopology topo;
    topo.spokes = 4;
    topo.receiver_cores = 4;
    topo.banks = 2;
    topo.mailboxes_per_bank = 4;
    topo.messages_per_spoke = {96, 24, 24, 48};
    topo.steal.enabled = true;
    topo.steal.threshold = 1;
    topo.steal.hysteresis = 1;
    topo.jam_cache = CacheOn(2);  // small: force eviction/NAK traffic
    topo.quiesce = {{1, 40, 160}, {2, 90, 0}};
    topo.seed = seed;
    const pooltest::PoolRunResult r = pooltest::RunPoolIncast(topo,
                                                              *package);
    pooltest::ExpectPoolInvariants(topo, r);
    EXPECT_GT(r.spoke_by_handle_sends, 0u) << topo.Describe();
    EXPECT_GT(r.hub_jam.hits, 0u) << topo.Describe();
  }
}

}  // namespace
}  // namespace twochains::core
