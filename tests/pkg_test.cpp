// Tests for the package builder: canonical naming, dual-variant jam builds
// (local + GOT-rewritten injected), ried libraries, header generation, and
// package serialization round trips.
#include <gtest/gtest.h>

#include "jelf/got_rewriter.hpp"
#include "pkg/package.hpp"

namespace twochains::pkg {
namespace {

constexpr const char* kJamAppend = R"(
extern long store_next(long v);
long jam_append(long* args, char* usr, long usr_bytes) {
  return store_next(args[0]);
}
)";

constexpr const char* kRiedArray = R"(
long values[64];
long cursor = 0;
long ried_array(void) { return 0; }
long ried_array_init(void) { cursor = 0; return 0; }
long store_next(long v) {
  values[cursor % 64] = v;
  cursor = cursor + 1;
  return cursor;
}
)";

TEST(PackageBuilderTest, CanonicalNamingEnforced) {
  PackageBuilder builder;
  EXPECT_TRUE(builder.AddSourceFile("jam_append.amc", kJamAppend).ok());
  EXPECT_TRUE(builder.AddSourceFile("ried_array.rdc", kRiedArray).ok());
  EXPECT_EQ(builder.AddSourceFile("append.amc", "").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(builder.AddSourceFile("jam_x.rdc", "").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(builder.AddSourceFile("jam_append.amc", kJamAppend).code(),
            StatusCode::kAlreadyExists);
}

TEST(PackageBuilderTest, EmptyBuildRejected) {
  PackageBuilder builder;
  EXPECT_EQ(builder.Build("p").status().code(),
            StatusCode::kFailedPrecondition);
}

class BuiltPackageTest : public ::testing::Test {
 protected:
  BuiltPackageTest() {
    PackageBuilder builder;
    EXPECT_TRUE(builder.AddSourceFile("ried_array.rdc", kRiedArray).ok());
    EXPECT_TRUE(builder.AddSourceFile("jam_append.amc", kJamAppend).ok());
    auto pkg = builder.Build("demo");
    EXPECT_TRUE(pkg.ok()) << pkg.status();
    pkg_ = std::move(pkg).value();
  }
  Package pkg_;
};

TEST_F(BuiltPackageTest, ElementsAndIds) {
  ASSERT_EQ(pkg_.elements.size(), 2u);
  const auto* jam = pkg_.Find(ElementKind::kJam, "append");
  const auto* ried = pkg_.Find(ElementKind::kRied, "array");
  ASSERT_NE(jam, nullptr);
  ASSERT_NE(ried, nullptr);
  EXPECT_EQ(jam->entry_symbol, "jam_append");
  EXPECT_EQ(ried->entry_symbol, "ried_array");
  EXPECT_NE(jam->element_id, ried->element_id);
  EXPECT_EQ(pkg_.FindById(jam->element_id), jam);
  EXPECT_EQ(pkg_.Find(ElementKind::kJam, "array"), nullptr);
}

TEST_F(BuiltPackageTest, InjectedImageIsRewrittenAndCompact) {
  const auto* jam = pkg_.Find(ElementKind::kJam, "append");
  ASSERT_NE(jam, nullptr);
  // The injected image must contain no ldg.fix (fully rewritten) and no
  // page alignment bloat.
  EXPECT_TRUE(jelf::IsFullyRewritten(jam->injected_image));
  EXPECT_FALSE(jam->injected_image.page_aligned);
  EXPECT_TRUE(jam->injected_image.exports.contains("jam_append"));
  // The jam references the ried's store_next through the GOT.
  ASSERT_EQ(jam->injected_image.got_symbols.size(), 1u);
  EXPECT_EQ(jam->injected_image.got_symbols[0], "store_next");
}

TEST_F(BuiltPackageTest, LocalLibraryContainsUnmodifiedJams) {
  EXPECT_FALSE(pkg_.local_library.text.empty());
  EXPECT_TRUE(pkg_.local_library.exports.contains("jam_append"));
  // Unmodified: still uses fixed GOT addressing.
  EXPECT_FALSE(jelf::IsFullyRewritten(pkg_.local_library));
  EXPECT_TRUE(pkg_.local_library.page_aligned);
}

TEST_F(BuiltPackageTest, RiedImagePageAligned) {
  const auto* ried = pkg_.Find(ElementKind::kRied, "array");
  ASSERT_NE(ried, nullptr);
  EXPECT_TRUE(ried->ried_image.page_aligned);
  EXPECT_TRUE(ried->ried_image.exports.contains("store_next"));
  EXPECT_TRUE(ried->ried_image.exports.contains("ried_array_init"));
}

TEST_F(BuiltPackageTest, GeneratedHeaderListsElements) {
  const std::string header = pkg_.GeneratedHeader();
  EXPECT_NE(header.find("TC_PACKAGE_demo"), std::string::npos);
  EXPECT_NE(header.find("TC_ELEM_demo_append"), std::string::npos);
  EXPECT_NE(header.find("TC_ELEM_demo_array"), std::string::npos);
  EXPECT_NE(header.find("jam_append"), std::string::npos);
}

TEST_F(BuiltPackageTest, SerializationRoundTrip) {
  const auto bytes = SerializePackage(pkg_);
  auto parsed = ParsePackage(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->name, pkg_.name);
  ASSERT_EQ(parsed->elements.size(), pkg_.elements.size());
  for (std::size_t i = 0; i < pkg_.elements.size(); ++i) {
    EXPECT_EQ(parsed->elements[i].name, pkg_.elements[i].name);
    EXPECT_EQ(parsed->elements[i].entry_symbol,
              pkg_.elements[i].entry_symbol);
    EXPECT_EQ(parsed->elements[i].injected_image.text,
              pkg_.elements[i].injected_image.text);
  }
  EXPECT_EQ(parsed->local_library.text, pkg_.local_library.text);
}

TEST_F(BuiltPackageTest, CorruptedBlobDetected) {
  auto bytes = SerializePackage(pkg_);
  bytes[1] ^= 0xFF;
  EXPECT_FALSE(ParsePackage(bytes).ok());
}

TEST_F(BuiltPackageTest, InstallRegistry) {
  InstallRegistry registry;
  ASSERT_TRUE(registry.Install(pkg_).ok());
  EXPECT_EQ(registry.Install(pkg_).code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(registry.Contains("demo"));
  EXPECT_FALSE(registry.Contains("nope"));
  auto loaded = registry.Load("demo");
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->name, "demo");
  EXPECT_EQ(registry.Load("nope").status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(registry.Blob("demo").ok());
}

TEST(PackageBuilderErrorsTest, MissingEntrySymbol) {
  PackageBuilder builder;
  // File claims to define jam_foo but defines jam_bar.
  ASSERT_TRUE(builder
                  .AddSourceFile("jam_foo.amc",
                                 "long jam_bar(long* a, char* u, long n) "
                                 "{ return 0; }")
                  .ok());
  auto pkg = builder.Build("p");
  ASSERT_FALSE(pkg.ok());
  EXPECT_EQ(pkg.status().code(), StatusCode::kNotFound);
}

TEST(PackageBuilderErrorsTest, JamWithWritableGlobalRejected) {
  PackageBuilder builder;
  // Jams are stateless mobile code: writable globals must be refused.
  ASSERT_TRUE(builder
                  .AddSourceFile("jam_stateful.amc",
                                 "long counter = 0;\n"
                                 "long jam_stateful(long* a, char* u, long n)"
                                 " { counter += 1; return counter; }")
                  .ok());
  auto pkg = builder.Build("p");
  ASSERT_FALSE(pkg.ok());
  EXPECT_EQ(pkg.status().code(), StatusCode::kInvalidArgument);
}

TEST(PackageBuilderErrorsTest, CompileErrorPropagates) {
  PackageBuilder builder;
  ASSERT_TRUE(builder.AddSourceFile("jam_bad.amc", "long jam_bad( {").ok());
  EXPECT_FALSE(builder.Build("p").ok());
}

}  // namespace
}  // namespace twochains::pkg
