// Tests for amcc, the AMC (mini-C) compiler: each test compiles a program,
// links it, loads it into a simulated host, executes it in the interpreter,
// and checks the functional result — an end-to-end differential test of the
// whole toolchain the paper's build system corresponds to.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "amcc/compiler.hpp"
#include "cache/hierarchy.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "jamvm/assembler.hpp"
#include "jamvm/disassembler.hpp"
#include "jamvm/interpreter.hpp"
#include "jelf/linker.hpp"
#include "jelf/loader.hpp"
#include "listing_util.hpp"
#include "mem/host_memory.hpp"

namespace twochains::amcc {
namespace {

class AmccTest : public ::testing::Test {
 protected:
  AmccTest() : mem_(0, MiB(32)), caches_(CacheConfig()) {
    EXPECT_TRUE(vm::RegisterStandardNatives(natives_, {&printed_}).ok());
    for (const char* name :
         {"tc_memcpy", "tc_memset", "tc_print_str", "tc_print_u64",
          "tc_hash64"}) {
      auto idx = natives_.IndexOf(name);
      EXPECT_TRUE(idx.ok());
      EXPECT_TRUE(ns_.Define(name, vm::MakeNativeHandle(*idx)).ok());
    }
  }

  static cache::HierarchyConfig CacheConfig() {
    cache::HierarchyConfig cfg;
    cfg.l1 = {"L1", KiB(16), 4, 2};
    cfg.l2 = {"L2", KiB(64), 8, 12};
    cfg.l3 = {"L3", KiB(128), 16, 30};
    cfg.llc = {"LLC", KiB(256), 16, 55};
    return cfg;
  }

  /// Compile + link + load. Returns the loaded library.
  StatusOr<jelf::LoadedLibrary> Build(const std::string& source,
                                      const std::string& name = "test.amc") {
    TC_ASSIGN_OR_RETURN(const CompileResult compiled, Compile(source, name));
    jelf::LinkOptions link_opts;
    link_opts.image_name = name;
    TC_ASSIGN_OR_RETURN(
        const jelf::LinkedImage image,
        jelf::Link(std::vector<vm::ObjectCode>{compiled.object}, link_opts));
    jelf::LoadOptions load_opts;
    // Tests build many units exporting the same "f" into one namespace.
    load_opts.allow_export_override = true;
    return jelf::LoadLibrary(mem_, image, ns_, load_opts);
  }

  /// Runs an exported function; EXPECTs success.
  std::uint64_t Call(const jelf::LoadedLibrary& lib, const std::string& fn,
                     std::vector<std::uint64_t> args = {}) {
    auto stack = mem_.Allocate(KiB(64), 16, mem::Perm::kRW, "stack");
    EXPECT_TRUE(stack.ok());
    vm::Interpreter interp(mem_, caches_, 0, &natives_);
    EXPECT_TRUE(lib.exports.contains(fn)) << "no export " << fn;
    const auto r = interp.Execute(lib.exports.at(fn), args, *stack + KiB(64));
    EXPECT_TRUE(r.status.ok()) << r.status;
    return r.return_value;
  }

  /// One-shot: build + call.
  std::uint64_t Run(const std::string& source, const std::string& fn,
                    std::vector<std::uint64_t> args = {}) {
    auto lib = Build(source);
    EXPECT_TRUE(lib.ok()) << lib.status();
    if (!lib.ok()) return ~0ull;
    return Call(*lib, fn, std::move(args));
  }

  mem::HostMemory mem_;
  cache::CacheHierarchy caches_;
  jelf::HostNamespace ns_;
  vm::NativeTable natives_;
  std::string printed_;
};

// ----------------------------------------------------------- basics

TEST_F(AmccTest, ReturnLiteral) {
  EXPECT_EQ(Run("long f() { return 42; }", "f"), 42u);
}

TEST_F(AmccTest, ArithmeticPrecedence) {
  EXPECT_EQ(Run("long f() { return 2 + 3 * 4; }", "f"), 14u);
  EXPECT_EQ(Run("long f() { return (2 + 3) * 4; }", "f"), 20u);
  EXPECT_EQ(Run("long f() { return 20 / 4 - 1; }", "f"), 4u);
  EXPECT_EQ(Run("long f() { return 17 % 5; }", "f"), 2u);
}

TEST_F(AmccTest, UnaryOperators) {
  EXPECT_EQ(static_cast<std::int64_t>(Run("long f() { return -7; }", "f")), -7);
  EXPECT_EQ(Run("long f() { return ~0 & 0xFF; }", "f"), 0xFFu);
  EXPECT_EQ(Run("long f() { return !0; }", "f"), 1u);
  EXPECT_EQ(Run("long f() { return !5; }", "f"), 0u);
}

TEST_F(AmccTest, ParametersAndCalls) {
  EXPECT_EQ(Run(R"(
    long add(long a, long b) { return a + b; }
    long f(long x) { return add(x, add(1, 2)); }
  )", "f", {10}), 13u);
}

TEST_F(AmccTest, EightParameters) {
  EXPECT_EQ(Run(R"(
    long sum8(long a, long b, long c, long d,
              long e, long f, long g, long h) {
      return a + b + c + d + e + f + g + h;
    }
    long f() { return sum8(1, 2, 3, 4, 5, 6, 7, 8); }
  )", "f"), 36u);
}

TEST_F(AmccTest, Recursion) {
  EXPECT_EQ(Run(R"(
    long fib(long n) {
      if (n < 2) return n;
      return fib(n - 1) + fib(n - 2);
    }
  )", "fib", {15}), 610u);
}

TEST_F(AmccTest, Comparisons) {
  const char* src = "long f(long a, long b) { return (a < b) * 8 + (a <= b) * 4 + (a > b) * 2 + (a >= b); }";
  EXPECT_EQ(Run(src, "f", {1, 2}), 12u);                 // < and <=
  EXPECT_EQ(Run(src, "f", {2, 2}), 5u);                  // <= and >=
  EXPECT_EQ(Run(src, "f", {3, 2}), 3u);                  // > and >=
}

TEST_F(AmccTest, SignedVsUnsignedComparison) {
  EXPECT_EQ(Run("long f() { long a = -1; long b = 1; return a < b; }", "f"),
            1u);
  EXPECT_EQ(Run(R"(
    long f() {
      unsigned long a = -1;   /* 0xFFFF..F */
      unsigned long b = 1;
      return a < b;
    }
  )", "f"), 0u);
}

TEST_F(AmccTest, ControlFlow) {
  EXPECT_EQ(Run(R"(
    long f(long n) {
      long total = 0;
      for (long i = 1; i <= n; ++i) {
        if (i % 2 == 0) continue;
        if (i > 20) break;
        total += i;
      }
      return total;
    }
  )", "f", {100}), 100u);  // 1+3+5+...+19
}

TEST_F(AmccTest, WhileLoop) {
  EXPECT_EQ(Run(R"(
    long f(long n) {
      long r = 1;
      while (n > 1) { r = r * n; n = n - 1; }
      return r;
    }
  )", "f", {6}), 720u);
}

TEST_F(AmccTest, NestedLoopsWithBreak) {
  EXPECT_EQ(Run(R"(
    long f() {
      long count = 0;
      for (long i = 0; i < 10; ++i) {
        for (long j = 0; j < 10; ++j) {
          if (j == 3) break;
          ++count;
        }
      }
      return count;
    }
  )", "f"), 30u);
}

TEST_F(AmccTest, CompoundAssignmentOperators) {
  EXPECT_EQ(Run(R"(
    long f() {
      long x = 10;
      x += 5; x -= 3; x *= 4; x /= 2; x %= 13;
      x <<= 2; x >>= 1; x |= 8; x &= 14; x ^= 1;
      return x;
    }
  )", "f"), ((((((10 + 5 - 3) * 4 / 2 % 13) << 2) >> 1) | 8) & 14) ^ 1u);
}

TEST_F(AmccTest, IncrementDecrement) {
  EXPECT_EQ(Run(R"(
    long f() {
      long x = 5;
      long a = x++;   /* a=5 x=6 */
      long b = ++x;   /* b=7 x=7 */
      long c = x--;   /* c=7 x=6 */
      long d = --x;   /* d=5 x=5 */
      return a * 1000 + b * 100 + c * 10 + d;
    }
  )", "f"), 5775u);
}

TEST_F(AmccTest, ShortCircuitHasNoSideEffectWhenSkipped) {
  EXPECT_EQ(Run(R"(
    long g_calls = 0;
    long bump() { g_calls += 1; return 1; }
    long f() {
      long r1 = 0 && bump();   /* bump not called */
      long r2 = 1 || bump();   /* bump not called */
      long r3 = 1 && bump();   /* called */
      return g_calls * 100 + r1 * 10 + r2 + r3;
    }
  )", "f"), 102u);
}

// ----------------------------------------------------------- pointers

TEST_F(AmccTest, PointerDerefAndAddressOf) {
  EXPECT_EQ(Run(R"(
    long f() {
      long x = 11;
      long* p = &x;
      *p = *p + 31;
      return x;
    }
  )", "f"), 42u);
}

TEST_F(AmccTest, PointerArithmeticScales) {
  EXPECT_EQ(Run(R"(
    long f() {
      long buf[4];
      long* p = buf;
      *p = 1;
      *(p + 1) = 2;
      *(p + 3) = 4;
      return buf[0] + buf[1] + buf[3];
    }
  )", "f"), 7u);
}

TEST_F(AmccTest, ArrayIndexingLocal) {
  EXPECT_EQ(Run(R"(
    long f(long n) {
      long squares[16];
      for (long i = 0; i < n; ++i) squares[i] = i * i;
      long total = 0;
      for (long i = 0; i < n; ++i) total += squares[i];
      return total;
    }
  )", "f", {5}), 30u);  // 0+1+4+9+16
}

TEST_F(AmccTest, PointerDifference) {
  EXPECT_EQ(Run(R"(
    long f() {
      long buf[8];
      long* a = &buf[1];
      long* b = &buf[6];
      return b - a;
    }
  )", "f"), 5u);
}

TEST_F(AmccTest, CharPointerWalk) {
  EXPECT_EQ(Run(R"(
    const char* msg = "abc";
    long f() {
      const char* p = msg;
      long total = 0;
      while (*p) { total += *p; ++p; }
      return total;
    }
  )", "f"), static_cast<std::uint64_t>('a' + 'b' + 'c'));
}

TEST_F(AmccTest, DoublePointer) {
  EXPECT_EQ(Run(R"(
    long f() {
      long x = 9;
      long* p = &x;
      long** pp = &p;
      **pp = 21;
      return x;
    }
  )", "f"), 21u);
}

// ----------------------------------------------------------- globals

TEST_F(AmccTest, GlobalScalarReadWrite) {
  EXPECT_EQ(Run(R"(
    long counter = 100;
    long f() { counter += 1; return counter; }
  )", "f"), 101u);
}

TEST_F(AmccTest, GlobalArrayWithInitializer) {
  EXPECT_EQ(Run(R"(
    long table[4] = {10, 20, 30};
    long f() { return table[0] + table[1] + table[2] + table[3]; }
  )", "f"), 60u);  // last element zero-filled
}

TEST_F(AmccTest, ConstGlobalGoesToRodata) {
  auto compiled = Compile("const long magic = 77; long f() { return magic; }",
                          "ro.amc");
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  EXPECT_FALSE(compiled->object.rodata.empty());
  EXPECT_TRUE(compiled->object.data.empty());
  EXPECT_EQ(Run("const long magic = 77; long f() { return magic; }", "f"),
            77u);
}

TEST_F(AmccTest, StaticGlobalNotExported) {
  auto compiled =
      Compile("static long hidden = 1; long f() { return hidden; }", "s.amc");
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  const auto* sym = compiled->object.FindSymbol("hidden");
  ASSERT_NE(sym, nullptr);
  EXPECT_FALSE(sym->global);
}

// ------------------------------------------------------- types / widths

TEST_F(AmccTest, NarrowTypesStoreAndSignExtend) {
  EXPECT_EQ(Run(R"(
    long f() {
      char c = 200;        /* truncates to -56 as signed char */
      return c;
    }
  )", "f"), static_cast<std::uint64_t>(static_cast<std::int64_t>(
                static_cast<std::int8_t>(200))));
  EXPECT_EQ(Run(R"(
    long f() {
      unsigned char c = 200;
      return c;
    }
  )", "f"), 200u);
}

TEST_F(AmccTest, IntTruncationThroughCast) {
  EXPECT_EQ(Run("long f() { return (int)0x1FFFFFFFF; }", "f"),
            static_cast<std::uint64_t>(
                static_cast<std::int64_t>(static_cast<std::int32_t>(0x1FFFFFFFFull))));
  EXPECT_EQ(Run("long f() { return (unsigned int)0x1FFFFFFFF; }", "f"),
            0xFFFFFFFFull);
}

TEST_F(AmccTest, SizeofTypesAndExprs) {
  EXPECT_EQ(Run("long f() { return sizeof(char) + sizeof(short) + "
                "sizeof(int) + sizeof(long) + sizeof(long*); }", "f"),
            1u + 2 + 4 + 8 + 8);
  EXPECT_EQ(Run("long f() { int x = 0; return sizeof(x); }", "f"), 4u);
}

TEST_F(AmccTest, ShortArrayElementAccess) {
  EXPECT_EQ(Run(R"(
    long f() {
      short buf[4];
      buf[0] = 1000;
      buf[1] = -1000;
      return buf[0] + buf[1];
    }
  )", "f"), 0u);
}

TEST_F(AmccTest, UnsignedDivision) {
  EXPECT_EQ(Run(R"(
    long f() {
      unsigned long big = -8;   /* 0xFFF...F8 */
      return big / 2 == 0x7FFFFFFFFFFFFFFC;
    }
  )", "f"), 1u);
}

// ----------------------------------------------------- extern / natives

TEST_F(AmccTest, ExternNativeCallThroughGot) {
  EXPECT_EQ(Run(R"(
    extern unsigned long tc_hash64(unsigned long x);
    long f(long x) { return tc_hash64(x) != x; }
  )", "f", {5}), 1u);
}

TEST_F(AmccTest, PrintNativesCollectOutput) {
  Run(R"(
    extern long tc_print_str(const char* s);
    extern long tc_print_u64(unsigned long v);
    long f() {
      tc_print_str("count=");
      tc_print_u64(42);
      return 0;
    }
  )", "f");
  EXPECT_EQ(printed_, "count=42");
}

TEST_F(AmccTest, CrossLibraryCallThroughGot) {
  auto provider = Build(R"(
    long twice(long x) { return x * 2; }
  )", "provider.amc");
  ASSERT_TRUE(provider.ok()) << provider.status();
  auto consumer = Build(R"(
    extern long twice(long x);
    long f(long x) { return twice(x) + 1; }
  )", "consumer.amc");
  ASSERT_TRUE(consumer.ok()) << consumer.status();
  EXPECT_EQ(Call(*consumer, "f", {20}), 41u);
}

TEST_F(AmccTest, MemcpyNativeMovesBytes) {
  EXPECT_EQ(Run(R"(
    extern void* tc_memcpy(void* dst, const void* src, unsigned long n);
    long f() {
      long src[4];
      long dst[4];
      for (long i = 0; i < 4; ++i) { src[i] = i + 1; dst[i] = 0; }
      tc_memcpy(dst, src, 32);
      return dst[0] + dst[1] + dst[2] + dst[3];
    }
  )", "f"), 10u);
}

// -------------------------------------------------------------- errors

TEST_F(AmccTest, UndeclaredIdentifierRejected) {
  EXPECT_FALSE(Compile("long f() { return nope; }", "e.amc").ok());
}

TEST_F(AmccTest, WrongArgumentCountRejected) {
  EXPECT_FALSE(Compile(R"(
    long g(long a, long b) { return a + b; }
    long f() { return g(1); }
  )", "e.amc").ok());
}

TEST_F(AmccTest, CallingVariableRejected) {
  EXPECT_FALSE(Compile("long f() { long x = 1; return x(); }", "e.amc").ok());
}

TEST_F(AmccTest, BreakOutsideLoopRejected) {
  EXPECT_FALSE(Compile("long f() { break; return 0; }", "e.amc").ok());
}

TEST_F(AmccTest, AssignToRvalueRejected) {
  EXPECT_FALSE(Compile("long f() { 3 = 4; return 0; }", "e.amc").ok());
}

TEST_F(AmccTest, RedefinitionRejected) {
  EXPECT_FALSE(Compile("long f() { return 0; } long f() { return 1; }",
                       "e.amc").ok());
  EXPECT_FALSE(Compile("long f() { long x = 1; long x = 2; return x; }",
                       "e.amc").ok());
}

TEST_F(AmccTest, LexerErrors) {
  EXPECT_FALSE(Compile("long f() { return `; }", "e.amc").ok());
  EXPECT_FALSE(Compile("long f() { return \"unterminated; }", "e.amc").ok());
  EXPECT_FALSE(Compile("/* open comment", "e.amc").ok());
}

TEST_F(AmccTest, ParserErrors) {
  EXPECT_FALSE(Compile("long f( { return 0; }", "e.amc").ok());
  EXPECT_FALSE(Compile("long f() { if return; }", "e.amc").ok());
  EXPECT_FALSE(Compile("long 5x = 3;", "e.amc").ok());
}

// ----------------------------------------- parameterized differential

struct ExprCase {
  const char* expr;
  std::int64_t expected;
};

class ExprDifferentialTest : public AmccTest,
                             public ::testing::WithParamInterface<ExprCase> {};

TEST_P(ExprDifferentialTest, MatchesHostEvaluation) {
  const auto& param = GetParam();
  const std::string src =
      std::string("long f() { return ") + param.expr + "; }";
  // Rebuild fixture state per case (fresh namespace) by using unique names.
  static int counter = 0;
  auto lib = Build(src, "expr" + std::to_string(counter++) + ".amc");
  ASSERT_TRUE(lib.ok()) << lib.status() << " for " << param.expr;
  EXPECT_EQ(static_cast<std::int64_t>(Call(*lib, "f")), param.expected)
      << param.expr;
}

INSTANTIATE_TEST_SUITE_P(
    Exprs, ExprDifferentialTest,
    ::testing::Values(
        ExprCase{"1 + 2 * 3 - 4 / 2", 1 + 2 * 3 - 4 / 2},
        ExprCase{"(7 ^ 3) | (12 & 10)", (7 ^ 3) | (12 & 10)},
        ExprCase{"1 << 10 >> 3", 1 << 10 >> 3},
        ExprCase{"-13 / 4", -13 / 4},
        ExprCase{"-13 % 4", -13 % 4},
        ExprCase{"5 > 3 && 2 < 1 || 7 == 7", 5 > 3 && 2 < 1 || 7 == 7},
        ExprCase{"~(1 << 4) & 0xFF", ~(1 << 4) & 0xFF},
        ExprCase{"100 % 7 * 3 + 2", 100 % 7 * 3 + 2},
        ExprCase{"(1 + 2) * (3 + 4) % 5", (1 + 2) * (3 + 4) % 5},
        ExprCase{"0x10 + 010", 0x10 + 10},  // AMC: no octal, 010 is decimal 10
        ExprCase{"'a' + 1", 'a' + 1},
        ExprCase{"!(3 < 2) + (4 != 4)", !(3 < 2) + (4 != 4)}));

// ---------------------------------------- seeded toolchain properties

/// A randomly generated expression over parameters a/b together with its
/// host-evaluated value (two's-complement 64-bit, like AMC `long`).
struct GeneratedExpr {
  std::string text;
  std::uint64_t value = 0;
};

GeneratedExpr GenExpr(Xoshiro256& rng, int depth, std::uint64_t a,
                      std::uint64_t b) {
  if (depth == 0 || rng.NextBelow(4) == 0) {
    switch (rng.NextBelow(3)) {
      case 0: return {"a", a};
      case 1: return {"b", b};
      default: {
        const std::uint64_t lit = rng.NextBelow(256);
        return {std::to_string(lit), lit};
      }
    }
  }
  const GeneratedExpr lhs = GenExpr(rng, depth - 1, a, b);
  const GeneratedExpr rhs = GenExpr(rng, depth - 1, a, b);
  // Wrapping ops only, so host-side uint64 arithmetic is the exact
  // reference for AMC's two's-complement `long`.
  const char* ops[] = {"+", "-", "*", "&", "|", "^"};
  const std::uint64_t pick = rng.NextBelow(6);
  std::uint64_t value = 0;
  switch (pick) {
    case 0: value = lhs.value + rhs.value; break;
    case 1: value = lhs.value - rhs.value; break;
    case 2: value = lhs.value * rhs.value; break;
    case 3: value = lhs.value & rhs.value; break;
    case 4: value = lhs.value | rhs.value; break;
    default: value = lhs.value ^ rhs.value; break;
  }
  return {"(" + lhs.text + " " + ops[pick] + " " + rhs.text + ")", value};
}

TEST_F(AmccTest, SeededExpressionsMatchHostEvaluation) {
  Xoshiro256 rng(0xA3CC5EED);
  for (int round = 0; round < 40; ++round) {
    const std::uint64_t a = rng.Next();
    const std::uint64_t b = rng.Next();
    const GeneratedExpr expr = GenExpr(rng, 4, a, b);
    const std::string src =
        "long f(long a, long b) { return " + expr.text + "; }";
    auto lib = Build(src, "gen" + std::to_string(round) + ".amc");
    ASSERT_TRUE(lib.ok()) << lib.status() << "\nsource: " << src;
    EXPECT_EQ(Call(*lib, "f", {a, b}), expr.value) << src;
  }
}

TEST_F(AmccTest, SeededSourcesRoundTripThroughAssemblerFixpoint) {
  // amcc -> .text bytes -> disassemble -> reassemble must reproduce the
  // exact bytes, and a second disassembly the exact listing (fixpoint):
  // the toolchain's encode/decode/print/parse paths agree on every
  // instruction the compiler can emit.
  Xoshiro256 rng(0xF1C5);
  for (int round = 0; round < 12; ++round) {
    const GeneratedExpr expr = GenExpr(rng, 3, 1, 2);
    const std::string src = "long helper(long a, long b) { return " +
                            expr.text +
                            "; }\n"
                            "long f(long a, long b) {\n"
                            "  long total = 0;\n"
                            "  for (long i = 0; i < a; ++i) {\n"
                            "    if (i % 2) total += helper(i, b);\n"
                            "    else total -= b;\n"
                            "  }\n"
                            "  return total;\n"
                            "}";
    auto compiled = Compile(src, "fix" + std::to_string(round) + ".amc");
    ASSERT_TRUE(compiled.ok()) << compiled.status();
    const auto& text = compiled->object.text;
    ASSERT_FALSE(text.empty());

    auto listing = vm::Disassemble(text);
    ASSERT_TRUE(listing.ok()) << listing.status();
    auto reassembled =
        vm::Assemble(vm::StripListingOffsets(*listing), "fix.jasm");
    ASSERT_TRUE(reassembled.ok())
        << reassembled.status() << "\nlisting:\n" << *listing;
    EXPECT_EQ(reassembled->text, text) << "round " << round;

    auto listing_again = vm::Disassemble(reassembled->text);
    ASSERT_TRUE(listing_again.ok());
    EXPECT_EQ(*listing_again, *listing) << "round " << round;
  }
}

}  // namespace
}  // namespace twochains::amcc
