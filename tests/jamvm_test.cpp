// Tests for the jam VM: ISA encode/decode round trips, the assembler, the
// disassembler, the verifier, and the cache-charged interpreter including
// the native bridge and both GOT addressing modes.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "cache/hierarchy.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "jamvm/assembler.hpp"
#include "jamvm/disassembler.hpp"
#include "jamvm/interpreter.hpp"
#include "jamvm/isa.hpp"
#include "jamvm/verifier.hpp"
#include "listing_util.hpp"
#include "mem/host_memory.hpp"

namespace twochains::vm {
namespace {

// ----------------------------------------------------------------- ISA

TEST(IsaTest, EncodeDecodeRoundTripAllOpcodes) {
  for (std::uint8_t op = 0;
       op < static_cast<std::uint8_t>(Opcode::kOpcodeCount); ++op) {
    Instr in;
    in.op = static_cast<Opcode>(op);
    in.rd = 3;
    in.rs1 = 17;
    in.rs2 = 31;
    in.imm = -123456;
    std::uint8_t buf[kInstrBytes];
    Encode(in, buf);
    const auto out = Decode(buf);
    ASSERT_TRUE(out.has_value()) << "opcode " << int(op);
    EXPECT_EQ(*out, in);
  }
}

TEST(IsaTest, DecodeRejectsBadOpcodeAndRegisters) {
  std::uint8_t buf[kInstrBytes] = {};
  buf[0] = static_cast<std::uint8_t>(Opcode::kOpcodeCount);
  EXPECT_FALSE(Decode(buf).has_value());
  buf[0] = static_cast<std::uint8_t>(Opcode::kAdd);
  buf[1] = 32;  // rd out of range
  EXPECT_FALSE(Decode(buf).has_value());
}

TEST(IsaTest, EncodeDecodeRandomizedProperty) {
  Xoshiro256 rng(99);
  for (int i = 0; i < 2000; ++i) {
    Instr in;
    in.op = static_cast<Opcode>(rng.NextBelow(
        static_cast<std::uint64_t>(Opcode::kOpcodeCount)));
    in.rd = static_cast<std::uint8_t>(rng.NextBelow(kNumRegs));
    in.rs1 = static_cast<std::uint8_t>(rng.NextBelow(kNumRegs));
    in.rs2 = static_cast<std::uint8_t>(rng.NextBelow(kNumRegs));
    in.imm = static_cast<std::int32_t>(rng.Next());
    std::uint8_t buf[kInstrBytes];
    Encode(in, buf);
    const auto out = Decode(buf);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, in);
  }
}

TEST(IsaTest, RegisterNamesRoundTrip) {
  for (std::uint8_t r = 0; r < kNumRegs; ++r) {
    const auto back = RegFromName(RegName(r));
    ASSERT_TRUE(back.has_value()) << RegName(r);
    EXPECT_EQ(*back, r);
  }
  EXPECT_EQ(RegFromName("sp"), kSp);
  EXPECT_EQ(RegFromName("a0"), kA0);
  EXPECT_FALSE(RegFromName("a9").has_value());
  EXPECT_FALSE(RegFromName("x3").has_value());
  EXPECT_FALSE(RegFromName("r32").has_value());
}

TEST(IsaTest, OpcodeNamesRoundTrip) {
  for (std::uint8_t op = 0;
       op < static_cast<std::uint8_t>(Opcode::kOpcodeCount); ++op) {
    const auto name = OpcodeName(static_cast<Opcode>(op));
    const auto back = OpcodeFromName(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, static_cast<Opcode>(op));
  }
}

TEST(IsaTest, Classification) {
  EXPECT_TRUE(IsBranch(Opcode::kBeq));
  EXPECT_FALSE(IsBranch(Opcode::kJal));
  EXPECT_TRUE(IsLoad(Opcode::kLdd));
  EXPECT_TRUE(IsStore(Opcode::kStw));
  EXPECT_TRUE(IsMemAccess(Opcode::kLdb));
  EXPECT_FALSE(IsMemAccess(Opcode::kAdd));
  EXPECT_TRUE(WritesRd(Opcode::kAdd));
  EXPECT_FALSE(WritesRd(Opcode::kStd));
  EXPECT_FALSE(WritesRd(Opcode::kBne));
}

// ------------------------------------------------------------ assembler

TEST(AssemblerTest, MinimalFunction) {
  auto obj = Assemble(R"(
    .global f
    f:
      addi a0, a0, 5
      ret
  )");
  ASSERT_TRUE(obj.ok()) << obj.status();
  EXPECT_EQ(obj->text.size(), 2 * kInstrBytes);
  const auto* sym = obj->FindSymbol("f");
  ASSERT_NE(sym, nullptr);
  EXPECT_TRUE(sym->defined);
  EXPECT_TRUE(sym->global);
  EXPECT_EQ(sym->offset, 0u);
}

TEST(AssemblerTest, BranchToLocalLabelResolvesDirectly) {
  auto obj = Assemble(R"(
    f:
      beq a0, zr, .done
      addi a0, a0, -1
      jmp f
    .done:
      ret
  )");
  ASSERT_TRUE(obj.ok()) << obj.status();
  // No relocations: all targets are local text labels.
  EXPECT_TRUE(obj->relocs.empty());
  const auto beq = Decode(obj->text.data());
  ASSERT_TRUE(beq.has_value());
  EXPECT_EQ(beq->op, Opcode::kBeq);
  EXPECT_EQ(beq->imm, 24);  // 3 instructions forward
  const auto jmp = Decode(obj->text.data() + 16);
  ASSERT_TRUE(jmp.has_value());
  EXPECT_EQ(jmp->op, Opcode::kJal);
  EXPECT_EQ(jmp->imm, -16);
}

TEST(AssemblerTest, GotReferenceEmitsReloc) {
  auto obj = Assemble(R"(
    .extern helper
    f:
      ldg t0, @helper
      jalr lr, t0, 0
      ret
  )");
  ASSERT_TRUE(obj.ok()) << obj.status();
  ASSERT_EQ(obj->relocs.size(), 1u);
  EXPECT_EQ(obj->relocs[0].kind, RelocKind::kGotSlot);
  EXPECT_EQ(obj->relocs[0].symbol, "helper");
  EXPECT_EQ(obj->relocs[0].offset, 0u);
}

TEST(AssemblerTest, RodataAndLea) {
  auto obj = Assemble(R"(
    .rodata
    greeting: .asciz "hey\n"
    .align 8
    table: .quad 1, 2, 3
    .text
    f:
      lea a0, greeting
      ret
  )");
  ASSERT_TRUE(obj.ok()) << obj.status();
  EXPECT_EQ(obj->rodata.size(), 8u + 24u);  // "hey\n\0" padded to 8, 3 quads
  EXPECT_EQ(std::memcmp(obj->rodata.data(), "hey\n", 5), 0);
  // lea to another section leaves a pcrel reloc.
  ASSERT_EQ(obj->relocs.size(), 1u);
  EXPECT_EQ(obj->relocs[0].kind, RelocKind::kPcrel32);
  EXPECT_EQ(obj->relocs[0].symbol, "greeting");
}

TEST(AssemblerTest, QuadWithSymbolEmitsAbs64) {
  auto obj = Assemble(R"(
    .data
    ptr: .quad target+8
    .text
    target:
      ret
  )");
  ASSERT_TRUE(obj.ok()) << obj.status();
  ASSERT_EQ(obj->relocs.size(), 1u);
  EXPECT_EQ(obj->relocs[0].kind, RelocKind::kAbs64);
  EXPECT_EQ(obj->relocs[0].symbol, "target");
  EXPECT_EQ(obj->relocs[0].addend, 8);
  EXPECT_EQ(obj->relocs[0].section, SectionKind::kData);
}

TEST(AssemblerTest, PseudoInstructions) {
  auto obj = Assemble(R"(
    f:
      li t0, 0x123456789ABCDEF0
      mov a1, t0
      not a2, a1
      neg a3, a2
      seqz a4, a3
      snez a5, a3
      ret
  )");
  ASSERT_TRUE(obj.ok()) << obj.status();
  // li = 2 slots, others 1 each.
  EXPECT_EQ(obj->text.size(), 8 * kInstrBytes);
  const auto movi = Decode(obj->text.data());
  const auto movhi = Decode(obj->text.data() + 8);
  ASSERT_TRUE(movi && movhi);
  EXPECT_EQ(movi->op, Opcode::kMovi);
  EXPECT_EQ(movhi->op, Opcode::kMovhi);
  EXPECT_EQ(static_cast<std::uint32_t>(movi->imm), 0x9ABCDEF0u);
  EXPECT_EQ(static_cast<std::uint32_t>(movhi->imm), 0x12345678u);
}

TEST(AssemblerTest, MemoryOperands) {
  auto obj = Assemble(R"(
    f:
      ldd t0, [sp+16]
      ldw t1, [a0]
      std t0, [sp-8]
      ret
  )");
  ASSERT_TRUE(obj.ok()) << obj.status();
  const auto ldd = Decode(obj->text.data());
  ASSERT_TRUE(ldd.has_value());
  EXPECT_EQ(ldd->rs1, kSp);
  EXPECT_EQ(ldd->imm, 16);
  const auto std_i = Decode(obj->text.data() + 16);
  ASSERT_TRUE(std_i.has_value());
  EXPECT_EQ(std_i->op, Opcode::kStd);
  EXPECT_EQ(std_i->rs2, kT0);
  EXPECT_EQ(std_i->imm, -8);
}

TEST(AssemblerTest, Errors) {
  EXPECT_FALSE(Assemble("frobnicate a0, a1").ok());
  EXPECT_FALSE(Assemble("add a0, a1").ok());            // operand count
  EXPECT_FALSE(Assemble("add a0, a1, q9").ok());        // bad register
  EXPECT_FALSE(Assemble("x: ret\nx: ret").ok());        // duplicate label
  EXPECT_FALSE(Assemble(".align 3").ok());              // not pow2
  EXPECT_FALSE(Assemble("ldg t0, helper").ok());        // missing '@'
  EXPECT_FALSE(Assemble("ldd t0, sp+16").ok());         // missing brackets
  const auto err = Assemble("add a0, a1", "unit.s").status();
  EXPECT_NE(err.message().find("unit.s:1"), std::string::npos);
}

TEST(AssemblerTest, CommentsAndBlankLines) {
  auto obj = Assemble(R"(
    ; full-line comment
    # another
    f: ret   ; trailing
  )");
  ASSERT_TRUE(obj.ok()) << obj.status();
  EXPECT_EQ(obj->text.size(), kInstrBytes);
}

TEST(AssemblerTest, AlignPadsTextWithNops) {
  auto obj = Assemble(R"(
    f: ret
    .align 32
    g: ret
  )");
  ASSERT_TRUE(obj.ok()) << obj.status();
  EXPECT_EQ(obj->FindSymbol("g")->offset, 32u);
  const auto pad = Decode(obj->text.data() + 8);
  ASSERT_TRUE(pad.has_value());
  EXPECT_EQ(pad->op, Opcode::kNop);
}

// --------------------------------------------------------- disassembler

TEST(DisassemblerTest, RoundTripMnemonics) {
  auto obj = Assemble(R"(
    f:
      addi a0, a0, 42
      ldw t1, [a0+4]
      beq t1, zr, 16
      jalr lr, t0, 0
      ldg.pre t2, 3, -16
      ret
  )");
  ASSERT_TRUE(obj.ok()) << obj.status();
  auto text = Disassemble(obj->text);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("addi a0, a0, 42"), std::string::npos);
  EXPECT_NE(text->find("ldw t1, [a0+4]"), std::string::npos);
  EXPECT_NE(text->find("ldg.pre t2, 3, -16"), std::string::npos);
  EXPECT_NE(text->find("jalr zr, lr, 0"), std::string::npos);  // ret
}

TEST(DisassemblerTest, RejectsMisalignedCode) {
  std::vector<std::uint8_t> bytes(12, 0);
  EXPECT_FALSE(Disassemble(bytes).ok());
}

// ------------------------------------------------------------- verifier

std::vector<std::uint8_t> AssembleText(const std::string& src) {
  auto obj = Assemble(src);
  EXPECT_TRUE(obj.ok()) << obj.status();
  return obj->text;
}

TEST(VerifierTest, AcceptsWellFormedCode) {
  const auto code = AssembleText(R"(
    f:
      beq a0, zr, .out
      addi a0, a0, -1
      jmp f
    .out:
      ret
  )");
  EXPECT_TRUE(VerifyCode(code, {}).ok());
}

TEST(VerifierTest, RejectsBranchOutOfImage) {
  const auto code = AssembleText("f: beq a0, zr, 4096\n ret");
  EXPECT_EQ(VerifyCode(code, {}).code(), StatusCode::kOutOfRange);
}

TEST(VerifierTest, RejectsMisalignedBranch) {
  const auto code = AssembleText("f: beq a0, zr, 12\n ret\n ret");
  EXPECT_EQ(VerifyCode(code, {}).code(), StatusCode::kDataLoss);
}

TEST(VerifierTest, RejectsGotIndexBeyondTable) {
  const auto code = AssembleText("f: ldg.pre t0, 7, -16\n ret");
  VerifyLimits limits;
  limits.got_slots = 4;
  EXPECT_EQ(VerifyCode(code, limits).code(), StatusCode::kOutOfRange);
  limits.got_slots = 8;
  EXPECT_TRUE(VerifyCode(code, limits).ok());
}

TEST(VerifierTest, RejectsUndecodableSlot) {
  std::vector<std::uint8_t> code(16, 0xFF);
  EXPECT_EQ(VerifyCode(code, {}).code(), StatusCode::kDataLoss);
}

TEST(VerifierTest, RejectsEmptyAndMisaligned) {
  EXPECT_FALSE(VerifyCode({}, {}).ok());
  std::vector<std::uint8_t> odd(9, 0);
  EXPECT_EQ(VerifyCode(odd, {}).code(), StatusCode::kDataLoss);
}

TEST(VerifierTest, LeaMayTargetTrailingRodata) {
  const auto code = AssembleText("f: lea a0, 16\n ret");  // +16 > code end
  VerifyLimits limits;
  EXPECT_FALSE(VerifyCode(code, limits).ok());
  limits.rodata_bytes = 64;
  EXPECT_TRUE(VerifyCode(code, limits).ok());
}

TEST(VerifierTest, RejectsTruncatedJamBodies) {
  // A frame cut short on the wire: the verifier must refuse every
  // truncation of a valid body — misaligned tails outright, aligned
  // tails once a branch target falls off the end.
  const auto code = AssembleText(R"(
    f:
      beq a0, zr, .out
      addi a0, a0, -1
      jmp f
    .out:
      ret
  )");
  ASSERT_TRUE(VerifyCode(code, {}).ok());
  // Misaligned truncations (not a whole number of instruction slots).
  for (const std::size_t cut : {1u, 7u, 9u, 15u}) {
    ASSERT_LT(cut, code.size());
    const std::span<const std::uint8_t> trunc(code.data(),
                                              code.size() - cut);
    EXPECT_EQ(VerifyCode(trunc, {}).code(), StatusCode::kDataLoss)
        << "cut " << cut;
  }
  // Aligned truncation that drops the `.out: ret` the beq targets.
  const std::span<const std::uint8_t> no_tail(code.data(),
                                              code.size() - kInstrBytes);
  EXPECT_EQ(VerifyCode(no_tail, {}).code(), StatusCode::kOutOfRange);
  // Truncated to nothing.
  EXPECT_EQ(VerifyCode(code.empty() ? std::span<const std::uint8_t>()
                                    : std::span<const std::uint8_t>(
                                          code.data(), 0),
                       {})
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(VerifierTest, SeededGarblingNeverSlipsUndecodableCode) {
  // Property: for any byte-level corruption of a valid body, the verifier
  // either rejects, or everything it accepted really decodes and every
  // branch stays inside the image — and the verdict is deterministic.
  const auto code = AssembleText(R"(
    f:
      movi t0, 0
    .loop:
      beq a0, zr, .done
      add t0, t0, a1
      addi a0, a0, -1
      jmp .loop
    .done:
      mov a0, t0
      ret
  )");
  ASSERT_TRUE(VerifyCode(code, {}).ok());

  Xoshiro256 rng(0x6A2B1E);
  int rejected = 0;
  for (int round = 0; round < 300; ++round) {
    std::vector<std::uint8_t> garbled(code.begin(), code.end());
    const std::uint64_t flips = 1 + rng.NextBelow(3);
    for (std::uint64_t i = 0; i < flips; ++i) {
      garbled[rng.NextBelow(garbled.size())] =
          static_cast<std::uint8_t>(rng.Next());
    }
    const Status verdict = VerifyCode(garbled, {});
    const Status again = VerifyCode(garbled, {});
    EXPECT_EQ(verdict.code(), again.code());
    if (!verdict.ok()) {
      ++rejected;
      continue;
    }
    const std::int64_t size = static_cast<std::int64_t>(garbled.size());
    for (std::size_t off = 0; off < garbled.size(); off += kInstrBytes) {
      const auto decoded = Decode(garbled.data() + off);
      ASSERT_TRUE(decoded.has_value()) << "verifier passed undecodable +"
                                       << off << " in round " << round;
      if (IsBranch(decoded->op) || decoded->op == Opcode::kJal) {
        const std::int64_t target =
            static_cast<std::int64_t>(off) + decoded->imm;
        EXPECT_GE(target, 0);
        EXPECT_LT(target, size);
      }
    }
  }
  // The property is not vacuous: corruption does get caught.
  EXPECT_GT(rejected, 0);
}

// ------------------------------------------- listing round-trip property

TEST(DisassemblerTest, SeededStreamsReachReassemblyFixpoint) {
  // Random valid instruction streams, pushed through disassemble ->
  // reassemble: the first pass may normalize (the printer omits operand
  // fields its shape does not use, e.g. a stray rd on `halt`), but from
  // then on bytes and listing must be a fixpoint — the printer and the
  // parser agree on every operand shape (including raw ldg.fix /
  // ldg.pre and negative immediates).
  Xoshiro256 rng(0x0DD5);
  for (int round = 0; round < 50; ++round) {
    std::vector<std::uint8_t> code;
    const std::uint64_t count = 4 + rng.NextBelow(60);
    for (std::uint64_t n = 0; n < count; ++n) {
      Instr instr;
      instr.op = static_cast<Opcode>(
          rng.NextBelow(static_cast<std::uint64_t>(Opcode::kOpcodeCount)));
      instr.rd = static_cast<std::uint8_t>(rng.NextBelow(kNumRegs));
      instr.rs1 = static_cast<std::uint8_t>(rng.NextBelow(kNumRegs));
      instr.rs2 = static_cast<std::uint8_t>(rng.NextBelow(kNumRegs));
      instr.imm = static_cast<std::int32_t>(rng.Next());
      std::uint8_t buf[kInstrBytes];
      Encode(instr, buf);
      code.insert(code.end(), buf, buf + kInstrBytes);
    }
    auto listing = Disassemble(code);
    ASSERT_TRUE(listing.ok()) << listing.status();
    auto normalized = Assemble(StripListingOffsets(*listing), "prop.jasm");
    ASSERT_TRUE(normalized.ok())
        << normalized.status() << "\nlisting:\n" << *listing;
    ASSERT_EQ(normalized->text.size(), code.size()) << "round " << round;

    auto listing2 = Disassemble(normalized->text);
    ASSERT_TRUE(listing2.ok());
    auto fixpoint = Assemble(StripListingOffsets(*listing2), "prop2.jasm");
    ASSERT_TRUE(fixpoint.ok()) << fixpoint.status();
    EXPECT_EQ(fixpoint->text, normalized->text) << "round " << round;
    auto listing3 = Disassemble(fixpoint->text);
    ASSERT_TRUE(listing3.ok());
    EXPECT_EQ(*listing3, *listing2) << "round " << round;
  }
}

// ---------------------------------------------------------- interpreter

class InterpreterTest : public ::testing::Test {
 protected:
  InterpreterTest() : mem_(0, MiB(8)), caches_(CacheConfig()) {}

  static cache::HierarchyConfig CacheConfig() {
    cache::HierarchyConfig cfg;
    cfg.l1 = {"L1", KiB(16), 4, 2};
    cfg.l2 = {"L2", KiB(64), 8, 12};
    cfg.l3 = {"L3", KiB(128), 16, 30};
    cfg.llc = {"LLC", KiB(256), 16, 55};
    return cfg;
  }

  /// Assembles, links nothing — places raw text at an RWX allocation.
  mem::VirtAddr LoadRaw(const std::string& src, mem::Perm perm = mem::Perm::kRWX) {
    auto obj = Assemble(src);
    EXPECT_TRUE(obj.ok()) << obj.status();
    auto addr = mem_.Allocate(obj->text.size(), 64, perm, "code");
    EXPECT_TRUE(addr.ok());
    EXPECT_TRUE(mem_.DmaWrite(*addr, obj->text).ok());
    return *addr;
  }

  mem::VirtAddr MakeStack() {
    auto addr = mem_.Allocate(KiB(64), 16, mem::Perm::kRW, "stack");
    EXPECT_TRUE(addr.ok());
    return *addr + KiB(64);
  }

  ExecResult Run(mem::VirtAddr entry, std::vector<std::uint64_t> args,
                 const NativeTable* natives = nullptr,
                 ExecConfig cfg = {}) {
    Interpreter interp(mem_, caches_, 0, natives, cfg);
    return interp.Execute(entry, args, MakeStack());
  }

  mem::HostMemory mem_;
  cache::CacheHierarchy caches_;
};

TEST_F(InterpreterTest, ArithmeticAndReturn) {
  const auto entry = LoadRaw(R"(
    f:
      addi a0, a0, 10
      muli a0, a0, 3
      ret
  )");
  const auto r = Run(entry, {4});
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_EQ(r.return_value, 42u);
  EXPECT_EQ(r.instructions, 3u);
  EXPECT_GT(r.cycles, 0u);
}

TEST_F(InterpreterTest, LoopSumsIota) {
  // sum 1..n via a loop.
  const auto entry = LoadRaw(R"(
    f:
      mov t0, zr
    .loop:
      beq a0, zr, .done
      add t0, t0, a0
      addi a0, a0, -1
      jmp .loop
    .done:
      mov a0, t0
      ret
  )");
  const auto r = Run(entry, {100});
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_EQ(r.return_value, 5050u);
}

TEST_F(InterpreterTest, RecursiveCallsUseStack) {
  // factorial via recursion: tests jal/jalr/stack discipline.
  const auto entry = LoadRaw(R"(
    fact:
      bne a0, zr, .rec
      movi a0, 1
      ret
    .rec:
      addi sp, sp, -16
      std lr, [sp+0]
      std a0, [sp+8]
      addi a0, a0, -1
      call fact
      ldd t0, [sp+8]
      mul a0, a0, t0
      ldd lr, [sp+0]
      addi sp, sp, 16
      ret
  )");
  const auto r = Run(entry, {10});
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_EQ(r.return_value, 3628800u);
}

TEST_F(InterpreterTest, LoadStoreWidthsAndSignExtension) {
  const auto buf = mem_.Allocate(64, 64, mem::Perm::kRW, "buf");
  ASSERT_TRUE(buf.ok());
  const auto entry = LoadRaw(R"(
    f:
      ; a0 = buffer
      movi t0, -2
      stw t0, [a0+0]      ; 0xFFFFFFFE
      ldw t1, [a0+0]      ; sign-extended -> -2
      ldwu t2, [a0+0]     ; zero-extended -> 0xFFFFFFFE
      sub a0, t1, t2      ; -2 - 0xFFFFFFFE
      ret
  )");
  const auto r = Run(entry, {*buf});
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_EQ(static_cast<std::int64_t>(r.return_value),
            -2ll - 0xFFFFFFFEll);
}

TEST_F(InterpreterTest, ByteAndHalfAccesses) {
  const auto buf = mem_.Allocate(64, 64, mem::Perm::kRW, "buf");
  ASSERT_TRUE(buf.ok());
  const auto entry = LoadRaw(R"(
    f:
      movi t0, 0x80
      stb t0, [a0]
      ldb t1, [a0]       ; sign extend: -128
      ldbu t2, [a0]      ; 128
      add a0, t1, t2     ; 0
      ret
  )");
  const auto r = Run(entry, {*buf});
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_EQ(r.return_value, 0u);
}

TEST_F(InterpreterTest, Movi64BitConstant) {
  const auto entry = LoadRaw(R"(
    f:
      li a0, 0xDEADBEEFCAFED00D
      ret
  )");
  const auto r = Run(entry, {});
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_EQ(r.return_value, 0xDEADBEEFCAFED00Dull);
}

TEST_F(InterpreterTest, DivisionByZeroFaults) {
  const auto entry = LoadRaw("f: div a0, a0, zr\n ret");
  const auto r = Run(entry, {8});
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
}

TEST_F(InterpreterTest, SignedDivisionSemantics) {
  const auto entry = LoadRaw(R"(
    f:
      movi t0, -7
      movi t1, 2
      div a0, t0, t1     ; -3 (trunc toward zero)
      rem a1, t0, t1     ; -1
      sub a0, a0, a1     ; -3 - -1 = -2
      ret
  )");
  const auto r = Run(entry, {});
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_EQ(static_cast<std::int64_t>(r.return_value), -2);
}

TEST_F(InterpreterTest, InstructionBudgetStopsRunaway) {
  const auto entry = LoadRaw("f: jmp f");
  ExecConfig cfg;
  cfg.max_instructions = 1000;
  const auto r = Run(entry, {}, nullptr, cfg);
  EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(r.instructions, 1000u);
}

TEST_F(InterpreterTest, ExecPermissionEnforced) {
  const auto entry = LoadRaw("f: ret", mem::Perm::kRW);  // no X
  const auto r = Run(entry, {});
  EXPECT_EQ(r.status.code(), StatusCode::kPermissionDenied);
  // Disabling enforcement (the paper's default RWX mailbox mode) runs fine.
  ExecConfig cfg;
  cfg.enforce_exec_permission = false;
  const auto r2 = Run(entry, {}, nullptr, cfg);
  EXPECT_TRUE(r2.status.ok());
}

TEST_F(InterpreterTest, StorePermissionFaultSurfaces) {
  const auto ro = mem_.Allocate(64, 64, mem::Perm::kRead, "ro");
  ASSERT_TRUE(ro.ok());
  const auto entry = LoadRaw("f: std zr, [a0]\n ret");
  const auto r = Run(entry, {*ro});
  EXPECT_EQ(r.status.code(), StatusCode::kPermissionDenied);
}

TEST_F(InterpreterTest, NativeBridgeCallAndReturn) {
  NativeTable natives;
  std::string out;
  ASSERT_TRUE(RegisterStandardNatives(natives, {&out}).ok());
  // Build a GOT in memory holding the native handle for tc_hash64.
  const auto got = mem_.Allocate(64, 64, mem::Perm::kRW, "got");
  ASSERT_TRUE(got.ok());
  const auto idx = natives.IndexOf("tc_hash64");
  ASSERT_TRUE(idx.ok());
  ASSERT_TRUE(mem_.StoreU64(*got, MakeNativeHandle(*idx)).ok());

  const auto entry = LoadRaw(R"(
    f:
      ; a0 = input, a1 = got address
      ldd t0, [a1]
      addi sp, sp, -16
      std lr, [sp]
      jalr lr, t0, 0
      ldd lr, [sp]
      addi sp, sp, 16
      ret
  )");
  const auto r = Run(entry, {123, *got}, &natives);
  ASSERT_TRUE(r.status.ok()) << r.status;
  // tc_hash64 is splitmix64's mix of the input.
  std::uint64_t z = 123 + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  EXPECT_EQ(r.return_value, z ^ (z >> 31));
}

TEST_F(InterpreterTest, NativePrintCollectsIntoSink) {
  NativeTable natives;
  std::string out;
  ASSERT_TRUE(RegisterStandardNatives(natives, {&out}).ok());
  const auto got = mem_.Allocate(64, 64, mem::Perm::kRW, "got");
  const auto str = mem_.Allocate(64, 64, mem::Perm::kRW, "str");
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(str.ok());
  const char* msg = "jam says hi";
  ASSERT_TRUE(mem_.Write(*str, std::span<const std::uint8_t>(
                                   reinterpret_cast<const std::uint8_t*>(msg),
                                   std::strlen(msg) + 1))
                  .ok());
  ASSERT_TRUE(
      mem_.StoreU64(*got,
                    MakeNativeHandle(*natives.IndexOf("tc_print_str")))
          .ok());
  const auto entry = LoadRaw(R"(
    f:
      mov a0, a1       ; string address was passed in a1
      ldd t0, [a2]     ; got address in a2
      addi sp, sp, -16
      std lr, [sp]
      jalr lr, t0, 0
      ldd lr, [sp]
      addi sp, sp, 16
      ret
  )");
  const auto r = Run(entry, {0, *str, *got}, &natives);
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_EQ(out, "jam says hi");
}

TEST_F(InterpreterTest, MissingNativeTableFaults) {
  const auto got = mem_.Allocate(64, 64, mem::Perm::kRW, "got");
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(mem_.StoreU64(*got, MakeNativeHandle(0)).ok());
  const auto entry = LoadRaw(R"(
    f:
      ldd t0, [a0]
      jalr lr, t0, 0
      ret
  )");
  const auto r = Run(entry, {*got}, nullptr);
  EXPECT_EQ(r.status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(InterpreterTest, GotFixAndPreModesAgree) {
  // Build: [PRE slot][pad][code ...][got table] — execute the same logical
  // access via ldg.fix (PC-relative direct) and ldg.pre (via preamble).
  const auto region = mem_.Allocate(KiB(4), 64, mem::Perm::kRWX, "jam");
  ASSERT_TRUE(region.ok());
  const mem::VirtAddr pre = *region;       // preamble slot
  const mem::VirtAddr code = *region + 16; // code starts at +16
  const mem::VirtAddr got = *region + 512; // table
  ASSERT_TRUE(mem_.StoreU64(got + 8, 0x1234567890ull).ok());  // slot 1
  ASSERT_TRUE(mem_.StoreU64(pre, got).ok());

  // ldg.fix a0, imm -> target got+8 ; ldg.pre a1, 1, imm -> via pre.
  std::vector<std::uint8_t> text;
  {
    Instr fix{Opcode::kLdgFix, kA0, 0, 0,
              static_cast<std::int32_t>(got + 8 - code)};
    Instr prei{Opcode::kLdgPre, kA0 + 1, 0, 1,
               static_cast<std::int32_t>(
                   static_cast<std::int64_t>(pre) -
                   static_cast<std::int64_t>(code + 8))};
    Instr sub{Opcode::kSub, kA0, kA0 + 1, kA0, 0};  // a0 = a1 - a0 (0 if same)
    Instr retq{Opcode::kJalr, kZr, kLr, 0, 0};
    std::uint8_t buf[8];
    for (const auto& i : {fix, prei, sub, retq}) {
      Encode(i, buf);
      text.insert(text.end(), buf, buf + 8);
    }
  }
  ASSERT_TRUE(mem_.DmaWrite(code, text).ok());
  const auto r = Run(code, {});
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_EQ(r.return_value, 0u);  // both modes read the same slot value
}

TEST_F(InterpreterTest, CyclesReflectCacheState) {
  // Cold first run vs warm second run of the same code: the warm run must
  // burn fewer cycles (all ifetches hit L1).
  const auto entry = LoadRaw(R"(
    f:
      mov t0, zr
      movi t1, 64
    .loop:
      beq t1, zr, .done
      add t0, t0, t1
      addi t1, t1, -1
      jmp .loop
    .done:
      mov a0, t0
      ret
  )");
  const auto cold = Run(entry, {});
  ASSERT_TRUE(cold.status.ok());
  const auto warm = Run(entry, {});
  ASSERT_TRUE(warm.status.ok());
  EXPECT_EQ(cold.return_value, warm.return_value);
  EXPECT_EQ(cold.instructions, warm.instructions);
  EXPECT_GT(cold.cycles, warm.cycles);
}

TEST_F(InterpreterTest, ZeroRegisterIsImmutable) {
  const auto entry = LoadRaw(R"(
    f:
      movi zr, 999
      mov a0, zr
      ret
  )");
  const auto r = Run(entry, {});
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.return_value, 0u);
}

TEST_F(InterpreterTest, ShiftAndCompareOps) {
  const auto entry = LoadRaw(R"(
    f:
      movi t0, 1
      slli t0, t0, 40      ; 2^40
      srli t1, t0, 8       ; 2^32
      movi t2, -16
      srai t2, t2, 2       ; -4
      sltu t3, t1, t0      ; 1
      slt  t4, t2, zr      ; 1 (-4 < 0)
      add a0, t3, t4
      ret
  )");
  const auto r = Run(entry, {});
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_EQ(r.return_value, 2u);
}

// ----------------------- security-hole regressions (the fuzz suite PR)

TEST(VerifierTest, RejectsLdgPreOffThePreambleSlot) {
  // site+imm must land exactly on the PRE slot — any other target reads
  // the "GOT pointer" out of attacker-controlled frame bytes (GOTP, ARGS,
  // or the code itself) instead of the receiver-written preamble.
  VerifyLimits limits;
  limits.got_slots = 8;
  const auto below = AssembleText("f: ldg.pre t0, 0, -24\n ret");
  EXPECT_EQ(VerifyCode(below, limits).code(), StatusCode::kOutOfRange);
  const auto inside = AssembleText("f: ldg.pre t0, 0, 8\n ret");
  EXPECT_EQ(VerifyCode(inside, limits).code(), StatusCode::kOutOfRange);
  // The pin is per-site: deeper in the body the delta shifts with it.
  const auto later = AssembleText("f: nop\n ldg.pre t0, 0, -24\n ret");
  EXPECT_TRUE(VerifyCode(later, limits).ok());
}

TEST(VerifierTest, BoundsLdgFixLikeLdgPre) {
  // The satellite hole: kLdgPre's GOT index was bounded but kLdgFix's
  // PC-relative target was not — an unrewritten ldg.fix was an arbitrary
  // in-image read. Build the instruction directly; the assembler only
  // emits ldg.fix through @got relocations.
  const auto build = [](std::int32_t imm) {
    std::vector<std::uint8_t> code;
    Instr fix;
    fix.op = Opcode::kLdgFix;
    fix.rd = kT0;
    fix.imm = imm;
    std::uint8_t buf[kInstrBytes];
    Encode(fix, buf);
    code.insert(code.end(), buf, buf + kInstrBytes);
    Instr ret;
    ret.op = Opcode::kJalr;
    ret.rs1 = kLr;
    Encode(ret, buf);
    code.insert(code.end(), buf, buf + kInstrBytes);
    return code;
  };

  // Without a declared fixed GOT (every injected frame), ldg.fix dies.
  EXPECT_EQ(VerifyCode(build(64), {}).code(), StatusCode::kPermissionDenied);

  VerifyLimits limits;
  limits.got_slots = 4;
  limits.fixed_got_offset = 64;  // table window [64, 96)
  EXPECT_TRUE(VerifyCode(build(64), limits).ok());   // slot 0
  EXPECT_TRUE(VerifyCode(build(88), limits).ok());   // slot 3
  EXPECT_EQ(VerifyCode(build(96), limits).code(),    // one past the table
            StatusCode::kOutOfRange);
  EXPECT_EQ(VerifyCode(build(68), limits).code(),    // misaligned
            StatusCode::kOutOfRange);
  EXPECT_EQ(VerifyCode(build(56), limits).code(),    // before the table
            StatusCode::kOutOfRange);
}

TEST(VerifierTest, RejectsZeroRegisterJalr) {
  // jalr through zr is a jump to a raw immediate — an absolute pc no
  // static analysis can bound. Register jalr stays legal (the interpreter
  // bounds it dynamically via exec windows).
  const auto absolute = AssembleText("f: jalr a0, zr, 4096\n ret");
  EXPECT_EQ(VerifyCode(absolute, {}).code(), StatusCode::kOutOfRange);
  const auto through_reg = AssembleText("f: jalr a0, t0, 0\n ret");
  EXPECT_TRUE(VerifyCode(through_reg, {}).ok());
}

TEST_F(InterpreterTest, ExecWindowsConfineComputedJumps) {
  // The dynamic half of the jalr story: a register jump out of the armed
  // window faults at the fetch, before the target byte executes.
  const auto entry = LoadRaw(R"(
    f:
      mov t0, sp
      jalr lr, t0, 0
      ret
  )");
  ExecConfig cfg;
  cfg.exec_windows = {{entry, 3 * kInstrBytes}};
  const auto r = Run(entry, {}, nullptr, cfg);
  EXPECT_EQ(r.status.code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(r.instructions, 2u);  // mov + jalr retire; the fetch faults
}

TEST_F(InterpreterTest, ExecWindowsCatchStraightLineRunoff) {
  // No branch, no ret: statically legal, dynamically the next fetch falls
  // off the end of the window into whatever bytes follow the frame.
  const auto entry = LoadRaw("f: addi a0, a0, 1");
  ExecConfig cfg;
  cfg.exec_windows = {{entry, kInstrBytes}};
  const auto r = Run(entry, {}, nullptr, cfg);
  EXPECT_EQ(r.status.code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(r.instructions, 1u);
}

TEST_F(InterpreterTest, DataWindowsCoverNativeAccesses) {
  // Natives act on behalf of jam code, so the data fence must hold through
  // the bridge too (the confused-deputy regression). a0..a3 carry
  // dst/fill/len/handle straight from Run's args.
  NativeTable natives;
  std::string sink;
  ASSERT_TRUE(RegisterStandardNatives(natives, {&sink}).ok());
  const auto memset_idx = natives.IndexOf("tc_memset");
  ASSERT_TRUE(memset_idx.ok());
  const std::uint64_t handle = MakeNativeHandle(*memset_idx);
  auto inside = mem_.Allocate(256, 64, mem::Perm::kRW, "inside");
  auto outside = mem_.Allocate(256, 64, mem::Perm::kRW, "outside");
  ASSERT_TRUE(inside.ok() && outside.ok());

  const auto entry = LoadRaw(R"(
    f:
      mov t6, lr
      jalr lr, a3, 0
      jalr zr, t6, 0
  )");
  ExecConfig cfg;
  cfg.data_windows = {{*inside, 256}};

  const auto ok = Run(entry, {*inside, 0x5A, 64, handle}, &natives, cfg);
  ASSERT_TRUE(ok.status.ok()) << ok.status;
  auto in_span = mem_.RawSpan(*inside, 64);
  ASSERT_TRUE(in_span.ok());
  for (const std::uint8_t b : *in_span) EXPECT_EQ(b, 0x5A);

  const auto blocked = Run(entry, {*outside, 0x5A, 64, handle}, &natives, cfg);
  EXPECT_EQ(blocked.status.code(), StatusCode::kPermissionDenied);
  auto out_span = mem_.RawSpan(*outside, 64);
  ASSERT_TRUE(out_span.ok());
  for (const std::uint8_t b : *out_span) EXPECT_EQ(b, 0u);
}

TEST_F(InterpreterTest, ConfineBranchCyclesAreCharged) {
  // The SFI-style control-flow check has a price: every branch/jal/jalr
  // retired under exec windows costs confine_branch_cycles extra. 16 bne
  // + the final ret = 17 control transfers.
  const auto entry = LoadRaw(R"(
    f:
      movi t0, 16
    loop:
      addi t0, t0, -1
      bne t0, zr, loop
      ret
  )");
  ExecConfig cfg;
  cfg.exec_windows = {{entry, 4 * kInstrBytes}};
  cfg.confine_branch_cycles = 0;
  (void)Run(entry, {}, nullptr, cfg);  // warm the caches
  const auto cheap = Run(entry, {}, nullptr, cfg);
  ASSERT_TRUE(cheap.status.ok()) << cheap.status;
  cfg.confine_branch_cycles = 100;
  const auto priced = Run(entry, {}, nullptr, cfg);
  ASSERT_TRUE(priced.status.ok()) << priced.status;
  EXPECT_EQ(priced.cycles - cheap.cycles, 17u * 100u);
}

}  // namespace
}  // namespace twochains::vm
