// Shared test helper for disassembler-listing round trips.
#pragma once

#include <string>

namespace twochains::vm {

/// Strips the "  off: " prefix of a disassembler listing, leaving
/// statements the assembler accepts back.
inline std::string StripListingOffsets(const std::string& listing) {
  std::string out;
  std::size_t pos = 0;
  while (pos < listing.size()) {
    std::size_t eol = listing.find('\n', pos);
    if (eol == std::string::npos) eol = listing.size();
    const std::string line = listing.substr(pos, eol - pos);
    const std::size_t colon = line.find(": ");
    out += colon == std::string::npos ? line : line.substr(colon + 2);
    out += '\n';
    pos = eol + 1;
  }
  return out;
}

}  // namespace twochains::vm
