// Unit tests for the common support module: Status/StatusOr, units/clock
// domains, RNG determinism and distribution sanity, stats, byte IO, bitops.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/bitops.hpp"
#include "common/byte_io.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/strfmt.hpp"
#include "common/units.hpp"

namespace twochains {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFound("symbol 'foo'");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "symbol 'foo'");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: symbol 'foo'");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(PermissionDenied("").code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(FailedPrecondition("").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(ResourceExhausted("").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(DataLoss("").code(), StatusCode::kDataLoss);
  EXPECT_EQ(Unimplemented("").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Internal("").code(), StatusCode::kInternal);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFound("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, OkStatusBecomesInternalError) {
  StatusOr<int> v = Status::Ok();
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
}

StatusOr<int> HelperReturningError() { return DataLoss("boom"); }
Status UsesAssignOrReturn(int& out) {
  TC_ASSIGN_OR_RETURN(out, HelperReturningError());
  return Status::Ok();
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  int out = 0;
  Status s = UsesAssignOrReturn(out);
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
}

// ---------------------------------------------------------------- units

TEST(UnitsTest, PicoConversions) {
  EXPECT_EQ(Nanoseconds(1.0), 1000u);
  EXPECT_EQ(Microseconds(1.0), 1'000'000u);
  EXPECT_DOUBLE_EQ(ToMicroseconds(2'500'000), 2.5);
}

TEST(ClockDomainTest, CoreClockPeriodIsExact) {
  // 2.6 GHz -> 1 cycle = 5000/13 ps ~ 384.6 ps; 13 cycles = exactly 5 ns.
  EXPECT_EQ(kCoreClock.ToPicos(13), 5000u);
  EXPECT_EQ(kCoreClock.ToPicos(26), 10000u);
}

TEST(ClockDomainTest, InterconnectClock) {
  EXPECT_EQ(kInterconnectClock.ToPicos(1), 625u);
  EXPECT_EQ(kInterconnectClock.ToPicos(16), 10000u);
}

TEST(ClockDomainTest, RoundTripCyclesToPicosToCycles) {
  for (Cycles c : {1ull, 7ull, 100ull, 12345ull, 1000000ull}) {
    const PicoTime t = kCoreClock.ToPicos(c);
    const Cycles back = kCoreClock.ToCycles(t);
    // ToCycles rounds up, ToPicos rounds to nearest: allow 1 cycle slack.
    EXPECT_GE(back + 1, c);
    EXPECT_LE(back, c + 1);
  }
}

TEST(ClockDomainTest, GHzReport) {
  EXPECT_NEAR(kCoreClock.GHz(), 2.6, 1e-9);
  EXPECT_NEAR(kInterconnectClock.GHz(), 1.6, 1e-9);
}

// ---------------------------------------------------------------- bitops

TEST(BitopsTest, PowerOfTwo) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(65));
}

TEST(BitopsTest, AlignUpDown) {
  EXPECT_EQ(AlignUp(0, 64), 0u);
  EXPECT_EQ(AlignUp(1, 64), 64u);
  EXPECT_EQ(AlignUp(64, 64), 64u);
  EXPECT_EQ(AlignUp(65, 64), 128u);
  EXPECT_EQ(AlignDown(127, 64), 64u);
  EXPECT_EQ(AlignDown(128, 64), 128u);
}

TEST(BitopsTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(0, 64), 0u);
  EXPECT_EQ(CeilDiv(1, 64), 1u);
  EXPECT_EQ(CeilDiv(64, 64), 1u);
  EXPECT_EQ(CeilDiv(65, 64), 2u);
}

// ---------------------------------------------------------------- rng

TEST(RngTest, DeterministicForSameSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowStaysInBound) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  EXPECT_EQ(rng.NextBelow(0), 0u);
  EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialMeanApproximatesParameter) {
  Xoshiro256 rng(11);
  RunningStat stat;
  for (int i = 0; i < 100000; ++i) stat.Add(rng.NextExponential(50.0));
  EXPECT_NEAR(stat.mean(), 50.0, 1.5);
}

TEST(RngTest, ParetoIsHeavyTailedAboveScale) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.NextPareto(2.0, 1.5), 2.0);
  }
}

TEST(RngTest, NextInRangeCoversFullDomain) {
  // Regression: `hi - lo + 1` wrapped to 0 on the full u64 span, so
  // NextBelow(0) returned 0 and every full-domain draw collapsed to `lo`.
  Xoshiro256 rng(19);
  bool saw_nonzero = false;
  bool saw_top_half = false;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t v = rng.NextInRange(0, UINT64_MAX);
    saw_nonzero |= (v != 0);
    saw_top_half |= (v >= (1ull << 63));
  }
  EXPECT_TRUE(saw_nonzero);
  EXPECT_TRUE(saw_top_half);  // P(miss across 64 draws) = 2^-64
}

TEST(RngTest, NextInRangeNearFullDomainStaysInRange) {
  // Spans one short of the full domain still go through rejection
  // sampling: bound = UINT64_MAX is representable and must be respected.
  Xoshiro256 rng(21);
  bool saw_above_lo = false;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t v = rng.NextInRange(1, UINT64_MAX);
    EXPECT_GE(v, 1u);
    saw_above_lo |= (v > 1);
  }
  EXPECT_TRUE(saw_above_lo);
}

TEST(RngTest, NextInRangeDegenerateAndSmallSpans) {
  Xoshiro256 rng(23);
  EXPECT_EQ(rng.NextInRange(42, 42), 42u);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.NextInRange(10, 13);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 13u);
  }
}

TEST(RngTest, ZipfRanksStayInBoundAndDegenerateCases) {
  Xoshiro256 rng(25);
  EXPECT_EQ(rng.NextZipf(0, 1.0), 0u);
  EXPECT_EQ(rng.NextZipf(1, 1.0), 0u);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(rng.NextZipf(100, 1.0), 100u);
  }
}

TEST(RngTest, ZipfIsDeterministicForSameSeed) {
  Xoshiro256 a(27), b(27);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.NextZipf(1000, 0.99), b.NextZipf(1000, 0.99));
  }
}

TEST(RngTest, ZipfSkewConcentratesOnLowRanks) {
  // theta = 1 over 1000 ranks: P(0) = 1/H(1000) ~ 13.4%, and the top-10
  // ranks together take ~39%. Uniform would give 0.1% / 1%.
  Xoshiro256 rng(29);
  const int draws = 50000;
  int rank0 = 0, top10 = 0;
  for (int i = 0; i < draws; ++i) {
    const std::uint64_t k = rng.NextZipf(1000, 1.0);
    rank0 += (k == 0);
    top10 += (k < 10);
  }
  EXPECT_GT(rank0, draws / 10);       // >10% on the hottest key
  EXPECT_GT(top10, draws / 3);        // >33% on the top-10
  EXPECT_LT(rank0, draws / 5);        // but not degenerate
}

TEST(RngTest, ZipfThetaZeroIsUniform) {
  Xoshiro256 rng(31);
  std::vector<int> buckets(16, 0);
  const int draws = 1 << 16;
  for (int i = 0; i < draws; ++i) buckets[rng.NextZipf(16, 0.0)]++;
  for (int b : buckets) {
    EXPECT_NEAR(b, draws / 16, draws / 16 / 10);
  }
}

TEST(RngTest, ZipfMatchesExactPmfAtModerateN) {
  // Differential check against the exact normalized pmf for n = 8,
  // theta = 1.2: every bucket within 10% relative error over 200k draws.
  const double theta = 1.2;
  const int n = 8;
  double z = 0;
  for (int k = 1; k <= n; ++k) z += std::pow(k, -theta);
  Xoshiro256 rng(33);
  std::vector<int> buckets(n, 0);
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) buckets[rng.NextZipf(n, theta)]++;
  for (int k = 0; k < n; ++k) {
    const double expect = draws * std::pow(k + 1, -theta) / z;
    EXPECT_NEAR(buckets[k], expect, expect * 0.10) << "rank " << k;
  }
}

TEST(RngTest, UniformityChiSquaredSmoke) {
  // 16 buckets over 64k draws: each bucket should be within 5% of expected.
  Xoshiro256 rng(17);
  std::vector<int> buckets(16, 0);
  const int draws = 1 << 16;
  for (int i = 0; i < draws; ++i) buckets[rng.NextBelow(16)]++;
  for (int b : buckets) {
    EXPECT_NEAR(b, draws / 16, draws / 16 / 10);
  }
}

// ---------------------------------------------------------------- stats

TEST(RunningStatTest, MeanVarianceMinMax) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(LatencySampleTest, ExactPercentiles) {
  LatencySample s;
  for (PicoTime t = 1; t <= 1000; ++t) s.Add(t);
  EXPECT_EQ(s.Median(), 500u);
  EXPECT_EQ(s.Tail(), 999u);  // 99.9th of 1..1000 by nearest rank
  EXPECT_EQ(s.Min(), 1u);
  EXPECT_EQ(s.Max(), 1000u);
}

TEST(LatencySampleTest, TailSpreadMatchesPaperEquation) {
  // spread = (tail - median) / median  (Eq. 1 in the paper)
  // 998 samples at 100 and 2 at 350: nearest-rank 99.9th of 1000 samples is
  // rank 999, which lands on the first 350.
  LatencySample s;
  for (int i = 0; i < 998; ++i) s.Add(100);
  s.Add(350);
  s.Add(350);
  EXPECT_EQ(s.Median(), 100u);
  EXPECT_EQ(s.Tail(), 350u);
  EXPECT_NEAR(s.TailSpread(), 2.5, 1e-9);
}

TEST(LatencySampleTest, AddAfterQueryResorts) {
  LatencySample s;
  s.Add(10);
  EXPECT_EQ(s.Median(), 10u);
  s.Add(2);
  s.Add(30);
  EXPECT_EQ(s.Median(), 10u);
  EXPECT_EQ(s.Max(), 30u);
}

TEST(HistogramTest, BucketsPartitionTheLine) {
  Histogram h({10.0, 20.0, 30.0});
  h.Add(5);    // bucket 0
  h.Add(10);   // bucket 1 ([10,20))
  h.Add(19.9); // bucket 1
  h.Add(25);   // bucket 2
  h.Add(1000); // bucket 3 (overflow)
  EXPECT_EQ(h.BucketCount(), 4u);
  EXPECT_EQ(h.BucketValue(0), 1u);
  EXPECT_EQ(h.BucketValue(1), 2u);
  EXPECT_EQ(h.BucketValue(2), 1u);
  EXPECT_EQ(h.BucketValue(3), 1u);
  EXPECT_EQ(h.TotalCount(), 5u);
}

TEST(ThroughputHelpersTest, BandwidthAndRate) {
  // 1000 bytes in 1 us = 1e9 B/s = 1000 MB/s.
  EXPECT_NEAR(MegabytesPerSecond(1000, Microseconds(1.0)), 1000.0, 1e-6);
  EXPECT_NEAR(MessagesPerSecond(5, Microseconds(1.0)), 5e6, 1e-3);
  EXPECT_EQ(MegabytesPerSecond(1000, 0), 0.0);
}

// ---------------------------------------------------------------- byte io

TEST(ByteIoTest, RoundTripIntegers) {
  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  w.U8(0xAB);
  w.U16(0xBEEF);
  w.U32(0xDEADBEEF);
  w.U64(0x0123456789ABCDEFull);
  ByteReader r(buf);
  EXPECT_EQ(r.U8().value(), 0xAB);
  EXPECT_EQ(r.U16().value(), 0xBEEF);
  EXPECT_EQ(r.U32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64().value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.Remaining(), 0u);
}

TEST(ByteIoTest, RoundTripString) {
  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  w.LengthPrefixedString("two-chains");
  w.LengthPrefixedString("");
  ByteReader r(buf);
  EXPECT_EQ(r.LengthPrefixedString().value(), "two-chains");
  EXPECT_EQ(r.LengthPrefixedString().value(), "");
}

TEST(ByteIoTest, TruncationIsDataLoss) {
  std::vector<std::uint8_t> buf = {0x01, 0x02};
  ByteReader r(buf);
  auto v = r.U32();
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kDataLoss);
}

TEST(ByteIoTest, TruncatedStringIsDataLoss) {
  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  w.U32(100);  // claims 100 bytes follow; none do
  ByteReader r(buf);
  EXPECT_EQ(r.LengthPrefixedString().status().code(), StatusCode::kDataLoss);
}

TEST(ByteIoTest, AlignToPads) {
  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  w.U8(1);
  w.AlignTo(8);
  EXPECT_EQ(buf.size(), 8u);
  w.AlignTo(8);
  EXPECT_EQ(buf.size(), 8u);  // already aligned
}

TEST(ByteIoTest, PatchBackfillsPlaceholder) {
  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  w.U32(0);  // placeholder
  w.U32(7);
  w.PatchU32(0, 0xCAFEBABE);
  ByteReader r(buf);
  EXPECT_EQ(r.U32().value(), 0xCAFEBABEu);
  EXPECT_EQ(r.U32().value(), 7u);
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("x=%d s=%s", 42, "hi"), "x=42 s=hi");
  EXPECT_EQ(StrFormat("%05.1f", 2.25), "002.2");
}

}  // namespace
}  // namespace twochains
