// Determinism regression suite for the multi-core reactive receiver: the
// same seeded incast workload, run twice per receiver-pool size, must
// produce byte-identical stats tables, per-core counters, and event
// counts. Concurrent completions are ordered by the engine's (time, seq)
// key — never by host-side iteration order — and this suite is the pin
// that holds that property down as the receiver pipeline evolves. A
// second suite pins the same property for *steal-enabled* pools under a
// skewed load, where claim handoffs add scheduling races that must stay
// seed-reproducible — and additionally checks the config is not silently
// dead: when steals occur, the observable state must differ from the
// steal-off run.
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "benchlib/workloads.hpp"
#include "common/pump.hpp"
#include "common/rng.hpp"
#include "common/strfmt.hpp"
#include "core/fabric.hpp"
#include "pool_harness.hpp"

namespace twochains::core {
namespace {

constexpr std::uint32_t kSenders = 4;
constexpr std::uint32_t kMessagesPerSender = 120;
constexpr std::uint64_t kSeed = 0xD37E12;

FabricOptions PoolOptions(std::uint32_t receiver_cores) {
  FabricOptions options;
  options.hosts = kSenders + 1;
  options.topology = Topology::kStar;
  options.hub = 0;
  options.runtime.banks = 4;
  options.runtime.mailboxes_per_bank = 4;
  options.runtime.mailbox_slot_bytes = KiB(64);
  // The hub only receives; give it room for the widest pool and keep its
  // (unused) sender core off the pool.
  options.host_overrides.assign(options.hosts, options.host);
  options.host_overrides[0].cache.cores = 5;
  options.runtime_overrides.assign(options.hosts, options.runtime);
  options.runtime_overrides[0].receiver_cores = receiver_cores;
  options.runtime_overrides[0].sender_core = 4;
  return options;
}

/// Drives a seeded mixed workload (injected ssum/iput/nop plus local
/// ssum, varying payloads) from every spoke into the hub; returns once
/// the engine drains.
void RunSeededIncast(Fabric& fabric) {
  struct Sender {
    PeerId to_hub = kInvalidPeer;
    std::uint32_t sent = 0;
    Xoshiro256 rng{0};
  };
  auto senders = std::make_shared<std::vector<Sender>>(kSenders);
  for (std::uint32_t s = 0; s < kSenders; ++s) {
    auto peer = fabric.PeerIdFor(s + 1, 0);
    ASSERT_TRUE(peer.ok());
    (*senders)[s].to_hub = *peer;
    (*senders)[s].rng = Xoshiro256(kSeed + 7919 * s);
  }

  PumpLoop<std::uint32_t> pump;
  pump.Set([senders, &fabric, resume = pump.Handle()](std::uint32_t s) {
    Sender& sender = (*senders)[s];
    Runtime& rt = fabric.runtime(s + 1);
    if (sender.sent >= kMessagesPerSender) return;
    if (!rt.HasFreeSlot(sender.to_hub)) {
      rt.NotifyWhenSlotFree(sender.to_hub, [resume, s] { resume(s); });
      return;
    }
    const std::uint64_t kind = sender.rng.NextBelow(4);
    const std::string jam = kind == 1 ? "iput" : kind == 2 ? "nop" : "ssum";
    const Invoke mode = kind == 3 ? Invoke::kLocal : Invoke::kInjected;
    const std::vector<std::uint64_t> args = {sender.rng.NextBelow(128)};
    std::vector<std::uint8_t> usr(8 * (1 + sender.rng.NextBelow(16)));
    for (std::size_t i = 0; i < usr.size(); i += 8) {
      const std::uint64_t v = sender.rng.Next();
      std::memcpy(usr.data() + i, &v, 8);
    }
    auto receipt = rt.Send(sender.to_hub, jam, mode, args, usr);
    ASSERT_TRUE(receipt.ok()) << receipt.status();
    ++sender.sent;
    // Homed to the spoke's lane: the pump mutates that spoke's runtime
    // state, which must only ever be touched from its own lane.
    fabric.engine().ScheduleAfterOn(s + 1, receipt->sender_cost,
                                    [resume, s] { resume(s); }, "det.send");
  });
  for (std::uint32_t s = 0; s < kSenders; ++s) pump(s);
  fabric.Run();
}

/// Serializes everything an observer can see — engine counters, every
/// runtime's stats table, and the hub's per-core counters — into one
/// string for byte-exact comparison.
std::string Fingerprint(Fabric& fabric) {
  std::string out = StrFormat("events=%llu now=%llu\n",
                              static_cast<unsigned long long>(
                                  fabric.engine().EventsProcessed()),
                              static_cast<unsigned long long>(
                                  fabric.engine().Now()));
  for (std::uint32_t h = 0; h < fabric.size(); ++h) {
    const RuntimeStats& s = fabric.runtime(h).stats();
    out += StrFormat(
        "host%u sent=%llu exec=%llu deliv=%llu bytes=%llu flags=%llu "
        "stalls=%llu rej=%llu waits=%llu remote=%llu remotecy=%llu "
        "biased=%llu\n",
        h, static_cast<unsigned long long>(s.messages_sent),
        static_cast<unsigned long long>(s.messages_executed),
        static_cast<unsigned long long>(s.messages_delivered),
        static_cast<unsigned long long>(s.bytes_sent),
        static_cast<unsigned long long>(s.bank_flags_returned),
        static_cast<unsigned long long>(s.send_stalls),
        static_cast<unsigned long long>(s.security_rejections),
        static_cast<unsigned long long>(s.wait_episodes),
        static_cast<unsigned long long>(s.frames_drained_remote),
        static_cast<unsigned long long>(s.remote_drain_cycles),
        static_cast<unsigned long long>(s.biased_sends));
    for (std::size_t p = 0; p < s.per_peer.size(); ++p) {
      const PeerStats& ps = s.per_peer[p];
      out += StrFormat(
          "  peer%zu sent=%llu deliv=%llu exec=%llu bytes=%llu "
          "stalls=%llu flags=%llu\n",
          p, static_cast<unsigned long long>(ps.messages_sent),
          static_cast<unsigned long long>(ps.messages_delivered),
          static_cast<unsigned long long>(ps.messages_executed),
          static_cast<unsigned long long>(ps.bytes_sent),
          static_cast<unsigned long long>(ps.send_stalls),
          static_cast<unsigned long long>(ps.bank_flags_returned));
    }
  }
  Runtime& hub = fabric.runtime(0);
  for (std::uint32_t c = 0; c < hub.receiver_pool_size(); ++c) {
    const cpu::PerfCounters& pc = hub.receiver_cpu(c).counters();
    const cpu::WaitStats& ws = hub.receiver_wait_stats(c);
    out += StrFormat(
        "core%u exec=%llu wait=%llu pack=%llu mem=%llu instr=%llu "
        "msgs=%llu episodes=%llu idle=%llu detect=%llu burned=%llu\n",
        c,
        static_cast<unsigned long long>(pc.Of(cpu::CycleClass::kExecute)),
        static_cast<unsigned long long>(pc.Of(cpu::CycleClass::kWait)),
        static_cast<unsigned long long>(pc.Of(cpu::CycleClass::kPack)),
        static_cast<unsigned long long>(pc.Of(cpu::CycleClass::kMemory)),
        static_cast<unsigned long long>(pc.instructions),
        static_cast<unsigned long long>(pc.messages_handled),
        static_cast<unsigned long long>(ws.episodes),
        static_cast<unsigned long long>(ws.idle_picos),
        static_cast<unsigned long long>(ws.detection_picos),
        static_cast<unsigned long long>(ws.cycles_burned));
  }
  return out;
}

/// One full run: fresh fabric, seeded workload, drained engine.
std::string RunOnceWith(const FabricOptions& options,
                        std::uint64_t* executed_out = nullptr) {
  Fabric fabric(options);
  auto package = bench::BuildBenchPackage();
  if (!package.ok()) {
    ADD_FAILURE() << "package build failed: " << package.status();
    return "<package build failed>";
  }
  if (const Status st = fabric.LoadPackage(*package); !st.ok()) {
    ADD_FAILURE() << "package load failed: " << st;
    return "<package load failed>";
  }
  RunSeededIncast(fabric);
  // Drained: no frame may still sit in a mailbox, and every bank flag
  // must have come home.
  for (std::uint32_t h = 0; h < fabric.size(); ++h) {
    EXPECT_EQ(fabric.runtime(h).InFlightFrames(), 0u) << "host " << h;
    for (PeerId p = 0; p < fabric.runtime(h).peer_count(); ++p) {
      EXPECT_EQ(fabric.runtime(h).ClosedSendBanks(p), 0u)
          << "host " << h << " peer " << p;
    }
  }
  if (executed_out != nullptr) {
    *executed_out = fabric.runtime(0).stats().messages_executed;
  }
  return Fingerprint(fabric);
}

std::string RunOnce(std::uint32_t receiver_cores,
                    std::uint64_t* executed_out = nullptr) {
  return RunOnceWith(PoolOptions(receiver_cores), executed_out);
}

class DeterminismTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DeterminismTest, RepeatedSeededRunsAreByteIdentical) {
  const std::uint32_t cores = GetParam();
  std::uint64_t executed = 0;
  const std::string first = RunOnce(cores, &executed);
  const std::string second = RunOnce(cores);
  EXPECT_EQ(first, second) << "receiver_cores=" << cores;
  EXPECT_EQ(executed,
            static_cast<std::uint64_t>(kSenders) * kMessagesPerSender);
}

// Note: asserting executed == kSenders * kMessagesPerSender per pool size
// above already pins that every pool width executes the same work — the
// pool changes *when* frames execute, never *whether* they do.
INSTANTIATE_TEST_SUITE_P(PoolSizes, DeterminismTest,
                         ::testing::Values(1u, 2u, 4u));

// ------------------------------------------------------ stealing pools

/// A skewed 5-spoke incast that reliably triggers steals on pools of 2
/// and 4: single-bank slices pin each spoke to one affinity core
/// (peer % pool), spokes 0 and 4 both land on core 0 and carry most of
/// the load, so that core always claims a *second* backlogged bank a
/// sibling can take over (a lone in-flight bank is not stealable work —
/// in-bank ordering already serializes it).
pooltest::PoolTopology StealTopology(std::uint32_t receiver_cores,
                                     bool steal_on) {
  pooltest::PoolTopology topo;
  topo.spokes = 5;
  topo.receiver_cores = receiver_cores;
  topo.banks = 1;
  topo.mailboxes_per_bank = 4;
  topo.messages_per_spoke = {160, 16, 16, 16, 48};
  topo.steal.enabled = steal_on;
  // Single-bank senders keep the hub's ready backlog shallow (flow
  // control caps it near 2), so the trigger sits at 2-fresh / 1-armed.
  topo.steal.threshold = 1;
  topo.steal.hysteresis = 1;
  topo.seed = kSeed;
  return topo;
}

class StealDeterminismTest
    : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(StealDeterminismTest, StealEnabledRunsAreByteIdenticalAndNotDead) {
  const std::uint32_t cores = GetParam();
  auto package = bench::BuildBenchPackage();
  ASSERT_TRUE(package.ok()) << package.status();

  const pooltest::PoolTopology topo = StealTopology(cores, true);
  const pooltest::PoolRunResult first = pooltest::RunPoolIncast(topo,
                                                                *package);
  const pooltest::PoolRunResult second = pooltest::RunPoolIncast(topo,
                                                                 *package);
  pooltest::ExpectPoolInvariants(topo, first);
  EXPECT_EQ(first.fingerprint, second.fingerprint)
      << "steal-enabled pool of " << cores << " not reproducible";

  // Dead-config guard: the skew must actually provoke steals, and a run
  // with stealing off must leave a *different* observable state — if the
  // toggle stopped reaching the scheduler, both expectations fail.
  const pooltest::PoolTopology off = StealTopology(cores, false);
  const pooltest::PoolRunResult base = pooltest::RunPoolIncast(off,
                                                               *package);
  pooltest::ExpectPoolInvariants(off, base);
  EXPECT_GT(first.hub.steals, 0u);
  EXPECT_NE(first.fingerprint, base.fingerprint);
  // Stealing reshuffles *where* frames run, never whether they run.
  EXPECT_EQ(first.executed, base.executed);
}

INSTANTIATE_TEST_SUITE_P(StealPoolSizes, StealDeterminismTest,
                         ::testing::Values(2u, 4u));

// ---------------------------------------------------- lane scale-out

/// Lane-sharded execution must be invisible to every observer: the same
/// topology run with executor lanes {2, 4} has to reproduce the scalar
/// (lanes=1) fingerprint byte for byte, across pool widths and with the
/// steal scheduler both off and on.
class LaneDeterminismTest
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t, bool>> {};

TEST_P(LaneDeterminismTest, LanedRunsMatchTheSingleLaneFingerprint) {
  const auto [lanes, cores, steal_on] = GetParam();
  auto package = bench::BuildBenchPackage();
  ASSERT_TRUE(package.ok()) << package.status();

  pooltest::PoolTopology topo = StealTopology(cores, steal_on);
  const pooltest::PoolRunResult scalar =
      pooltest::RunPoolIncast(topo, *package);
  topo.lanes = lanes;
  const pooltest::PoolRunResult laned =
      pooltest::RunPoolIncast(topo, *package);
  pooltest::ExpectPoolInvariants(topo, laned);
  EXPECT_EQ(scalar.fingerprint, laned.fingerprint)
      << "lanes=" << lanes << " cores=" << cores << " steal=" << steal_on;
  EXPECT_EQ(scalar.executed, laned.executed);
}

INSTANTIATE_TEST_SUITE_P(
    LaneGrid, LaneDeterminismTest,
    ::testing::Combine(::testing::Values(2u, 4u), ::testing::Values(1u, 4u),
                       ::testing::Bool()));

// ------------------------------------------------ switched-tree fabric

/// The skewed steal load pushed through a 2-tier oversubscribed tree with
/// adaptive banks on: switches home on their own lanes past the hosts,
/// so the laned executor must reproduce the scalar fingerprint byte for
/// byte — switch counters and ECN ledgers included.
pooltest::PoolTopology SwitchTopology(std::uint32_t receiver_cores,
                                      bool steal_on) {
  pooltest::PoolTopology topo = StealTopology(receiver_cores, steal_on);
  topo.topology = Topology::kTree;
  topo.tree.arity = 2;
  topo.tree.tiers = 2;
  topo.tree.oversub = 2.0;
  topo.switches.buffer_bytes = KiB(8);
  topo.switches.ecn_threshold_bytes = KiB(2);
  topo.adaptive.enabled = true;
  return topo;
}

class SwitchLaneDeterminismTest
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t, bool>> {};

TEST_P(SwitchLaneDeterminismTest, LanedTreeRunsMatchTheScalarFingerprint) {
  const auto [lanes, cores, steal_on] = GetParam();
  auto package = bench::BuildBenchPackage();
  ASSERT_TRUE(package.ok()) << package.status();

  pooltest::PoolTopology topo = SwitchTopology(cores, steal_on);
  const pooltest::PoolRunResult scalar =
      pooltest::RunPoolIncast(topo, *package);
  topo.lanes = lanes;
  const pooltest::PoolRunResult laned =
      pooltest::RunPoolIncast(topo, *package);
  pooltest::ExpectPoolInvariants(topo, laned);
  EXPECT_EQ(scalar.fingerprint, laned.fingerprint)
      << "lanes=" << lanes << " cores=" << cores << " steal=" << steal_on;
  EXPECT_EQ(scalar.executed, laned.executed);
  // The congestion paths must actually be exercised under this shape, or
  // the grid pins nothing interesting.
  EXPECT_GT(scalar.switch_frames_forwarded, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    SwitchGrid, SwitchLaneDeterminismTest,
    ::testing::Combine(::testing::Values(2u, 4u), ::testing::Values(1u, 4u),
                       ::testing::Bool()));

/// Everything an observer can see minus what the transport is *allowed*
/// to change: the engine's event count (switch hops add events) and the
/// switch counter lines themselves.
std::string LogicalFingerprint(const std::string& fingerprint) {
  std::string out;
  std::size_t pos = 0;
  bool first = true;
  while (pos < fingerprint.size()) {
    std::size_t end = fingerprint.find('\n', pos);
    if (end == std::string::npos) end = fingerprint.size();
    const std::string line = fingerprint.substr(pos, end - pos);
    pos = end + 1;
    if (first) {
      first = false;  // events=... now=...
      continue;
    }
    if (line.rfind("sw", 0) == 0) continue;
    out += line;
    out += '\n';
  }
  return out;
}

/// A non-blocking (oversub 1:1) tree whose per-segment latencies sum to
/// the direct cable's 250 ns, with an ideal zero-latency forwarding
/// pipeline, is logically invisible: the 2-host run delivers every frame
/// at the direct-cabled instant, so the entire observable state — stats
/// tables, per-core counters, drain time — matches the kStar run of the
/// same logical traffic. Only the engine's event count (and the switch
/// counters) betray the extra hops.
TEST(SwitchTransparencyTest, UnitOversubTreeMatchesDirectCabledRun) {
  pooltest::PoolTopology direct;
  direct.spokes = 1;
  direct.receiver_cores = 2;
  direct.banks = 2;
  direct.mailboxes_per_bank = 4;
  direct.messages_per_spoke = {200};
  direct.seed = kSeed;

  pooltest::PoolTopology tree = direct;
  tree.topology = Topology::kTree;
  tree.tree.arity = 1;  // host -> ToR -> spine -> ToR -> host: 4 segments
  tree.tree.tiers = 2;
  tree.tree.oversub = 1.0;
  tree.switches.forward_latency_ns = 0.0;
  tree.switches.wire_latency_ns = 62.5;  // 4 x 62.5 = the 250 ns cable
  tree.switches.buffer_bytes = MiB(1);
  tree.switches.ecn_threshold_bytes = MiB(1);  // one sender never marks

  auto package = bench::BuildBenchPackage();
  ASSERT_TRUE(package.ok()) << package.status();
  const pooltest::PoolRunResult d = pooltest::RunPoolIncast(direct, *package);
  const pooltest::PoolRunResult t = pooltest::RunPoolIncast(tree, *package);
  pooltest::ExpectPoolInvariants(direct, d);
  pooltest::ExpectPoolInvariants(tree, t);
  EXPECT_EQ(t.drained_at, d.drained_at);
  EXPECT_EQ(LogicalFingerprint(t.fingerprint),
            LogicalFingerprint(d.fingerprint));
  EXPECT_GT(t.switch_frames_forwarded, 0u);
  EXPECT_EQ(t.switch_frames_marked, 0u);
}

// ------------------------------------------------------- NUMA domains

/// The pool fabric on a 2-domain hub (cores {0,1,2} domain 0, {3,4}
/// domain 1 — the 4-wide pool spans both), domain-aware placement on.
FabricOptions NumaPoolOptions(std::uint32_t receiver_cores, bool steal) {
  FabricOptions options = PoolOptions(receiver_cores);
  options.host_overrides[0].cache.domains = 2;
  if (steal) {
    StealConfig config;
    config.enabled = true;
    config.threshold = 1;
    config.hysteresis = 1;
    options.runtime_overrides[0].steal = config;
  }
  return options;
}

using NumaParam = std::tuple<std::uint32_t, bool>;

class NumaDeterminismTest : public ::testing::TestWithParam<NumaParam> {};

TEST_P(NumaDeterminismTest, DomainsEnabledRunsAreByteIdentical) {
  const auto [cores, steal] = GetParam();
  std::uint64_t executed = 0;
  const std::string first =
      RunOnceWith(NumaPoolOptions(cores, steal), &executed);
  const std::string second = RunOnceWith(NumaPoolOptions(cores, steal));
  EXPECT_EQ(first, second)
      << "domains=2 receiver_cores=" << cores << " steal=" << steal;
  EXPECT_EQ(executed,
            static_cast<std::uint64_t>(kSenders) * kMessagesPerSender);
}

INSTANTIATE_TEST_SUITE_P(
    NumaPools, NumaDeterminismTest,
    ::testing::Combine(::testing::Values(1u, 2u, 4u),
                       ::testing::Bool()));

// ---------------------------------------------------- jam cache on/off

/// The pool incast with the receiver-side jam cache armed (or not) on a
/// steal-enabled pool: the cache adds NAK/resend scheduling races that
/// must stay seed-reproducible, and the fingerprint now carries the
/// cache ledger, so a rerun comparison covers hit/miss ordering too.
pooltest::PoolTopology JamTopology(std::uint32_t receiver_cores,
                                   bool cache_on) {
  pooltest::PoolTopology topo;
  topo.spokes = 4;
  topo.receiver_cores = receiver_cores;
  topo.banks = 2;
  topo.mailboxes_per_bank = 4;
  topo.messages_per_spoke = {80, 80, 80, 80};
  topo.steal.enabled = receiver_cores > 1;
  topo.steal.threshold = 1;
  topo.steal.hysteresis = 1;
  topo.jam_cache.enabled = cache_on;
  topo.jam_cache.capacity = 4;
  topo.seed = kSeed;
  return topo;
}

using JamParam = std::tuple<std::uint32_t, bool>;

class JamCacheDeterminismTest : public ::testing::TestWithParam<JamParam> {};

TEST_P(JamCacheDeterminismTest, CacheRunsAreByteIdenticalAndNotDead) {
  const auto [cores, cache_on] = GetParam();
  auto package = bench::BuildBenchPackage();
  ASSERT_TRUE(package.ok()) << package.status();

  const pooltest::PoolTopology topo = JamTopology(cores, cache_on);
  const pooltest::PoolRunResult first = pooltest::RunPoolIncast(topo,
                                                                *package);
  const pooltest::PoolRunResult second = pooltest::RunPoolIncast(topo,
                                                                 *package);
  pooltest::ExpectPoolInvariants(topo, first);
  EXPECT_EQ(first.fingerprint, second.fingerprint)
      << "jam_cache=" << cache_on << " pool of " << cores
      << " not reproducible";

  if (cache_on) {
    // Dead-config guard: the repeated jams must actually ride the fast
    // path, and the observable state must differ from a cache-off run.
    EXPECT_GT(first.spoke_by_handle_sends, 0u);
    EXPECT_GT(first.hub_jam.hits, 0u);
    const pooltest::PoolTopology off = JamTopology(cores, false);
    const pooltest::PoolRunResult base = pooltest::RunPoolIncast(off,
                                                                 *package);
    pooltest::ExpectPoolInvariants(off, base);
    EXPECT_NE(first.fingerprint, base.fingerprint);
    // The cache changes what travels, never whether work executes.
    EXPECT_EQ(first.executed, base.executed);
  }
}

INSTANTIATE_TEST_SUITE_P(
    JamCachePools, JamCacheDeterminismTest,
    ::testing::Combine(::testing::Values(1u, 2u, 4u),
                       ::testing::Bool()));

}  // namespace
}  // namespace twochains::core
