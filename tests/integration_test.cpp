// Whole-stack property and matrix tests: the full compile→link→inject→
// execute pipeline exercised across configuration combinations and
// randomized workloads, with functional results checked against host-side
// evaluation.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <optional>
#include <vector>

#include "benchlib/perftest.hpp"
#include "benchlib/stress.hpp"
#include "benchlib/workloads.hpp"
#include "common/pump.hpp"
#include "common/rng.hpp"
#include "core/two_chains.hpp"

namespace twochains::core {
namespace {

std::unique_ptr<Testbed> MakeLoadedTestbed(TestbedOptions options) {
  options.runtime.banks = 2;
  options.runtime.mailboxes_per_bank = 4;
  auto testbed = std::make_unique<Testbed>(options);
  auto package = bench::BuildBenchPackage();
  EXPECT_TRUE(package.ok()) << package.status();
  EXPECT_TRUE(testbed->LoadPackage(*package).ok());
  return testbed;
}

StatusOr<ReceivedMessage> SendAndRun(Testbed& testbed, const std::string& jam,
                                     Invoke mode,
                                     std::vector<std::uint64_t> args,
                                     std::vector<std::uint8_t> usr) {
  std::optional<ReceivedMessage> received;
  testbed.runtime(1).SetOnExecuted(
      [&](const ReceivedMessage& msg) { received = msg; });
  TC_ASSIGN_OR_RETURN(const SendReceipt receipt,
                      testbed.runtime(0).Send(jam, mode, args, usr));
  (void)receipt;
  testbed.RunUntil([&] { return received.has_value(); });
  testbed.runtime(1).SetOnExecuted(nullptr);
  if (!received.has_value()) return Internal("never executed");
  return *received;
}

// ------------------------------------------------- configuration matrix

struct MatrixCase {
  bool stash;
  cpu::WaitMode wait;
  Invoke invoke;
  bool hardened;
};

class ConfigMatrixTest : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(ConfigMatrixTest, SsumComputesCorrectlyInEveryConfiguration) {
  const MatrixCase param = GetParam();
  TestbedOptions options;
  options.nic.stash_to_llc = param.stash;
  options.runtime.wait.mode = param.wait;
  if (param.hardened) {
    options.runtime.security = SecurityPolicy::Hardened();
  }
  auto testbed = MakeLoadedTestbed(options);

  Xoshiro256 rng(7);
  std::vector<std::uint8_t> usr(16 * 8);
  std::uint64_t expect = 0;
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t v = rng.NextBelow(1000);
    std::memcpy(usr.data() + 8 * i, &v, 8);
    expect += v;
  }
  auto msg = SendAndRun(*testbed, "ssum", param.invoke, {}, usr);
  ASSERT_TRUE(msg.ok()) << msg.status();
  EXPECT_TRUE(msg->executed);
  EXPECT_EQ(msg->return_value, expect);
  EXPECT_EQ(testbed->runtime(1).PeekU64("sum_results", 0).value(), expect);
}

std::string MatrixName(const ::testing::TestParamInfo<MatrixCase>& info) {
  const auto& p = info.param;
  std::string name;
  name += p.stash ? "Stash" : "Dram";
  name += p.wait == cpu::WaitMode::kPoll ? "Poll" : "Wfe";
  name += p.invoke == Invoke::kInjected ? "Injected" : "Local";
  name += p.hardened ? "Hardened" : "Default";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, ConfigMatrixTest,
    ::testing::Values(
        MatrixCase{true, cpu::WaitMode::kPoll, Invoke::kInjected, false},
        MatrixCase{true, cpu::WaitMode::kPoll, Invoke::kLocal, false},
        MatrixCase{true, cpu::WaitMode::kWfe, Invoke::kInjected, false},
        MatrixCase{true, cpu::WaitMode::kWfe, Invoke::kLocal, false},
        MatrixCase{false, cpu::WaitMode::kPoll, Invoke::kInjected, false},
        MatrixCase{false, cpu::WaitMode::kWfe, Invoke::kInjected, false},
        MatrixCase{true, cpu::WaitMode::kPoll, Invoke::kInjected, true},
        MatrixCase{false, cpu::WaitMode::kWfe, Invoke::kInjected, true}),
    MatrixName);

// --------------------------------------------- randomized differentials

TEST(RandomizedDifferentialTest, SsumMatchesHostOverRandomShapes) {
  auto testbed = MakeLoadedTestbed(TestbedOptions{});
  Xoshiro256 rng(99);
  for (int round = 0; round < 12; ++round) {
    const std::uint64_t n = 1 + rng.NextBelow(96);
    std::vector<std::uint8_t> usr(n * 8);
    std::uint64_t expect = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t v = rng.Next() & 0xFFFFFF;
      std::memcpy(usr.data() + 8 * i, &v, 8);
      expect += v;
    }
    const Invoke mode =
        rng.NextBernoulli(0.5) ? Invoke::kInjected : Invoke::kLocal;
    auto msg = SendAndRun(*testbed, "ssum", mode, {}, usr);
    ASSERT_TRUE(msg.ok()) << msg.status() << " round " << round;
    EXPECT_EQ(msg->return_value, expect) << "round " << round;
  }
}

TEST(RandomizedDifferentialTest, IputMirrorsHostHashTable) {
  // Replay the jam's hash-table semantics host-side and compare offsets.
  auto testbed = MakeLoadedTestbed(TestbedOptions{});
  Xoshiro256 rng(1234);
  struct Entry {
    long key;
    std::uint64_t offset;
  };
  std::vector<Entry> host_table;
  std::uint64_t next_offset = 0;
  const std::uint64_t usr_bytes = 32;

  for (int round = 0; round < 20; ++round) {
    const long key = static_cast<long>(rng.NextBelow(12));  // force reuse
    std::vector<std::uint8_t> usr(usr_bytes,
                                  static_cast<std::uint8_t>(round));
    auto msg = SendAndRun(*testbed, "iput", Invoke::kInjected,
                          {static_cast<std::uint64_t>(key)}, usr);
    ASSERT_TRUE(msg.ok()) << msg.status();

    std::uint64_t expect_offset;
    const auto found =
        std::find_if(host_table.begin(), host_table.end(),
                     [&](const Entry& e) { return e.key == key; });
    if (found != host_table.end()) {
      expect_offset = found->offset;
    } else {
      expect_offset = next_offset;
      host_table.push_back({key, next_offset});
      next_offset += usr_bytes;
    }
    EXPECT_EQ(msg->return_value, expect_offset) << "key " << key;
    // Payload visible at the offset on the receiver.
    std::uint64_t first_word;
    std::memset(&first_word, round, 8);
    EXPECT_EQ(testbed->runtime(1)
                  .PeekU64("ht_heap", msg->return_value / 8)
                  .value(),
              first_word);
  }
}

// --------------------------------------------------- pipeline invariants

TEST(FlowControlInvariantTest, NoFrameIsEverLostOrReordered) {
  // Fire many messages through tiny banks; sequence numbers on the
  // receiver must be gapless and ordered, regardless of stalls.
  auto testbed = MakeLoadedTestbed(TestbedOptions{});
  const int total = 64;
  std::vector<std::uint32_t> sns;
  testbed->runtime(1).SetOnExecuted(
      [&](const ReceivedMessage& msg) { sns.push_back(msg.sn); });
  std::vector<std::uint8_t> usr(8, 1);
  int sent = 0;
  PumpLoop<> pump;
  pump.Set([&, resume = pump.Handle()] {
    while (sent < total) {
      if (!testbed->runtime(0).HasFreeSlot()) {
        testbed->runtime(0).NotifyWhenSlotFree(resume);
        return;
      }
      ASSERT_TRUE(
          testbed->runtime(0).Send("nop", Invoke::kInjected, {}, usr).ok());
      ++sent;
    }
  });
  pump();
  testbed->RunUntil([&] { return sns.size() == total; });
  ASSERT_EQ(sns.size(), static_cast<std::size_t>(total));
  for (int i = 0; i < total; ++i) {
    EXPECT_EQ(sns[static_cast<std::size_t>(i)], static_cast<std::uint32_t>(i + 1));
  }
}

TEST(FlowControlInvariantTest, StressNoiseNeverBreaksCorrectness) {
  // Heavy interference changes timing, never results.
  auto testbed = MakeLoadedTestbed(TestbedOptions{});
  bench::StressConfig stress;
  stress.preempt_probability = 0.2;  // extreme preemption
  bench::ApplyStress(*testbed, stress);
  std::vector<std::uint8_t> usr(64);
  std::uint64_t expect = 0;
  for (std::uint64_t i = 0; i < 8; ++i) {
    std::memcpy(usr.data() + 8 * i, &i, 8);
    expect += i;
  }
  for (int round = 0; round < 5; ++round) {
    auto msg = SendAndRun(*testbed, "ssum", Invoke::kInjected, {}, usr);
    ASSERT_TRUE(msg.ok()) << msg.status();
    EXPECT_EQ(msg->return_value, expect);
  }
}

TEST(DeterminismTest, IdenticalRunsProduceIdenticalTimings) {
  auto run_once = [] {
    auto testbed = MakeLoadedTestbed(TestbedOptions{});
    std::vector<std::uint8_t> usr(128, 3);
    auto msg = SendAndRun(*testbed, "iput", Invoke::kInjected, {5}, usr);
    EXPECT_TRUE(msg.ok());
    return std::make_pair(msg->delivered_at, msg->completed_at);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(DeterminismTest, StressedRunsAreSeedDeterministic) {
  auto run_once = [] {
    auto testbed = MakeLoadedTestbed(TestbedOptions{});
    bench::ApplyStress(*testbed, bench::StressConfig{});
    std::vector<std::uint8_t> usr(64, 1);
    auto msg = SendAndRun(*testbed, "ssum", Invoke::kInjected, {}, usr);
    EXPECT_TRUE(msg.ok());
    return msg->completed_at;
  };
  EXPECT_EQ(run_once(), run_once());
}

// --------------------------------------------------- perftest harnesses

TEST(PerftestTest, PingPongProducesStableSamples) {
  auto testbed = MakeLoadedTestbed(TestbedOptions{});
  bench::AmConfig config;
  config.jam = "nop";
  config.mode = Invoke::kInjected;
  config.usr_bytes = 16;
  config.warmup = 20;
  config.iterations = 100;
  auto result = bench::RunAmPingPong(*testbed, config);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->one_way.count(), 100u);
  EXPECT_GT(result->one_way.Median(), 0u);
  // Steady-state ping-pong on a quiet deterministic testbed: tight spread.
  EXPECT_LT(result->one_way.TailSpread(), 0.05);
  EXPECT_GT(result->frame_len, 0u);
}

TEST(PerftestTest, InjectionRateBeatsPingPongThroughput) {
  // Pipelining through banks must outperform one-at-a-time ping-pong.
  auto bed1 = MakeLoadedTestbed(TestbedOptions{});
  bench::AmConfig config;
  config.jam = "nop";
  config.mode = Invoke::kInjected;
  config.usr_bytes = 16;
  config.warmup = 20;
  config.iterations = 200;
  auto pp = bench::RunAmPingPong(*bed1, config);
  ASSERT_TRUE(pp.ok());
  const double pingpong_rate =
      1e12 / static_cast<double>(2 * pp->one_way.Median());

  auto bed2 = MakeLoadedTestbed(TestbedOptions{});
  auto rate = bench::RunAmInjectionRate(*bed2, config);
  ASSERT_TRUE(rate.ok()) << rate.status();
  EXPECT_GT(rate->messages_per_second, pingpong_rate * 2);
}

TEST(PerftestTest, RawPutHarnessesWork) {
  auto testbed = MakeLoadedTestbed(TestbedOptions{});
  bench::RawPutConfig config;
  config.size = 512;
  config.warmup = 20;
  config.iterations = 100;
  auto pp = bench::RunRawPutPingPong(*testbed, config);
  ASSERT_TRUE(pp.ok()) << pp.status();
  EXPECT_EQ(pp->one_way.count(), 100u);
  auto stream = bench::RunRawPutStream(*testbed, config);
  ASSERT_TRUE(stream.ok()) << stream.status();
  EXPECT_GT(stream->messages_per_second, 0.0);
}

// ------------------------------------------------------ frame properties

TEST(FrameLayoutPropertyTest, RandomSpecsKeepStructuralInvariants) {
  Xoshiro256 rng(4242);
  for (int round = 0; round < 500; ++round) {
    FrameSpec spec;
    spec.injected = rng.NextBernoulli(0.5);
    if (spec.injected) {
      spec.got_slots = static_cast<std::uint32_t>(rng.NextBelow(64));
      spec.code_size = rng.NextBelow(4096) & ~7ull;
    }
    spec.args_size = rng.NextBelow(128);
    spec.usr_size = rng.NextBelow(KiB(64));
    spec.split_code_data = rng.NextBernoulli(0.2);
    const FrameLayout layout = FrameLayout::Compute(spec);

    EXPECT_EQ(layout.frame_len % 64, 0u);
    EXPECT_EQ(layout.sig_off, layout.frame_len - 8);
    EXPECT_GE(layout.args_off, kHeaderBytes);
    EXPECT_GE(layout.usr_off, layout.args_off + spec.args_size);
    EXPECT_GE(layout.sig_off, layout.usr_off + spec.usr_size);
    if (spec.injected) {
      EXPECT_EQ(layout.pre_off, layout.code_off - 16);
      EXPECT_GE(layout.code_off,
                layout.gotp_off + 8ull * spec.got_slots);
      EXPECT_GE(layout.args_off, layout.code_off + spec.code_size);
      if (spec.split_code_data) {
        EXPECT_EQ(layout.args_off % mem::kPageSize, 0u);
      }
    }
  }
}

}  // namespace
}  // namespace twochains::core
