// Shared scaffolding for the receiver-pool scheduler suites
// (determinism_test, steal_test, quiesce_test, switch_test): seeded —
// optionally skewed — incast workloads over a star or switched-tree
// fabric, an observable-state fingerprint for byte-exact rerun
// comparison, and the invariants the work-stealing protocol must
// preserve:
//   * every frame sent is executed exactly once (no lost or double-begun
//     bank heads across a claim handoff);
//   * frames of one bank complete in cursor order (the handoff never lets
//     two cores interleave within a bank);
//   * bank flags return only after a full drain: the hub's returned-flag
//     count equals the banks the senders actually filled, and every flag
//     is accounted to exactly one drainer (owner or thief);
//   * at drain nothing is left in flight, no send bank stays closed, and
//     every stolen claim has reverted to its affinity owner.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "benchlib/workloads.hpp"
#include "common/pump.hpp"
#include "common/rng.hpp"
#include "common/strfmt.hpp"
#include "core/fabric.hpp"

namespace twochains::core::pooltest {

/// One scheduled hotplug event inside a harness run, keyed off the hub's
/// executed-frame count (not simulated time) so the schedule is stable
/// under any timing change and reruns stay byte-identical.
struct QuiesceEvent {
  std::uint32_t pool_index = 0;
  /// QuiesceCore fires right after the hub executes this many frames.
  std::uint64_t after_executed = 1;
  /// ReviveCore fires after this many executed frames (0 = never revive).
  std::uint64_t revive_after = 0;
};

/// One spoke->hub incast shape for the pool scheduler. Everything the run
/// does is derived deterministically from this spec plus the seed.
struct PoolTopology {
  std::uint32_t spokes = 2;
  std::uint32_t receiver_cores = 2;
  std::uint32_t banks = 2;
  std::uint32_t mailboxes_per_bank = 4;
  std::uint64_t mailbox_slot_bytes = KiB(64);
  cpu::WaitMode wait_mode = cpu::WaitMode::kPoll;
  StealConfig steal{};
  /// Messages spoke s (0-based) pushes into the hub — the skew knob.
  std::vector<std::uint32_t> messages_per_spoke;
  /// True = every spoke draws the same jam/payload stream (a genuinely
  /// balanced offered load, for the zero-steals-when-balanced invariant);
  /// false = per-spoke streams (realistic mixed traffic).
  bool identical_streams = false;
  /// Hotplug schedule: pool cores quiesced (and possibly revived)
  /// mid-drain. Events whose precondition fails at fire time (e.g. the
  /// last active core) are counted as refused, not fatal — the randomized
  /// sweep is allowed to draw impossible plans.
  std::vector<QuiesceEvent> quiesce;
  /// Receiver-side jam cache on every host (spokes send by-handle once
  /// the hub holds their content; misses ride the NAK/resend path).
  JamCacheConfig jam_cache{};
  /// kStar = direct cables (the classic harness shape); kTree routes the
  /// same hub-spoke logical traffic through a switched host->ToR->spine
  /// fabric, where frames contend in shared switch buffers and pick up
  /// ECN marks.
  Topology topology = Topology::kStar;
  /// Tree shape and per-switch knobs (kTree only).
  TreeConfig tree{};
  net::SwitchConfig switches{};
  /// ECN-driven AIMD bank flow control, applied on every host.
  AdaptiveBankConfig adaptive{};
  /// Executor lanes for the engine (1 = the scalar reference). Any value
  /// must reproduce the lanes=1 fingerprint byte for byte.
  std::uint32_t lanes = 1;
  std::uint64_t seed = 1;

  std::string Describe() const {
    std::string msgs;
    for (const std::uint32_t m : messages_per_spoke) {
      if (!msgs.empty()) msgs += ",";
      msgs += StrFormat("%u", m);
    }
    std::string plugs;
    for (const QuiesceEvent& q : quiesce) {
      plugs += StrFormat(" q{c%u@%llu r@%llu}", q.pool_index,
                         static_cast<unsigned long long>(q.after_executed),
                         static_cast<unsigned long long>(q.revive_after));
    }
    std::string net;
    if (topology == Topology::kTree) {
      net = StrFormat(
          " tree{arity=%u tiers=%u over=%.1f buf=%llu ecn=%llu}", tree.arity,
          tree.tiers, tree.oversub,
          static_cast<unsigned long long>(switches.buffer_bytes),
          static_cast<unsigned long long>(switches.ecn_threshold_bytes));
    }
    if (adaptive.enabled) {
      net += StrFormat(" aimd{min=%u ai=%u beta=%u}", adaptive.min_banks,
                       adaptive.additive_increase_milli,
                       adaptive.decrease_beta_milli);
    }
    return StrFormat(
        "spokes=%u cores=%u banks=%u mpb=%u lanes=%u wait=%s steal{on=%d "
        "thr=%u hys=%u} jam{on=%d cap=%u}%s msgs=[%s]%s%s seed=%llu",
        spokes, receiver_cores, banks, mailboxes_per_bank, lanes,
        wait_mode == cpu::WaitMode::kPoll ? "poll" : "wfe",
        steal.enabled ? 1 : 0, steal.threshold, steal.hysteresis,
        jam_cache.enabled ? 1 : 0, jam_cache.capacity, net.c_str(),
        msgs.c_str(), identical_streams ? " identical" : "", plugs.c_str(),
        static_cast<unsigned long long>(seed));
  }
};

/// Everything a run exposes for invariant checks and rerun comparison.
struct PoolRunResult {
  std::string fingerprint;
  std::uint64_t sent = 0;
  std::uint64_t executed = 0;
  std::uint64_t duplicate_executions = 0;  ///< (peer, sn) seen twice
  std::uint64_t order_violations = 0;      ///< in-bank completion off-cursor
  std::uint64_t expected_flag_returns = 0; ///< banks the senders filled
  std::uint64_t in_flight_at_drain = 0;
  std::uint32_t closed_send_banks = 0;     ///< summed over spokes, at drain
  std::uint32_t stolen_claims_held = 0;    ///< summed over pool, at drain
  RuntimeStats hub;                        ///< hub stats copy at drain
  /// Frames executed per hub pool member (index = pool index).
  std::vector<std::uint64_t> executed_per_core;
  /// Simulated instant the engine drained (the run's makespan).
  PicoTime drained_at = 0;

  // Hotplug observables.
  std::uint64_t quiesces_applied = 0;      ///< QuiesceCore calls that took
  std::uint64_t quiesces_refused = 0;      ///< e.g. last-active-core plans
  std::uint64_t revives_applied = 0;
  std::uint64_t revives_refused = 0;
  /// Sum of QuiesceCore return values: the stranded backlog each applied
  /// quiesce reported handing over (reconciles against the hub ledger's
  /// frames_drained_during_quiesce).
  std::uint64_t stranded_reported = 0;
  std::uint32_t pending_rehomes_at_drain = 0;
  std::uint32_t active_cores_at_drain = 0;
  /// Banks homed per pool member at drain (index = pool index).
  std::vector<std::uint32_t> banks_homed_at_drain;
  /// Banks still homed to a non-active member at drain (must be zero).
  std::uint32_t banks_homed_dark_at_drain = 0;
  /// Per-core re-shard mirrors summed over the pool.
  std::uint64_t resharded_in_sum = 0;
  std::uint64_t resharded_out_sum = 0;

  // Switched-fabric / ECN observables (all zero on direct-cabled runs).
  std::uint64_t switch_frames_forwarded = 0;  ///< summed over switches
  std::uint64_t switch_frames_marked = 0;
  std::uint64_t switch_frames_dropped = 0;    ///< must stay zero: drop-free
  std::uint64_t switch_backpressure_holds = 0;
  std::uint64_t nic_ecn_marks_delivered = 0;  ///< summed over host NICs
  std::uint64_t ecn_marks_seen_sum = 0;       ///< summed over runtimes
  std::uint64_t ecn_echoes_sent_sum = 0;
  std::uint64_t ecn_echoes_seen_sum = 0;
  std::uint64_t cwnd_increases_sum = 0;
  std::uint64_t cwnd_decreases_sum = 0;
  std::uint64_t adaptive_refusals_sum = 0;
  /// Per-spoke adaptive-window excursion toward the hub (milli-banks).
  std::vector<std::uint64_t> window_min_milli;
  std::vector<std::uint64_t> window_max_milli;

  // Jam-cache observables (all zero when the cache is off).
  JamCacheStats hub_jam;                    ///< hub cache stats at drain
  std::uint64_t spoke_by_handle_sends = 0;  ///< summed over spokes
  std::uint64_t spoke_naks_received = 0;
  std::uint64_t spoke_resends = 0;
  std::uint64_t miss_completions = 0;  ///< hook saw cache_miss frames
  std::uint32_t hub_cache_entries = 0;
  std::uint64_t hub_cache_bytes = 0;
};

inline FabricOptions MakePoolOptions(const PoolTopology& topo) {
  FabricOptions options;
  options.hosts = topo.spokes + 1;
  options.topology = topo.topology;
  options.hub = 0;
  options.tree = topo.tree;
  options.switches = topo.switches;
  options.runtime.adaptive = topo.adaptive;
  options.runtime.banks = topo.banks;
  options.runtime.mailboxes_per_bank = topo.mailboxes_per_bank;
  options.runtime.mailbox_slot_bytes = topo.mailbox_slot_bytes;
  options.runtime.wait.mode = topo.wait_mode;
  // The cache knob applies fabric-wide: spokes need it to *send* by-handle,
  // the hub needs it to install and serve (and to NAK what it lacks).
  options.runtime.jam_cache = topo.jam_cache;
  // Thousands of short fabrics get built per suite; a compact arena keeps
  // per-run construction cheap. The hub's mailbox slices grow with
  // spokes x banks x mailboxes, so that footprint rides on top of the
  // base (libraries + working set) instead of squeezing it.
  options.host.memory_bytes =
      MiB(24) + static_cast<std::uint64_t>(topo.spokes) * topo.banks *
                    topo.mailboxes_per_bank * topo.mailbox_slot_bytes;
  // The hub only receives; give it room for the pool and keep its
  // (unused) sender core off the pool.
  options.host_overrides.assign(options.hosts, options.host);
  options.host_overrides[0].cache.cores =
      std::max(options.host.cache.cores, topo.receiver_cores + 1);
  options.runtime_overrides.assign(options.hosts, options.runtime);
  options.runtime_overrides[0].receiver_cores = topo.receiver_cores;
  options.runtime_overrides[0].sender_core = topo.receiver_cores;
  options.runtime_overrides[0].steal = topo.steal;
  options.engine.lanes = topo.lanes;
  return options;
}

/// Serializes everything an observer can see — engine counters, every
/// runtime's stats table, and the hub's per-core counters including the
/// steal ledger — into one string for byte-exact comparison.
inline std::string PoolFingerprint(Fabric& fabric) {
  std::string out = StrFormat("events=%llu now=%llu\n",
                              static_cast<unsigned long long>(
                                  fabric.engine().EventsProcessed()),
                              static_cast<unsigned long long>(
                                  fabric.engine().Now()));
  for (std::uint32_t h = 0; h < fabric.size(); ++h) {
    const RuntimeStats& s = fabric.runtime(h).stats();
    out += StrFormat(
        "host%u sent=%llu exec=%llu deliv=%llu bytes=%llu flags=%llu "
        "stalls=%llu rej=%llu waits=%llu steals=%llu fstolen=%llu "
        "downer=%llu dstolen=%llu reshard=%llu qdrain=%llu\n",
        h, static_cast<unsigned long long>(s.messages_sent),
        static_cast<unsigned long long>(s.messages_executed),
        static_cast<unsigned long long>(s.messages_delivered),
        static_cast<unsigned long long>(s.bytes_sent),
        static_cast<unsigned long long>(s.bank_flags_returned),
        static_cast<unsigned long long>(s.send_stalls),
        static_cast<unsigned long long>(s.security_rejections),
        static_cast<unsigned long long>(s.wait_episodes),
        static_cast<unsigned long long>(s.steals),
        static_cast<unsigned long long>(s.frames_stolen),
        static_cast<unsigned long long>(s.banks_drained_owner),
        static_cast<unsigned long long>(s.banks_drained_stolen),
        static_cast<unsigned long long>(s.banks_resharded),
        static_cast<unsigned long long>(s.frames_drained_during_quiesce));
    out += StrFormat(
        "  ecn%u seen=%llu echoTX=%llu echoRX=%llu up=%llu down=%llu "
        "refuse=%llu nicmark=%llu\n",
        h, static_cast<unsigned long long>(s.ecn_marks_seen),
        static_cast<unsigned long long>(s.ecn_echoes_sent),
        static_cast<unsigned long long>(s.ecn_echoes_seen),
        static_cast<unsigned long long>(s.cwnd_increases),
        static_cast<unsigned long long>(s.cwnd_decreases),
        static_cast<unsigned long long>(s.adaptive_refusals),
        static_cast<unsigned long long>(fabric.nic(h).ecn_marks_delivered()));
    const JamCacheStats& js = fabric.runtime(h).jam_cache_stats();
    out += StrFormat(
        "  jam%u hits=%llu miss=%llu inst=%llu evict=%llu inval=%llu "
        "nakTX=%llu nakRX=%llu bh=%llu resend=%llu bsave=%llu csave=%llu\n",
        h, static_cast<unsigned long long>(js.hits),
        static_cast<unsigned long long>(js.misses),
        static_cast<unsigned long long>(js.installs),
        static_cast<unsigned long long>(js.evictions),
        static_cast<unsigned long long>(js.invalidations),
        static_cast<unsigned long long>(js.naks_sent),
        static_cast<unsigned long long>(js.naks_received),
        static_cast<unsigned long long>(js.by_handle_sends),
        static_cast<unsigned long long>(js.resends),
        static_cast<unsigned long long>(js.bytes_saved),
        static_cast<unsigned long long>(js.link_cycles_saved));
    for (std::size_t p = 0; p < s.per_peer.size(); ++p) {
      const PeerStats& ps = s.per_peer[p];
      out += StrFormat(
          "  peer%zu sent=%llu deliv=%llu exec=%llu bytes=%llu "
          "stalls=%llu flags=%llu\n",
          p, static_cast<unsigned long long>(ps.messages_sent),
          static_cast<unsigned long long>(ps.messages_delivered),
          static_cast<unsigned long long>(ps.messages_executed),
          static_cast<unsigned long long>(ps.bytes_sent),
          static_cast<unsigned long long>(ps.send_stalls),
          static_cast<unsigned long long>(ps.bank_flags_returned));
    }
  }
  Runtime& hub = fabric.runtime(0);
  for (std::uint32_t c = 0; c < hub.receiver_pool_size(); ++c) {
    const cpu::PerfCounters& pc = hub.receiver_cpu(c).counters();
    const cpu::WaitStats& ws = hub.receiver_wait_stats(c);
    out += StrFormat(
        "core%u exec=%llu wait=%llu pack=%llu mem=%llu instr=%llu "
        "msgs=%llu episodes=%llu idle=%llu detect=%llu burned=%llu "
        "bstolen=%llu bdonated=%llu fstolen=%llu quiesces=%llu rin=%llu "
        "rout=%llu\n",
        c,
        static_cast<unsigned long long>(pc.Of(cpu::CycleClass::kExecute)),
        static_cast<unsigned long long>(pc.Of(cpu::CycleClass::kWait)),
        static_cast<unsigned long long>(pc.Of(cpu::CycleClass::kPack)),
        static_cast<unsigned long long>(pc.Of(cpu::CycleClass::kMemory)),
        static_cast<unsigned long long>(pc.instructions),
        static_cast<unsigned long long>(pc.messages_handled),
        static_cast<unsigned long long>(ws.episodes),
        static_cast<unsigned long long>(ws.idle_picos),
        static_cast<unsigned long long>(ws.detection_picos),
        static_cast<unsigned long long>(ws.cycles_burned),
        static_cast<unsigned long long>(ws.banks_stolen),
        static_cast<unsigned long long>(ws.banks_donated),
        static_cast<unsigned long long>(ws.frames_stolen),
        static_cast<unsigned long long>(ws.quiesces),
        static_cast<unsigned long long>(ws.banks_resharded_in),
        static_cast<unsigned long long>(ws.banks_resharded_out));
  }
  for (std::uint32_t i = 0; i < fabric.switch_count(); ++i) {
    net::Switch& sw = fabric.sw(i);
    out += StrFormat(
        "sw%u(%s) fwd=%llu mark=%llu drop=%llu hold=%llu peak=%llu\n", i,
        sw.name().c_str(),
        static_cast<unsigned long long>(sw.frames_forwarded()),
        static_cast<unsigned long long>(sw.frames_marked()),
        static_cast<unsigned long long>(sw.frames_dropped()),
        static_cast<unsigned long long>(sw.backpressure_holds()),
        static_cast<unsigned long long>(sw.peak_buffer_bytes()));
  }
  return out;
}

/// Drives the seeded mixed workload (injected ssum/iput/nop plus local
/// ssum, varying payloads) from every spoke into the hub, observing the
/// scheduler through the hub's SetOnExecuted hook, and returns the run's
/// observable state once the engine drains.
inline PoolRunResult RunPoolIncast(const PoolTopology& topo,
                                   const pkg::Package& package) {
  PoolRunResult result;
  Fabric fabric(MakePoolOptions(topo));
  if (const Status st = fabric.LoadPackage(package); !st.ok()) {
    ADD_FAILURE() << "package load failed: " << st << " ["
                  << topo.Describe() << "]";
    return result;
  }

  Runtime& hub = fabric.runtime(0);
  const std::uint32_t in_bank_slots = topo.mailboxes_per_bank;
  result.executed_per_core.assign(hub.receiver_pool_size(), 0);

  // Scheduler observers: exactly-once by (peer, sn) and in-bank cursor
  // order by (peer, bank). The hotplug schedule rides the same hook:
  // events fire off the executed-frame count, as zero-delay engine events
  // so the quiesce/revive lands between completions, never inside one.
  std::map<std::pair<PeerId, std::uint32_t>, std::uint32_t> seen_sn;
  std::map<std::pair<PeerId, std::uint32_t>, std::uint32_t> next_in_bank;
  hub.SetOnExecuted([&](const ReceivedMessage& msg) {
    // A by-handle cache miss completes (drains, returns its flag) without
    // executing; its full-body resend — a fresh sn — executes instead, so
    // only actual executions count against the pump's send total.
    if (msg.cache_miss) ++result.miss_completions;
    if (!msg.cache_miss) ++result.executed;
    if (msg.pool < result.executed_per_core.size()) {
      ++result.executed_per_core[msg.pool];
    }
    if (++seen_sn[{msg.from, msg.sn}] > 1) ++result.duplicate_executions;
    const std::uint32_t bank = msg.slot / in_bank_slots;
    std::uint32_t& expect = next_in_bank[{msg.from, bank}];
    if (msg.slot % in_bank_slots != expect) ++result.order_violations;
    expect = (expect + 1) % in_bank_slots;
    for (const QuiesceEvent& q : topo.quiesce) {
      if (result.executed == q.after_executed) {
        fabric.engine().ScheduleAfter(0, [&hub, &result, q] {
          const auto stranded = hub.QuiesceCore(q.pool_index);
          if (stranded.ok()) {
            ++result.quiesces_applied;
            result.stranded_reported += *stranded;
          } else {
            ++result.quiesces_refused;
          }
        }, "pool.quiesce");
      }
      if (q.revive_after != 0 && result.executed == q.revive_after) {
        fabric.engine().ScheduleAfter(0, [&hub, &result, q] {
          if (hub.ReviveCore(q.pool_index).ok()) {
            ++result.revives_applied;
          } else {
            ++result.revives_refused;
          }
        }, "pool.revive");
      }
    }
  });

  // One seeded pump per spoke, paced by flow control and the sender CPU.
  struct Sender {
    PeerId to_hub = kInvalidPeer;
    std::uint32_t sent = 0;
    std::uint32_t total = 0;
    Xoshiro256 rng{0};
  };
  auto senders = std::make_shared<std::vector<Sender>>(topo.spokes);
  for (std::uint32_t s = 0; s < topo.spokes; ++s) {
    auto peer = fabric.PeerIdFor(s + 1, 0);
    if (!peer.ok()) {
      ADD_FAILURE() << "peer lookup failed: " << peer.status();
      return result;
    }
    (*senders)[s].to_hub = *peer;
    (*senders)[s].total = topo.messages_per_spoke[s];
    (*senders)[s].rng =
        Xoshiro256(topo.identical_streams ? topo.seed : topo.seed + 7919 * s);
  }

  PumpLoop<std::uint32_t> pump;
  pump.Set([senders, &fabric, resume = pump.Handle()](std::uint32_t s) {
    Sender& sender = (*senders)[s];
    Runtime& rt = fabric.runtime(s + 1);
    if (sender.sent >= sender.total) return;
    if (!rt.HasFreeSlot(sender.to_hub)) {
      rt.NotifyWhenSlotFree(sender.to_hub, [resume, s] { resume(s); });
      return;
    }
    const std::uint64_t kind = sender.rng.NextBelow(4);
    const std::string jam = kind == 1 ? "iput" : kind == 2 ? "nop" : "ssum";
    const Invoke mode = kind == 3 ? Invoke::kLocal : Invoke::kInjected;
    const std::vector<std::uint64_t> args = {sender.rng.NextBelow(128)};
    std::vector<std::uint8_t> usr(8 * (1 + sender.rng.NextBelow(8)));
    for (std::size_t i = 0; i < usr.size(); i += 8) {
      const std::uint64_t v = sender.rng.Next();
      std::memcpy(usr.data() + i, &v, 8);
    }
    auto receipt = rt.Send(sender.to_hub, jam, mode, args, usr);
    ASSERT_TRUE(receipt.ok()) << receipt.status();
    ++sender.sent;
    // Homed to the spoke's lane: the pump mutates that spoke's runtime
    // state, which must only ever be touched from its own lane.
    fabric.engine().ScheduleAfterOn(s + 1, receipt->sender_cost,
                                    [resume, s] { resume(s); }, "pool.send");
  });
  for (std::uint32_t s = 0; s < topo.spokes; ++s) pump(s);
  fabric.Run();

  hub.SetOnExecuted(nullptr);
  for (std::uint32_t s = 0; s < topo.spokes; ++s) {
    result.sent += (*senders)[s].sent;
    const JamCacheStats& js = fabric.runtime(s + 1).jam_cache_stats();
    result.spoke_by_handle_sends += js.by_handle_sends;
    result.spoke_naks_received += js.naks_received;
    result.spoke_resends += js.resends;
    // Each full group of mailboxes_per_bank sends to the hub closes one
    // bank, whose flag must come back by drain. NAK-triggered resends are
    // extra sends the pump never saw, so they count toward bank fills.
    result.expected_flag_returns +=
        ((*senders)[s].sent + js.resends) / in_bank_slots;
    result.closed_send_banks +=
        fabric.runtime(s + 1).ClosedSendBanks((*senders)[s].to_hub);
    result.window_min_milli.push_back(
        fabric.runtime(s + 1).AdaptiveWindowMinMilli((*senders)[s].to_hub));
    result.window_max_milli.push_back(
        fabric.runtime(s + 1).AdaptiveWindowMaxMilli((*senders)[s].to_hub));
  }
  for (std::uint32_t i = 0; i < fabric.switch_count(); ++i) {
    net::Switch& sw = fabric.sw(i);
    result.switch_frames_forwarded += sw.frames_forwarded();
    result.switch_frames_marked += sw.frames_marked();
    result.switch_frames_dropped += sw.frames_dropped();
    result.switch_backpressure_holds += sw.backpressure_holds();
  }
  for (std::uint32_t h = 0; h < fabric.size(); ++h) {
    result.nic_ecn_marks_delivered += fabric.nic(h).ecn_marks_delivered();
    const RuntimeStats& s = fabric.runtime(h).stats();
    result.ecn_marks_seen_sum += s.ecn_marks_seen;
    result.ecn_echoes_sent_sum += s.ecn_echoes_sent;
    result.ecn_echoes_seen_sum += s.ecn_echoes_seen;
    result.cwnd_increases_sum += s.cwnd_increases;
    result.cwnd_decreases_sum += s.cwnd_decreases;
    result.adaptive_refusals_sum += s.adaptive_refusals;
  }
  result.hub_jam = hub.jam_cache_stats();
  result.hub_cache_entries = hub.JamCacheSize();
  result.hub_cache_bytes = hub.JamCacheResidentBytes();
  result.in_flight_at_drain = hub.InFlightFrames();
  result.pending_rehomes_at_drain = hub.PendingRehomes();
  result.active_cores_at_drain = hub.ActivePoolCores();
  for (std::uint32_t c = 0; c < hub.receiver_pool_size(); ++c) {
    result.stolen_claims_held += hub.StolenBanksHeld(c);
    const std::uint32_t homed = hub.BanksHomedTo(c);
    result.banks_homed_at_drain.push_back(homed);
    if (hub.pool_core_state(c) != PoolCoreState::kActive) {
      result.banks_homed_dark_at_drain += homed;
    }
    const cpu::WaitStats& ws = hub.receiver_wait_stats(c);
    result.resharded_in_sum += ws.banks_resharded_in;
    result.resharded_out_sum += ws.banks_resharded_out;
  }
  result.hub = hub.stats();
  result.drained_at = fabric.engine().Now();
  result.fingerprint = PoolFingerprint(fabric);
  return result;
}

/// The scheduler invariants every run — stealing or not, skewed or not —
/// must satisfy at drain.
inline void ExpectPoolInvariants(const PoolTopology& topo,
                                 const PoolRunResult& r) {
  const std::string ctx = topo.Describe();
  EXPECT_EQ(r.executed, r.sent) << ctx;
  EXPECT_EQ(r.duplicate_executions, 0u) << ctx;
  EXPECT_EQ(r.order_violations, 0u) << ctx;
  EXPECT_EQ(r.in_flight_at_drain, 0u) << ctx;
  EXPECT_EQ(r.closed_send_banks, 0u) << ctx;
  EXPECT_EQ(r.stolen_claims_held, 0u) << ctx;
  EXPECT_EQ(r.hub.security_rejections, 0u) << ctx;
  EXPECT_EQ(r.hub.bank_flags_returned, r.expected_flag_returns) << ctx;
  EXPECT_EQ(r.hub.banks_drained_owner + r.hub.banks_drained_stolen,
            r.hub.bank_flags_returned)
      << ctx;
  if (!topo.steal.enabled || topo.receiver_cores < 2) {
    EXPECT_EQ(r.hub.steals, 0u) << ctx;
    EXPECT_EQ(r.hub.frames_stolen, 0u) << ctx;
    EXPECT_EQ(r.hub.banks_drained_stolen, 0u) << ctx;
  }

  // Switched-fabric ledger reconciliation. The fabric is drop-free by
  // construction (a full shared buffer holds the frame at ingress instead
  // of dropping it), every mark a switch applies is delivered to exactly
  // one NIC by quiescence, and every mark a receiver echoes home in a
  // returned flag word is observed by exactly one sender.
  EXPECT_EQ(r.switch_frames_dropped, 0u) << ctx;
  EXPECT_EQ(r.switch_frames_marked, r.nic_ecn_marks_delivered) << ctx;
  EXPECT_EQ(r.ecn_echoes_sent_sum, r.ecn_echoes_seen_sum) << ctx;
  // Runtime-visible marks ride signal completions; setup traffic (e.g.
  // namespace sync) can be marked without a runtime seeing it, so <=.
  EXPECT_LE(r.ecn_marks_seen_sum, r.nic_ecn_marks_delivered) << ctx;
  if (topo.topology != Topology::kTree) {
    EXPECT_EQ(r.switch_frames_forwarded, 0u) << ctx;
    EXPECT_EQ(r.nic_ecn_marks_delivered, 0u) << ctx;
  }
  // Adaptive-window excursion bounds: never below the (clamped) floor,
  // never above the static bank count; a non-adaptive run never moves.
  const std::uint64_t ceiling_milli =
      static_cast<std::uint64_t>(topo.banks) * 1000;
  const std::uint64_t floor_milli =
      std::clamp(topo.adaptive.min_banks, 1u, topo.banks) * 1000ull;
  for (std::size_t s = 0; s < r.window_min_milli.size(); ++s) {
    if (topo.adaptive.enabled) {
      EXPECT_GE(r.window_min_milli[s], floor_milli) << ctx << " spoke " << s;
      EXPECT_LE(r.window_max_milli[s], ceiling_milli) << ctx << " spoke " << s;
    } else {
      EXPECT_EQ(r.window_min_milli[s], ceiling_milli) << ctx << " spoke " << s;
      EXPECT_EQ(r.window_max_milli[s], ceiling_milli) << ctx << " spoke " << s;
    }
  }
  if (!topo.adaptive.enabled) {
    EXPECT_EQ(r.cwnd_increases_sum, 0u) << ctx;
    EXPECT_EQ(r.cwnd_decreases_sum, 0u) << ctx;
    EXPECT_EQ(r.adaptive_refusals_sum, 0u) << ctx;
  }

  // Jam-cache ledger reconciliation. Every by-handle send either hit or
  // missed at the hub; every miss sent exactly one NAK; every NAK was
  // received and answered with exactly one full-body resend by drain.
  EXPECT_EQ(r.hub_jam.hits + r.hub_jam.misses, r.spoke_by_handle_sends)
      << ctx;
  EXPECT_EQ(r.hub_jam.naks_sent, r.hub_jam.misses) << ctx;
  EXPECT_EQ(r.spoke_naks_received, r.hub_jam.naks_sent) << ctx;
  EXPECT_EQ(r.spoke_resends, r.spoke_naks_received) << ctx;
  EXPECT_EQ(r.miss_completions, r.hub_jam.misses) << ctx;
  EXPECT_EQ(r.hub_cache_entries,
            r.hub_jam.installs - r.hub_jam.evictions - r.hub_jam.invalidations)
      << ctx;
  if (topo.jam_cache.enabled) {
    EXPECT_LE(r.hub_cache_entries, topo.jam_cache.capacity) << ctx;
    EXPECT_EQ(r.hub_cache_bytes > 0, r.hub_cache_entries > 0) << ctx;
  } else {
    EXPECT_EQ(r.spoke_by_handle_sends, 0u) << ctx;
    EXPECT_EQ(r.hub_jam.installs, 0u) << ctx;
    EXPECT_EQ(r.hub_cache_entries, 0u) << ctx;
  }

  // Hotplug ledger reconciliation — these hold whether or not the run's
  // plan contained quiesce events (and whether or not they were refused):
  // every deferred handoff applied, no bank left homed to a dark core,
  // every bank homed exactly once, the per-core re-shard mirrors sum to
  // the runtime counter, and the stranded backlog each QuiesceCore call
  // reported matches the ledger.
  EXPECT_EQ(r.pending_rehomes_at_drain, 0u) << ctx;
  EXPECT_EQ(r.banks_homed_dark_at_drain, 0u) << ctx;
  std::uint64_t homed_total = 0;
  for (const std::uint32_t homed : r.banks_homed_at_drain) {
    homed_total += homed;
  }
  if (!r.banks_homed_at_drain.empty()) {
    EXPECT_EQ(homed_total,
              static_cast<std::uint64_t>(topo.spokes) * topo.banks)
        << ctx;
  }
  EXPECT_EQ(r.resharded_in_sum, r.hub.banks_resharded) << ctx;
  EXPECT_EQ(r.resharded_out_sum, r.hub.banks_resharded) << ctx;
  EXPECT_EQ(r.hub.frames_drained_during_quiesce, r.stranded_reported) << ctx;
  if (topo.quiesce.empty()) {
    EXPECT_EQ(r.hub.banks_resharded, 0u) << ctx;
    EXPECT_EQ(r.hub.frames_drained_during_quiesce, 0u) << ctx;
    EXPECT_EQ(r.active_cores_at_drain, topo.receiver_cores) << ctx;
  }
}

}  // namespace twochains::core::pooltest
