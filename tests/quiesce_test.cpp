// Pool-core hotplug stress suite: QuiesceCore / ReviveCore re-shard bank
// homes while traffic is in flight, so the protocol ships with the harness
// that proves the handoff safe. A seeded generator draws thousands of
// short skewed incast topologies (pool width, bank shape, wait mode,
// stealing, per-spoke load, and the hotplug schedule itself all
// randomized) and checks the scheduler invariants after every run: each
// frame executed exactly once, in-bank completion order intact across the
// permanent handoff, bank flags returned only after a full drain, nothing
// left pending or homed to a dark core, and the hotplug ledger
// reconciling (stranded backlog reported == frames_drained_during_quiesce,
// per-core re-shard mirrors == banks_resharded) — plus byte-identical
// reruns on a seed subsample and directed cases pinning re-shard/restore
// counts, NUMA-preferring placement, and the error paths.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "benchlib/testbed_defaults.hpp"
#include "common/rng.hpp"
#include "pool_harness.hpp"

namespace twochains::core {
namespace {

using pooltest::MakePoolOptions;
using pooltest::PoolRunResult;
using pooltest::PoolTopology;
using pooltest::QuiesceEvent;
using pooltest::RunPoolIncast;

const pkg::Package& BenchPackage() {
  static const pkg::Package package = [] {
    auto built = bench::BuildBenchPackage();
    if (!built.ok()) {
      ADD_FAILURE() << "package build failed: " << built.status();
      std::abort();
    }
    return *built;
  }();
  return package;
}

/// Draws one short random topology with a random hotplug schedule. Loads
/// are skewed (one hot spoke) so the quiesced core's banks carry a real
/// stranded backlog, and a fraction of plans is deliberately impossible
/// (two quiesces on a 2-core pool) to exercise the refusal path live.
PoolTopology RandomTopology(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  PoolTopology topo;
  topo.seed = seed;
  topo.spokes = 2 + static_cast<std::uint32_t>(rng.NextBelow(3));     // 2..4
  topo.receiver_cores =
      2 + static_cast<std::uint32_t>(rng.NextBelow(3));               // 2..4
  topo.banks = 1 + static_cast<std::uint32_t>(rng.NextBelow(2));      // 1..2
  topo.mailboxes_per_bank =
      2 + static_cast<std::uint32_t>(rng.NextBelow(3));               // 2..4
  topo.wait_mode =
      rng.NextBelow(2) == 0 ? cpu::WaitMode::kPoll : cpu::WaitMode::kWfe;
  topo.steal.enabled = rng.NextBelow(2) != 0;  // hotplug x stealing mix
  topo.steal.threshold = 1 + static_cast<std::uint32_t>(rng.NextBelow(3));
  topo.steal.hysteresis = static_cast<std::uint32_t>(rng.NextBelow(2));
  topo.messages_per_spoke.resize(topo.spokes);
  std::uint64_t total = 0;
  for (std::uint32_t s = 0; s < topo.spokes; ++s) {
    topo.messages_per_spoke[s] =
        2 + static_cast<std::uint32_t>(rng.NextBelow(6));             // 2..7
    total += topo.messages_per_spoke[s];
  }
  const std::uint32_t hot =
      static_cast<std::uint32_t>(rng.NextBelow(topo.spokes));
  total -= topo.messages_per_spoke[hot];
  topo.messages_per_spoke[hot] *=
      4 + static_cast<std::uint32_t>(rng.NextBelow(9));               // x4..12
  total += topo.messages_per_spoke[hot];

  const std::uint32_t events =
      1 + static_cast<std::uint32_t>(rng.NextBelow(2));               // 1..2
  for (std::uint32_t e = 0; e < events; ++e) {
    QuiesceEvent q;
    q.pool_index =
        static_cast<std::uint32_t>(rng.NextBelow(topo.receiver_cores));
    // Quiesce somewhere in the first ~2/3 of the drain so the handoff has
    // stranded work to migrate and plenty of traffic still to land.
    q.after_executed = 1 + rng.NextBelow(std::max<std::uint64_t>(
                               1, (total * 2) / 3));
    if (rng.NextBelow(2) == 0) {
      q.revive_after = q.after_executed +
                       1 + rng.NextBelow(std::max<std::uint64_t>(
                               1, total - q.after_executed));
    }
    topo.quiesce.push_back(q);
  }
  return topo;
}

std::uint32_t TopologyCount() {
  if (const char* env = std::getenv("TC_QUIESCE_TOPOLOGIES")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::uint32_t>(v);
  }
  return 1000;
}

TEST(QuiesceInvariantTest, RandomizedHotplugPreservesSchedulerInvariants) {
  const pkg::Package& package = BenchPackage();
  const std::uint32_t runs = TopologyCount();
  std::uint64_t quiesces = 0;
  std::uint64_t runs_with_stranded_backlog = 0;
  std::uint64_t revives = 0;
  std::uint64_t refusals = 0;
  for (std::uint32_t t = 0; t < runs; ++t) {
    const PoolTopology topo = RandomTopology(0x401E5CE0 + t);
    const PoolRunResult result = RunPoolIncast(topo, package);
    pooltest::ExpectPoolInvariants(topo, result);
    quiesces += result.quiesces_applied;
    revives += result.revives_applied;
    refusals += result.quiesces_refused;
    if (result.hub.frames_drained_during_quiesce > 0) {
      ++runs_with_stranded_backlog;
    }
    // Byte-identical rerun on a seed subsample: the whole observable
    // state — event counts, stats tables, per-core hotplug ledgers —
    // must reproduce exactly from the topology spec.
    if (t % 25 == 0) {
      const PoolRunResult again = RunPoolIncast(topo, package);
      EXPECT_EQ(result.fingerprint, again.fingerprint) << topo.Describe();
    }
    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << "first failing topology: " << topo.Describe();
      break;
    }
  }
  // The sweep must exercise the contended paths, not vacuously pass on
  // runs where the hotplug never fired or never carried backlog.
  EXPECT_GT(quiesces, runs / 2)
      << "too few quiesces applied (" << quiesces << "/" << runs << ")";
  EXPECT_GT(runs_with_stranded_backlog, runs / 10)
      << "too few runs migrated a live backlog ("
      << runs_with_stranded_backlog << "/" << runs << ")";
  EXPECT_GT(revives, runs / 10) << "too few revives (" << revives << ")";
  EXPECT_GT(refusals, 0u)
      << "the randomized plans never hit a refusal path";
}

/// Directed re-shard/restore accounting: quiesce one core of a 2-core
/// pool mid-drain, revive it later, and pin the exact home movements.
TEST(QuiesceInvariantTest, QuiesceReshardsAndReviveRestores) {
  PoolTopology topo;
  topo.spokes = 2;
  topo.receiver_cores = 2;
  topo.banks = 2;
  topo.mailboxes_per_bank = 4;
  topo.messages_per_spoke = {48, 48};
  topo.seed = 0x40F1;
  // Core 0 homes (peer0, bank0) and (peer1, bank1): 2 of the 4 banks.
  QuiesceEvent q;
  q.pool_index = 0;
  q.after_executed = 10;
  q.revive_after = 60;
  topo.quiesce = {q};

  const PoolRunResult r = RunPoolIncast(topo, BenchPackage());
  pooltest::ExpectPoolInvariants(topo, r);
  EXPECT_EQ(r.quiesces_applied, 1u);
  EXPECT_EQ(r.revives_applied, 1u);
  // 2 banks out at quiesce + 2 banks back at revive.
  EXPECT_EQ(r.hub.banks_resharded, 4u);
  EXPECT_EQ(r.active_cores_at_drain, 2u);
  ASSERT_EQ(r.banks_homed_at_drain.size(), 2u);
  EXPECT_EQ(r.banks_homed_at_drain[0], 2u);  // affinity map restored
  EXPECT_EQ(r.banks_homed_at_drain[1], 2u);
  // The drain kept both cores fed: the survivor carried the whole pool
  // while core 0 was out, and core 0 drained again after the revive.
  EXPECT_GT(r.executed_per_core[0], 0u);
  EXPECT_GT(r.executed_per_core[1], 0u);
}

/// Without a revive the core stays out: every bank ends homed to the
/// survivor, which owes (and returns) every remaining bank flag.
TEST(QuiesceInvariantTest, UnrevivedCoreStaysDark) {
  PoolTopology topo;
  topo.spokes = 2;
  topo.receiver_cores = 2;
  topo.banks = 2;
  topo.mailboxes_per_bank = 4;
  topo.messages_per_spoke = {40, 40};
  topo.seed = 0xDA27;
  QuiesceEvent q;
  q.pool_index = 1;
  q.after_executed = 8;
  topo.quiesce = {q};

  const PoolRunResult r = RunPoolIncast(topo, BenchPackage());
  pooltest::ExpectPoolInvariants(topo, r);
  EXPECT_EQ(r.quiesces_applied, 1u);
  EXPECT_EQ(r.active_cores_at_drain, 1u);
  ASSERT_EQ(r.banks_homed_at_drain.size(), 2u);
  EXPECT_EQ(r.banks_homed_at_drain[0], 4u);
  EXPECT_EQ(r.banks_homed_at_drain[1], 0u);
  EXPECT_EQ(r.hub.banks_resharded, 2u);
  // Everything delivered after the quiesce drained on core 0 alone, and
  // the senders never deadlocked: all flags came home.
  EXPECT_EQ(r.executed, r.sent);
}

/// Determinism across the hotplug: reruns are byte-identical at pool 2
/// and 4, with and without a quiesce, and the quiesce visibly changes
/// the schedule when it strands work.
TEST(QuiesceInvariantTest, HotplugRunsAreDeterministic) {
  for (const std::uint32_t cores : {2u, 4u}) {
    PoolTopology topo;
    topo.spokes = 3;
    topo.receiver_cores = cores;
    topo.banks = 2;
    topo.mailboxes_per_bank = 4;
    topo.messages_per_spoke = {40, 12, 12};
    topo.seed = 0xD0 + cores;

    const PoolRunResult off = RunPoolIncast(topo, BenchPackage());
    const PoolRunResult off2 = RunPoolIncast(topo, BenchPackage());
    EXPECT_EQ(off.fingerprint, off2.fingerprint) << topo.Describe();

    QuiesceEvent q;
    q.pool_index = 0;
    q.after_executed = 12;
    q.revive_after = 40;
    topo.quiesce = {q};
    const PoolRunResult on = RunPoolIncast(topo, BenchPackage());
    const PoolRunResult on2 = RunPoolIncast(topo, BenchPackage());
    pooltest::ExpectPoolInvariants(topo, on);
    EXPECT_EQ(on.fingerprint, on2.fingerprint) << topo.Describe();
    EXPECT_NE(on.fingerprint, off.fingerprint) << topo.Describe();
  }
}

/// Hotplug composed with stealing: claims stolen from (or held by) the
/// quiescing core dissolve correctly and the ledger still reconciles.
TEST(QuiesceInvariantTest, QuiesceComposesWithStealing) {
  PoolTopology topo;
  topo.spokes = 2;
  topo.receiver_cores = 2;
  topo.banks = 2;
  topo.mailboxes_per_bank = 4;
  topo.messages_per_spoke = {96, 4};
  topo.steal.enabled = true;
  topo.steal.threshold = 2;
  topo.steal.hysteresis = 1;
  topo.seed = 0xBEEF;
  QuiesceEvent q;
  q.pool_index = 1;
  q.after_executed = 20;
  q.revive_after = 70;
  topo.quiesce = {q};

  const PoolRunResult r = RunPoolIncast(topo, BenchPackage());
  pooltest::ExpectPoolInvariants(topo, r);
  EXPECT_EQ(r.quiesces_applied, 1u);
  EXPECT_EQ(r.revives_applied, 1u);
  EXPECT_EQ(r.stolen_claims_held, 0u);
  EXPECT_EQ(r.executed, r.sent);
}

/// Error paths, no traffic needed: out-of-range indices, double quiesce,
/// the last-survivor guard, and reviving an active core.
TEST(QuiesceApiTest, RefusesInvalidTransitions) {
  PoolTopology topo;
  topo.spokes = 2;
  topo.receiver_cores = 2;
  topo.messages_per_spoke = {1, 1};
  core::Fabric fabric(MakePoolOptions(topo));
  ASSERT_TRUE(fabric.LoadPackage(BenchPackage()).ok());
  Runtime& hub = fabric.runtime(0);

  EXPECT_FALSE(hub.QuiesceCore(7).ok());
  EXPECT_FALSE(hub.ReviveCore(7).ok());
  EXPECT_FALSE(hub.ReviveCore(0).ok());  // active, not quiesced

  auto first = hub.QuiesceCore(0);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 0u);  // no traffic: nothing stranded
  EXPECT_EQ(hub.pool_core_state(0), PoolCoreState::kQuiesced);
  EXPECT_EQ(hub.ActivePoolCores(), 1u);
  EXPECT_EQ(hub.BanksHomedTo(0), 0u);

  EXPECT_FALSE(hub.QuiesceCore(0).ok());  // already quiesced
  EXPECT_FALSE(hub.QuiesceCore(1).ok());  // last active survivor

  ASSERT_TRUE(hub.ReviveCore(0).ok());
  EXPECT_EQ(hub.pool_core_state(0), PoolCoreState::kActive);
  EXPECT_EQ(hub.ActivePoolCores(), 2u);
  EXPECT_EQ(hub.BanksHomedTo(0), 2u);  // affinity map restored
  EXPECT_FALSE(hub.ReviveCore(0).ok());
  // Out + back: each direction moved the same 2 banks.
  EXPECT_EQ(hub.stats().banks_resharded, 4u);
}

/// The fabric-scheduled hotplug plan (FabricOptions::WithQuiesce): the
/// quiesce and revive fire at their simulated instants during Run(), an
/// unrevived plan leaves the core dark, and an out-of-range or
/// impossible plan is refused without killing the run.
TEST(QuiesceApiTest, FabricQuiescePlanFiresOnSchedule) {
  PoolTopology topo;
  topo.spokes = 2;
  topo.receiver_cores = 2;
  topo.messages_per_spoke = {1, 1};

  {
    core::FabricOptions options = MakePoolOptions(topo);
    options.WithQuiesce({/*host=*/0, /*pool_index=*/0,
                         /*quiesce_at=*/Microseconds(10),
                         /*revive_at=*/Microseconds(20)});
    core::Fabric fabric(options);
    ASSERT_TRUE(fabric.LoadPackage(BenchPackage()).ok());
    Runtime& hub = fabric.runtime(0);
    // Run until the scheduled quiesce has taken effect, then through the
    // revive (RunUntil evaluates between events, so conditioning on the
    // state itself observes the quiesced middle of the plan).
    EXPECT_TRUE(fabric.RunUntil([&] {
      return hub.pool_core_state(0) == PoolCoreState::kQuiesced;
    }));
    EXPECT_EQ(hub.BanksHomedTo(0), 0u);
    fabric.Run();
    EXPECT_EQ(hub.pool_core_state(0), PoolCoreState::kActive);
    EXPECT_EQ(hub.BanksHomedTo(0), 2u);
    EXPECT_EQ(hub.stats().banks_resharded, 4u);
  }
  {
    // revive_at == 0: the core stays out for the rest of the run; a
    // second plan entry aimed at the then-last survivor is refused, and
    // an out-of-range host entry is skipped — the run still completes.
    core::FabricOptions options = MakePoolOptions(topo);
    options.WithQuiesce({0, 1, Microseconds(10), 0})
        .WithQuiesce({0, 0, Microseconds(15), 0})
        .WithQuiesce({99, 0, Microseconds(15), 0});
    core::Fabric fabric(options);
    ASSERT_TRUE(fabric.LoadPackage(BenchPackage()).ok());
    fabric.Run();
    Runtime& hub = fabric.runtime(0);
    EXPECT_EQ(hub.pool_core_state(1), PoolCoreState::kQuiesced);
    EXPECT_EQ(hub.pool_core_state(0), PoolCoreState::kActive);
    EXPECT_EQ(hub.ActivePoolCores(), 1u);
    EXPECT_EQ(hub.BanksHomedTo(0), 4u);
  }
}

/// NUMA-aware re-shard placement: on a 2-domain hub, a quiesced core's
/// banks land on the same-domain survivor, not across the interconnect.
TEST(QuiesceApiTest, ReshardPrefersSameDomainSurvivors) {
  // 2+2 pool cores across two domains (benchlib PaperNumaWideFabric);
  // single-bank slices, so hub peer p's bank homes to member p % 4.
  core::FabricOptions options = bench::PaperNumaWideFabric(5);
  for (core::RuntimeConfig& rc : options.runtime_overrides) {
    rc.banks = 1;
  }
  core::Fabric fabric(options);
  const Status loaded = fabric.LoadPackage(BenchPackage());
  ASSERT_TRUE(loaded.ok()) << loaded;
  Runtime& hub = fabric.runtime(0);

  // 4 peers x 1 bank: peer p's bank homes to member p % 4 — one each.
  for (std::uint32_t m = 0; m < 4; ++m) {
    ASSERT_EQ(hub.BanksHomedTo(m), 1u) << "member " << m;
  }
  // Quiesce member 0 (domain 0): its bank must re-home to member 1, the
  // only same-domain survivor, even though members 2 and 3 are idle too.
  ASSERT_TRUE(hub.QuiesceCore(0).ok());
  EXPECT_EQ(hub.BanksHomedTo(0), 0u);
  EXPECT_EQ(hub.BanksHomedTo(1), 2u);
  EXPECT_EQ(hub.BanksHomedTo(2), 1u);
  EXPECT_EQ(hub.BanksHomedTo(3), 1u);
  // With the whole domain gone, the fallback crosses the interconnect
  // rather than stranding the banks.
  ASSERT_TRUE(hub.QuiesceCore(1).ok());
  EXPECT_EQ(hub.BanksHomedTo(1), 0u);
  EXPECT_EQ(hub.BanksHomedTo(2) + hub.BanksHomedTo(3), 4u);
  // Revives restore the affinity map in either order.
  ASSERT_TRUE(hub.ReviveCore(0).ok());
  ASSERT_TRUE(hub.ReviveCore(1).ok());
  for (std::uint32_t m = 0; m < 4; ++m) {
    EXPECT_EQ(hub.BanksHomedTo(m), 1u) << "member " << m;
  }
}

}  // namespace
}  // namespace twochains::core
