// Work-stealing scheduler stress suite: the first feature where two pool
// cores contend for one bank's frames, so it ships with the harness that
// proves the contention safe. A seeded generator draws thousands of short
// skewed incast topologies (pool width, bank shape, wait mode, steal
// threshold/hysteresis, per-spoke load all randomized) and checks the
// scheduler invariants after every run: each frame executed exactly once,
// in-bank completion order intact across claim handoffs, bank flags
// returned only after a full drain and accounted to exactly one drainer,
// nothing left claimed or in flight at drain — plus byte-identical reruns
// on a seed subsample, and directed cases pinning that a skewed pool
// actually steals, a balanced one never does, and stealing shortens the
// skewed drain.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/rng.hpp"
#include "pool_harness.hpp"

namespace twochains::core {
namespace {

using pooltest::MakePoolOptions;
using pooltest::PoolRunResult;
using pooltest::PoolTopology;
using pooltest::RunPoolIncast;

const pkg::Package& BenchPackage() {
  static const pkg::Package package = [] {
    auto built = bench::BuildBenchPackage();
    if (!built.ok()) {
      ADD_FAILURE() << "package build failed: " << built.status();
      std::abort();
    }
    return *built;
  }();
  return package;
}

/// Draws one short random topology. Loads are skewed: every spoke gets a
/// small base load and one hot spoke is multiplied, which is what makes
/// an affinity-sharded pool imbalanced enough to steal.
PoolTopology RandomTopology(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  PoolTopology topo;
  topo.seed = seed;
  topo.spokes = 2 + static_cast<std::uint32_t>(rng.NextBelow(3));     // 2..4
  topo.receiver_cores =
      2 + static_cast<std::uint32_t>(rng.NextBelow(3));               // 2..4
  // Few banks concentrate a hot peer's load on few cores — the shape
  // where affinity sharding skews and stealing gets exercised.
  topo.banks = 1 + static_cast<std::uint32_t>(rng.NextBelow(2));      // 1..2
  topo.mailboxes_per_bank =
      2 + static_cast<std::uint32_t>(rng.NextBelow(3));               // 2..4
  topo.wait_mode =
      rng.NextBelow(2) == 0 ? cpu::WaitMode::kPoll : cpu::WaitMode::kWfe;
  topo.steal.enabled = rng.NextBelow(8) != 0;  // occasionally steal-off
  // threshold 0 exercises the Initialize clamp on a live workload.
  topo.steal.threshold = static_cast<std::uint32_t>(rng.NextBelow(4));
  topo.steal.hysteresis = static_cast<std::uint32_t>(rng.NextBelow(2));
  topo.messages_per_spoke.resize(topo.spokes);
  for (std::uint32_t s = 0; s < topo.spokes; ++s) {
    topo.messages_per_spoke[s] =
        2 + static_cast<std::uint32_t>(rng.NextBelow(6));             // 2..7
  }
  const std::uint32_t hot =
      static_cast<std::uint32_t>(rng.NextBelow(topo.spokes));
  topo.messages_per_spoke[hot] *=
      4 + static_cast<std::uint32_t>(rng.NextBelow(9));               // x4..12
  return topo;
}

std::uint32_t TopologyCount() {
  if (const char* env = std::getenv("TC_STEAL_TOPOLOGIES")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::uint32_t>(v);
  }
  return 1000;
}

TEST(StealInvariantTest, RandomizedTopologiesPreserveSchedulerInvariants) {
  const pkg::Package& package = BenchPackage();
  const std::uint32_t runs = TopologyCount();
  std::uint64_t total_steals = 0;
  std::uint64_t runs_with_steals = 0;
  for (std::uint32_t t = 0; t < runs; ++t) {
    const PoolTopology topo = RandomTopology(0x57EA1000 + t);
    const PoolRunResult result = RunPoolIncast(topo, package);
    pooltest::ExpectPoolInvariants(topo, result);
    total_steals += result.hub.steals;
    if (result.hub.steals > 0) ++runs_with_steals;
    // Byte-identical rerun on a seed subsample: the whole observable
    // state — event counts, stats tables, per-core steal ledgers — must
    // reproduce exactly from the topology spec.
    if (t % 25 == 0) {
      const PoolRunResult again = RunPoolIncast(topo, package);
      EXPECT_EQ(result.fingerprint, again.fingerprint) << topo.Describe();
    }
    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << "first failing topology: " << topo.Describe();
      break;
    }
  }
  // The sweep must actually exercise the contended path, not vacuously
  // pass on steal-free runs.
  EXPECT_GT(runs_with_steals, runs / 20)
      << "steals triggered in too few topologies (" << runs_with_steals
      << "/" << runs << ", " << total_steals << " total)";
}

/// A hard-skewed pool steals, executes frames off-affinity on the
/// otherwise-idle cores, and drains faster than the same topology with
/// stealing off.
TEST(StealInvariantTest, SkewedPoolStealsAndDrainsFaster) {
  PoolTopology topo;
  topo.spokes = 2;
  topo.receiver_cores = 2;
  topo.banks = 2;
  topo.mailboxes_per_bank = 4;
  // Spoke 0 (hub peer 0, banks -> cores 0 and 1) is light; spoke 1 (hub
  // peer 1, banks -> cores 1 and 0) is light too, but make one spoke
  // overwhelmingly hot so its two banks queue deep while the other
  // spoke's banks run dry.
  topo.messages_per_spoke = {96, 4};
  topo.steal.enabled = true;
  topo.steal.threshold = 2;
  topo.steal.hysteresis = 1;
  topo.seed = 0xBEEF;

  const PoolRunResult on = RunPoolIncast(topo, BenchPackage());
  pooltest::ExpectPoolInvariants(topo, on);

  PoolTopology off = topo;
  off.steal.enabled = false;
  const PoolRunResult base = RunPoolIncast(off, BenchPackage());
  pooltest::ExpectPoolInvariants(off, base);

  EXPECT_GT(on.hub.steals, 0u);
  EXPECT_GT(on.hub.frames_stolen, 0u);
  EXPECT_GT(on.hub.banks_drained_stolen, 0u);
  // Both pool cores pulled real weight under steal; the fingerprints
  // differ (stealing visibly changed the schedule); and relieving the hot
  // core shortened the makespan.
  for (const std::uint64_t n : on.executed_per_core) EXPECT_GT(n, 0u);
  EXPECT_NE(on.fingerprint, base.fingerprint);
  EXPECT_LT(on.drained_at, base.drained_at);
}

/// A balanced pool — identical load on every spoke, banks spread
/// symmetrically — never pays the locality cost: zero steals.
TEST(StealInvariantTest, BalancedPoolNeverSteals) {
  PoolTopology topo;
  topo.spokes = 2;
  topo.receiver_cores = 2;
  topo.banks = 2;
  topo.mailboxes_per_bank = 4;
  topo.messages_per_spoke = {40, 40};
  topo.identical_streams = true;
  topo.steal.enabled = true;
  topo.steal.threshold = 2;
  topo.steal.hysteresis = 1;
  topo.seed = 0xBA1A;

  const PoolRunResult result = RunPoolIncast(topo, BenchPackage());
  pooltest::ExpectPoolInvariants(topo, result);
  EXPECT_EQ(result.hub.steals, 0u);
  EXPECT_EQ(result.hub.frames_stolen, 0u);
  EXPECT_EQ(result.hub.banks_drained_stolen, 0u);
}

}  // namespace
}  // namespace twochains::core
