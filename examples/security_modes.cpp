// Security configurations (§V): runs the same workload under the paper's
// default (fast, RWX mailboxes, sender-supplied GOT) and under the hardened
// policy (verifier + receiver-installed GOT + W^X split pages + read-only
// args), reporting the latency cost of each mitigation. Also demonstrates
// the hardware-level protections: an RDMA put with a bad rkey is rejected
// before memory is touched, and a sealed GOT refuses CPU writes.
//
// Build & run:  ./build/examples/security_modes
#include <cstdio>

#include "benchlib/perftest.hpp"
#include "benchlib/workloads.hpp"
#include "core/two_chains.hpp"
#include "jamvm/assembler.hpp"
#include "jelf/linker.hpp"

using namespace twochains;

namespace {

double MedianLatencyUs(const core::SecurityPolicy& policy) {
  core::TestbedOptions options;
  options.runtime.security = policy;
  core::Testbed testbed(options);
  auto package = bench::BuildBenchPackage();
  if (!package.ok() || !testbed.LoadPackage(*package).ok()) {
    std::fprintf(stderr, "setup failed\n");
    std::exit(1);
  }
  bench::AmConfig config;
  config.jam = "iput";
  config.mode = core::Invoke::kInjected;
  config.usr_bytes = 64;
  config.iterations = 600;
  config.warmup = 100;
  config.args = [](std::uint64_t iter) {
    return std::vector<std::uint64_t>{iter & 63};
  };
  auto result = bench::RunAmPingPong(testbed, config);
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return ToMicroseconds(result->one_way.Median());
}

}  // namespace

int main() {
  std::printf("Indirect Put (64 B payload, injected) median one-way latency "
              "per §V mitigation:\n\n");

  const double base = MedianLatencyUs(core::SecurityPolicy::PaperDefault());
  std::printf("  %-34s %8.3f us (baseline)\n", "paper default (RWX, sender GOT)",
              base);

  struct Mode {
    const char* name;
    core::SecurityPolicy policy;
  };
  core::SecurityPolicy verify;
  verify.verify_injected_code = true;
  core::SecurityPolicy recv_got;
  recv_got.receiver_installs_got = true;
  core::SecurityPolicy wx;
  wx.split_code_data_pages = true;
  wx.enforce_exec_permission = true;
  core::SecurityPolicy ro_args = wx;
  ro_args.read_only_args = true;
  const Mode modes[] = {
      {"+ static verifier per message", verify},
      {"+ receiver-installed GOT", recv_got},
      {"+ W^X split code/data pages", wx},
      {"+ read-only ARGS page", ro_args},
      {"fully hardened", core::SecurityPolicy::Hardened()},
  };
  for (const auto& mode : modes) {
    const double us = MedianLatencyUs(mode.policy);
    std::printf("  %-34s %8.3f us (%+.1f%%)\n", mode.name, us,
                (us - base) / base * 100.0);
  }

  // ---- hardware-level rejections --------------------------------------
  std::printf("\nhardware-level protections:\n");
  core::Testbed testbed;
  auto package = bench::BuildBenchPackage();
  if (!package.ok() || !testbed.LoadPackage(*package).ok()) return 1;

  // 1. An RDMA put with a forged rkey is rejected by the target HCA.
  auto& attacker = testbed.host(0);
  auto buf = attacker.memory().Allocate(64, 64, mem::Perm::kRW, "attack");
  bool rejected = false;
  Status post = testbed.nic(0).PostPut(
      *buf, mem::HostBase(1) + 0x1000, 64, mem::RKey{0xDEAD}, false,
      [&](const net::PutCompletion& c) {
        rejected = !c.status.ok();
        std::printf("  forged-rkey put -> %s\n",
                    c.status.ToString().c_str());
      });
  (void)post;
  testbed.Run();
  if (!rejected) {
    std::fprintf(stderr, "attack was not rejected!\n");
    return 1;
  }
  std::printf("  rkey rejections counted by the target HCA: %llu\n",
              static_cast<unsigned long long>(
                  testbed.nic(1).rkey_rejections()));

  // 2. A GOT sealed read-only refuses CPU stores (GOT-overwrite defense).
  jelf::HostNamespace ns;
  auto lib_obj = vm::Assemble(R"(
    .extern target
    .global f
    f:
      ldg t0, @target
      ret
  )");
  auto image = jelf::Link(std::vector<vm::ObjectCode>{*lib_obj},
                          {.image_name = "sealed"});
  (void)ns.Define("target", 0x1234);
  jelf::LoadOptions opts;
  opts.got_read_only = true;
  auto lib = jelf::LoadLibrary(testbed.host(0).memory(), *image, ns, opts);
  Status overwrite =
      testbed.host(0).memory().StoreU64(lib->got_addr, 0xBADBAD);
  std::printf("  GOT overwrite attempt -> %s\n",
              overwrite.ToString().c_str());
  if (overwrite.ok()) {
    std::fprintf(stderr, "sealed GOT accepted a write!\n");
    return 1;
  }
  std::printf("security modes demo OK\n");
  return 0;
}
