// Aggregation tree over function injection: leaves push values into
// intermediate hosts with jam_agg_push (each push lands in the *mid's*
// resident accumulator), then the root drains each mid with jam_agg_take
// — the jam executes at the mid, returns its subtree's partial sum, and
// resets the accumulator for the next round. Only scalars ever cross the
// wire toward the root: the classic fan-in reduction, built from two
// five-line jams.
//
//   hosts:            0 (root)
//                    ____|____
//                   |         |
//                1 (mid)   2 (mid)
//                   |         |
//                3, 4, 5   6, 7, 8    (leaves)
//
// Full-mesh fabric (the tree is an overlay: leaves only ever talk to
// their mid, the root only to the mids). Two rounds run to show the
// take-then-reset cycle.
//
// Build & run:  ./build/examples/agg_tree
#include <cstdio>
#include <optional>
#include <vector>

#include "core/fabric.hpp"
#include "jamlib/jamlib.hpp"

using namespace twochains;

namespace {

constexpr std::uint32_t kRoot = 0;
constexpr std::uint32_t kMids[] = {1, 2};
constexpr std::uint32_t kLeavesPerMid = 3;

/// Injects @p jam at @p target and runs until it executed there.
std::int64_t Inject(core::Fabric& fabric, std::uint32_t from,
                    std::uint32_t target, const char* jam,
                    std::vector<std::uint64_t> args) {
  const auto peer = fabric.PeerIdFor(from, target);
  if (!peer.ok()) {
    std::fprintf(stderr, "no route: %s\n", peer.status().ToString().c_str());
    return 0;
  }
  std::optional<std::uint64_t> result;
  fabric.runtime(target).SetOnExecuted([&](const core::ReceivedMessage& msg) {
    if (msg.executed) result = msg.return_value;
  });
  const auto receipt = fabric.runtime(from).Send(
      *peer, jam, core::Invoke::kInjected, args, {});
  if (!receipt.ok()) {
    std::fprintf(stderr, "send: %s\n", receipt.status().ToString().c_str());
    return 0;
  }
  fabric.RunUntil([&] { return result.has_value(); });
  fabric.runtime(target).SetOnExecuted(nullptr);
  return static_cast<std::int64_t>(result.value_or(0));
}

}  // namespace

int main() {
  const std::uint32_t hosts = 1 + 2 + 2 * kLeavesPerMid;  // root+mids+leaves
  std::printf("== agg_tree: %u leaves -> 2 mids -> root ==\n\n",
              2 * kLeavesPerMid);

  core::FabricOptions opts;
  opts.hosts = hosts;
  opts.topology = core::Topology::kFullMesh;
  core::Fabric fabric(opts);
  Status loaded =
      fabric.BuildAndLoad(jamlib::MakeJamlibPackageBuilder(), "tcjamlib");
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n", loaded.ToString().c_str());
    return 1;
  }

  bool ok = true;
  for (int round = 1; round <= 2; ++round) {
    std::printf("-- round %d --\n", round);
    std::int64_t expect_total = 0;

    // Phase 1: every leaf pushes its local value into its mid's resident
    // accumulator. The value is "measured" at the leaf; only it travels.
    for (std::size_t m = 0; m < 2; ++m) {
      const std::uint32_t mid = kMids[m];
      for (std::uint32_t l = 0; l < kLeavesPerMid; ++l) {
        const std::uint32_t leaf = 3 + static_cast<std::uint32_t>(m) *
                                           kLeavesPerMid + l;
        const std::int64_t value =
            static_cast<std::int64_t>(leaf * 10 + round);
        expect_total += value;
        const std::int64_t running =
            Inject(fabric, leaf, mid, "agg_push",
                   {static_cast<std::uint64_t>(value)});
        std::printf("  leaf %u -> mid %u: push %lld (mid running %lld)\n",
                    leaf, mid, static_cast<long long>(value),
                    static_cast<long long>(running));
      }
    }

    // Phase 2: the root drains each mid. agg_take executes *at the mid*,
    // returns the subtree partial and resets it for the next round.
    std::int64_t total = 0;
    for (const std::uint32_t mid : kMids) {
      const std::int64_t partial = Inject(fabric, kRoot, mid, "agg_take", {});
      std::printf("  root <- mid %u: partial %lld\n", mid,
                  static_cast<long long>(partial));
      total += partial;
    }
    std::printf("  tree total %lld (expect %lld)%s\n\n",
                static_cast<long long>(total),
                static_cast<long long>(expect_total),
                total == expect_total ? "" : "  <-- MISMATCH");
    ok &= (total == expect_total);
  }

  std::printf("%s\n", ok ? "agg_tree: OK" : "agg_tree: FAILED");
  return ok ? 0 : 1;
}
