// Fan-out / gather over an N-host fabric: one coordinator injects a jam
// into every worker, each worker executes it against its own resident
// state, and the workers inject their results back into the coordinator —
// a scatter/gather built entirely from Two-Chains function injection.
//
//   * Star topology: the coordinator is the hub; each worker only knows
//     the coordinator (peer 0 from the worker's point of view).
//   * Phase 1 configures the workers by injecting "set_scale": worker w's
//     resident state ends up different even though every host loaded the
//     same package.
//   * Phase 2 scatters the work jam ("shard_sum"), which sums the payload
//     and scales it by that worker-resident factor.
//   * Each worker replies by injecting "gather" into the coordinator,
//     which records (worker, value) in a coordinator-resident ried array.
//   * Every host runs a 2-core receiver pool (mailbox banks sharded
//     across the cores), so the coordinator drains the four concurrent
//     gather replies on two cores while each worker keeps a pool of its
//     own — the multi-core reactive receiver in its natural habitat.
//
// Build & run:  ./build/examples/fanout
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/fabric.hpp"

namespace {

constexpr std::uint32_t kWorkers = 4;

// Shared resident state: the gather array (only the coordinator's copy is
// written) and the per-worker scale factor (phase 1 sets it remotely).
constexpr const char* kRiedFanout = R"(
long gather_results[16];
long gather_count = 0;
long shard_scale = 1;

long ried_fanout(void) { return 0; }
long ried_fanout_init(void) {
  long i = 0;
  for (i = 0; i < 16; ++i) gather_results[i] = 0;
  gather_count = 0;
  shard_scale = 1;
  return 0;
}
)";

// Phase 1: remote configuration by function injection.
constexpr const char* kJamSetScale = R"(
extern long shard_scale;

long jam_set_scale(long* args, long* usr, long usr_bytes) {
  shard_scale = args[0];
  return shard_scale;
}
)";

// Phase 2: the scattered work — sum payload, scale by resident state.
constexpr const char* kJamShardSum = R"(
extern long shard_scale;

long jam_shard_sum(long* args, long* usr, long usr_bytes) {
  long n = usr_bytes / 8;
  long total = 0;
  for (long i = 0; i < n; ++i) total = total + usr[i];
  return total * shard_scale;
}
)";

// The gathered reply: record (worker, value) on the coordinator.
constexpr const char* kJamGather = R"(
extern long gather_results[16];
extern long gather_count;

long jam_gather(long* args, long* usr, long usr_bytes) {
  gather_results[args[0]] = args[1];
  gather_count = gather_count + 1;
  return args[1];
}
)";

}  // namespace

int main() {
  using namespace twochains;

  pkg::PackageBuilder builder;
  if (!builder.AddSourceFile("ried_fanout.rdc", kRiedFanout).ok() ||
      !builder.AddSourceFile("jam_set_scale.amc", kJamSetScale).ok() ||
      !builder.AddSourceFile("jam_shard_sum.amc", kJamShardSum).ok() ||
      !builder.AddSourceFile("jam_gather.amc", kJamGather).ok()) {
    std::fprintf(stderr, "bad sources\n");
    return 1;
  }

  // Star fabric: host 0 coordinates, hosts 1..kWorkers work. Each host
  // drains its mailbox banks with a 2-core receiver pool; sends run on a
  // core outside the pool.
  core::FabricOptions options;
  options.hosts = kWorkers + 1;
  options.topology = core::Topology::kStar;
  options.hub = 0;
  options.runtime.receiver_cores = 2;
  options.runtime.sender_core = 2;
  core::Fabric fabric(options);
  Status st = fabric.BuildAndLoad(builder, "fanout");
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    return 1;
  }
  core::Runtime& coordinator = fabric.runtime(0);

  bool work_phase = false;
  std::uint64_t configured = 0;

  // Each worker, once a shard executes in phase 2, injects the result back
  // into the coordinator (the worker's only peer is the hub).
  for (std::uint32_t w = 1; w <= kWorkers; ++w) {
    core::Runtime& worker = fabric.runtime(w);
    worker.SetOnExecuted([&worker, &work_phase, &configured,
                          w](const core::ReceivedMessage& m) {
      if (!m.executed) return;
      if (!work_phase) {
        ++configured;
        return;
      }
      const std::vector<std::uint64_t> reply = {w, m.return_value};
      auto receipt = worker.Send("gather", core::Invoke::kInjected, reply, {});
      if (!receipt.ok()) {
        std::fprintf(stderr, "worker %u gather send failed: %s\n", w,
                     receipt.status().ToString().c_str());
      }
    });
  }

  std::uint64_t gathered = 0;
  coordinator.SetOnExecuted([&](const core::ReceivedMessage& m) {
    if (m.executed) ++gathered;
  });

  // ---- phase 1: configure every worker by injection -------------------
  for (std::uint32_t w = 1; w <= kWorkers; ++w) {
    auto peer = fabric.PeerIdFor(0, w);
    if (!peer.ok()) return 1;
    const std::vector<std::uint64_t> scale = {w + 1};
    auto receipt = coordinator.Send(*peer, "set_scale",
                                    core::Invoke::kInjected, scale, {});
    if (!receipt.ok()) {
      std::fprintf(stderr, "set_scale to worker %u failed: %s\n", w,
                   receipt.status().ToString().c_str());
      return 1;
    }
  }
  fabric.RunUntil([&] { return configured >= kWorkers; });
  if (configured < kWorkers) {
    std::fprintf(stderr, "configuration incomplete\n");
    return 1;
  }
  std::printf("configured %u workers via injected set_scale\n", kWorkers);

  // ---- phase 2: scatter the work, gather the replies ------------------
  work_phase = true;
  // Payload: 1..8, summing to 36; worker w returns 36 * (w + 1).
  std::vector<std::uint8_t> payload(8 * 8);
  long expect_base = 0;
  for (std::uint64_t i = 0; i < 8; ++i) {
    const std::uint64_t v = i + 1;
    std::memcpy(payload.data() + 8 * i, &v, 8);
    expect_base += static_cast<long>(v);
  }
  for (std::uint32_t w = 1; w <= kWorkers; ++w) {
    auto peer = fabric.PeerIdFor(0, w);
    if (!peer.ok()) return 1;
    auto receipt = coordinator.Send(*peer, "shard_sum",
                                    core::Invoke::kInjected, {}, payload);
    if (!receipt.ok()) {
      std::fprintf(stderr, "scatter to worker %u failed: %s\n", w,
                   receipt.status().ToString().c_str());
      return 1;
    }
    std::printf("scattered shard_sum to worker %u (%llu B frame)\n", w,
                static_cast<unsigned long long>(receipt->frame_len));
  }

  fabric.RunUntil([&] { return gathered >= kWorkers; });
  if (gathered < kWorkers) {
    std::fprintf(stderr, "gather incomplete: %llu/%u\n",
                 static_cast<unsigned long long>(gathered), kWorkers);
    return 1;
  }

  // The gather replies arrived concurrently: show how the coordinator's
  // receiver pool split the drain.
  std::printf("\ncoordinator receiver pool: ");
  for (std::uint32_t c = 0; c < coordinator.receiver_pool_size(); ++c) {
    std::printf("%score %u handled %llu", c ? ", " : "", c,
                static_cast<unsigned long long>(
                    coordinator.receiver_cpu(c).counters().messages_handled));
  }
  std::printf("\n");

  std::printf("\ngathered results on coordinator:\n");
  bool all_ok = true;
  for (std::uint32_t w = 1; w <= kWorkers; ++w) {
    const auto value = coordinator.PeekU64("gather_results", w);
    if (!value.ok()) return 1;
    const long expect = expect_base * static_cast<long>(w + 1);
    const bool ok = static_cast<long>(*value) == expect;
    all_ok &= ok;
    std::printf("  worker %u: payload_sum * scale(%u) = %lld  [%s]\n", w,
                w + 1, static_cast<long long>(*value), ok ? "ok" : "WRONG");
  }
  std::printf("fanout %s\n", all_ok ? "OK" : "FAILED");
  return all_ok ? 0 : 1;
}
