// NUMA bank pinning: one hot sender injecting into a 2-domain receiver,
// with the receiver's mailbox banks either placed flat (every bank in
// domain 0 — what a NUMA-oblivious allocator does) or pinned to the
// memory domain of the pool core that drains them
// (RuntimeConfig::domain_aware_placement, the default).
//
// The receiver is a 4-core host split into domains {0,1} and {2,3}, with
// a 2-core receiver pool on cores 1 and 2 — one pool core per domain.
// The hot peer's two banks shard one to each pool core, so under flat
// placement pool core 2 (domain 1) drains a bank whose bytes — and whose
// NIC-stashed cache lines — live in domain 0: every fill that reaches
// the remote LLC slice or DRAM pays the cross-domain hop. Pinning moves
// that bank's pages (and with them the NIC's stash target) into domain
// 1, and the hop disappears.
//
// Build & run:  ./build/examples/numa_pinning
#include <cstdio>
#include <vector>

#include "common/pump.hpp"
#include "core/two_chains.hpp"
#include "pkg/package.hpp"

namespace {

constexpr const char* kRiedState = R"(
long sink = 0;

long ried_state(void) { return 0; }
long ried_state_init(void) { sink = 0; return 0; }
)";

// The injected hot-path function: walk the payload, fold it into the
// receiver-resident sink.
constexpr const char* kJamFold = R"(
extern long sink;

long jam_fold(long* args, long* usr, long usr_bytes) {
  long n = usr_bytes / 8;
  long total = 0;
  for (long i = 0; i < n; ++i) total = total + usr[i];
  sink = sink + total;
  return total;
}
)";

struct RunResult {
  twochains::PicoTime duration = 0;
  std::uint64_t frames_remote = 0;
  std::uint64_t remote_cycles = 0;
};

RunResult RunOnce(bool pinned) {
  using namespace twochains;

  pkg::PackageBuilder builder;
  if (!builder.AddSourceFile("ried_state.rdc", kRiedState).ok() ||
      !builder.AddSourceFile("jam_fold.amc", kJamFold).ok()) {
    std::fprintf(stderr, "bad sources\n");
    std::exit(1);
  }

  core::TestbedOptions options;
  options.runtime.banks = 2;
  options.runtime.mailboxes_per_bank = 4;
  options.runtime.mailbox_slot_bytes = KiB(64);
  options.runtime.receiver_core = 1;   // pool: core 1 (domain 0) ...
  options.runtime.receiver_cores = 2;  // ... and core 2 (domain 1)
  options.runtime.sender_core = 3;
  options.runtime.domain_aware_placement = pinned;
  options.WithDomains(2);
  core::Testbed testbed(options);
  if (!testbed.BuildAndLoad(builder, "numa_pinning").ok()) {
    std::fprintf(stderr, "setup failed\n");
    std::exit(1);
  }

  const int total = 64;
  int executed = 0;
  testbed.runtime(1).SetOnExecuted(
      [&](const core::ReceivedMessage& msg) { executed += msg.executed; });

  std::vector<std::uint8_t> usr(1024, 0);
  for (std::size_t i = 0; i < usr.size(); i += 8) usr[i] = 1;
  int sent = 0;
  PumpLoop<> pump;
  pump.Set([&, resume = pump.Handle()] {
    while (sent < total) {
      if (!testbed.runtime(0).HasFreeSlot()) {
        testbed.runtime(0).NotifyWhenSlotFree(resume);
        return;
      }
      auto receipt =
          testbed.runtime(0).Send("fold", core::Invoke::kInjected, {}, usr);
      if (!receipt.ok()) {
        std::fprintf(stderr, "send failed: %s\n",
                     receipt.status().ToString().c_str());
        std::exit(1);
      }
      ++sent;
    }
  });
  pump();
  testbed.RunUntil([&] { return executed >= total; });
  if (executed < total) {
    std::fprintf(stderr, "run stalled at %d/%d\n", executed, total);
    std::exit(1);
  }

  RunResult result;
  result.duration = testbed.engine().Now();
  result.frames_remote = testbed.runtime(1).stats().frames_drained_remote;
  result.remote_cycles = testbed.runtime(1).stats().remote_drain_cycles;
  return result;
}

}  // namespace

int main() {
  std::printf("2-domain receiver, 2-core pool (one core per domain), one "
              "hot sender, 64 x 1 KiB injected folds\n\n");
  const RunResult flat = RunOnce(/*pinned=*/false);
  const RunResult pinned = RunOnce(/*pinned=*/true);

  auto report = [](const char* name, const RunResult& r) {
    std::printf("%-7s placement: %8.2f us, %llu frames drained "
                "cross-domain, %llu penalty cycles\n",
                name, static_cast<double>(r.duration) / 1e6,
                static_cast<unsigned long long>(r.frames_remote),
                static_cast<unsigned long long>(r.remote_cycles));
  };
  report("flat", flat);
  report("pinned", pinned);

  const bool ok = pinned.duration < flat.duration &&
                  pinned.frames_remote == 0 && flat.frames_remote > 0;
  std::printf("\npinning the hot peer's banks to the draining cores' "
              "domains: %.1f%% faster, every drain domain-local\n",
              100.0 * (1.0 - static_cast<double>(pinned.duration) /
                                 static_cast<double>(flat.duration)));
  std::printf("numa_pinning %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
