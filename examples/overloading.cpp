// Per-process function overloading (§IV): "A program can easily define
// different functions with the same symbolic name for different processes,
// so that when a message arrives it will call a function specific to that
// process, much like function overloading."
//
// Both hosts load a package exposing `transform(x)` from a ried — but each
// host's ried implements it differently (host 0 doubles, host 1 squares).
// The *same* injected jam, sent to either host, remote-links `transform`
// against that host's namespace through the patched GOT and therefore
// behaves per-process. This is remote dynamic linking doing the dispatch —
// no registry, no virtual environment.
//
// Build & run:  ./build/examples/overloading
#include <cstdio>

#include "core/two_chains.hpp"

namespace {

constexpr const char* kJamApply = R"(
extern long transform(long x);

long jam_apply(long* args, char* usr, long usr_bytes) {
  return transform(args[0]);
}
)";

constexpr const char* kRiedDoubler = R"(
long ried_math(void) { return 0; }
long transform(long x) { return 2 * x; }
)";

constexpr const char* kRiedSquarer = R"(
long ried_math(void) { return 0; }
long transform(long x) { return x * x; }
)";

twochains::StatusOr<twochains::pkg::Package> BuildVariant(
    const char* ried_source, const char* name) {
  twochains::pkg::PackageBuilder builder;
  TC_RETURN_IF_ERROR(builder.AddSourceFile("ried_math.rdc", ried_source));
  TC_RETURN_IF_ERROR(builder.AddSourceFile("jam_apply.amc", kJamApply));
  return builder.Build(name);
}

}  // namespace

int main() {
  using namespace twochains;

  auto doubler = BuildVariant(kRiedDoubler, "math_doubler");
  auto squarer = BuildVariant(kRiedSquarer, "math_squarer");
  if (!doubler.ok() || !squarer.ok()) {
    std::fprintf(stderr, "package build failed\n");
    return 1;
  }

  two_chains::Testbed testbed;
  // Host 0 doubles; host 1 squares. Same element names, same jam source.
  Status st = testbed.LoadPackages(*doubler, *squarer);
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    return 1;
  }

  auto send_and_wait = [&](int from, std::uint64_t x) -> std::uint64_t {
    const int to = 1 - from;
    std::uint64_t result = 0;
    bool done = false;
    testbed.runtime(to).SetOnExecuted(
        [&](const two_chains::ReceivedMessage& m) {
          result = m.return_value;
          done = true;
        });
    const std::vector<std::uint64_t> args = {x};
    auto receipt = testbed.runtime(from).Send(
        "apply", two_chains::Invoke::kInjected, args, {});
    if (!receipt.ok()) {
      std::fprintf(stderr, "send failed: %s\n",
                   receipt.status().ToString().c_str());
      std::exit(1);
    }
    testbed.RunUntil([&] { return done; });
    testbed.runtime(to).SetOnExecuted(nullptr);
    return result;
  };

  // The same jam binary, injected into two different processes:
  const std::uint64_t on_host1 = send_and_wait(/*from=*/0, 9);  // squares
  const std::uint64_t on_host0 = send_and_wait(/*from=*/1, 9);  // doubles
  std::printf("jam_apply(9) executed on host1 (squarer ried): %llu\n",
              static_cast<unsigned long long>(on_host1));
  std::printf("jam_apply(9) executed on host0 (doubler ried): %llu\n",
              static_cast<unsigned long long>(on_host0));

  if (on_host1 != 81 || on_host0 != 18) {
    std::fprintf(stderr, "unexpected results!\n");
    return 1;
  }
  std::printf("same symbol, per-process binding — OK\n");
  return 0;
}
