// Quickstart: inject a C function over the (simulated) RDMA network and
// execute it on the remote host.
//
//   1. Write an active message as one canonical AMC source file
//      (jam_hello.amc) plus a ried providing remote-side state.
//   2. Build them into a package (this also produces the Local Function
//      library and the GOT-rewritten injectable image from the same source).
//   3. Bring up the two-host testbed, load the package on both hosts.
//   4. Send the jam as an *Injected Function*: the code bytes travel in the
//      message, get linked against the receiver's namespace through the
//      patched GOT, and run on arrival.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <cstring>

#include "core/two_chains.hpp"

namespace {

// A ried (shared library shipped ahead of time) providing server state and
// an interface the mobile jam links against.
constexpr const char* kRiedCounter = R"(
long hits = 0;

long ried_counter(void) { return 0; }
long ried_counter_init(void) { hits = 0; return 0; }

long record_hit(long delta) {
  hits = hits + delta;
  return hits;
}
)";

// The jam: a mobile C function. `record_hit` and `tc_print_*` are external
// symbols — resolved on the *receiver* via the GOT that travels with the
// message.
constexpr const char* kJamHello = R"(
extern long record_hit(long delta);
extern long tc_print_str(const char* s);
extern long tc_print_u64(unsigned long v);

long jam_hello(long* args, long* usr, long usr_bytes) {
  long n = usr_bytes / 8;
  long total = 0;
  for (long i = 0; i < n; ++i) total = total + usr[i];
  tc_print_str("jam_hello executed remotely: payload sum = ");
  tc_print_u64((unsigned long)total);
  tc_print_str("\n");
  return record_hit(args[0]);
}
)";

}  // namespace

int main() {
  using namespace twochains;

  // ---- 2. build the package ------------------------------------------
  pkg::PackageBuilder builder;
  if (!builder.AddSourceFile("ried_counter.rdc", kRiedCounter).ok() ||
      !builder.AddSourceFile("jam_hello.amc", kJamHello).ok()) {
    std::fprintf(stderr, "bad sources\n");
    return 1;
  }

  // ---- 3. two-host testbed -------------------------------------------
  two_chains::Testbed testbed;
  Status st = testbed.BuildAndLoad(builder, "quickstart");
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // ---- 4. inject -------------------------------------------------------
  const std::vector<std::uint64_t> args = {1};  // record_hit(+1)
  std::vector<std::uint8_t> payload(4 * 8);
  for (std::uint64_t i = 0; i < 4; ++i) {
    const std::uint64_t v = (i + 1) * 100;
    std::memcpy(payload.data() + 8 * i, &v, 8);
  }

  bool done = false;
  testbed.runtime(1).SetOnExecuted([&](const two_chains::ReceivedMessage& m) {
    std::printf("host1 executed jam (sn=%u): return value = %llu, "
                "%llu interpreted instructions\n",
                m.sn, static_cast<unsigned long long>(m.return_value),
                static_cast<unsigned long long>(m.instructions));
    done = true;
  });

  auto receipt = testbed.runtime(0).Send("hello", two_chains::Invoke::kInjected,
                                         args, payload);
  if (!receipt.ok()) {
    std::fprintf(stderr, "send failed: %s\n",
                 receipt.status().ToString().c_str());
    return 1;
  }
  std::printf("sent injected frame: %llu bytes (code travels with the "
              "message)\n",
              static_cast<unsigned long long>(receipt->frame_len));

  testbed.RunUntil([&] { return done; });

  // Output produced by natives *on the receiving host*:
  std::printf("host1 print output: %s",
              testbed.runtime(1).print_output().c_str());
  std::printf("host1 'hits' counter: %llu\n",
              static_cast<unsigned long long>(
                  testbed.runtime(1).PeekU64("hits").value()));
  std::printf("quickstart OK\n");
  return 0;
}
