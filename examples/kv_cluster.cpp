// A sharded KV store built from the jam standard library — the smallest
// end-to-end serving deployment:
//
//   * 2 client hosts + 4 shard hosts on a full-mesh fabric; every host
//     loads the same jamlib package, but only the shard hosts' resident
//     kv table (ried_kvtable) ever gets written.
//   * jamlib::KvShardMap routes each key to its owner host; a client
//     *injects* kv_put / kv_get / kv_del at that owner — the data never
//     moves, the function does.
//   * The receiver-side jam cache is on, so after each shard has seen a
//     kv jam once, the hot path degenerates to slim invoke-by-handle
//     frames: only the key (and value) cross the wire.
//
// The demo writes a handful of user records, reads them back (routed
// across all four shards), deletes one, and prints the per-shard
// placement plus the jam-cache counters that show the by-handle fast
// path doing the serving.
//
// Build & run:  ./build/examples/kv_cluster
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "core/fabric.hpp"
#include "jamlib/jamlib.hpp"
#include "jamlib/kv_service.hpp"

using namespace twochains;

namespace {

constexpr std::uint32_t kClients = 2;
constexpr std::uint32_t kShards = 4;

struct Cluster {
  core::Fabric fabric;
  jamlib::KvShardMap shard_map{kShards, kClients};

  static core::FabricOptions Options() {
    core::FabricOptions opts;
    opts.hosts = kClients + kShards;
    opts.topology = core::Topology::kFullMesh;
    opts.runtime.jam_cache.enabled = true;
    opts.runtime.jam_cache.capacity = 8;
    return opts;
  }

  Cluster() : fabric(Options()) {}

  /// Routes @p request from @p client to the key's owner shard, runs the
  /// fabric until the jam executed, and returns the jam's result.
  std::int64_t Do(std::uint32_t client, const jamlib::KvRequest& request) {
    const std::uint32_t owner = shard_map.OwnerHostOf(request.key);
    const auto peer = fabric.PeerIdFor(client, owner);
    if (!peer.ok()) {
      std::fprintf(stderr, "no route: %s\n", peer.status().ToString().c_str());
      return -1;
    }
    std::optional<std::uint64_t> result;
    fabric.runtime(owner).SetOnExecuted(
        [&](const core::ReceivedMessage& msg) {
          if (msg.executed) result = msg.return_value;
        });
    const auto receipt = fabric.runtime(client).Send(
        *peer, jamlib::KvJamFor(request.op), core::Invoke::kInjected,
        jamlib::KvArgsFor(request), {});
    if (!receipt.ok()) {
      std::fprintf(stderr, "send: %s\n",
                   receipt.status().ToString().c_str());
      return -1;
    }
    fabric.RunUntil([&] { return result.has_value(); });
    fabric.runtime(owner).SetOnExecuted(nullptr);
    return static_cast<std::int64_t>(result.value_or(~std::uint64_t{0}));
  }
};

}  // namespace

int main() {
  std::printf("== kv_cluster: %u clients + %u shards, jam cache on ==\n\n",
              kClients, kShards);

  Cluster cluster;
  Status loaded = cluster.fabric.BuildAndLoad(
      jamlib::MakeJamlibPackageBuilder(), "tcjamlib");
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n", loaded.ToString().c_str());
    return 1;
  }

  struct Record {
    std::uint64_t key;
    std::int64_t value;
    const char* who;
  };
  const std::vector<Record> records = {
      {1001, 37, "alice"}, {1002, 52, "bob"},   {1003, 19, "carol"},
      {1004, 88, "dave"},  {1005, 64, "erin"},  {1006, 45, "frank"},
      {1007, 73, "grace"}, {1008, 11, "heidi"},
  };

  std::printf("-- put: injecting kv_put at each key's owner shard --\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    const std::uint32_t client = static_cast<std::uint32_t>(i % kClients);
    const std::int64_t slot =
        cluster.Do(client, {jamlib::KvOp::kPut, r.key, r.value});
    std::printf("  %-5s key %llu -> shard %u (host %u), slot %lld\n", r.who,
                static_cast<unsigned long long>(r.key),
                cluster.shard_map.ShardOf(r.key),
                cluster.shard_map.OwnerHostOf(r.key),
                static_cast<long long>(slot));
  }

  std::printf("\n-- get: reading every record back (cross-client) --\n");
  bool all_match = true;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    // The *other* client reads it: the value lives on the shard, not in
    // any client-side state.
    const std::uint32_t client = static_cast<std::uint32_t>((i + 1) % kClients);
    const std::int64_t got = cluster.Do(client, {jamlib::KvOp::kGet, r.key, 0});
    all_match &= (got == r.value);
    std::printf("  %-5s key %llu = %lld %s\n", r.who,
                static_cast<unsigned long long>(r.key),
                static_cast<long long>(got),
                got == r.value ? "" : "  <-- MISMATCH");
  }

  std::printf("\n-- del: evicting bob, then re-reading --\n");
  const std::int64_t erased = cluster.Do(0, {jamlib::KvOp::kDel, 1002, 0});
  const std::int64_t after = cluster.Do(1, {jamlib::KvOp::kGet, 1002, 0});
  std::printf("  del key 1002 -> %lld, get after del -> %lld (miss = %lld)\n",
              static_cast<long long>(erased), static_cast<long long>(after),
              static_cast<long long>(jamlib::kKvMiss));

  std::printf("\n-- jam cache: repeat (client, shard, jam) pairs went slim --\n");
  std::uint64_t hits = 0, misses = 0, by_handle = 0;
  for (std::uint32_t s = 0; s < kShards; ++s) {
    hits += cluster.fabric.runtime(kClients + s).jam_cache_stats().hits;
    misses += cluster.fabric.runtime(kClients + s).jam_cache_stats().misses;
  }
  for (std::uint32_t c = 0; c < kClients; ++c) {
    by_handle +=
        cluster.fabric.runtime(c).jam_cache_stats().by_handle_sends;
  }
  std::printf("  slim by-handle sends: %llu, receiver hits: %llu, "
              "misses (cold installs): %llu\n",
              static_cast<unsigned long long>(by_handle),
              static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(misses));

  const bool ok = all_match && erased == 1 && after == jamlib::kKvMiss;
  std::printf("\n%s\n", ok ? "kv_cluster: OK" : "kv_cluster: FAILED");
  return ok ? 0 : 1;
}
