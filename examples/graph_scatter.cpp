// Semantic-graph scatter: the motivating workload class of the paper's
// introduction — "large-scale irregular applications composed of many
// coordinating tasks that operate on a shared data set so big it has to be
// stored on many physical devices", with "unordered concurrent shared
// writes to arbitrary locations".
//
// Host 0 owns a stream of edges and pushes *computation* to host 1, which
// owns a hash-partitioned adjacency store: each edge travels as an Indirect
// Put-style active message whose handler probes the vertex index and
// appends the neighbor server-side. No round trip per edge, no remote
// locks — the receiver serializes updates by construction.
//
// Build & run:  ./build/examples/graph_scatter
#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "common/pump.hpp"
#include "common/rng.hpp"
#include "core/two_chains.hpp"

namespace {

constexpr const char* kRiedGraph = R"(
/* Adjacency store: open-addressed vertex index -> fixed-degree rows. */
long vx_keys[1024];
long vx_degree[1024];
long vx_rows[16384];     /* 1024 vertices x 16 neighbor slots */

long ried_graph(void) { return 0; }
long ried_graph_init(void) {
  for (long i = 0; i < 1024; ++i) { vx_keys[i] = -1; vx_degree[i] = 0; }
  return 0;
}
)";

constexpr const char* kJamAddEdge = R"(
/* Append edge (args[0] -> args[1]) to the vertex store. */
extern long vx_keys[1024];
extern long vx_degree[1024];
extern long vx_rows[16384];

long jam_add_edge(long* args, char* usr, long usr_bytes) {
  long src = args[0];
  long dst = args[1];
  unsigned long slot = ((unsigned long)src * 2654435761) % 1024;
  for (long i = 0; i < 1024; ++i) {
    unsigned long s = (slot + i) % 1024;
    if (vx_keys[s] == src || vx_keys[s] == -1) {
      if (vx_keys[s] == -1) vx_keys[s] = src;
      long d = vx_degree[s];
      if (d >= 16) return -1;          /* row full */
      vx_rows[s * 16 + d] = dst;
      vx_degree[s] = d + 1;
      return d + 1;
    }
  }
  return -2;                           /* index full */
}
)";

}  // namespace

int main() {
  using namespace twochains;

  pkg::PackageBuilder builder;
  if (!builder.AddSourceFile("ried_graph.rdc", kRiedGraph).ok() ||
      !builder.AddSourceFile("jam_add_edge.amc", kJamAddEdge).ok()) {
    return 1;
  }
  two_chains::Testbed testbed;
  Status st = testbed.BuildAndLoad(builder, "graph");
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // A random edge stream over a small vertex set (deterministic).
  Xoshiro256 rng(2021);
  const int kEdges = 400;
  std::vector<std::pair<long, long>> edges;
  std::map<long, std::set<long>> expect;
  while (static_cast<int>(edges.size()) < kEdges) {
    const long src = static_cast<long>(rng.NextBelow(64));
    const long dst = static_cast<long>(rng.NextBelow(64));
    if (expect[src].size() >= 16) continue;     // respect row capacity
    if (expect[src].contains(dst)) continue;    // handler appends blindly
    edges.emplace_back(src, dst);
    expect[src].insert(dst);
  }

  // Scatter: push edges through flow control as fast as banks allow.
  std::size_t sent = 0;
  int executed = 0;
  int failures = 0;
  testbed.runtime(1).SetOnExecuted([&](const two_chains::ReceivedMessage& m) {
    ++executed;
    if (static_cast<std::int64_t>(m.return_value) < 0) ++failures;
  });
  PumpLoop<> pump;
  pump.Set([&, resume = pump.Handle()] {
    while (sent < edges.size()) {
      if (!testbed.runtime(0).HasFreeSlot()) {
        testbed.runtime(0).NotifyWhenSlotFree(resume);
        return;
      }
      const std::vector<std::uint64_t> args = {
          static_cast<std::uint64_t>(edges[sent].first),
          static_cast<std::uint64_t>(edges[sent].second)};
      auto receipt = testbed.runtime(0).Send(
          "add_edge", two_chains::Invoke::kInjected, args, {});
      if (!receipt.ok()) {
        std::fprintf(stderr, "send: %s\n",
                     receipt.status().ToString().c_str());
        return;
      }
      ++sent;
    }
  });
  pump();
  testbed.RunUntil([&] { return executed == kEdges; });

  std::printf("scattered %d edges; %d handler executions, %d row-capacity "
              "rejections\n", kEdges, executed, failures);
  std::printf("simulated time: %.1f us; receiver handled %llu messages\n",
              ToMicroseconds(testbed.engine().Now()),
              static_cast<unsigned long long>(
                  testbed.runtime(1).stats().messages_executed));

  // Verify the remote adjacency store against the host-side model.
  auto& remote = testbed.runtime(1);
  int verified_vertices = 0;
  for (const auto& [src, neighbors] : expect) {
    // Find the vertex slot by probing like the jam does.
    std::uint64_t slot = (static_cast<std::uint64_t>(src) * 2654435761ull) %
                         1024;
    long found = -1;
    for (int i = 0; i < 1024; ++i) {
      const std::uint64_t s = (slot + i) % 1024;
      const auto key = remote.PeekU64("vx_keys", s);
      if (!key.ok()) break;
      if (static_cast<long>(*key) == src) {
        found = static_cast<long>(s);
        break;
      }
      if (static_cast<std::int64_t>(*key) == -1) break;
    }
    if (found < 0) {
      std::fprintf(stderr, "vertex %ld missing from remote store!\n", src);
      return 1;
    }
    const auto degree = remote.PeekU64("vx_degree", found);
    std::set<long> remote_neighbors;
    for (std::uint64_t d = 0; d < *degree; ++d) {
      remote_neighbors.insert(static_cast<long>(
          *remote.PeekU64("vx_rows", static_cast<std::uint64_t>(found) * 16 +
                                        d)));
    }
    if (remote_neighbors != neighbors) {
      std::fprintf(stderr, "vertex %ld adjacency mismatch\n", src);
      return 1;
    }
    ++verified_vertices;
  }
  std::printf("remote adjacency verified for %d vertices — OK\n",
              verified_vertices);
  return 0;
}
