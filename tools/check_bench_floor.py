#!/usr/bin/env python3
"""Bench-floor guard: fail CI when a recorded wall-clock rate regresses.

Usage: check_bench_floor.py BENCH_engine_rate.json [floors.json]

Reads the bench's JSON record (the same file CI uploads as an artifact),
looks up each row named in the floors file, and fails when its
events_per_second has dropped more than the recorded tolerance below the
floor. Rows without a recorded floor are ignored, so adding bench rows
never breaks the guard.
"""
import json
import os
import sys


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    bench_path = sys.argv[1]
    floors_path = (
        sys.argv[2]
        if len(sys.argv) > 2
        else os.path.join(os.path.dirname(__file__), "bench_floors.json")
    )
    with open(bench_path) as f:
        record = json.load(f)
    with open(floors_path) as f:
        floors = json.load(f)

    bench = record.get("bench")
    bench_floors = floors.get(bench)
    if not bench_floors:
        print(f"no floors recorded for bench '{bench}'; nothing to check")
        return 0

    rows = {row["name"]: row for row in record.get("rows", [])}
    failures = 0
    for name, floor in bench_floors.items():
        row = rows.get(name)
        if row is None:
            print(f"FAIL: floor-guarded row '{name}' missing from {bench_path}")
            failures += 1
            continue
        rate = float(row["events_per_second"])
        minimum = float(floor["events_per_second"]) * (
            1.0 - float(floor.get("tolerance", 0.2))
        )
        verdict = "FAIL" if rate < minimum else "ok"
        print(
            f"{verdict}: {name}: {rate:.0f} events/s "
            f"(floor {floor['events_per_second']}, min allowed {minimum:.0f})"
        )
        if rate < minimum:
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
