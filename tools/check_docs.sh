#!/usr/bin/env bash
# Docs-consistency gate: every configuration field of RuntimeConfig,
# StealConfig (its nested steal block), and cache::HierarchyConfig must
# be documented in docs/TUNING.md. Fails (listing the missing names)
# when a field is added to the structs without a docs entry, so the
# tuning page can never silently rot. Pure grep/sed — no build needed,
# POSIX awk suffices.
set -euo pipefail
cd "$(dirname "$0")/.."

TUNING=docs/TUNING.md
fail=0

# Member names of a struct: 2-space-indented declarations ending in
# "= default;", "{...};", or ";" (member functions have "(" after the
# name and never match; function bodies are indented deeper).
fields_of() { # struct_name file
  awk -v struct="$1" '
    $0 ~ "^struct " struct " \\{" { in_struct = 1; next }
    in_struct && /^\};/ { in_struct = 0 }
    in_struct { sub(/\/\/.*/, ""); print }
  ' "$2" |
  sed -n -E \
    's/^  [A-Za-z_][A-Za-z0-9_:<>, *]*[A-Za-z0-9_>] +([a-z_][a-z0-9_]*) *(= .*|\{.*|;*) *;? *$/\1/p'
}

# Lines of every "## ..." section whose heading matches the pattern
# (and not the optional exclude pattern) — scoping each struct's check
# to its own sections, so a same-named field of another struct can't
# satisfy it from elsewhere in the page.
sections_matching() { # heading_regex [exclude_regex]
  awk -v pat="$1" -v ex="${2:-}" '
    /^## / { in_s = ($0 ~ pat) && (ex == "" || $0 !~ ex) }
    in_s
  ' "$TUNING"
}

check() { # struct_name file heading_regex [exclude_regex]
  local missing=""
  local found=0
  local sections
  sections="$(sections_matching "$3" "${4:-}")"
  if [ -z "$sections" ]; then
    echo "FAIL: no section matching '$3' in $TUNING"
    fail=1
    return
  fi
  while read -r field; do
    [ -z "$field" ] && continue
    found=$((found + 1))
    # Documented as `field` or as a dotted path like `steal.field`.
    if ! printf '%s' "$sections" | grep -Eq "\`([a-z_]+\.)?$field\`"; then
      missing="$missing $field"
    fi
  done < <(fields_of "$1" "$2")
  if [ "$found" -eq 0 ]; then
    echo "FAIL: extracted no fields from struct $1 in $2 (script rot?)"
    fail=1
  elif [ -n "$missing" ]; then
    echo "FAIL: $1 fields missing from $TUNING:$missing"
    fail=1
  else
    echo "OK: all $found $1 fields documented in $TUNING"
  fi
}

# The work-stealing, jam-cache, security-policy, and adaptive-banks
# sections document StealConfig's, JamCacheConfig's, SecurityPolicy's,
# and AdaptiveBankConfig's *nested* fields, so they are excluded from
# the RuntimeConfig scope — a nested name must not satisfy a same-named
# top-level RuntimeConfig field.
check RuntimeConfig src/core/runtime.hpp '^## RuntimeConfig' \
  'work stealing|jam cache|security policy|adaptive banks'
check StealConfig src/core/runtime.hpp '^## RuntimeConfig — work stealing'
check JamCacheConfig src/core/runtime.hpp '^## RuntimeConfig — jam cache'
check AdaptiveBankConfig src/core/runtime.hpp \
  '^## RuntimeConfig — adaptive banks'
check SecurityPolicy src/core/security.hpp \
  '^## RuntimeConfig — security policy'
check EngineConfig src/sim/engine.hpp '^## EngineConfig'
check TreeConfig src/core/fabric.hpp '^## TreeConfig'
check SwitchConfig src/net/switch.hpp '^## SwitchConfig'
check HierarchyConfig src/cache/config.hpp '^## HierarchyConfig'
check OpenLoopConfig src/benchlib/openloop.hpp '^## OpenLoopConfig'

# docs/SECURITY.md is the threat-model page: every SecurityPolicy knob
# must be covered there too (the guarantee table), so a new mitigation
# cannot land without its guarantee being written down.
SECURITY=docs/SECURITY.md
if [ ! -f "$SECURITY" ]; then
  echo "FAIL: $SECURITY missing"
  fail=1
else
  missing=""
  while read -r field; do
    [ -z "$field" ] && continue
    grep -Eq "\`$field\`" "$SECURITY" || missing="$missing $field"
  done < <(fields_of SecurityPolicy src/core/security.hpp)
  if [ -n "$missing" ]; then
    echo "FAIL: SecurityPolicy fields missing from $SECURITY:$missing"
    fail=1
  else
    echo "OK: all SecurityPolicy fields documented in $SECURITY"
  fi
fi

exit $fail
