// Ablation: the Fig. 1 configuration choices — write-ordering guarantees
// vs fence + separate signal put, and fixed- vs variable-size frames.
#include "fig_common.hpp"

using namespace twochains;
using namespace twochains::bench;

namespace {

double MedianUs(core::TestbedOptions options, std::uint64_t n_ints) {
  auto testbed = MakeBenchTestbed(options);
  AmConfig config = IputConfig(n_ints, core::Invoke::kInjected);
  config.iterations = 800;
  config.warmup = 100;
  const auto result = MustOk(RunAmPingPong(*testbed, config), "pingpong");
  return ToMicroseconds(result.one_way.Median());
}

}  // namespace

int main() {
  Banner("Ablation", "delivery ordering and frame-size modes");
  Table table({"configuration", "16 ints(us)", "1024 ints(us)"});

  auto ordered = PaperTestbed();  // the paper's testbed guarantees ordering

  auto fenced = PaperTestbed();
  fenced.nic.enforce_write_ordering = false;
  fenced.runtime.separate_signal_put = true;

  auto variable = PaperTestbed();
  variable.runtime.fixed_size_frames = false;

  const double ord16 = MedianUs(ordered, 16);
  const double ord1k = MedianUs(ordered, 1024);
  const double fen16 = MedianUs(fenced, 16);
  const double fen1k = MedianUs(fenced, 1024);
  const double var16 = MedianUs(variable, 16);
  const double var1k = MedianUs(variable, 1024);

  table.AddRow({"ordered, single put, fixed frames (paper)",
                FmtF(ord16, "%.3f"), FmtF(ord1k, "%.3f")});
  table.AddRow({"unordered + fence + separate signal put",
                FmtF(fen16, "%.3f"), FmtF(fen1k, "%.3f")});
  table.AddRow({"variable-size frames (two-phase wait)",
                FmtF(var16, "%.3f"), FmtF(var1k, "%.3f")});
  table.Print();

  std::printf("\nthe paper picks ordered/fixed because \"Modern servers "
              "like the one we use as a testbed ... enforce ordering\" and "
              "fixed frames allow \"the entire message in one put\".\n");
  bool ok = true;
  ok &= ShapeCheck("fence + separate signal costs latency",
                   fen16 > ord16 * 1.01);
  ok &= ShapeCheck("variable frames cost no less than fixed",
                   var16 >= ord16 * 0.999);
  return FinishChecks(ok);
}
