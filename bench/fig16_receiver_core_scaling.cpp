// Receiver-core scaling (beyond the paper's single reactive agent): one
// incast hub drains 8 senders with a receiver *pool* of 1, 2, 4, then 8
// cores. Inbound mailbox banks are sharded across the pool with stable
// bank->core affinity, so each core runs its own POLL loop and executes
// the jams of its banks concurrently in simulated time. The sweep shows
//   * how the aggregate executed-jam rate scales as the drain
//     parallelizes (the fig15 bottleneck was the serialized receiver),
//   * how the send-to-completion tail contracts when no sender queues
//     behind another sender's execution, and
//   * that the per-peer bank recycling stays fair when banks are spread
//     over cores (Jain fairness from the hub's per-peer counters).
//
// A second section measures the locality-vs-utilization tradeoff of
// receiver-pool *work stealing*: the same incast hub under a uniform load
// (where affinity sharding is already balanced and stealing must not
// regress) and under a skewed load (two hot senders whose banks shard to
// a fraction of the pool, where steal-off leaves cores idle while the hot
// cores queue deep). Run with --base or --steal to select one section;
// no argument runs both.
#include <cstring>

#include "fig_common.hpp"

namespace twochains::bench {
namespace {

constexpr std::uint32_t kSenders = 8;
constexpr std::uint32_t kIterationsPerSender = 400;

struct Point {
  std::uint32_t receiver_cores = 0;
  IncastResult result;
  std::vector<std::uint64_t> per_core_messages;
};

int BaseMain() {
  Banner("fig16", "receiver-core scaling: 8-sender incast, pooled drain");
  std::printf("Indirect Put, 64 B payload, %u messages per sender\n",
              kIterationsPerSender);

  const std::uint32_t kPoolSizes[] = {1, 2, 4, 8};
  std::vector<Point> points;

  for (const std::uint32_t cores : kPoolSizes) {
    // Star fabric: hub 0 is the incast receiver with the pool; spokes
    // keep the single-core paper runtime.
    core::FabricOptions options =
        PaperFabric(kSenders + 1, core::Topology::kStar, 0);
    options.host_overrides.assign(kSenders + 1, options.host);
    options.host_overrides[0].cache.cores =
        std::max(options.host.cache.cores, cores + 1);
    options.runtime_overrides.assign(kSenders + 1, options.runtime);
    options.runtime_overrides[0].receiver_cores = cores;
    // The hub only receives; keep its (unused) sender core off the pool.
    options.runtime_overrides[0].sender_core = cores;
    core::Fabric fabric(options);
    auto package = BuildBenchPackage();
    if (!package.ok() || !fabric.LoadPackage(*package).ok()) {
      std::fprintf(stderr, "fabric setup failed\n");
      std::abort();
    }

    IncastConfig config;
    config.jam = "iput";
    config.mode = core::Invoke::kInjected;
    config.usr_bytes = 64;
    config.iterations_per_sender = kIterationsPerSender;
    config.args = [](std::uint64_t iter) {
      return std::vector<std::uint64_t>{iter & 127};
    };

    std::vector<std::uint32_t> senders;
    for (std::uint32_t s = 1; s <= kSenders; ++s) senders.push_back(s);
    Point point;
    point.receiver_cores = cores;
    point.result = MustOk(RunIncastRate(fabric, 0, senders, config),
                          "incast run");
    core::Runtime& hub = fabric.runtime(0);
    for (std::uint32_t c = 0; c < hub.receiver_pool_size(); ++c) {
      point.per_core_messages.push_back(
          hub.receiver_cpu(c).counters().messages_handled);
    }
    points.push_back(std::move(point));
  }

  Table table({"rx cores", "agg Kmsg/s", "speedup", "p50 us", "p99 us",
               "fairness", "fc waits", "per-core msgs"});
  const double base_rate = points.front().result.aggregate_messages_per_second;
  for (const Point& p : points) {
    std::uint64_t waits = 0;
    for (const auto& s : p.result.per_sender) waits += s.flow_control_waits;
    std::string per_core;
    for (std::size_t c = 0; c < p.per_core_messages.size(); ++c) {
      if (c) per_core += "/";
      per_core += FmtU64(p.per_core_messages[c]);
    }
    table.AddRow({FmtU64(p.receiver_cores),
                  FmtF(p.result.aggregate_messages_per_second / 1e3),
                  FmtF(p.result.aggregate_messages_per_second / base_rate,
                       "%.2fx"),
                  FmtUs(p.result.latency.Percentile(0.50)),
                  FmtUs(p.result.latency.Percentile(0.99)),
                  FmtF(p.result.fairness, "%.3f"), FmtU64(waits), per_core});
  }
  table.Print();

  const Point& one = points[0];
  const Point& two = points[1];
  const Point& four = points[2];
  const Point& eight = points[3];
  bool ok = true;
  ok &= ShapeCheck(
      "aggregate executed-jam rate increases monotonically from 1 to 4 "
      "receiver cores",
      two.result.aggregate_messages_per_second >
              one.result.aggregate_messages_per_second &&
          four.result.aggregate_messages_per_second >
              two.result.aggregate_messages_per_second);
  ok &= ShapeCheck(
      "8 cores do not regress below 4 (drain is NIC-bound by then, not "
      "receiver-bound)",
      eight.result.aggregate_messages_per_second >=
          0.9 * four.result.aggregate_messages_per_second);
  ok &= ShapeCheck(
      "incast tail contracts when the drain parallelizes (4-core p99 < "
      "1-core p99)",
      four.result.latency.Percentile(0.99) <
          one.result.latency.Percentile(0.99));
  ok &= ShapeCheck(
      "per-sender fairness holds at every pool size (Jain >= 0.95)", [&] {
        for (const Point& p : points) {
          if (p.result.fairness < 0.95) return false;
        }
        return true;
      }());
  ok &= ShapeCheck(
      "the pool actually shares the drain (every core of the 4-core hub "
      "handled messages)",
      [&] {
        for (const std::uint64_t n : four.per_core_messages) {
          if (n == 0) return false;
        }
        return true;
      }());
  ok &= ShapeCheck(
      "every message was executed at every pool size (no mailbox leak)",
      [&] {
        for (const Point& p : points) {
          std::uint64_t executed = 0;
          for (const auto& s : p.result.per_sender) executed += s.messages;
          if (executed != static_cast<std::uint64_t>(kSenders) *
                              kIterationsPerSender) {
            return false;
          }
        }
        return true;
      }());
  return FinishChecks(ok);
}

// --------------------------------------------------------------- stealing

struct StealPoint {
  std::uint32_t receiver_cores = 0;
  bool skewed = false;
  bool steal = false;
  IncastResult result;
  std::uint64_t expected_messages = 0;  ///< offered load (skew-aware)
  std::uint64_t steals = 0;
  std::uint64_t frames_stolen = 0;
  std::vector<std::uint64_t> per_core_messages;
};

/// One incast run for the steal section: banks narrowed to 2 so the two
/// hot senders' banks shard onto a fraction of the pool, skew expressed
/// as sender weights (hosts 1 and 8 -> hub peers 0 and 7, whose banks
/// collide on pool core 0 at both pool widths — see the in-body comment).
StealPoint RunStealPoint(std::uint32_t cores, bool skewed, bool steal) {
  core::FabricOptions options =
      PaperFabric(kSenders + 1, core::Topology::kStar, 0);
  options.runtime.banks = 2;
  options.host_overrides.assign(kSenders + 1, options.host);
  options.host_overrides[0].cache.cores =
      std::max(options.host.cache.cores, cores + 1);
  options.runtime_overrides.assign(kSenders + 1, options.runtime);
  options.runtime_overrides[0].receiver_cores = cores;
  options.runtime_overrides[0].sender_core = cores;
  core::StealConfig steal_config;
  steal_config.enabled = steal;
  steal_config.threshold = 2;
  steal_config.hysteresis = 1;
  if (steal) options.WithStealing(steal_config);
  core::Fabric fabric(options);
  auto package = BuildBenchPackage();
  if (!package.ok() || !fabric.LoadPackage(*package).ok()) {
    std::fprintf(stderr, "fabric setup failed\n");
    std::abort();
  }

  // Server-Side Sum over a 1 KiB payload: execution-bound frames, so the
  // hub pool — not the wire — is the bottleneck and imbalance shows up as
  // backlog a thief can actually relieve (64 B iput drains faster than a
  // cable delivers, which no scheduler can improve on).
  IncastConfig config;
  config.jam = "ssum";
  config.mode = core::Invoke::kInjected;
  config.usr_bytes = 1024;
  config.iterations_per_sender = kIterationsPerSender / 4;
  config.args = [](std::uint64_t iter) {
    return std::vector<std::uint64_t>{iter & 127};
  };
  if (skewed) {
    // Hub peers 0 and 7 (hosts 1 and 8): with 2 banks, peer 0 shards to
    // pool cores {0, 1} and peer 7 to {7 % cores, 0} — their hot banks
    // collide on core 0 at both pool widths, so one core owns two deep
    // bank queues while most of the pool idles unless it steals. (A hot
    // peer whose banks land 1:1 on distinct cores is *not* stealable
    // work: in-bank ordering already caps each bank at one core's
    // throughput.)
    config.iterations_per_sender = kIterationsPerSender / 8;
    config.sender_weights.assign(kSenders, 1);
    config.sender_weights[0] = 8;
    config.sender_weights[7] = 8;
  }

  std::vector<std::uint32_t> senders;
  for (std::uint32_t s = 1; s <= kSenders; ++s) senders.push_back(s);
  StealPoint point;
  point.receiver_cores = cores;
  point.skewed = skewed;
  point.steal = steal;
  for (std::uint32_t s = 0; s < kSenders; ++s) {
    point.expected_messages +=
        config.iterations_per_sender *
        (config.sender_weights.empty() ? 1 : config.sender_weights[s]);
  }
  point.result = MustOk(RunIncastRate(fabric, 0, senders, config),
                        "steal incast run");
  core::Runtime& hub = fabric.runtime(0);
  point.steals = hub.stats().steals;
  point.frames_stolen = hub.stats().frames_stolen;
  for (std::uint32_t c = 0; c < hub.receiver_pool_size(); ++c) {
    point.per_core_messages.push_back(
        hub.receiver_cpu(c).counters().messages_handled);
  }
  return point;
}

int StealMain() {
  Banner("fig16 --steal",
         "work stealing: uniform vs skewed incast, steal on/off");
  std::printf("Server-Side Sum, 1 KiB payload, 2 banks, threshold 2 / "
              "hysteresis 1\n");

  const std::uint32_t kPoolSizes[] = {4, 8};
  std::vector<StealPoint> points;
  for (const std::uint32_t cores : kPoolSizes) {
    for (const bool skewed : {false, true}) {
      for (const bool steal : {false, true}) {
        points.push_back(RunStealPoint(cores, skewed, steal));
      }
    }
  }

  Table table({"rx cores", "load", "steal", "agg Kmsg/s", "on/off",
               "p99 us", "steals", "stolen msgs", "per-core msgs"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const StealPoint& p = points[i];
    // Each (cores, load) pair lands as off-then-on; ratio vs the off run.
    const double base_rate =
        points[i & ~std::size_t{1}].result.aggregate_messages_per_second;
    std::string per_core;
    for (std::size_t c = 0; c < p.per_core_messages.size(); ++c) {
      if (c) per_core += "/";
      per_core += FmtU64(p.per_core_messages[c]);
    }
    table.AddRow(
        {FmtU64(p.receiver_cores), p.skewed ? "skewed" : "uniform",
         p.steal ? "on" : "off",
         FmtF(p.result.aggregate_messages_per_second / 1e3),
         FmtF(p.result.aggregate_messages_per_second / base_rate, "%.2fx"),
         FmtUs(p.result.latency.Percentile(0.99)), FmtU64(p.steals),
         FmtU64(p.frames_stolen), per_core});
  }
  table.Print();

  auto at = [&](std::uint32_t cores, bool skewed, bool steal) -> const
      StealPoint& {
    for (const StealPoint& p : points) {
      if (p.receiver_cores == cores && p.skewed == skewed &&
          p.steal == steal) {
        return p;
      }
    }
    std::abort();
  };

  bool ok = true;
  for (const std::uint32_t cores : kPoolSizes) {
    const double skew_gain =
        at(cores, true, true).result.aggregate_messages_per_second /
        at(cores, true, false).result.aggregate_messages_per_second;
    ok &= ShapeCheck(
        StrFormat("skewed incast at %u cores: stealing lifts the aggregate "
                  "rate >= 1.2x over steal-off",
                  cores)
            .c_str(),
        skew_gain >= 1.2);
    const double uniform_ratio =
        at(cores, false, true).result.aggregate_messages_per_second /
        at(cores, false, false).result.aggregate_messages_per_second;
    ok &= ShapeCheck(
        StrFormat("uniform incast at %u cores: stealing does not regress "
                  "the rate by more than 2%%",
                  cores)
            .c_str(),
        uniform_ratio >= 0.98);
    ok &= ShapeCheck(
        StrFormat("stealing actually fired under skew at %u cores", cores)
            .c_str(),
        at(cores, true, true).steals > 0);
  }
  ok &= ShapeCheck(
      "every message was executed in every steal configuration (no "
      "mailbox leak)",
      [&] {
        for (const StealPoint& p : points) {
          std::uint64_t executed = 0;
          for (const auto& s : p.result.per_sender) executed += s.messages;
          if (executed != p.expected_messages) return false;
        }
        return true;
      }());
  return FinishChecks(ok);
}

// -------------------------------------------------------- flow biasing

struct BiasPoint {
  bool stressed = false;
  bool bias = false;
  IncastResult result;
  std::uint64_t expected_messages = 0;
  std::uint64_t biased_sends = 0;   ///< summed over the spokes
  std::uint64_t fc_waits = 0;       ///< summed over the spokes
};

/// Receiver-pool-aware flow control (RuntimeConfig::flow_bias): each
/// sender either round-robins its banks blindly or prefers banks whose
/// owning receiver core reported idle in the last flag return. Under a
/// clean saturated incast the knob is nearly inert *by design*: the hub
/// serves bank heads earliest-delivered-first, which equalizes per-bank
/// flag-return rates, so the strict rotation is already in phase with
/// the drain. The hint binds when a pool core actually *stalls* — the
/// co-located-interference regime of Figs. 11/12: while a preempted core
/// sits on its banks' flags, its siblings keep returning theirs with the
/// idle bit set, and biased senders route new fills around the stall.
BiasPoint RunBiasPoint(bool stressed, bool bias) {
  constexpr std::uint32_t kCores = 4;
  core::FabricOptions options =
      PaperFabric(kSenders + 1, core::Topology::kStar, 0);
  options.runtime.banks = 2;
  // Shallow banks: flow control binds often enough that the bank pick at
  // each boundary actually matters.
  options.runtime.mailboxes_per_bank = 4;
  options.runtime.flow_bias = bias;
  options.host_overrides.assign(kSenders + 1, options.host);
  options.host_overrides[0].cache.cores =
      std::max(options.host.cache.cores, kCores + 1);
  options.runtime_overrides.assign(kSenders + 1, options.runtime);
  options.runtime_overrides[0].receiver_cores = kCores;
  options.runtime_overrides[0].sender_core = kCores;
  core::Fabric fabric(options);
  auto package = BuildBenchPackage();
  if (!package.ok() || !fabric.LoadPackage(*package).ok()) {
    std::fprintf(stderr, "fabric setup failed\n");
    std::abort();
  }
  if (stressed) {
    // A heavily interfered hub (the fig12 stress regime, preemption
    // turned up): pool cores lose the CPU for tens of microseconds at a
    // time, freezing their banks' flag returns.
    StressConfig stress;
    stress.preempt_probability = 0.03;
    stress.preempt_scale_us = 15.0;
    ApplyStress(fabric, stress);
  }

  IncastConfig config;
  config.jam = "ssum";
  config.mode = core::Invoke::kInjected;
  config.usr_bytes = 1024;
  config.iterations_per_sender = 150;
  config.args = [](std::uint64_t iter) {
    return std::vector<std::uint64_t>{iter & 127};
  };

  std::vector<std::uint32_t> senders;
  for (std::uint32_t s = 1; s <= kSenders; ++s) senders.push_back(s);
  BiasPoint point;
  point.stressed = stressed;
  point.bias = bias;
  point.expected_messages =
      static_cast<std::uint64_t>(kSenders) * config.iterations_per_sender;
  point.result = MustOk(RunIncastRate(fabric, 0, senders, config),
                        "bias incast run");
  for (std::uint32_t s = 1; s <= kSenders; ++s) {
    point.biased_sends += fabric.runtime(s).stats().biased_sends;
  }
  for (const auto& s : point.result.per_sender) {
    point.fc_waits += s.flow_control_waits;
  }
  return point;
}

int BiasMain() {
  Banner("fig16 --bias",
         "receiver-pool-aware flow control: bias off vs on, 4-core hub");
  std::printf("Server-Side Sum, 1 KiB payload, 2 banks of 4, stealing "
              "off, clean vs preemption-stressed hub\n");

  std::vector<BiasPoint> points;
  for (const bool stressed : {false, true}) {
    for (const bool bias : {false, true}) {
      points.push_back(RunBiasPoint(stressed, bias));
    }
  }

  Table table({"hub", "bias", "agg Kmsg/s", "on/off", "p99 us",
               "fc waits", "biased sends"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const BiasPoint& p = points[i];
    const double base_rate =
        points[i & ~std::size_t{1}].result.aggregate_messages_per_second;
    table.AddRow(
        {p.stressed ? "stressed" : "clean", p.bias ? "on" : "off",
         FmtF(p.result.aggregate_messages_per_second / 1e3),
         FmtF(p.result.aggregate_messages_per_second / base_rate, "%.2fx"),
         FmtUs(p.result.latency.Percentile(0.99)), FmtU64(p.fc_waits),
         FmtU64(p.biased_sends)});
  }
  table.Print();

  auto at = [&](bool stressed, bool bias) -> const BiasPoint& {
    for (const BiasPoint& p : points) {
      if (p.stressed == stressed && p.bias == bias) return p;
    }
    std::abort();
  };

  bool ok = true;
  ok &= ShapeCheck(
      "the bias knob diverts sends around a stalled pool core",
      at(true, true).biased_sends > 0);
  ok &= ShapeCheck(
      "biasing lifts the stressed-hub rate >= 5% (stalled cores no "
      "longer gate their siblings' banks)",
      at(true, true).result.aggregate_messages_per_second >=
          1.05 * at(true, false).result.aggregate_messages_per_second);
  ok &= ShapeCheck(
      "biased senders park on flow control no more often under stress",
      at(true, true).fc_waits <= at(true, false).fc_waits);
  ok &= ShapeCheck(
      "clean hub: biasing does not regress the rate by more than 2% "
      "(fair head-serving keeps rotation in phase, knob near-inert)",
      at(false, true).result.aggregate_messages_per_second >=
          0.98 * at(false, false).result.aggregate_messages_per_second);
  ok &= ShapeCheck(
      "every message was executed with and without biasing (no mailbox "
      "leak)",
      [&] {
        for (const BiasPoint& p : points) {
          std::uint64_t executed = 0;
          for (const auto& s : p.result.per_sender) executed += s.messages;
          if (executed != p.expected_messages) return false;
        }
        return true;
      }());
  return FinishChecks(ok);
}

// -------------------------------------------------------- switched tree

struct TreePoint {
  std::uint32_t receiver_cores = 0;
  bool adaptive = false;
  IncastResult result;
  std::uint64_t expected_messages = 0;
  std::vector<std::uint64_t> per_core_messages;
  std::uint64_t marks = 0;      ///< sum of Switch::frames_marked
  std::uint64_t drops = 0;      ///< sum of Switch::frames_dropped
  std::uint64_t backoffs = 0;   ///< sum of spoke cwnd_decreases
  std::uint64_t refusals = 0;   ///< sum of spoke adaptive_refusals
};

TreePoint RunTreePoint(std::uint32_t senders, std::uint32_t cores,
                       bool adaptive, std::uint32_t iterations) {
  core::Fabric fabric(TreeBenchFabric(senders, adaptive, cores));
  auto package = BuildBenchPackage();
  if (!package.ok()) {
    std::fprintf(stderr, "package build failed: %s\n",
                 package.status().ToString().c_str());
    std::abort();
  }
  if (Status st = fabric.LoadPackage(*package); !st.ok()) {
    std::fprintf(stderr, "package load failed: %s\n",
                 st.ToString().c_str());
    std::abort();
  }

  IncastConfig config;
  config.jam = "iput";
  config.mode = core::Invoke::kInjected;
  config.usr_bytes = 64;
  config.iterations_per_sender = iterations;
  config.args = [](std::uint64_t iter) {
    return std::vector<std::uint64_t>{iter & 127};
  };

  std::vector<std::uint32_t> sender_ids;
  for (std::uint32_t s = 1; s <= senders; ++s) sender_ids.push_back(s);
  TreePoint point;
  point.receiver_cores = cores;
  point.adaptive = adaptive;
  point.expected_messages = std::uint64_t{senders} * iterations;
  point.result = MustOk(RunIncastRate(fabric, 0, sender_ids, config),
                        "tree incast run");

  core::Runtime& hub = fabric.runtime(0);
  for (std::uint32_t c = 0; c < hub.receiver_pool_size(); ++c) {
    point.per_core_messages.push_back(
        hub.receiver_cpu(c).counters().messages_handled);
  }
  for (std::uint32_t i = 0; i < fabric.switch_count(); ++i) {
    point.marks += fabric.sw(i).frames_marked();
    point.drops += fabric.sw(i).frames_dropped();
  }
  for (const std::uint32_t s : sender_ids) {
    const core::RuntimeStats& stats = fabric.runtime(s).stats();
    point.backoffs += stats.cwnd_decreases;
    point.refusals += stats.adaptive_refusals;
  }
  return point;
}

int TreeMain() {
  Banner("fig16",
         "--tree: pooled drain behind an oversubscribed switched tree");
  constexpr std::uint32_t kTreeSenders = 32;
  constexpr std::uint32_t kTreeIterations = 150;
  std::printf(
      "32 senders, host -> ToR -> spine at 4:1 oversubscription; receiver\n"
      "pool of 1 then 4 cores, static banks vs adaptive (AIMD); Indirect\n"
      "Put, 64 B payload, %u messages per sender\n",
      kTreeIterations);

  const std::uint32_t kPoolSizes[] = {1, 4};
  std::vector<TreePoint> points;
  for (const std::uint32_t cores : kPoolSizes) {
    for (const bool adaptive : {false, true}) {
      points.push_back(
          RunTreePoint(kTreeSenders, cores, adaptive, kTreeIterations));
    }
  }

  Table table({"rx cores", "banks", "agg Kmsg/s", "fairness", "p50 us",
               "p99 us", "p99.9 us", "marks", "backoffs", "per-core msgs"});
  for (const TreePoint& p : points) {
    std::string per_core;
    for (std::size_t c = 0; c < p.per_core_messages.size(); ++c) {
      if (c) per_core += "/";
      per_core += FmtU64(p.per_core_messages[c]);
    }
    table.AddRow({FmtU64(p.receiver_cores),
                  p.adaptive ? "adaptive" : "static",
                  FmtF(p.result.aggregate_messages_per_second / 1e3),
                  FmtF(p.result.fairness, "%.3f"),
                  FmtUs(p.result.latency.Percentile(0.50)),
                  FmtUs(p.result.latency.Percentile(0.99)),
                  FmtUs(p.result.latency.Percentile(0.999)),
                  FmtU64(p.marks), FmtU64(p.backoffs), per_core});
  }
  table.Print();

  auto at = [&](std::uint32_t cores, bool adaptive) -> const TreePoint& {
    for (const TreePoint& p : points) {
      if (p.receiver_cores == cores && p.adaptive == adaptive) return p;
    }
    std::abort();
  };

  bool ok = true;
  ok &= ShapeCheck(
      "drop-free fabric: zero frames dropped across every tree run",
      [&] {
        for (const TreePoint& p : points) {
          if (p.drops != 0) return false;
        }
        return true;
      }());
  ok &= ShapeCheck(
      "the oversubscribed trunk congests in every run (ECN marks fire)",
      [&] {
        for (const TreePoint& p : points) {
          if (p.marks == 0) return false;
        }
        return true;
      }());
  ok &= ShapeCheck(
      "widening the pool still pays behind a congested tree (4-core "
      "aggregate > 1-core aggregate, adaptive banks)",
      at(4, true).result.aggregate_messages_per_second >
          at(1, true).result.aggregate_messages_per_second);
  ok &= ShapeCheck(
      "the drain stays fair through the tree (Jain fairness >= 0.9 in "
      "every adaptive run)",
      at(1, true).result.fairness >= 0.9 &&
          at(4, true).result.fairness >= 0.9);
  ok &= ShapeCheck(
      "AIMD engages under congestion and stays inert when disabled",
      [&] {
        for (const TreePoint& p : points) {
          if (p.adaptive && p.backoffs == 0) return false;
          if (!p.adaptive && (p.backoffs != 0 || p.refusals != 0)) {
            return false;
          }
        }
        return true;
      }());
  ok &= ShapeCheck(
      "every message was executed in every tree configuration (no "
      "mailbox leak through the switches)",
      [&] {
        for (const TreePoint& p : points) {
          std::uint64_t executed = 0;
          for (const auto& s : p.result.per_sender) executed += s.messages;
          if (executed != p.expected_messages) return false;
        }
        return true;
      }());
  return FinishChecks(ok);
}

int Main(int argc, char** argv) {
  const bool base_only = argc > 1 && std::strcmp(argv[1], "--base") == 0;
  const bool steal_only = argc > 1 && std::strcmp(argv[1], "--steal") == 0;
  const bool bias_only = argc > 1 && std::strcmp(argv[1], "--bias") == 0;
  if (HasFlag(argc, argv, "--tree")) return TreeMain();
  int rc = 0;
  if (!steal_only && !bias_only) rc |= BaseMain();
  if (!base_only && !bias_only) rc |= StealMain();
  if (!base_only && !steal_only) rc |= BiasMain();
  return rc;
}

}  // namespace
}  // namespace twochains::bench

int main(int argc, char** argv) { return twochains::bench::Main(argc, argv); }
