// Receiver-core scaling (beyond the paper's single reactive agent): one
// incast hub drains 8 senders with a receiver *pool* of 1, 2, 4, then 8
// cores. Inbound mailbox banks are sharded across the pool with stable
// bank->core affinity, so each core runs its own POLL loop and executes
// the jams of its banks concurrently in simulated time. The sweep shows
//   * how the aggregate executed-jam rate scales as the drain
//     parallelizes (the fig15 bottleneck was the serialized receiver),
//   * how the send-to-completion tail contracts when no sender queues
//     behind another sender's execution, and
//   * that the per-peer bank recycling stays fair when banks are spread
//     over cores (Jain fairness from the hub's per-peer counters).
#include "fig_common.hpp"

namespace twochains::bench {
namespace {

constexpr std::uint32_t kSenders = 8;
constexpr std::uint32_t kIterationsPerSender = 400;

struct Point {
  std::uint32_t receiver_cores = 0;
  IncastResult result;
  std::vector<std::uint64_t> per_core_messages;
};

int Main() {
  Banner("fig16", "receiver-core scaling: 8-sender incast, pooled drain");
  std::printf("Indirect Put, 64 B payload, %u messages per sender\n",
              kIterationsPerSender);

  const std::uint32_t kPoolSizes[] = {1, 2, 4, 8};
  std::vector<Point> points;

  for (const std::uint32_t cores : kPoolSizes) {
    // Star fabric: hub 0 is the incast receiver with the pool; spokes
    // keep the single-core paper runtime.
    core::FabricOptions options =
        PaperFabric(kSenders + 1, core::Topology::kStar, 0);
    options.host_overrides.assign(kSenders + 1, options.host);
    options.host_overrides[0].cache.cores =
        std::max(options.host.cache.cores, cores + 1);
    options.runtime_overrides.assign(kSenders + 1, options.runtime);
    options.runtime_overrides[0].receiver_cores = cores;
    // The hub only receives; keep its (unused) sender core off the pool.
    options.runtime_overrides[0].sender_core = cores;
    core::Fabric fabric(options);
    auto package = BuildBenchPackage();
    if (!package.ok() || !fabric.LoadPackage(*package).ok()) {
      std::fprintf(stderr, "fabric setup failed\n");
      std::abort();
    }

    IncastConfig config;
    config.jam = "iput";
    config.mode = core::Invoke::kInjected;
    config.usr_bytes = 64;
    config.iterations_per_sender = kIterationsPerSender;
    config.args = [](std::uint64_t iter) {
      return std::vector<std::uint64_t>{iter & 127};
    };

    std::vector<std::uint32_t> senders;
    for (std::uint32_t s = 1; s <= kSenders; ++s) senders.push_back(s);
    Point point;
    point.receiver_cores = cores;
    point.result = MustOk(RunIncastRate(fabric, 0, senders, config),
                          "incast run");
    core::Runtime& hub = fabric.runtime(0);
    for (std::uint32_t c = 0; c < hub.receiver_pool_size(); ++c) {
      point.per_core_messages.push_back(
          hub.receiver_cpu(c).counters().messages_handled);
    }
    points.push_back(std::move(point));
  }

  Table table({"rx cores", "agg Kmsg/s", "speedup", "p50 us", "p99 us",
               "fairness", "fc waits", "per-core msgs"});
  const double base_rate = points.front().result.aggregate_messages_per_second;
  for (const Point& p : points) {
    std::uint64_t waits = 0;
    for (const auto& s : p.result.per_sender) waits += s.flow_control_waits;
    std::string per_core;
    for (std::size_t c = 0; c < p.per_core_messages.size(); ++c) {
      if (c) per_core += "/";
      per_core += FmtU64(p.per_core_messages[c]);
    }
    table.AddRow({FmtU64(p.receiver_cores),
                  FmtF(p.result.aggregate_messages_per_second / 1e3),
                  FmtF(p.result.aggregate_messages_per_second / base_rate,
                       "%.2fx"),
                  FmtUs(p.result.latency.Percentile(0.50)),
                  FmtUs(p.result.latency.Percentile(0.99)),
                  FmtF(p.result.fairness, "%.3f"), FmtU64(waits), per_core});
  }
  table.Print();

  const Point& one = points[0];
  const Point& two = points[1];
  const Point& four = points[2];
  const Point& eight = points[3];
  bool ok = true;
  ok &= ShapeCheck(
      "aggregate executed-jam rate increases monotonically from 1 to 4 "
      "receiver cores",
      two.result.aggregate_messages_per_second >
              one.result.aggregate_messages_per_second &&
          four.result.aggregate_messages_per_second >
              two.result.aggregate_messages_per_second);
  ok &= ShapeCheck(
      "8 cores do not regress below 4 (drain is NIC-bound by then, not "
      "receiver-bound)",
      eight.result.aggregate_messages_per_second >=
          0.9 * four.result.aggregate_messages_per_second);
  ok &= ShapeCheck(
      "incast tail contracts when the drain parallelizes (4-core p99 < "
      "1-core p99)",
      four.result.latency.Percentile(0.99) <
          one.result.latency.Percentile(0.99));
  ok &= ShapeCheck(
      "per-sender fairness holds at every pool size (Jain >= 0.95)", [&] {
        for (const Point& p : points) {
          if (p.result.fairness < 0.95) return false;
        }
        return true;
      }());
  ok &= ShapeCheck(
      "the pool actually shares the drain (every core of the 4-core hub "
      "handled messages)",
      [&] {
        for (const std::uint64_t n : four.per_core_messages) {
          if (n == 0) return false;
        }
        return true;
      }());
  ok &= ShapeCheck(
      "every message was executed at every pool size (no mailbox leak)",
      [&] {
        for (const Point& p : points) {
          std::uint64_t executed = 0;
          for (const auto& s : p.result.per_sender) executed += s.messages;
          if (executed != static_cast<std::uint64_t>(kSenders) *
                              kIterationsPerSender) {
            return false;
          }
        }
        return true;
      }());
  return FinishChecks(ok);
}

}  // namespace
}  // namespace twochains::bench

int main() { return twochains::bench::Main(); }
