// Figure 13: Indirect Put — effect of the WFE wait mode on latency and on
// whole-run CPU cycle counts, 1..1024 integers.
//
// Paper claims: "The latency remains the same for most payload sizes ...
// up to 1.5% latency penalty ... between a 3.8x and 2.5x CPU cycle
// reduction. The cycle-count reduction comes solely from the
// waiting-for-active-message portion of the code."
#include "fig_common.hpp"

using namespace twochains;
using namespace twochains::bench;

int main() {
  Banner("Figure 13", "Indirect Put: WFE vs busy polling");
  Table table({"ints", "poll(us)", "wfe(us)", "penalty", "poll cycles",
               "wfe cycles", "cycle ratio"});

  bool ok = true;
  double worst_penalty = 0;
  double min_ratio = 1e9, max_ratio = 0;
  for (std::uint64_t n = 1; n <= 1024; n *= 2) {
    auto poll_bed =
        MakeBenchTestbed(PaperTestbed().WithWaitMode(cpu::WaitMode::kPoll));
    const auto poll = MustOk(
        RunAmPingPong(*poll_bed, IputConfig(n, core::Invoke::kInjected)),
        "poll");
    auto wfe_bed =
        MakeBenchTestbed(PaperTestbed().WithWaitMode(cpu::WaitMode::kWfe));
    const auto wfe = MustOk(
        RunAmPingPong(*wfe_bed, IputConfig(n, core::Invoke::kInjected)),
        "wfe");

    const double poll_us = ToMicroseconds(poll.one_way.Median());
    const double wfe_us = ToMicroseconds(wfe.one_way.Median());
    const double penalty = (wfe_us - poll_us) / poll_us;
    worst_penalty = std::max(worst_penalty, penalty);
    const auto poll_cycles = poll.responder_counters.Total();
    const auto wfe_cycles = wfe.responder_counters.Total();
    const double ratio = static_cast<double>(poll_cycles) /
                         static_cast<double>(wfe_cycles);
    min_ratio = std::min(min_ratio, ratio);
    max_ratio = std::max(max_ratio, ratio);
    table.AddRow({FmtU64(n), FmtF(poll_us, "%.3f"), FmtF(wfe_us, "%.3f"),
                  FmtPct(penalty), FmtU64(poll_cycles), FmtU64(wfe_cycles),
                  FmtF(ratio, "%.2fx")});
  }
  table.Print();

  std::printf("\npaper: latency penalty <= 1.5%%; cycle reduction 3.8x -> "
              "2.5x (wait portion only).\n");
  ok &= ShapeCheck("WFE latency penalty small (< 3%)", worst_penalty < 0.03);
  ok &= ShapeCheck("WFE cuts cycles at least 2x everywhere",
                   min_ratio >= 2.0);
  ok &= ShapeCheck("cycle advantage shrinks as execution grows",
                   max_ratio > min_ratio);
  return FinishChecks(ok);
}
