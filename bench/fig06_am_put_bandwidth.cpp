// Figure 6: Server-Side Sum — AM put (without-execution) streaming
// bandwidth vs plain UCX data put, 256 B..32 KiB.
//
// Paper claims: "bandwidth improvement across all message sizes tested ...
// ranging from a 1.79x speedup up to a 4.48x speedup", because "the
// standard UCX put operation has more library overhead for flow control and
// detecting message completion".
#include "fig_common.hpp"

using namespace twochains;
using namespace twochains::bench;

int main() {
  Banner("Figure 6", "AM put (without execution) bandwidth vs UCX data put");
  Table table({"size(B)", "data put(MB/s)", "AM put(MB/s)", "increase"});

  bool ok = true;
  double min_ratio = 1e9, max_ratio = 0;
  double first_ratio = 0, last_ratio = 0;
  for (std::uint64_t size = 256; size <= 32768; size *= 2) {
    auto data_bed = MakeBenchTestbed();
    RawPutConfig raw;
    raw.size = size;
    raw.iterations = 2 * IterationsFor(size);
    const auto data = MustOk(RunRawPutStream(*data_bed, raw), "data stream");

    auto am_bed = MakeBenchTestbed();
    AmConfig am = SsumConfig(UsrBytesForLocalFrame(size), core::Invoke::kLocal);
    am.no_execute = true;
    am.iterations = 2 * IterationsFor(size);
    const auto am_result =
        MustOk(RunAmInjectionRate(*am_bed, am), "AM stream");

    const double ratio =
        am_result.megabytes_per_second / data.megabytes_per_second;
    min_ratio = std::min(min_ratio, ratio);
    max_ratio = std::max(max_ratio, ratio);
    if (size == 256) first_ratio = ratio;
    if (size == 32768) last_ratio = ratio;
    table.AddRow({FmtU64(size), FmtF(data.megabytes_per_second, "%.0f"),
                  FmtF(am_result.megabytes_per_second, "%.0f"),
                  FmtPct(ratio - 1.0)});
  }
  table.Print();

  std::printf("\npaper: AM put 1.79x-4.48x higher bandwidth than data put.\n");
  ok &= ShapeCheck("AM put bandwidth higher at every size", min_ratio > 1.0);
  ok &= ShapeCheck("peak advantage is substantial (>= 1.5x)",
                   max_ratio >= 1.5);
  ok &= ShapeCheck("advantage shrinks as the wire saturates (small > large)",
                   first_ratio > last_ratio);
  return FinishChecks(ok);
}
