// Figure 6: Server-Side Sum — AM put (without-execution) streaming
// bandwidth vs plain UCX data put, 256 B..32 KiB.
//
// Paper claims: "bandwidth improvement across all message sizes tested ...
// ranging from a 1.79x speedup up to a 4.48x speedup", because "the
// standard UCX put operation has more library overhead for flow control and
// detecting message completion".
#include "fig_common.hpp"

using namespace twochains;
using namespace twochains::bench;

namespace {

/// `--hot` variant: the Server-Side Sum stream *with* execution, cold
/// full-body vs warm jam cache. No-execute frames never go by-handle (the
/// receiver has nothing to memoize), so the hot comparison runs the
/// executed stream: payload bytes delivered per invoke are identical, but
/// the warm sender stops shipping code+GOTP, so wire bytes/invoke drop by
/// a constant (the code it no longer carries) at every payload size.
int RunHot() {
  Banner("Figure 6 --hot",
         "Server-Side Sum stream: cold full-body vs warm jam cache");
  Table table({"usr(B)", "cold B/inv", "hot B/inv", "wire saved",
               "cold(msg/s)", "hot(msg/s)", "link cyc/inv saved"});

  bool ok = true;
  bool bytes_drop = true;
  bool all_hits = true;
  double min_abs_saved = 1e18, max_abs_saved = 0;
  for (std::uint64_t size = 256; size <= 32768; size *= 2) {
    auto cold_bed = MakeBenchTestbed();
    const auto cold = MustOk(
        RunAmInjectionRate(*cold_bed,
                           SsumConfig(size, core::Invoke::kInjected)),
        "cold stream");
    auto hot_bed = MakeBenchTestbed(PaperTestbed().WithJamCache(HotJamCache()));
    const auto hot = MustOk(
        RunAmInjectionRate(*hot_bed,
                           SsumConfig(size, core::Invoke::kInjected)),
        "hot stream");

    const double cold_bpi =
        static_cast<double>(cold.wire_bytes) / cold.messages;
    const double hot_bpi = static_cast<double>(hot.wire_bytes) / hot.messages;
    const double cyc_saved =
        static_cast<double>(hot.rx_jam.link_cycles_saved) / hot.messages;
    bytes_drop &= hot_bpi < cold_bpi;
    all_hits &= hot.rx_jam.hits == hot.messages - 1 &&
                hot.rx_jam.misses == 0;
    min_abs_saved = std::min(min_abs_saved, cold_bpi - hot_bpi);
    max_abs_saved = std::max(max_abs_saved, cold_bpi - hot_bpi);
    table.AddRow({FmtU64(size), FmtF(cold_bpi, "%.0f"),
                  FmtF(hot_bpi, "%.0f"), FmtPct(1.0 - hot_bpi / cold_bpi),
                  FmtF(cold.messages_per_second, "%.0f"),
                  FmtF(hot.messages_per_second, "%.0f"),
                  FmtF(cyc_saved, "%.1f")});
  }
  table.Print();

  std::printf("\nwarm cache: the code+GOTP the frame stops carrying is a "
              "constant per-invoke saving, so the relative gain is largest "
              "for small payloads.\n");
  ok &= ShapeCheck("wire bytes/invoke below full-body at every size",
                   bytes_drop);
  ok &= ShapeCheck("every warm send is a cache hit (one install, no misses)",
                   all_hits);
  ok &= ShapeCheck("absolute saving is the dropped code (roughly constant)",
                   min_abs_saved > 0 && max_abs_saved < 2 * min_abs_saved);
  return FinishChecks(ok);
}

}  // namespace

int main(int argc, char** argv) {
  if (HasFlag(argc, argv, "--hot")) return RunHot();
  Banner("Figure 6", "AM put (without execution) bandwidth vs UCX data put");
  Table table({"size(B)", "data put(MB/s)", "AM put(MB/s)", "increase"});

  bool ok = true;
  double min_ratio = 1e9, max_ratio = 0;
  double first_ratio = 0, last_ratio = 0;
  for (std::uint64_t size = 256; size <= 32768; size *= 2) {
    auto data_bed = MakeBenchTestbed();
    RawPutConfig raw;
    raw.size = size;
    raw.iterations = 2 * IterationsFor(size);
    const auto data = MustOk(RunRawPutStream(*data_bed, raw), "data stream");

    auto am_bed = MakeBenchTestbed();
    AmConfig am = SsumConfig(UsrBytesForLocalFrame(size), core::Invoke::kLocal);
    am.no_execute = true;
    am.iterations = 2 * IterationsFor(size);
    const auto am_result =
        MustOk(RunAmInjectionRate(*am_bed, am), "AM stream");

    const double ratio =
        am_result.megabytes_per_second / data.megabytes_per_second;
    min_ratio = std::min(min_ratio, ratio);
    max_ratio = std::max(max_ratio, ratio);
    if (size == 256) first_ratio = ratio;
    if (size == 32768) last_ratio = ratio;
    table.AddRow({FmtU64(size), FmtF(data.megabytes_per_second, "%.0f"),
                  FmtF(am_result.megabytes_per_second, "%.0f"),
                  FmtPct(ratio - 1.0)});
  }
  table.Print();

  std::printf("\npaper: AM put 1.79x-4.48x higher bandwidth than data put.\n");
  ok &= ShapeCheck("AM put bandwidth higher at every size", min_ratio > 1.0);
  ok &= ShapeCheck("peak advantage is substantial (>= 1.5x)",
                   max_ratio >= 1.5);
  ok &= ShapeCheck("advantage shrinks as the wire saturates (small > large)",
                   first_ratio > last_ratio);
  return FinishChecks(ok);
}
