// Figure 10: Indirect Put — Injected Function message rate with LLC
// stashing enabled vs disabled, 1..8192 integers.
//
// Paper claims: "there is a 92% (1.9x) message rate increase for small put
// counts, with this advantage reducing as message sizes get large enough to
// benefit from the prefetcher."
#include "fig_common.hpp"

using namespace twochains;
using namespace twochains::bench;

int main() {
  Banner("Figure 10", "Indirect Put message rate: LLC stashing on vs off");
  Table table({"ints", "nonstash(msg/s)", "stash(msg/s)", "increase"});

  bool ok = true;
  double max_increase = 0, last_increase = 0;
  for (std::uint64_t n = 1; n <= 8192; n *= 2) {
    auto stash_bed = MakeBenchTestbed(PaperTestbed().WithStashing(true));
    const auto stash = MustOk(
        RunAmInjectionRate(*stash_bed, IputConfig(n, core::Invoke::kInjected)),
        "stash");
    auto nonstash_bed = MakeBenchTestbed(PaperTestbed().WithStashing(false));
    const auto nonstash = MustOk(
        RunAmInjectionRate(*nonstash_bed,
                           IputConfig(n, core::Invoke::kInjected)),
        "nonstash");

    const double increase = (stash.messages_per_second -
                             nonstash.messages_per_second) /
                            nonstash.messages_per_second;
    max_increase = std::max(max_increase, increase);
    last_increase = increase;
    table.AddRow({FmtU64(n), FmtF(nonstash.messages_per_second, "%.0f"),
                  FmtF(stash.messages_per_second, "%.0f"),
                  FmtPct(increase)});
  }
  table.Print();

  std::printf("\npaper: up to 92%% (1.9x) rate increase at small puts, "
              "advantage reducing with size.\n");
  ok &= ShapeCheck("stashing raises the rate substantially (peak >= 30%)",
                   max_increase >= 0.30);
  ok &= ShapeCheck("advantage reduces at the largest size",
                   last_increase < max_increase);
  return FinishChecks(ok);
}
