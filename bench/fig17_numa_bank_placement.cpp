// fig17 (beyond the paper): NUMA-aware mailbox bank placement on a
// 2-domain incast hub, placement on/off x work stealing on/off under a
// skewed load.
//
// The paper's locality story is that inbound frames are stashed into the
// cache closest to the executing core. On a multi-domain (NUMA) host that
// only holds if the bank's *bytes* live in the executing core's domain:
// the NIC stashes into the home domain's LLC slice, so a bank placed flat
// (domain 0) makes every drain from a domain-1 pool core pay the
// cross-domain penalty. This bench measures that axis end to end:
//
//   * hub: 4 cores, 2 domains ({0,1} and {2,3}), receiver pool on cores
//     1 and 2 — one pool core per domain (benchlib PaperNumaFabric);
//   * 4 senders, single-bank slices, so peer p's bank belongs to pool
//     core p % 2; senders 0 and 2 are hot (their banks collide on pool
//     core 0), senders 1 and 3 cold — the fig16 steal skew;
//   * placement on  = each bank homed in its owning core's domain
//     (RuntimeConfig::domain_aware_placement);
//     placement off = every bank homed flat in domain 0;
//   * Server-Side Sum over 1 KiB payloads: execution-bound frames, so
//     drain-side cache latency is what the rate measures.
//
// Expectations: domain-local placement beats flat placement with and
// without stealing; with placement on and stealing off every drain is
// domain-local (frames_drained_remote == 0); stealing still lifts the
// skewed rate, but now pays a visible cross-domain toll
// (RuntimeStats::remote_drain_cycles > 0) — the real locality cost of
// taking over another domain's bank.
//
// A second section (--domain-steal) measures the victim-selection policy
// that shrinks that toll: on a 4-pool-core hub with two cores per domain
// and hot banks in *both* domains, a domain-blind thief chases the
// globally deepest backlog across the interconnect even when a
// same-domain sibling is also behind. StealConfig::domain_aware (the
// default) prefers the most-loaded same-domain victim that clears the
// trigger, so the same skew drains with fewer remote frames and fewer
// cross-domain penalty cycles at an undiminished rate. Run with --grid or
// --domain-steal to select one section; no argument runs both.
#include <cstring>

#include "fig_common.hpp"

namespace twochains::bench {
namespace {

constexpr std::uint32_t kSenders = 4;
constexpr std::uint32_t kIterationsPerSender = 50;
constexpr std::uint32_t kHotWeight = 6;

struct Cell {
  bool placement = false;
  bool steal = false;
  IncastResult result;
  std::uint64_t expected_messages = 0;
  std::uint64_t executed = 0;
  std::uint64_t steals = 0;
  std::uint64_t frames_remote = 0;
  std::uint64_t remote_cycles = 0;
};

Cell RunCell(bool placement, bool steal) {
  core::FabricOptions options = PaperNumaFabric(kSenders + 1);
  options.runtime.banks = 1;
  options.runtime.mailboxes_per_bank = 8;
  for (core::RuntimeConfig& rc : options.runtime_overrides) {
    rc.banks = 1;
    rc.mailboxes_per_bank = 8;
  }
  options.runtime_overrides[0].domain_aware_placement = placement;
  if (steal) {
    // Only the hub has a pool to steal within; arming the 1-core spokes
    // would just warn-and-disable.
    core::StealConfig steal_config;
    steal_config.enabled = true;
    steal_config.threshold = 2;
    steal_config.hysteresis = 1;
    options.runtime_overrides[0].steal = steal_config;
  }
  core::Fabric fabric(options);
  auto package = BuildBenchPackage();
  if (!package.ok() || !fabric.LoadPackage(*package).ok()) {
    std::fprintf(stderr, "fabric setup failed\n");
    std::abort();
  }

  IncastConfig config;
  config.jam = "ssum";
  config.mode = core::Invoke::kInjected;
  config.usr_bytes = 1024;
  config.iterations_per_sender = kIterationsPerSender;
  config.args = [](std::uint64_t iter) {
    return std::vector<std::uint64_t>{iter & 127};
  };
  // Hub peers 0 and 2 hot: both their (single) banks belong to pool core
  // 0, so the skew lands on one core — and one domain.
  config.sender_weights = {kHotWeight, 1, kHotWeight, 1};

  std::vector<std::uint32_t> senders;
  for (std::uint32_t s = 1; s <= kSenders; ++s) senders.push_back(s);
  Cell cell;
  cell.placement = placement;
  cell.steal = steal;
  for (std::uint32_t s = 0; s < kSenders; ++s) {
    cell.expected_messages += config.iterations_per_sender *
                              config.sender_weights[s];
  }
  cell.result = MustOk(RunIncastRate(fabric, 0, senders, config),
                       "numa incast run");
  const core::RuntimeStats& stats = fabric.runtime(0).stats();
  cell.executed = stats.messages_executed;
  cell.steals = stats.steals;
  cell.frames_remote = stats.frames_drained_remote;
  cell.remote_cycles = stats.remote_drain_cycles;
  return cell;
}

// ------------------------------------------------------- --domain-steal

struct StealCell {
  bool domain_aware = false;
  IncastResult result;
  std::uint64_t expected_messages = 0;
  std::uint64_t executed = 0;
  std::uint64_t steals = 0;
  std::uint64_t frames_remote = 0;
  std::uint64_t remote_cycles = 0;
};

StealCell RunStealCell(bool domain_aware) {
  constexpr std::uint32_t kStealSenders = 8;
  // 2+2 pool cores across two domains (benchlib PaperNumaWideFabric);
  // single-bank slices, so hub peer p's bank belongs to member p % 4.
  core::FabricOptions options = PaperNumaWideFabric(kStealSenders + 1);
  for (core::RuntimeConfig& rc : options.runtime_overrides) {
    rc.banks = 1;
    rc.mailboxes_per_bank = 8;
  }
  core::StealConfig steal;
  steal.enabled = true;
  steal.threshold = 2;
  steal.hysteresis = 1;
  steal.domain_aware = domain_aware;
  options.runtime_overrides[0].steal = steal;
  core::Fabric fabric(options);
  auto package = BuildBenchPackage();
  if (!package.ok() || !fabric.LoadPackage(*package).ok()) {
    std::fprintf(stderr, "fabric setup failed\n");
    std::abort();
  }

  IncastConfig config;
  config.jam = "ssum";
  config.mode = core::Invoke::kInjected;
  config.usr_bytes = 1024;
  config.iterations_per_sender = kIterationsPerSender;
  config.args = [](std::uint64_t iter) {
    return std::vector<std::uint64_t>{iter & 127};
  };
  // Hot banks in both domains, the remote one deeper: peers 0 and 4 load
  // member 0 (domain 0) at 4x, peers 2 and 6 load member 2 (domain 1) at
  // 6x. The idle domain-0 thief (member 1) has a backlogged sibling on
  // its own side — a blind pick still chases member 2's deeper backlog
  // across the interconnect.
  config.sender_weights = {4, 1, 6, 1, 4, 1, 6, 1};

  std::vector<std::uint32_t> senders;
  for (std::uint32_t s = 1; s <= kStealSenders; ++s) senders.push_back(s);
  StealCell cell;
  cell.domain_aware = domain_aware;
  for (std::uint32_t s = 0; s < kStealSenders; ++s) {
    cell.expected_messages += config.iterations_per_sender *
                              config.sender_weights[s];
  }
  cell.result = MustOk(RunIncastRate(fabric, 0, senders, config),
                       "domain-steal incast run");
  const core::RuntimeStats& stats = fabric.runtime(0).stats();
  cell.executed = stats.messages_executed;
  cell.steals = stats.steals;
  cell.frames_remote = stats.frames_drained_remote;
  cell.remote_cycles = stats.remote_drain_cycles;
  return cell;
}

bool DomainStealSection() {
  std::printf("\n-- domain-aware steal victims (--domain-steal) --\n");
  std::printf("4-core pool, 2 cores per domain, hot banks in both domains "
              "(remote one deeper), ssum 1 KiB\n");
  const StealCell blind = RunStealCell(false);
  const StealCell aware = RunStealCell(true);

  Table table({"victim policy", "agg Kmsg/s", "p99 us", "steals",
               "remote frames", "remote cycles"});
  for (const StealCell* c : {&blind, &aware}) {
    table.AddRow({c->domain_aware ? "same-domain first" : "domain-blind",
                  FmtF(c->result.aggregate_messages_per_second / 1e3),
                  FmtUs(c->result.latency.Percentile(0.99)),
                  FmtU64(c->steals), FmtU64(c->frames_remote),
                  FmtU64(c->remote_cycles)});
  }
  table.Print();

  bool ok = true;
  ok &= ShapeCheck("both policies steal under the two-domain skew",
                   blind.steals > 0 && aware.steals > 0);
  ok &= ShapeCheck(
      "same-domain-first drains fewer frames across the interconnect",
      aware.frames_remote < blind.frames_remote);
  ok &= ShapeCheck("and pays fewer cross-domain penalty cycles",
                   aware.remote_cycles < blind.remote_cycles);
  ok &= ShapeCheck(
      "at an undiminished aggregate rate (>= 0.95x of domain-blind)",
      aware.result.aggregate_messages_per_second >=
          0.95 * blind.result.aggregate_messages_per_second);
  ok &= ShapeCheck("every message executed under both policies",
                   blind.executed == blind.expected_messages &&
                       aware.executed == aware.expected_messages);
  return ok;
}

int Main(int argc, char** argv) {
  bool run_grid = true;
  bool run_domain_steal = true;
  if (argc > 1) {
    if (std::strcmp(argv[1], "--grid") == 0) {
      run_domain_steal = false;
    } else if (std::strcmp(argv[1], "--domain-steal") == 0) {
      run_grid = false;
    } else {
      std::fprintf(stderr, "usage: %s [--grid|--domain-steal]\n", argv[0]);
      return 2;
    }
  }
  Banner("fig17",
         "NUMA bank placement: 2-domain hub, placement x steal, skewed");
  if (!run_grid) return FinishChecks(DomainStealSection());
  std::printf("Server-Side Sum, 1 KiB payload, 1 bank/peer, hot senders "
              "collide on pool core 0 (domain 0)\n");

  std::vector<Cell> cells;
  for (const bool placement : {false, true}) {
    for (const bool steal : {false, true}) {
      cells.push_back(RunCell(placement, steal));
    }
  }

  Table table({"placement", "steal", "agg Kmsg/s", "p99 us", "steals",
               "remote frames", "remote cycles"});
  for (const Cell& c : cells) {
    table.AddRow({c.placement ? "domain" : "flat", c.steal ? "on" : "off",
                  FmtF(c.result.aggregate_messages_per_second / 1e3),
                  FmtUs(c.result.latency.Percentile(0.99)),
                  FmtU64(c.steals), FmtU64(c.frames_remote),
                  FmtU64(c.remote_cycles)});
  }
  table.Print();

  auto at = [&](bool placement, bool steal) -> const Cell& {
    for (const Cell& c : cells) {
      if (c.placement == placement && c.steal == steal) return c;
    }
    std::abort();
  };

  bool ok = true;
  ok &= ShapeCheck(
      "domain-local placement beats flat placement (steal off)",
      at(true, false).result.aggregate_messages_per_second >
          at(false, false).result.aggregate_messages_per_second);
  ok &= ShapeCheck(
      "domain-local placement beats flat placement (steal on)",
      at(true, true).result.aggregate_messages_per_second >
          at(false, true).result.aggregate_messages_per_second);
  ok &= ShapeCheck(
      "placement on + steal off: every drain is domain-local "
      "(frames_drained_remote == 0)",
      at(true, false).frames_remote == 0);
  ok &= ShapeCheck(
      "flat placement leaves the domain-1 pool core draining remote banks",
      at(false, false).frames_remote > 0);
  ok &= ShapeCheck(
      "stealing still lifts the skewed rate >= 1.1x with placement on",
      at(true, true).result.aggregate_messages_per_second >=
          1.1 * at(true, false).result.aggregate_messages_per_second);
  ok &= ShapeCheck(
      "steal-on runs pay a visible cross-domain toll (steals > 0 and "
      "remote drain cycles > 0)",
      at(true, true).steals > 0 && at(true, true).remote_cycles > 0 &&
          at(true, true).frames_remote > 0);
  ok &= ShapeCheck("every message executed in every cell", [&] {
    for (const Cell& c : cells) {
      if (c.executed != c.expected_messages) return false;
    }
    return true;
  }());
  if (run_domain_steal) ok &= DomainStealSection();
  return FinishChecks(ok);
}

}  // namespace
}  // namespace twochains::bench

int main(int argc, char** argv) {
  return twochains::bench::Main(argc, argv);
}
