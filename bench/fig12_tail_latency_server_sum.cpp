// Figure 12: Server-Side Sum — median + tail latency and spread on a fully
// loaded system, stashing vs not, 512 B..32 KiB messages.
//
// Paper claims: "the Server-Side Sum LLC stashing 99.9th tail latency is
// generally better than that of the non-stashing scenario, in some cases
// performing twice as fast. Starting with the 2KB message size, stashing
// provides a tighter latency distribution ... tail latency no larger than
// 137% of the median."
#include "fig_common.hpp"

using namespace twochains;
using namespace twochains::bench;

int main() {
  Banner("Figure 12",
         "Server-Side Sum tail latency under load: stash vs nonstash");
  Table table({"size(B)", "ns med(us)", "ns tail(us)", "ns spread",
               "st med(us)", "st tail(us)", "st spread", "tail ratio"});

  bool ok = true;
  int stash_tail_wins = 0, points = 0;
  double spread_at_2k_and_up = 0;
  for (std::uint64_t size = 512; size <= 32768; size *= 2) {
    AmConfig config = SsumConfig(size, core::Invoke::kInjected);
    config.iterations = size <= 4096 ? 2500 : 1200;
    config.warmup = 250;

    auto stash_bed = MakeBenchTestbed(PaperTestbed().WithStashing(true));
    ApplyStress(*stash_bed, StressConfig{});
    const auto stash = MustOk(RunAmPingPong(*stash_bed, config), "stash");

    auto nonstash_bed = MakeBenchTestbed(PaperTestbed().WithStashing(false));
    ApplyStress(*nonstash_bed, StressConfig{});
    const auto nonstash =
        MustOk(RunAmPingPong(*nonstash_bed, config), "nonstash");

    const double ratio = static_cast<double>(nonstash.one_way.Tail()) /
                         static_cast<double>(stash.one_way.Tail());
    ++points;
    if (ratio > 1.0) ++stash_tail_wins;
    if (size >= 2048) {
      spread_at_2k_and_up =
          std::max(spread_at_2k_and_up, stash.one_way.TailSpread());
    }
    table.AddRow({FmtU64(size), FmtUs(nonstash.one_way.Median()),
                  FmtUs(nonstash.one_way.Tail()),
                  FmtPct(nonstash.one_way.TailSpread()),
                  FmtUs(stash.one_way.Median()),
                  FmtUs(stash.one_way.Tail()),
                  FmtPct(stash.one_way.TailSpread()),
                  FmtF(ratio, "%.2fx")});
  }
  table.Print();

  std::printf("\npaper: stash tail generally better (up to 2x); from 2 KB "
              "up, stash spread <= 137%% of median.\n");
  ok &= ShapeCheck("stashing wins the tail at most sizes",
                   stash_tail_wins * 2 > points);
  ok &= ShapeCheck("stash spread bounded from 2KB up (< 250%)",
                   spread_at_2k_and_up < 2.5);
  return FinishChecks(ok);
}
