// Google-benchmark micros for the simulator substrates themselves: how fast
// the host machine runs the cache model, the interpreter, the frame codec,
// the assembler, and the amcc compiler. These bound how long the figure
// benches take, and catch performance regressions in the simulation core.
#include <benchmark/benchmark.h>

#include "amcc/compiler.hpp"
#include "cache/hierarchy.hpp"
#include "common/rng.hpp"
#include "core/frame.hpp"
#include "jamvm/assembler.hpp"
#include "jamvm/interpreter.hpp"
#include "mem/host_memory.hpp"

namespace {

using namespace twochains;

cache::HierarchyConfig SmallCache() {
  cache::HierarchyConfig cfg;
  cfg.l1 = {"L1", KiB(64), 4, 2};
  cfg.l2 = {"L2", MiB(1), 8, 12};
  cfg.l3 = {"L3", MiB(1), 16, 30};
  cfg.llc = {"LLC", MiB(8), 16, 55};
  return cfg;
}

void BM_CacheHit(benchmark::State& state) {
  cache::CacheHierarchy caches(SmallCache());
  caches.AccessLine(0, 0x10000, cache::AccessKind::kLoad);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        caches.AccessLine(0, 0x10000, cache::AccessKind::kLoad));
  }
}
BENCHMARK(BM_CacheHit);

void BM_CacheRandomAccess(benchmark::State& state) {
  cache::CacheHierarchy caches(SmallCache());
  Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(caches.AccessLine(
        0, rng.NextBelow(MiB(64)), cache::AccessKind::kLoad));
  }
}
BENCHMARK(BM_CacheRandomAccess);

void BM_StashDeliver4K(benchmark::State& state) {
  cache::CacheHierarchy caches(SmallCache());
  for (auto _ : state) {
    caches.StashDeliver(0x100000, 4096);
  }
}
BENCHMARK(BM_StashDeliver4K);

void BM_InterpreterSumLoop(benchmark::State& state) {
  // Interpreted instructions per second on a tight sum loop.
  mem::HostMemory memory(0, MiB(8));
  cache::CacheHierarchy caches(SmallCache());
  auto obj = vm::Assemble(R"(
    f:
      mov t0, zr
    .loop:
      beq a0, zr, .done
      add t0, t0, a0
      addi a0, a0, -1
      jmp .loop
    .done:
      mov a0, t0
      ret
  )");
  auto code = memory.Allocate(obj->text.size(), 64, mem::Perm::kRWX, "c");
  (void)memory.DmaWrite(*code, obj->text);
  auto stack = memory.Allocate(KiB(16), 16, mem::Perm::kRW, "s");
  vm::Interpreter interp(memory, caches, 0, nullptr);
  const std::uint64_t n = 1000;
  for (auto _ : state) {
    const std::uint64_t args[1] = {n};
    auto r = interp.Execute(*code, args, *stack + KiB(16));
    benchmark::DoNotOptimize(r.return_value);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(4 * n + 4));
}
BENCHMARK(BM_InterpreterSumLoop);

void BM_FramePack(benchmark::State& state) {
  const std::uint64_t usr_bytes = static_cast<std::uint64_t>(state.range(0));
  core::FrameSpec spec;
  spec.injected = true;
  spec.got_slots = 4;
  spec.code_size = 1408;
  spec.args_size = 16;
  spec.usr_size = usr_bytes;
  const std::vector<std::uint64_t> gotp(4, 0x1234);
  const std::vector<std::uint8_t> code(1408, 0x90);
  const std::vector<std::uint8_t> args(16, 1);
  const std::vector<std::uint8_t> usr(usr_bytes, 2);
  core::FrameHeader header;
  header.sn = 7;
  for (auto _ : state) {
    auto frame = core::PackFrame(spec, header, gotp, code, args, usr);
    benchmark::DoNotOptimize(frame->size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(usr_bytes + 1408));
}
BENCHMARK(BM_FramePack)->Arg(64)->Arg(4096)->Arg(65536);

void BM_Assembler(benchmark::State& state) {
  const std::string source = R"(
    .extern helper
    .global f
    f:
      addi sp, sp, -16
      std lr, [sp]
      ldg t0, @helper
      jalr lr, t0, 0
      ldd lr, [sp]
      addi sp, sp, 16
      ret
  )";
  for (auto _ : state) {
    auto obj = vm::Assemble(source);
    benchmark::DoNotOptimize(obj->text.size());
  }
}
BENCHMARK(BM_Assembler);

void BM_AmccCompile(benchmark::State& state) {
  const std::string source = R"(
    extern long tc_hash64(long x);
    long jam_bench(long* args, long* usr, long usr_bytes) {
      long n = usr_bytes / 8;
      long total = 0;
      for (long i = 0; i < n; ++i) total += usr[i] * 3 + tc_hash64(i);
      return total;
    }
  )";
  for (auto _ : state) {
    auto result = amcc::Compile(source, "bench.amc");
    benchmark::DoNotOptimize(result->object.text.size());
  }
}
BENCHMARK(BM_AmccCompile);

}  // namespace

BENCHMARK_MAIN();
