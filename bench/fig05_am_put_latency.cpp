// Figure 5: Server-Side Sum — Two-Chains AM put (without-execution) latency
// vs plain UCX data put, 256 B..32 KiB ping-pong.
//
// Paper claims: "no significant drop in latency, 1.5% at worst, for
// messages going to the Two-Chains reactive mailboxes."
#include "fig_common.hpp"

using namespace twochains;
using namespace twochains::bench;

int main() {
  Banner("Figure 5", "AM put (without execution) latency vs UCX data put");
  Table table({"size(B)", "data put(us)", "AM put(us)", "reduction",
               "protocol"});

  bool ok = true;
  double worst_penalty = 0.0;
  for (std::uint64_t size = 256; size <= 32768; size *= 2) {
    // Fresh testbeds per size keep cache state comparable across points.
    auto data_bed = MakeBenchTestbed();
    RawPutConfig raw;
    raw.size = size;
    raw.iterations = IterationsFor(size);
    raw.warmup = raw.iterations / 5;
    const auto data = MustOk(RunRawPutPingPong(*data_bed, raw), "data put");

    auto am_bed = MakeBenchTestbed();
    AmConfig am = SsumConfig(UsrBytesForLocalFrame(size), core::Invoke::kLocal);
    am.no_execute = true;  // the paper's without-execution configuration
    const auto am_result = MustOk(RunAmPingPong(*am_bed, am), "AM put");

    const double data_us = ToMicroseconds(data.one_way.Median());
    const double am_us = ToMicroseconds(am_result.one_way.Median());
    const double reduction = (data_us - am_us) / data_us;
    worst_penalty = std::min(worst_penalty, reduction);
    table.AddRow({FmtU64(size), FmtF(data_us, "%.3f"), FmtF(am_us, "%.3f"),
                  FmtPct(reduction),
                  std::string(ucxs::ProtocolName(am_result.protocol))});
    if (am_result.frame_len != size) {
      std::fprintf(stderr, "frame sizing drift: %llu != %llu\n",
                   static_cast<unsigned long long>(am_result.frame_len),
                   static_cast<unsigned long long>(size));
    }
  }
  table.Print();

  std::printf("\npaper: AM put within ~1.5%% of data put at worst.\n");
  ok &= ShapeCheck("AM put latency within 4% of UCX put at every size",
                   worst_penalty > -0.04);
  return FinishChecks(ok);
}
