// Extension figure: sharded in-memory KV serving under Zipf open-loop
// load. The paper's microbenchmarks (§VII) show what one injected jam
// costs; this scenario shows what a *service* built from jams costs: a
// simulated-client population issues kv_get/kv_put against shard hosts
// holding the jamlib kv table as resident state, arrivals follow a
// Poisson process (queueing counts toward latency), and key popularity is
// Zipf(1.0) — the hot-key mix the receiver-side jam cache's
// invoke-by-handle fast path exists for.
//
// Reported per row: p50 / p99 / p99.9 against a p99 SLO, achieved rate,
// and honest wire bytes per request (full-body resends after cache-miss
// NAKs included). The cache-off vs cache-on contrast at equal load is the
// headline: the hot path must move measurably fewer bytes per request.
//
// `--json` additionally writes BENCH_kv_serving.json (CI artifact);
// `--quick` shrinks the windows for smoke runs; `--lanes N` adds a
// lane-scaling section (the headline cached row at 1 vs N engine lanes:
// wall-clock speedup, simulated results required identical).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "benchlib/openloop.hpp"
#include "fig_common.hpp"
#include "jamlib/jamlib.hpp"

using namespace twochains;
using namespace twochains::bench;

namespace {

/// The serving SLO this figure grades against: p99 within 40 simulated
/// microseconds of arrival (queueing included).
constexpr double kSloP99Ns = 40000.0;

struct ServingRow {
  std::string label;
  double offered_mops = 0;
  bool cached = false;
  OpenLoopResult result;
  double p50_ns = 0, p99_ns = 0, p999_ns = 0;
  double bytes_per_req = 0;
  bool slo_met = false;
};

/// Value of `flag N` on the command line, or @p fallback when absent.
std::uint32_t FlagValueU32(int argc, char** argv, const char* flag,
                           std::uint32_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return static_cast<std::uint32_t>(std::atoi(argv[i + 1]));
    }
  }
  return fallback;
}

OpenLoopConfig RowConfig(double offered_mops, bool cached,
                         std::uint64_t requests) {
  OpenLoopConfig config;
  config.client_hosts = 2;
  config.shards = 4;
  config.simulated_clients = 1'000'000;
  config.keyspace = 2048;
  config.zipf_theta = 1.0;
  config.put_fraction = 0.10;
  config.requests = requests;
  config.offered_rate_mops = offered_mops;
  config.seed = 19;
  if (cached) {
    config.jam_cache.enabled = true;
    config.jam_cache.capacity = 8;
  }
  return config;
}

ServingRow RunRow(const char* label, double offered_mops, bool cached,
                  std::uint64_t requests) {
  const OpenLoopConfig config = RowConfig(offered_mops, cached, requests);

  ServingRow row;
  row.label = label;
  row.offered_mops = offered_mops;
  row.cached = cached;
  row.result = MustOk(RunKvOpenLoop(config), label);
  if (!row.result.ok) {
    std::fprintf(stderr, "%s failed: %s\n", label, row.result.error.c_str());
    std::abort();
  }
  row.p50_ns = static_cast<double>(row.result.latency.Percentile(0.50)) / 1e3;
  row.p99_ns = static_cast<double>(row.result.latency.Percentile(0.99)) / 1e3;
  row.p999_ns =
      static_cast<double>(row.result.latency.Percentile(0.999)) / 1e3;
  row.bytes_per_req = static_cast<double>(row.result.wire_bytes) /
                      static_cast<double>(row.result.completed);
  row.slo_met = row.p99_ns <= kSloP99Ns;
  return row;
}

void WriteJson(const char* path, const std::vector<ServingRow>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"kv_serving\",\n  \"slo_p99_ns\": %.0f,\n",
               kSloP99Ns);
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ServingRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"label\": \"%s\", \"offered_mops\": %.2f, "
        "\"jam_cache\": %s, \"completed\": %llu, "
        "\"p50_ns\": %.1f, \"p99_ns\": %.1f, \"p999_ns\": %.1f, "
        "\"slo_met\": %s, \"achieved_mops\": %.3f, "
        "\"wire_bytes\": %llu, \"bytes_per_request\": %.1f, "
        "\"cache_hits\": %llu, \"by_handle_sends\": %llu, "
        "\"resends\": %llu, \"queued\": %llu, "
        "\"distinct_clients\": %llu, \"hot_head_requests\": %llu}%s\n",
        r.label.c_str(), r.offered_mops, r.cached ? "true" : "false",
        static_cast<unsigned long long>(r.result.completed), r.p50_ns,
        r.p99_ns, r.p999_ns, r.slo_met ? "true" : "false",
        r.result.achieved_mops,
        static_cast<unsigned long long>(r.result.wire_bytes), r.bytes_per_req,
        static_cast<unsigned long long>(r.result.jam.hits),
        static_cast<unsigned long long>(r.result.jam.by_handle_sends),
        static_cast<unsigned long long>(r.result.jam.resends),
        static_cast<unsigned long long>(r.result.queued),
        static_cast<unsigned long long>(r.result.distinct_clients),
        static_cast<unsigned long long>(r.result.hot_head_requests),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  Banner("Fig. 19 (ext)",
         "sharded KV serving: Zipf(1.0) open-loop load, p99 SLO");

  const bool quick = HasFlag(argc, argv, "--quick");
  const std::uint64_t requests = quick ? 1500 : 6000;

  std::vector<ServingRow> rows;
  rows.push_back(RunRow("full-body @0.5M/s", 0.5, false, requests));
  rows.push_back(RunRow("by-handle @0.5M/s", 0.5, true, requests));
  rows.push_back(RunRow("full-body @1.0M/s", 1.0, false, requests));
  rows.push_back(RunRow("by-handle @1.0M/s", 1.0, true, requests));

  Table table({"scenario", "p50(ns)", "p99(ns)", "p99.9(ns)", "SLO",
               "B/req", "hits", "resend", "ach(M/s)"});
  for (const ServingRow& r : rows) {
    table.AddRow({r.label, FmtF(r.p50_ns, "%.0f"), FmtF(r.p99_ns, "%.0f"),
                  FmtF(r.p999_ns, "%.0f"), r.slo_met ? "met" : "MISS",
                  FmtF(r.bytes_per_req, "%.0f"), FmtU64(r.result.jam.hits),
                  FmtU64(r.result.jam.resends),
                  FmtF(r.result.achieved_mops, "%.3f")});
  }
  table.Print();

  const ServingRow& cold = rows[2];  // full-body @1.0M/s
  const ServingRow& warm = rows[3];  // by-handle @1.0M/s

  bool ok = true;
  for (const ServingRow& r : rows) {
    ok &= ShapeCheck(
        (r.label + ": all requests completed, every warm get hit").c_str(),
        r.result.completed == requests &&
            r.result.get_hits == r.result.gets);
    ok &= ShapeCheck((r.label + ": percentiles ordered").c_str(),
                     r.p50_ns <= r.p99_ns && r.p99_ns <= r.p999_ns);
  }
  ok &= ShapeCheck("Zipf(1.0) head is hot (top-10 ranks > 25% of traffic)",
                   cold.result.hot_head_requests > requests / 4);
  ok &= ShapeCheck("client population is wide (thousands of distinct clients)",
                   cold.result.distinct_clients > requests / 2);
  ok &= ShapeCheck("by-handle hot path dominates the cached run (>90% hits)",
                   warm.result.jam.by_handle_sends > 0 &&
                       warm.result.jam.hits * 10 >
                           warm.result.jam.by_handle_sends * 9);
  ok &= ShapeCheck(
      "by-handle beats full-body resend on the wire (<70% bytes/request)",
      warm.bytes_per_req < 0.7 * cold.bytes_per_req);
  ok &= ShapeCheck("cache-off run sends no slim frames",
                   cold.result.jam.by_handle_sends == 0);
  ok &= ShapeCheck("cached run meets the p99 SLO at 1.0M/s", warm.slo_met);

  const std::uint32_t lanes = FlagValueU32(argc, argv, "--lanes", 1);
  if (lanes > 1) {
    // Lane scaling: the headline cached row, wall-clock timed at 1 vs N
    // engine lanes. Lanes buy wall-clock only — every simulated number
    // (latency percentiles included) must come back identical.
    const auto timed = [requests](std::uint32_t n) {
      OpenLoopConfig config = RowConfig(1.0, true, requests);
      config.lanes = n;
      const auto start = std::chrono::steady_clock::now();
      OpenLoopResult result = MustOk(RunKvOpenLoop(config), "lane scaling");
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (!result.ok) {
        std::fprintf(stderr, "lane scaling failed: %s\n",
                     result.error.c_str());
        std::abort();
      }
      return std::make_pair(std::move(result), seconds);
    };
    const auto [one, one_seconds] = timed(1);
    const auto [laned, laned_seconds] = timed(lanes);
    std::printf(
        "\nlane scaling, by-handle @1.0M/s (%u hardware threads):\n"
        "  1 lane : %.3fs wall  p50 %llu ps  p99 %llu ps\n"
        "  %u lanes: %.3fs wall  p50 %llu ps  p99 %llu ps\n"
        "  wall-clock speedup: %.2fx\n",
        std::thread::hardware_concurrency(), one_seconds,
        static_cast<unsigned long long>(one.latency.Percentile(0.50)),
        static_cast<unsigned long long>(one.latency.Percentile(0.99)), lanes,
        laned_seconds,
        static_cast<unsigned long long>(laned.latency.Percentile(0.50)),
        static_cast<unsigned long long>(laned.latency.Percentile(0.99)),
        one_seconds / laned_seconds);
    ok &= ShapeCheck(
        "laned serving reproduces single-lane results exactly",
        laned.completed == one.completed &&
            laned.wire_bytes == one.wire_bytes &&
            laned.duration == one.duration &&
            laned.latency.Percentile(0.50) == one.latency.Percentile(0.50) &&
            laned.latency.Percentile(0.99) == one.latency.Percentile(0.99) &&
            laned.latency.Percentile(0.999) == one.latency.Percentile(0.999));
  }

  if (HasFlag(argc, argv, "--json")) {
    WriteJson("BENCH_kv_serving.json", rows);
  }
  return FinishChecks(ok);
}
