// Shared scaffolding for the figure-reproduction benches. Each bench binary
// reproduces one figure of the paper's §VII: it sweeps the same x-axis,
// prints the measured series, and evaluates the figure's qualitative claims
// as PASS/FAIL shape checks.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>

#include "benchlib/perftest.hpp"
#include "benchlib/stress.hpp"
#include "benchlib/table.hpp"
#include "benchlib/testbed_defaults.hpp"
#include "benchlib/workloads.hpp"
#include "core/two_chains.hpp"

namespace twochains::bench {

/// A fresh paper-testbed with the benchmark package loaded.
inline std::unique_ptr<core::Testbed> MakeBenchTestbed(
    core::TestbedOptions options = PaperTestbed()) {
  auto testbed = std::make_unique<core::Testbed>(options);
  auto package = BuildBenchPackage();
  if (!package.ok()) {
    std::fprintf(stderr, "package build failed: %s\n",
                 package.status().ToString().c_str());
    std::abort();
  }
  Status st = testbed->LoadPackage(*package);
  if (!st.ok()) {
    std::fprintf(stderr, "package load failed: %s\n", st.ToString().c_str());
    std::abort();
  }
  return testbed;
}

/// Jam-cache parameterization for the `--hot` bench variants: capacity
/// covers the whole bench package, so a warm sweep never evicts and every
/// send after the first rides the by-handle fast path.
inline core::JamCacheConfig HotJamCache() {
  core::JamCacheConfig cache;
  cache.enabled = true;
  cache.capacity = 8;
  return cache;
}

/// Compact switched-tree incast fabric for the `--tree` bench variants:
/// host -> ToR -> spine with 4:1 trunk oversubscription, so the ToR
/// uplinks congest and ECN marks fire under incast. HostMemory is real
/// memory, so the 33-65 host sweeps shrink every arena to the package
/// plus mailbox footprint instead of the paper's 512 MiB testbed shape.
inline core::FabricOptions TreeBenchFabric(std::uint32_t senders,
                                           bool adaptive,
                                           std::uint32_t hub_pool_cores = 1) {
  const core::TestbedOptions paper = PaperTestbed();
  core::FabricOptions options;
  options.hosts = senders + 1;
  options.topology = core::Topology::kTree;
  options.hub = 0;
  options.tree.arity = 8;
  options.tree.tiers = 2;
  options.tree.oversub = 4.0;
  options.switches.buffer_bytes = KiB(64);
  options.switches.ecn_threshold_bytes = KiB(8);
  options.nic = paper.nic;
  options.protocol = paper.protocol;
  options.runtime = paper.runtime;
  options.runtime.mailboxes_per_bank = 8;
  options.runtime.mailbox_slot_bytes = KiB(4);
  options.runtime.adaptive.enabled = adaptive;
  options.host = paper.host0;
  options.host.memory_bytes = MiB(24);
  options.host_overrides.assign(options.hosts, options.host);
  options.host_overrides[0].memory_bytes =
      MiB(48) + std::uint64_t{senders} * options.runtime.banks *
                    options.runtime.mailboxes_per_bank *
                    options.runtime.mailbox_slot_bytes;
  if (hub_pool_cores > 1) {
    options.host_overrides[0].cache.cores =
        std::max(options.host.cache.cores, hub_pool_cores + 1);
    options.runtime_overrides.assign(options.hosts, options.runtime);
    options.runtime_overrides[0].receiver_cores = hub_pool_cores;
    options.runtime_overrides[0].sender_core = hub_pool_cores;
  }
  return options;
}

/// True iff @p flag (e.g. "--hot") appears anywhere in argv.
inline bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

/// Payload bytes that make a Local (no-code, no-args) frame exactly
/// @p frame_len bytes: header 24 + usr + signal 8, rounded to 64.
inline std::uint64_t UsrBytesForLocalFrame(std::uint64_t frame_len) {
  return frame_len - 32;
}

/// Iteration count budget by payload size (keeps whole-suite runtime sane
/// while giving small sizes dense sampling).
inline std::uint32_t IterationsFor(std::uint64_t bytes) {
  if (bytes <= 1024) return 1200;
  if (bytes <= 8192) return 600;
  if (bytes <= 32768) return 300;
  return 150;
}

/// Indirect Put config for an n-integer payload (the Fig. 7-11, 13 x-axis:
/// "number of integers being Put", 4-byte integers).
inline AmConfig IputConfig(std::uint64_t n_ints, core::Invoke mode) {
  AmConfig config;
  config.jam = "iput";
  config.mode = mode;
  config.usr_bytes = 4 * n_ints;
  config.iterations = IterationsFor(config.usr_bytes);
  config.warmup = config.iterations / 5;
  config.args = [](std::uint64_t iter) {
    return std::vector<std::uint64_t>{iter & 127};
  };
  return config;
}

/// Server-Side Sum config for a payload of @p usr_bytes.
inline AmConfig SsumConfig(std::uint64_t usr_bytes, core::Invoke mode) {
  AmConfig config;
  config.jam = "ssum";
  config.mode = mode;
  config.usr_bytes = usr_bytes;
  config.iterations = IterationsFor(usr_bytes);
  config.warmup = config.iterations / 5;
  config.args = [](std::uint64_t) { return std::vector<std::uint64_t>{}; };
  return config;
}

/// Aborts the process (non-zero) on harness errors; shape-check failures
/// only print FAIL so the whole bench suite always runs to completion.
template <typename T>
inline T MustOk(StatusOr<T> value, const char* what) {
  if (!value.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what,
                 value.status().ToString().c_str());
    std::abort();
  }
  return std::move(value).value();
}

inline int FinishChecks(bool all_ok) {
  std::printf("\nshape checks: %s\n", all_ok ? "ALL PASS" : "FAILURES");
  return 0;  // keep the suite running; EXPERIMENTS.md records outcomes
}

}  // namespace twochains::bench
