// Figure 8: Indirect Put — message rate, Injected vs Local Function,
// 1..16384 integers (injection-rate shape with bank flow control).
//
// Paper claims: mirror of Fig. 7 — ~40% lower rate for small payloads
// (more bytes per message), converging as payload grows.
#include "fig_common.hpp"

using namespace twochains;
using namespace twochains::bench;

namespace {

/// `--hot` variant: the same Injected sweep with the receiver-side jam
/// cache armed. The first send per testbed travels full-body and installs;
/// every later send rides the 64 B by-handle frame, so wire bytes/invoke
/// and link cycles/invoke collapse while the message rate only rises.
int RunHot() {
  Banner("Figure 8 --hot",
         "Indirect Put injected rate: cold full-body vs warm jam cache");
  Table table({"ints", "cold(msg/s)", "hot(msg/s)", "cold B/inv",
               "hot B/inv", "wire saved", "link cyc/inv saved"});

  bool ok = true;
  bool bytes_drop = true;
  bool all_hits = true;
  double small_speedup = 0;
  for (std::uint64_t n = 1; n <= 16384; n *= 2) {
    auto cold_bed = MakeBenchTestbed();
    const auto cold = MustOk(
        RunAmInjectionRate(*cold_bed, IputConfig(n, core::Invoke::kInjected)),
        "cold");
    auto hot_bed = MakeBenchTestbed(PaperTestbed().WithJamCache(HotJamCache()));
    const auto hot = MustOk(
        RunAmInjectionRate(*hot_bed, IputConfig(n, core::Invoke::kInjected)),
        "hot");

    const double cold_bpi =
        static_cast<double>(cold.wire_bytes) / cold.messages;
    const double hot_bpi = static_cast<double>(hot.wire_bytes) / hot.messages;
    const double cyc_saved =
        static_cast<double>(hot.rx_jam.link_cycles_saved) / hot.messages;
    bytes_drop &= hot_bpi < cold_bpi;
    // One install per fresh testbed; every later send must hit.
    all_hits &= hot.rx_jam.hits == hot.messages - 1 &&
                hot.rx_jam.misses == 0;
    if (n == 1) {
      small_speedup = hot.messages_per_second / cold.messages_per_second;
    }
    table.AddRow({FmtU64(n), FmtF(cold.messages_per_second, "%.0f"),
                  FmtF(hot.messages_per_second, "%.0f"),
                  FmtF(cold_bpi, "%.0f"), FmtF(hot_bpi, "%.0f"),
                  FmtPct(1.0 - hot_bpi / cold_bpi),
                  FmtF(cyc_saved, "%.1f")});
  }
  table.Print();

  std::printf("\nwarm cache: send-once/invoke-many — wire bytes/invoke and "
              "link cycles/invoke drop, rate never falls.\n");
  ok &= ShapeCheck("wire bytes/invoke below full-body at every size",
                   bytes_drop);
  ok &= ShapeCheck("every warm send is a cache hit (one install, no misses)",
                   all_hits);
  ok &= ShapeCheck("warm rate higher at 1 int (slimmer frames pump faster)",
                   small_speedup > 1.0);
  return FinishChecks(ok);
}

}  // namespace

int main(int argc, char** argv) {
  if (HasFlag(argc, argv, "--hot")) return RunHot();
  Banner("Figure 8", "Indirect Put message rate: Injected vs Local Function");
  Table table({"ints", "local(msg/s)", "injected(msg/s)", "change"});

  bool ok = true;
  double small_change = 0, large_change = 0;
  for (std::uint64_t n = 1; n <= 16384; n *= 2) {
    auto local_bed = MakeBenchTestbed();
    const auto local = MustOk(
        RunAmInjectionRate(*local_bed, IputConfig(n, core::Invoke::kLocal)),
        "local");
    auto injected_bed = MakeBenchTestbed();
    const auto injected = MustOk(
        RunAmInjectionRate(*injected_bed,
                           IputConfig(n, core::Invoke::kInjected)),
        "injected");

    const double change = (injected.messages_per_second -
                           local.messages_per_second) /
                          local.messages_per_second;
    if (n == 1) small_change = change;
    if (n == 16384) large_change = change;
    table.AddRow({FmtU64(n), FmtF(local.messages_per_second, "%.0f"),
                  FmtF(injected.messages_per_second, "%.0f"),
                  FmtPct(change)});
  }
  table.Print();

  std::printf("\npaper: injected rate ~40%% lower at small payloads, "
              "converging to ~0%% as payload dominates.\n");
  ok &= ShapeCheck("injected rate lower at 1 int", small_change < -0.10);
  ok &= ShapeCheck("rates converge at 16384 ints (within 5%)",
                   large_change > -0.05);
  return FinishChecks(ok);
}
