// Figure 8: Indirect Put — message rate, Injected vs Local Function,
// 1..16384 integers (injection-rate shape with bank flow control).
//
// Paper claims: mirror of Fig. 7 — ~40% lower rate for small payloads
// (more bytes per message), converging as payload grows.
#include "fig_common.hpp"

using namespace twochains;
using namespace twochains::bench;

int main() {
  Banner("Figure 8", "Indirect Put message rate: Injected vs Local Function");
  Table table({"ints", "local(msg/s)", "injected(msg/s)", "change"});

  bool ok = true;
  double small_change = 0, large_change = 0;
  for (std::uint64_t n = 1; n <= 16384; n *= 2) {
    auto local_bed = MakeBenchTestbed();
    const auto local = MustOk(
        RunAmInjectionRate(*local_bed, IputConfig(n, core::Invoke::kLocal)),
        "local");
    auto injected_bed = MakeBenchTestbed();
    const auto injected = MustOk(
        RunAmInjectionRate(*injected_bed,
                           IputConfig(n, core::Invoke::kInjected)),
        "injected");

    const double change = (injected.messages_per_second -
                           local.messages_per_second) /
                          local.messages_per_second;
    if (n == 1) small_change = change;
    if (n == 16384) large_change = change;
    table.AddRow({FmtU64(n), FmtF(local.messages_per_second, "%.0f"),
                  FmtF(injected.messages_per_second, "%.0f"),
                  FmtPct(change)});
  }
  table.Print();

  std::printf("\npaper: injected rate ~40%% lower at small payloads, "
              "converging to ~0%% as payload dominates.\n");
  ok &= ShapeCheck("injected rate lower at 1 int", small_change < -0.10);
  ok &= ShapeCheck("rates converge at 16384 ints (within 5%)",
                   large_change > -0.05);
  return FinishChecks(ok);
}
