// fig18 (beyond the paper): pool-core hotplug under a skewed incast —
// quiesce one core of the hub's receiver pool mid-drain, then revive it,
// and watch the aggregate executed-jam rate dip and recover.
//
// The paper's runtime assumes a fixed receiver; our pool hard-wired
// bank->core affinity at Initialize until Runtime::QuiesceCore made the
// map live: the quiesced core finishes its one in-flight frame while
// every bank homed to it is re-sharded onto the survivors (a permanent
// handoff through the claim machinery, preferring same-domain survivors),
// and bank flags keep returning throughout, so the senders feel a slower
// hub — never a deadlocked one. Runtime::ReviveCore restores the original
// affinity map. This bench measures that end to end:
//
//   * star fabric, 8 senders with a skewed *stationary* offered load —
//     four hot senders push Server-Side Sum over 1 KiB payloads flat out
//     while four light ones are paced an order of magnitude slower — into
//     a hub with a 4-core (then 8-core) receiver pool;
//   * at 1/3 of the measured completions, QuiesceCore(0); at 2/3,
//     ReviveCore(0) — both scheduled off the completion count so the run
//     is deterministic;
//   * completions are bucketed into fixed time windows to print the
//     throughput curve around the two hotplug edges.
//
// Expectations: the drain window is visibly slower than the pre-quiesce
// rate (one fewer core under saturation); after the revive the rate
// recovers to >= 90% of the pre-quiesce rate; no frame is ever dropped
// (every message executes exactly once, nothing left in flight, every
// bank flag home); and the hotplug ledger reconciles (banks out == banks
// back, stranded backlog == frames_drained_during_quiesce).
#include <cstring>

#include "common/pump.hpp"
#include "fig_common.hpp"

namespace twochains::bench {
namespace {

constexpr std::uint32_t kSenders = 8;
/// Completions that define the measured run: quiesce at 1/3, revive at
/// 2/3, measurement ends at the target (senders then stop and the fabric
/// drains). Keeping senders pushing the whole time — hot ones flat out,
/// light ones paced — makes the offered load stationary, so the three
/// phase rates compare the same regime and differ only by the hotplug.
constexpr std::uint64_t kMeasuredCompletions = 6000;
/// Pacing gap of the light senders (the skew: hot senders send at full
/// tilt, light ones roughly an order of magnitude slower).
constexpr PicoTime kLightGap = Microseconds(25);
constexpr std::uint32_t kCurveWindows = 20;

struct HotplugResult {
  std::uint32_t pool = 0;
  std::uint64_t total = 0;
  std::uint64_t executed = 0;
  double pre_rate = 0;    ///< msg/s before the quiesce
  double drain_rate = 0;  ///< msg/s between quiesce and revive
  double post_rate = 0;   ///< msg/s after the revive (settled)
  PicoTime quiesced_at = 0;
  PicoTime revived_at = 0;
  PicoTime drained_at = 0;
  std::uint64_t stranded = 0;        ///< QuiesceCore's reported handover
  std::uint64_t banks_resharded = 0;
  std::uint64_t frames_drained_during_quiesce = 0;
  std::uint64_t in_flight_at_end = 0;
  std::uint64_t pending_rehomes_at_end = 0;
  std::uint32_t closed_send_banks = 0;
  std::vector<PicoTime> completions;  ///< completion instants, in order
};

HotplugResult RunHotplug(std::uint32_t pool_cores) {
  core::FabricOptions options =
      PaperFabric(kSenders + 1, core::Topology::kStar, 0);
  options.host_overrides.assign(kSenders + 1, options.host);
  options.host_overrides[0].cache.cores =
      std::max(options.host.cache.cores, pool_cores + 1);
  options.runtime_overrides.assign(kSenders + 1, options.runtime);
  options.runtime_overrides[0].receiver_cores = pool_cores;
  options.runtime_overrides[0].sender_core = pool_cores;
  core::Fabric fabric(options);
  auto package = BuildBenchPackage();
  if (!package.ok() || !fabric.LoadPackage(*package).ok()) {
    std::fprintf(stderr, "fabric setup failed\n");
    std::abort();
  }
  core::Runtime& hub = fabric.runtime(0);

  HotplugResult r;
  r.pool = pool_cores;

  // Skewed offered load: even-indexed senders (hub peers 0, 2, 4, 6) push
  // flat out; odd ones are paced by kLightGap per message.
  struct Sender {
    core::PeerId to_hub = core::kInvalidPeer;
    std::uint64_t sent = 0;
    bool hot = false;
  };
  std::vector<Sender> senders(kSenders);
  for (std::uint32_t s = 0; s < kSenders; ++s) {
    senders[s].hot = (s % 2 == 0);
    senders[s].to_hub = MustOk(fabric.PeerIdFor(s + 1, 0), "peer lookup");
  }
  bool stop_sending = false;
  std::uint64_t total_sent = 0;

  const std::uint64_t quiesce_after = kMeasuredCompletions / 3;
  const std::uint64_t revive_after = (2 * kMeasuredCompletions) / 3;
  hub.SetOnExecuted([&](const core::ReceivedMessage& msg) {
    ++r.executed;
    r.completions.push_back(msg.completed_at);
    if (r.executed == kMeasuredCompletions) stop_sending = true;
    if (r.executed == quiesce_after) {
      fabric.engine().ScheduleAfter(0, [&] {
        r.quiesced_at = fabric.engine().Now();
        r.stranded = MustOk(hub.QuiesceCore(0), "QuiesceCore");
      }, "fig18.quiesce");
    }
    if (r.executed == revive_after) {
      fabric.engine().ScheduleAfter(0, [&] {
        r.revived_at = fabric.engine().Now();
        const Status st = hub.ReviveCore(0);
        if (!st.ok()) {
          std::fprintf(stderr, "ReviveCore failed: %s\n",
                       st.ToString().c_str());
          std::abort();
        }
      }, "fig18.revive");
    }
  });

  const std::vector<std::uint8_t> usr(1024, 0xC3);
  PumpLoop<std::uint32_t> pump;
  pump.Set([&, resume = pump.Handle()](std::uint32_t s) {
    Sender& sender = senders[s];
    core::Runtime& rt = fabric.runtime(s + 1);
    if (stop_sending) return;
    if (!rt.HasFreeSlot(sender.to_hub)) {
      rt.NotifyWhenSlotFree(sender.to_hub, [resume, s] { resume(s); });
      return;
    }
    const std::vector<std::uint64_t> args = {sender.sent & 127};
    auto receipt = rt.Send(sender.to_hub, "ssum", core::Invoke::kInjected,
                           args, usr);
    if (!receipt.ok()) {
      std::fprintf(stderr, "send failed: %s\n",
                   receipt.status().ToString().c_str());
      std::abort();
    }
    ++sender.sent;
    ++total_sent;
    fabric.engine().ScheduleAfter(
        receipt->sender_cost + (sender.hot ? 0 : kLightGap),
        [resume, s] { resume(s); }, "fig18.send");
  });
  for (std::uint32_t s = 0; s < kSenders; ++s) pump(s);
  fabric.Run();
  hub.SetOnExecuted(nullptr);

  r.total = total_sent;
  r.drained_at = fabric.engine().Now();
  r.banks_resharded = hub.stats().banks_resharded;
  r.frames_drained_during_quiesce =
      hub.stats().frames_drained_during_quiesce;
  r.in_flight_at_end = hub.InFlightFrames();
  r.pending_rehomes_at_end = hub.PendingRehomes();
  for (std::uint32_t s = 0; s < kSenders; ++s) {
    r.closed_send_banks +=
        fabric.runtime(s + 1).ClosedSendBanks(senders[s].to_hub);
  }

  // Phase rates off the completion timeline, windowed by completion
  // *count*: the pre window skips the cold start, the post window skips
  // a short settle after the revive (the re-homed banks' backlog drains
  // at survivor speed first) and ends at the measurement target, before
  // the senders stop and the closing drain distorts the rate.
  const auto rate_over = [&](std::uint64_t from_idx, std::uint64_t to_idx) {
    to_idx = std::min<std::uint64_t>(to_idx, r.completions.size() - 1);
    if (to_idx <= from_idx) return 0.0;
    const PicoTime span =
        r.completions[to_idx] - r.completions[from_idx];
    return span > 0 ? MessagesPerSecond(to_idx - from_idx, span) : 0.0;
  };
  r.pre_rate = rate_over(kMeasuredCompletions / 12, quiesce_after);
  r.drain_rate = rate_over(quiesce_after, revive_after);
  const std::uint64_t settled = revive_after + kMeasuredCompletions / 18;
  r.post_rate = rate_over(settled, kMeasuredCompletions);
  return r;
}

void PrintCurve(const HotplugResult& r) {
  if (r.completions.empty()) return;
  const PicoTime first = r.completions.front();
  const PicoTime span = r.completions.back() - first;
  const PicoTime window = span / kCurveWindows + 1;
  std::vector<std::uint64_t> counts(kCurveWindows, 0);
  for (const PicoTime t : r.completions) {
    const std::uint64_t w =
        std::min<std::uint64_t>((t - first) / window, kCurveWindows - 1);
    ++counts[w];
  }
  Table table({"window", "t (us)", "Kmsg/s", "phase"});
  for (std::uint32_t w = 0; w < kCurveWindows; ++w) {
    const PicoTime start = first + static_cast<PicoTime>(w) * window;
    const PicoTime end = start + window;
    const char* phase = "pre";
    if (start >= r.revived_at) {
      phase = "revived";
    } else if (start >= r.quiesced_at) {
      phase = "draining";
    } else if (end > r.quiesced_at) {
      phase = "pre>drain";
    }
    table.AddRow({FmtU64(w), FmtUs(start - first),
                  FmtF(MessagesPerSecond(counts[w], window) / 1e3),
                  phase});
  }
  table.Print();
}

int Main(int argc, char** argv) {
  bool run4 = true;
  bool run8 = true;
  if (argc > 1) {
    if (std::strcmp(argv[1], "--pool4") == 0) {
      run8 = false;
    } else if (std::strcmp(argv[1], "--pool8") == 0) {
      run4 = false;
    } else {
      std::fprintf(stderr, "usage: %s [--pool4|--pool8]\n", argv[0]);
      return 2;
    }
  }
  Banner("fig18", "pool-core hotplug: quiesce + revive under skewed incast");
  std::printf("Server-Side Sum, 1 KiB payload, 8 senders (4 hot at full "
              "tilt, 4 paced at ~%0.f us/msg), %llu measured completions; "
              "QuiesceCore(0) at 1/3, ReviveCore(0) at 2/3\n",
              ToMicroseconds(kLightGap),
              static_cast<unsigned long long>(kMeasuredCompletions));

  bool ok = true;
  for (const std::uint32_t pool : {4u, 8u}) {
    if ((pool == 4 && !run4) || (pool == 8 && !run8)) continue;
    const HotplugResult r = RunHotplug(pool);
    std::printf("\n-- %u-core pool --\n", r.pool);
    PrintCurve(r);
    Table summary({"phase", "Kmsg/s", "vs pre"});
    summary.AddRow({"pre-quiesce", FmtF(r.pre_rate / 1e3), "1.00x"});
    summary.AddRow({"draining", FmtF(r.drain_rate / 1e3),
                    FmtF(r.drain_rate / r.pre_rate, "%.2fx")});
    summary.AddRow({"revived", FmtF(r.post_rate / 1e3),
                    FmtF(r.post_rate / r.pre_rate, "%.2fx")});
    summary.Print();
    std::printf("stranded=%llu resharded=%llu qdrain=%llu\n",
                static_cast<unsigned long long>(r.stranded),
                static_cast<unsigned long long>(r.banks_resharded),
                static_cast<unsigned long long>(
                    r.frames_drained_during_quiesce));

    ok &= ShapeCheck("zero dropped frames: every message executed",
                     r.executed == r.total);
    ok &= ShapeCheck("nothing in flight / pending / unrecycled at drain",
                     r.in_flight_at_end == 0 &&
                         r.pending_rehomes_at_end == 0 &&
                         r.closed_send_banks == 0);
    ok &= ShapeCheck("quiesce visibly dips the aggregate rate",
                     r.drain_rate < r.pre_rate);
    ok &= ShapeCheck("revive recovers to >= 90% of the pre-drain rate",
                     r.post_rate >= 0.9 * r.pre_rate);
    ok &= ShapeCheck(
        "hotplug ledger reconciles (banks out == banks back, stranded == "
        "frames_drained_during_quiesce)",
        r.banks_resharded > 0 && r.banks_resharded % 2 == 0 &&
            r.stranded == r.frames_drained_during_quiesce);
  }
  return FinishChecks(ok);
}

}  // namespace
}  // namespace twochains::bench

int main(int argc, char** argv) {
  return twochains::bench::Main(argc, argv);
}
