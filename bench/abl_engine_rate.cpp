// Ablation: raw simulator throughput — host wall-clock events/sec of the
// discrete-event engine itself. Unlike every figure bench (which reports
// *simulated* time), this one times the simulator with a real clock: it is
// the suite's canary for engine regressions (heap churn, callback
// overhead) that simulated-time results can never see.
//
// Three layers:
//   * raw dispatch / deep heap: the engine alone (slab pool, timing wheel);
//   * hook on/off: tag capture is gated on hook presence — the delta is
//     what observability costs, and the event counts must match exactly;
//   * the full stack, single-lane and lane-sharded (`--lanes` sweep over
//     an 8-host full-mesh ring of injected ssum streams): wall-clock
//     speedup from conservative-lookahead parallel execution, with the
//     event count pinned identical at every lane count.
//
// `--json` additionally writes BENCH_engine_rate.json (machine-readable,
// uploaded as a CI artifact) so run-over-run engine throughput is
// trackable; tools/check_bench_floor.py guards the full-stack row.
#include <chrono>
#include <cstdio>
#include <thread>

#include "common/pump.hpp"
#include "core/fabric.hpp"
#include "fig_common.hpp"
#include "sim/engine.hpp"

using namespace twochains;
using namespace twochains::bench;

namespace {

struct RateRow {
  std::string name;
  std::uint64_t events = 0;
  double seconds = 0;
  double events_per_second = 0;
};

double WallSeconds(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// @p chains self-rescheduling events ping through the queue until
/// @p total callbacks have run; deeper backlogs stress ordering, a single
/// chain measures pure dispatch overhead. With @p hook set, an event hook
/// observes every (time, tag) pair — the tag-capture cost that hook-less
/// runs must not pay.
RateRow EngineChainRate(const char* name, std::uint64_t chains,
                        std::uint64_t total, bool hook = false) {
  sim::Engine engine;
  std::uint64_t tags_seen = 0;
  if (hook) {
    engine.SetEventHook(
        [&tags_seen](PicoTime, const char* tag) { tags_seen += *tag != 0; });
  }
  std::uint64_t fired = 0;
  std::function<void()> tick = [&] {
    if (++fired >= total) {
      engine.Stop();
      return;
    }
    engine.ScheduleAfter(1, tick, "bench.tick");
  };
  for (std::uint64_t c = 0; c < chains; ++c) {
    engine.ScheduleAfter(1 + c, tick, "bench.tick");
  }

  const auto start = std::chrono::steady_clock::now();
  engine.Run();
  RateRow row{name};
  row.events = engine.EventsProcessed();
  row.seconds = WallSeconds(start);
  row.events_per_second = static_cast<double>(row.events) / row.seconds;
  if (hook && tags_seen != row.events) {
    std::fprintf(stderr, "hook missed tags: %llu of %llu\n",
                 static_cast<unsigned long long>(tags_seen),
                 static_cast<unsigned long long>(row.events));
  }
  return row;
}

/// The full stack as an event generator: wall-clock events/sec while the
/// paper testbed streams injected Server-Side Sums (every NIC hop, cache
/// access, and receiver wakeup is an engine event).
RateRow FullStackRate() {
  auto testbed = MakeBenchTestbed();
  AmConfig config = SsumConfig(64, core::Invoke::kInjected);
  config.iterations = 2000;

  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t before = testbed->engine().EventsProcessed();
  MustOk(RunAmInjectionRate(*testbed, config), "full-stack stream");
  RateRow row{"full stack (ssum stream)"};
  row.events = testbed->engine().EventsProcessed() - before;
  row.seconds = WallSeconds(start);
  row.events_per_second = static_cast<double>(row.events) / row.seconds;
  return row;
}

/// The lane-scaling workload: an 8-host full-mesh fabric where every host
/// streams injected ssums to its clockwise neighbor. Each host carries the
/// same send + receive load, so each engine lane has real work — the
/// balanced shape lane sharding exists for. Returns the streaming phase
/// only (fabric construction and package load excluded).
RateRow FabricRingRate(std::uint32_t lanes, std::uint32_t hosts,
                       std::uint32_t msgs_per_host) {
  core::FabricOptions options;
  options.hosts = hosts;
  options.topology = core::Topology::kFullMesh;
  options.engine.lanes = lanes;
  core::Fabric fabric(options);
  const pkg::Package package = MustOk(BuildBenchPackage(), "bench package");
  const Status loaded = fabric.LoadPackage(package);
  if (!loaded.ok()) {
    std::fprintf(stderr, "package load failed: %s\n",
                 loaded.ToString().c_str());
    std::abort();
  }

  struct Sender {
    core::PeerId to = core::kInvalidPeer;
    std::uint32_t sent = 0;
  };
  auto senders = std::make_shared<std::vector<Sender>>(hosts);
  for (std::uint32_t h = 0; h < hosts; ++h) {
    (*senders)[h].to = MustOk(fabric.PeerIdFor(h, (h + 1) % hosts), "peer");
  }
  const std::vector<std::uint64_t> args = {64};
  const std::vector<std::uint8_t> usr(64, 7);

  PumpLoop<std::uint32_t> pump;
  pump.Set([senders, &fabric, &args, &usr, msgs_per_host,
            resume = pump.Handle()](std::uint32_t h) {
    Sender& sender = (*senders)[h];
    core::Runtime& rt = fabric.runtime(h);
    if (sender.sent >= msgs_per_host) return;
    if (!rt.HasFreeSlot(sender.to)) {
      rt.NotifyWhenSlotFree(sender.to, [resume, h] { resume(h); });
      return;
    }
    auto receipt =
        rt.Send(sender.to, "ssum", core::Invoke::kInjected, args, usr);
    if (!receipt.ok()) {
      std::fprintf(stderr, "send failed: %s\n",
                   receipt.status().ToString().c_str());
      std::abort();
    }
    ++sender.sent;
    // Homed to the sender's lane: the pump mutates that host's runtime.
    fabric.engine().ScheduleAfterOn(h, receipt->sender_cost,
                                    [resume, h] { resume(h); }, "ring.send");
  });

  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t before = fabric.engine().EventsProcessed();
  for (std::uint32_t h = 0; h < hosts; ++h) pump(h);
  fabric.Run();

  RateRow row;
  row.name = StrFormat("fabric ring 8-host (lanes=%u)", lanes);
  row.events = fabric.engine().EventsProcessed() - before;
  row.seconds = WallSeconds(start);
  row.events_per_second = static_cast<double>(row.events) / row.seconds;
  return row;
}

/// The switched-tree workload: 8 spokes stream injected ssums into one
/// hub through a 2-tier, 2:1-oversubscribed switch fabric, so the row
/// prices the switch hops (admission, egress serialization, ECN checks)
/// the star shapes never execute. Floor-guarded in
/// tools/bench_floors.json — the canary for switch-path regressions.
RateRow TreeIncastRate(std::uint32_t spokes, std::uint32_t msgs_per_spoke) {
  core::FabricOptions options;
  options.hosts = spokes + 1;
  options.topology = core::Topology::kTree;
  options.hub = 0;
  options.tree.arity = 4;
  options.tree.tiers = 2;
  options.tree.oversub = 2.0;
  core::Fabric fabric(options);
  const pkg::Package package = MustOk(BuildBenchPackage(), "bench package");
  const Status loaded = fabric.LoadPackage(package);
  if (!loaded.ok()) {
    std::fprintf(stderr, "package load failed: %s\n",
                 loaded.ToString().c_str());
    std::abort();
  }

  struct Sender {
    core::PeerId to = core::kInvalidPeer;
    std::uint32_t sent = 0;
  };
  auto senders = std::make_shared<std::vector<Sender>>(spokes);
  for (std::uint32_t s = 0; s < spokes; ++s) {
    (*senders)[s].to = MustOk(fabric.PeerIdFor(s + 1, 0), "peer");
  }
  const std::vector<std::uint64_t> args = {64};
  const std::vector<std::uint8_t> usr(64, 7);

  PumpLoop<std::uint32_t> pump;
  pump.Set([senders, &fabric, &args, &usr, msgs_per_spoke,
            resume = pump.Handle()](std::uint32_t s) {
    Sender& sender = (*senders)[s];
    core::Runtime& rt = fabric.runtime(s + 1);
    if (sender.sent >= msgs_per_spoke) return;
    if (!rt.HasFreeSlot(sender.to)) {
      rt.NotifyWhenSlotFree(sender.to, [resume, s] { resume(s); });
      return;
    }
    auto receipt =
        rt.Send(sender.to, "ssum", core::Invoke::kInjected, args, usr);
    if (!receipt.ok()) {
      std::fprintf(stderr, "send failed: %s\n",
                   receipt.status().ToString().c_str());
      std::abort();
    }
    ++sender.sent;
    fabric.engine().ScheduleAfterOn(s + 1, receipt->sender_cost,
                                    [resume, s] { resume(s); }, "tree.send");
  });

  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t before = fabric.engine().EventsProcessed();
  for (std::uint32_t s = 0; s < spokes; ++s) pump(s);
  fabric.Run();

  RateRow row;
  row.name = StrFormat("tree incast %u-spoke (2-tier switched)", spokes);
  row.events = fabric.engine().EventsProcessed() - before;
  row.seconds = WallSeconds(start);
  row.events_per_second = static_cast<double>(row.events) / row.seconds;

  std::uint64_t forwarded = 0;
  for (std::uint32_t i = 0; i < fabric.switch_count(); ++i) {
    forwarded += fabric.sw(i).frames_forwarded();
  }
  if (forwarded == 0) {
    std::fprintf(stderr, "tree incast forwarded no frames\n");
    std::abort();
  }
  return row;
}

void WriteJson(const char* path, const std::vector<RateRow>& rows,
               const std::vector<std::uint32_t>& lanes,
               const std::vector<double>& by_lanes) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"engine_rate\",\n  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"events\": %llu, "
                 "\"seconds\": %.6f, \"events_per_second\": %.0f}%s\n",
                 rows[i].name.c_str(),
                 static_cast<unsigned long long>(rows[i].events),
                 rows[i].seconds, rows[i].events_per_second,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"lanes\": [");
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    std::fprintf(f, "%s%u", i ? ", " : "", lanes[i]);
  }
  std::fprintf(f, "],\n  \"events_per_sec_by_lanes\": [");
  for (std::size_t i = 0; i < by_lanes.size(); ++i) {
    std::fprintf(f, "%s%.0f", i ? ", " : "", by_lanes[i]);
  }
  std::fprintf(f, "]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  Banner("Ablation", "engine throughput (host wall-clock events/sec)");

  std::vector<RateRow> rows;
  rows.push_back(EngineChainRate("dispatch (1 chain)", 1, 1000000));
  rows.push_back(
      EngineChainRate("dispatch + event hook", 1, 1000000, /*hook=*/true));
  rows.push_back(EngineChainRate("heap depth 1024", 1024, 1000000));
  rows.push_back(FullStackRate());
  rows.push_back(TreeIncastRate(/*spokes=*/8, /*msgs_per_spoke=*/800));

  const std::vector<std::uint32_t> lane_sweep = {1, 2, 4};
  std::vector<double> by_lanes;
  std::vector<std::uint64_t> lane_events;
  for (const std::uint32_t lanes : lane_sweep) {
    rows.push_back(FabricRingRate(lanes, /*hosts=*/8, /*msgs_per_host=*/800));
    by_lanes.push_back(rows.back().events_per_second);
    lane_events.push_back(rows.back().events);
  }
  const double lane_speedup = by_lanes.back() / by_lanes.front();

  Table table({"shape", "events", "wall(s)", "events/s"});
  for (const auto& row : rows) {
    table.AddRow({row.name, FmtU64(row.events), FmtF(row.seconds, "%.3f"),
                  FmtF(row.events_per_second, "%.0f")});
  }
  table.Print();
  std::printf("\nlane speedup at %u lanes: %.2fx (%u hardware threads)\n",
              lane_sweep.back(), lane_speedup,
              std::thread::hardware_concurrency());

  if (HasFlag(argc, argv, "--json")) {
    WriteJson("BENCH_engine_rate.json", rows, lane_sweep, by_lanes);
  }

  // Wall-clock thresholds stay very conservative: this is a canary for
  // order-of-magnitude regressions, not a precision benchmark.
  bool ok = true;
  ok &= ShapeCheck("raw dispatch exceeds 100k events/s",
                   rows[0].events_per_second > 1e5);
  ok &= ShapeCheck("deep heap stays above 50k events/s",
                   rows[2].events_per_second > 5e4);
  ok &= ShapeCheck("full stack generates events (stream completed)",
                   rows[3].events > 0);
  ok &= ShapeCheck("switched tree generates events (incast completed)",
                   rows[4].events > 0);
  ok &= ShapeCheck("laned runs process identical event counts",
                   lane_events[0] == lane_events[1] &&
                       lane_events[0] == lane_events[2]);
  // Parallel speedup needs parallel hardware; on starved machines the
  // sweep still proves correctness (identical counts) but the wall-clock
  // claim is unmeasurable, so it gates on available cores.
  if (std::thread::hardware_concurrency() >= 4) {
    ok &= ShapeCheck("lane speedup exceeds 1.5x at 4 lanes",
                     lane_speedup > 1.5);
  } else {
    std::printf("  (skipping lane-speedup check: %u hardware threads)\n",
                std::thread::hardware_concurrency());
  }
  return FinishChecks(ok);
}
