// Ablation: raw simulator throughput — host wall-clock events/sec of the
// discrete-event engine itself. Unlike every figure bench (which reports
// *simulated* time), this one times the simulator with a real clock: it is
// the suite's canary for engine regressions (heap churn, callback
// overhead) that simulated-time results can never see.
//
// `--json` additionally writes BENCH_engine_rate.json (machine-readable,
// uploaded as a CI artifact) so run-over-run engine throughput is
// trackable.
#include <chrono>
#include <cstdio>

#include "fig_common.hpp"
#include "sim/engine.hpp"

using namespace twochains;
using namespace twochains::bench;

namespace {

struct RateRow {
  const char* name;
  std::uint64_t events = 0;
  double seconds = 0;
  double events_per_second = 0;
};

double WallSeconds(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// @p chains self-rescheduling events ping through the heap until
/// @p total callbacks have run; deeper heaps stress ordering, a single
/// chain measures pure dispatch overhead.
RateRow EngineChainRate(const char* name, std::uint64_t chains,
                        std::uint64_t total) {
  sim::Engine engine;
  std::uint64_t fired = 0;
  std::function<void()> tick = [&] {
    if (++fired >= total) {
      engine.Stop();
      return;
    }
    engine.ScheduleAfter(1, tick, "bench.tick");
  };
  for (std::uint64_t c = 0; c < chains; ++c) {
    engine.ScheduleAfter(1 + c, tick, "bench.tick");
  }

  const auto start = std::chrono::steady_clock::now();
  engine.Run();
  RateRow row{name};
  row.events = engine.EventsProcessed();
  row.seconds = WallSeconds(start);
  row.events_per_second = static_cast<double>(row.events) / row.seconds;
  return row;
}

/// The full stack as an event generator: wall-clock events/sec while the
/// paper testbed streams injected Server-Side Sums (every NIC hop, cache
/// access, and receiver wakeup is an engine event).
RateRow FullStackRate() {
  auto testbed = MakeBenchTestbed();
  AmConfig config = SsumConfig(64, core::Invoke::kInjected);
  config.iterations = 2000;

  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t before = testbed->engine().EventsProcessed();
  MustOk(RunAmInjectionRate(*testbed, config), "full-stack stream");
  RateRow row{"full stack (ssum stream)"};
  row.events = testbed->engine().EventsProcessed() - before;
  row.seconds = WallSeconds(start);
  row.events_per_second = static_cast<double>(row.events) / row.seconds;
  return row;
}

void WriteJson(const char* path, const std::vector<RateRow>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"engine_rate\",\n  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"events\": %llu, "
                 "\"seconds\": %.6f, \"events_per_second\": %.0f}%s\n",
                 rows[i].name,
                 static_cast<unsigned long long>(rows[i].events),
                 rows[i].seconds, rows[i].events_per_second,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  Banner("Ablation", "engine throughput (host wall-clock events/sec)");

  std::vector<RateRow> rows;
  rows.push_back(EngineChainRate("dispatch (1 chain)", 1, 1000000));
  rows.push_back(EngineChainRate("heap depth 1024", 1024, 1000000));
  rows.push_back(FullStackRate());

  Table table({"shape", "events", "wall(s)", "events/s"});
  for (const auto& row : rows) {
    table.AddRow({row.name, FmtU64(row.events), FmtF(row.seconds, "%.3f"),
                  FmtF(row.events_per_second, "%.0f")});
  }
  table.Print();

  if (HasFlag(argc, argv, "--json")) {
    WriteJson("BENCH_engine_rate.json", rows);
  }

  // Wall-clock thresholds stay very conservative: this is a canary for
  // order-of-magnitude regressions, not a precision benchmark.
  bool ok = true;
  ok &= ShapeCheck("raw dispatch exceeds 100k events/s",
                   rows[0].events_per_second > 1e5);
  ok &= ShapeCheck("deep heap stays above 50k events/s",
                   rows[1].events_per_second > 5e4);
  ok &= ShapeCheck("full stack generates events (stream completed)",
                   rows[2].events > 0);
  return FinishChecks(ok);
}
