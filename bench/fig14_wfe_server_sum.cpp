// Figure 14: Server-Side Sum — WFE vs busy polling, 512 B..32 KiB.
//
// Paper claims: "virtually no latency difference ... When using the 512B
// message size, the WFE benchmark uses only 27% of the cycles required by
// the Polling benchmark, a 3.6x reduction. For the 32KB message size, the
// difference contracts to 1.84x."
#include "fig_common.hpp"

using namespace twochains;
using namespace twochains::bench;

int main() {
  Banner("Figure 14", "Server-Side Sum: WFE vs busy polling");
  Table table({"size(B)", "poll(us)", "wfe(us)", "penalty", "poll cycles",
               "wfe cycles", "cycle ratio"});

  bool ok = true;
  double worst_penalty = 0;
  double small_ratio = 0, large_ratio = 0;
  for (std::uint64_t size = 512; size <= 32768; size *= 2) {
    auto poll_bed =
        MakeBenchTestbed(PaperTestbed().WithWaitMode(cpu::WaitMode::kPoll));
    const auto poll = MustOk(
        RunAmPingPong(*poll_bed, SsumConfig(size, core::Invoke::kInjected)),
        "poll");
    auto wfe_bed =
        MakeBenchTestbed(PaperTestbed().WithWaitMode(cpu::WaitMode::kWfe));
    const auto wfe = MustOk(
        RunAmPingPong(*wfe_bed, SsumConfig(size, core::Invoke::kInjected)),
        "wfe");

    const double poll_us = ToMicroseconds(poll.one_way.Median());
    const double wfe_us = ToMicroseconds(wfe.one_way.Median());
    const double penalty = (wfe_us - poll_us) / poll_us;
    worst_penalty = std::max(worst_penalty, penalty);
    const double ratio = static_cast<double>(poll.responder_counters.Total()) /
                         static_cast<double>(wfe.responder_counters.Total());
    if (size == 512) small_ratio = ratio;
    if (size == 32768) large_ratio = ratio;
    table.AddRow({FmtU64(size), FmtF(poll_us, "%.3f"), FmtF(wfe_us, "%.3f"),
                  FmtPct(penalty),
                  FmtU64(poll.responder_counters.Total()),
                  FmtU64(wfe.responder_counters.Total()),
                  FmtF(ratio, "%.2fx")});
  }
  table.Print();

  std::printf("\npaper: no latency difference; 3.6x cycle reduction at "
              "512B contracting to 1.84x at 32KB.\n");
  ok &= ShapeCheck("WFE latency penalty small (< 3%)", worst_penalty < 0.03);
  ok &= ShapeCheck("cycle reduction larger at 512B than at 32KB",
                   small_ratio > large_ratio);
  ok &= ShapeCheck("32KB still shows a real reduction (> 1.3x)",
                   large_ratio > 1.3);
  return FinishChecks(ok);
}
