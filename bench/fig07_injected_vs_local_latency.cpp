// Figure 7: Indirect Put — latency, Injected Function vs Local Function,
// 1..16384 integers.
//
// Paper claims: ~40% latency loss for small payloads (the injected frame
// carries ~1.4 KB of code), converging to ~0% once the payload dominates
// (by 1024 integers for Indirect Put); protocol-threshold bumps at the 8-
// and 256-integer injected frames.
#include "fig_common.hpp"

using namespace twochains;
using namespace twochains::bench;

int main() {
  Banner("Figure 7", "Indirect Put latency: Injected vs Local Function");
  Table table({"ints", "local(us)", "injected(us)", "reduction",
               "local frame(B)", "inj frame(B)", "inj proto"});

  bool ok = true;
  double small_reduction = 0, large_reduction = 0;
  std::uint64_t injected_code_bytes = 0;
  for (std::uint64_t n = 1; n <= 16384; n *= 2) {
    auto local_bed = MakeBenchTestbed();
    const auto local = MustOk(
        RunAmPingPong(*local_bed, IputConfig(n, core::Invoke::kLocal)),
        "local");
    auto injected_bed = MakeBenchTestbed();
    const auto injected = MustOk(
        RunAmPingPong(*injected_bed, IputConfig(n, core::Invoke::kInjected)),
        "injected");

    const double local_us = ToMicroseconds(local.one_way.Median());
    const double injected_us = ToMicroseconds(injected.one_way.Median());
    const double reduction = (local_us - injected_us) / local_us;
    if (n == 1) {
      small_reduction = reduction;
      injected_code_bytes = injected.frame_len - local.frame_len;
    }
    if (n == 16384) large_reduction = reduction;
    table.AddRow({FmtU64(n), FmtF(local_us, "%.3f"),
                  FmtF(injected_us, "%.3f"), FmtPct(reduction),
                  FmtU64(local.frame_len), FmtU64(injected.frame_len),
                  std::string(ucxs::ProtocolName(injected.protocol))});
  }
  table.Print();

  std::printf(
      "\ncode+linkage overhead carried by the injected frame: ~%llu B "
      "(paper: 1408 B of code; 1-int frames 64 B local vs 1472 B "
      "injected)\n",
      static_cast<unsigned long long>(injected_code_bytes));
  std::printf("paper: ~-40%% at small payloads -> ~0%% by 1024 ints; "
              "bumps at 8 and 256 ints from UCX protocol thresholds.\n");
  ok &= ShapeCheck("injected slower at 1 int (code ships with the message)",
                   small_reduction < -0.10);
  ok &= ShapeCheck("overhead negligible at 16384 ints (<5%)",
                   large_reduction > -0.05);
  ok &= ShapeCheck("overhead shrinks monotonically in the large limit",
                   large_reduction > small_reduction);
  return FinishChecks(ok);
}
