// Incast scaling (beyond the paper's two-host testbed): 1, 2, 4, 8 senders
// inject Indirect Puts into one receiver through a star fabric. Each sender
// is paced only by its own per-peer bank flow control, so the sweep shows
//   * how aggregate injection rate saturates at the receiver (one reactive
//     receiver agent drains every peer's mailbox slice in delivery order),
//   * per-sender fairness under contention (the receiver's round sweep plus
//     per-peer bank recycling should share the drain evenly), and
//   * how the send-to-completion tail stretches as queueing at the
//     receiver deepens — the serverless many-clients deployment shape.
#include "fig_common.hpp"

namespace twochains::bench {
namespace {

struct Point {
  std::uint32_t senders = 0;
  IncastResult result;
};

int Main() {
  Banner("fig15", "incast scaling: N senders -> 1 receiver");
  std::printf("Indirect Put, 64 B payload, %u messages per sender\n", 600u);

  const std::uint32_t kSenderCounts[] = {1, 2, 4, 8};
  std::vector<Point> points;

  for (const std::uint32_t n : kSenderCounts) {
    // Star fabric: hub 0 is the incast receiver, spokes 1..n send.
    core::Fabric fabric(PaperFabric(n + 1, core::Topology::kStar, 0));
    auto package = BuildBenchPackage();
    if (!package.ok() || !fabric.LoadPackage(*package).ok()) {
      std::fprintf(stderr, "fabric setup failed\n");
      std::abort();
    }

    IncastConfig config;
    config.jam = "iput";
    config.mode = core::Invoke::kInjected;
    config.usr_bytes = 64;
    config.iterations_per_sender = 600;
    // Distinct key ranges per iteration keep the hash index warm but
    // bounded, as in the two-host rate benches.
    config.args = [](std::uint64_t iter) {
      return std::vector<std::uint64_t>{iter & 127};
    };

    std::vector<std::uint32_t> senders;
    for (std::uint32_t s = 1; s <= n; ++s) senders.push_back(s);
    Point point;
    point.senders = n;
    point.result = MustOk(RunIncastRate(fabric, 0, senders, config),
                          "incast run");
    points.push_back(std::move(point));

    if (n == kSenderCounts[std::size(kSenderCounts) - 1]) {
      std::printf("\nreceiver per-peer counters at %u senders:\n", n);
      PeerStatsTable(fabric.runtime(0)).Print();
    }
  }

  Table table({"senders", "agg Kmsg/s", "agg MB/s", "per-sender Kmsg/s",
               "min/max Kmsg/s", "fairness", "p50 us", "p99 us",
               "fc waits"});
  for (const Point& p : points) {
    double min_rate = 0, max_rate = 0;
    std::uint64_t waits = 0;
    for (const auto& s : p.result.per_sender) {
      if (min_rate == 0 || s.messages_per_second < min_rate) {
        min_rate = s.messages_per_second;
      }
      max_rate = std::max(max_rate, s.messages_per_second);
      waits += s.flow_control_waits;
    }
    table.AddRow(
        {FmtU64(p.senders),
         FmtF(p.result.aggregate_messages_per_second / 1e3),
         FmtF(p.result.aggregate_megabytes_per_second),
         FmtF(p.result.aggregate_messages_per_second / 1e3 / p.senders),
         FmtF(min_rate / 1e3) + "/" + FmtF(max_rate / 1e3),
         FmtF(p.result.fairness, "%.3f"),
         FmtUs(p.result.latency.Percentile(0.50)),
         FmtUs(p.result.latency.Percentile(0.99)), FmtU64(waits)});
  }
  table.Print();

  const Point& one = points.front();
  const Point& eight = points.back();
  bool ok = true;
  ok &= ShapeCheck(
      "aggregate rate does not collapse under incast (8-sender aggregate "
      ">= 80% of single-sender)",
      eight.result.aggregate_messages_per_second >=
          0.8 * one.result.aggregate_messages_per_second);
  ok &= ShapeCheck(
      "receiver drain is shared fairly (Jain fairness >= 0.95 at every "
      "sender count)",
      [&] {
        for (const Point& p : points) {
          if (p.result.fairness < 0.95) return false;
        }
        return true;
      }());
  ok &= ShapeCheck(
      "completion tail stretches with incast depth (p99 grows "
      "monotonically from 1 to 8 senders)",
      eight.result.latency.Percentile(0.99) >
          one.result.latency.Percentile(0.99));
  ok &= ShapeCheck(
      "per-sender throughput degrades under contention (8-sender "
      "per-sender rate < single-sender rate)",
      eight.result.aggregate_messages_per_second / 8.0 <
          one.result.aggregate_messages_per_second);
  return FinishChecks(ok);
}

}  // namespace
}  // namespace twochains::bench

int main() { return twochains::bench::Main(); }
