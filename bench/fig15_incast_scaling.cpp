// Incast scaling (beyond the paper's two-host testbed): 1, 2, 4, 8 senders
// inject Indirect Puts into one receiver through a star fabric. Each sender
// is paced only by its own per-peer bank flow control, so the sweep shows
//   * how aggregate injection rate saturates at the receiver (one reactive
//     receiver agent drains every peer's mailbox slice in delivery order),
//   * per-sender fairness under contention (the receiver's round sweep plus
//     per-peer bank recycling should share the drain evenly), and
//   * how the send-to-completion tail stretches as queueing at the
//     receiver deepens — the serverless many-clients deployment shape.
#include "fig_common.hpp"

namespace twochains::bench {
namespace {

struct Point {
  std::uint32_t senders = 0;
  IncastResult result;
};

// ----------------------------------------------------- switched tree

struct TreePoint {
  std::uint32_t senders = 0;
  bool adaptive = false;
  IncastResult result;
  std::uint64_t marks = 0;       ///< sum of Switch::frames_marked
  std::uint64_t drops = 0;       ///< sum of Switch::frames_dropped
  std::uint64_t holds = 0;       ///< sum of Switch::backpressure_holds
  std::uint64_t echoes = 0;      ///< sum of spoke ecn_echoes_seen
  std::uint64_t backoffs = 0;    ///< sum of spoke cwnd_decreases
  std::uint64_t refusals = 0;    ///< sum of spoke adaptive_refusals
  std::uint64_t min_window_milli = ~std::uint64_t{0};
};

TreePoint RunTreePoint(std::uint32_t n, bool adaptive,
                       std::uint32_t iterations) {
  core::Fabric fabric(TreeBenchFabric(n, adaptive));
  auto package = BuildBenchPackage();
  if (!package.ok()) {
    std::fprintf(stderr, "package build failed: %s\n",
                 package.status().ToString().c_str());
    std::abort();
  }
  if (Status st = fabric.LoadPackage(*package); !st.ok()) {
    std::fprintf(stderr, "package load failed: %s\n",
                 st.ToString().c_str());
    std::abort();
  }

  IncastConfig config;
  config.jam = "iput";
  config.mode = core::Invoke::kInjected;
  config.usr_bytes = 64;
  config.iterations_per_sender = iterations;
  config.args = [](std::uint64_t iter) {
    return std::vector<std::uint64_t>{iter & 127};
  };

  std::vector<std::uint32_t> senders;
  for (std::uint32_t s = 1; s <= n; ++s) senders.push_back(s);
  TreePoint point;
  point.senders = n;
  point.adaptive = adaptive;
  point.result =
      MustOk(RunIncastRate(fabric, 0, senders, config), "tree incast run");

  for (std::uint32_t i = 0; i < fabric.switch_count(); ++i) {
    point.marks += fabric.sw(i).frames_marked();
    point.drops += fabric.sw(i).frames_dropped();
    point.holds += fabric.sw(i).backpressure_holds();
  }
  for (const std::uint32_t s : senders) {
    const core::RuntimeStats& stats = fabric.runtime(s).stats();
    point.echoes += stats.ecn_echoes_seen;
    point.backoffs += stats.cwnd_decreases;
    point.refusals += stats.adaptive_refusals;
    auto to_hub = fabric.PeerIdFor(s, 0);
    if (to_hub.ok()) {
      point.min_window_milli =
          std::min(point.min_window_milli,
                   fabric.runtime(s).AdaptiveWindowMinMilli(*to_hub));
    }
  }
  return point;
}

int TreeMain() {
  Banner("fig15", "--tree: incast through an oversubscribed switched tree");
  const std::uint32_t kTreeIterations = 150;
  std::printf(
      "host -> ToR -> spine, arity 8, 4:1 trunk oversubscription, shared\n"
      "%llu KiB switch buffers, ECN at %llu KiB; Indirect Put, 64 B\n"
      "payload, %u messages per sender; static banks vs adaptive (AIMD)\n",
      static_cast<unsigned long long>(KiB(64) / 1024),
      static_cast<unsigned long long>(KiB(8) / 1024), kTreeIterations);

  const std::uint32_t kSenderCounts[] = {32, 64};
  std::vector<TreePoint> points;
  for (const std::uint32_t n : kSenderCounts) {
    for (const bool adaptive : {false, true}) {
      points.push_back(RunTreePoint(n, adaptive, kTreeIterations));
    }
  }

  Table table({"senders", "banks", "agg Kmsg/s", "fairness", "p50 us",
               "p99 us", "p99.9 us", "fc waits", "marks", "backoffs",
               "refusals", "min win"});
  for (const TreePoint& p : points) {
    std::uint64_t waits = 0;
    for (const auto& s : p.result.per_sender) waits += s.flow_control_waits;
    table.AddRow(
        {FmtU64(p.senders), p.adaptive ? "adaptive" : "static",
         FmtF(p.result.aggregate_messages_per_second / 1e3),
         FmtF(p.result.fairness, "%.3f"),
         FmtUs(p.result.latency.Percentile(0.50)),
         FmtUs(p.result.latency.Percentile(0.99)),
         FmtUs(p.result.latency.Percentile(0.999)), FmtU64(waits),
         FmtU64(p.marks), FmtU64(p.backoffs), FmtU64(p.refusals),
         FmtF(static_cast<double>(p.min_window_milli) / 1000.0, "%.2f")});
  }
  table.Print();

  auto at = [&](std::uint32_t n, bool adaptive) -> const TreePoint& {
    for (const TreePoint& p : points) {
      if (p.senders == n && p.adaptive == adaptive) return p;
    }
    std::abort();
  };

  bool ok = true;
  ok &= ShapeCheck(
      "drop-free fabric: zero frames dropped across every tree run "
      "(backpressure holds instead)",
      [&] {
        for (const TreePoint& p : points) {
          if (p.drops != 0) return false;
        }
        return true;
      }());
  ok &= ShapeCheck(
      "the 4:1 trunk actually congests (ECN marks fire in every run)",
      [&] {
        for (const TreePoint& p : points) {
          if (p.marks == 0) return false;
        }
        return true;
      }());
  ok &= ShapeCheck(
      "adaptive banks keep the drain fair through the tree (Jain "
      "fairness >= 0.9 at 32 and 64 senders)",
      at(32, true).result.fairness >= 0.9 &&
          at(64, true).result.fairness >= 0.9);
  ok &= ShapeCheck(
      "AIMD engages under congestion (echo-driven backoffs shrink the "
      "window below the static ceiling in every adaptive run)",
      [&] {
        for (const TreePoint& p : points) {
          if (!p.adaptive) continue;
          if (p.backoffs == 0 || p.min_window_milli >= 4000) return false;
        }
        return true;
      }());
  ok &= ShapeCheck(
      "static banks never refuse or back off (window machinery inert "
      "when disabled)",
      [&] {
        for (const TreePoint& p : points) {
          if (p.adaptive) continue;
          if (p.backoffs != 0 || p.refusals != 0) return false;
        }
        return true;
      }());
  ok &= ShapeCheck(
      "backing off trims the completion tail (adaptive p99.9 <= static "
      "p99.9 at 32 and 64 senders)",
      at(32, true).result.latency.Percentile(0.999) <=
              at(32, false).result.latency.Percentile(0.999) &&
          at(64, true).result.latency.Percentile(0.999) <=
              at(64, false).result.latency.Percentile(0.999));
  ok &= ShapeCheck(
      "admission control does not collapse throughput (adaptive "
      "aggregate >= 80% of static at 64 senders)",
      at(64, true).result.aggregate_messages_per_second >=
          0.8 * at(64, false).result.aggregate_messages_per_second);
  return FinishChecks(ok);
}

// -------------------------------------------------------------- star

int Main(int argc, char** argv) {
  if (HasFlag(argc, argv, "--tree")) return TreeMain();
  Banner("fig15", "incast scaling: N senders -> 1 receiver");
  std::printf("Indirect Put, 64 B payload, %u messages per sender\n", 600u);

  const std::uint32_t kSenderCounts[] = {1, 2, 4, 8};
  std::vector<Point> points;

  for (const std::uint32_t n : kSenderCounts) {
    // Star fabric: hub 0 is the incast receiver, spokes 1..n send.
    core::Fabric fabric(PaperFabric(n + 1, core::Topology::kStar, 0));
    auto package = BuildBenchPackage();
    if (!package.ok() || !fabric.LoadPackage(*package).ok()) {
      std::fprintf(stderr, "fabric setup failed\n");
      std::abort();
    }

    IncastConfig config;
    config.jam = "iput";
    config.mode = core::Invoke::kInjected;
    config.usr_bytes = 64;
    config.iterations_per_sender = 600;
    // Distinct key ranges per iteration keep the hash index warm but
    // bounded, as in the two-host rate benches.
    config.args = [](std::uint64_t iter) {
      return std::vector<std::uint64_t>{iter & 127};
    };

    std::vector<std::uint32_t> senders;
    for (std::uint32_t s = 1; s <= n; ++s) senders.push_back(s);
    Point point;
    point.senders = n;
    point.result = MustOk(RunIncastRate(fabric, 0, senders, config),
                          "incast run");
    points.push_back(std::move(point));

    if (n == kSenderCounts[std::size(kSenderCounts) - 1]) {
      std::printf("\nreceiver per-peer counters at %u senders:\n", n);
      PeerStatsTable(fabric.runtime(0)).Print();
    }
  }

  Table table({"senders", "agg Kmsg/s", "agg MB/s", "per-sender Kmsg/s",
               "min/max Kmsg/s", "fairness", "p50 us", "p99 us",
               "fc waits"});
  for (const Point& p : points) {
    double min_rate = 0, max_rate = 0;
    std::uint64_t waits = 0;
    for (const auto& s : p.result.per_sender) {
      if (min_rate == 0 || s.messages_per_second < min_rate) {
        min_rate = s.messages_per_second;
      }
      max_rate = std::max(max_rate, s.messages_per_second);
      waits += s.flow_control_waits;
    }
    table.AddRow(
        {FmtU64(p.senders),
         FmtF(p.result.aggregate_messages_per_second / 1e3),
         FmtF(p.result.aggregate_megabytes_per_second),
         FmtF(p.result.aggregate_messages_per_second / 1e3 / p.senders),
         FmtF(min_rate / 1e3) + "/" + FmtF(max_rate / 1e3),
         FmtF(p.result.fairness, "%.3f"),
         FmtUs(p.result.latency.Percentile(0.50)),
         FmtUs(p.result.latency.Percentile(0.99)), FmtU64(waits)});
  }
  table.Print();

  const Point& one = points.front();
  const Point& eight = points.back();
  bool ok = true;
  ok &= ShapeCheck(
      "aggregate rate does not collapse under incast (8-sender aggregate "
      ">= 80% of single-sender)",
      eight.result.aggregate_messages_per_second >=
          0.8 * one.result.aggregate_messages_per_second);
  ok &= ShapeCheck(
      "receiver drain is shared fairly (Jain fairness >= 0.95 at every "
      "sender count)",
      [&] {
        for (const Point& p : points) {
          if (p.result.fairness < 0.95) return false;
        }
        return true;
      }());
  ok &= ShapeCheck(
      "completion tail stretches with incast depth (p99 grows "
      "monotonically from 1 to 8 senders)",
      eight.result.latency.Percentile(0.99) >
          one.result.latency.Percentile(0.99));
  ok &= ShapeCheck(
      "per-sender throughput degrades under contention (8-sender "
      "per-sender rate < single-sender rate)",
      eight.result.aggregate_messages_per_second / 8.0 <
          one.result.aggregate_messages_per_second);
  return FinishChecks(ok);
}

}  // namespace
}  // namespace twochains::bench

int main(int argc, char** argv) {
  return twochains::bench::Main(argc, argv);
}
