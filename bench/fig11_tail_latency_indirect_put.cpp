// Figure 11: Indirect Put — median + 99.9th-percentile (tail) latency and
// tail-latency spread on a fully loaded system (stress co-runner),
// LLC stashing enabled vs disabled, 1..1024 integers.
//
// Paper claims: "tail latency is up to 2.4x better when LLC stashing is
// enabled. With stashing, the tail latency spread peaks at 182%, while
// non-stashing has an erratic behavior."
#include "fig_common.hpp"

using namespace twochains;
using namespace twochains::bench;

int main() {
  Banner("Figure 11",
         "Indirect Put tail latency under load: stash vs nonstash");
  Table table({"ints", "ns med(us)", "ns tail(us)", "ns spread",
               "st med(us)", "st tail(us)", "st spread", "tail ratio"});

  bool ok = true;
  double best_tail_ratio = 0;
  double worst_stash_spread = 0;
  int stash_tail_wins = 0, points = 0;
  for (std::uint64_t n = 1; n <= 1024; n *= 2) {
    AmConfig config = IputConfig(n, core::Invoke::kInjected);
    config.iterations = 2500;  // tail sampling needs depth
    config.warmup = 250;

    auto stash_bed = MakeBenchTestbed(PaperTestbed().WithStashing(true));
    ApplyStress(*stash_bed, StressConfig{});
    const auto stash = MustOk(RunAmPingPong(*stash_bed, config), "stash");

    auto nonstash_bed = MakeBenchTestbed(PaperTestbed().WithStashing(false));
    ApplyStress(*nonstash_bed, StressConfig{});
    const auto nonstash =
        MustOk(RunAmPingPong(*nonstash_bed, config), "nonstash");

    const double ratio = static_cast<double>(nonstash.one_way.Tail()) /
                         static_cast<double>(stash.one_way.Tail());
    best_tail_ratio = std::max(best_tail_ratio, ratio);
    worst_stash_spread =
        std::max(worst_stash_spread, stash.one_way.TailSpread());
    ++points;
    if (ratio > 1.0) ++stash_tail_wins;
    table.AddRow({FmtU64(n), FmtUs(nonstash.one_way.Median()),
                  FmtUs(nonstash.one_way.Tail()),
                  FmtPct(nonstash.one_way.TailSpread()),
                  FmtUs(stash.one_way.Median()),
                  FmtUs(stash.one_way.Tail()),
                  FmtPct(stash.one_way.TailSpread()),
                  FmtF(ratio, "%.2fx")});
  }
  table.Print();

  std::printf("\npaper: stash tail up to 2.4x better; stash spread peaks at "
              "182%%; nonstash erratic.\n");
  ok &= ShapeCheck("stashing wins the tail at most sizes",
                   stash_tail_wins * 2 > points);
  ok &= ShapeCheck("peak tail advantage >= 1.5x", best_tail_ratio >= 1.5);
  ok &= ShapeCheck("stash spread stays bounded (< 300%)",
                   worst_stash_spread < 3.0);
  return FinishChecks(ok);
}
