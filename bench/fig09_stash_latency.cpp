// Figure 9: Indirect Put — Injected Function latency with LLC stashing
// enabled vs disabled, 1..8192 integers.
//
// Paper claims: "Stashing the message code and data to LLC improves latency
// by up to 31%. ... once the message size is large enough to trigger the
// prefetcher ... the difference in latency ... starts narrowing."
#include "fig_common.hpp"

using namespace twochains;
using namespace twochains::bench;

int main() {
  Banner("Figure 9", "Indirect Put latency: LLC stashing on vs off");
  Table table({"ints", "nonstash(us)", "stash(us)", "reduction"});

  bool ok = true;
  double max_reduction = 0, last_reduction = 0;
  for (std::uint64_t n = 1; n <= 8192; n *= 2) {
    auto stash_bed = MakeBenchTestbed(PaperTestbed().WithStashing(true));
    const auto stash = MustOk(
        RunAmPingPong(*stash_bed, IputConfig(n, core::Invoke::kInjected)),
        "stash");
    auto nonstash_bed = MakeBenchTestbed(PaperTestbed().WithStashing(false));
    const auto nonstash = MustOk(
        RunAmPingPong(*nonstash_bed, IputConfig(n, core::Invoke::kInjected)),
        "nonstash");

    const double nonstash_us = ToMicroseconds(nonstash.one_way.Median());
    const double stash_us = ToMicroseconds(stash.one_way.Median());
    const double reduction = (nonstash_us - stash_us) / nonstash_us;
    max_reduction = std::max(max_reduction, reduction);
    last_reduction = reduction;
    table.AddRow({FmtU64(n), FmtF(nonstash_us, "%.3f"),
                  FmtF(stash_us, "%.3f"), FmtPct(reduction)});
  }
  table.Print();

  std::printf("\npaper: up to 31%% latency reduction, narrowing once the "
              "prefetcher covers large payloads.\n");
  ok &= ShapeCheck("stashing reduces latency substantially (peak >= 15%)",
                   max_reduction >= 0.15);
  ok &= ShapeCheck("gap narrows at the largest size (< peak)",
                   last_reduction < max_reduction);
  ok &= ShapeCheck("stashing never hurts", last_reduction > -0.02);
  return FinishChecks(ok);
}
