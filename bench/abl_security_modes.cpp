// Ablation: cost of each §V security mitigation (the paper defers this
// measurement to future work: "The performance impact of these options is
// a subject for future study").
//
// Two sections:
//   * latency — one-way Indirect Put median under each mitigation on the
//     two-host paper testbed (the original ablation),
//   * curve   — the full hardening cost curve: receiver-side *work cycles
//     per executed invoke* for every mitigation knob, swept across a
//     receiver pool of 1, 2, 4, and 8 cores on a 4-sender incast star.
//     Wait/spin cycles are excluded so the metric prices the mitigation
//     itself, not the load level.
//
// `--json` additionally writes BENCH_security_modes.json (machine-readable,
// uploaded as a CI artifact) so the cost curve is trackable run-over-run.
// `--curve` / `--latency` select one section; no argument runs both.
#include <cstdio>
#include <string>
#include <vector>

#include "fig_common.hpp"

using namespace twochains;
using namespace twochains::bench;

namespace {

// ------------------------------------------------------------- mode table

struct Mode {
  const char* name;
  core::SecurityPolicy policy;
  bool cache_on = false;  ///< jam cache armed (for the cached-invoke knobs)
};

/// Every mitigation knob in isolation, then the combined tiers. The two
/// cache modes price verify-on-install vs verify-on-every-invoke on the
/// by-handle fast path.
std::vector<Mode> ModeTable() {
  std::vector<Mode> modes;
  modes.push_back({"paper default", core::SecurityPolicy::PaperDefault()});
  {
    core::SecurityPolicy p;
    p.verify_injected_code = true;
    modes.push_back({"+verifier", p});
  }
  {
    core::SecurityPolicy p;
    p.receiver_installs_got = true;
    modes.push_back({"+receiver GOT", p});
  }
  {
    core::SecurityPolicy p;
    p.split_code_data_pages = true;
    p.enforce_exec_permission = true;
    modes.push_back({"+W^X split pages", p});
  }
  {
    core::SecurityPolicy p;
    p.confine_control_flow = true;
    modes.push_back({"+confinement", p});
  }
  modes.push_back({"hardened (all)", core::SecurityPolicy::Hardened()});
  modes.push_back({"hardened+cache", core::SecurityPolicy::Hardened(),
                   /*cache_on=*/true});
  {
    core::SecurityPolicy p = core::SecurityPolicy::Hardened();
    p.verify_cached_invokes = true;
    modes.push_back({"hardened+cache+verify-hits", p, /*cache_on=*/true});
  }
  return modes;
}

// --------------------------------------------------------------- latency

double MedianUs(const core::SecurityPolicy& policy, std::uint64_t usr_bytes) {
  auto options = PaperTestbed().WithSecurity(policy);
  auto testbed = MakeBenchTestbed(options);
  AmConfig config = IputConfig(usr_bytes / 4, core::Invoke::kInjected);
  config.iterations = 600;
  config.warmup = 100;
  const auto result = MustOk(RunAmPingPong(*testbed, config), "pingpong");
  return ToMicroseconds(result.one_way.Median());
}

int LatencyMain() {
  Banner("Ablation", "security-mode latency cost (Indirect Put, injected)");
  Table table({"mode", "64B(us)", "4KiB(us)", "64B cost", "4KiB cost"});

  const double base64 = MedianUs(core::SecurityPolicy::PaperDefault(), 64);
  const double base4k = MedianUs(core::SecurityPolicy::PaperDefault(), 4096);
  table.AddRow({"paper default", FmtF(base64, "%.3f"), FmtF(base4k, "%.3f"),
                "-", "-"});
  bool ok = true;
  for (const Mode& mode : ModeTable()) {
    if (mode.cache_on || std::string(mode.name) == "paper default") continue;
    const double us64 = MedianUs(mode.policy, 64);
    const double us4k = MedianUs(mode.policy, 4096);
    table.AddRow({mode.name, FmtF(us64, "%.3f"), FmtF(us4k, "%.3f"),
                  FmtPct((us64 - base64) / base64),
                  FmtPct((us4k - base4k) / base4k)});
    ok &= us64 >= base64 * 0.99;  // mitigations never make things faster
  }
  table.Print();
  ok &= ShapeCheck("every mitigation costs >= baseline latency", ok);
  return FinishChecks(ok);
}

// ----------------------------------------------------------------- curve

constexpr std::uint32_t kSenders = 4;
constexpr std::uint32_t kIterationsPerSender = 150;
constexpr std::uint32_t kPoolSizes[] = {1, 2, 4, 8};

struct CurvePoint {
  const Mode* mode = nullptr;
  std::uint32_t receiver_cores = 0;
  std::uint64_t messages = 0;
  double work_cycles_per_invoke = 0;  ///< pool cycles minus wait, per invoke
  double kmsg_per_second = 0;
  std::uint64_t cache_hits = 0;
};

CurvePoint RunCurvePoint(const Mode& mode, std::uint32_t cores) {
  core::FabricOptions options =
      PaperFabric(kSenders + 1, core::Topology::kStar, 0);
  options.runtime.security = mode.policy;
  if (mode.cache_on) options.runtime.jam_cache = HotJamCache();
  options.host_overrides.assign(kSenders + 1, options.host);
  options.host_overrides[0].cache.cores =
      std::max(options.host.cache.cores, cores + 1);
  options.runtime_overrides.assign(kSenders + 1, options.runtime);
  options.runtime_overrides[0].receiver_cores = cores;
  options.runtime_overrides[0].sender_core = cores;
  core::Fabric fabric(options);
  auto package = BuildBenchPackage();
  if (!package.ok() || !fabric.LoadPackage(*package).ok()) {
    std::fprintf(stderr, "fabric setup failed\n");
    std::abort();
  }

  IncastConfig config;
  config.jam = "iput";
  config.mode = core::Invoke::kInjected;
  config.usr_bytes = 64;
  config.iterations_per_sender = kIterationsPerSender;
  config.args = [](std::uint64_t iter) {
    return std::vector<std::uint64_t>{iter & 127};
  };

  std::vector<std::uint32_t> senders;
  for (std::uint32_t s = 1; s <= kSenders; ++s) senders.push_back(s);
  const IncastResult result =
      MustOk(RunIncastRate(fabric, 0, senders, config), "curve incast");

  CurvePoint point;
  point.mode = &mode;
  point.receiver_cores = cores;
  for (const auto& s : result.per_sender) point.messages += s.messages;
  const core::Runtime& hub = fabric.runtime(0);
  const cpu::PerfCounters pool = hub.ReceiverPoolCounters();
  const Cycles work = pool.Total() - pool.Of(cpu::CycleClass::kWait);
  point.work_cycles_per_invoke =
      point.messages ? static_cast<double>(work) /
                           static_cast<double>(point.messages)
                     : 0;
  point.kmsg_per_second = result.aggregate_messages_per_second / 1e3;
  point.cache_hits = hub.jam_cache_stats().hits;
  return point;
}

void WriteJson(const char* path, const std::vector<CurvePoint>& points) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"security_modes\",\n  \"rows\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const CurvePoint& p = points[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"receiver_cores\": %u, "
                 "\"messages\": %llu, \"work_cycles_per_invoke\": %.1f, "
                 "\"kmsg_per_second\": %.1f, \"cache_hits\": %llu}%s\n",
                 p.mode->name, p.receiver_cores,
                 static_cast<unsigned long long>(p.messages),
                 p.work_cycles_per_invoke, p.kmsg_per_second,
                 static_cast<unsigned long long>(p.cache_hits),
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

int CurveMain(bool json) {
  Banner("Ablation --curve",
         "hardening cost curve: receiver work cycles/invoke, pooled drain");
  std::printf("Indirect Put, 64 B payload, %u-sender incast, %u msgs per "
              "sender, pool of 1/2/4/8\n",
              kSenders, kIterationsPerSender);

  const std::vector<Mode> modes = ModeTable();
  std::vector<CurvePoint> points;
  for (const Mode& mode : modes) {
    for (const std::uint32_t cores : kPoolSizes) {
      points.push_back(RunCurvePoint(mode, cores));
    }
  }

  Table table({"mode", "rx cores", "cycles/invoke", "vs base", "Kmsg/s",
               "cache hits"});
  const auto at = [&](const char* name, std::uint32_t cores) -> const
      CurvePoint& {
    for (const CurvePoint& p : points) {
      if (std::string(p.mode->name) == name && p.receiver_cores == cores) {
        return p;
      }
    }
    std::abort();
  };
  for (const CurvePoint& p : points) {
    const double base =
        at("paper default", p.receiver_cores).work_cycles_per_invoke;
    table.AddRow({p.mode->name, FmtU64(p.receiver_cores),
                  FmtF(p.work_cycles_per_invoke, "%.0f"),
                  FmtF(p.work_cycles_per_invoke / base, "%.2fx"),
                  FmtF(p.kmsg_per_second), FmtU64(p.cache_hits)});
  }
  table.Print();
  if (json) WriteJson("BENCH_security_modes.json", points);

  bool ok = true;
  ok &= ShapeCheck("every (mode, cores) point executed the full incast load",
                   [&] {
                     for (const CurvePoint& p : points) {
                       if (p.messages != static_cast<std::uint64_t>(kSenders) *
                                             kIterationsPerSender) {
                         return false;
                       }
                     }
                     return true;
                   }());
  ok &= ShapeCheck(
      "every mitigation costs >= baseline work cycles/invoke at every pool "
      "size (cache modes excluded: hits legitimately skip link work)",
      [&] {
        for (const CurvePoint& p : points) {
          if (p.mode->cache_on) continue;
          const double base =
              at("paper default", p.receiver_cores).work_cycles_per_invoke;
          if (p.work_cycles_per_invoke < base * 0.99) return false;
        }
        return true;
      }());
  ok &= ShapeCheck(
      "hardened (all) is the costliest non-cached mode at every pool size",
      [&] {
        for (const std::uint32_t cores : kPoolSizes) {
          const double all = at("hardened (all)", cores).work_cycles_per_invoke;
          for (const Mode& mode : modes) {
            if (mode.cache_on) continue;
            if (at(mode.name, cores).work_cycles_per_invoke > all * 1.01) {
              return false;
            }
          }
        }
        return true;
      }());
  ok &= ShapeCheck(
      "verify-on-every-invoke charges more than verify-on-install on the "
      "cached path at every pool size",
      [&] {
        for (const std::uint32_t cores : kPoolSizes) {
          if (at("hardened+cache+verify-hits", cores).work_cycles_per_invoke <=
              at("hardened+cache", cores).work_cycles_per_invoke) {
            return false;
          }
        }
        return true;
      }());
  ok &= ShapeCheck("the cached modes actually rode the by-handle path", [&] {
    for (const CurvePoint& p : points) {
      if (p.mode->cache_on && p.cache_hits == 0) return false;
    }
    return true;
  }());
  return FinishChecks(ok);
}

}  // namespace

int main(int argc, char** argv) {
  const bool latency_only = HasFlag(argc, argv, "--latency");
  const bool curve_only = HasFlag(argc, argv, "--curve");
  const bool json = HasFlag(argc, argv, "--json");
  int rc = 0;
  if (!curve_only) rc |= LatencyMain();
  if (!latency_only) rc |= CurveMain(json);
  return rc;
}
