// Ablation: cost of each §V security mitigation on Injected Function
// latency (the paper defers this measurement to future work: "The
// performance impact of these options is a subject for future study").
#include "fig_common.hpp"

using namespace twochains;
using namespace twochains::bench;

namespace {

double MedianUs(const core::SecurityPolicy& policy, std::uint64_t usr_bytes) {
  auto options = PaperTestbed().WithSecurity(policy);
  auto testbed = MakeBenchTestbed(options);
  AmConfig config = IputConfig(usr_bytes / 4, core::Invoke::kInjected);
  config.iterations = 800;
  config.warmup = 100;
  const auto result = MustOk(RunAmPingPong(*testbed, config), "pingpong");
  return ToMicroseconds(result.one_way.Median());
}

}  // namespace

int main() {
  Banner("Ablation", "security-mode latency cost (Indirect Put, injected)");
  Table table({"mode", "64B(us)", "4KiB(us)", "64B cost", "4KiB cost"});

  core::SecurityPolicy verify;
  verify.verify_injected_code = true;
  core::SecurityPolicy recv_got;
  recv_got.receiver_installs_got = true;
  core::SecurityPolicy wx;
  wx.split_code_data_pages = true;
  wx.enforce_exec_permission = true;

  const double base64 = MedianUs(core::SecurityPolicy::PaperDefault(), 64);
  const double base4k = MedianUs(core::SecurityPolicy::PaperDefault(), 4096);
  table.AddRow({"paper default", FmtF(base64, "%.3f"), FmtF(base4k, "%.3f"),
                "-", "-"});
  struct Mode {
    const char* name;
    core::SecurityPolicy policy;
  };
  const Mode modes[] = {
      {"verifier", verify},
      {"receiver GOT", recv_got},
      {"W^X split pages", wx},
      {"hardened (all)", core::SecurityPolicy::Hardened()},
  };
  bool ok = true;
  for (const auto& mode : modes) {
    const double us64 = MedianUs(mode.policy, 64);
    const double us4k = MedianUs(mode.policy, 4096);
    table.AddRow({mode.name, FmtF(us64, "%.3f"), FmtF(us4k, "%.3f"),
                  FmtPct((us64 - base64) / base64),
                  FmtPct((us4k - base4k) / base4k)});
    ok &= us64 >= base64 * 0.99;  // mitigations never make things faster
  }
  table.Print();
  ok &= ShapeCheck("every mitigation costs >= baseline", ok);
  return FinishChecks(ok);
}
