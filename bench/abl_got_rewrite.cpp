// Ablation: the remote-linking toolchain itself — per-jam code sizes, GOT
// slot counts, rewrite coverage, the size split between the injectable
// image and the Local Function library built from the same sources, and
// the jam-cache relink column: measured per-invoke link cycles for a cold
// full-body arrival vs a warm by-handle cache hit.
#include <algorithm>

#include "fig_common.hpp"
#include "jelf/got_rewriter.hpp"

using namespace twochains;
using namespace twochains::bench;

namespace {

constexpr int kHotInvokes = 16;

/// Per-jam measured relink costs from a cache-armed testbed: one cold
/// full-body send (which installs), then kHotInvokes by-handle sends.
struct RelinkSample {
  std::uint64_t full_frame = 0;  ///< cold (full-body) frame bytes
  std::uint64_t hot_frame = 0;   ///< by-handle frame bytes
  double cold_cycles = 0;        ///< per-invoke link cycles, cold path
  double cached_cycles = 0;      ///< per-invoke relink cycles, hit path
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

RelinkSample MeasureRelink(core::Testbed& testbed,
                           const core::JamCacheConfig& cache,
                           const std::string& jam) {
  core::Runtime& sender = testbed.runtime(0);
  core::Runtime& receiver = testbed.runtime(1);
  const std::vector<std::uint64_t> args = {0};
  const std::vector<std::uint8_t> usr(8, 0x11);

  auto invoke = [&]() {
    bool done = false;
    receiver.SetOnExecuted([&](const core::ReceivedMessage& msg) {
      if (msg.executed) done = true;
    });
    auto receipt =
        MustOk(sender.Send(jam, core::Invoke::kInjected, args, usr), "send");
    testbed.RunUntil([&] { return done; });
    receiver.SetOnExecuted(nullptr);
    return receipt;
  };

  RelinkSample sample;
  const core::JamCacheStats before = receiver.jam_cache_stats();
  sample.full_frame = invoke().frame_len;
  for (int i = 0; i < kHotInvokes; ++i) sample.hot_frame = invoke().frame_len;
  const core::JamCacheStats after = receiver.jam_cache_stats();

  sample.hits = after.hits - before.hits;
  sample.misses = after.misses - before.misses;
  sample.cached_cycles = static_cast<double>(cache.hit_relink_cycles);
  // Every hit banks (cold - cached) link cycles into link_cycles_saved;
  // divide back out to recover the measured cold per-invoke cost.
  if (sample.hits > 0) {
    sample.cold_cycles =
        static_cast<double>(after.link_cycles_saved -
                            before.link_cycles_saved) /
            static_cast<double>(sample.hits) +
        sample.cached_cycles;
  }
  return sample;
}

}  // namespace

int main() {
  Banner("Ablation", "GOT rewrite + dual-variant package build");
  auto package = MustOk(BuildBenchPackage(), "package build");

  Table table({"jam", "code+rodata(B)", "GOT slots", "rewritten",
               "1-int inj frame(B)"});
  bool ok = true;
  for (const auto& elem : package.elements) {
    if (elem.kind != pkg::ElementKind::kJam) continue;
    // Count rewritten GOT accesses by scanning for ldg.pre.
    std::uint32_t pre_count = 0;
    for (std::size_t off = 0; off < elem.injected_image.text.size();
         off += vm::kInstrBytes) {
      const auto instr = vm::Decode(elem.injected_image.text.data() + off);
      if (instr && instr->op == vm::Opcode::kLdgPre) ++pre_count;
    }
    ok &= jelf::IsFullyRewritten(elem.injected_image);

    core::FrameSpec spec;
    spec.injected = true;
    spec.got_slots = elem.injected_image.got_slot_count();
    spec.code_size = elem.injected_image.code_blob_size();
    spec.args_size = 8;
    spec.usr_size = 4;
    const auto layout = core::FrameLayout::Compute(spec);
    table.AddRow({elem.name, FmtU64(elem.injected_image.code_blob_size()),
                  FmtU64(elem.injected_image.got_slot_count()),
                  FmtU64(pre_count), FmtU64(layout.frame_len)});
  }
  table.Print();

  // Send-once/invoke-many: measure the per-invoke link cycles a warm jam
  // cache replaces with one PRE-slot validation, under the default
  // receiver and under the fully hardened one (code verification +
  // receiver-built GOT + W^X page flips — the per-arrival work the
  // security modes add to every full-body frame).
  const core::JamCacheConfig cache = HotJamCache();
  auto base_bed = MakeBenchTestbed(PaperTestbed().WithJamCache(cache));
  core::SecurityPolicy hardened;
  hardened.verify_injected_code = true;
  hardened.receiver_installs_got = true;
  hardened.split_code_data_pages = true;
  auto hard_bed = MakeBenchTestbed(
      PaperTestbed().WithJamCache(cache).WithSecurity(hardened));

  Table relink({"jam", "full(B)", "by-handle(B)", "cold(cyc)", "cached(cyc)",
                "hardened cold(cyc)", "hardened gain"});
  double iput_base_ratio = 0;
  double min_hard_ratio = 1e18;
  std::uint64_t warm_misses = 0;
  bool frames_slim = true;
  for (const auto& elem : package.elements) {
    if (elem.kind != pkg::ElementKind::kJam) continue;
    const RelinkSample base = MeasureRelink(*base_bed, cache, elem.name);
    const RelinkSample hard = MeasureRelink(*hard_bed, cache, elem.name);
    warm_misses += base.misses + hard.misses;
    frames_slim &= base.hot_frame < base.full_frame;
    const double hard_ratio = hard.cold_cycles / hard.cached_cycles;
    min_hard_ratio = std::min(min_hard_ratio, hard_ratio);
    if (elem.name == "iput") {
      iput_base_ratio = base.cold_cycles / base.cached_cycles;
    }
    relink.AddRow({elem.name, FmtU64(base.full_frame),
                   FmtU64(base.hot_frame), FmtF(base.cold_cycles, "%.0f"),
                   FmtF(base.cached_cycles, "%.0f"),
                   FmtF(hard.cold_cycles, "%.0f"),
                   FmtF(hard_ratio, "%.1fx")});
  }
  std::printf("\njam cache (capacity %u): measured per-invoke relink, cold "
              "full-body vs warm by-handle\n",
              cache.capacity);
  relink.Print();

  std::printf("\nLocal Function library (all jams, unmodified): %llu B text"
              ", page aligned: %s\n",
              static_cast<unsigned long long>(package.local_library.text.size()),
              package.local_library.page_aligned ? "yes" : "no");
  std::printf("paper reference point: Indirect Put ships 1408 B of code; "
              "1-int injected frame 1472 B.\n");
  ok &= ShapeCheck("all jam images fully rewritten to preamble addressing",
                   ok);
  const auto* iput = package.Find(pkg::ElementKind::kJam, "iput");
  ok &= ShapeCheck("Indirect Put code size within 2x of the paper's 1408 B",
                   iput != nullptr &&
                       iput->injected_image.code_blob_size() >= 704 &&
                       iput->injected_image.code_blob_size() <= 2816);
  ok &= ShapeCheck("warm cache never misses (send-once, invoke-many)",
                   warm_misses == 0);
  ok &= ShapeCheck("by-handle frame smaller than full-body for every jam",
                   frames_slim);
  ok &= ShapeCheck("cached relink >=5x cheaper than cold (iput)",
                   iput_base_ratio >= 5.0);
  ok &= ShapeCheck("cached relink >=5x cheaper for every jam, hardened",
                   min_hard_ratio >= 5.0);
  return FinishChecks(ok);
}
