// Ablation: the remote-linking toolchain itself — per-jam code sizes, GOT
// slot counts, rewrite coverage, and the size split between the injectable
// image and the Local Function library built from the same sources.
#include "fig_common.hpp"
#include "jelf/got_rewriter.hpp"

using namespace twochains;
using namespace twochains::bench;

int main() {
  Banner("Ablation", "GOT rewrite + dual-variant package build");
  auto package = MustOk(BuildBenchPackage(), "package build");

  Table table({"jam", "code+rodata(B)", "GOT slots", "rewritten",
               "1-int inj frame(B)"});
  bool ok = true;
  for (const auto& elem : package.elements) {
    if (elem.kind != pkg::ElementKind::kJam) continue;
    // Count rewritten GOT accesses by scanning for ldg.pre.
    std::uint32_t pre_count = 0;
    for (std::size_t off = 0; off < elem.injected_image.text.size();
         off += vm::kInstrBytes) {
      const auto instr = vm::Decode(elem.injected_image.text.data() + off);
      if (instr && instr->op == vm::Opcode::kLdgPre) ++pre_count;
    }
    ok &= jelf::IsFullyRewritten(elem.injected_image);

    core::FrameSpec spec;
    spec.injected = true;
    spec.got_slots = elem.injected_image.got_slot_count();
    spec.code_size = elem.injected_image.code_blob_size();
    spec.args_size = 8;
    spec.usr_size = 4;
    const auto layout = core::FrameLayout::Compute(spec);
    table.AddRow({elem.name, FmtU64(elem.injected_image.code_blob_size()),
                  FmtU64(elem.injected_image.got_slot_count()),
                  FmtU64(pre_count), FmtU64(layout.frame_len)});
  }
  table.Print();

  std::printf("\nLocal Function library (all jams, unmodified): %llu B text"
              ", page aligned: %s\n",
              static_cast<unsigned long long>(package.local_library.text.size()),
              package.local_library.page_aligned ? "yes" : "no");
  std::printf("paper reference point: Indirect Put ships 1408 B of code; "
              "1-int injected frame 1472 B.\n");
  ok &= ShapeCheck("all jam images fully rewritten to preamble addressing",
                   ok);
  const auto* iput = package.Find(pkg::ElementKind::kJam, "iput");
  ok &= ShapeCheck("Indirect Put code size within 2x of the paper's 1408 B",
                   iput != nullptr &&
                       iput->injected_image.code_blob_size() >= 704 &&
                       iput->injected_image.code_blob_size() <= 2816);
  return FinishChecks(ok);
}
