// printf-style std::string formatting (the toolchain predates std::format
// being reliably available everywhere; keep one tiny helper instead).
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>

namespace twochains {

/// Formats like printf into a std::string.
inline std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

inline std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

}  // namespace twochains
