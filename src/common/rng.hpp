// Deterministic random number generation for the simulator.
//
// Everything stochastic in the stack (noise processes, property-test inputs,
// workload generators) draws from Xoshiro256** seeded explicitly, so any run
// is reproducible from its seed. We deliberately do not use std::mt19937 in
// library code: its state is large and its stream is not stable across
// standard library implementations for the distributions layered on top.
#pragma once

#include <cstdint>
#include <cmath>

namespace twochains {

/// Xoshiro256** 1.0 (Blackman & Vigna), public-domain algorithm.
class Xoshiro256 {
 public:
  /// Seeds via SplitMix64 so that low-entropy seeds still produce
  /// well-distributed state.
  explicit Xoshiro256(std::uint64_t seed = kDefaultSeed) noexcept;

  /// Default seed: arbitrary constant so unseeded generators are still
  /// deterministic across runs.
  static constexpr std::uint64_t kDefaultSeed = 0x2c41a15'7c0de'5eedull;

  /// Next 64 uniformly distributed bits.
  std::uint64_t Next() noexcept;

  /// Uniform in [0, bound). bound == 0 returns 0. Uses rejection sampling so
  /// the result is exactly uniform.
  std::uint64_t NextBelow(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  double NextDouble() noexcept;

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t NextInRange(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + NextBelow(hi - lo + 1);
  }

  /// True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p) noexcept { return NextDouble() < p; }

  /// Exponential with the given mean (inverse-CDF method).
  double NextExponential(double mean) noexcept;

  /// Pareto (heavy tail) with scale x_m and shape alpha; mean exists only
  /// for alpha > 1. Used by the interference model for preemption spikes.
  double NextPareto(double x_m, double alpha) noexcept;

  // std::uniform_random_bit_generator interface so <algorithm> shuffles work.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return UINT64_MAX; }
  result_type operator()() noexcept { return Next(); }

 private:
  std::uint64_t s_[4];
};

}  // namespace twochains
