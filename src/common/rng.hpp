// Deterministic random number generation for the simulator.
//
// Everything stochastic in the stack (noise processes, property-test inputs,
// workload generators) draws from Xoshiro256** seeded explicitly, so any run
// is reproducible from its seed. We deliberately do not use std::mt19937 in
// library code: its state is large and its stream is not stable across
// standard library implementations for the distributions layered on top.
#pragma once

#include <cstdint>
#include <cmath>

namespace twochains {

/// Xoshiro256** 1.0 (Blackman & Vigna), public-domain algorithm.
class Xoshiro256 {
 public:
  /// Seeds via SplitMix64 so that low-entropy seeds still produce
  /// well-distributed state.
  explicit Xoshiro256(std::uint64_t seed = kDefaultSeed) noexcept;

  /// Default seed: arbitrary constant so unseeded generators are still
  /// deterministic across runs.
  static constexpr std::uint64_t kDefaultSeed = 0x2c41a15'7c0de'5eedull;

  /// Next 64 uniformly distributed bits.
  std::uint64_t Next() noexcept;

  /// Uniform in [0, bound). bound == 0 returns 0. Uses rejection sampling so
  /// the result is exactly uniform.
  std::uint64_t NextBelow(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  double NextDouble() noexcept;

  /// Uniform in [lo, hi] inclusive. Covers the full u64 domain:
  /// NextInRange(0, UINT64_MAX) is a raw Next() draw (the naive
  /// `hi - lo + 1` bound would wrap to 0 there and degenerate to `lo`).
  std::uint64_t NextInRange(std::uint64_t lo, std::uint64_t hi) noexcept {
    const std::uint64_t span = hi - lo;  // inclusive width minus one
    if (span == ~std::uint64_t{0}) return Next();
    return lo + NextBelow(span + 1);
  }

  /// True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p) noexcept { return NextDouble() < p; }

  /// Exponential with the given mean (inverse-CDF method).
  double NextExponential(double mean) noexcept;

  /// Pareto (heavy tail) with scale x_m and shape alpha; mean exists only
  /// for alpha > 1. Used by the interference model for preemption spikes.
  double NextPareto(double x_m, double alpha) noexcept;

  /// Zipf-distributed rank in [0, n): P(k) proportional to 1/(k+1)^theta,
  /// so rank 0 is the hottest. theta <= 0 degenerates to uniform; n == 0
  /// returns 0. O(1) per draw via Hoermann & Derflinger rejection
  /// inversion — no O(n) zeta precompute, so one generator can serve many
  /// key spaces. The workload generators use this for hot-key popularity
  /// (theta ~ 0.99-1.2 is the YCSB-style serving mix).
  std::uint64_t NextZipf(std::uint64_t n, double theta) noexcept;

  // std::uniform_random_bit_generator interface so <algorithm> shuffles work.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return UINT64_MAX; }
  result_type operator()() noexcept { return Next(); }

 private:
  std::uint64_t s_[4];
};

}  // namespace twochains
