// Minimal leveled logging.
//
// The library is quiet by default (kWarn); tests and benches raise verbosity
// when diagnosing. Log lines go to stderr so bench table output on stdout
// stays machine-parseable.
#pragma once

#include <sstream>
#include <string_view>

namespace twochains {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are discarded.
void SetLogLevel(LogLevel level) noexcept;
LogLevel GetLogLevel() noexcept;

namespace detail {

/// Builds one log line in a stream and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, std::string_view file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is filtered out.
struct LogSink {
  template <typename T>
  LogSink& operator<<(const T&) { return *this; }
};

}  // namespace detail
}  // namespace twochains

#define TC_LOG(level)                                                     \
  (static_cast<int>(::twochains::LogLevel::level) <                       \
   static_cast<int>(::twochains::GetLogLevel()))                          \
      ? (void)0                                                           \
      : (void)(::twochains::detail::LogMessage(                           \
            ::twochains::LogLevel::level, __FILE__, __LINE__))

#define TC_DEBUG ::twochains::detail::LogMessage(::twochains::LogLevel::kDebug, __FILE__, __LINE__)
#define TC_INFO  ::twochains::detail::LogMessage(::twochains::LogLevel::kInfo, __FILE__, __LINE__)
#define TC_WARN  ::twochains::detail::LogMessage(::twochains::LogLevel::kWarn, __FILE__, __LINE__)
#define TC_ERROR ::twochains::detail::LogMessage(::twochains::LogLevel::kError, __FILE__, __LINE__)
