// Measurement collection for the benchmark harnesses.
//
// The paper reports median (50th) and tail (99.9th percentile) latencies,
// message rates, bandwidths, and the derived "tail latency spread"
// (tail - median) / median (its Eq. 1). LatencySample keeps the raw samples
// (benchmark iteration counts here are modest) and computes exact order
// statistics; RunningStat provides streaming mean/variance for tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace twochains {

/// Streaming mean / variance / extrema (Welford's algorithm).
class RunningStat {
 public:
  void Add(double x) noexcept;
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Collects latency samples (picoseconds) and reports order statistics.
class LatencySample {
 public:
  LatencySample() = default;
  /// Reserves capacity when the iteration count is known up front.
  explicit LatencySample(std::size_t expected) { samples_.reserve(expected); }

  void Add(PicoTime latency) {
    samples_.push_back(latency);
    sorted_ = false;
  }
  std::size_t count() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  /// Exact percentile by nearest-rank (q in [0,1]); 0 on empty samples.
  /// Sorts lazily on first query after new samples.
  PicoTime Percentile(double q) const;

  PicoTime Median() const { return Percentile(0.50); }
  /// The paper's tail latency: the 99.9th percentile.
  PicoTime Tail() const { return Percentile(0.999); }

  /// Tail latency spread per the paper's Eq. 1: (tail - median) / median.
  /// Returns 0 when the median is 0.
  double TailSpread() const;

  double MeanNanos() const;
  PicoTime Min() const;
  PicoTime Max() const;

  /// Read-only view of raw samples (unsorted insertion order).
  const std::vector<PicoTime>& samples() const noexcept { return samples_; }

 private:
  mutable std::vector<PicoTime> samples_;
  mutable bool sorted_ = false;
};

/// Fixed-boundary histogram used by property tests to sanity-check the
/// interference model's distribution shape.
class Histogram {
 public:
  /// Buckets: [0,b0), [b0,b1), ..., [b_{n-1}, inf). Boundaries ascending.
  explicit Histogram(std::vector<double> boundaries);

  void Add(double x) noexcept;
  std::size_t BucketCount() const noexcept { return counts_.size(); }
  std::uint64_t BucketValue(std::size_t i) const { return counts_.at(i); }
  std::uint64_t TotalCount() const noexcept { return total_; }

 private:
  std::vector<double> boundaries_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Converts bytes moved over a duration into MB/s (decimal megabytes,
/// matching the paper's bandwidth plots).
double MegabytesPerSecond(std::uint64_t bytes, PicoTime duration) noexcept;

/// Converts a message count over a duration into messages/second.
double MessagesPerSecond(std::uint64_t messages, PicoTime duration) noexcept;

}  // namespace twochains
