// Status / StatusOr: lightweight error propagation for the Two-Chains stack.
//
// Hot paths in the simulator and runtime avoid exceptions; fallible
// operations return Status (or StatusOr<T> when they produce a value).
// The error taxonomy mirrors the failure classes the framework must surface:
// permission violations, protocol/format errors, resource exhaustion, and
// lookup failures (e.g. unresolved symbols).
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace twochains {

/// Error classification shared by every module.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,    ///< caller passed something malformed
  kNotFound,           ///< lookup failed (symbol, package, element, rkey ...)
  kAlreadyExists,      ///< duplicate registration
  kOutOfRange,         ///< address/index outside a valid region
  kPermissionDenied,   ///< page-permission or rkey violation
  kFailedPrecondition, ///< object not in the required state
  kResourceExhausted,  ///< arena/bank/queue full
  kDataLoss,           ///< corrupted frame, bad magic, truncated object
  kUnimplemented,      ///< feature disabled by configuration
  kInternal,           ///< invariant broken (a bug in this library)
};

/// Human-readable name for a StatusCode ("OK", "NOT_FOUND", ...).
std::string_view StatusCodeName(StatusCode code) noexcept;

/// Result of a fallible operation: a code plus, when not OK, a message.
/// OK Status construction and copies are allocation-free.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() noexcept : code_(StatusCode::kOk) {}
  /// Constructs a status with @p code and a diagnostic @p message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() noexcept { return Status(); }

  bool ok() const noexcept { return code_ == StatusCode::kOk; }
  StatusCode code() const noexcept { return code_; }
  /// Diagnostic message; empty for OK statuses.
  const std::string& message() const noexcept { return message_; }

  /// "OK" or "CODE_NAME: message" for logs and test failures.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Factory helpers, one per error class, so call sites read as intent.
inline Status InvalidArgument(std::string m) {
  return {StatusCode::kInvalidArgument, std::move(m)};
}
inline Status NotFound(std::string m) {
  return {StatusCode::kNotFound, std::move(m)};
}
inline Status AlreadyExists(std::string m) {
  return {StatusCode::kAlreadyExists, std::move(m)};
}
inline Status OutOfRange(std::string m) {
  return {StatusCode::kOutOfRange, std::move(m)};
}
inline Status PermissionDenied(std::string m) {
  return {StatusCode::kPermissionDenied, std::move(m)};
}
inline Status FailedPrecondition(std::string m) {
  return {StatusCode::kFailedPrecondition, std::move(m)};
}
inline Status ResourceExhausted(std::string m) {
  return {StatusCode::kResourceExhausted, std::move(m)};
}
inline Status DataLoss(std::string m) {
  return {StatusCode::kDataLoss, std::move(m)};
}
inline Status Unimplemented(std::string m) {
  return {StatusCode::kUnimplemented, std::move(m)};
}
inline Status Internal(std::string m) {
  return {StatusCode::kInternal, std::move(m)};
}

/// Either a value of type T or a non-OK Status explaining its absence.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit from a value: success.
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  /// Implicit from a non-OK status: failure. OK statuses are a caller bug
  /// and are converted to kInternal to keep the invariant "ok() == has value".
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    if (std::get<Status>(rep_).ok()) {
      rep_ = Internal("StatusOr constructed from OK status");
    }
  }

  bool ok() const noexcept { return std::holds_alternative<T>(rep_); }

  /// The status: OK when a value is present.
  Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(rep_);
  }

  /// Value accessors; only valid when ok().
  const T& value() const& { return std::get<T>(rep_); }
  T& value() & { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace twochains

/// Propagates a non-OK Status to the caller. Usable in functions returning
/// Status or StatusOr<T>.
#define TC_RETURN_IF_ERROR(expr)                      \
  do {                                                \
    ::twochains::Status tc_status_ = (expr);          \
    if (!tc_status_.ok()) return tc_status_;          \
  } while (0)

/// Evaluates a StatusOr expression, propagating failure, else binds the value.
#define TC_ASSIGN_OR_RETURN(lhs, expr)                \
  TC_ASSIGN_OR_RETURN_IMPL_(TC_CONCAT_(tc_sor_, __LINE__), lhs, expr)
#define TC_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr)     \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()
#define TC_CONCAT_(a, b) TC_CONCAT_IMPL_(a, b)
#define TC_CONCAT_IMPL_(a, b) a##b
