// Little-endian byte serialization helpers.
//
// Used by the JELF object format, the message frame codec, and the jam
// instruction encoder. All reads are bounds-checked against the provided
// span; writers append to a std::vector<uint8_t>.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace twochains {

/// Appends fixed-width little-endian integers and length-prefixed strings to
/// a byte vector.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void U8(std::uint8_t v) { out_.push_back(v); }
  void U16(std::uint16_t v) { AppendLE(v); }
  void U32(std::uint32_t v) { AppendLE(v); }
  void U64(std::uint64_t v) { AppendLE(v); }
  void I64(std::int64_t v) { AppendLE(static_cast<std::uint64_t>(v)); }

  void Bytes(std::span<const std::uint8_t> bytes) {
    out_.insert(out_.end(), bytes.begin(), bytes.end());
  }

  /// u32 length prefix followed by raw bytes.
  void LengthPrefixedString(std::string_view s) {
    U32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }

  /// Pads with zero bytes up to the next multiple of @p align.
  void AlignTo(std::size_t align) {
    while (out_.size() % align != 0) out_.push_back(0);
  }

  std::size_t size() const noexcept { return out_.size(); }

  /// Overwrites a previously written u32 at @p offset (for back-patching
  /// section sizes / offsets).
  void PatchU32(std::size_t offset, std::uint32_t v) {
    std::memcpy(out_.data() + offset, &v, sizeof(v));
  }
  void PatchU64(std::size_t offset, std::uint64_t v) {
    std::memcpy(out_.data() + offset, &v, sizeof(v));
  }

 private:
  template <typename T>
  void AppendLE(T v) {
    std::uint8_t buf[sizeof(T)];
    std::memcpy(buf, &v, sizeof(T));  // host is little-endian (x86/arm LE)
    out_.insert(out_.end(), buf, buf + sizeof(T));
  }

  std::vector<std::uint8_t>& out_;
};

/// Sequentially consumes little-endian integers from a byte span with bounds
/// checking; all readers return kDataLoss on truncation.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  StatusOr<std::uint8_t> U8() { return Read<std::uint8_t>(); }
  StatusOr<std::uint16_t> U16() { return Read<std::uint16_t>(); }
  StatusOr<std::uint32_t> U32() { return Read<std::uint32_t>(); }
  StatusOr<std::uint64_t> U64() { return Read<std::uint64_t>(); }

  StatusOr<std::string> LengthPrefixedString() {
    TC_ASSIGN_OR_RETURN(std::uint32_t len, U32());
    if (Remaining() < len) return DataLoss("truncated string");
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return s;
  }

  /// Borrows @p n bytes from the current position (no copy).
  StatusOr<std::span<const std::uint8_t>> Bytes(std::size_t n) {
    if (Remaining() < n) return DataLoss("truncated bytes");
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  Status SkipTo(std::size_t offset) {
    if (offset > data_.size()) return DataLoss("seek past end");
    pos_ = offset;
    return Status::Ok();
  }

  std::size_t position() const noexcept { return pos_; }
  std::size_t Remaining() const noexcept { return data_.size() - pos_; }

 private:
  template <typename T>
  StatusOr<T> Read() {
    if (Remaining() < sizeof(T)) return DataLoss("truncated integer");
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace twochains
