#include "common/rng.hpp"

namespace twochains {
namespace {

constexpr std::uint64_t Rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

/// SplitMix64 step; standard seeding companion to xoshiro.
std::uint64_t SplitMix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
}

std::uint64_t Xoshiro256::Next() noexcept {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::NextBelow(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless rejection method.
  std::uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::NextDouble() noexcept {
  // 53 top bits -> [0,1) with full double precision.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::NextExponential(double mean) noexcept {
  double u = NextDouble();
  // Guard the log: u == 0 would yield +inf.
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Xoshiro256::NextPareto(double x_m, double alpha) noexcept {
  double u = NextDouble();
  if (u <= 0.0) u = 0x1.0p-53;
  return x_m / std::pow(u, 1.0 / alpha);
}

namespace {

// Rejection-inversion helpers (Hoermann & Derflinger 1996): H is the
// antiderivative of the unnormalized density h(x) = x^-theta, offset so the
// theta == 1 singularity is handled by its log limit.
double ZipfH(double x, double theta) noexcept {
  const double one_minus = 1.0 - theta;
  if (one_minus == 0.0) return std::log(x);
  return (std::pow(x, one_minus) - 1.0) / one_minus;
}

double ZipfHInverse(double y, double theta) noexcept {
  const double one_minus = 1.0 - theta;
  if (one_minus == 0.0) return std::exp(y);
  return std::pow(1.0 + y * one_minus, 1.0 / one_minus);
}

}  // namespace

std::uint64_t Xoshiro256::NextZipf(std::uint64_t n, double theta) noexcept {
  if (n <= 1) return 0;
  if (theta <= 0.0) return NextBelow(n);  // degenerate: uniform ranks
  // Sample k in [1, n] with P(k) ~ k^-theta, then shift to 0-based ranks.
  const double nd = static_cast<double>(n);
  const double h_x1 = ZipfH(1.5, theta) - 1.0;
  const double h_n = ZipfH(nd + 0.5, theta);
  // Acceptance shortcut width: points within `cut` of the integer grid are
  // accepted without evaluating the bound (covers the k = 1 spike exactly).
  const double cut =
      2.0 - ZipfHInverse(ZipfH(2.5, theta) - std::pow(2.0, -theta), theta);
  for (;;) {
    const double u = h_n + NextDouble() * (h_x1 - h_n);
    const double x = ZipfHInverse(u, theta);
    double k = std::floor(x + 0.5);
    if (k < 1.0) k = 1.0;
    if (k > nd) k = nd;
    if (k - x <= cut ||
        u >= ZipfH(k + 0.5, theta) - std::pow(k, -theta)) {
      return static_cast<std::uint64_t>(k) - 1;
    }
  }
}

}  // namespace twochains
