// Time and size units used throughout the simulator.
//
// Simulated time is an integer count of picoseconds (PicoTime). Picosecond
// granularity represents every clock in the testbed exactly enough: the
// 2.6 GHz core period is ~384.6 ps and the 1.6 GHz interconnect period is
// 625 ps. 64-bit picoseconds overflow after ~213 days of simulated time,
// far beyond any benchmark run.
#pragma once

#include <cstdint>

namespace twochains {

/// Absolute simulated time or a duration, in picoseconds.
using PicoTime = std::uint64_t;

/// Cycle counts for a specific clock domain.
using Cycles = std::uint64_t;

inline constexpr PicoTime kPicosPerNano = 1000;
inline constexpr PicoTime kPicosPerMicro = 1000 * kPicosPerNano;
inline constexpr PicoTime kPicosPerMilli = 1000 * kPicosPerMicro;
inline constexpr PicoTime kPicosPerSecond = 1000 * kPicosPerMilli;

constexpr PicoTime Nanoseconds(double ns) {
  return static_cast<PicoTime>(ns * static_cast<double>(kPicosPerNano));
}
constexpr PicoTime Microseconds(double us) {
  return static_cast<PicoTime>(us * static_cast<double>(kPicosPerMicro));
}
constexpr double ToNanoseconds(PicoTime t) {
  return static_cast<double>(t) / static_cast<double>(kPicosPerNano);
}
constexpr double ToMicroseconds(PicoTime t) {
  return static_cast<double>(t) / static_cast<double>(kPicosPerMicro);
}
constexpr double ToSeconds(PicoTime t) {
  return static_cast<double>(t) / static_cast<double>(kPicosPerSecond);
}

/// A fixed-frequency clock domain that converts between cycles and picoseconds
/// using integer arithmetic (exact for the rational frequencies we model).
class ClockDomain {
 public:
  /// Frequency expressed as a rational number of hertz: hz_num/hz_den.
  /// 2.6 GHz is ClockDomain(13'000'000'000, 5); 1.6 GHz is (1'600'000'000, 1).
  constexpr ClockDomain(std::uint64_t hz_num, std::uint64_t hz_den) noexcept
      : hz_num_(hz_num), hz_den_(hz_den) {}

  /// Convenience factory from GHz times 10 (26 -> 2.6 GHz) to stay integral.
  static constexpr ClockDomain FromDeciGHz(std::uint64_t dghz) noexcept {
    return ClockDomain(dghz * 100'000'000ull, 1);
  }

  /// Duration of @p cycles, rounded to the nearest picosecond.
  constexpr PicoTime ToPicos(Cycles cycles) const noexcept {
    // picos = cycles * 1e12 * den / num, computed as cycles*den*1e12/num.
    // 1e12*den fits 64 bits for our domains; cycles stay < 2^40 per call in
    // practice, so compute in long double only when the fast path overflows.
    const std::uint64_t num = hz_num_;
    const std::uint64_t scaled = kPicosPerSecond * hz_den_;
    if (cycles <= UINT64_MAX / scaled) {
      return (cycles * scaled + num / 2) / num;
    }
    const long double picos = static_cast<long double>(cycles) *
                              static_cast<long double>(scaled) /
                              static_cast<long double>(num);
    return static_cast<PicoTime>(picos);
  }

  /// Number of whole cycles that fit in @p duration (rounded up so waiting
  /// "at least" a duration is conservative).
  constexpr Cycles ToCycles(PicoTime duration) const noexcept {
    const std::uint64_t scaled = kPicosPerSecond * hz_den_;
    if (duration <= UINT64_MAX / hz_num_) {
      return (duration * hz_num_ + scaled - 1) / scaled;
    }
    const long double cycles = static_cast<long double>(duration) *
                               static_cast<long double>(hz_num_) /
                               static_cast<long double>(scaled);
    return static_cast<Cycles>(cycles) + 1;
  }

  constexpr double GHz() const noexcept {
    return static_cast<double>(hz_num_) /
           (static_cast<double>(hz_den_) * 1e9);
  }

 private:
  std::uint64_t hz_num_;
  std::uint64_t hz_den_;
};

/// The two clock domains of the paper's testbed (§VI-C).
inline constexpr ClockDomain kCoreClock{13'000'000'000ull, 5};       // 2.6 GHz
inline constexpr ClockDomain kInterconnectClock{1'600'000'000ull, 1};  // 1.6 GHz

// Size helpers.
inline constexpr std::uint64_t KiB(std::uint64_t n) { return n << 10; }
inline constexpr std::uint64_t MiB(std::uint64_t n) { return n << 20; }
inline constexpr std::uint64_t GiB(std::uint64_t n) { return n << 30; }

/// Cache-line size of the modeled testbed; frame sizes round to this.
inline constexpr std::uint64_t kCacheLineBytes = 64;

}  // namespace twochains
