// Small bit/alignment helpers shared by the memory, cache, and codec layers.
#pragma once

#include <bit>
#include <cstdint>

namespace twochains {

/// True if @p v is a power of two (zero is not).
constexpr bool IsPowerOfTwo(std::uint64_t v) noexcept {
  return v != 0 && (v & (v - 1)) == 0;
}

/// Rounds @p v up to the next multiple of @p align (align must be pow2).
constexpr std::uint64_t AlignUp(std::uint64_t v, std::uint64_t align) noexcept {
  return (v + align - 1) & ~(align - 1);
}

/// Rounds @p v down to a multiple of @p align (align must be pow2).
constexpr std::uint64_t AlignDown(std::uint64_t v, std::uint64_t align) noexcept {
  return v & ~(align - 1);
}

/// log2 of a power of two.
constexpr unsigned Log2(std::uint64_t v) noexcept {
  return static_cast<unsigned>(std::countr_zero(v));
}

/// Number of @p unit-sized chunks needed to cover @p bytes.
constexpr std::uint64_t CeilDiv(std::uint64_t bytes, std::uint64_t unit) noexcept {
  return (bytes + unit - 1) / unit;
}

}  // namespace twochains
