#include "common/log.hpp"

#include <atomic>
#include <cstdio>

namespace twochains {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

constexpr std::string_view LevelName(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

/// Trims a path down to its final component for compact log prefixes.
std::string_view Basename(std::string_view path) noexcept {
  const auto pos = path.find_last_of('/');
  return pos == std::string_view::npos ? path : path.substr(pos + 1);
}

}  // namespace

void SetLogLevel(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace detail {

LogMessage::LogMessage(LogLevel level, std::string_view file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << "] " << Basename(file) << ":" << line
          << " ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      g_level.load(std::memory_order_relaxed)) {
    return;
  }
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
}

}  // namespace detail
}  // namespace twochains
