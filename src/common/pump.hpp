// Self-rescheduling callback loops ("pumps") for benches, examples, and
// tests: a message pump parks itself on a flow-control waiter or a
// scheduled event and re-enters when poked.
//
// The naive idiom —
//   auto pump = std::make_shared<std::function<void()>>();
//   *pump = [pump] { ...; NotifyWhenSlotFree([pump] { (*pump)(); }); };
// — makes the function own itself through the capture, a shared_ptr cycle
// that never frees (LeakSanitizer flags every such loop). PumpLoop keeps
// ownership with the driver and hands the loop body a *weak* re-entry
// handle instead: parked callbacks that outlive the driver become inert
// no-ops rather than leaks or dangling calls.
#pragma once

#include <functional>
#include <memory>
#include <utility>

namespace twochains {

template <typename... Args>
class PumpLoop {
 public:
  using Fn = std::function<void(Args...)>;

  PumpLoop() : fn_(std::make_shared<Fn>()) {}

  /// Installs the loop body. The body typically captures `Handle()` and
  /// passes it wherever the loop must resume (never an owning copy,
  /// which would cycle).
  void Set(Fn fn) { *fn_ = std::move(fn); }

  /// Runs one iteration now (no-op until Set()).
  void operator()(Args... args) const {
    if (*fn_) (*fn_)(std::forward<Args>(args)...);
  }

  /// A copyable re-entry callback holding only a weak reference: safe to
  /// park in schedulers or flow-control waiters that may fire after this
  /// PumpLoop is gone.
  Fn Handle() const {
    return [weak = std::weak_ptr<Fn>(fn_)](Args... args) {
      if (const auto fn = weak.lock()) {
        if (*fn) (*fn)(std::forward<Args>(args)...);
      }
    };
  }

 private:
  std::shared_ptr<Fn> fn_;
};

}  // namespace twochains
