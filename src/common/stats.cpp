#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace twochains {

void RunningStat::Add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

PicoTime LatencySample::Percentile(double q) const {
  if (samples_.empty()) return 0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: ceil(q * N), 1-based.
  const auto n = samples_.size();
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return samples_[rank - 1];
}

double LatencySample::TailSpread() const {
  const double median = static_cast<double>(Median());
  if (median == 0.0) return 0.0;
  return (static_cast<double>(Tail()) - median) / median;
}

double LatencySample::MeanNanos() const {
  if (samples_.empty()) return 0.0;
  long double sum = 0;
  for (PicoTime s : samples_) sum += static_cast<long double>(s);
  return static_cast<double>(sum / static_cast<long double>(samples_.size())) /
         static_cast<double>(kPicosPerNano);
}

PicoTime LatencySample::Min() const { return Percentile(0.0); }
PicoTime LatencySample::Max() const { return Percentile(1.0); }

Histogram::Histogram(std::vector<double> boundaries)
    : boundaries_(std::move(boundaries)),
      counts_(boundaries_.size() + 1, 0) {
  for (std::size_t i = 1; i < boundaries_.size(); ++i) {
    if (boundaries_[i] <= boundaries_[i - 1]) {
      throw std::invalid_argument("Histogram boundaries must ascend");
    }
  }
}

void Histogram::Add(double x) noexcept {
  const auto it =
      std::upper_bound(boundaries_.begin(), boundaries_.end(), x);
  counts_[static_cast<std::size_t>(it - boundaries_.begin())]++;
  ++total_;
}

double MegabytesPerSecond(std::uint64_t bytes, PicoTime duration) noexcept {
  if (duration == 0) return 0.0;
  const double seconds = ToSeconds(duration);
  return static_cast<double>(bytes) / 1e6 / seconds;
}

double MessagesPerSecond(std::uint64_t messages, PicoTime duration) noexcept {
  if (duration == 0) return 0.0;
  return static_cast<double>(messages) / ToSeconds(duration);
}

}  // namespace twochains
