// Two-pass assembler: jam assembly text -> ObjectCode.
//
// Grammar (one statement per line; ';' or '#' starts a comment):
//
//   .text | .rodata | .data          select current section
//   .global NAME                     export NAME
//   .extern NAME                     declare an external symbol
//   .align N                         pad section to N bytes (pow2)
//   .byte V,... | .half V,... | .word V,... | .quad V|SYM[+OFF],...
//   .asciz "STR"                     NUL-terminated string (escapes \n\t\0\\\")
//   .space N                         N zero bytes
//   LABEL:                           define LABEL at current position
//
// Instructions follow the ISA mnemonics (isa.hpp); operand shapes:
//   alu      op rd, rs1, rs2     |  opi rd, rs1, imm
//   const    movi rd, imm        |  movhi rd, imm
//   load     ld* rd, [rs1+imm]
//   store    st* rs2, [rs1+imm]       (value register first)
//   branch   b* rs1, rs2, target      (label or numeric byte offset)
//   jumps    jal rd, target  |  jalr rd, rs1, imm
//   address  lea rd, symbol|imm
//   got      ldg rd, @symbol          (emits ldg.fix + GOT relocation)
//
// Pseudo-instructions: ret, mov, li (64-bit, always two slots), jmp, call,
// not, neg, seqz, snez.
//
// Branch targets defined in the same object's .text resolve immediately;
// everything else (lea of .rodata symbols, @got refs, .quad symbols)
// produces relocations for the linker.
#pragma once

#include <string>
#include <string_view>

#include "common/status.hpp"
#include "jamvm/program.hpp"

namespace twochains::vm {

/// Assembles @p source (named @p unit_name for diagnostics).
StatusOr<ObjectCode> Assemble(std::string_view source,
                              std::string unit_name = "<asm>");

}  // namespace twochains::vm
