#include "jamvm/isa.hpp"

#include <array>
#include <cstring>

#include "common/strfmt.hpp"

namespace twochains::vm {
namespace {

struct OpInfo {
  Opcode op;
  std::string_view name;
};

constexpr std::array<OpInfo, static_cast<std::size_t>(Opcode::kOpcodeCount)>
    kOpTable = {{
        {Opcode::kHalt, "halt"},
        {Opcode::kNop, "nop"},
        {Opcode::kAdd, "add"},
        {Opcode::kSub, "sub"},
        {Opcode::kMul, "mul"},
        {Opcode::kDiv, "div"},
        {Opcode::kDivu, "divu"},
        {Opcode::kRem, "rem"},
        {Opcode::kRemu, "remu"},
        {Opcode::kAnd, "and"},
        {Opcode::kOr, "or"},
        {Opcode::kXor, "xor"},
        {Opcode::kSll, "sll"},
        {Opcode::kSrl, "srl"},
        {Opcode::kSra, "sra"},
        {Opcode::kSlt, "slt"},
        {Opcode::kSltu, "sltu"},
        {Opcode::kSeq, "seq"},
        {Opcode::kSne, "sne"},
        {Opcode::kAddi, "addi"},
        {Opcode::kMuli, "muli"},
        {Opcode::kAndi, "andi"},
        {Opcode::kOri, "ori"},
        {Opcode::kXori, "xori"},
        {Opcode::kSlli, "slli"},
        {Opcode::kSrli, "srli"},
        {Opcode::kSrai, "srai"},
        {Opcode::kSlti, "slti"},
        {Opcode::kSltiu, "sltiu"},
        {Opcode::kSeqi, "seqi"},
        {Opcode::kSnei, "snei"},
        {Opcode::kMovi, "movi"},
        {Opcode::kMovhi, "movhi"},
        {Opcode::kLdb, "ldb"},
        {Opcode::kLdbu, "ldbu"},
        {Opcode::kLdh, "ldh"},
        {Opcode::kLdhu, "ldhu"},
        {Opcode::kLdw, "ldw"},
        {Opcode::kLdwu, "ldwu"},
        {Opcode::kLdd, "ldd"},
        {Opcode::kStb, "stb"},
        {Opcode::kSth, "sth"},
        {Opcode::kStw, "stw"},
        {Opcode::kStd, "std"},
        {Opcode::kBeq, "beq"},
        {Opcode::kBne, "bne"},
        {Opcode::kBlt, "blt"},
        {Opcode::kBge, "bge"},
        {Opcode::kBltu, "bltu"},
        {Opcode::kBgeu, "bgeu"},
        {Opcode::kJal, "jal"},
        {Opcode::kJalr, "jalr"},
        {Opcode::kLea, "lea"},
        {Opcode::kLdgFix, "ldg.fix"},
        {Opcode::kLdgPre, "ldg.pre"},
    }};

}  // namespace

void Encode(const Instr& instr, std::uint8_t* out) noexcept {
  out[0] = static_cast<std::uint8_t>(instr.op);
  out[1] = instr.rd;
  out[2] = instr.rs1;
  out[3] = instr.rs2;
  std::memcpy(out + 4, &instr.imm, sizeof(instr.imm));
}

std::optional<Instr> Decode(const std::uint8_t* in) noexcept {
  if (in[0] >= static_cast<std::uint8_t>(Opcode::kOpcodeCount)) {
    return std::nullopt;
  }
  Instr instr;
  instr.op = static_cast<Opcode>(in[0]);
  instr.rd = in[1];
  instr.rs1 = in[2];
  instr.rs2 = in[3];
  std::memcpy(&instr.imm, in + 4, sizeof(instr.imm));
  if (instr.rd >= kNumRegs || instr.rs1 >= kNumRegs || instr.rs2 >= kNumRegs) {
    return std::nullopt;
  }
  return instr;
}

std::string_view OpcodeName(Opcode op) noexcept {
  const auto idx = static_cast<std::size_t>(op);
  if (idx >= kOpTable.size()) return "<bad>";
  return kOpTable[idx].name;
}

std::optional<Opcode> OpcodeFromName(std::string_view name) noexcept {
  for (const auto& info : kOpTable) {
    if (info.name == name) return info.op;
  }
  return std::nullopt;
}

std::string RegName(std::uint8_t reg) {
  if (reg == kZr) return "zr";
  if (reg >= kA0 && reg <= 8) return StrFormat("a%d", reg - kA0);
  if (reg >= kT0 && reg <= 15) return StrFormat("t%d", reg - kT0);
  if (reg >= kS0 && reg <= 23) return StrFormat("s%d", reg - kS0);
  if (reg == kFp) return "fp";
  if (reg == kLr) return "lr";
  if (reg == kSp) return "sp";
  return StrFormat("r%d", reg);
}

std::optional<std::uint8_t> RegFromName(std::string_view name) noexcept {
  if (name == "zr") return kZr;
  if (name == "fp") return kFp;
  if (name == "lr") return kLr;
  if (name == "sp") return kSp;
  if (name.size() >= 2) {
    const char kind = name[0];
    unsigned n = 0;
    bool numeric = true;
    for (std::size_t i = 1; i < name.size(); ++i) {
      if (name[i] < '0' || name[i] > '9') {
        numeric = false;
        break;
      }
      n = n * 10 + static_cast<unsigned>(name[i] - '0');
    }
    if (numeric) {
      switch (kind) {
        case 'a': return n <= 7 ? std::optional<std::uint8_t>(kA0 + n)
                                : std::nullopt;
        case 't': return n <= 6 ? std::optional<std::uint8_t>(kT0 + n)
                                : std::nullopt;
        case 's': return n <= 7 ? std::optional<std::uint8_t>(kS0 + n)
                                : std::nullopt;
        case 'r': return n < kNumRegs
                             ? std::optional<std::uint8_t>(
                                   static_cast<std::uint8_t>(n))
                             : std::nullopt;
        default: break;
      }
    }
  }
  return std::nullopt;
}

bool IsBranch(Opcode op) noexcept {
  switch (op) {
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kBltu:
    case Opcode::kBgeu:
      return true;
    default:
      return false;
  }
}

bool IsLoad(Opcode op) noexcept {
  switch (op) {
    case Opcode::kLdb:
    case Opcode::kLdbu:
    case Opcode::kLdh:
    case Opcode::kLdhu:
    case Opcode::kLdw:
    case Opcode::kLdwu:
    case Opcode::kLdd:
      return true;
    default:
      return false;
  }
}

bool IsStore(Opcode op) noexcept {
  switch (op) {
    case Opcode::kStb:
    case Opcode::kSth:
    case Opcode::kStw:
    case Opcode::kStd:
      return true;
    default:
      return false;
  }
}

bool IsMemAccess(Opcode op) noexcept { return IsLoad(op) || IsStore(op); }

bool WritesRd(Opcode op) noexcept {
  if (IsStore(op) || IsBranch(op)) return false;
  switch (op) {
    case Opcode::kHalt:
    case Opcode::kNop:
      return false;
    default:
      return true;
  }
}

}  // namespace twochains::vm
