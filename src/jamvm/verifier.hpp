// Static verifier for jam code images.
//
// Run by the receiver runtime before executing injected code (one of the §V
// hardening layers): all instruction slots must decode, control flow must
// stay inside the image, and GOT accesses must stay inside the declared GOT
// — in both addressing modes (ldg.pre slot indices against `got_slots`, and
// the preamble slot the GOT pointer itself is loaded from must be *the*
// preamble slot; ldg.fix targets against the fixed in-image GOT window, or
// rejected outright for rewritten images that have none). The verifier is
// conservative — it rejects code the interpreter might actually survive —
// because the receiver cannot trust the sender.
//
// What the verifier cannot prove statically: the target of a register-based
// `jalr` (an indirect call through a GOT value, a function pointer, or lr).
// Rejecting all of them would reject every call and every return, so the
// policy is split: a `jalr` whose base is the hardwired zero register has a
// fully static — and never legitimate — absolute target and is rejected
// here; every other indirect jump is bounded at run time by the
// interpreter's control-flow confinement (vm::ExecConfig::exec_windows,
// armed by core::SecurityPolicy::confine_control_flow). The fuzz suite
// (tests/fuzz_test.cpp) locks that division of labor in with hostile
// trampoline programs.
#pragma once

#include <cstdint>
#include <span>

#include "common/status.hpp"

namespace twochains::vm {

/// Where rewritten jams keep the GOT pointer: one 8-byte slot 16 bytes
/// before the code start (mirrors jelf::kPreambleSlotOffset, restated here
/// so the verifier does not depend on jelf).
inline constexpr std::int64_t kDefaultPreSlotOffset = -16;

/// Sentinel for VerifyLimits::fixed_got_offset: the image has no fixed
/// in-image GOT, so every `ldg.fix` is rejected (rewritten jam images must
/// only use `ldg.pre`).
inline constexpr std::int64_t kNoFixedGot = -1;

struct VerifyLimits {
  /// Number of 8-byte GOT slots the executing context provides.
  std::uint32_t got_slots = 0;
  /// Bytes of read-only data appended after the code (lea targets may point
  /// into it).
  std::uint64_t rodata_bytes = 0;
  /// The only code-relative address an `ldg.pre` may load its GOT pointer
  /// from (site + imm must equal this). Anything else is a hostile
  /// indirection: it would read an attacker-chosen 8 bytes and dereference
  /// them as the GOT.
  std::int64_t pre_slot_offset = kDefaultPreSlotOffset;
  /// Code-relative byte offset of a fixed in-image GOT (pre-rewrite library
  /// images): every `ldg.fix` must target an 8-aligned slot inside
  /// [fixed_got_offset, fixed_got_offset + 8*got_slots). Negative
  /// (kNoFixedGot) means the image has no fixed GOT and `ldg.fix` is
  /// rejected.
  std::int64_t fixed_got_offset = kNoFixedGot;
};

/// Verifies @p code (a contiguous .text image). Returns OK or the first
/// violation found.
Status VerifyCode(std::span<const std::uint8_t> code,
                  const VerifyLimits& limits);

}  // namespace twochains::vm
