// Static verifier for jam code images.
//
// Run by the receiver runtime before executing injected code (one of the §V
// hardening layers): all instruction slots must decode, control flow must
// stay inside the image, and GOT indices must stay inside the declared GOT.
// The verifier is conservative — it rejects code the interpreter might
// actually survive — because the receiver cannot trust the sender.
#pragma once

#include <cstdint>
#include <span>

#include "common/status.hpp"

namespace twochains::vm {

struct VerifyLimits {
  /// Number of 8-byte GOT slots the executing context provides.
  std::uint32_t got_slots = 0;
  /// Bytes of read-only data appended after the code (lea targets may point
  /// into it).
  std::uint64_t rodata_bytes = 0;
};

/// Verifies @p code (a contiguous .text image). Returns OK or the first
/// violation found.
Status VerifyCode(std::span<const std::uint8_t> code,
                  const VerifyLimits& limits);

}  // namespace twochains::vm
