#include "jamvm/disassembler.hpp"

#include <cstring>

#include "common/strfmt.hpp"

namespace twochains::vm {

std::string FormatInstr(const Instr& i) {
  const std::string op(OpcodeName(i.op));
  switch (i.op) {
    case Opcode::kHalt:
    case Opcode::kNop:
      return op;
    case Opcode::kAdd: case Opcode::kSub: case Opcode::kMul:
    case Opcode::kDiv: case Opcode::kDivu: case Opcode::kRem:
    case Opcode::kRemu: case Opcode::kAnd: case Opcode::kOr:
    case Opcode::kXor: case Opcode::kSll: case Opcode::kSrl:
    case Opcode::kSra: case Opcode::kSlt: case Opcode::kSltu:
    case Opcode::kSeq: case Opcode::kSne:
      return StrFormat("%s %s, %s, %s", op.c_str(), RegName(i.rd).c_str(),
                       RegName(i.rs1).c_str(), RegName(i.rs2).c_str());
    case Opcode::kAddi: case Opcode::kMuli: case Opcode::kAndi:
    case Opcode::kOri: case Opcode::kXori: case Opcode::kSlli:
    case Opcode::kSrli: case Opcode::kSrai: case Opcode::kSlti:
    case Opcode::kSltiu: case Opcode::kSeqi: case Opcode::kSnei:
      return StrFormat("%s %s, %s, %d", op.c_str(), RegName(i.rd).c_str(),
                       RegName(i.rs1).c_str(), i.imm);
    case Opcode::kMovi: case Opcode::kMovhi:
      return StrFormat("%s %s, %d", op.c_str(), RegName(i.rd).c_str(), i.imm);
    case Opcode::kLdb: case Opcode::kLdbu: case Opcode::kLdh:
    case Opcode::kLdhu: case Opcode::kLdw: case Opcode::kLdwu:
    case Opcode::kLdd:
      return StrFormat("%s %s, [%s%+d]", op.c_str(), RegName(i.rd).c_str(),
                       RegName(i.rs1).c_str(), i.imm);
    case Opcode::kStb: case Opcode::kSth: case Opcode::kStw:
    case Opcode::kStd:
      return StrFormat("%s %s, [%s%+d]", op.c_str(), RegName(i.rs2).c_str(),
                       RegName(i.rs1).c_str(), i.imm);
    case Opcode::kBeq: case Opcode::kBne: case Opcode::kBlt:
    case Opcode::kBge: case Opcode::kBltu: case Opcode::kBgeu:
      return StrFormat("%s %s, %s, %d", op.c_str(), RegName(i.rs1).c_str(),
                       RegName(i.rs2).c_str(), i.imm);
    case Opcode::kJal:
      return StrFormat("%s %s, %d", op.c_str(), RegName(i.rd).c_str(), i.imm);
    case Opcode::kJalr:
      return StrFormat("%s %s, %s, %d", op.c_str(), RegName(i.rd).c_str(),
                       RegName(i.rs1).c_str(), i.imm);
    case Opcode::kLea:
      return StrFormat("%s %s, %d", op.c_str(), RegName(i.rd).c_str(), i.imm);
    case Opcode::kLdgFix:
      return StrFormat("ldg.fix %s, %d", RegName(i.rd).c_str(), i.imm);
    case Opcode::kLdgPre:
      return StrFormat("ldg.pre %s, %u, %d", RegName(i.rd).c_str(),
                       static_cast<unsigned>(i.rs2), i.imm);
    default:
      return StrFormat("<op%u>", static_cast<unsigned>(i.op));
  }
}

StatusOr<std::string> Disassemble(std::span<const std::uint8_t> code) {
  if (code.size() % kInstrBytes != 0) {
    return InvalidArgument("code size not a multiple of 8");
  }
  std::string out;
  for (std::size_t off = 0; off < code.size(); off += kInstrBytes) {
    const auto instr = Decode(code.data() + off);
    if (instr) {
      out += StrFormat("%6zu: %s\n", off, FormatInstr(*instr).c_str());
    } else {
      std::uint64_t raw;
      std::memcpy(&raw, code.data() + off, 8);
      out += StrFormat("%6zu: .quad 0x%016llx\n", off,
                       static_cast<unsigned long long>(raw));
    }
  }
  return out;
}

}  // namespace twochains::vm
