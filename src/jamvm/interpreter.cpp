#include "jamvm/interpreter.hpp"

#include <cstring>

#include "common/strfmt.hpp"

namespace twochains::vm {

// ----------------------------------------------------------- NativeFrame

StatusOr<std::uint64_t> NativeFrame::Load(mem::VirtAddr addr, unsigned bytes) {
  TC_RETURN_IF_ERROR(interp_.CheckDataWindows(addr, bytes));
  interp_.ChargeAccess(addr, bytes, cache::AccessKind::kLoad);
  switch (bytes) {
    case 1: {
      TC_ASSIGN_OR_RETURN(const auto v, interp_.memory_.LoadU8(addr));
      return static_cast<std::uint64_t>(v);
    }
    case 2: {
      TC_ASSIGN_OR_RETURN(const auto v, interp_.memory_.LoadU16(addr));
      return static_cast<std::uint64_t>(v);
    }
    case 4: {
      TC_ASSIGN_OR_RETURN(const auto v, interp_.memory_.LoadU32(addr));
      return static_cast<std::uint64_t>(v);
    }
    case 8: return interp_.memory_.LoadU64(addr);
    default: return InvalidArgument("native load width");
  }
}

Status NativeFrame::Store(mem::VirtAddr addr, std::uint64_t value,
                          unsigned bytes) {
  TC_RETURN_IF_ERROR(interp_.CheckDataWindows(addr, bytes));
  interp_.ChargeAccess(addr, bytes, cache::AccessKind::kStore);
  switch (bytes) {
    case 1: return interp_.memory_.StoreU8(addr, static_cast<std::uint8_t>(value));
    case 2: return interp_.memory_.StoreU16(addr, static_cast<std::uint16_t>(value));
    case 4: return interp_.memory_.StoreU32(addr, static_cast<std::uint32_t>(value));
    case 8: return interp_.memory_.StoreU64(addr, value);
    default: return InvalidArgument("native store width");
  }
}

Status NativeFrame::CopyBytes(mem::VirtAddr dst, mem::VirtAddr src,
                              std::uint64_t n) {
  if (n == 0) return Status::Ok();
  // The jam supplied both addresses; without these checks a confined jam
  // could still read or clobber anything by deputizing the native.
  TC_RETURN_IF_ERROR(interp_.CheckDataWindows(src, n));
  TC_RETURN_IF_ERROR(interp_.CheckDataWindows(dst, n));
  interp_.ChargeAccess(src, n, cache::AccessKind::kLoad);
  interp_.ChargeAccess(dst, n, cache::AccessKind::kStore);
  TC_ASSIGN_OR_RETURN(const auto from, interp_.memory_.RawSpan(src, n));
  TC_RETURN_IF_ERROR(interp_.memory_.CheckPerms(src, n, mem::Perm::kRead));
  TC_RETURN_IF_ERROR(interp_.memory_.CheckPerms(dst, n, mem::Perm::kWrite));
  std::vector<std::uint8_t> tmp(from.begin(), from.end());
  return interp_.memory_.DmaWrite(dst, tmp);  // perms checked above
}

StatusOr<std::string> NativeFrame::LoadCString(mem::VirtAddr addr,
                                               std::uint64_t max) {
  std::string out;
  for (std::uint64_t i = 0; i < max; ++i) {
    TC_RETURN_IF_ERROR(interp_.CheckDataWindows(addr + i, 1));
    TC_ASSIGN_OR_RETURN(const auto c, interp_.memory_.LoadU8(addr + i));
    if (c == 0) {
      interp_.ChargeAccess(addr, i + 1, cache::AccessKind::kLoad);
      return out;
    }
    out += static_cast<char>(c);
  }
  return OutOfRange("unterminated string");
}

void NativeFrame::ChargeCycles(Cycles cycles) { interp_.cycles_ += cycles; }
mem::HostMemory& NativeFrame::memory() { return interp_.memory_; }
cache::CacheHierarchy& NativeFrame::caches() { return interp_.caches_; }
std::uint32_t NativeFrame::core() const { return interp_.core_; }

// ----------------------------------------------------------- NativeTable

StatusOr<std::uint32_t> NativeTable::Register(std::string name, NativeFn fn) {
  if (!fn) return InvalidArgument("null native function");
  for (const auto& e : entries_) {
    if (e.name == name) {
      return AlreadyExists(StrFormat("native '%s'", name.c_str()));
    }
  }
  entries_.push_back(Entry{std::move(name), std::move(fn)});
  return static_cast<std::uint32_t>(entries_.size() - 1);
}

StatusOr<std::uint32_t> NativeTable::IndexOf(std::string_view name) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].name == name) return static_cast<std::uint32_t>(i);
  }
  return NotFound(StrFormat("native '%.*s'", static_cast<int>(name.size()),
                            name.data()));
}

const NativeFn* NativeTable::Get(std::uint32_t index) const {
  if (index >= entries_.size()) return nullptr;
  return &entries_[index].fn;
}

std::string_view NativeTable::NameOf(std::uint32_t index) const {
  if (index >= entries_.size()) return "<bad-native>";
  return entries_[index].name;
}

// ----------------------------------------------------------- Interpreter

Interpreter::Interpreter(mem::HostMemory& memory,
                         cache::CacheHierarchy& caches, std::uint32_t core,
                         const NativeTable* natives, ExecConfig config)
    : memory_(memory), caches_(caches), core_(core), natives_(natives),
      config_(std::move(config)) {}

Status Interpreter::CheckDataWindows(mem::VirtAddr addr,
                                     std::uint64_t bytes) {
  if (config_.data_windows.empty() ||
      InWindows(config_.data_windows, addr, bytes)) {
    return Status::Ok();
  }
  return PermissionDenied(
      StrFormat("data access at 0x%llx (%llu B) escapes the sandbox",
                static_cast<unsigned long long>(addr),
                static_cast<unsigned long long>(bytes)));
}

namespace {

std::int64_t S(std::uint64_t v) { return static_cast<std::int64_t>(v); }
std::uint64_t U(std::int64_t v) { return static_cast<std::uint64_t>(v); }

}  // namespace

ExecResult Interpreter::Execute(mem::VirtAddr entry,
                                std::span<const std::uint64_t> args,
                                mem::VirtAddr stack_top) {
  ExecResult result;
  cycles_ = 0;

  std::uint64_t regs[kNumRegs] = {};
  for (std::size_t i = 0; i < args.size() && i < 8; ++i) {
    regs[kA0 + i] = args[i];
  }
  regs[kSp] = stack_top & ~0xFull;
  regs[kLr] = kReturnSentinel;

  mem::VirtAddr pc = entry;
  std::uint64_t last_ifetch_line = ~0ull;
  mem::VirtAddr checked_exec_page = ~0ull;
  const std::uint64_t line_bytes = caches_.config().line_bytes;

  auto fail = [&](Status status) {
    result.status = Status(status.code(),
                           StrFormat("%s (pc=0x%llx, #%llu)",
                                     status.message().c_str(),
                                     static_cast<unsigned long long>(pc),
                                     static_cast<unsigned long long>(
                                         result.instructions)));
    result.cycles = cycles_;
    result.return_value = regs[kA0];
    return result;
  };

  while (true) {
    if (pc == kReturnSentinel) {
      result.status = Status::Ok();
      break;
    }
    if (IsNativeHandle(pc)) {
      return fail(PermissionDenied("jumped into a native handle"));
    }
    if (result.instructions >= config_.max_instructions) {
      return fail(ResourceExhausted("instruction budget exceeded"));
    }
    // Control-flow confinement: checked on *every* fetch, not just taken
    // branches — straight-line execution can run off the end of the image
    // into adjacent bytes without a single jump.
    if (!config_.exec_windows.empty() &&
        !InWindows(config_.exec_windows, pc, kInstrBytes)) {
      return fail(
          PermissionDenied("instruction fetch escapes the confined image"));
    }

    // Execute-permission check, once per page.
    if (config_.enforce_exec_permission) {
      const mem::VirtAddr page = pc & ~(mem::kPageSize - 1);
      if (page != checked_exec_page) {
        Status perm = memory_.CheckPerms(pc, kInstrBytes, mem::Perm::kExec);
        if (!perm.ok()) return fail(perm);
        checked_exec_page = page;
      }
    }

    // Instruction fetch: charge the cache when entering a new line.
    const std::uint64_t ifetch_line = pc / line_bytes;
    if (ifetch_line != last_ifetch_line) {
      ChargeAccess(pc, kInstrBytes, cache::AccessKind::kInstFetch);
      last_ifetch_line = ifetch_line;
    }
    const auto code = memory_.RawSpan(pc, kInstrBytes);
    if (!code.ok()) return fail(code.status());
    const auto decoded = Decode(code->data());
    if (!decoded) return fail(DataLoss("undecodable instruction"));
    const Instr in = *decoded;

    ++result.instructions;
    cycles_ += config_.base_cycles_per_instr;
    if (!config_.exec_windows.empty() &&
        (IsBranch(in.op) || in.op == Opcode::kJal ||
         in.op == Opcode::kJalr)) {
      cycles_ += config_.confine_branch_cycles;
    }

    mem::VirtAddr next_pc = pc + kInstrBytes;
    std::uint64_t rd_val = 0;
    bool write_rd = WritesRd(in.op);
    const std::uint64_t a = regs[in.rs1];
    const std::uint64_t b = regs[in.rs2];
    const auto imm64 = static_cast<std::int64_t>(in.imm);

    switch (in.op) {
      case Opcode::kHalt:
        result.status = Status::Ok();
        result.cycles = cycles_;
        result.return_value = regs[kA0];
        return result;
      case Opcode::kNop:
        break;

      case Opcode::kAdd: rd_val = a + b; break;
      case Opcode::kSub: rd_val = a - b; break;
      case Opcode::kMul: rd_val = a * b; break;
      case Opcode::kDiv:
        if (b == 0) return fail(InvalidArgument("division by zero"));
        if (S(a) == INT64_MIN && S(b) == -1) rd_val = a;  // wraps
        else rd_val = U(S(a) / S(b));
        break;
      case Opcode::kDivu:
        if (b == 0) return fail(InvalidArgument("division by zero"));
        rd_val = a / b;
        break;
      case Opcode::kRem:
        if (b == 0) return fail(InvalidArgument("division by zero"));
        if (S(a) == INT64_MIN && S(b) == -1) rd_val = 0;
        else rd_val = U(S(a) % S(b));
        break;
      case Opcode::kRemu:
        if (b == 0) return fail(InvalidArgument("division by zero"));
        rd_val = a % b;
        break;
      case Opcode::kAnd: rd_val = a & b; break;
      case Opcode::kOr: rd_val = a | b; break;
      case Opcode::kXor: rd_val = a ^ b; break;
      case Opcode::kSll: rd_val = a << (b & 63); break;
      case Opcode::kSrl: rd_val = a >> (b & 63); break;
      case Opcode::kSra: rd_val = U(S(a) >> (b & 63)); break;
      case Opcode::kSlt: rd_val = S(a) < S(b) ? 1 : 0; break;
      case Opcode::kSltu: rd_val = a < b ? 1 : 0; break;
      case Opcode::kSeq: rd_val = a == b ? 1 : 0; break;
      case Opcode::kSne: rd_val = a != b ? 1 : 0; break;

      case Opcode::kAddi: rd_val = a + U(imm64); break;
      case Opcode::kMuli: rd_val = a * U(imm64); break;
      case Opcode::kAndi: rd_val = a & U(imm64); break;
      case Opcode::kOri: rd_val = a | U(imm64); break;
      case Opcode::kXori: rd_val = a ^ U(imm64); break;
      case Opcode::kSlli: rd_val = a << (in.imm & 63); break;
      case Opcode::kSrli: rd_val = a >> (in.imm & 63); break;
      case Opcode::kSrai: rd_val = U(S(a) >> (in.imm & 63)); break;
      case Opcode::kSlti: rd_val = S(a) < imm64 ? 1 : 0; break;
      case Opcode::kSltiu: rd_val = a < U(imm64) ? 1 : 0; break;
      case Opcode::kSeqi: rd_val = a == U(imm64) ? 1 : 0; break;
      case Opcode::kSnei: rd_val = a != U(imm64) ? 1 : 0; break;

      case Opcode::kMovi: rd_val = U(imm64); break;
      case Opcode::kMovhi:
        rd_val = (regs[in.rd] & 0xFFFFFFFFull) |
                 (static_cast<std::uint64_t>(
                      static_cast<std::uint32_t>(in.imm))
                  << 32);
        break;

      case Opcode::kLdb: case Opcode::kLdbu: case Opcode::kLdh:
      case Opcode::kLdhu: case Opcode::kLdw: case Opcode::kLdwu:
      case Opcode::kLdd: {
        const mem::VirtAddr addr = a + U(imm64);
        unsigned bytes = 8;
        if (in.op == Opcode::kLdb || in.op == Opcode::kLdbu) bytes = 1;
        else if (in.op == Opcode::kLdh || in.op == Opcode::kLdhu) bytes = 2;
        else if (in.op == Opcode::kLdw || in.op == Opcode::kLdwu) bytes = 4;
        if (Status s = CheckDataWindows(addr, bytes); !s.ok()) {
          return fail(std::move(s));
        }
        ChargeAccess(addr, bytes, cache::AccessKind::kLoad);
        std::uint64_t v = 0;
        Status st;
        switch (bytes) {
          case 1: {
            auto r = memory_.LoadU8(addr);
            st = r.status();
            if (r.ok()) {
              v = in.op == Opcode::kLdb
                      ? U(static_cast<std::int64_t>(
                            static_cast<std::int8_t>(*r)))
                      : *r;
            }
            break;
          }
          case 2: {
            auto r = memory_.LoadU16(addr);
            st = r.status();
            if (r.ok()) {
              v = in.op == Opcode::kLdh
                      ? U(static_cast<std::int64_t>(
                            static_cast<std::int16_t>(*r)))
                      : *r;
            }
            break;
          }
          case 4: {
            auto r = memory_.LoadU32(addr);
            st = r.status();
            if (r.ok()) {
              v = in.op == Opcode::kLdw
                      ? U(static_cast<std::int64_t>(
                            static_cast<std::int32_t>(*r)))
                      : *r;
            }
            break;
          }
          default: {
            auto r = memory_.LoadU64(addr);
            st = r.status();
            if (r.ok()) v = *r;
            break;
          }
        }
        if (!st.ok()) return fail(st);
        rd_val = v;
        break;
      }

      case Opcode::kStb: case Opcode::kSth: case Opcode::kStw:
      case Opcode::kStd: {
        const mem::VirtAddr addr = a + U(imm64);
        unsigned bytes = 8;
        if (in.op == Opcode::kStb) bytes = 1;
        else if (in.op == Opcode::kSth) bytes = 2;
        else if (in.op == Opcode::kStw) bytes = 4;
        if (Status s = CheckDataWindows(addr, bytes); !s.ok()) {
          return fail(std::move(s));
        }
        ChargeAccess(addr, bytes, cache::AccessKind::kStore);
        Status st;
        switch (bytes) {
          case 1: st = memory_.StoreU8(addr, static_cast<std::uint8_t>(b)); break;
          case 2: st = memory_.StoreU16(addr, static_cast<std::uint16_t>(b)); break;
          case 4: st = memory_.StoreU32(addr, static_cast<std::uint32_t>(b)); break;
          default: st = memory_.StoreU64(addr, b); break;
        }
        if (!st.ok()) return fail(st);
        break;
      }

      case Opcode::kBeq: if (a == b) next_pc = pc + U(imm64); break;
      case Opcode::kBne: if (a != b) next_pc = pc + U(imm64); break;
      case Opcode::kBlt: if (S(a) < S(b)) next_pc = pc + U(imm64); break;
      case Opcode::kBge: if (S(a) >= S(b)) next_pc = pc + U(imm64); break;
      case Opcode::kBltu: if (a < b) next_pc = pc + U(imm64); break;
      case Opcode::kBgeu: if (a >= b) next_pc = pc + U(imm64); break;

      case Opcode::kJal:
        rd_val = pc + kInstrBytes;
        next_pc = pc + U(imm64);
        break;

      case Opcode::kJalr: {
        rd_val = pc + kInstrBytes;
        const std::uint64_t target = a + U(imm64);
        if (IsNativeHandle(target)) {
          // Native bridge: run the function, then return to the link
          // address (rd for a normal call; the current lr for a tail call).
          if (natives_ == nullptr) {
            return fail(FailedPrecondition("no native table bound"));
          }
          const NativeFn* fn = natives_->Get(NativeIndexOf(target));
          if (fn == nullptr) {
            return fail(NotFound(StrFormat("native index %u",
                                           NativeIndexOf(target))));
          }
          if (write_rd && in.rd != kZr) regs[in.rd] = rd_val;
          write_rd = false;
          NativeFrame frame(*this, regs);
          Status st = (*fn)(frame);
          if (!st.ok()) return fail(st);
          next_pc = in.rd != kZr ? rd_val : regs[kLr];
          break;
        }
        next_pc = target;
        break;
      }

      case Opcode::kLea:
        rd_val = pc + U(imm64);
        break;

      case Opcode::kLdgFix: {
        const mem::VirtAddr slot = pc + U(imm64);
        if (Status s = CheckDataWindows(slot, 8); !s.ok()) {
          return fail(std::move(s));
        }
        ChargeAccess(slot, 8, cache::AccessKind::kLoad);
        auto v = memory_.LoadU64(slot);
        if (!v.ok()) return fail(v.status());
        rd_val = *v;
        break;
      }

      case Opcode::kLdgPre: {
        // The paper's rewritten form: GOT pointer at a PC-relative preamble
        // slot, then an index into the patched table.
        const mem::VirtAddr pre = pc + U(imm64);
        if (Status s = CheckDataWindows(pre, 8); !s.ok()) {
          return fail(std::move(s));
        }
        ChargeAccess(pre, 8, cache::AccessKind::kLoad);
        auto gotp = memory_.LoadU64(pre);
        if (!gotp.ok()) return fail(gotp.status());
        const mem::VirtAddr slot = *gotp + 8ull * in.rs2;
        if (Status s = CheckDataWindows(slot, 8); !s.ok()) {
          return fail(std::move(s));
        }
        ChargeAccess(slot, 8, cache::AccessKind::kLoad);
        auto v = memory_.LoadU64(slot);
        if (!v.ok()) return fail(v.status());
        rd_val = *v;
        break;
      }

      default:
        return fail(Internal("unhandled opcode"));
    }

    if (write_rd && in.rd != kZr) regs[in.rd] = rd_val;
    regs[kZr] = 0;
    pc = next_pc;
  }

  result.cycles = cycles_;
  result.return_value = regs[kA0];
  return result;
}

// ----------------------------------------------------------- natives

Status RegisterStandardNatives(NativeTable& table,
                               const StandardNativesOptions& options) {
  std::string* sink = options.print_sink;

  TC_RETURN_IF_ERROR(table
                         .Register("tc_memcpy",
                                   [](NativeFrame& f) -> Status {
                                     const auto dst = f.Arg(0);
                                     const auto src = f.Arg(1);
                                     const auto n = f.Arg(2);
                                     TC_RETURN_IF_ERROR(
                                         f.CopyBytes(dst, src, n));
                                     f.SetResult(dst);
                                     return Status::Ok();
                                   })
                         .status());
  TC_RETURN_IF_ERROR(
      table
          .Register("tc_memset",
                    [](NativeFrame& f) -> Status {
                      const auto dst = f.Arg(0);
                      const auto byte = f.Arg(1) & 0xFF;
                      const auto n = f.Arg(2);
                      for (std::uint64_t i = 0; i < n; ++i) {
                        TC_RETURN_IF_ERROR(f.Store(dst + i, byte, 1));
                      }
                      f.SetResult(dst);
                      return Status::Ok();
                    })
          .status());
  TC_RETURN_IF_ERROR(
      table
          .Register("tc_print_str",
                    [sink](NativeFrame& f) -> Status {
                      TC_ASSIGN_OR_RETURN(const std::string s,
                                          f.LoadCString(f.Arg(0)));
                      if (sink != nullptr) *sink += s;
                      f.SetResult(0);
                      return Status::Ok();
                    })
          .status());
  TC_RETURN_IF_ERROR(
      table
          .Register("tc_print_u64",
                    [sink](NativeFrame& f) -> Status {
                      if (sink != nullptr) {
                        *sink += StrFormat(
                            "%llu",
                            static_cast<unsigned long long>(f.Arg(0)));
                      }
                      f.SetResult(0);
                      return Status::Ok();
                    })
          .status());
  TC_RETURN_IF_ERROR(
      table
          .Register("tc_hash64",
                    [](NativeFrame& f) -> Status {
                      std::uint64_t z = f.Arg(0) + 0x9e3779b97f4a7c15ull;
                      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
                      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
                      f.SetResult(z ^ (z >> 31));
                      f.ChargeCycles(6);
                      return Status::Ok();
                    })
          .status());
  return Status::Ok();
}

}  // namespace twochains::vm
