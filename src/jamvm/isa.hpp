// The jam virtual ISA.
//
// Jams are the mobile code segments of Two-Chains. On the paper's testbed
// they are native AArch64 functions compiled -fPIC -fno-plt and statically
// rewritten with Binutils; here they are functions in a small, fixed-width,
// position-independent register ISA executed by an interpreter whose every
// instruction fetch and memory access is charged to the host's cache model.
// The properties the experiments depend on are preserved exactly:
//
//   * fixed 8-byte encodings -> code footprint in bytes (and therefore in
//     cache lines fetched on the receiver) is well defined;
//   * all control flow and local data addressing is PC-relative -> code is
//     position independent and can execute from any mailbox address;
//   * every external reference goes through a GOT access instruction with
//     two addressing modes, mirroring the paper's §III-B binary rewrite:
//       - LDGFIX rd, imm       rd = M[pc + imm]
//         "fixed" mode: the GOT lives at a link-time-fixed PC-relative spot
//         inside the library image (classic -fPIC -fno-plt addressing);
//       - LDGPRE rd, idx, imm  rd = M[M[pc + imm] + 8*idx]
//         "preamble" mode: the instruction loads a GOT *pointer* from a
//         PC-relative preamble slot, then indexes it. The rewriter converts
//         fixed-mode accesses into preamble-mode so injected code can link
//         against a patched GOT travelling in (or installed next to) the
//         message, wherever the frame happens to land.
//
// Register convention (64-bit, 32 registers):
//   r0        zr   hardwired zero (writes discarded)
//   r1..r8    a0-a7 arguments / a0 is the return value
//   r9..r15   t0-t6 caller-saved temporaries
//   r16..r23  s0-s7 callee-saved
//   r24..r28  (reserved)
//   r29       fp   frame pointer (conventional)
//   r30       lr   link register
//   r31       sp   stack pointer
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace twochains::vm {

inline constexpr std::size_t kInstrBytes = 8;
inline constexpr unsigned kNumRegs = 32;

// Conventional register numbers.
inline constexpr std::uint8_t kZr = 0;
inline constexpr std::uint8_t kA0 = 1;  // ... a7 = 8
inline constexpr std::uint8_t kT0 = 9;  // ... t6 = 15
inline constexpr std::uint8_t kS0 = 16; // ... s7 = 23
inline constexpr std::uint8_t kFp = 29;
inline constexpr std::uint8_t kLr = 30;
inline constexpr std::uint8_t kSp = 31;

enum class Opcode : std::uint8_t {
  kHalt = 0,
  kNop,
  // Register ALU: rd = rs1 OP rs2 (64-bit).
  kAdd, kSub, kMul, kDiv, kDivu, kRem, kRemu,
  kAnd, kOr, kXor, kSll, kSrl, kSra,
  kSlt, kSltu, kSeq, kSne,
  // Immediate ALU: rd = rs1 OP signext(imm).
  kAddi, kMuli, kAndi, kOri, kXori, kSlli, kSrli, kSrai,
  kSlti, kSltiu, kSeqi, kSnei,
  // Constants: kMovi rd = signext(imm); kMovhi rd = (rd & 0xFFFFFFFF) |
  // (zeroext(imm) << 32).
  kMovi, kMovhi,
  // Loads: rd = M[rs1 + imm] (B/H/W signed, BU/HU/WU zero-extended, D=64).
  kLdb, kLdbu, kLdh, kLdhu, kLdw, kLdwu, kLdd,
  // Stores: M[rs1 + imm] = rs2 (low B/H/W bits, D=64).
  kStb, kSth, kStw, kStd,
  // Branches: if (rs1 CMP rs2) pc += imm (byte offset from this instr).
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
  // kJal: rd = pc + 8; pc += imm.   kJalr: rd = pc + 8; pc = rs1 + imm.
  kJal, kJalr,
  // kLea: rd = pc + imm (position-independent address formation).
  kLea,
  // GOT access, the Two-Chains remote-linking hinge (see file header).
  kLdgFix, kLdgPre,
  kOpcodeCount,
};

/// Decoded instruction. Encoded form is [op:u8][rd:u8][rs1:u8][rs2:u8]
/// [imm:i32 little-endian].
struct Instr {
  Opcode op = Opcode::kHalt;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::int32_t imm = 0;

  friend bool operator==(const Instr&, const Instr&) = default;
};

/// Encodes into 8 bytes at @p out (caller guarantees space).
void Encode(const Instr& instr, std::uint8_t* out) noexcept;

/// Decodes 8 bytes. Returns nullopt on an invalid opcode byte.
std::optional<Instr> Decode(const std::uint8_t* in) noexcept;

/// Mnemonic for an opcode ("add", "ldg.fix", ...).
std::string_view OpcodeName(Opcode op) noexcept;

/// Parses a mnemonic; nullopt if unknown.
std::optional<Opcode> OpcodeFromName(std::string_view name) noexcept;

/// Canonical register name ("zr", "a0", "t3", "sp", ...).
std::string RegName(std::uint8_t reg);

/// Parses a register name or alias ("r7", "a2", "sp"); nullopt if invalid.
std::optional<std::uint8_t> RegFromName(std::string_view name) noexcept;

/// Instruction classification helpers used by the verifier, rewriter and
/// disassembler.
bool IsBranch(Opcode op) noexcept;       ///< conditional branches
bool IsMemAccess(Opcode op) noexcept;    ///< loads + stores
bool IsLoad(Opcode op) noexcept;
bool IsStore(Opcode op) noexcept;
bool WritesRd(Opcode op) noexcept;

}  // namespace twochains::vm
