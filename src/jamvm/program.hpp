// In-memory object-code model shared by the assembler, the JELF serializer,
// the static linker, and the GOT rewriter.
//
// An ObjectCode is the output of assembling one source unit: three section
// byte vectors, a symbol table, and relocations against symbols whose final
// placement is unknown until link time. This mirrors what the paper's
// toolchain gets out of gcc -fPIC -fno-plt + ELF .o files.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace twochains::vm {

enum class SectionKind : std::uint8_t { kText = 0, kRodata = 1, kData = 2 };

inline const char* SectionName(SectionKind kind) {
  switch (kind) {
    case SectionKind::kText: return ".text";
    case SectionKind::kRodata: return ".rodata";
    case SectionKind::kData: return ".data";
  }
  return "?";
}

enum class SymbolKind : std::uint8_t { kFunc = 0, kObject = 1 };

struct Symbol {
  std::string name;
  SectionKind section = SectionKind::kText;
  std::uint64_t offset = 0;  ///< within its section (when defined)
  bool defined = false;      ///< false: extern reference
  bool global = false;       ///< exported beyond the object
  SymbolKind kind = SymbolKind::kFunc;
};

enum class RelocKind : std::uint8_t {
  /// Patch the instruction's imm field at `offset` with S + A - P, where S
  /// is the symbol address, A the addend, and P the instruction address.
  /// Used by lea/jal referencing other sections or other objects.
  kPcrel32 = 0,
  /// The instruction at `offset` is an ldg.fix whose imm must become the
  /// PC-relative offset of the GOT slot assigned to `symbol` by the linker.
  kGotSlot = 1,
  /// Patch 8 bytes at `offset` (data sections) with S + A. Internal targets
  /// become load-time base fixups; external ones resolve via the namespace.
  kAbs64 = 2,
};

struct Reloc {
  RelocKind kind = RelocKind::kPcrel32;
  SectionKind section = SectionKind::kText;  ///< where the patch site lives
  std::uint64_t offset = 0;                  ///< patch site within section
  std::string symbol;
  std::int64_t addend = 0;
};

struct ObjectCode {
  std::string source_name;  ///< diagnostics only
  std::vector<std::uint8_t> text;
  std::vector<std::uint8_t> rodata;
  std::vector<std::uint8_t> data;
  std::vector<Symbol> symbols;
  std::vector<Reloc> relocs;

  std::vector<std::uint8_t>& section(SectionKind kind) {
    switch (kind) {
      case SectionKind::kRodata: return rodata;
      case SectionKind::kData: return data;
      case SectionKind::kText:
      default: return text;
    }
  }
  const std::vector<std::uint8_t>& section(SectionKind kind) const {
    return const_cast<ObjectCode*>(this)->section(kind);
  }

  const Symbol* FindSymbol(const std::string& name) const {
    for (const auto& s : symbols) {
      if (s.name == name) return &s;
    }
    return nullptr;
  }
};

}  // namespace twochains::vm
