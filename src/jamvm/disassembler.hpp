// Disassembler: instruction stream -> readable text, for diagnostics, tests
// (round-trip properties), and the toolchain's --dump mode.
#pragma once

#include <span>
#include <string>

#include "common/status.hpp"
#include "jamvm/isa.hpp"

namespace twochains::vm {

/// Renders one instruction ("add a0, a1, a2", "ldw t0, [sp+16]", ...).
std::string FormatInstr(const Instr& instr);

/// Disassembles @p code (size must be a multiple of 8); one instruction per
/// line, prefixed by its byte offset. Undecodable slots render as ".quad".
StatusOr<std::string> Disassemble(std::span<const std::uint8_t> code);

}  // namespace twochains::vm
