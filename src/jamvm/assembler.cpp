#include "jamvm/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <map>
#include <optional>
#include <vector>

#include "common/bitops.hpp"
#include "common/strfmt.hpp"
#include "jamvm/isa.hpp"

namespace twochains::vm {
namespace {

// ----------------------------------------------------------- tokenizing

/// Splits an operand list on commas that are not inside quotes or brackets.
std::vector<std::string> SplitOperands(std::string_view s) {
  std::vector<std::string> out;
  std::string cur;
  int depth = 0;
  bool quoted = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (quoted) {
      cur += c;
      if (c == '\\' && i + 1 < s.size()) {
        cur += s[++i];
      } else if (c == '"') {
        quoted = false;
      }
      continue;
    }
    if (c == '"') {
      quoted = true;
      cur += c;
    } else if (c == '[') {
      ++depth;
      cur += c;
    } else if (c == ']') {
      --depth;
      cur += c;
    } else if (c == ',' && depth == 0) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  for (auto& op : out) {
    while (!op.empty() && std::isspace(static_cast<unsigned char>(op.front())))
      op.erase(op.begin());
    while (!op.empty() && std::isspace(static_cast<unsigned char>(op.back())))
      op.pop_back();
  }
  std::erase_if(out, [](const std::string& o) { return o.empty(); });
  return out;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

/// Strips a trailing comment (';' or '#', not inside quotes).
std::string_view StripComment(std::string_view s) {
  bool quoted = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '"' && (i == 0 || s[i - 1] != '\\')) quoted = !quoted;
    if (!quoted && (c == ';' || c == '#')) return s.substr(0, i);
  }
  return s;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
         c == '$';
}

bool IsIdentifier(std::string_view s) {
  if (s.empty()) return false;
  if (std::isdigit(static_cast<unsigned char>(s[0]))) return false;
  return std::all_of(s.begin(), s.end(), IsIdentChar);
}

std::optional<std::int64_t> ParseInt(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return std::nullopt;
  // Character literal.
  if (s.size() >= 3 && s.front() == '\'' && s.back() == '\'') {
    if (s.size() == 3) return static_cast<std::int64_t>(s[1]);
    if (s.size() == 4 && s[1] == '\\') {
      switch (s[2]) {
        case 'n': return '\n';
        case 't': return '\t';
        case '0': return 0;
        case 'r': return '\r';
        case '\\': return '\\';
        case '\'': return '\'';
        default: return std::nullopt;
      }
    }
    return std::nullopt;
  }
  bool negative = false;
  if (s.front() == '-') {
    negative = true;
    s.remove_prefix(1);
  } else if (s.front() == '+') {
    s.remove_prefix(1);
  }
  if (s.empty()) return std::nullopt;
  std::uint64_t value = 0;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    for (char c : s.substr(2)) {
      int digit;
      if (c >= '0' && c <= '9') digit = c - '0';
      else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
      else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
      else return std::nullopt;
      value = value * 16 + static_cast<std::uint64_t>(digit);
    }
  } else {
    for (char c : s) {
      if (c < '0' || c > '9') return std::nullopt;
      value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
  }
  const auto signedv = static_cast<std::int64_t>(value);
  return negative ? -signedv : signedv;
}

/// Parses "sym", "sym+4", "sym-8" into (symbol, addend).
std::optional<std::pair<std::string, std::int64_t>> ParseSymbolRef(
    std::string_view s) {
  s = Trim(s);
  std::size_t split = s.size();
  for (std::size_t i = 1; i < s.size(); ++i) {
    if (s[i] == '+' || s[i] == '-') {
      split = i;
      break;
    }
  }
  const std::string_view name = Trim(s.substr(0, split));
  if (!IsIdentifier(name)) return std::nullopt;
  std::int64_t addend = 0;
  if (split < s.size()) {
    const auto v = ParseInt(s.substr(split));
    if (!v) return std::nullopt;
    addend = *v;
  }
  return std::make_pair(std::string(name), addend);
}

StatusOr<std::string> ParseStringLiteral(std::string_view s) {
  s = Trim(s);
  if (s.size() < 2 || s.front() != '"' || s.back() != '"') {
    return InvalidArgument("expected string literal");
  }
  std::string out;
  for (std::size_t i = 1; i + 1 < s.size(); ++i) {
    char c = s[i];
    if (c == '\\' && i + 2 < s.size() + 1) {
      ++i;
      switch (s[i]) {
        case 'n': c = '\n'; break;
        case 't': c = '\t'; break;
        case 'r': c = '\r'; break;
        case '0': c = '\0'; break;
        case '\\': c = '\\'; break;
        case '"': c = '"'; break;
        default:
          return InvalidArgument(StrFormat("bad escape \\%c", s[i]));
      }
    }
    out += c;
  }
  return out;
}

// ----------------------------------------------------------- assembler

/// A parsed instruction statement, possibly expanded from a pseudo.
struct PendingInstr {
  Instr instr;
  // When non-empty, pass 2 must resolve this symbol for the imm field.
  std::string target_symbol;
  std::int64_t target_addend = 0;
  bool is_got = false;       // @symbol (ldg)
  bool is_pcrel = false;     // branch / jal / lea target
  int line = 0;
};

class Assembler {
 public:
  explicit Assembler(std::string unit) { obj_.source_name = std::move(unit); }

  Status Run(std::string_view source) {
    TC_RETURN_IF_ERROR(Parse(source));
    TC_RETURN_IF_ERROR(Finalize());
    return Status::Ok();
  }

  ObjectCode Take() { return std::move(obj_); }

 private:
  Status Err(int line, const std::string& msg) const {
    return InvalidArgument(
        StrFormat("%s:%d: %s", obj_.source_name.c_str(), line, msg.c_str()));
  }

  std::vector<std::uint8_t>& Cur() { return obj_.section(section_); }

  Status Parse(std::string_view source) {
    int line_no = 0;
    std::size_t pos = 0;
    while (pos <= source.size()) {
      const std::size_t eol = source.find('\n', pos);
      std::string_view line = source.substr(
          pos, eol == std::string_view::npos ? source.size() - pos
                                             : eol - pos);
      pos = eol == std::string_view::npos ? source.size() + 1 : eol + 1;
      ++line_no;
      line = Trim(StripComment(line));
      if (line.empty()) continue;

      // Labels: possibly several on one line before a statement.
      while (true) {
        const std::size_t colon = line.find(':');
        if (colon == std::string_view::npos) break;
        const std::string_view head = Trim(line.substr(0, colon));
        if (!IsIdentifier(head)) break;
        TC_RETURN_IF_ERROR(DefineLabel(std::string(head), line_no));
        line = Trim(line.substr(colon + 1));
      }
      if (line.empty()) continue;

      if (line.front() == '.') {
        // Could be a directive or a .-prefixed local label already consumed.
        TC_RETURN_IF_ERROR(Directive(line, line_no));
      } else {
        TC_RETURN_IF_ERROR(Instruction(line, line_no));
      }
    }
    return Status::Ok();
  }

  Status DefineLabel(std::string name, int line) {
    for (auto& sym : obj_.symbols) {
      if (sym.name == name) {
        if (sym.defined) return Err(line, "duplicate label '" + name + "'");
        sym.defined = true;
        sym.section = section_;
        sym.offset = Cur().size();
        sym.kind = section_ == SectionKind::kText ? SymbolKind::kFunc
                                                  : SymbolKind::kObject;
        return Status::Ok();
      }
    }
    Symbol sym;
    sym.name = std::move(name);
    sym.section = section_;
    sym.offset = Cur().size();
    sym.defined = true;
    sym.global = false;  // upgraded by .global
    sym.kind = section_ == SectionKind::kText ? SymbolKind::kFunc
                                              : SymbolKind::kObject;
    obj_.symbols.push_back(std::move(sym));
    return Status::Ok();
  }

  Symbol& EnsureSymbol(const std::string& name) {
    for (auto& sym : obj_.symbols) {
      if (sym.name == name) return sym;
    }
    Symbol sym;
    sym.name = name;
    sym.defined = false;
    obj_.symbols.push_back(std::move(sym));
    return obj_.symbols.back();
  }

  Status Directive(std::string_view line, int line_no) {
    const std::size_t sp = line.find_first_of(" \t");
    const std::string_view name = line.substr(0, sp);
    const std::string_view rest =
        sp == std::string_view::npos ? std::string_view{} : Trim(line.substr(sp));

    if (name == ".text") { section_ = SectionKind::kText; return Status::Ok(); }
    if (name == ".rodata") { section_ = SectionKind::kRodata; return Status::Ok(); }
    if (name == ".data") { section_ = SectionKind::kData; return Status::Ok(); }

    if (name == ".global" || name == ".globl") {
      if (!IsIdentifier(rest)) return Err(line_no, ".global needs a symbol");
      EnsureSymbol(std::string(rest)).global = true;
      return Status::Ok();
    }
    if (name == ".extern") {
      if (!IsIdentifier(rest)) return Err(line_no, ".extern needs a symbol");
      EnsureSymbol(std::string(rest));
      return Status::Ok();
    }
    if (name == ".align") {
      const auto n = ParseInt(rest);
      if (!n || *n <= 0 || !IsPowerOfTwo(static_cast<std::uint64_t>(*n))) {
        return Err(line_no, ".align needs a power of two");
      }
      auto& sec = Cur();
      if (section_ == SectionKind::kText) {
        // Pad code with nops to keep the instruction stream decodable.
        while (sec.size() % static_cast<std::uint64_t>(*n) != 0) {
          EmitRaw(Instr{Opcode::kNop, 0, 0, 0, 0});
        }
      } else {
        while (sec.size() % static_cast<std::uint64_t>(*n) != 0) {
          sec.push_back(0);
        }
      }
      return Status::Ok();
    }
    if (name == ".byte" || name == ".half" || name == ".word" ||
        name == ".quad") {
      const unsigned width = name == ".byte"   ? 1u
                             : name == ".half" ? 2u
                             : name == ".word" ? 4u
                                               : 8u;
      for (const auto& opnd : SplitOperands(rest)) {
        const auto v = ParseInt(opnd);
        if (v) {
          auto u = static_cast<std::uint64_t>(*v);
          for (unsigned i = 0; i < width; ++i) {
            Cur().push_back(static_cast<std::uint8_t>(u & 0xFF));
            u >>= 8;
          }
          continue;
        }
        if (width == 8) {
          const auto ref = ParseSymbolRef(opnd);
          if (ref) {
            EnsureSymbol(ref->first);
            obj_.relocs.push_back(Reloc{RelocKind::kAbs64, section_,
                                        Cur().size(), ref->first,
                                        ref->second});
            for (unsigned i = 0; i < 8; ++i) Cur().push_back(0);
            continue;
          }
        }
        return Err(line_no, "bad " + std::string(name) + " operand: " + opnd);
      }
      return Status::Ok();
    }
    if (name == ".asciz" || name == ".ascii") {
      auto s = ParseStringLiteral(rest);
      if (!s.ok()) return Err(line_no, s.status().message());
      for (char c : *s) Cur().push_back(static_cast<std::uint8_t>(c));
      if (name == ".asciz") Cur().push_back(0);
      return Status::Ok();
    }
    if (name == ".space") {
      const auto n = ParseInt(rest);
      if (!n || *n < 0) return Err(line_no, ".space needs a size");
      for (std::int64_t i = 0; i < *n; ++i) Cur().push_back(0);
      return Status::Ok();
    }
    return Err(line_no, "unknown directive '" + std::string(name) + "'");
  }

  void EmitRaw(const Instr& instr) {
    std::uint8_t buf[kInstrBytes];
    Encode(instr, buf);
    obj_.text.insert(obj_.text.end(), buf, buf + kInstrBytes);
  }

  void Emit(const PendingInstr& pending) {
    PendingWithOffset p;
    static_cast<PendingInstr&>(p) = pending;
    p.instr_offset = obj_.text.size();
    pending_.push_back(std::move(p));
    EmitRaw(pending.instr);
  }

  StatusOr<std::uint8_t> Reg(const std::string& s, int line) const {
    const auto r = RegFromName(s);
    if (!r) return Err(line, "bad register '" + s + "'");
    return *r;
  }

  StatusOr<std::int32_t> Imm32(const std::string& s, int line) const {
    const auto v = ParseInt(s);
    if (!v) return Err(line, "bad immediate '" + s + "'");
    if (*v < INT32_MIN || *v > INT32_MAX) {
      return Err(line, "immediate out of 32-bit range: " + s);
    }
    return static_cast<std::int32_t>(*v);
  }

  /// Parses "[reg]", "[reg+imm]", "[reg-imm]".
  StatusOr<std::pair<std::uint8_t, std::int32_t>> MemOperand(
      const std::string& s, int line) const {
    if (s.size() < 3 || s.front() != '[' || s.back() != ']') {
      return Err(line, "bad memory operand '" + s + "'");
    }
    const std::string inner(Trim(s.substr(1, s.size() - 2)));
    std::size_t split = inner.size();
    for (std::size_t i = 1; i < inner.size(); ++i) {
      if (inner[i] == '+' || inner[i] == '-') {
        split = i;
        break;
      }
    }
    TC_ASSIGN_OR_RETURN(const std::uint8_t base,
                        Reg(std::string(Trim(inner.substr(0, split))), line));
    std::int32_t off = 0;
    if (split < inner.size()) {
      TC_ASSIGN_OR_RETURN(off, Imm32(inner.substr(split), line));
    }
    return std::make_pair(base, off);
  }

  Status Instruction(std::string_view line, int line_no) {
    const std::size_t sp = line.find_first_of(" \t");
    std::string mnemonic(line.substr(0, sp));
    std::transform(mnemonic.begin(), mnemonic.end(), mnemonic.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    const std::vector<std::string> ops = SplitOperands(
        sp == std::string_view::npos ? std::string_view{}
                                     : line.substr(sp));

    auto need = [&](std::size_t n) -> Status {
      if (ops.size() != n) {
        return Err(line_no, StrFormat("'%s' expects %zu operands, got %zu",
                                      mnemonic.c_str(), n, ops.size()));
      }
      return Status::Ok();
    };

    // ---- pseudo-instructions -----------------------------------------
    if (mnemonic == "ret") {
      TC_RETURN_IF_ERROR(need(0));
      Emit({Instr{Opcode::kJalr, kZr, kLr, 0, 0}, {}, 0, false, false, line_no});
      return Status::Ok();
    }
    if (mnemonic == "mov") {
      TC_RETURN_IF_ERROR(need(2));
      TC_ASSIGN_OR_RETURN(const auto rd, Reg(ops[0], line_no));
      TC_ASSIGN_OR_RETURN(const auto rs, Reg(ops[1], line_no));
      Emit({Instr{Opcode::kAdd, rd, rs, kZr, 0}, {}, 0, false, false, line_no});
      return Status::Ok();
    }
    if (mnemonic == "li") {
      TC_RETURN_IF_ERROR(need(2));
      TC_ASSIGN_OR_RETURN(const auto rd, Reg(ops[0], line_no));
      const auto v = ParseInt(ops[1]);
      if (!v) return Err(line_no, "bad immediate '" + ops[1] + "'");
      const auto uv = static_cast<std::uint64_t>(*v);
      // Always two slots so pass-1 offsets are deterministic.
      Emit({Instr{Opcode::kMovi, rd, 0, 0,
                  static_cast<std::int32_t>(uv & 0xFFFFFFFF)},
            {}, 0, false, false, line_no});
      Emit({Instr{Opcode::kMovhi, rd, 0, 0,
                  static_cast<std::int32_t>(uv >> 32)},
            {}, 0, false, false, line_no});
      return Status::Ok();
    }
    if (mnemonic == "jmp" || mnemonic == "call") {
      TC_RETURN_IF_ERROR(need(1));
      const std::uint8_t rd = mnemonic == "call" ? kLr : kZr;
      PendingInstr p{Instr{Opcode::kJal, rd, 0, 0, 0}, {}, 0, false, true,
                     line_no};
      const auto imm = ParseInt(ops[0]);
      if (imm) {
        p.instr.imm = static_cast<std::int32_t>(*imm);
        p.is_pcrel = false;
      } else {
        const auto ref = ParseSymbolRef(ops[0]);
        if (!ref) return Err(line_no, "bad target '" + ops[0] + "'");
        p.target_symbol = ref->first;
        p.target_addend = ref->second;
      }
      Emit(p);
      return Status::Ok();
    }
    if (mnemonic == "not") {
      TC_RETURN_IF_ERROR(need(2));
      TC_ASSIGN_OR_RETURN(const auto rd, Reg(ops[0], line_no));
      TC_ASSIGN_OR_RETURN(const auto rs, Reg(ops[1], line_no));
      Emit({Instr{Opcode::kXori, rd, rs, 0, -1}, {}, 0, false, false, line_no});
      return Status::Ok();
    }
    if (mnemonic == "neg") {
      TC_RETURN_IF_ERROR(need(2));
      TC_ASSIGN_OR_RETURN(const auto rd, Reg(ops[0], line_no));
      TC_ASSIGN_OR_RETURN(const auto rs, Reg(ops[1], line_no));
      Emit({Instr{Opcode::kSub, rd, kZr, rs, 0}, {}, 0, false, false, line_no});
      return Status::Ok();
    }
    if (mnemonic == "seqz" || mnemonic == "snez") {
      TC_RETURN_IF_ERROR(need(2));
      TC_ASSIGN_OR_RETURN(const auto rd, Reg(ops[0], line_no));
      TC_ASSIGN_OR_RETURN(const auto rs, Reg(ops[1], line_no));
      const Opcode op = mnemonic == "seqz" ? Opcode::kSeq : Opcode::kSne;
      Emit({Instr{op, rd, rs, kZr, 0}, {}, 0, false, false, line_no});
      return Status::Ok();
    }
    if (mnemonic == "ldg") {
      TC_RETURN_IF_ERROR(need(2));
      TC_ASSIGN_OR_RETURN(const auto rd, Reg(ops[0], line_no));
      if (ops[1].empty() || ops[1][0] != '@') {
        return Err(line_no, "ldg needs '@symbol'");
      }
      const std::string sym = ops[1].substr(1);
      if (!IsIdentifier(sym)) return Err(line_no, "bad GOT symbol");
      EnsureSymbol(sym);
      PendingInstr p{Instr{Opcode::kLdgFix, rd, 0, 0, 0}, sym, 0, true, false,
                     line_no};
      Emit(p);
      return Status::Ok();
    }

    // ---- real opcodes -------------------------------------------------
    const auto op = OpcodeFromName(mnemonic);
    if (!op) return Err(line_no, "unknown mnemonic '" + mnemonic + "'");

    PendingInstr p{Instr{*op, 0, 0, 0, 0}, {}, 0, false, false, line_no};
    switch (*op) {
      case Opcode::kHalt:
      case Opcode::kNop:
        TC_RETURN_IF_ERROR(need(0));
        break;
      case Opcode::kAdd: case Opcode::kSub: case Opcode::kMul:
      case Opcode::kDiv: case Opcode::kDivu: case Opcode::kRem:
      case Opcode::kRemu: case Opcode::kAnd: case Opcode::kOr:
      case Opcode::kXor: case Opcode::kSll: case Opcode::kSrl:
      case Opcode::kSra: case Opcode::kSlt: case Opcode::kSltu:
      case Opcode::kSeq: case Opcode::kSne: {
        TC_RETURN_IF_ERROR(need(3));
        TC_ASSIGN_OR_RETURN(p.instr.rd, Reg(ops[0], line_no));
        TC_ASSIGN_OR_RETURN(p.instr.rs1, Reg(ops[1], line_no));
        TC_ASSIGN_OR_RETURN(p.instr.rs2, Reg(ops[2], line_no));
        break;
      }
      case Opcode::kAddi: case Opcode::kMuli: case Opcode::kAndi:
      case Opcode::kOri: case Opcode::kXori: case Opcode::kSlli:
      case Opcode::kSrli: case Opcode::kSrai: case Opcode::kSlti:
      case Opcode::kSltiu: case Opcode::kSeqi: case Opcode::kSnei: {
        TC_RETURN_IF_ERROR(need(3));
        TC_ASSIGN_OR_RETURN(p.instr.rd, Reg(ops[0], line_no));
        TC_ASSIGN_OR_RETURN(p.instr.rs1, Reg(ops[1], line_no));
        TC_ASSIGN_OR_RETURN(p.instr.imm, Imm32(ops[2], line_no));
        break;
      }
      case Opcode::kMovi: case Opcode::kMovhi: {
        TC_RETURN_IF_ERROR(need(2));
        TC_ASSIGN_OR_RETURN(p.instr.rd, Reg(ops[0], line_no));
        TC_ASSIGN_OR_RETURN(p.instr.imm, Imm32(ops[1], line_no));
        break;
      }
      case Opcode::kLdb: case Opcode::kLdbu: case Opcode::kLdh:
      case Opcode::kLdhu: case Opcode::kLdw: case Opcode::kLdwu:
      case Opcode::kLdd: {
        TC_RETURN_IF_ERROR(need(2));
        TC_ASSIGN_OR_RETURN(p.instr.rd, Reg(ops[0], line_no));
        TC_ASSIGN_OR_RETURN(const auto memop, MemOperand(ops[1], line_no));
        p.instr.rs1 = memop.first;
        p.instr.imm = memop.second;
        break;
      }
      case Opcode::kStb: case Opcode::kSth: case Opcode::kStw:
      case Opcode::kStd: {
        TC_RETURN_IF_ERROR(need(2));
        TC_ASSIGN_OR_RETURN(p.instr.rs2, Reg(ops[0], line_no));
        TC_ASSIGN_OR_RETURN(const auto memop, MemOperand(ops[1], line_no));
        p.instr.rs1 = memop.first;
        p.instr.imm = memop.second;
        break;
      }
      case Opcode::kBeq: case Opcode::kBne: case Opcode::kBlt:
      case Opcode::kBge: case Opcode::kBltu: case Opcode::kBgeu: {
        TC_RETURN_IF_ERROR(need(3));
        TC_ASSIGN_OR_RETURN(p.instr.rs1, Reg(ops[0], line_no));
        TC_ASSIGN_OR_RETURN(p.instr.rs2, Reg(ops[1], line_no));
        const auto imm = ParseInt(ops[2]);
        if (imm) {
          p.instr.imm = static_cast<std::int32_t>(*imm);
        } else {
          const auto ref = ParseSymbolRef(ops[2]);
          if (!ref) return Err(line_no, "bad branch target '" + ops[2] + "'");
          p.target_symbol = ref->first;
          p.target_addend = ref->second;
          p.is_pcrel = true;
        }
        break;
      }
      case Opcode::kJal: {
        TC_RETURN_IF_ERROR(need(2));
        TC_ASSIGN_OR_RETURN(p.instr.rd, Reg(ops[0], line_no));
        const auto imm = ParseInt(ops[1]);
        if (imm) {
          p.instr.imm = static_cast<std::int32_t>(*imm);
        } else {
          const auto ref = ParseSymbolRef(ops[1]);
          if (!ref) return Err(line_no, "bad jal target '" + ops[1] + "'");
          p.target_symbol = ref->first;
          p.target_addend = ref->second;
          p.is_pcrel = true;
        }
        break;
      }
      case Opcode::kJalr: {
        TC_RETURN_IF_ERROR(need(3));
        TC_ASSIGN_OR_RETURN(p.instr.rd, Reg(ops[0], line_no));
        TC_ASSIGN_OR_RETURN(p.instr.rs1, Reg(ops[1], line_no));
        TC_ASSIGN_OR_RETURN(p.instr.imm, Imm32(ops[2], line_no));
        break;
      }
      case Opcode::kLea: {
        TC_RETURN_IF_ERROR(need(2));
        TC_ASSIGN_OR_RETURN(p.instr.rd, Reg(ops[0], line_no));
        const auto imm = ParseInt(ops[1]);
        if (imm) {
          p.instr.imm = static_cast<std::int32_t>(*imm);
        } else {
          const auto ref = ParseSymbolRef(ops[1]);
          if (!ref) return Err(line_no, "bad lea target '" + ops[1] + "'");
          p.target_symbol = ref->first;
          p.target_addend = ref->second;
          p.is_pcrel = true;
        }
        break;
      }
      case Opcode::kLdgFix: {
        // Raw form for tests: ldg.fix rd, imm.
        TC_RETURN_IF_ERROR(need(2));
        TC_ASSIGN_OR_RETURN(p.instr.rd, Reg(ops[0], line_no));
        TC_ASSIGN_OR_RETURN(p.instr.imm, Imm32(ops[1], line_no));
        break;
      }
      case Opcode::kLdgPre: {
        // Raw form: ldg.pre rd, idx, imm.
        TC_RETURN_IF_ERROR(need(3));
        TC_ASSIGN_OR_RETURN(p.instr.rd, Reg(ops[0], line_no));
        const auto idx = ParseInt(ops[1]);
        if (!idx || *idx < 0 || *idx > 255) {
          return Err(line_no, "ldg.pre index must be 0..255");
        }
        p.instr.rs2 = static_cast<std::uint8_t>(*idx);
        TC_ASSIGN_OR_RETURN(p.instr.imm, Imm32(ops[2], line_no));
        break;
      }
      default:
        return Err(line_no, "unhandled mnemonic '" + mnemonic + "'");
    }
    Emit(p);
    return Status::Ok();
  }

  /// Pass 2: resolve branch/lea targets and emit relocations.
  Status Finalize() {
    for (const auto& p : pending_) {
      if (p.target_symbol.empty()) continue;
      const std::uint64_t site = p.instr_offset;

      if (p.is_got) {
        obj_.relocs.push_back(Reloc{RelocKind::kGotSlot, SectionKind::kText,
                                    site, p.target_symbol, 0});
        continue;
      }

      const Symbol* sym = obj_.FindSymbol(p.target_symbol);
      if (sym != nullptr && sym->defined &&
          sym->section == SectionKind::kText) {
        // Local text target: patch the imm directly.
        const std::int64_t delta =
            static_cast<std::int64_t>(sym->offset) + p.target_addend -
            static_cast<std::int64_t>(site);
        if (delta < INT32_MIN || delta > INT32_MAX) {
          return Err(p.line, "branch target out of range");
        }
        std::int32_t imm = static_cast<std::int32_t>(delta);
        std::memcpy(obj_.text.data() + site + 4, &imm, sizeof(imm));
        continue;
      }
      // Cross-section or external: leave for the linker.
      EnsureSymbol(p.target_symbol);
      obj_.relocs.push_back(Reloc{RelocKind::kPcrel32, SectionKind::kText,
                                  site, p.target_symbol, p.target_addend});
    }
    return Status::Ok();
  }

  struct PendingWithOffset : PendingInstr {
    std::uint64_t instr_offset = 0;
  };

  ObjectCode obj_;
  SectionKind section_ = SectionKind::kText;
  std::vector<PendingWithOffset> pending_;
};

}  // namespace

StatusOr<ObjectCode> Assemble(std::string_view source, std::string unit_name) {
  Assembler assembler(std::move(unit_name));
  TC_RETURN_IF_ERROR(assembler.Run(source));
  return assembler.Take();
}

}  // namespace twochains::vm
