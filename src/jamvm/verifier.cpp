#include "jamvm/verifier.hpp"

#include "common/strfmt.hpp"
#include "jamvm/isa.hpp"

namespace twochains::vm {

Status VerifyCode(std::span<const std::uint8_t> code,
                  const VerifyLimits& limits) {
  if (code.empty()) return InvalidArgument("empty code image");
  if (code.size() % kInstrBytes != 0) {
    return DataLoss("code size not a multiple of the instruction width");
  }
  const std::int64_t code_size = static_cast<std::int64_t>(code.size());

  for (std::size_t off = 0; off < code.size(); off += kInstrBytes) {
    const auto decoded = Decode(code.data() + off);
    if (!decoded) {
      return DataLoss(StrFormat("undecodable instruction at +%zu", off));
    }
    const Instr& i = *decoded;
    const auto site = static_cast<std::int64_t>(off);

    if (IsBranch(i.op) || i.op == Opcode::kJal) {
      const std::int64_t target = site + i.imm;
      if (target < 0 || target >= code_size) {
        return OutOfRange(
            StrFormat("branch at +%zu targets %lld, outside [0,%lld)", off,
                      static_cast<long long>(target),
                      static_cast<long long>(code_size)));
      }
      if (target % static_cast<std::int64_t>(kInstrBytes) != 0) {
        return DataLoss(StrFormat("branch at +%zu targets misaligned %lld",
                                  off, static_cast<long long>(target)));
      }
    }
    if (i.op == Opcode::kLea) {
      // lea may form addresses of code or the trailing rodata blob.
      const std::int64_t target = site + i.imm;
      if (target < 0 ||
          target >= code_size + static_cast<std::int64_t>(limits.rodata_bytes)) {
        return OutOfRange(StrFormat("lea at +%zu escapes the image", off));
      }
    }
    if (i.op == Opcode::kLdgPre) {
      if (i.rs2 >= limits.got_slots) {
        return OutOfRange(
            StrFormat("ldg.pre at +%zu uses GOT slot %u of %u", off,
                      static_cast<unsigned>(i.rs2), limits.got_slots));
      }
      // The GOT pointer must come from *the* preamble slot. Any other
      // site+imm would load attacker-chosen bytes and dereference them as
      // the table base — an arbitrary-read primitive.
      const std::int64_t pre = site + i.imm;
      if (pre != limits.pre_slot_offset) {
        return OutOfRange(StrFormat(
            "ldg.pre at +%zu reads its GOT pointer from %+lld, not the "
            "preamble slot at %+lld",
            off, static_cast<long long>(pre),
            static_cast<long long>(limits.pre_slot_offset)));
      }
    }
    if (i.op == Opcode::kLdgFix) {
      if (limits.fixed_got_offset < 0) {
        return PermissionDenied(StrFormat(
            "ldg.fix at +%zu: image has no fixed GOT (rewritten jams must "
            "link through ldg.pre)",
            off));
      }
      // Fixed-mode access must hit an 8-aligned slot of the in-image GOT,
      // mirroring the ldg.pre slot bound — otherwise it is an arbitrary
      // PC-relative read dressed up as a GOT load.
      const std::int64_t target = site + i.imm;
      const std::int64_t got_begin = limits.fixed_got_offset;
      const std::int64_t got_end = got_begin + 8ll * limits.got_slots;
      if (target < got_begin || target + 8 > got_end ||
          (target - got_begin) % 8 != 0) {
        return OutOfRange(StrFormat(
            "ldg.fix at +%zu targets %+lld, outside the fixed GOT "
            "[%lld,%lld)",
            off, static_cast<long long>(target),
            static_cast<long long>(got_begin),
            static_cast<long long>(got_end)));
      }
    }
    if (i.op == Opcode::kJalr && i.rs1 == kZr) {
      // rs1 == zr makes the target fully static (the immediate itself) and
      // never legitimate — compiled calls go through a register, returns
      // through lr. Register-based targets are bounded at run time by the
      // interpreter's exec windows (see the header comment).
      return OutOfRange(StrFormat(
          "jalr at +%zu jumps to absolute %+d via the zero register", off,
          i.imm));
    }
    if ((i.op == Opcode::kDiv || i.op == Opcode::kDivu ||
         i.op == Opcode::kRem || i.op == Opcode::kRemu) &&
        i.rs2 == kZr) {
      return DataLoss(
          StrFormat("division by hardwired zero register at +%zu", off));
    }
  }
  return Status::Ok();
}

}  // namespace twochains::vm
