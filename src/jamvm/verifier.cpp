#include "jamvm/verifier.hpp"

#include "common/strfmt.hpp"
#include "jamvm/isa.hpp"

namespace twochains::vm {

Status VerifyCode(std::span<const std::uint8_t> code,
                  const VerifyLimits& limits) {
  if (code.empty()) return InvalidArgument("empty code image");
  if (code.size() % kInstrBytes != 0) {
    return DataLoss("code size not a multiple of the instruction width");
  }
  const std::int64_t code_size = static_cast<std::int64_t>(code.size());

  for (std::size_t off = 0; off < code.size(); off += kInstrBytes) {
    const auto decoded = Decode(code.data() + off);
    if (!decoded) {
      return DataLoss(StrFormat("undecodable instruction at +%zu", off));
    }
    const Instr& i = *decoded;
    const auto site = static_cast<std::int64_t>(off);

    if (IsBranch(i.op) || i.op == Opcode::kJal) {
      const std::int64_t target = site + i.imm;
      if (target < 0 || target >= code_size) {
        return OutOfRange(
            StrFormat("branch at +%zu targets %lld, outside [0,%lld)", off,
                      static_cast<long long>(target),
                      static_cast<long long>(code_size)));
      }
      if (target % static_cast<std::int64_t>(kInstrBytes) != 0) {
        return DataLoss(StrFormat("branch at +%zu targets misaligned %lld",
                                  off, static_cast<long long>(target)));
      }
    }
    if (i.op == Opcode::kLea) {
      // lea may form addresses of code or the trailing rodata blob.
      const std::int64_t target = site + i.imm;
      if (target < 0 ||
          target >= code_size + static_cast<std::int64_t>(limits.rodata_bytes)) {
        return OutOfRange(StrFormat("lea at +%zu escapes the image", off));
      }
    }
    if (i.op == Opcode::kLdgPre) {
      if (i.rs2 >= limits.got_slots) {
        return OutOfRange(
            StrFormat("ldg.pre at +%zu uses GOT slot %u of %u", off,
                      static_cast<unsigned>(i.rs2), limits.got_slots));
      }
    }
    if ((i.op == Opcode::kDiv || i.op == Opcode::kDivu ||
         i.op == Opcode::kRem || i.op == Opcode::kRemu) &&
        i.rs2 == kZr) {
      return DataLoss(
          StrFormat("division by hardwired zero register at +%zu", off));
    }
  }
  return Status::Ok();
}

}  // namespace twochains::vm
