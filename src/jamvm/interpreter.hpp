// The jam interpreter: executes jam code out of simulated host memory,
// charging every instruction fetch and data access to the host's cache
// hierarchy. This is what makes "code arrived cold in DRAM" vs "code was
// stashed into the LLC" measurable — the interpreter *is* the receiving CPU
// for timing purposes.
//
// External linkage: GOT slots hold either the virtual address of jam code
// (a ried function loaded on this host, or another jam) or a tagged native
// handle (bit 63 set) indexing the host runtime's NativeTable. JALR to a
// tagged value dispatches the native function; everything else is
// interpreted. Natives model receiver-runtime primitives (memcpy, print)
// and charge their memory traffic through the same cache model.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "cache/hierarchy.hpp"
#include "common/status.hpp"
#include "common/units.hpp"
#include "mem/host_memory.hpp"
#include "jamvm/isa.hpp"

namespace twochains::vm {

/// Bit 63 tags a GOT value as a native-function handle (host virtual
/// addresses in the simulator never reach that bit).
inline constexpr std::uint64_t kNativeTagBit = 1ull << 63;

constexpr bool IsNativeHandle(std::uint64_t v) noexcept {
  return (v & kNativeTagBit) != 0;
}
constexpr std::uint64_t MakeNativeHandle(std::uint32_t index) noexcept {
  return kNativeTagBit | index;
}
constexpr std::uint32_t NativeIndexOf(std::uint64_t v) noexcept {
  return static_cast<std::uint32_t>(v & 0xFFFFFFFF);
}

/// Jam code returns to this sentinel address to finish execution.
inline constexpr mem::VirtAddr kReturnSentinel = 0x7FFFFFFFFFFFFF00ull;

class Interpreter;

/// View of the machine state handed to a native function.
class NativeFrame {
 public:
  NativeFrame(Interpreter& interp, std::uint64_t* regs)
      : interp_(interp), regs_(regs) {}

  /// i-th argument register (a0..a7).
  std::uint64_t Arg(unsigned i) const { return regs_[kA0 + i]; }
  /// Sets the return value (a0).
  void SetResult(std::uint64_t v) { regs_[kA0] = v; }

  /// Cache-charged memory accesses into the executing host.
  StatusOr<std::uint64_t> Load(mem::VirtAddr addr, unsigned bytes);
  Status Store(mem::VirtAddr addr, std::uint64_t value, unsigned bytes);
  /// Cache-charged bulk copy (reads src, writes dst, per-line costs).
  Status CopyBytes(mem::VirtAddr dst, mem::VirtAddr src, std::uint64_t n);
  /// Reads a NUL-terminated string (bounded by @p max).
  StatusOr<std::string> LoadCString(mem::VirtAddr addr, std::uint64_t max = 4096);

  /// Adds pure-compute cycles on top of the charged memory traffic.
  void ChargeCycles(Cycles cycles);

  mem::HostMemory& memory();
  cache::CacheHierarchy& caches();
  std::uint32_t core() const;

 private:
  Interpreter& interp_;
  std::uint64_t* regs_;
};

using NativeFn = std::function<Status(NativeFrame&)>;

/// Per-host registry of native functions callable from jam code.
class NativeTable {
 public:
  /// Registers @p fn under @p name; returns the index to embed in a handle.
  StatusOr<std::uint32_t> Register(std::string name, NativeFn fn);

  StatusOr<std::uint32_t> IndexOf(std::string_view name) const;
  const NativeFn* Get(std::uint32_t index) const;
  std::string_view NameOf(std::uint32_t index) const;
  std::size_t size() const noexcept { return entries_.size(); }

 private:
  struct Entry {
    std::string name;
    NativeFn fn;
  };
  std::vector<Entry> entries_;
};

/// A half-open virtual-address window [base, base + size) for the sandbox
/// checks below.
struct MemWindow {
  mem::VirtAddr base = 0;
  std::uint64_t size = 0;

  constexpr bool Contains(mem::VirtAddr addr,
                          std::uint64_t bytes) const noexcept {
    return addr >= base && addr - base < size &&
           size - (addr - base) >= bytes;
  }
};

struct ExecConfig {
  /// Hard cap on interpreted instructions (runaway-jam failsafe).
  std::uint64_t max_instructions = 50'000'000;
  /// Fixed pipeline cost per instruction, on top of memory-system cycles.
  Cycles base_cycles_per_instr = 1;
  /// Check the X permission of the page containing the PC (the W^X
  /// security mode relies on this; the paper's default mailbox is RWX).
  bool enforce_exec_permission = true;
  /// Control-flow confinement. When non-empty, every instruction fetch —
  /// whether reached sequentially, by branch/jal, or by a computed jalr —
  /// must land inside one of these windows; the return sentinel and tagged
  /// native handles stay reachable. An escaping pc faults with
  /// kPermissionDenied *before* executing whatever bytes happen to be
  /// readable there, which is what bounds register-based jumps the static
  /// verifier cannot prove. Empty reproduces the paper's unconfined
  /// receiver. Armed per-invoke by core::SecurityPolicy::
  /// confine_control_flow (frame code + loaded libraries).
  std::vector<MemWindow> exec_windows;
  /// Data-access confinement. When non-empty, every interpreted load/store
  /// — including GOT-pointer loads and native-mediated accesses (tc_memcpy
  /// and friends, which otherwise act as confused deputies) — must land
  /// inside one of these windows. The fuzz harness uses it to prove
  /// "verified code never touches memory outside its frame"; the runtime
  /// leaves it empty because jams legitimately address exported host
  /// objects whose extents the receiver does not track.
  std::vector<MemWindow> data_windows;
  /// Extra cycles charged per control-transfer instruction while exec
  /// windows are active (the SFI-style bounds check on the taken path).
  Cycles confine_branch_cycles = 1;
};

struct ExecResult {
  Status status;
  std::uint64_t instructions = 0;
  Cycles cycles = 0;          ///< base + memory + native cycles
  std::uint64_t return_value = 0;  ///< a0 at completion
};

class Interpreter {
 public:
  Interpreter(mem::HostMemory& memory, cache::CacheHierarchy& caches,
              std::uint32_t core, const NativeTable* natives,
              ExecConfig config = {});

  /// Runs code at @p entry with @p args in a0..a7 and sp set to
  /// @p stack_top. Returns when the code returns to the sentinel, halts, or
  /// faults.
  ExecResult Execute(mem::VirtAddr entry, std::span<const std::uint64_t> args,
                     mem::VirtAddr stack_top);

  const ExecConfig& config() const noexcept { return config_; }

 private:
  friend class NativeFrame;

  static bool InWindows(const std::vector<MemWindow>& windows,
                        mem::VirtAddr addr, std::uint64_t bytes) noexcept {
    for (const MemWindow& w : windows) {
      if (w.Contains(addr, bytes)) return true;
    }
    return false;
  }

  /// OK when data windows are off or @p addr..+bytes is inside one.
  Status CheckDataWindows(mem::VirtAddr addr, std::uint64_t bytes);

  Cycles ChargeAccess(mem::VirtAddr addr, std::uint64_t size,
                      cache::AccessKind kind) {
    const Cycles c = caches_.Access(core_, addr, size, kind);
    cycles_ += c;
    return c;
  }

  mem::HostMemory& memory_;
  cache::CacheHierarchy& caches_;
  std::uint32_t core_;
  const NativeTable* natives_;
  ExecConfig config_;
  Cycles cycles_ = 0;  // accumulates during Execute
};

/// Options for the standard native set.
struct StandardNativesOptions {
  /// Where tc_print_* output goes (may be nullptr to discard).
  std::string* print_sink = nullptr;
};

/// Registers the baseline receiver-runtime natives:
///   tc_memcpy(dst, src, n)          -> dst
///   tc_memset(dst, byte, n)         -> dst
///   tc_print_str(ptr)               -> 0     (NUL-terminated)
///   tc_print_u64(v)                 -> 0
///   tc_hash64(x)                    -> splitmix64(x)
Status RegisterStandardNatives(NativeTable& table,
                               const StandardNativesOptions& options);

}  // namespace twochains::vm
