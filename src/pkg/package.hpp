// Two-Chains packages (§IV): each package is a named collection of
// elements — jams (mobile active-message functions) and rieds (relocatable
// interface distributions, i.e. shared libraries shipped ahead of time).
//
// Canonical source naming is enforced exactly as in the paper: "the build
// tools expect each element to be defined in one canonically named source
// file, e.g. jam_append.amc or ried_array.rdc". The element's entry symbol
// is the file's base name (a jam file jam_append.amc must define
// `jam_append`); rieds may export anything, and a `<name>_init` export is
// auto-run on load ("loaded and auto-initialized", §IV-A).
//
// From one jam source the builder produces BOTH invocation variants
// (§IV-B):
//   * the *local* image — unmodified code, linked into the package's
//     Local Function library, loaded on the receiver, dispatched by element
//     ID through a function-pointer vector;
//   * the *injected* image — compactly linked (code+rodata blob, no
//     writable data) and GOT-rewritten so the code links through the
//     patched GOT travelling with the message.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "jelf/image.hpp"

namespace twochains::pkg {

enum class ElementKind : std::uint8_t { kJam = 0, kRied = 1 };

struct BuiltElement {
  ElementKind kind = ElementKind::kJam;
  std::string name;          ///< element name ("append")
  std::string entry_symbol;  ///< "jam_append" / "ried_array"
  std::uint32_t element_id = 0;  ///< unique within the package

  /// Jams: the injectable, GOT-rewritten image (code+rodata blob + GOT
  /// symbol list). Unused for rieds.
  jelf::LinkedImage injected_image;
  /// Rieds: the page-aligned library image. For jams this is empty — local
  /// invocation uses the package's combined local library instead.
  jelf::LinkedImage ried_image;

  /// Generated assembly (diagnostics).
  std::string asm_text;
};

struct Package {
  std::string name;
  std::vector<BuiltElement> elements;

  /// The Local Function library: every jam of the package linked together,
  /// unmodified; receivers load it once and dispatch by element ID.
  jelf::LinkedImage local_library;

  const BuiltElement* Find(ElementKind kind, const std::string& name) const;
  const BuiltElement* FindById(std::uint32_t element_id) const;

  /// The generated package header (paper: "the build process generates a
  /// package header file"): element IDs and entry symbols as C text.
  std::string GeneratedHeader() const;
};

/// Collects canonical sources and builds a package.
class PackageBuilder {
 public:
  /// @p file_name must be "jam_<name>.amc" or "ried_<name>.rdc".
  Status AddSourceFile(const std::string& file_name, std::string source);

  /// Compiles, links, and rewrites everything. The builder can be reused
  /// after Build (sources are kept).
  StatusOr<Package> Build(const std::string& package_name) const;

 private:
  struct SourceFile {
    ElementKind kind;
    std::string element_name;
    std::string file_name;
    std::string source;
  };
  std::vector<SourceFile> sources_;
};

/// In-memory "install directory": packages serialized to byte blobs, as the
/// paper's install path makes packages addressable by name at runtime.
class InstallRegistry {
 public:
  Status Install(const Package& package);
  StatusOr<Package> Load(const std::string& name) const;
  bool Contains(const std::string& name) const {
    return blobs_.contains(name);
  }

  /// Raw bytes (what a ried shipped to a remote host looks like on the
  /// wire).
  StatusOr<std::vector<std::uint8_t>> Blob(const std::string& name) const;

 private:
  std::map<std::string, std::vector<std::uint8_t>> blobs_;
};

/// Package <-> bytes (jelf-based container).
std::vector<std::uint8_t> SerializePackage(const Package& package);
StatusOr<Package> ParsePackage(std::span<const std::uint8_t> bytes);

}  // namespace twochains::pkg
