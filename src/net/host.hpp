// A simulated host: memory arena, cache hierarchy, CPU cores, and the RDMA
// region registry its NIC validates against.
//
// The paper's testbed is two of these, connected back-to-back (§VI-C).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "cache/hierarchy.hpp"
#include "cpu/core.hpp"
#include "mem/host_memory.hpp"
#include "mem/region.hpp"

namespace twochains::net {

struct HostConfig {
  int host_id = 0;
  std::uint64_t memory_bytes = MiB(256);
  cache::HierarchyConfig cache{};
};

class Host {
 public:
  explicit Host(const HostConfig& config)
      : config_(config),
        memory_(config.host_id, config.memory_bytes,
                std::max<std::uint32_t>(config.cache.domains, 1)),
        caches_(config.cache) {
    // The arena's domain slices and the cache model's domains are the same
    // NUMA nodes: the hierarchy homes every line where its bytes live.
    caches_.SetDomainMapper(
        [mem = &memory_](mem::VirtAddr addr) { return mem->DomainOf(addr); });
    cores_.reserve(config.cache.cores);
    for (std::uint32_t c = 0; c < config.cache.cores; ++c) {
      cores_.emplace_back(c, config.cache.core_clock);
    }
  }

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  int id() const noexcept { return config_.host_id; }
  const HostConfig& config() const noexcept { return config_; }

  mem::HostMemory& memory() noexcept { return memory_; }
  const mem::HostMemory& memory() const noexcept { return memory_; }
  cache::CacheHierarchy& caches() noexcept { return caches_; }
  const cache::CacheHierarchy& caches() const noexcept { return caches_; }
  mem::RegionRegistry& regions() noexcept { return regions_; }
  const mem::RegionRegistry& regions() const noexcept { return regions_; }

  cpu::CpuCore& core(std::uint32_t i) { return cores_.at(i); }
  std::uint32_t core_count() const noexcept {
    return static_cast<std::uint32_t>(cores_.size());
  }

 private:
  HostConfig config_;
  mem::HostMemory memory_;
  cache::CacheHierarchy caches_;
  mem::RegionRegistry regions_;
  std::vector<cpu::CpuCore> cores_;
};

}  // namespace twochains::net
