// A simulated host: memory arena, cache hierarchy, CPU cores, and the RDMA
// region registry its NIC validates against.
//
// The paper's testbed is two of these, connected back-to-back (§VI-C).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "cache/hierarchy.hpp"
#include "cpu/core.hpp"
#include "mem/host_memory.hpp"
#include "mem/region.hpp"

namespace twochains::net {

struct HostConfig {
  /// Identity of this host; also seeds the arena's virtual base so two
  /// hosts' address spaces never alias.
  int host_id = 0;
  /// Arena size. With NUMA domains the arena splits evenly, so every
  /// *domain slice* (memory_bytes / domains) must still fit the largest
  /// single allocation (e.g. a loaded library).
  std::uint64_t memory_bytes = MiB(256);
  /// Cache/core geometry, including the domain (NUMA) split — the
  /// single source of truth for how many cpu::CpuCore the host builds.
  cache::HierarchyConfig cache{};
};

/// A simulated host: the byte arena, the cache hierarchy (wired to the
/// arena's domain map so every line is homed where its bytes live), one
/// cycle-charged core per cache-model core, and the RDMA region
/// registry the NIC validates rkeys against. Pure state — all behavior
/// (NIC, runtime) attaches from outside; safe to construct before the
/// engine runs.
class Host {
 public:
  /// Builds arena + hierarchy + cores from @p config. The cache model's
  /// domain mapper is wired to HostMemory::DomainOf at construction.
  explicit Host(const HostConfig& config)
      : config_(config),
        memory_(config.host_id, config.memory_bytes,
                std::max<std::uint32_t>(config.cache.domains, 1)),
        caches_(config.cache) {
    // The arena's domain slices and the cache model's domains are the same
    // NUMA nodes: the hierarchy homes every line where its bytes live.
    caches_.SetDomainMapper(
        [mem = &memory_](mem::VirtAddr addr) { return mem->DomainOf(addr); });
    cores_.reserve(config.cache.cores);
    for (std::uint32_t c = 0; c < config.cache.cores; ++c) {
      cores_.emplace_back(c, config.cache.core_clock);
    }
  }

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  int id() const noexcept { return config_.host_id; }
  const HostConfig& config() const noexcept { return config_; }

  /// The arena (CPU + DMA access planes, domain-aware allocation).
  mem::HostMemory& memory() noexcept { return memory_; }
  const mem::HostMemory& memory() const noexcept { return memory_; }
  /// The cache hierarchy all core/NIC accesses are charged through.
  cache::CacheHierarchy& caches() noexcept { return caches_; }
  const cache::CacheHierarchy& caches() const noexcept { return caches_; }
  /// Registered RDMA windows (rkeys) the NIC validates puts against.
  mem::RegionRegistry& regions() noexcept { return regions_; }
  const mem::RegionRegistry& regions() const noexcept { return regions_; }

  /// Core @p i (bounds-checked; one per cache-model core).
  cpu::CpuCore& core(std::uint32_t i) { return cores_.at(i); }
  std::uint32_t core_count() const noexcept {
    return static_cast<std::uint32_t>(cores_.size());
  }

 private:
  HostConfig config_;
  mem::HostMemory memory_;
  cache::CacheHierarchy caches_;
  mem::RegionRegistry regions_;
  std::vector<cpu::CpuCore> cores_;
};

}  // namespace twochains::net
