// net::Switch: a simulated cut-through switch with a shared packet buffer,
// per-egress-port queues, ECN-style congestion marking, and drop-free
// backpressure — the shared-buffer contention a production cluster adds on
// top of the paper's back-to-back testbed (§VI-C).
//
// Forwarding is head-timed cut-through: a frame's *head* reaches the
// switch one cable latency after it starts serializing upstream; the
// egress port starts re-serializing at
//
//   start = max(head_arrival + forward_latency, egress wire free)
//
// and hands the head to the next hop one cable latency after `start`. The
// frame's *tail* — what the destination NIC ultimately waits for — leaves
// the last egress at `start + bytes/port_rate`. On an uncontended path
// whose per-hop latencies sum to a direct cable's propagation delay, a
// frame of any size is delivered at exactly the instant the direct cable
// would deliver it, which is what lets the determinism suite compare a
// 1:1-oversubscribed tree against direct cabling byte for byte.
//
// Buffering: every admitted frame occupies the switch's *shared* buffer
// from admission until its egress serialization ends. A frame arriving at
// a full buffer is never dropped — it is held (FIFO, preserving per-path
// order) and re-admitted when enough in-flight bytes serialize out, which
// models the upstream-port pause a lossless fabric applies. ECN: when a
// frame's egress-port queue exceeds the configured occupancy threshold at
// admission, the frame is marked; the mark rides the op to the receiver
// (net::PutCompletion::ecn_marked) where the runtime's adaptive bank flow
// control echoes it back to the sender in the bank-flag word. Inline ops
// (signals, bank flags) are never marked, so the mark ledger the soak
// suite reconciles counts exactly the frames the runtime can observe:
// at quiescence, sum(Switch::frames_marked) over a fabric's switches ==
// sum(Nic::ecn_marks_delivered) over its NICs.
//
// Determinism: all switch state is touched only from events on the
// switch's own virtual lane (core::Fabric homes each switch one lane past
// the hosts); every cross-lane hop is at least one cable latency in the
// future, so the engine's conservative-lookahead sharding replays tree
// fabrics byte-identically at any lane count.
#pragma once

#include <cstdint>
#include <deque>
#include <queue>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"
#include "net/nic.hpp"
#include "sim/engine.hpp"

namespace twochains::net {

/// Every knob of one switch. docs/TUNING.md (## SwitchConfig) documents
/// each; bad values are clamped with a warning at construction so a
/// misconfigured switch degrades loudly instead of dropping or wedging.
struct SwitchConfig {
  /// Head-forwarding pipeline per hop: route lookup + crossbar transit
  /// (ns). Zero models an ideal cut-through crossbar.
  double forward_latency_ns = 35.0;
  /// Propagation latency of each cable attached to this switch (ns).
  double wire_latency_ns = 250.0;
  /// Shared packet buffer (bytes) across all egress ports. A frame
  /// occupies it from admission until its egress serialization ends; a
  /// zero value could never admit a frame and is clamped to 256 KiB.
  std::uint64_t buffer_bytes = MiB(1);
  /// ECN marking threshold: a frame whose egress-port queue exceeds this
  /// occupancy (bytes) at admission is marked. Clamped to `buffer_bytes`
  /// when it exceeds the buffer (an unreachable threshold would be a
  /// silently dead knob, not conservative marking).
  std::uint64_t ecn_threshold_bytes = KiB(64);
};

/// A multi-port cut-through switch (see the file comment for the model).
/// Wire-up: AttachNic/AttachSwitch create egress ports, SetRoute binds
/// each destination NIC to a port, Nic::AttachUplink points hosts here.
/// core::Fabric does all of this for Topology::kTree.
class Switch {
 public:
  Switch(sim::Engine& engine, SwitchConfig config, std::string name);

  Switch(const Switch&) = delete;
  Switch& operator=(const Switch&) = delete;

  /// Virtual engine lane this switch's events run on. Must be set before
  /// traffic flows when the fabric runs laned.
  void set_lane(std::uint32_t lane) noexcept { lane_ = lane; }
  std::uint32_t lane() const noexcept { return lane_; }

  const SwitchConfig& config() const noexcept { return config_; }
  const std::string& name() const noexcept { return name_; }

  /// Adds an egress port serializing toward @p nic at @p gbps. Returns
  /// the port index (stable; route targets).
  std::uint32_t AttachNic(Nic& nic, double gbps);
  /// Adds an egress port toward another switch (ToR -> spine uplink or
  /// spine -> ToR downlink) at @p gbps.
  std::uint32_t AttachSwitch(Switch& next, double gbps);

  /// Frames destined to @p dst leave through @p port.
  Status SetRoute(const Nic* dst, std::uint32_t port);

  std::uint32_t port_count() const noexcept {
    return static_cast<std::uint32_t>(ports_.size());
  }

  // ------------------------------------------------------------- counters

  /// Frames admitted and forwarded out an egress port.
  std::uint64_t frames_forwarded() const noexcept { return frames_forwarded_; }
  /// Frames this switch freshly ECN-marked (a frame already marked
  /// upstream is not re-counted, so the fabric-wide mark ledger stays
  /// exactly-once).
  std::uint64_t frames_marked() const noexcept { return frames_marked_; }
  /// Frames lost. The model is drop-free by construction — a full buffer
  /// holds, never drops — so anything nonzero means a wiring bug (a
  /// destination with no route); the invariant harness asserts zero.
  std::uint64_t frames_dropped() const noexcept { return frames_dropped_; }
  /// Frames that found the shared buffer full and were held at ingress
  /// (the upstream-pause events of a lossless fabric).
  std::uint64_t backpressure_holds() const noexcept {
    return backpressure_holds_;
  }
  /// High-water mark of shared-buffer occupancy (bytes).
  std::uint64_t peak_buffer_bytes() const noexcept {
    return peak_buffer_bytes_;
  }

 private:
  friend class Nic;

  struct Port {
    Nic* nic = nullptr;        ///< set for host-facing ports
    Switch* next = nullptr;    ///< set for switch-facing ports
    double gbps = 0;
    PicoTime wire_free_at = 0; ///< egress serialization occupancy
    std::uint64_t queued_bytes = 0;  ///< bytes admitted, not yet serialized
  };

  /// One frame in flight through this switch (admitted or held).
  struct Transit {
    Nic::Op op;
    Nic* src = nullptr;
    Nic* dst = nullptr;
  };

  /// One admitted frame's buffer reservation: released (lazily, on the
  /// next event) when its egress serialization ends.
  struct Release {
    PicoTime at = 0;
    std::uint64_t bytes = 0;
    std::uint32_t port = 0;
    bool operator>(const Release& o) const noexcept { return at > o.at; }
  };

  /// Entry point for the upstream hop (sender NIC or previous switch):
  /// schedules the ingress event on this switch's lane at the instant the
  /// frame head arrives. @p head_arrival must be >= the caller's now plus
  /// the engine lookahead (one cable latency guarantees it).
  void ScheduleIngress(Nic::Op op, Nic* src, Nic* dst, PicoTime head_arrival);

  /// Runs on this switch's lane when a frame head arrives: admit (or hold
  /// under buffer pressure) and forward.
  void Ingress(Transit t);
  /// Buffer admission + egress scheduling for one frame, at time @p now.
  void Admit(Transit t, PicoTime now);
  /// Retires every buffer reservation whose serialization ended by @p now.
  void PurgeReleased(PicoTime now);
  /// Arms a wake event at the earliest pending buffer release, so held
  /// frames re-try admission the moment bytes free up.
  void ArmWake();

  sim::Engine& engine_;
  SwitchConfig config_;
  std::string name_;
  std::uint32_t lane_ = 0;

  std::vector<Port> ports_;
  /// dst NIC -> egress port, linear (fabrics are small and wire-up-time).
  std::vector<std::pair<const Nic*, std::uint32_t>> routes_;

  std::uint64_t buffer_used_ = 0;
  std::priority_queue<Release, std::vector<Release>, std::greater<Release>>
      releases_;
  /// Frames held at ingress by a full buffer, FIFO (order within a path
  /// is preserved across a hold).
  std::deque<Transit> pending_;
  bool wake_armed_ = false;

  std::uint64_t frames_forwarded_ = 0;
  std::uint64_t frames_marked_ = 0;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t backpressure_holds_ = 0;
  std::uint64_t peak_buffer_bytes_ = 0;
};

}  // namespace twochains::net
