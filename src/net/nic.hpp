// RDMA NIC + link model (ConnectX-6-class HCA over PCIe Gen4, 200 Gb/s,
// back-to-back — the paper's interconnect, §VI-C).
//
// A one-sided put moves through a fixed pipeline:
//
//   doorbell -> sender DMA read (PCIe) -> wire serialization + propagation
//            -> receiver HCA processing -> rkey check -> DMA write
//            -> cache action (LLC stash or DRAM delivery) -> delivered
//
// Bytes are captured at DMA-read time (so later sender-side writes cannot
// corrupt an in-flight message) and become visible in receiver memory at
// delivery time. Stage occupancy is tracked per NIC and per link direction,
// which is what limits streaming message rate and bandwidth.
//
// Topology: a NIC carries one back-to-back cable per ConnectTo() call, so
// N-host fabrics (full mesh, star/incast) are built from pairwise links.
// Outbound serialization and in-order delivery are tracked per link
// direction; the send engine (doorbell/DMA-read path) is shared across all
// of a NIC's links, and inbound DMA-write occupancy is shared across all
// links delivering *into* a NIC — the PCIe write path is what an incast of
// senders ultimately contends on.
//
// Ordering: when `enforce_write_ordering` is set (true for the paper's
// testbed: "Modern servers like the one we use ... enforce ordering"),
// deliveries on a link direction happen in post order. When cleared, each
// delivery suffers an extra deterministic pseudo-random skew, so a signal
// written in the same put train can land before its payload — unless the
// posting NIC was told to fence. This is the configuration the mailbox
// protocol's separate-signal-put mode exists for (Fig. 1 of the paper).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/units.hpp"
#include "mem/region.hpp"
#include "net/host.hpp"
#include "sim/engine.hpp"

namespace twochains::net {

class Switch;

struct NicConfig {
  double wire_gbps = 200.0;          ///< link bandwidth (Gb/s)
  double pcie_gbps = 252.0;          ///< PCIe Gen4 x16 effective (Gb/s)
  double doorbell_ns = 70.0;         ///< CPU MMIO post to HCA
  double dma_read_overhead_ns = 180.0;  ///< PCIe round trip to fetch payload
  double wire_latency_ns = 250.0;    ///< propagation, back-to-back cable
  double rx_processing_ns = 160.0;   ///< receiver HCA packet processing
  double per_message_ns = 40.0;      ///< per-WQE send engine occupancy
  bool enforce_write_ordering = true;
  /// Max skew added to deliveries when ordering is NOT enforced.
  double reorder_window_ns = 400.0;
  /// Deliver inbound bytes into the LLC (cache stashing) or DRAM. On a
  /// multi-domain host the stash lands in the target address's *home
  /// domain's* LLC slice — next to the cores that own the bank when the
  /// runtime places banks domain-aware.
  bool stash_to_llc = true;
};

/// Sender-visible completion of a posted operation.
struct PutCompletion {
  Status status = Status::Ok();
  PicoTime delivered_at = 0;
  /// True when a switch on the path ECN-marked the frame (congested
  /// egress queue). Always false on direct-cabled paths.
  bool ecn_marked = false;
};

class Nic {
 public:
  using DeliveredFn = std::function<void(const PutCompletion&)>;

  Nic(sim::Engine& engine, Host& host, NicConfig config);

  /// Wires this NIC back-to-back with @p peer (both directions). A NIC may
  /// be connected to many peers, one dedicated cable each. Re-cabling an
  /// already-linked pair fails with kAlreadyExists — a duplicate cable
  /// would silently shadow the first cable's wire state — and a
  /// self-connect fails with kInvalidArgument.
  Status ConnectTo(Nic& peer);

  /// Attaches this NIC's uplink to a switch port: puts toward peers with
  /// no direct cable serialize onto this uplink (at @p gbps, one cable
  /// latency of @p latency_ns to the switch) and are routed hop by hop.
  /// One uplink per NIC (re-attaching replaces it); direct cables keep
  /// priority when both exist.
  void AttachUplink(Switch& sw, double gbps, double latency_ns) noexcept;
  /// True when an uplink switch port is attached.
  bool HasUplink() const noexcept { return uplink_.sw != nullptr; }
  /// True when a put to @p peer can be carried: a direct cable, or both
  /// ends attached to a switched fabric.
  bool CanReach(const Nic& peer) const noexcept {
    return ConnectedTo(peer) || (HasUplink() && peer.HasUplink());
  }

  Host& host() noexcept { return host_; }
  const NicConfig& config() const noexcept { return config_; }
  /// Reconfigures delivery mode (the paper's firmware stashing toggle).
  void set_stash_to_llc(bool on) noexcept { config_.stash_to_llc = on; }

  /// Virtual engine lane this NIC's host lives on (the fabric wires one
  /// lane per host). Receive-side events (HCA processing, DMA write,
  /// delivery) run on the *destination* NIC's lane; sender-side events
  /// (post, completion) on the poster's. Lane 0 — the default — is correct
  /// for single-lane testbeds.
  void set_lane(std::uint32_t lane) noexcept { lane_ = lane; }
  std::uint32_t lane() const noexcept { return lane_; }

  /// Number of back-to-back links this NIC carries.
  std::size_t link_count() const noexcept { return links_.size(); }
  /// True when a cable to @p peer exists.
  bool ConnectedTo(const Nic& peer) const noexcept;

  /// Posts a one-sided RDMA put of [local_addr, +size) from this host into
  /// [remote_addr, +size) on @p dst, authorized by @p rkey. @p dst must be
  /// one of this NIC's connected peers.
  ///
  /// @p fence orders this put after every previously posted put has been
  /// delivered (IBTA fence semantics).
  /// @p on_delivered fires at the simulated instant the bytes are visible in
  /// remote memory (or with an error status if the rkey check failed) and
  /// runs on the *destination* lane — receive-side logic only.
  /// @p on_complete is the sender-visible CQE: it fires one wire latency
  /// after delivery, back on this NIC's lane — the place for sender-side
  /// bookkeeping (completion tracking, windows).
  Status PostPut(Nic& dst, mem::VirtAddr local_addr, mem::VirtAddr remote_addr,
                 std::uint64_t size, mem::RKey rkey, bool fence = false,
                 DeliveredFn on_delivered = nullptr,
                 DeliveredFn on_complete = nullptr);

  /// Posts an 8-byte immediate put into @p dst (value supplied inline, no
  /// sender DMA read) — used for signals and flow-control flags.
  Status PostInlinePut(Nic& dst, std::uint64_t value,
                       mem::VirtAddr remote_addr, mem::RKey rkey,
                       bool fence = false, DeliveredFn on_delivered = nullptr,
                       DeliveredFn on_complete = nullptr);

  /// Single-link conveniences: post to the first connected peer (the
  /// two-host back-to-back shape of the paper's testbed).
  Status PostPut(mem::VirtAddr local_addr, mem::VirtAddr remote_addr,
                 std::uint64_t size, mem::RKey rkey, bool fence = false,
                 DeliveredFn on_delivered = nullptr,
                 DeliveredFn on_complete = nullptr);
  Status PostInlinePut(std::uint64_t value, mem::VirtAddr remote_addr,
                       mem::RKey rkey, bool fence = false,
                       DeliveredFn on_delivered = nullptr,
                       DeliveredFn on_complete = nullptr);

  /// Number of puts posted since construction.
  std::uint64_t puts_posted() const noexcept { return puts_posted_; }
  /// Number of deliveries rejected by rkey validation.
  std::uint64_t rkey_rejections() const noexcept { return rkey_rejections_; }
  /// Total payload bytes delivered into this NIC's host.
  std::uint64_t bytes_delivered() const noexcept { return bytes_delivered_; }
  /// Inbound ops that arrived carrying an ECN mark. The fabric-wide mark
  /// ledger the soak suite reconciles: at quiescence the sum of this over
  /// a fabric's NICs equals the sum of Switch::frames_marked over its
  /// switches (marks are set exactly once and never dropped).
  std::uint64_t ecn_marks_delivered() const noexcept {
    return ecn_marks_delivered_;
  }

  /// Simulated time at which the send engine becomes free (tests).
  PicoTime send_engine_free_at() const noexcept { return tx_free_at_; }

 private:
  friend class Switch;

  struct Op {
    std::vector<std::uint8_t> bytes;
    mem::VirtAddr remote_addr;
    mem::RKey rkey;
    bool fence;
    bool inline_op;
    /// Set (once) by the first congested switch on the path; surfaces to
    /// the sender and receiver via PutCompletion::ecn_marked.
    bool ecn_marked = false;
    DeliveredFn on_delivered;
    DeliveredFn on_complete;
    /// Uncontended delivery estimate from post time; when rx contention
    /// pushes the real delivery later, the sender's fence state learns the
    /// correction via the completion event.
    PicoTime est_deliver = 0;
  };

  /// One back-to-back cable: outbound serialization + in-order delivery
  /// state for the direction this NIC transmits on.
  struct Link {
    Nic* peer = nullptr;
    PicoTime wire_free_at = 0;        ///< outbound link direction
    PicoTime last_sched_delivery = 0; ///< for in-order delivery
  };

  /// This NIC's uplink into a switched fabric (Topology::kTree): puts to
  /// peers with no direct cable serialize here and hop through switches.
  struct Uplink {
    Switch* sw = nullptr;
    double gbps = 0;
    double latency_ns = 0;
    PicoTime wire_free_at = 0;  ///< host -> switch serialization occupancy
  };

  Link* FindLink(const Nic* dst) noexcept;
  Status PostOp(Op op, mem::VirtAddr local_addr, Link& link);
  /// Switched-path post: sender pipeline + uplink serialization, then the
  /// frame head is handed to the uplink switch one cable latency later.
  Status PostSwitchedOp(Op op, mem::VirtAddr local_addr, Nic& dst);
  /// Final switched hop into this NIC (called by the last switch, on that
  /// switch's lane): resolves inbound DMA-write contention at the frame
  /// tail's arrival instant — exactly like the direct-cable rx path — and
  /// delivers. @p src is the posting NIC (completions ride back to it).
  void ArriveFromSwitch(Op op, Nic* src, PicoTime tail_arrival);
  void DeliverAt(PicoTime when, Op op, Nic* dst);
  void FinishOp(Op op, const PutCompletion& completion);

  PicoTime GbpsToDuration(double gbps, std::uint64_t bytes) const noexcept {
    if (gbps <= 0) return 0;
    const double ns = static_cast<double>(bytes) * 8.0 / gbps;
    return Nanoseconds(ns);
  }

  sim::Engine& engine_;
  Host& host_;
  NicConfig config_;
  std::vector<Link> links_;
  Uplink uplink_;

  std::uint32_t lane_ = 0;       ///< virtual engine lane of this NIC's host
  PicoTime tx_free_at_ = 0;      ///< send engine (DMA read + WQE processing)
  PicoTime last_delivery_at_ = 0;  ///< for fence semantics
  /// Inbound DMA-write engine occupancy: shared across every link that
  /// delivers into this NIC (the incast bottleneck at the PCIe write path).
  PicoTime rx_busy_until_ = 0;
  Xoshiro256 reorder_rng_{0x0dd5eedull};

  std::uint64_t puts_posted_ = 0;
  std::uint64_t rkey_rejections_ = 0;
  std::uint64_t bytes_delivered_ = 0;
  std::uint64_t ecn_marks_delivered_ = 0;
};

/// Reliable, in-order, out-of-band control channel between two hosts
/// (models the TCP/management-network bootstrap path used to exchange rkeys
/// and synchronize namespaces; §V: "the target process has to provide the
/// RKEY to the RDMA initiator through an out-of-band channel").
class ControlChannel {
 public:
  using Handler = std::function<void(std::vector<std::uint8_t>)>;

  ControlChannel(sim::Engine& engine, double latency_us = 15.0)
      : engine_(engine), latency_(Microseconds(latency_us)) {}

  /// Registers the message handler for @p host_id. @p lane is the virtual
  /// engine lane the handler runs on (the host's lane in a laned fabric).
  void SetHandler(int host_id, Handler handler, std::uint32_t lane = 0);

  /// Sends @p payload to @p dst_host; its handler runs after the channel
  /// latency, in send order, on the handler's registered lane.
  Status Send(int dst_host, std::vector<std::uint8_t> payload);

 private:
  struct Entry {
    int host_id;
    std::uint32_t lane;
    Handler handler;
  };
  sim::Engine& engine_;
  PicoTime latency_;
  PicoTime next_free_ = 0;
  std::vector<Entry> handlers_;
};

}  // namespace twochains::net
