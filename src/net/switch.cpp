#include "net/switch.hpp"

#include <algorithm>
#include <utility>

#include "common/log.hpp"
#include "common/strfmt.hpp"

namespace twochains::net {

namespace {
PicoTime SerializationTime(double gbps, std::uint64_t bytes) noexcept {
  if (gbps <= 0) return 0;
  return Nanoseconds(static_cast<double>(bytes) * 8.0 / gbps);
}
}  // namespace

Switch::Switch(sim::Engine& engine, SwitchConfig config, std::string name)
    : engine_(engine), config_(config), name_(std::move(name)) {
  if (config_.forward_latency_ns < 0) {
    TC_WARN << name_ << ": negative forward_latency_ns clamped to 0";
    config_.forward_latency_ns = 0;
  }
  if (config_.wire_latency_ns < 0) {
    TC_WARN << name_ << ": negative wire_latency_ns clamped to 0";
    config_.wire_latency_ns = 0;
  }
  if (config_.buffer_bytes == 0) {
    TC_WARN << name_
            << ": buffer_bytes=0 could never admit a frame; clamped to 256 KiB";
    config_.buffer_bytes = KiB(256);
  }
  if (config_.ecn_threshold_bytes > config_.buffer_bytes) {
    TC_WARN << name_ << ": ecn_threshold_bytes "
            << config_.ecn_threshold_bytes << " exceeds buffer_bytes "
            << config_.buffer_bytes << " (dead knob); clamped to the buffer";
    config_.ecn_threshold_bytes = config_.buffer_bytes;
  }
}

std::uint32_t Switch::AttachNic(Nic& nic, double gbps) {
  Port port;
  port.nic = &nic;
  port.gbps = gbps;
  ports_.push_back(port);
  return static_cast<std::uint32_t>(ports_.size() - 1);
}

std::uint32_t Switch::AttachSwitch(Switch& next, double gbps) {
  Port port;
  port.next = &next;
  port.gbps = gbps;
  ports_.push_back(port);
  return static_cast<std::uint32_t>(ports_.size() - 1);
}

Status Switch::SetRoute(const Nic* dst, std::uint32_t port) {
  if (port >= ports_.size()) {
    return InvalidArgument(StrFormat("%s: route to port %u but only %zu ports",
                                     name_.c_str(), port, ports_.size()));
  }
  for (auto& route : routes_) {
    if (route.first == dst) {
      route.second = port;
      return Status::Ok();
    }
  }
  routes_.emplace_back(dst, port);
  return Status::Ok();
}

void Switch::ScheduleIngress(Nic::Op op, Nic* src, Nic* dst,
                             PicoTime head_arrival) {
  engine_.ScheduleAtOn(
      lane_, head_arrival,
      [this, src, dst, op = std::move(op)]() mutable {
        Transit t;
        t.op = std::move(op);
        t.src = src;
        t.dst = dst;
        Ingress(std::move(t));
      },
      "switch.ingress");
}

void Switch::Ingress(Transit t) {
  const PicoTime now = engine_.Now();
  PurgeReleased(now);
  const std::uint64_t size = t.op.bytes.size();
  // Hold when the shared buffer cannot take the frame — or when earlier
  // frames are already held, so a small frame can never overtake a big
  // one that is waiting (order within a path is preserved). A frame
  // bigger than the whole buffer is still admitted once the buffer is
  // empty; holding it forever would wedge the fabric.
  const bool fits = buffer_used_ + size <= config_.buffer_bytes ||
                    (buffer_used_ == 0 && size > config_.buffer_bytes);
  if (!pending_.empty() || !fits) {
    ++backpressure_holds_;
    pending_.push_back(std::move(t));
    ArmWake();
    return;
  }
  Admit(std::move(t), now);
}

void Switch::Admit(Transit t, PicoTime now) {
  const Nic* dst = t.dst;
  std::uint32_t port_idx = ports_.size();
  for (const auto& route : routes_) {
    if (route.first == dst) {
      port_idx = route.second;
      break;
    }
  }
  if (port_idx >= ports_.size()) {
    // Wiring bug: the fabric never built a route for this destination.
    // The invariant harness asserts this counter stays zero.
    ++frames_dropped_;
    TC_WARN << name_ << ": no route for destination NIC, frame dropped";
    return;
  }
  Port& port = ports_[port_idx];
  const std::uint64_t size = t.op.bytes.size();

  buffer_used_ += size;
  peak_buffer_bytes_ = std::max(peak_buffer_bytes_, buffer_used_);
  port.queued_bytes += size;

  // ECN: mark on admission when this egress queue (including the frame
  // itself) is over threshold. Inline ops (signals, bank flags) carry the
  // flag word itself and are never marked; freshly-marked only, so the
  // fabric-wide ledger counts each mark exactly once.
  if (port.queued_bytes > config_.ecn_threshold_bytes && !t.op.inline_op &&
      !t.op.ecn_marked) {
    t.op.ecn_marked = true;
    ++frames_marked_;
  }

  // Cut-through egress: the head starts re-serializing after the
  // forwarding pipeline, no earlier than the port frees up.
  const PicoTime start =
      std::max(now + Nanoseconds(config_.forward_latency_ns),
               port.wire_free_at);
  const PicoTime ser_end = start + SerializationTime(port.gbps, size);
  port.wire_free_at = ser_end;
  releases_.push(Release{ser_end, size, port_idx});
  ++frames_forwarded_;

  const PicoTime wire = Nanoseconds(config_.wire_latency_ns);
  if (port.nic != nullptr) {
    // Last hop: the destination NIC waits for the frame *tail*.
    port.nic->ArriveFromSwitch(std::move(t.op), t.src, ser_end + wire);
  } else {
    // Switch-to-switch: hand the head over head-timed, so an uncontended
    // multi-hop path costs exactly the sum of its latencies.
    port.next->ScheduleIngress(std::move(t.op), t.src, t.dst, start + wire);
  }
}

void Switch::PurgeReleased(PicoTime now) {
  while (!releases_.empty() && releases_.top().at <= now) {
    const Release r = releases_.top();
    releases_.pop();
    buffer_used_ -= r.bytes;
    ports_[r.port].queued_bytes -= r.bytes;
  }
}

void Switch::ArmWake() {
  if (wake_armed_ || releases_.empty()) return;
  wake_armed_ = true;
  const PicoTime at = std::max(releases_.top().at, engine_.Now());
  engine_.ScheduleAtOn(
      lane_, at,
      [this]() {
        wake_armed_ = false;
        const PicoTime now = engine_.Now();
        PurgeReleased(now);
        while (!pending_.empty()) {
          const std::uint64_t size = pending_.front().op.bytes.size();
          const bool fits =
              buffer_used_ + size <= config_.buffer_bytes ||
              (buffer_used_ == 0 && size > config_.buffer_bytes);
          if (!fits) break;
          Transit t = std::move(pending_.front());
          pending_.pop_front();
          Admit(std::move(t), now);
        }
        if (!pending_.empty()) ArmWake();
      },
      "switch.wake");
}

}  // namespace twochains::net
