#include "net/nic.hpp"

#include <algorithm>
#include <cstring>

#include "common/log.hpp"
#include "common/strfmt.hpp"

namespace twochains::net {

Nic::Nic(sim::Engine& engine, Host& host, NicConfig config)
    : engine_(engine), host_(host), config_(config) {}

void Nic::ConnectTo(Nic& peer) noexcept {
  peer_ = &peer;
  peer.peer_ = this;
}

Status Nic::PostPut(mem::VirtAddr local_addr, mem::VirtAddr remote_addr,
                    std::uint64_t size, mem::RKey rkey, bool fence,
                    DeliveredFn on_delivered) {
  if (peer_ == nullptr) return FailedPrecondition("NIC not connected");
  if (size == 0) return InvalidArgument("zero-length put");
  Op op;
  op.bytes.resize(size);
  op.remote_addr = remote_addr;
  op.rkey = rkey;
  op.fence = fence;
  op.inline_op = false;
  op.on_delivered = std::move(on_delivered);
  return PostOp(std::move(op), local_addr);
}

Status Nic::PostInlinePut(std::uint64_t value, mem::VirtAddr remote_addr,
                          mem::RKey rkey, bool fence,
                          DeliveredFn on_delivered) {
  if (peer_ == nullptr) return FailedPrecondition("NIC not connected");
  Op op;
  op.bytes.resize(sizeof(value));
  std::memcpy(op.bytes.data(), &value, sizeof(value));
  op.remote_addr = remote_addr;
  op.rkey = rkey;
  op.fence = fence;
  op.inline_op = true;
  op.on_delivered = std::move(on_delivered);
  return PostOp(std::move(op), /*local_addr=*/0);
}

Status Nic::PostOp(Op op, mem::VirtAddr local_addr) {
  const PicoTime now = engine_.Now();
  const std::uint64_t size = op.bytes.size();

  // Doorbell: the posting CPU writes the WQE to the HCA over PCIe.
  PicoTime t = now + Nanoseconds(config_.doorbell_ns);

  // Fence: the HCA holds this WQE until every prior op has been delivered.
  if (op.fence) t = std::max(t, last_delivery_at_);

  // Send engine occupancy (one WQE at a time) + payload DMA read.
  t = std::max(t, tx_free_at_);
  t += Nanoseconds(config_.per_message_ns);
  if (!op.inline_op) {
    t += Nanoseconds(config_.dma_read_overhead_ns);
    t += GbpsToDuration(config_.pcie_gbps, size);
    // Capture the payload bytes *now* in simulation order: schedule the
    // snapshot at DMA time would race with CPU writes scheduled in between,
    // so the model snapshots at post time — the sender contract for put_nbi
    // is that the buffer must be stable until local completion anyway.
    TC_RETURN_IF_ERROR(host_.memory().DmaRead(
        local_addr, std::span<std::uint8_t>(op.bytes.data(), size)));
  }
  tx_free_at_ = t;

  // Wire: serialize after the link direction frees up.
  PicoTime wire_start = std::max(t, wire_free_at_);
  PicoTime wire_end = wire_start + GbpsToDuration(config_.wire_gbps, size);
  wire_free_at_ = wire_end;

  // Arrival: propagation + receiver HCA processing.
  PicoTime deliver_at =
      wire_end + Nanoseconds(config_.wire_latency_ns + config_.rx_processing_ns);

  if (!config_.enforce_write_ordering && !op.fence) {
    // Relaxed ordering: this op may be skewed past ops posted after it.
    deliver_at += Nanoseconds(static_cast<double>(
        reorder_rng_.NextBelow(static_cast<std::uint64_t>(
            std::max(1.0, config_.reorder_window_ns)))));
  } else {
    // In-order delivery: never before anything already scheduled.
    deliver_at = std::max(deliver_at, last_sched_delivery_);
  }
  last_sched_delivery_ = std::max(last_sched_delivery_, deliver_at);
  last_delivery_at_ = std::max(last_delivery_at_, deliver_at);

  ++puts_posted_;
  DeliverAt(deliver_at, std::move(op));
  return Status::Ok();
}

void Nic::DeliverAt(PicoTime when, Op op) {
  Nic* dst = peer_;
  engine_.ScheduleAt(
      when,
      [this, dst, op = std::move(op)]() mutable {
        const std::uint64_t size = op.bytes.size();
        PutCompletion completion;
        completion.delivered_at = engine_.Now();

        // Hardware-level rkey validation at the target HCA.
        auto region = dst->host_.regions().Validate(
            op.rkey, op.remote_addr, size, mem::RemoteAccess::kWrite);
        if (!region.ok()) {
          ++dst->rkey_rejections_;
          completion.status = region.status();
          TC_DEBUG << "put rejected: " << region.status();
          if (op.on_delivered) op.on_delivered(completion);
          return;
        }

        // DMA write into target memory, then the cache action that the
        // whole paper hinges on: stash into LLC or push to DRAM.
        Status wr = dst->host_.memory().DmaWrite(
            op.remote_addr,
            std::span<const std::uint8_t>(op.bytes.data(), size));
        if (!wr.ok()) {
          completion.status = wr;
          if (op.on_delivered) op.on_delivered(completion);
          return;
        }
        if (dst->config_.stash_to_llc) {
          dst->host_.caches().StashDeliver(op.remote_addr, size);
        } else {
          dst->host_.caches().DramDeliver(op.remote_addr, size);
        }
        dst->bytes_delivered_ += size;
        if (op.on_delivered) op.on_delivered(completion);
      },
      "nic.deliver");
}

void ControlChannel::SetHandler(int host_id, Handler handler) {
  for (auto& [id, h] : handlers_) {
    if (id == host_id) {
      h = std::move(handler);
      return;
    }
  }
  handlers_.emplace_back(host_id, std::move(handler));
}

Status ControlChannel::Send(int dst_host, std::vector<std::uint8_t> payload) {
  Handler* handler = nullptr;
  for (auto& [id, h] : handlers_) {
    if (id == dst_host) handler = &h;
  }
  if (handler == nullptr || !*handler) {
    return NotFound(StrFormat("no control handler for host %d", dst_host));
  }
  const PicoTime when = std::max(engine_.Now() + latency_, next_free_);
  next_free_ = when;  // in-order delivery
  Handler h = *handler;  // copy: handler may be replaced before delivery
  engine_.ScheduleAt(
      when,
      [h = std::move(h), payload = std::move(payload)]() mutable {
        h(std::move(payload));
      },
      "control.deliver");
  return Status::Ok();
}

}  // namespace twochains::net
