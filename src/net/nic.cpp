#include "net/nic.hpp"

#include <algorithm>
#include <cstring>

#include "common/log.hpp"
#include "common/strfmt.hpp"
#include "net/switch.hpp"

namespace twochains::net {

Nic::Nic(sim::Engine& engine, Host& host, NicConfig config)
    : engine_(engine), host_(host), config_(config) {}

Status Nic::ConnectTo(Nic& peer) {
  if (&peer == this) {
    return InvalidArgument("cannot cable a NIC to itself");
  }
  if (FindLink(&peer) != nullptr) {
    return AlreadyExists(StrFormat(
        "hosts %d and %d are already cabled — a duplicate cable would "
        "shadow the existing link's wire state",
        host_.config().host_id, peer.host_.config().host_id));
  }
  links_.push_back(Link{&peer});
  peer.links_.push_back(Link{this});
  return Status::Ok();
}

void Nic::AttachUplink(Switch& sw, double gbps, double latency_ns) noexcept {
  uplink_.sw = &sw;
  uplink_.gbps = gbps;
  uplink_.latency_ns = latency_ns;
  uplink_.wire_free_at = 0;
}

bool Nic::ConnectedTo(const Nic& peer) const noexcept {
  for (const auto& link : links_) {
    if (link.peer == &peer) return true;
  }
  return false;
}

Nic::Link* Nic::FindLink(const Nic* dst) noexcept {
  for (auto& link : links_) {
    if (link.peer == dst) return &link;
  }
  return nullptr;
}

Status Nic::PostPut(Nic& dst, mem::VirtAddr local_addr,
                    mem::VirtAddr remote_addr, std::uint64_t size,
                    mem::RKey rkey, bool fence, DeliveredFn on_delivered,
                    DeliveredFn on_complete) {
  Link* link = FindLink(&dst);
  if (link == nullptr && !CanReach(dst)) {
    return FailedPrecondition("NIC not connected");
  }
  if (size == 0) return InvalidArgument("zero-length put");
  Op op;
  op.bytes.resize(size);
  op.remote_addr = remote_addr;
  op.rkey = rkey;
  op.fence = fence;
  op.inline_op = false;
  op.on_delivered = std::move(on_delivered);
  op.on_complete = std::move(on_complete);
  if (link == nullptr) return PostSwitchedOp(std::move(op), local_addr, dst);
  return PostOp(std::move(op), local_addr, *link);
}

Status Nic::PostInlinePut(Nic& dst, std::uint64_t value,
                          mem::VirtAddr remote_addr, mem::RKey rkey,
                          bool fence, DeliveredFn on_delivered,
                          DeliveredFn on_complete) {
  Link* link = FindLink(&dst);
  if (link == nullptr && !CanReach(dst)) {
    return FailedPrecondition("NIC not connected");
  }
  Op op;
  op.bytes.resize(sizeof(value));
  std::memcpy(op.bytes.data(), &value, sizeof(value));
  op.remote_addr = remote_addr;
  op.rkey = rkey;
  op.fence = fence;
  op.inline_op = true;
  op.on_delivered = std::move(on_delivered);
  op.on_complete = std::move(on_complete);
  if (link == nullptr) return PostSwitchedOp(std::move(op), /*local_addr=*/0,
                                             dst);
  return PostOp(std::move(op), /*local_addr=*/0, *link);
}

Status Nic::PostPut(mem::VirtAddr local_addr, mem::VirtAddr remote_addr,
                    std::uint64_t size, mem::RKey rkey, bool fence,
                    DeliveredFn on_delivered, DeliveredFn on_complete) {
  if (links_.empty()) return FailedPrecondition("NIC not connected");
  return PostPut(*links_.front().peer, local_addr, remote_addr, size, rkey,
                 fence, std::move(on_delivered), std::move(on_complete));
}

Status Nic::PostInlinePut(std::uint64_t value, mem::VirtAddr remote_addr,
                          mem::RKey rkey, bool fence, DeliveredFn on_delivered,
                          DeliveredFn on_complete) {
  if (links_.empty()) return FailedPrecondition("NIC not connected");
  return PostInlinePut(*links_.front().peer, value, remote_addr, rkey, fence,
                       std::move(on_delivered), std::move(on_complete));
}

Status Nic::PostOp(Op op, mem::VirtAddr local_addr, Link& link) {
  const PicoTime now = engine_.Now();
  const std::uint64_t size = op.bytes.size();
  Nic* dst = link.peer;

  // Doorbell: the posting CPU writes the WQE to the HCA over PCIe.
  PicoTime t = now + Nanoseconds(config_.doorbell_ns);

  // Fence: the HCA holds this WQE until every prior op has been delivered.
  if (op.fence) t = std::max(t, last_delivery_at_);

  // Send engine occupancy (one WQE at a time, shared across all links) +
  // payload DMA read.
  t = std::max(t, tx_free_at_);
  t += Nanoseconds(config_.per_message_ns);
  if (!op.inline_op) {
    t += Nanoseconds(config_.dma_read_overhead_ns);
    t += GbpsToDuration(config_.pcie_gbps, size);
    // Capture the payload bytes *now* in simulation order: schedule the
    // snapshot at DMA time would race with CPU writes scheduled in between,
    // so the model snapshots at post time — the sender contract for put_nbi
    // is that the buffer must be stable until local completion anyway.
    TC_RETURN_IF_ERROR(host_.memory().DmaRead(
        local_addr, std::span<std::uint8_t>(op.bytes.data(), size)));
  }
  tx_free_at_ = t;

  // Wire: serialize after this cable's transmit direction frees up.
  PicoTime wire_start = std::max(t, link.wire_free_at);
  PicoTime wire_end = wire_start + GbpsToDuration(config_.wire_gbps, size);
  link.wire_free_at = wire_end;

  // Arrival: propagation to the destination HCA. The uncontended delivery
  // estimate (arrival + rx processing) drives ordering and fence state;
  // contention for the destination's inbound DMA-write engine is resolved
  // at the arrival instant below, in true arrival order.
  const PicoTime arrival = wire_end + Nanoseconds(config_.wire_latency_ns);
  const PicoTime rx_proc = Nanoseconds(config_.rx_processing_ns);
  PicoTime deliver_at = arrival + rx_proc;

  if (!config_.enforce_write_ordering && !op.fence) {
    // Relaxed ordering: this op may be skewed past ops posted after it.
    deliver_at += Nanoseconds(static_cast<double>(
        reorder_rng_.NextBelow(static_cast<std::uint64_t>(
            std::max(1.0, config_.reorder_window_ns)))));
  } else {
    // In-order delivery: never before anything already scheduled on this
    // link direction.
    deliver_at = std::max(deliver_at, link.last_sched_delivery);
  }
  link.last_sched_delivery = std::max(link.last_sched_delivery, deliver_at);
  last_delivery_at_ = std::max(last_delivery_at_, deliver_at);

  ++puts_posted_;

  // Inbound DMA-write engine at the destination: occupancy is shared across
  // every link delivering into @p dst — the incast bottleneck at the PCIe
  // write path. Arbitrated when the frame actually arrives (events fire in
  // time order), so an incast of senders queues first-come-first-served
  // regardless of how far ahead any one sender's wire is backed up. From
  // here on the op runs on the destination's lane: rx contention and
  // delivery touch only destination state, and the sender learns the true
  // delivery time via the completion event one wire latency later.
  op.est_deliver = deliver_at;
  const PicoTime rx_occupancy =
      dst->GbpsToDuration(dst->config_.pcie_gbps, size);
  engine_.ScheduleAtOn(
      dst->lane_, deliver_at - rx_proc,
      [this, dst, rx_occupancy, rx_proc, op = std::move(op)]() mutable {
        const PicoTime rx_start = std::max(engine_.Now(), dst->rx_busy_until_);
        dst->rx_busy_until_ = rx_start + rx_occupancy;
        DeliverAt(rx_start + rx_proc, std::move(op), dst);
      },
      "nic.rx");
  return Status::Ok();
}

Status Nic::PostSwitchedOp(Op op, mem::VirtAddr local_addr, Nic& dst) {
  const PicoTime now = engine_.Now();
  const std::uint64_t size = op.bytes.size();

  // Sender pipeline: identical to the direct-cabled head of PostOp —
  // doorbell, fence hold, shared send-engine occupancy, payload DMA read.
  PicoTime t = now + Nanoseconds(config_.doorbell_ns);
  if (op.fence) t = std::max(t, last_delivery_at_);
  t = std::max(t, tx_free_at_);
  t += Nanoseconds(config_.per_message_ns);
  if (!op.inline_op) {
    t += Nanoseconds(config_.dma_read_overhead_ns);
    t += GbpsToDuration(config_.pcie_gbps, size);
    TC_RETURN_IF_ERROR(host_.memory().DmaRead(
        local_addr, std::span<std::uint8_t>(op.bytes.data(), size)));
  }
  tx_free_at_ = t;

  // Uplink wire: serialize toward the ToR after the uplink frees up.
  const PicoTime wire_start = std::max(t, uplink_.wire_free_at);
  const PicoTime wire_end = wire_start + GbpsToDuration(uplink_.gbps, size);
  uplink_.wire_free_at = wire_end;

  // The true delivery time depends on queueing inside the switches, which
  // is resolved hop by hop in arrival order — unknowable at post time. A
  // zero estimate forces the CQE event to always be scheduled, and the
  // fence state tracks the best-known lower bound until the CQE corrects
  // it with the real delivery instant.
  op.est_deliver = 0;
  last_delivery_at_ =
      std::max(last_delivery_at_,
               wire_end + Nanoseconds(uplink_.latency_ns) +
                   Nanoseconds(config_.rx_processing_ns));
  ++puts_posted_;

  // Hand the frame head to the first switch one cable latency after it
  // starts serializing (cut-through: the switch sees the head while the
  // tail is still on this wire). The cable latency keeps the cross-lane
  // schedule at or beyond the engine's lookahead horizon.
  uplink_.sw->ScheduleIngress(std::move(op), this, &dst,
                              wire_start + Nanoseconds(uplink_.latency_ns));
  return Status::Ok();
}

void Nic::ArriveFromSwitch(Op op, Nic* src, PicoTime tail_arrival) {
  // Called from the last switch's lane; hop to this (destination) NIC's
  // lane at the instant the frame tail arrives, then resolve inbound
  // DMA-write contention in true arrival order exactly like the
  // direct-cabled path does.
  const std::uint64_t size = op.bytes.size();
  const PicoTime rx_proc = Nanoseconds(config_.rx_processing_ns);
  const PicoTime rx_occupancy = GbpsToDuration(config_.pcie_gbps, size);
  engine_.ScheduleAtOn(
      lane_, tail_arrival,
      [this, src, rx_occupancy, rx_proc, op = std::move(op)]() mutable {
        const PicoTime rx_start = std::max(engine_.Now(), rx_busy_until_);
        rx_busy_until_ = rx_start + rx_occupancy;
        src->DeliverAt(rx_start + rx_proc, std::move(op), this);
      },
      "nic.rx");
}

void Nic::DeliverAt(PicoTime when, Op op, Nic* dst) {
  // Runs on the destination lane (called from the nic.rx event there);
  // ScheduleAt inherits that lane.
  engine_.ScheduleAt(
      when,
      [this, dst, op = std::move(op)]() mutable {
        const std::uint64_t size = op.bytes.size();
        PutCompletion completion;
        completion.delivered_at = engine_.Now();
        completion.ecn_marked = op.ecn_marked;
        // Count marks on every arrival (before validation): the fabric
        // mark ledger reconciles against switch-side marking, which has
        // no view of rkey validity.
        if (op.ecn_marked) ++dst->ecn_marks_delivered_;

        // Hardware-level rkey validation at the target HCA.
        auto region = dst->host_.regions().Validate(
            op.rkey, op.remote_addr, size, mem::RemoteAccess::kWrite);
        if (!region.ok()) {
          ++dst->rkey_rejections_;
          completion.status = region.status();
          TC_DEBUG << "put rejected: " << region.status();
          if (op.on_delivered) op.on_delivered(completion);
          FinishOp(std::move(op), completion);
          return;
        }

        // DMA write into target memory, then the cache action that the
        // whole paper hinges on: stash into the target's home-domain LLC
        // slice or push to (that domain's) DRAM.
        Status wr = dst->host_.memory().DmaWrite(
            op.remote_addr,
            std::span<const std::uint8_t>(op.bytes.data(), size));
        if (!wr.ok()) {
          completion.status = wr;
          if (op.on_delivered) op.on_delivered(completion);
          FinishOp(std::move(op), completion);
          return;
        }
        if (dst->config_.stash_to_llc) {
          dst->host_.caches().StashDeliver(op.remote_addr, size);
        } else {
          dst->host_.caches().DramDeliver(op.remote_addr, size);
        }
        dst->bytes_delivered_ += size;
        if (op.on_delivered) op.on_delivered(completion);
        FinishOp(std::move(op), completion);
      },
      "nic.deliver");
}

void Nic::FinishOp(Op op, const PutCompletion& completion) {
  // The sender-side CQE: one wire latency after delivery (the ack's return
  // trip), back on this NIC's lane — which is also what keeps the schedule
  // inside the lookahead horizon when lanes run in parallel. Skipped
  // entirely when nothing observes it: no completion callback, and the
  // post-time fence estimate already covers the real delivery time.
  const PicoTime deliver = completion.delivered_at;
  if (!op.on_complete && deliver <= op.est_deliver) return;
  engine_.ScheduleAtOn(
      lane_, deliver + Nanoseconds(config_.wire_latency_ns),
      [this, deliver, completion,
       on_complete = std::move(op.on_complete)]() mutable {
        last_delivery_at_ = std::max(last_delivery_at_, deliver);
        if (on_complete) on_complete(completion);
      },
      "nic.complete");
}

void ControlChannel::SetHandler(int host_id, Handler handler,
                                std::uint32_t lane) {
  for (auto& entry : handlers_) {
    if (entry.host_id == host_id) {
      entry.handler = std::move(handler);
      entry.lane = lane;
      return;
    }
  }
  handlers_.push_back(Entry{host_id, lane, std::move(handler)});
}

Status ControlChannel::Send(int dst_host, std::vector<std::uint8_t> payload) {
  Entry* entry = nullptr;
  for (auto& e : handlers_) {
    if (e.host_id == dst_host) entry = &e;
  }
  if (entry == nullptr || !entry->handler) {
    return NotFound(StrFormat("no control handler for host %d", dst_host));
  }
  const PicoTime when = std::max(engine_.Now() + latency_, next_free_);
  next_free_ = when;  // in-order delivery
  Handler h = entry->handler;  // copy: handler may be replaced before delivery
  engine_.ScheduleAtOn(
      entry->lane, when,
      [h = std::move(h), payload = std::move(payload)]() mutable {
        h(std::move(payload));
      },
      "control.deliver");
  return Status::Ok();
}

}  // namespace twochains::net
