// ucxs: a UCX-shaped communication shim over the NIC model.
//
// Two-Chains is "implemented as a plugin to the UCX communication
// framework" (§I); its benchmarks compare against plain UCX puts (§VII).
// This shim reproduces the two UCX behaviours those experiments depend on:
//
//  1. *Size-dependent protocol selection.* UCX switches wire protocols as
//     message size grows (short -> eager bcopy -> eager zcopy ->
//     rendezvous). Each protocol trades higher fixed setup cost for lower
//     per-byte cost, so a message that has *just* crossed a threshold pays
//     the new protocol's setup without amortizing it — the latency bumps
//     the paper calls out at the 8- and 256-integer Injected Function
//     sizes (§VII-A).
//
//  2. *Flow-control / completion-tracking overhead.* The standard put path
//     tracks completions and enforces an outstanding-operation window;
//     Two-Chains bypasses it with its own mailbox-bank flow control ("the
//     standard UCX put operation has more library overhead for flow
//     control and detecting message completion", §VII). PutMode selects
//     which cost model applies.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "common/status.hpp"
#include "common/units.hpp"
#include "mem/region.hpp"
#include "net/host.hpp"
#include "net/nic.hpp"
#include "sim/engine.hpp"

namespace twochains::ucxs {

enum class Protocol : std::uint8_t { kShort, kBcopy, kZcopy, kRndv };

std::string_view ProtocolName(Protocol p) noexcept;

struct ProtocolConfig {
  /// Upper size bounds (inclusive) per protocol; sizes above zcopy_max use
  /// rendezvous. Defaults are placed so that the Injected Function frames
  /// of the paper's Indirect Put (1472 B + 64 B per 16 ints) cross into
  /// bcopy->zcopy at the 8-integer frame (1536 B) and into rendezvous at
  /// the 256-integer frame (2496 B), reproducing Fig. 7's bumps.
  std::uint64_t short_max = 192;
  std::uint64_t bcopy_max = 1535;
  std::uint64_t zcopy_max = 2495;

  /// Fixed sender-side setup cost per protocol (ns).
  double short_overhead_ns = 20;
  double bcopy_overhead_ns = 90;
  double zcopy_overhead_ns = 260;
  double rndv_overhead_ns = 650;

  /// bcopy copies through a bounce buffer: extra per-byte cost (ns/byte).
  double bcopy_ns_per_byte = 0.012;

  /// UCX-mode completion tracking: extra sender cost per op (ns) and the
  /// outstanding-operation window. Tracking does not delay the wire post
  /// (the CQ is polled after posting, and overlaps the wait in ping-pong)
  /// but it fully paces back-to-back streaming — which is exactly why the
  /// paper sees put *bandwidth* collapse while put *latency* stays fine.
  /// kUser mode (Two-Chains' own bank flow control) pays neither.
  double tracking_ns_per_op = 1050;
  std::uint32_t max_outstanding = 16;
};

/// Which flow-control stack a put goes through.
enum class PutMode : std::uint8_t {
  kUcx,   ///< standard UCX put: tracking cost + window
  kUser,  ///< Two-Chains path: bare protocol + NIC (own flow control)
};

/// UCX-like context: one per (host, nic).
class Context {
 public:
  Context(sim::Engine& engine, net::Host& host, net::Nic& nic,
          ProtocolConfig config = {})
      : engine_(engine), host_(host), nic_(nic), config_(config) {}

  sim::Engine& engine() noexcept { return engine_; }
  net::Host& host() noexcept { return host_; }
  net::Nic& nic() noexcept { return nic_; }
  const ProtocolConfig& config() const noexcept { return config_; }

 private:
  sim::Engine& engine_;
  net::Host& host_;
  net::Nic& nic_;
  ProtocolConfig config_;
};

/// Worker: progress engine wrapper (progress is implicit in the DES; the
/// worker carries counters and flush bookkeeping).
class Worker {
 public:
  explicit Worker(Context& context) : context_(context) {}
  Context& context() noexcept { return context_; }

  std::uint64_t ops_posted() const noexcept { return ops_posted_; }
  std::uint64_t ops_completed() const noexcept { return ops_completed_; }
  /// Completions whose put was ECN-marked by a switch on the path (always
  /// zero on direct-cabled fabrics) — the transport-level view of the
  /// mark ledger the switch harness reconciles.
  std::uint64_t ecn_marks_completed() const noexcept {
    return ecn_marks_completed_;
  }

 private:
  friend class Endpoint;
  Context& context_;
  std::uint64_t ops_posted_ = 0;
  std::uint64_t ops_completed_ = 0;
  std::uint64_t ecn_marks_completed_ = 0;
};

struct PutReceipt {
  Protocol protocol = Protocol::kShort;
  /// Sender CPU time consumed before the NIC doorbell (protocol setup +
  /// tracking). Callers model their busy time with this.
  PicoTime sender_overhead = 0;
  /// True if the op was queued behind the outstanding window instead of
  /// being posted immediately (kUcx mode only).
  bool queued = false;
};

class Endpoint {
 public:
  /// @p remote selects which connected peer NIC this endpoint posts to —
  /// one endpoint per peer, like a UCX ep. nullptr (the two-host testbed
  /// shape) targets the local NIC's first link.
  Endpoint(Worker& worker, PutMode mode, net::Nic* remote = nullptr)
      : worker_(worker), mode_(mode), remote_(remote) {}

  /// Completion tracking rides sender-side CQE events that may still be in
  /// flight when an endpoint dies (e.g. a benchmark stops the engine and
  /// returns); the liveness token lets those events no-op safely.
  ~Endpoint() { *alive_ = false; }

  PutMode mode() const noexcept { return mode_; }
  net::Nic* remote() const noexcept { return remote_; }

  /// Selects the protocol a message of @p size would use.
  Protocol SelectProtocol(std::uint64_t size) const noexcept;

  /// Sender-side setup cost a put of @p size will pay (protocol setup plus
  /// tracking in kUcx mode) — for callers that model CPU busy time.
  PicoTime EstimateOverhead(std::uint64_t size) const {
    return OverheadFor(SelectProtocol(size), size);
  }
  /// Setup cost that delays the wire post (protocol only; completion
  /// tracking happens after the doorbell).
  PicoTime EstimatePostDelay(std::uint64_t size) const {
    return OverheadFor(SelectProtocol(size), size, /*include_tracking=*/false);
  }

  /// One-sided put into the connected peer. @p on_delivered fires when the
  /// bytes are visible remotely.
  StatusOr<PutReceipt> PutNbi(mem::VirtAddr local, mem::VirtAddr remote,
                              std::uint64_t size, mem::RKey rkey,
                              bool fence = false,
                              net::Nic::DeliveredFn on_delivered = nullptr);

  /// 8-byte immediate put (signals, flags).
  StatusOr<PutReceipt> PutInline(std::uint64_t value, mem::VirtAddr remote,
                                 mem::RKey rkey, bool fence = false,
                                 net::Nic::DeliveredFn on_delivered = nullptr);

  /// Invokes @p done once every op posted so far has been delivered.
  void Flush(std::function<void()> done);

  std::uint32_t outstanding() const noexcept { return outstanding_; }

 private:
  struct Pending {
    bool inline_op;
    std::uint64_t inline_value;
    mem::VirtAddr local;
    mem::VirtAddr remote;
    std::uint64_t size;
    mem::RKey rkey;
    bool fence;
    net::Nic::DeliveredFn on_delivered;
    PicoTime overhead;
  };

  PicoTime OverheadFor(Protocol protocol, std::uint64_t size,
                       bool include_tracking = true) const;
  Status PostNow(Pending op);
  void OnComplete();

  Worker& worker_;
  PutMode mode_;
  net::Nic* remote_ = nullptr;
  std::uint32_t outstanding_ = 0;
  /// NIC posting is serialized in submission order (WQEs reach the HCA in
  /// the order the sender posted them, regardless of per-op setup time).
  PicoTime post_serial_ = 0;
  std::deque<Pending> queue_;
  std::vector<std::function<void()>> flush_waiters_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace twochains::ucxs
