#include "ucxs/ucxs.hpp"

#include <algorithm>

namespace twochains::ucxs {

std::string_view ProtocolName(Protocol p) noexcept {
  switch (p) {
    case Protocol::kShort: return "short";
    case Protocol::kBcopy: return "bcopy";
    case Protocol::kZcopy: return "zcopy";
    case Protocol::kRndv: return "rndv";
  }
  return "?";
}

Protocol Endpoint::SelectProtocol(std::uint64_t size) const noexcept {
  const ProtocolConfig& cfg = worker_.context().config();
  if (size <= cfg.short_max) return Protocol::kShort;
  if (size <= cfg.bcopy_max) return Protocol::kBcopy;
  if (size <= cfg.zcopy_max) return Protocol::kZcopy;
  return Protocol::kRndv;
}

PicoTime Endpoint::OverheadFor(Protocol protocol, std::uint64_t size,
                               bool include_tracking) const {
  const ProtocolConfig& cfg = worker_.context().config();
  double ns = 0;
  switch (protocol) {
    case Protocol::kShort: ns = cfg.short_overhead_ns; break;
    case Protocol::kBcopy:
      ns = cfg.bcopy_overhead_ns +
           cfg.bcopy_ns_per_byte * static_cast<double>(size);
      break;
    case Protocol::kZcopy: ns = cfg.zcopy_overhead_ns; break;
    case Protocol::kRndv: ns = cfg.rndv_overhead_ns; break;
  }
  if (include_tracking && mode_ == PutMode::kUcx) {
    ns += cfg.tracking_ns_per_op;
  }
  return Nanoseconds(ns);
}

StatusOr<PutReceipt> Endpoint::PutNbi(mem::VirtAddr local,
                                      mem::VirtAddr remote,
                                      std::uint64_t size, mem::RKey rkey,
                                      bool fence,
                                      net::Nic::DeliveredFn on_delivered) {
  if (size == 0) return InvalidArgument("zero-length put");
  Pending op;
  op.inline_op = false;
  op.inline_value = 0;
  op.local = local;
  op.remote = remote;
  op.size = size;
  op.rkey = rkey;
  op.fence = fence;
  op.on_delivered = std::move(on_delivered);

  const Protocol protocol = SelectProtocol(size);
  op.overhead = OverheadFor(protocol, size);

  PutReceipt receipt;
  receipt.protocol = protocol;
  receipt.sender_overhead = op.overhead;

  const ProtocolConfig& cfg = worker_.context().config();
  if (mode_ == PutMode::kUcx && outstanding_ >= cfg.max_outstanding) {
    receipt.queued = true;
    queue_.push_back(std::move(op));
    return receipt;
  }
  TC_RETURN_IF_ERROR(PostNow(std::move(op)));
  return receipt;
}

StatusOr<PutReceipt> Endpoint::PutInline(std::uint64_t value,
                                         mem::VirtAddr remote, mem::RKey rkey,
                                         bool fence,
                                         net::Nic::DeliveredFn on_delivered) {
  Pending op;
  op.inline_op = true;
  op.inline_value = value;
  op.local = 0;
  op.remote = remote;
  op.size = 8;
  op.rkey = rkey;
  op.fence = fence;
  op.on_delivered = std::move(on_delivered);
  op.overhead = OverheadFor(Protocol::kShort, 8);

  PutReceipt receipt;
  receipt.protocol = Protocol::kShort;
  receipt.sender_overhead = op.overhead;

  const ProtocolConfig& cfg = worker_.context().config();
  if (mode_ == PutMode::kUcx && outstanding_ >= cfg.max_outstanding) {
    receipt.queued = true;
    queue_.push_back(std::move(op));
    return receipt;
  }
  TC_RETURN_IF_ERROR(PostNow(std::move(op)));
  return receipt;
}

Status Endpoint::PostNow(Pending op) {
  ++outstanding_;
  ++worker_.ops_posted_;
  auto& engine = worker_.context().engine();
  auto& nic = worker_.context().nic();

  // The delivery callback is receive-side logic and runs on the
  // destination's lane; the endpoint's own completion tracking (window,
  // flush waiters) is sender state, so it rides the NIC's sender-side CQE
  // back on this host's lane.
  net::Nic::DeliveredFn on_delivered = std::move(op.on_delivered);
  net::Nic::DeliveredFn on_complete =
      [this, alive = alive_](const net::PutCompletion& c) {
        if (!*alive) return;
        if (c.ecn_marked) ++worker_.ecn_marks_completed_;
        OnComplete();
      };

  // Serialize NIC posting in submission order: a WQE posted later must not
  // reach the HCA before an earlier one, even if its setup is cheaper.
  // Only the protocol setup delays the doorbell; completion tracking runs
  // after it. The post event is homed to this host's lane — PutNbi may be
  // called from outside any lane (driver pumps), and the post mutates
  // sender NIC state.
  const PicoTime post_delay =
      OverheadFor(op.inline_op ? Protocol::kShort : SelectProtocol(op.size),
                  op.size, /*include_tracking=*/false);
  const PicoTime post_at = std::max(engine.Now() + post_delay, post_serial_);
  post_serial_ = post_at;

  net::Nic* dst = remote_;
  if (op.inline_op) {
    const std::uint64_t value = op.inline_value;
    const auto remote = op.remote;
    const auto rkey = op.rkey;
    const bool fence = op.fence;
    engine.ScheduleAtOn(
        nic.lane(), post_at,
        [&nic, dst, value, remote, rkey, fence,
         on_delivered = std::move(on_delivered),
         on_complete = std::move(on_complete)]() mutable {
          // Delivery errors surface through the completion callback.
          Status st = dst ? nic.PostInlinePut(*dst, value, remote, rkey, fence,
                                              std::move(on_delivered),
                                              std::move(on_complete))
                          : nic.PostInlinePut(value, remote, rkey, fence,
                                              std::move(on_delivered),
                                              std::move(on_complete));
          (void)st;
        },
        "ucxs.inline");
    return Status::Ok();
  }
  const auto local = op.local;
  const auto remote = op.remote;
  const auto size = op.size;
  const auto rkey = op.rkey;
  const bool fence = op.fence;
  engine.ScheduleAtOn(
      nic.lane(), post_at,
      [&nic, dst, local, remote, size, rkey, fence,
       on_delivered = std::move(on_delivered),
       on_complete = std::move(on_complete)]() mutable {
        Status st = dst ? nic.PostPut(*dst, local, remote, size, rkey, fence,
                                      std::move(on_delivered),
                                      std::move(on_complete))
                        : nic.PostPut(local, remote, size, rkey, fence,
                                      std::move(on_delivered),
                                      std::move(on_complete));
        (void)st;
      },
      "ucxs.put");
  return Status::Ok();
}

void Endpoint::OnComplete() {
  if (outstanding_ > 0) --outstanding_;
  ++worker_.ops_completed_;
  // Drain the window queue.
  const ProtocolConfig& cfg = worker_.context().config();
  while (!queue_.empty() && outstanding_ < cfg.max_outstanding) {
    Pending next = std::move(queue_.front());
    queue_.pop_front();
    Status st = PostNow(std::move(next));
    (void)st;
  }
  if (outstanding_ == 0 && queue_.empty() && !flush_waiters_.empty()) {
    auto waiters = std::move(flush_waiters_);
    flush_waiters_.clear();
    for (auto& w : waiters) w();
  }
}

void Endpoint::Flush(std::function<void()> done) {
  if (outstanding_ == 0 && queue_.empty()) {
    done();
    return;
  }
  flush_waiters_.push_back(std::move(done));
}

}  // namespace twochains::ucxs
