#include "mem/host_memory.hpp"

#include <algorithm>
#include <cstring>

#include "common/bitops.hpp"
#include "common/strfmt.hpp"

namespace twochains::mem {

std::string PermString(Perm p) {
  std::string s = "---";
  if (HasPerm(p, Perm::kRead)) s[0] = 'r';
  if (HasPerm(p, Perm::kWrite)) s[1] = 'w';
  if (HasPerm(p, Perm::kExec)) s[2] = 'x';
  return s;
}

HostMemory::HostMemory(int host_id, std::uint64_t size, std::uint32_t domains)
    : host_id_(host_id), base_(HostBase(host_id)) {
  // Each slice is rounded up to whole pages independently (AlignUp on the
  // combined size would need a power-of-two domain count), so domain
  // boundaries always fall on page boundaries for any @p domains.
  const std::uint32_t n = std::max<std::uint32_t>(domains, 1);
  domain_span_ = AlignUp(CeilDiv(size, n), kPageSize);
  arena_.resize(domain_span_ * n);
  page_perms_.assign(arena_.size() / kPageSize, Perm::kNone);
  domains_.resize(n);
  for (std::uint32_t d = 0; d < n; ++d) {
    domains_[d].bump = base_ + static_cast<std::uint64_t>(d) * domain_span_;
    domains_[d].limit = domains_[d].bump + domain_span_;
  }
}

bool HostMemory::Contains(VirtAddr addr, std::uint64_t size) const noexcept {
  if (addr < base_) return false;
  const std::uint64_t off = addr - base_;
  return off <= arena_.size() && size <= arena_.size() - off;
}

VirtAddr HostMemory::CarveFrom(Domain& domain, std::uint64_t page_span,
                               std::uint64_t eff_align) {
  // First fit over released page runs (address order keeps it stable).
  for (auto it = domain.free_list.begin(); it != domain.free_list.end();
       ++it) {
    const VirtAddr block = it->first;
    const std::uint64_t block_span = it->second;
    const VirtAddr start = AlignUp(block, eff_align);
    if (start + page_span > block + block_span) continue;
    domain.free_list.erase(it);
    if (start > block) domain.free_list.emplace(block, start - block);
    const VirtAddr tail = start + page_span;
    if (tail < block + block_span) {
      domain.free_list.emplace(tail, block + block_span - tail);
    }
    return start;
  }
  // Bump region: never-used pages at the top of the slice.
  const VirtAddr start = AlignUp(domain.bump, eff_align);
  if (start + page_span > domain.limit) return 0;
  domain.bump = start + page_span;
  return start;
}

StatusOr<VirtAddr> HostMemory::Allocate(std::uint64_t size,
                                        std::uint64_t align, Perm perms,
                                        std::string_view tag,
                                        DomainId domain_hint) {
  if (size == 0) return InvalidArgument("zero-size allocation");
  if (!IsPowerOfTwo(align)) return InvalidArgument("alignment must be pow2");
  // Page-granular allocations: each one gets whole pages so that Protect()
  // on it cannot disturb neighbours. The hinted domain is tried first;
  // exhaustion spills to the neighbouring domains in index order so a full
  // slice degrades to remote placement instead of failure.
  const std::uint64_t eff_align = std::max<std::uint64_t>(align, kPageSize);
  const std::uint64_t page_span = AlignUp(size, kPageSize);
  const DomainId hint = std::min<DomainId>(domain_hint, domains() - 1);
  for (std::uint32_t i = 0; i < domains(); ++i) {
    Domain& domain = domains_[(hint + i) % domains()];
    const VirtAddr start = CarveFrom(domain, page_span, eff_align);
    if (start == 0) continue;
    allocs_.emplace(start, Allocation{size, page_span, std::string(tag)});
    allocated_bytes_ += size;
    TC_RETURN_IF_ERROR(Protect(start, page_span, perms));
    return start;
  }
  return ResourceExhausted(
      StrFormat("host %d arena exhausted: want %llu bytes (tag=%.*s)",
                host_id_, static_cast<unsigned long long>(size),
                static_cast<int>(tag.size()), tag.data()));
}

Status HostMemory::Free(VirtAddr addr) {
  const auto it = allocs_.find(addr);
  if (it == allocs_.end()) {
    return NotFound(StrFormat("no allocation at 0x%llx",
                              static_cast<unsigned long long>(addr)));
  }
  allocated_bytes_ -= it->second.size;
  TC_RETURN_IF_ERROR(Protect(addr, it->second.page_span, Perm::kNone));
  // Return the pages to the owning domain's free list, coalescing with
  // adjacent runs; a run that reaches the bump frontier folds back into
  // the never-used region so a full alloc/free cycle restores the slice.
  Domain& domain = domains_[DomainOf(addr)];
  auto [pos, inserted] =
      domain.free_list.emplace(addr, it->second.page_span);
  (void)inserted;
  if (auto next = std::next(pos); next != domain.free_list.end() &&
                                  pos->first + pos->second == next->first) {
    pos->second += next->second;
    domain.free_list.erase(next);
  }
  if (pos != domain.free_list.begin()) {
    auto prev = std::prev(pos);
    if (prev->first + prev->second == pos->first) {
      prev->second += pos->second;
      domain.free_list.erase(pos);
      pos = prev;
    }
  }
  if (pos->first + pos->second == domain.bump) {
    domain.bump = pos->first;
    domain.free_list.erase(pos);
  }
  allocs_.erase(it);
  return Status::Ok();
}

Status HostMemory::Protect(VirtAddr addr, std::uint64_t size, Perm perms) {
  if (!Contains(addr, size)) {
    return OutOfRange(StrFormat("protect [0x%llx,+%llu) outside arena",
                                static_cast<unsigned long long>(addr),
                                static_cast<unsigned long long>(size)));
  }
  const std::uint64_t first = OffsetOf(AlignDown(addr, kPageSize)) / kPageSize;
  const std::uint64_t last =
      OffsetOf(AlignUp(addr + size, kPageSize)) / kPageSize;
  for (std::uint64_t p = first; p < last; ++p) page_perms_[p] = perms;
  return Status::Ok();
}

StatusOr<Perm> HostMemory::PagePerms(VirtAddr addr) const {
  if (!Contains(addr, 1)) return OutOfRange("address outside arena");
  return page_perms_[OffsetOf(addr) / kPageSize];
}

Status HostMemory::CheckPerms(VirtAddr addr, std::uint64_t size,
                              Perm need) const {
  if (size == 0) return Status::Ok();
  if (!Contains(addr, size)) {
    return OutOfRange(StrFormat("access [0x%llx,+%llu) outside host %d arena",
                                static_cast<unsigned long long>(addr),
                                static_cast<unsigned long long>(size),
                                host_id_));
  }
  const std::uint64_t first = OffsetOf(AlignDown(addr, kPageSize)) / kPageSize;
  const std::uint64_t last =
      OffsetOf(AlignUp(addr + size, kPageSize)) / kPageSize;
  for (std::uint64_t p = first; p < last; ++p) {
    if (!HasPerm(page_perms_[p], need)) {
      return PermissionDenied(
          StrFormat("page 0x%llx is %s, need %s",
                    static_cast<unsigned long long>(base_ + p * kPageSize),
                    PermString(page_perms_[p]).c_str(),
                    PermString(need).c_str()));
    }
  }
  return Status::Ok();
}

Status HostMemory::Read(VirtAddr addr, std::span<std::uint8_t> out) const {
  TC_RETURN_IF_ERROR(CheckPerms(addr, out.size(), Perm::kRead));
  std::memcpy(out.data(), arena_.data() + OffsetOf(addr), out.size());
  return Status::Ok();
}

Status HostMemory::Write(VirtAddr addr, std::span<const std::uint8_t> data) {
  TC_RETURN_IF_ERROR(CheckPerms(addr, data.size(), Perm::kWrite));
  std::memcpy(arena_.data() + OffsetOf(addr), data.data(), data.size());
  return Status::Ok();
}

namespace {
template <typename T>
StatusOr<T> LoadScalar(const HostMemory& mem, VirtAddr addr) {
  T v;
  std::uint8_t buf[sizeof(T)];
  TC_RETURN_IF_ERROR(mem.Read(addr, std::span<std::uint8_t>(buf, sizeof(T))));
  std::memcpy(&v, buf, sizeof(T));
  return v;
}
template <typename T>
Status StoreScalar(HostMemory& mem, VirtAddr addr, T v) {
  std::uint8_t buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  return mem.Write(addr, std::span<const std::uint8_t>(buf, sizeof(T)));
}
}  // namespace

StatusOr<std::uint8_t> HostMemory::LoadU8(VirtAddr a) const {
  return LoadScalar<std::uint8_t>(*this, a);
}
StatusOr<std::uint16_t> HostMemory::LoadU16(VirtAddr a) const {
  return LoadScalar<std::uint16_t>(*this, a);
}
StatusOr<std::uint32_t> HostMemory::LoadU32(VirtAddr a) const {
  return LoadScalar<std::uint32_t>(*this, a);
}
StatusOr<std::uint64_t> HostMemory::LoadU64(VirtAddr a) const {
  return LoadScalar<std::uint64_t>(*this, a);
}
Status HostMemory::StoreU8(VirtAddr a, std::uint8_t v) {
  return StoreScalar(*this, a, v);
}
Status HostMemory::StoreU16(VirtAddr a, std::uint16_t v) {
  return StoreScalar(*this, a, v);
}
Status HostMemory::StoreU32(VirtAddr a, std::uint32_t v) {
  return StoreScalar(*this, a, v);
}
Status HostMemory::StoreU64(VirtAddr a, std::uint64_t v) {
  return StoreScalar(*this, a, v);
}

Status HostMemory::DmaRead(VirtAddr addr, std::span<std::uint8_t> out) const {
  if (!Contains(addr, out.size())) return OutOfRange("DMA read outside arena");
  std::memcpy(out.data(), arena_.data() + OffsetOf(addr), out.size());
  return Status::Ok();
}

Status HostMemory::DmaWrite(VirtAddr addr, std::span<const std::uint8_t> data) {
  if (!Contains(addr, data.size())) {
    return OutOfRange("DMA write outside arena");
  }
  std::memcpy(arena_.data() + OffsetOf(addr), data.data(), data.size());
  return Status::Ok();
}

StatusOr<std::span<std::uint8_t>> HostMemory::RawSpan(VirtAddr addr,
                                                      std::uint64_t size) {
  if (!Contains(addr, size)) return OutOfRange("raw span outside arena");
  return std::span<std::uint8_t>(arena_.data() + OffsetOf(addr), size);
}

StatusOr<std::span<const std::uint8_t>> HostMemory::RawSpan(
    VirtAddr addr, std::uint64_t size) const {
  if (!Contains(addr, size)) return OutOfRange("raw span outside arena");
  return std::span<const std::uint8_t>(arena_.data() + OffsetOf(addr), size);
}

}  // namespace twochains::mem
