#include "mem/host_memory.hpp"

#include <algorithm>
#include <cstring>

#include "common/bitops.hpp"
#include "common/strfmt.hpp"

namespace twochains::mem {

std::string PermString(Perm p) {
  std::string s = "---";
  if (HasPerm(p, Perm::kRead)) s[0] = 'r';
  if (HasPerm(p, Perm::kWrite)) s[1] = 'w';
  if (HasPerm(p, Perm::kExec)) s[2] = 'x';
  return s;
}

HostMemory::HostMemory(int host_id, std::uint64_t size)
    : host_id_(host_id),
      base_(HostBase(host_id)),
      arena_(AlignUp(size, kPageSize)),
      page_perms_(arena_.size() / kPageSize, Perm::kNone),
      bump_(base_) {}

bool HostMemory::Contains(VirtAddr addr, std::uint64_t size) const noexcept {
  if (addr < base_) return false;
  const std::uint64_t off = addr - base_;
  return off <= arena_.size() && size <= arena_.size() - off;
}

StatusOr<VirtAddr> HostMemory::Allocate(std::uint64_t size,
                                        std::uint64_t align, Perm perms,
                                        std::string_view tag) {
  if (size == 0) return InvalidArgument("zero-size allocation");
  if (!IsPowerOfTwo(align)) return InvalidArgument("alignment must be pow2");
  // Page-granular bump allocator: each allocation gets whole pages so that
  // Protect() on it cannot disturb neighbours. Freed ranges are not reused
  // (hosts in benchmarks allocate a fixed working set up front).
  const std::uint64_t eff_align = std::max<std::uint64_t>(align, kPageSize);
  const VirtAddr start = AlignUp(bump_, eff_align);
  const std::uint64_t page_span = AlignUp(size, kPageSize);
  if (!Contains(start, page_span)) {
    return ResourceExhausted(
        StrFormat("host %d arena exhausted: want %llu bytes (tag=%.*s)",
                  host_id_, static_cast<unsigned long long>(size),
                  static_cast<int>(tag.size()), tag.data()));
  }
  bump_ = start + page_span;
  allocs_.emplace(start, Allocation{size, page_span, std::string(tag)});
  allocated_bytes_ += size;
  TC_RETURN_IF_ERROR(Protect(start, page_span, perms));
  return start;
}

Status HostMemory::Free(VirtAddr addr) {
  const auto it = allocs_.find(addr);
  if (it == allocs_.end()) {
    return NotFound(StrFormat("no allocation at 0x%llx",
                              static_cast<unsigned long long>(addr)));
  }
  allocated_bytes_ -= it->second.size;
  TC_RETURN_IF_ERROR(Protect(addr, it->second.page_span, Perm::kNone));
  allocs_.erase(it);
  return Status::Ok();
}

Status HostMemory::Protect(VirtAddr addr, std::uint64_t size, Perm perms) {
  if (!Contains(addr, size)) {
    return OutOfRange(StrFormat("protect [0x%llx,+%llu) outside arena",
                                static_cast<unsigned long long>(addr),
                                static_cast<unsigned long long>(size)));
  }
  const std::uint64_t first = OffsetOf(AlignDown(addr, kPageSize)) / kPageSize;
  const std::uint64_t last =
      OffsetOf(AlignUp(addr + size, kPageSize)) / kPageSize;
  for (std::uint64_t p = first; p < last; ++p) page_perms_[p] = perms;
  return Status::Ok();
}

StatusOr<Perm> HostMemory::PagePerms(VirtAddr addr) const {
  if (!Contains(addr, 1)) return OutOfRange("address outside arena");
  return page_perms_[OffsetOf(addr) / kPageSize];
}

Status HostMemory::CheckPerms(VirtAddr addr, std::uint64_t size,
                              Perm need) const {
  if (size == 0) return Status::Ok();
  if (!Contains(addr, size)) {
    return OutOfRange(StrFormat("access [0x%llx,+%llu) outside host %d arena",
                                static_cast<unsigned long long>(addr),
                                static_cast<unsigned long long>(size),
                                host_id_));
  }
  const std::uint64_t first = OffsetOf(AlignDown(addr, kPageSize)) / kPageSize;
  const std::uint64_t last =
      OffsetOf(AlignUp(addr + size, kPageSize)) / kPageSize;
  for (std::uint64_t p = first; p < last; ++p) {
    if (!HasPerm(page_perms_[p], need)) {
      return PermissionDenied(
          StrFormat("page 0x%llx is %s, need %s",
                    static_cast<unsigned long long>(base_ + p * kPageSize),
                    PermString(page_perms_[p]).c_str(),
                    PermString(need).c_str()));
    }
  }
  return Status::Ok();
}

Status HostMemory::Read(VirtAddr addr, std::span<std::uint8_t> out) const {
  TC_RETURN_IF_ERROR(CheckPerms(addr, out.size(), Perm::kRead));
  std::memcpy(out.data(), arena_.data() + OffsetOf(addr), out.size());
  return Status::Ok();
}

Status HostMemory::Write(VirtAddr addr, std::span<const std::uint8_t> data) {
  TC_RETURN_IF_ERROR(CheckPerms(addr, data.size(), Perm::kWrite));
  std::memcpy(arena_.data() + OffsetOf(addr), data.data(), data.size());
  return Status::Ok();
}

namespace {
template <typename T>
StatusOr<T> LoadScalar(const HostMemory& mem, VirtAddr addr) {
  T v;
  std::uint8_t buf[sizeof(T)];
  TC_RETURN_IF_ERROR(mem.Read(addr, std::span<std::uint8_t>(buf, sizeof(T))));
  std::memcpy(&v, buf, sizeof(T));
  return v;
}
template <typename T>
Status StoreScalar(HostMemory& mem, VirtAddr addr, T v) {
  std::uint8_t buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  return mem.Write(addr, std::span<const std::uint8_t>(buf, sizeof(T)));
}
}  // namespace

StatusOr<std::uint8_t> HostMemory::LoadU8(VirtAddr a) const {
  return LoadScalar<std::uint8_t>(*this, a);
}
StatusOr<std::uint16_t> HostMemory::LoadU16(VirtAddr a) const {
  return LoadScalar<std::uint16_t>(*this, a);
}
StatusOr<std::uint32_t> HostMemory::LoadU32(VirtAddr a) const {
  return LoadScalar<std::uint32_t>(*this, a);
}
StatusOr<std::uint64_t> HostMemory::LoadU64(VirtAddr a) const {
  return LoadScalar<std::uint64_t>(*this, a);
}
Status HostMemory::StoreU8(VirtAddr a, std::uint8_t v) {
  return StoreScalar(*this, a, v);
}
Status HostMemory::StoreU16(VirtAddr a, std::uint16_t v) {
  return StoreScalar(*this, a, v);
}
Status HostMemory::StoreU32(VirtAddr a, std::uint32_t v) {
  return StoreScalar(*this, a, v);
}
Status HostMemory::StoreU64(VirtAddr a, std::uint64_t v) {
  return StoreScalar(*this, a, v);
}

Status HostMemory::DmaRead(VirtAddr addr, std::span<std::uint8_t> out) const {
  if (!Contains(addr, out.size())) return OutOfRange("DMA read outside arena");
  std::memcpy(out.data(), arena_.data() + OffsetOf(addr), out.size());
  return Status::Ok();
}

Status HostMemory::DmaWrite(VirtAddr addr, std::span<const std::uint8_t> data) {
  if (!Contains(addr, data.size())) {
    return OutOfRange("DMA write outside arena");
  }
  std::memcpy(arena_.data() + OffsetOf(addr), data.data(), data.size());
  return Status::Ok();
}

StatusOr<std::span<std::uint8_t>> HostMemory::RawSpan(VirtAddr addr,
                                                      std::uint64_t size) {
  if (!Contains(addr, size)) return OutOfRange("raw span outside arena");
  return std::span<std::uint8_t>(arena_.data() + OffsetOf(addr), size);
}

StatusOr<std::span<const std::uint8_t>> HostMemory::RawSpan(
    VirtAddr addr, std::uint64_t size) const {
  if (!Contains(addr, size)) return OutOfRange("raw span outside arena");
  return std::span<const std::uint8_t>(arena_.data() + OffsetOf(addr), size);
}

}  // namespace twochains::mem
