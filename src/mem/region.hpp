// RDMA memory registration: regions and 32-bit remote keys (rkeys).
//
// Mirrors the IBTA model the paper relies on (§V): memory is registered for
// remote access with a permission set; the HCA generates a 32-bit rkey from
// the registration; every inbound one-sided operation must present an rkey
// that (a) names a live registration, (b) covers the full target range, and
// (c) grants the operation's access class — otherwise the hardware rejects
// it before memory is touched.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/status.hpp"
#include "mem/address.hpp"

namespace twochains::mem {

/// Access classes an RDMA registration can grant (IBTA: remote read, remote
/// write, remote atomic — plus the paper's proposed executable extension,
/// "Extend the IBTA standard to support executable permissions", §V).
enum class RemoteAccess : std::uint8_t {
  kRead = 1,
  kWrite = 2,
  kAtomic = 4,
  kExec = 8,
};

constexpr RemoteAccess operator|(RemoteAccess a, RemoteAccess b) noexcept {
  return static_cast<RemoteAccess>(static_cast<std::uint8_t>(a) |
                                   static_cast<std::uint8_t>(b));
}
constexpr bool HasAccess(RemoteAccess have, RemoteAccess need) noexcept {
  return (static_cast<std::uint8_t>(have) & static_cast<std::uint8_t>(need)) ==
         static_cast<std::uint8_t>(need);
}

/// A 32-bit remote key, as defined by the IBTA standard.
struct RKey {
  std::uint32_t value = 0;
  friend bool operator==(RKey a, RKey b) noexcept { return a.value == b.value; }
};

/// One registered memory region.
struct Region {
  VirtAddr addr = 0;
  std::uint64_t size = 0;
  RemoteAccess access = RemoteAccess::kRead;
  std::string tag;
};

/// Per-host registry of RDMA-registered regions, owned by the NIC model.
class RegionRegistry {
 public:
  RegionRegistry() = default;

  /// Registers [addr, addr+size) for remote access; returns the rkey the
  /// initiator must present. The key derives from the address, permissions,
  /// and a registration counter (as the paper describes the HCA doing), so
  /// keys are unique per registration and not guessable from addr alone
  /// in the trivial sense (a property the ReDMArk-style tests probe).
  StatusOr<RKey> RegisterRegion(VirtAddr addr, std::uint64_t size,
                                RemoteAccess access, std::string tag);

  /// Invalidates a registration; subsequent ops with its rkey are rejected.
  Status Deregister(RKey key);

  /// Validates an inbound one-sided op: rkey must exist, cover the whole
  /// range, and grant @p need. Returns the region on success.
  StatusOr<Region> Validate(RKey key, VirtAddr addr, std::uint64_t size,
                            RemoteAccess need) const;

  std::size_t LiveRegions() const noexcept { return regions_.size(); }

 private:
  std::map<std::uint32_t, Region> regions_;
  std::uint32_t next_serial_ = 0x9e37;  // arbitrary non-zero start
};

}  // namespace twochains::mem
