// Virtual address conventions of the simulated hosts.
//
// Each simulated host owns a disjoint slice of one global 64-bit virtual
// address space: host h's arena starts at (h+1) << 40. Disjoint bases make
// cross-host pointer confusion detectable — a sender-side VA dereferenced on
// the receiver faults instead of silently aliasing, exactly the class of bug
// remote linking exists to prevent.
#pragma once

#include <cstdint>
#include <string>

namespace twochains::mem {

/// A virtual address within the simulated global address space.
using VirtAddr = std::uint64_t;

/// A memory domain (NUMA node) within one host: an index into the host's
/// per-domain sub-arenas and cache slices. Domain 0 always exists; a host
/// modeled without NUMA is the 1-domain special case.
using DomainId = std::uint32_t;

/// Page size of the simulated hosts (matches the Linux default on the
/// paper's testbed).
inline constexpr std::uint64_t kPageSize = 4096;

/// Spacing between host arenas (1 TiB); arenas are far smaller.
inline constexpr std::uint64_t kHostAddressStride = 1ull << 40;

/// Base virtual address of host @p host_id's arena.
constexpr VirtAddr HostBase(int host_id) noexcept {
  return (static_cast<VirtAddr>(host_id) + 1) * kHostAddressStride;
}

/// Which host's address range contains @p addr, or -1 if below any host base.
constexpr int HostOfAddress(VirtAddr addr) noexcept {
  if (addr < kHostAddressStride) return -1;
  return static_cast<int>(addr / kHostAddressStride) - 1;
}

/// Page access permission bits (combinable).
enum class Perm : std::uint8_t {
  kNone = 0,
  kRead = 1,
  kWrite = 2,
  kExec = 4,
  kRW = kRead | kWrite,
  kRX = kRead | kExec,
  kRWX = kRead | kWrite | kExec,
};

constexpr Perm operator|(Perm a, Perm b) noexcept {
  return static_cast<Perm>(static_cast<std::uint8_t>(a) |
                           static_cast<std::uint8_t>(b));
}
constexpr Perm operator&(Perm a, Perm b) noexcept {
  return static_cast<Perm>(static_cast<std::uint8_t>(a) &
                           static_cast<std::uint8_t>(b));
}
constexpr bool HasPerm(Perm have, Perm need) noexcept {
  return (static_cast<std::uint8_t>(have) & static_cast<std::uint8_t>(need)) ==
         static_cast<std::uint8_t>(need);
}

/// "r-x", "rw-", ... for diagnostics.
std::string PermString(Perm p);

}  // namespace twochains::mem
