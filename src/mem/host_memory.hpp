// Simulated per-host memory: a byte arena with page-granular permissions,
// a first-fit allocator, and bounds/permission-checked access paths.
//
// The arena is split into one sub-arena per memory domain (NUMA node):
// domain d owns the contiguous slice [base + d*span, base + (d+1)*span).
// Allocate takes a domain hint and spills to the neighbouring domains (in
// index order from the hint) when the hinted domain is exhausted, and
// DomainOf answers which domain's slice holds an address — the mapping the
// cache hierarchy uses to charge cross-domain accesses. A host modeled
// without NUMA is the 1-domain special case and behaves exactly like the
// old flat arena.
//
// Two access planes exist on purpose:
//   * CPU accesses (Read/Write/Load*/Store*) enforce page permissions —
//     these model loads/stores issued by jam code and the runtime, and are
//     what the security-mode tests exercise (W^X, read-only ARGS pages).
//   * DMA accesses (DmaRead/DmaWrite) bypass page permissions — an RDMA HCA
//     is bounds-checked by its registered regions (rkeys, see region.hpp),
//     not by CPU page tables. The NIC model performs rkey validation before
//     touching memory.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "mem/address.hpp"

namespace twochains::mem {

/// One host's simulated memory (see the file comment for the model).
/// Not thread-safe and doesn't need to be: everything runs on the one
/// discrete-event engine. Addresses are VirtAddr in the host's own
/// range (base() .. base()+size()); two hosts never alias.
class HostMemory {
 public:
  /// Creates the arena for @p host_id with @p size bytes (rounded up so
  /// every domain slice is a whole number of pages) based at
  /// HostBase(host_id), split into @p domains equal sub-arenas.
  HostMemory(int host_id, std::uint64_t size, std::uint32_t domains = 1);

  HostMemory(const HostMemory&) = delete;
  HostMemory& operator=(const HostMemory&) = delete;

  int host_id() const noexcept { return host_id_; }
  /// First virtual address of the arena (HostBase(host_id)).
  VirtAddr base() const noexcept { return base_; }
  /// Total arena bytes (possibly rounded up from the constructor size).
  std::uint64_t size() const noexcept { return arena_.size(); }
  /// Number of memory domains (NUMA nodes) the arena is split into.
  std::uint32_t domains() const noexcept {
    return static_cast<std::uint32_t>(domains_.size());
  }
  /// Bytes per domain slice (page multiple).
  std::uint64_t domain_span() const noexcept { return domain_span_; }

  /// The domain whose slice holds @p addr (addresses below the arena map
  /// to domain 0; addresses at or past the end clamp to the last domain;
  /// a zero-size arena has no slices to tell apart, so everything is 0).
  DomainId DomainOf(VirtAddr addr) const noexcept {
    if (addr < base_ || domain_span_ == 0) return 0;
    return static_cast<DomainId>(
        std::min<std::uint64_t>((addr - base_) / domain_span_,
                                domains_.size() - 1));
  }

  /// Allocates @p size bytes aligned to @p align (pow2, >= 1) with initial
  /// page permissions @p perms, preferring the slice of @p domain_hint and
  /// spilling to the neighbouring domains (hint+1, hint+2, ... wrapping)
  /// when it is exhausted. Allocations are page-granular internally so
  /// Protect() on one allocation cannot affect a neighbour.
  /// @p tag labels the allocation in diagnostics.
  StatusOr<VirtAddr> Allocate(std::uint64_t size, std::uint64_t align,
                              Perm perms, std::string_view tag,
                              DomainId domain_hint = 0);

  /// Releases an allocation previously returned by Allocate(). The pages
  /// return to the owning domain's free list (coalescing with neighbours)
  /// and are eligible for reuse by later allocations.
  Status Free(VirtAddr addr);

  /// Changes permissions on all pages covering [addr, addr+size).
  Status Protect(VirtAddr addr, std::uint64_t size, Perm perms);

  /// Permissions of the page containing @p addr.
  StatusOr<Perm> PagePerms(VirtAddr addr) const;

  /// True when [addr, addr+size) lies inside the arena.
  bool Contains(VirtAddr addr, std::uint64_t size) const noexcept;

  // --- CPU plane (permission checked) ---------------------------------

  /// Bulk read into @p out; every touched page must be readable.
  Status Read(VirtAddr addr, std::span<std::uint8_t> out) const;
  /// Bulk write of @p data; every touched page must be writable.
  Status Write(VirtAddr addr, std::span<const std::uint8_t> data);

  /// Little-endian scalar loads (readable page required).
  StatusOr<std::uint8_t> LoadU8(VirtAddr addr) const;
  StatusOr<std::uint16_t> LoadU16(VirtAddr addr) const;
  StatusOr<std::uint32_t> LoadU32(VirtAddr addr) const;
  StatusOr<std::uint64_t> LoadU64(VirtAddr addr) const;
  /// Little-endian scalar stores (writable page required).
  Status StoreU8(VirtAddr addr, std::uint8_t v);
  Status StoreU16(VirtAddr addr, std::uint16_t v);
  Status StoreU32(VirtAddr addr, std::uint32_t v);
  Status StoreU64(VirtAddr addr, std::uint64_t v);

  /// Checks that every page in [addr, addr+size) carries @p need.
  Status CheckPerms(VirtAddr addr, std::uint64_t size, Perm need) const;

  // --- DMA plane (bounds checked only) --------------------------------

  /// HCA-style read: bypasses page permissions (region/rkey validation
  /// is the NIC's job, before it calls this).
  Status DmaRead(VirtAddr addr, std::span<std::uint8_t> out) const;
  /// HCA-style write: bypasses page permissions (see DmaRead).
  Status DmaWrite(VirtAddr addr, std::span<const std::uint8_t> data);

  /// Borrow a mutable view of arena bytes (internal plumbing for the
  /// interpreter's hot path; bounds checked, no permission check).
  StatusOr<std::span<std::uint8_t>> RawSpan(VirtAddr addr, std::uint64_t size);
  StatusOr<std::span<const std::uint8_t>> RawSpan(VirtAddr addr,
                                                  std::uint64_t size) const;

  /// Bytes currently allocated (for leak checks in tests).
  std::uint64_t allocated_bytes() const noexcept { return allocated_bytes_; }

 private:
  struct Allocation {
    std::uint64_t size;        // requested size
    std::uint64_t page_span;   // bytes of whole pages reserved
    std::string tag;
  };

  /// One domain's sub-arena: a bump pointer over never-used pages plus a
  /// first-fit free list of released page runs (start VA -> byte span).
  struct Domain {
    VirtAddr bump = 0;   // next never-used address in this slice
    VirtAddr limit = 0;  // exclusive end of this slice
    std::map<VirtAddr, std::uint64_t> free_list;
  };

  std::uint64_t OffsetOf(VirtAddr addr) const noexcept { return addr - base_; }

  /// Carves @p page_span bytes at @p eff_align from @p domain (free list
  /// first, then the bump region), or 0 when the slice cannot fit it.
  VirtAddr CarveFrom(Domain& domain, std::uint64_t page_span,
                     std::uint64_t eff_align);

  int host_id_;
  VirtAddr base_;
  std::vector<std::uint8_t> arena_;
  std::vector<Perm> page_perms_;             // one entry per page
  std::map<VirtAddr, Allocation> allocs_;    // live allocations by start VA
  std::vector<Domain> domains_;              // per-domain allocator state
  std::uint64_t domain_span_ = 0;
  std::uint64_t allocated_bytes_ = 0;
};

}  // namespace twochains::mem
