#include "mem/region.hpp"

#include "common/strfmt.hpp"

namespace twochains::mem {
namespace {

/// Mixes registration parameters into a 32-bit key (model of the HCA's key
/// generation: "the underlying interconnect generates the RKEY based on a
/// virtual memory address and the permissions", §V).
std::uint32_t MixKey(VirtAddr addr, RemoteAccess access,
                     std::uint32_t serial) {
  std::uint64_t x = addr ^ (static_cast<std::uint64_t>(
                                static_cast<std::uint8_t>(access))
                            << 56);
  x ^= static_cast<std::uint64_t>(serial) * 0x9e3779b97f4a7c15ull;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  std::uint32_t key = static_cast<std::uint32_t>(x ^ (x >> 32));
  return key == 0 ? 1 : key;  // zero is reserved as "no key"
}

}  // namespace

StatusOr<RKey> RegionRegistry::RegisterRegion(VirtAddr addr,
                                              std::uint64_t size,
                                              RemoteAccess access,
                                              std::string tag) {
  if (size == 0) return InvalidArgument("zero-size region");
  std::uint32_t key = MixKey(addr, access, next_serial_++);
  // Collisions are astronomically rare but the map insert makes them
  // impossible rather than improbable.
  while (regions_.contains(key)) key = MixKey(addr, access, next_serial_++);
  regions_.emplace(key, Region{addr, size, access, std::move(tag)});
  return RKey{key};
}

Status RegionRegistry::Deregister(RKey key) {
  if (regions_.erase(key.value) == 0) {
    return NotFound(StrFormat("rkey 0x%08x not registered", key.value));
  }
  return Status::Ok();
}

StatusOr<Region> RegionRegistry::Validate(RKey key, VirtAddr addr,
                                          std::uint64_t size,
                                          RemoteAccess need) const {
  const auto it = regions_.find(key.value);
  if (it == regions_.end()) {
    return PermissionDenied(
        StrFormat("invalid rkey 0x%08x (rejected at hardware level)",
                  key.value));
  }
  const Region& r = it->second;
  if (addr < r.addr || addr + size > r.addr + r.size) {
    return PermissionDenied(
        StrFormat("rkey 0x%08x does not cover [0x%llx,+%llu)", key.value,
                  static_cast<unsigned long long>(addr),
                  static_cast<unsigned long long>(size)));
  }
  if (!HasAccess(r.access, need)) {
    return PermissionDenied(
        StrFormat("rkey 0x%08x lacks required access class", key.value));
  }
  return r;
}

}  // namespace twochains::mem
