// Benchmark shapes (§VI-A): ping-pong and injection rate, for Two-Chains
// active messages and for the raw UCX put baseline of Figures 5/6.
//
// All shapes run inside the deterministic simulation; results are simulated
// latencies/rates, reproducible bit-for-bit across runs.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "benchlib/table.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "core/fabric.hpp"
#include "core/two_chains.hpp"
#include "ucxs/ucxs.hpp"

namespace twochains::bench {

/// Per-iteration argument generator (e.g. the Indirect Put key).
using ArgsFn = std::function<std::vector<std::uint64_t>(std::uint64_t iter)>;

struct AmConfig {
  std::string jam = "ssum";
  core::Invoke mode = core::Invoke::kInjected;
  std::uint64_t usr_bytes = 64;
  ArgsFn args;                    ///< defaults to {iter & 127}
  std::uint32_t warmup = 200;
  std::uint32_t iterations = 2000;
  bool no_execute = false;        ///< fig 5/6 "without-execution" mode
};

struct PingPongResult {
  LatencySample one_way;          ///< half round-trip per iteration
  std::uint64_t frame_len = 0;
  ucxs::Protocol protocol = ucxs::Protocol::kShort;
  /// Receiver-side core counters accumulated over the whole run (host 1).
  cpu::PerfCounters responder_counters{};
  std::uint64_t messages = 0;
};

/// Half round-trip active-message latency (§VI-A1).
StatusOr<PingPongResult> RunAmPingPong(core::Testbed& testbed,
                                       const AmConfig& config);

struct RateResult {
  double messages_per_second = 0;
  double megabytes_per_second = 0;
  PicoTime duration = 0;
  std::uint64_t frame_len = 0;  ///< last receipt (slim when by-handle)
  std::uint64_t messages = 0;
  /// Total frame bytes the sender put on the wire (sum of receipt
  /// frame_len over every send). With the jam cache warm this collapses
  /// toward messages * 64 while frame_len alone would hide the cold
  /// full-body sends; wire_bytes / messages is the honest bytes/invoke.
  std::uint64_t wire_bytes = 0;
  /// Receiver-side jam-cache counters at the end of the run (all zero
  /// when the cache is disabled).
  core::JamCacheStats rx_jam{};
};

/// Injection rate with bank flow control (§VI-A2): the sender pushes as
/// fast as its banks allow; the receiver drains and recycles.
StatusOr<RateResult> RunAmInjectionRate(core::Testbed& testbed,
                                        const AmConfig& config);

// ----------------------------------------------------------------- incast

struct IncastConfig {
  std::string jam = "iput";
  core::Invoke mode = core::Invoke::kInjected;
  std::uint64_t usr_bytes = 64;
  ArgsFn args;                            ///< defaults to {iter & 127}
  std::uint32_t iterations_per_sender = 1000;
  /// Skewed-incast load: per-sender message multipliers, one per entry of
  /// `senders` (sender i pushes iterations_per_sender * sender_weights[i]
  /// messages). Empty = uniform (weight 1 everywhere). This is what makes
  /// receiver-pool skew observable: concentrating load on the senders
  /// whose banks shard to one pool core leaves the other cores idle
  /// unless they steal. Weight 0 = a *silent* sender: wired into the
  /// topology but pushing nothing, and excluded from the Jain fairness
  /// normalization (all-zero weights are rejected). Silent senders model
  /// provisioned-but-idle clients in the serving scenarios.
  std::vector<std::uint32_t> sender_weights;
};

struct IncastSenderResult {
  std::uint32_t host = 0;                 ///< fabric host index
  std::uint64_t messages = 0;
  double messages_per_second = 0;
  /// Times this sender's pump had to park on NotifyWhenSlotFree (its bank
  /// flags toward the receiver were all out).
  std::uint64_t flow_control_waits = 0;
};

struct IncastResult {
  std::vector<IncastSenderResult> per_sender;
  double aggregate_messages_per_second = 0;
  double aggregate_megabytes_per_second = 0;
  /// Jain's fairness index over per-sender completion rates (1 = fair).
  double fairness = 1.0;
  /// Send-to-completion latency across all messages (p99 = the incast tail).
  LatencySample latency;
  PicoTime duration = 0;
  std::uint64_t frame_len = 0;
};

/// N senders inject into one receiver, each paced only by its own per-peer
/// bank flow control — the many-to-one deployment shape. All senders start
/// at the same simulated instant and push `iterations_per_sender` messages.
StatusOr<IncastResult> RunIncastRate(core::Fabric& fabric,
                                     std::uint32_t receiver,
                                     const std::vector<std::uint32_t>& senders,
                                     const IncastConfig& config);

/// Per-peer counter table for @p runtime (one row per PeerId) — how the
/// incast bench reports per-sender fairness from the receiver's view.
Table PeerStatsTable(const core::Runtime& runtime);

// ---------------------------------------------------------------- raw UCX

struct RawPutConfig {
  std::uint64_t size = 256;
  std::uint32_t warmup = 200;
  std::uint32_t iterations = 2000;
};

/// Raw UCX put ping-pong baseline ("Data put" in Figs. 5/6): puts through
/// the kUcx endpoint, receiver detects by polling the trailing flag byte
/// with the standard completion-tracking overhead.
StatusOr<PingPongResult> RunRawPutPingPong(core::Testbed& testbed,
                                           const RawPutConfig& config);

/// Raw UCX put streaming bandwidth: window-limited pipelining with per-op
/// completion tracking.
StatusOr<RateResult> RunRawPutStream(core::Testbed& testbed,
                                     const RawPutConfig& config);

}  // namespace twochains::bench
