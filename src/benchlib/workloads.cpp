#include "benchlib/workloads.hpp"

namespace twochains::bench {
namespace {

constexpr const char* kRiedKvstore = R"AMC(
/* ried_kvstore: server-side state for the benchmark jams.
   Shipped ahead of time and auto-initialized (a ried, "relocatable
   interface distribution"). */

long sum_results[4096];
long sum_cursor = 0;

long ht_keys[4096];
long ht_offsets[4096];
long ht_next_offset = 0;
char ht_heap[16777216];

long ried_kvstore(void) { return 0; }

long ried_kvstore_init(void) {
  for (long i = 0; i < 4096; ++i) {
    ht_keys[i] = -1;
    ht_offsets[i] = 0;
    sum_results[i] = 0;
  }
  sum_cursor = 0;
  ht_next_offset = 0;
  return 0;
}
)AMC";

constexpr const char* kJamSsum = R"AMC(
/* Server-Side Sum (paper SVI-B1): "loops over all of its payload in order
   to accumulate a sum. Then, it stores the result at the next spot in an
   array in the server." */
extern long sum_results[4096];
extern long sum_cursor;

long jam_ssum(long* args, long* usr, long usr_bytes) {
  long n = usr_bytes / 8;
  long total = 0;
  for (long i = 0; i < n; ++i) total += usr[i];
  long c = sum_cursor;
  sum_results[c % 4096] = total;
  sum_cursor = c + 1;
  return total;
}
)AMC";

constexpr const char* kJamIput = R"AMC(
/* Indirect Put (paper SVI-B2, Fig. 4): (1) probe the hash index with the
   client-chosen key, (2) assign or look up the offset, (3) copy the
   payload to base + offset. */
extern long ht_keys[4096];
extern long ht_offsets[4096];
extern long ht_next_offset;
extern char ht_heap[16777216];
extern void* tc_memcpy(void* dst, const void* src, unsigned long n);

long jam_iput(long* args, char* usr, long usr_bytes) {
  long key = args[0];
  unsigned long slot = ((unsigned long)key * 2654435761) % 4096;
  long off = -1;
  for (long i = 0; i < 4096; ++i) {
    unsigned long s = (slot + i) % 4096;
    if (ht_keys[s] == key) { off = ht_offsets[s]; break; }
    if (ht_keys[s] == -1) {
      ht_keys[s] = key;
      off = ht_next_offset;
      ht_offsets[s] = off;
      ht_next_offset = off + usr_bytes;
      break;
    }
  }
  if (off < 0) return -1;
  tc_memcpy(ht_heap + off, usr, (unsigned long)usr_bytes);
  return off;
}
)AMC";

constexpr const char* kJamNop = R"AMC(
/* Minimal jam: returns its first argument. Used by microbenches to
   isolate framework overhead from handler work. */
long jam_nop(long* args, char* usr, long usr_bytes) {
  return args[0];
}
)AMC";

}  // namespace

pkg::PackageBuilder MakeBenchPackageBuilder() {
  pkg::PackageBuilder builder;
  // AddSourceFile only fails on non-canonical names; these are constants.
  (void)builder.AddSourceFile("ried_kvstore.rdc", kRiedKvstore);
  (void)builder.AddSourceFile("jam_ssum.amc", kJamSsum);
  (void)builder.AddSourceFile("jam_iput.amc", kJamIput);
  (void)builder.AddSourceFile("jam_nop.amc", kJamNop);
  return builder;
}

StatusOr<pkg::Package> BuildBenchPackage() {
  return MakeBenchPackageBuilder().Build("tcbench");
}

}  // namespace twochains::bench
