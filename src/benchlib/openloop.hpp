// Open-loop KV serving driver: the load model the closed-loop perftest
// harnesses cannot express. A closed-loop sender waits for each reply, so
// server slowdowns throttle the offered load and hide queueing delay; an
// open-loop generator arrives by its own clock (Poisson process), queues
// when flow control blocks, and charges that wait to the request — the
// latency a real client would see.
//
// The scenario: a sharded in-memory KV store on a core::Fabric. Shard
// hosts hold the jamlib kv table as resident state; client hosts
// multiplex a large simulated-client population, injecting kv_get /
// kv_put jams at each key's owner (jamlib::KvShardMap). Key popularity is
// Zipf (Xoshiro256::NextZipf), so a hot head hammers a few keys — the mix
// the receiver-side jam cache's invoke-by-handle fast path exists for.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/status.hpp"
#include "core/runtime.hpp"

namespace twochains::bench {

/// Every knob of one open-loop KV serving run. docs/TUNING.md (section
/// "## OpenLoopConfig") documents each with its measured effect size.
struct OpenLoopConfig {
  /// Sender hosts the simulated-client population is multiplexed over.
  std::uint32_t client_hosts = 2;
  /// Shard owner hosts (fabric hosts client_hosts..client_hosts+shards).
  std::uint32_t shards = 4;
  /// Simulated client population; each arrival is drawn uniformly from
  /// it and routed to fabric host (client % client_hosts).
  std::uint64_t simulated_clients = 1'000'000;
  /// Distinct keys. Keep under ~3/4 of shards * jamlib::kKvSlots or the
  /// run is rejected (an overfull open-addressed table livelocks puts).
  std::uint64_t keyspace = 4096;
  /// Zipf skew of key popularity (1.0 = classic web-serving skew;
  /// <= 0 degenerates to uniform).
  double zipf_theta = 1.0;
  /// Fraction of requests that are kv_put (the rest are kv_get).
  double put_fraction = 0.10;
  /// Measured requests (after the optional preload).
  std::uint64_t requests = 20'000;
  /// Offered load in requests per simulated microsecond. Arrivals are a
  /// merged Poisson process: exponential gaps with mean 1/rate.
  double offered_rate_mops = 1.0;
  /// Write every key once (closed-loop, unmeasured) before the measured
  /// window, so gets hit a warm store.
  bool preload = true;
  std::uint64_t seed = 1;
  /// Receiver-side jam cache on the shard hosts (off = every injection
  /// carries the full jam body; on = hot path degenerates to slim
  /// invoke-by-handle frames).
  core::JamCacheConfig jam_cache{};
  /// Runtime template for every host (jam_cache above overrides its
  /// jam_cache member).
  core::RuntimeConfig runtime{};
  /// Engine executor lanes (FabricOptions.engine.lanes): >1 shards event
  /// execution by host under conservative lookahead. The driver keeps all
  /// per-host state single-writer, so results are byte-identical at every
  /// lane count — only wall-clock changes.
  std::uint32_t lanes = 1;
};

/// What one run measured. `latency` is arrival -> jam executed, so queue
/// time spent waiting for a free mailbox slot counts (open-loop honesty).
struct OpenLoopResult {
  bool ok = false;
  std::string error;

  std::uint64_t sent = 0;       ///< requests handed to Send()
  std::uint64_t completed = 0;  ///< requests whose jam executed
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t get_hits = 0;   ///< gets returning a stored value (not miss)
  /// Requests that found their (client, shard) link blocked and queued.
  std::uint64_t queued = 0;
  std::uint64_t queue_peak = 0; ///< deepest single-link backlog
  std::uint64_t distinct_clients = 0;  ///< population members that spoke
  /// Requests on the 10 hottest Zipf ranks (the skew sanity signal).
  std::uint64_t hot_head_requests = 0;
  /// Wire bytes the client hosts sent during the measured window,
  /// including full-body resends after cache-miss NAKs (honest).
  std::uint64_t wire_bytes = 0;
  PicoTime duration = 0;        ///< first arrival -> last completion
  double achieved_mops = 0.0;   ///< completed / duration
  LatencySample latency;
  /// Jam-cache counters summed over every host for the measured window
  /// (receiver fields from the shards, sender fields from the clients).
  core::JamCacheStats jam{};
  std::vector<std::uint64_t> per_shard_executed;  ///< size = shards
};

/// Builds the fabric, loads the jamlib package, optionally preloads the
/// keyspace, then drives the measured open-loop window. Configuration
/// errors return a Status; in-run failures come back in result.error.
StatusOr<OpenLoopResult> RunKvOpenLoop(const OpenLoopConfig& config);

}  // namespace twochains::bench
