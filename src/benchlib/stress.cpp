#include "benchlib/stress.hpp"

#include <map>
#include <memory>
#include <vector>

#include "common/rng.hpp"

namespace twochains::bench {

namespace {

/// Pristine per-host steal configs, snapshotted by the first ApplyStress
/// on a fabric and consumed by ClearStress, so repeated applies never
/// overwrite the true defaults with boosted ones. The map is keyed by the
/// fabric's address, which can be reused after an unpaired destruction —
/// so each entry also records the per-host runtime addresses, and a
/// lookup whose runtimes no longer match is discarded as stale instead of
/// poisoning the new fabric with a dead one's defaults.
struct StressSnapshot {
  std::vector<const core::Runtime*> runtimes;
  std::vector<core::StealConfig> steal;
};

std::map<const core::Fabric*, StressSnapshot>& StressSnapshots() {
  static std::map<const core::Fabric*, StressSnapshot> snapshots;
  return snapshots;
}

bool Matches(const StressSnapshot& snapshot, core::Fabric& fabric) {
  if (snapshot.runtimes.size() != fabric.size()) return false;
  for (std::uint32_t i = 0; i < fabric.size(); ++i) {
    if (snapshot.runtimes[i] != &fabric.runtime(i)) return false;
  }
  return true;
}

}  // namespace

void ApplyStress(core::Fabric& fabric, const StressConfig& config) {
  // Snapshot the wait-loop steal defaults once, then boost hysteresis
  // relative to the snapshot (not the current value): applying twice must
  // not compound, and ClearStress must be able to restore exactly.
  StressSnapshot& snapshot = StressSnapshots()[&fabric];
  if (!Matches(snapshot, fabric)) {
    snapshot = StressSnapshot{};
    for (std::uint32_t i = 0; i < fabric.size(); ++i) {
      snapshot.runtimes.push_back(&fabric.runtime(i));
      snapshot.steal.push_back(fabric.runtime(i).config().steal);
    }
  }
  for (std::uint32_t i = 0; i < fabric.size(); ++i) {
    fabric.runtime(i).mutable_config().steal.hysteresis =
        snapshot.steal[i].hysteresis + config.steal_hysteresis_boost;
  }

  // One RNG per hook keeps every host's noise streams independent and
  // the whole run reproducible from the seed.
  for (std::uint32_t i = 0; i < fabric.size(); ++i) {
    auto dram_rng = std::make_shared<Xoshiro256>(config.seed + 11 * i);
    const StressConfig cfg = config;
    fabric.host(i).caches().SetDramContentionHook(
        [dram_rng, cfg]() -> Cycles {
          double extra = dram_rng->NextExponential(cfg.dram_extra_mean_cycles);
          if (dram_rng->NextBernoulli(cfg.dram_spike_probability)) {
            extra += dram_rng->NextPareto(cfg.dram_spike_scale_cycles,
                                          cfg.dram_spike_alpha);
          }
          return static_cast<Cycles>(extra);
        });

    auto preempt_rng = std::make_shared<Xoshiro256>(config.seed + 101 * i);
    fabric.runtime(i).SetPreemptionHook(
        [preempt_rng, cfg]() -> PicoTime {
          if (!preempt_rng->NextBernoulli(cfg.preempt_probability)) return 0;
          return Microseconds(preempt_rng->NextPareto(cfg.preempt_scale_us,
                                                      cfg.preempt_alpha));
        });
  }
}

void ApplyStress(core::Testbed& testbed, const StressConfig& config) {
  ApplyStress(testbed.fabric(), config);
}

void ClearStress(core::Fabric& fabric) {
  for (std::uint32_t i = 0; i < fabric.size(); ++i) {
    fabric.host(i).caches().SetDramContentionHook(nullptr);
    fabric.runtime(i).SetPreemptionHook(nullptr);
  }
  // Restore the pre-stress wait-loop defaults so apply/clear round-trips
  // exactly (the snapshot is retired with the restore; a stale entry from
  // a dead fabric reusing this address is dropped, not applied).
  const auto snapshot = StressSnapshots().find(&fabric);
  if (snapshot != StressSnapshots().end()) {
    if (Matches(snapshot->second, fabric)) {
      for (std::uint32_t i = 0; i < fabric.size(); ++i) {
        fabric.runtime(i).mutable_config().steal = snapshot->second.steal[i];
      }
    }
    StressSnapshots().erase(snapshot);
  }
}

void ClearStress(core::Testbed& testbed) { ClearStress(testbed.fabric()); }

}  // namespace twochains::bench
