#include "benchlib/stress.hpp"

#include <memory>

#include "common/rng.hpp"

namespace twochains::bench {

void ApplyStress(core::Fabric& fabric, const StressConfig& config) {
  // One RNG per hook keeps every host's noise streams independent and
  // the whole run reproducible from the seed.
  for (std::uint32_t i = 0; i < fabric.size(); ++i) {
    auto dram_rng = std::make_shared<Xoshiro256>(config.seed + 11 * i);
    const StressConfig cfg = config;
    fabric.host(i).caches().SetDramContentionHook(
        [dram_rng, cfg]() -> Cycles {
          double extra = dram_rng->NextExponential(cfg.dram_extra_mean_cycles);
          if (dram_rng->NextBernoulli(cfg.dram_spike_probability)) {
            extra += dram_rng->NextPareto(cfg.dram_spike_scale_cycles,
                                          cfg.dram_spike_alpha);
          }
          return static_cast<Cycles>(extra);
        });

    auto preempt_rng = std::make_shared<Xoshiro256>(config.seed + 101 * i);
    fabric.runtime(i).SetPreemptionHook(
        [preempt_rng, cfg]() -> PicoTime {
          if (!preempt_rng->NextBernoulli(cfg.preempt_probability)) return 0;
          return Microseconds(preempt_rng->NextPareto(cfg.preempt_scale_us,
                                                      cfg.preempt_alpha));
        });
  }
}

void ApplyStress(core::Testbed& testbed, const StressConfig& config) {
  ApplyStress(testbed.fabric(), config);
}

void ClearStress(core::Fabric& fabric) {
  for (std::uint32_t i = 0; i < fabric.size(); ++i) {
    fabric.host(i).caches().SetDramContentionHook(nullptr);
    fabric.runtime(i).SetPreemptionHook(nullptr);
  }
}

void ClearStress(core::Testbed& testbed) { ClearStress(testbed.fabric()); }

}  // namespace twochains::bench
