#include "benchlib/stress.hpp"

#include <memory>

#include "common/rng.hpp"

namespace twochains::bench {

void ApplyStress(core::Testbed& testbed, const StressConfig& config) {
  // One RNG per hook keeps the two hosts' noise streams independent and
  // the whole run reproducible from the seed.
  for (int i = 0; i < 2; ++i) {
    auto dram_rng = std::make_shared<Xoshiro256>(config.seed + 11 * i);
    const StressConfig cfg = config;
    testbed.host(i).caches().SetDramContentionHook(
        [dram_rng, cfg]() -> Cycles {
          double extra = dram_rng->NextExponential(cfg.dram_extra_mean_cycles);
          if (dram_rng->NextBernoulli(cfg.dram_spike_probability)) {
            extra += dram_rng->NextPareto(cfg.dram_spike_scale_cycles,
                                          cfg.dram_spike_alpha);
          }
          return static_cast<Cycles>(extra);
        });

    auto preempt_rng = std::make_shared<Xoshiro256>(config.seed + 101 * i);
    testbed.runtime(i).SetPreemptionHook(
        [preempt_rng, cfg]() -> PicoTime {
          if (!preempt_rng->NextBernoulli(cfg.preempt_probability)) return 0;
          return Microseconds(preempt_rng->NextPareto(cfg.preempt_scale_us,
                                                      cfg.preempt_alpha));
        });
  }
}

void ClearStress(core::Testbed& testbed) {
  for (int i = 0; i < 2; ++i) {
    testbed.host(i).caches().SetDramContentionHook(nullptr);
    testbed.runtime(i).SetPreemptionHook(nullptr);
  }
}

}  // namespace twochains::bench
