// Aligned-column table output for the figure benches, plus shape checks:
// every bench prints its measured series and evaluates the paper's
// qualitative claims (who wins, by what factor, where crossovers sit).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/strfmt.hpp"
#include "common/units.hpp"

namespace twochains::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Prints with per-column alignment to stdout.
  void Print() const {
    std::vector<std::size_t> widths(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      widths[c] = columns_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < widths.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string();
        std::printf("%c %-*s", c == 0 ? ' ' : '|',
                    static_cast<int>(widths[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(columns_);
    std::size_t total = 2;
    for (const auto w : widths) total += w + 3;
    std::printf(" %s\n", std::string(total, '-').c_str());
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string FmtUs(PicoTime t) {
  return StrFormat("%.3f", ToMicroseconds(t));
}
inline std::string FmtPct(double frac) {
  return StrFormat("%+.1f%%", frac * 100.0);
}
inline std::string FmtF(double v, const char* fmt = "%.2f") {
  return StrFormat(fmt, v);
}
inline std::string FmtU64(std::uint64_t v) {
  return StrFormat("%llu", static_cast<unsigned long long>(v));
}

/// Prints a figure banner.
inline void Banner(const char* fig, const char* title) {
  std::printf("\n==== %s — %s ====\n", fig, title);
}

/// Records + prints a named shape check (the qualitative claim from the
/// paper). Returns pass/fail so benches can exit nonzero on regression.
inline bool ShapeCheck(const char* claim, bool ok) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", claim);
  return ok;
}

}  // namespace twochains::bench
