// The paper's benchmark package: AMC sources for the jams of §VI-B and the
// kvstore ried that provides their server-side state.
//
//   * jam_ssum  — Server-Side Sum (§VI-B1): accumulates its payload and
//                 stores the result at the next slot of a server array.
//   * jam_iput  — Indirect Put (§VI-B2, Fig. 4): probes a hash index with
//                 the client-chosen key, assigns/looks up an offset, and
//                 copies the payload into the server heap at that offset.
//   * ried_kvstore — exports the results array, the hash index, and the
//                 heap; auto-initialized at load.
#pragma once

#include "common/status.hpp"
#include "pkg/package.hpp"

namespace twochains::bench {

/// Hash-index capacity of the kvstore ried.
inline constexpr std::uint64_t kTableSlots = 4096;
/// Server heap bytes (bounds the sum of distinct keys × payload).
inline constexpr std::uint64_t kHeapBytes = 16ull << 20;

/// A builder pre-loaded with the benchmark sources (callers may add more).
pkg::PackageBuilder MakeBenchPackageBuilder();

/// Builds the canonical benchmark package ("tcbench").
StatusOr<pkg::Package> BuildBenchPackage();

}  // namespace twochains::bench
