// Interference model for the tail-latency experiments (Figs. 11/12).
//
// The paper co-runs `stress-ng --class vm --all 1` pinned to all four
// cores. Its effect on the active-message path decomposes into:
//   * memory-bandwidth contention — DRAM accesses slow down, stochastically
//     and heavy-tailed (row-buffer conflicts, queueing). LLC-stashed
//     message bytes dodge this entirely, which is the asymmetry the figures
//     show ("stashing reduces active message memory bandwidth utilization");
//   * scheduler preemption — the receiver thread occasionally loses the
//     core for a scheduling quantum, adding rare but large delays to both
//     configurations.
// Both processes are seeded-deterministic.
#pragma once

#include <cstdint>

#include "core/two_chains.hpp"

namespace twochains::bench {

struct StressConfig {
  std::uint64_t seed = 0x57e55ull;
  /// Mean extra DRAM latency per access (core cycles), exponential.
  double dram_extra_mean_cycles = 200.0;
  /// Frequent large DRAM spikes (row conflicts / queueing behind the
  /// stress workload): probability per access and Pareto tail (cycles).
  /// This is the noise source stashing dodges.
  double dram_spike_probability = 0.05;
  double dram_spike_scale_cycles = 4000.0;
  double dram_spike_alpha = 1.6;
  /// Receiver preemption per message: probability and Pareto delay (us).
  /// Hits stash and non-stash alike; kept moderate so it shapes the spread
  /// without masking the DRAM asymmetry.
  double preempt_probability = 0.002;
  double preempt_scale_us = 2.5;
  double preempt_alpha = 2.2;
  /// Preemption makes a pool core's "idle while sibling backlogged" signal
  /// jittery, so stress raises the receiver wait loop's steal hysteresis
  /// by this much (claims would otherwise thrash on noise). Applied as
  /// `pristine + boost` — idempotent across repeated ApplyStress calls —
  /// and restored exactly by ClearStress.
  std::uint32_t steal_hysteresis_boost = 1;
};

/// Installs the interference hooks on every host of the fabric (seeded
/// per host, in host-index order, so N-host soak runs stay reproducible)
/// and boosts each runtime's steal hysteresis. The pre-stress wait-loop
/// config is snapshotted on the first apply; ClearStress restores it, so
/// apply/clear round-trips leave the fabric byte-exactly as found.
void ApplyStress(core::Fabric& fabric, const StressConfig& config);

/// Installs the interference hooks on both hosts of the testbed.
void ApplyStress(core::Testbed& testbed, const StressConfig& config);

/// Removes all interference hooks and restores the wait-loop hysteresis
/// defaults snapshotted by the first ApplyStress (exact round-trip).
void ClearStress(core::Fabric& fabric);
void ClearStress(core::Testbed& testbed);

}  // namespace twochains::bench
