#include "benchlib/perftest.hpp"

#include <map>
#include <memory>

#include "common/pump.hpp"
#include "common/strfmt.hpp"
#include "cpu/spinwait.hpp"

namespace twochains::bench {
namespace {

std::vector<std::uint64_t> DefaultArgs(std::uint64_t iter) {
  // Key space of 128 so the Indirect Put table/heap stay bounded while the
  // index still gets real probe traffic.
  return {iter & 127};
}

}  // namespace

StatusOr<PingPongResult> RunAmPingPong(core::Testbed& testbed,
                                       const AmConfig& config) {
  core::Runtime& initiator = testbed.runtime(0);
  core::Runtime& responder = testbed.runtime(1);
  const ArgsFn args_fn = config.args ? config.args : DefaultArgs;
  const std::uint16_t flags =
      config.no_execute ? core::kFlagNoExecute : std::uint16_t{0};
  const std::vector<std::uint8_t> usr(config.usr_bytes, 0x5A);

  PingPongResult result;
  result.one_way = LatencySample(config.iterations);
  const std::uint64_t total = config.warmup + config.iterations;

  std::uint64_t iter = 0;
  PicoTime ping_start = 0;
  Status failure;

  auto send_ping = [&]() {
    ping_start = testbed.engine().Now();
    auto receipt = initiator.Send(config.jam, config.mode, args_fn(iter),
                                  usr, flags);
    if (!receipt.ok()) {
      failure = receipt.status();
      testbed.engine().Stop();
      return;
    }
    result.frame_len = receipt->frame_len;
    result.protocol = receipt->protocol;
  };

  // Responder: every executed ping triggers a pong.
  responder.SetOnExecuted([&](const core::ReceivedMessage&) {
    auto receipt = responder.Send(config.jam, config.mode, args_fn(iter),
                                  usr, flags);
    if (!receipt.ok()) {
      failure = receipt.status();
      testbed.engine().Stop();
    }
  });

  // Initiator: pong executed -> one iteration complete.
  bool done = false;
  initiator.SetOnExecuted([&](const core::ReceivedMessage& msg) {
    const PicoTime rtt = msg.completed_at - ping_start;
    if (iter >= config.warmup) result.one_way.Add(rtt / 2);
    ++iter;
    ++result.messages;
    if (iter >= total) {
      done = true;
      testbed.engine().Stop();
      return;
    }
    send_ping();
  });

  send_ping();
  testbed.RunUntil([&] { return done || !failure.ok(); });
  if (!failure.ok()) return failure;
  if (!done) return Internal("ping-pong stalled (flow control deadlock?)");
  result.responder_counters = responder.ReceiverPoolCounters();
  initiator.SetOnExecuted(nullptr);
  responder.SetOnExecuted(nullptr);
  return result;
}

StatusOr<RateResult> RunAmInjectionRate(core::Testbed& testbed,
                                        const AmConfig& config) {
  core::Runtime& sender = testbed.runtime(0);
  core::Runtime& receiver = testbed.runtime(1);
  const ArgsFn args_fn = config.args ? config.args : DefaultArgs;
  const std::uint16_t flags =
      config.no_execute ? core::kFlagNoExecute : std::uint16_t{0};
  const std::vector<std::uint8_t> usr(config.usr_bytes, 0xA5);

  const std::uint64_t total = config.iterations;
  RateResult result;
  result.messages = total;

  std::uint64_t sent = 0;
  std::uint64_t completed = 0;
  PicoTime first_send = 0;
  PicoTime last_complete = 0;
  bool started = false;
  bool done = false;
  Status failure;

  PumpLoop<> send_loop;
  send_loop.Set([&, resume = send_loop.Handle()]() {
    if (sent >= total || !failure.ok()) return;
    if (!sender.HasFreeSlot()) {
      sender.NotifyWhenSlotFree(resume);
      return;
    }
    if (!started) {
      started = true;
      first_send = testbed.engine().Now();
    }
    auto receipt =
        sender.Send(config.jam, config.mode, args_fn(sent), usr, flags);
    if (!receipt.ok()) {
      failure = receipt.status();
      testbed.engine().Stop();
      return;
    }
    result.frame_len = receipt->frame_len;
    result.wire_bytes += receipt->frame_len;
    ++sent;
    // The sender core is busy for sender_cost; next message after that.
    testbed.engine().ScheduleAfter(receipt->sender_cost, resume,
                                   "bench.send");
  });

  receiver.SetOnExecuted([&](const core::ReceivedMessage& msg) {
    ++completed;
    last_complete = msg.completed_at;
    if (completed >= total) {
      done = true;
      testbed.engine().Stop();
    }
  });

  send_loop();
  testbed.RunUntil([&] { return done || !failure.ok(); });
  if (!failure.ok()) return failure;
  if (!done) return Internal("injection-rate run stalled");
  receiver.SetOnExecuted(nullptr);

  result.duration = last_complete - first_send;
  result.messages_per_second = MessagesPerSecond(total, result.duration);
  result.megabytes_per_second =
      MegabytesPerSecond(result.wire_bytes, result.duration);
  result.rx_jam = receiver.jam_cache_stats();
  return result;
}

namespace {

/// Shared run state for RunIncastRate. Heap-allocated and captured by
/// shared_ptr in every pump/waiter callback, so events or slot-waiters
/// that outlive the call (e.g. after an early Stop()) stay harmless.
struct IncastCtx {
  struct Sender {
    core::Runtime* runtime = nullptr;
    core::PeerId to_receiver = core::kInvalidPeer;  // on the sender
    std::uint64_t target = 0;  ///< messages this sender pushes (skew-aware)
    std::uint32_t weight = 1;
    std::uint64_t sent = 0;
    std::uint64_t completed = 0;
    std::uint64_t flow_control_waits = 0;
    std::map<std::uint32_t, PicoTime> send_time;  // by sn (sns may be sparse)
  };
  std::vector<Sender> senders;
  std::map<core::PeerId, std::size_t> by_rx_peer;  // receiver-side id -> idx
  std::vector<std::uint8_t> usr;
  ArgsFn args;
  std::string jam;
  core::Invoke mode = core::Invoke::kInjected;
  std::uint64_t per_sender = 0;
  std::uint64_t total = 0;
  std::uint64_t completed = 0;
  std::uint64_t frame_len = 0;
  PicoTime first_send = 0;
  PicoTime last_complete = 0;
  bool started = false;
  bool done = false;
  bool active = true;  ///< cleared when RunIncastRate returns
  Status failure;
  LatencySample latency;
};

}  // namespace

StatusOr<IncastResult> RunIncastRate(core::Fabric& fabric,
                                     std::uint32_t receiver,
                                     const std::vector<std::uint32_t>& senders,
                                     const IncastConfig& config) {
  if (senders.empty()) return InvalidArgument("no senders");
  core::Runtime& rx = fabric.runtime(receiver);

  auto ctx = std::make_shared<IncastCtx>();
  ctx->usr.assign(config.usr_bytes, 0xC3);
  ctx->args = config.args ? config.args : DefaultArgs;
  ctx->jam = config.jam;
  ctx->mode = config.mode;
  if (!config.sender_weights.empty() &&
      config.sender_weights.size() != senders.size()) {
    return InvalidArgument(
        StrFormat("%zu sender_weights for %zu senders",
                  config.sender_weights.size(), senders.size()));
  }
  ctx->per_sender = config.iterations_per_sender;
  ctx->total = 0;
  ctx->senders.resize(senders.size());
  for (std::size_t i = 0; i < senders.size(); ++i) {
    if (senders[i] == receiver) {
      return InvalidArgument("receiver cannot also be a sender");
    }
    // Weight 0 is a *silent* sender: it participates in the topology but
    // pushes nothing (and is excluded from the fairness normalization
    // below — dividing its zero rate by a zero weight would poison Jain
    // with NaN).
    const std::uint32_t weight =
        config.sender_weights.empty() ? 1u : config.sender_weights[i];
    ctx->senders[i].weight = weight;
    ctx->senders[i].target = ctx->per_sender * weight;
    ctx->total += ctx->senders[i].target;
    ctx->senders[i].runtime = &fabric.runtime(senders[i]);
    TC_ASSIGN_OR_RETURN(ctx->senders[i].to_receiver,
                        fabric.PeerIdFor(senders[i], receiver));
    TC_ASSIGN_OR_RETURN(const core::PeerId rx_peer,
                        fabric.PeerIdFor(receiver, senders[i]));
    if (!ctx->by_rx_peer.emplace(rx_peer, i).second) {
      return InvalidArgument("duplicate sender host");
    }
  }
  if (ctx->total == 0) {
    return InvalidArgument("every sender weight is zero (nothing to send)");
  }
  ctx->latency = LatencySample(ctx->total);

  // One pump per sender, each paced by its own sender CPU and its own
  // per-peer flow control toward the receiver.
  std::vector<PumpLoop<>> pumps(senders.size());
  for (std::size_t i = 0; i < senders.size(); ++i) {
    pumps[i].Set([ctx, &fabric, i, resume = pumps[i].Handle()]() {
      if (!ctx->active) return;
      IncastCtx::Sender& s = ctx->senders[i];
      if (s.sent >= s.target || !ctx->failure.ok()) return;
      if (!s.runtime->HasFreeSlot(s.to_receiver)) {
        ++s.flow_control_waits;
        s.runtime->NotifyWhenSlotFree(s.to_receiver, resume);
        return;
      }
      if (!ctx->started) {
        ctx->started = true;
        ctx->first_send = fabric.engine().Now();
      }
      auto receipt = s.runtime->Send(s.to_receiver, ctx->jam, ctx->mode,
                                     ctx->args(s.sent), ctx->usr);
      if (!receipt.ok()) {
        ctx->failure = receipt.status();
        fabric.engine().Stop();
        return;
      }
      s.send_time[receipt->sn] = fabric.engine().Now();
      ctx->frame_len = receipt->frame_len;
      ++s.sent;
      fabric.engine().ScheduleAfter(receipt->sender_cost, resume,
                                    "incast.send");
    });
  }

  rx.SetOnExecuted([ctx, &fabric](const core::ReceivedMessage& msg) {
    const auto it = ctx->by_rx_peer.find(msg.from);
    if (it == ctx->by_rx_peer.end()) return;  // not one of our senders
    IncastCtx::Sender& s = ctx->senders[it->second];
    ++s.completed;
    ++ctx->completed;
    ctx->last_complete = msg.completed_at;
    const auto sent_at = s.send_time.find(msg.sn);
    if (sent_at != s.send_time.end()) {
      ctx->latency.Add(msg.completed_at - sent_at->second);
      s.send_time.erase(sent_at);
    }
    if (ctx->completed >= ctx->total) {
      ctx->done = true;
      fabric.engine().Stop();
    }
  });

  for (auto& pump : pumps) pump();
  fabric.RunUntil([&] { return ctx->done || !ctx->failure.ok(); });
  rx.SetOnExecuted(nullptr);
  ctx->active = false;  // defuse any still-parked pump callbacks
  if (!ctx->failure.ok()) return ctx->failure;
  if (!ctx->done) return Internal("incast run stalled (flow control deadlock?)");

  IncastResult result;
  result.frame_len = ctx->frame_len;
  result.latency = std::move(ctx->latency);
  result.duration = ctx->last_complete - ctx->first_send;
  result.aggregate_messages_per_second =
      MessagesPerSecond(ctx->total, result.duration);
  result.aggregate_megabytes_per_second =
      MegabytesPerSecond(ctx->total * result.frame_len, result.duration);

  double sum = 0, sum_sq = 0;
  std::size_t participants = 0;
  for (std::size_t i = 0; i < senders.size(); ++i) {
    IncastSenderResult sr;
    sr.host = senders[i];
    sr.messages = ctx->senders[i].completed;
    sr.messages_per_second =
        MessagesPerSecond(ctx->senders[i].completed, result.duration);
    sr.flow_control_waits = ctx->senders[i].flow_control_waits;
    // Under a skewed load, fairness is per *offered* load: normalize each
    // sender's rate by its weight so Jain still reads 1.0 when everyone
    // completes in proportion to what they pushed. Weight-0 (silent)
    // senders offered nothing, so they are excluded from both the sum and
    // the denominator — dividing by their zero weight would yield
    // inf/NaN, and counting them as a zero share would misread a fully
    // fair run as unfair.
    if (ctx->senders[i].weight > 0) {
      const double normalized =
          sr.messages_per_second / ctx->senders[i].weight;
      sum += normalized;
      sum_sq += normalized * normalized;
      ++participants;
    }
    result.per_sender.push_back(sr);
  }
  if (sum_sq > 0 && participants > 0) {
    result.fairness =
        (sum * sum) / (static_cast<double>(participants) * sum_sq);
  }
  return result;
}

Table PeerStatsTable(const core::Runtime& runtime) {
  Table table({"peer", "sent", "delivered", "executed", "stalls",
               "flags_returned"});
  const auto& per_peer = runtime.stats().per_peer;
  for (std::size_t i = 0; i < per_peer.size(); ++i) {
    const core::PeerStats& p = per_peer[i];
    table.AddRow({FmtU64(i), FmtU64(p.messages_sent),
                  FmtU64(p.messages_delivered), FmtU64(p.messages_executed),
                  FmtU64(p.send_stalls), FmtU64(p.bank_flags_returned)});
  }
  return table;
}

// ------------------------------------------------------------- raw puts

namespace {

/// One side of the raw-put ping-pong: buffer + endpoint + wait model.
struct RawSide {
  core::Runtime* runtime = nullptr;
  std::unique_ptr<ucxs::Endpoint> endpoint;
  mem::VirtAddr send_buf = 0;
  mem::VirtAddr recv_buf = 0;
  mem::RKey recv_rkey;
  PicoTime idle_since = 0;
};

/// Cycles the UCX progress path burns detecting one completion (queue
/// polling + bookkeeping) — the "library overhead ... detecting message
/// completion" of §VII.
constexpr Cycles kUcxDetectCycles = 140;

}  // namespace

StatusOr<PingPongResult> RunRawPutPingPong(core::Testbed& testbed,
                                           const RawPutConfig& config) {
  // Independent buffers; does not touch the Two-Chains mailboxes.
  RawSide sides[2];
  ucxs::Worker* workers[2] = {nullptr, nullptr};
  for (int i = 0; i < 2; ++i) {
    auto& host = testbed.host(i);
    sides[i].runtime = &testbed.runtime(i);
    TC_ASSIGN_OR_RETURN(sides[i].send_buf,
                        host.memory().Allocate(config.size + 64, 64,
                                               mem::Perm::kRW, "raw:send"));
    TC_ASSIGN_OR_RETURN(sides[i].recv_buf,
                        host.memory().Allocate(config.size + 64, 64,
                                               mem::Perm::kRW, "raw:recv"));
    TC_ASSIGN_OR_RETURN(
        sides[i].recv_rkey,
        host.regions().RegisterRegion(sides[i].recv_buf, config.size + 64,
                                      mem::RemoteAccess::kWrite, "raw:recv"));
  }
  // Endpoints: standard UCX put path.
  ucxs::Context ctx0(testbed.engine(), testbed.host(0), testbed.nic(0));
  ucxs::Context ctx1(testbed.engine(), testbed.host(1), testbed.nic(1));
  ucxs::Worker w0(ctx0), w1(ctx1);
  workers[0] = &w0;
  workers[1] = &w1;
  sides[0].endpoint =
      std::make_unique<ucxs::Endpoint>(*workers[0], ucxs::PutMode::kUcx);
  sides[1].endpoint =
      std::make_unique<ucxs::Endpoint>(*workers[1], ucxs::PutMode::kUcx);

  const cpu::WaitModelConfig wait_cfg = testbed.runtime(0).config().wait;
  cpu::WaitModel wait(wait_cfg, kCoreClock);

  PingPongResult result;
  result.one_way = LatencySample(config.iterations);
  const std::uint64_t total = config.warmup + config.iterations;
  std::uint64_t iter = 0;
  PicoTime ping_start = 0;
  bool done = false;
  Status failure;

  // forward declaration of the mutually recursive send/receive steps.
  PumpLoop<int> send_from;
  send_from.Set([&, resume = send_from.Handle()](int from) {
    const int to = 1 - from;
    if (from == 0) ping_start = testbed.engine().Now();
    auto receipt = sides[from].endpoint->PutNbi(
        sides[from].send_buf, sides[to].recv_buf, config.size,
        sides[to].recv_rkey, false,
        [&, resume, to](const net::PutCompletion& c) {
          if (!c.status.ok()) {
            failure = c.status;
            testbed.engine().Stop();
            return;
          }
          // Receiver detection: poll/WFE on the buffer tail + UCX
          // completion processing, charged to the receiving core.
          auto& host = testbed.host(to);
          const PicoTime waited =
              c.delivered_at > sides[to].idle_since
                  ? c.delivered_at - sides[to].idle_since
                  : 0;
          const cpu::WaitOutcome outcome = wait.Wait(waited);
          host.core(0).Charge(outcome.cycles_burned, cpu::CycleClass::kWait);
          Cycles detect = kUcxDetectCycles;
          detect += host.caches().Access(
              0, sides[to].recv_buf + config.size - 8, 8,
              cache::AccessKind::kLoad);
          const PicoTime busy =
              host.core(0).Charge(detect, cpu::CycleClass::kExecute);
          const PicoTime wake =
              c.delivered_at + outcome.detection_delay + busy;
          testbed.engine().ScheduleAt(
              wake,
              [&, resume, to] {
                sides[to].idle_since = testbed.engine().Now();
                if (to == 0) {
                  // pong landed back at the initiator: iteration done.
                  const PicoTime rtt = testbed.engine().Now() - ping_start;
                  if (iter >= config.warmup) result.one_way.Add(rtt / 2);
                  ++iter;
                  ++result.messages;
                  if (iter >= total) {
                    done = true;
                    testbed.engine().Stop();
                    return;
                  }
                  resume(0);
                } else {
                  resume(1);  // respond with pong
                }
              },
              "raw.detect");
        });
    if (!receipt.ok()) {
      failure = receipt.status();
      testbed.engine().Stop();
    }
  });

  sides[0].idle_since = sides[1].idle_since = testbed.engine().Now();
  send_from(0);
  testbed.RunUntil([&] { return done || !failure.ok(); });
  if (!failure.ok()) return failure;
  if (!done) return Internal("raw put ping-pong stalled");
  result.frame_len = config.size;
  result.protocol = sides[0].endpoint->SelectProtocol(config.size);
  result.responder_counters = testbed.host(1).core(0).counters();
  return result;
}

StatusOr<RateResult> RunRawPutStream(core::Testbed& testbed,
                                     const RawPutConfig& config) {
  auto& src_host = testbed.host(0);
  auto& dst_host = testbed.host(1);
  TC_ASSIGN_OR_RETURN(const mem::VirtAddr src,
                      src_host.memory().Allocate(config.size + 64, 64,
                                                 mem::Perm::kRW, "raw:src"));
  TC_ASSIGN_OR_RETURN(const mem::VirtAddr dst,
                      dst_host.memory().Allocate(config.size + 64, 64,
                                                 mem::Perm::kRW, "raw:dst"));
  TC_ASSIGN_OR_RETURN(
      const mem::RKey rkey,
      dst_host.regions().RegisterRegion(dst, config.size + 64,
                                        mem::RemoteAccess::kWrite,
                                        "raw:dst"));
  ucxs::Context ctx(testbed.engine(), src_host, testbed.nic(0));
  ucxs::Worker worker(ctx);
  ucxs::Endpoint endpoint(worker, ucxs::PutMode::kUcx);

  const std::uint64_t total = config.iterations;
  RateResult result;
  result.messages = total;
  result.frame_len = config.size;

  std::uint64_t posted = 0;
  std::uint64_t delivered = 0;
  PicoTime last_delivery = 0;
  bool done = false;
  Status failure;

  PumpLoop<> post_loop;
  post_loop.Set([&, resume = post_loop.Handle()]() {
    if (posted >= total || !failure.ok()) return;
    auto receipt = endpoint.PutNbi(
        src, dst, config.size, rkey, false,
        [&](const net::PutCompletion& c) {
          if (!c.status.ok()) {
            failure = c.status;
            testbed.engine().Stop();
            return;
          }
          // Sender-side completion processing (tracking) cost.
          testbed.host(0).core(1).Charge(kUcxDetectCycles,
                                         cpu::CycleClass::kExecute);
          ++delivered;
          last_delivery = c.delivered_at;
          if (delivered >= total) {
            done = true;
            testbed.engine().Stop();
          }
        });
    if (!receipt.ok()) {
      failure = receipt.status();
      testbed.engine().Stop();
      return;
    }
    ++posted;
    testbed.engine().ScheduleAfter(receipt->sender_overhead, resume,
                                   "raw.post");
  });

  post_loop();
  testbed.RunUntil([&] { return done || !failure.ok(); });
  if (!failure.ok()) return failure;
  if (!done) return Internal("raw put stream stalled");

  result.duration = last_delivery;
  result.messages_per_second = MessagesPerSecond(total, result.duration);
  result.megabytes_per_second =
      MegabytesPerSecond(total * config.size, result.duration);
  return result;
}

}  // namespace twochains::bench
