#include "benchlib/openloop.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <span>

#include "common/rng.hpp"
#include "core/fabric.hpp"
#include "jamlib/jamlib.hpp"
#include "jamlib/kv_service.hpp"

namespace twochains::bench {
namespace {

/// The value stored under @p key (deterministic, never kKvMiss, so a
/// completed get can be checked for hit vs. miss by return value alone).
std::int64_t ValueFor(std::uint64_t key) {
  return static_cast<std::int64_t>(key * 2 + 7);
}

struct Pending {
  PicoTime arrival = 0;
  bool is_get = false;
};

/// One (client host, shard) link's open-loop state: the overflow queue
/// requests wait in when flow control blocks, and whether a slot waiter
/// is already parked on the runtime.
struct Link {
  std::deque<Pending> backlog_meta;
  std::deque<jamlib::KvRequest> backlog;
  bool waiting = false;
};

// The driver is lane-partitioned so `config.lanes > 1` runs race-free and
// byte-identical to single-lane: every mutable field below is written by
// exactly one engine lane. ClientState belongs to its client host's lane
// (arrival generator, flow control, send counters); ShardState belongs to
// its shard host's lane (completion matching, latency). The only
// client->shard handoff — the arrival stamp a completion is matched
// against — travels as an engine event homed to the shard's lane, posted
// at Now() + lookahead so it lands before the message it describes (the
// NIC adds doorbell + serialization on top of the wire latency the
// lookahead is derived from). Partials merge in host order after the run.

/// Per-client-host open-loop state; every field is written only by events
/// on this host's lane. Each host draws its own Poisson process (rate/C),
/// so the merged offered load matches OpenLoopConfig.offered_rate_mops.
struct ClientState {
  Xoshiro256 rng{1};
  std::uint64_t quota = 0;      ///< this host's share of config.requests
  std::uint64_t scheduled = 0;  ///< arrivals drawn so far
  /// Simulated clients multiplexed on this host (ids with id % C == c).
  std::uint64_t population = 0;
  std::vector<char> spoke;  ///< per-population-member "has spoken" bit

  std::uint64_t sent = 0;
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t queued = 0;
  std::uint64_t queue_peak = 0;
  std::uint64_t distinct_clients = 0;
  std::uint64_t hot_head_requests = 0;
  std::string error;

  std::vector<Link> links;  ///< per shard
};

/// Per-shard completion state; written only by events on the shard host's
/// lane (the executed hook and the arrival-record handoff events).
struct ShardState {
  /// In-flight requests, keyed by (from peer << 32) | sn.
  std::map<std::uint64_t, Pending> pending;
  /// Requests whose by-handle frame missed the cache and is being resent
  /// full-body (new sn), per from-peer, in NAK order. The resend completes
  /// under an sn the primary map never saw; it is matched FIFO here.
  /// Concurrent misses on one link can swap two near-simultaneous arrival
  /// stamps — a bounded, documented distortion.
  std::map<core::PeerId, std::deque<Pending>> missed;

  std::uint64_t executed = 0;
  std::uint64_t get_hits = 0;
  PicoTime last_completed_at = 0;
  LatencySample latency;
};

struct Ctx {
  const OpenLoopConfig* config = nullptr;
  core::Fabric* fabric = nullptr;
  jamlib::KvShardMap shard_map{1, 0};
  /// Cross-lane handoff horizon: the engine's conservative lookahead.
  PicoTime record_horizon = 1;

  std::vector<ClientState> clients;  ///< [client host]
  std::vector<ShardState> shards;    ///< [shard]

  /// tx_peer[client][shard]: the shard's PeerId on the client's runtime.
  std::vector<std::vector<core::PeerId>> tx_peer;
  /// rx_peer[shard][client]: the client's PeerId on the shard's runtime
  /// (what ReceivedMessage::from reports).
  std::vector<std::vector<core::PeerId>> rx_peer;

  /// Read at the window boundary (all lanes barrier-parked), written by
  /// whichever lane fails first; atomic only to make the flag itself
  /// race-free.
  std::atomic<bool> failed{false};

  OpenLoopResult result;  ///< merged after the run; untouched during it
};

std::uint64_t PendingKey(core::PeerId from, std::uint32_t sn) {
  return (static_cast<std::uint64_t>(from) << 32) | sn;
}

std::uint64_t ShareOf(std::uint64_t total, std::uint32_t parts,
                      std::uint32_t index) {
  return total / parts + (index < total % parts ? 1 : 0);
}

/// Sends everything the link's backlog holds while slots last; parks a
/// slot waiter when flow control blocks mid-backlog. Runs on client
/// @p client's lane (generator events and slot-free callbacks both home
/// there); the arrival record rides a homed event to the shard's lane.
void DrainLink(const std::shared_ptr<Ctx>& ctx, std::uint32_t client,
               std::uint32_t shard) {
  ClientState& cs = ctx->clients[client];
  Link& link = cs.links[shard];
  core::Runtime& rt = ctx->fabric->runtime(client);
  const core::PeerId peer = ctx->tx_peer[client][shard];
  while (!link.backlog.empty()) {
    if (!rt.HasFreeSlot(peer)) {
      if (!link.waiting) {
        link.waiting = true;
        rt.NotifyWhenSlotFree(peer, [ctx, client, shard]() {
          ctx->clients[client].links[shard].waiting = false;
          DrainLink(ctx, client, shard);
        });
      }
      return;
    }
    const jamlib::KvRequest request = link.backlog.front();
    const Pending meta = link.backlog_meta.front();
    link.backlog.pop_front();
    link.backlog_meta.pop_front();
    const std::vector<std::uint64_t> args = jamlib::KvArgsFor(request);
    const auto receipt = rt.Send(peer, jamlib::KvJamFor(request.op),
                                 core::Invoke::kInjected, args, {});
    if (!receipt.ok()) {
      cs.error = "send failed: " + receipt.status().ToString();
      ctx->failed.store(true, std::memory_order_relaxed);
      return;
    }
    ++cs.sent;
    // Hand the arrival stamp to the shard's lane. At Now() + lookahead the
    // record sorts strictly before the message's own rx event (which pays
    // doorbell + serialization on top of the same wire latency), so the
    // executed hook always finds it — at every executor count.
    sim::Engine& engine = ctx->fabric->engine();
    const std::uint64_t key =
        PendingKey(ctx->rx_peer[shard][client], receipt->sn);
    engine.ScheduleAtOn(
        ctx->config->client_hosts + shard,
        engine.Now() + ctx->record_horizon,
        [ctx, shard, key, meta]() { ctx->shards[shard].pending[key] = meta; },
        "openloop.record");
  }
}

/// One arrival on client host @p client: draw a population member, key
/// (Zipf rank), and op from the host's own stream; enqueue on the owning
/// link; schedule the host's next arrival.
void Arrive(const std::shared_ptr<Ctx>& ctx, std::uint32_t client) {
  ClientState& cs = ctx->clients[client];
  if (ctx->failed.load(std::memory_order_relaxed) || cs.scheduled >= cs.quota) {
    return;
  }
  ++cs.scheduled;
  const OpenLoopConfig& config = *ctx->config;

  const std::uint64_t member = cs.rng.NextBelow(cs.population);
  if (!cs.spoke[member]) {
    cs.spoke[member] = 1;
    ++cs.distinct_clients;
  }
  const std::uint64_t rank =
      cs.rng.NextZipf(config.keyspace, config.zipf_theta);
  if (rank < 10) ++cs.hot_head_requests;

  jamlib::KvRequest request;
  request.key = rank;  // rank is the key; KvShardMap's mix spreads the head
  if (cs.rng.NextBernoulli(config.put_fraction)) {
    request.op = jamlib::KvOp::kPut;
    request.value = ValueFor(request.key);
    ++cs.puts;
  } else {
    request.op = jamlib::KvOp::kGet;
    ++cs.gets;
  }

  const std::uint32_t shard = ctx->shard_map.ShardOf(request.key);
  Link& link = cs.links[shard];
  if (!link.backlog.empty() || link.waiting) ++cs.queued;
  link.backlog.push_back(request);
  link.backlog_meta.push_back(
      Pending{ctx->fabric->engine().Now(), request.op == jamlib::KvOp::kGet});
  cs.queue_peak = std::max<std::uint64_t>(cs.queue_peak, link.backlog.size());
  DrainLink(ctx, client, shard);

  if (cs.scheduled < cs.quota) {
    // C merged per-host Poisson processes at rate/C each superpose to the
    // configured offered rate.
    const double gap = cs.rng.NextExponential(
        1'000'000.0 / config.offered_rate_mops * config.client_hosts);
    ctx->fabric->engine().ScheduleAfterOn(
        client, static_cast<PicoTime>(gap) + 1,
        [ctx, client]() { Arrive(ctx, client); }, "openloop-arrival");
  }
}

/// Completion hook for shard @p shard (runs on the shard host's lane):
/// matches executed jams back to their arrival stamps; reroutes
/// cache-missed frames to the resend FIFO.
void OnShardExecuted(const std::shared_ptr<Ctx>& ctx, std::uint32_t shard,
                     const core::ReceivedMessage& msg) {
  ShardState& ss = ctx->shards[shard];
  if (msg.cache_miss) {
    const auto it = ss.pending.find(PendingKey(msg.from, msg.sn));
    if (it != ss.pending.end()) {
      ss.missed[msg.from].push_back(it->second);
      ss.pending.erase(it);
    }
    return;
  }
  if (!msg.executed) return;

  Pending meta;
  const auto it = ss.pending.find(PendingKey(msg.from, msg.sn));
  if (it != ss.pending.end()) {
    meta = it->second;
    ss.pending.erase(it);
  } else {
    auto& fifo = ss.missed[msg.from];
    if (fifo.empty()) return;  // preload traffic or foreign frame
    meta = fifo.front();
    fifo.pop_front();
  }

  ++ss.executed;
  ss.last_completed_at = std::max(ss.last_completed_at, msg.completed_at);
  ss.latency.Add(msg.completed_at - meta.arrival);
  if (meta.is_get &&
      static_cast<std::int64_t>(msg.return_value) != jamlib::kKvMiss) {
    ++ss.get_hits;
  }
}

/// Closed-loop, unmeasured: writes every key once so measured gets hit.
Status Preload(const std::shared_ptr<Ctx>& ctx) {
  const OpenLoopConfig& config = *ctx->config;
  for (std::uint64_t key = 0; key < config.keyspace; ++key) {
    const std::uint32_t client =
        static_cast<std::uint32_t>(key % config.client_hosts);
    const std::uint32_t shard = ctx->shard_map.ShardOf(key);
    core::Runtime& rt = ctx->fabric->runtime(client);
    const core::PeerId peer = ctx->tx_peer[client][shard];
    while (!rt.HasFreeSlot(peer)) {
      bool freed = false;
      rt.NotifyWhenSlotFree(peer, [&freed]() { freed = true; });
      if (!ctx->fabric->RunUntil([&freed]() { return freed; })) {
        return Internal("preload stalled: no slot ever freed");
      }
    }
    const std::uint64_t args[] = {key,
                                  static_cast<std::uint64_t>(ValueFor(key))};
    const auto receipt =
        rt.Send(peer, "kv_put", core::Invoke::kInjected, args, {});
    if (!receipt.ok()) return receipt.status();
  }
  ctx->fabric->Run();  // drain the tail of the preload
  return Status::Ok();
}

void AccumulateJamStats(const core::JamCacheStats& s, std::int64_t sign,
                        core::JamCacheStats* into) {
  const auto add = [sign](std::uint64_t& field, std::uint64_t v) {
    field = sign > 0 ? field + v : field - v;
  };
  add(into->hits, s.hits);
  add(into->misses, s.misses);
  add(into->installs, s.installs);
  add(into->evictions, s.evictions);
  add(into->invalidations, s.invalidations);
  add(into->naks_sent, s.naks_sent);
  add(into->bytes_saved, s.bytes_saved);
  add(into->link_cycles_saved, s.link_cycles_saved);
  add(into->by_handle_sends, s.by_handle_sends);
  add(into->naks_received, s.naks_received);
  add(into->resends, s.resends);
}

/// Folds the lane-partitioned partials into the flat result, in host
/// order, so the merge itself is deterministic. Latency percentiles are
/// order-independent anyway (nearest-rank over the multiset).
void MergePartials(Ctx& ctx) {
  OpenLoopResult& r = ctx.result;
  for (const ClientState& cs : ctx.clients) {
    r.sent += cs.sent;
    r.gets += cs.gets;
    r.puts += cs.puts;
    r.queued += cs.queued;
    r.queue_peak = std::max(r.queue_peak, cs.queue_peak);
    r.distinct_clients += cs.distinct_clients;
    r.hot_head_requests += cs.hot_head_requests;
    if (r.error.empty() && !cs.error.empty()) r.error = cs.error;
  }
  for (std::size_t s = 0; s < ctx.shards.size(); ++s) {
    const ShardState& ss = ctx.shards[s];
    r.completed += ss.executed;
    r.per_shard_executed[s] = ss.executed;
    r.get_hits += ss.get_hits;
    for (PicoTime sample : ss.latency.samples()) r.latency.Add(sample);
  }
}

}  // namespace

StatusOr<OpenLoopResult> RunKvOpenLoop(const OpenLoopConfig& config) {
  if (config.client_hosts == 0 || config.shards == 0) {
    return InvalidArgument("need at least one client and one shard");
  }
  if (config.requests == 0) return InvalidArgument("requests == 0");
  if (config.simulated_clients < config.client_hosts) {
    return InvalidArgument("simulated_clients < client_hosts");
  }
  if (!(config.offered_rate_mops > 0)) {
    return InvalidArgument("offered_rate_mops must be > 0");
  }
  if (config.put_fraction < 0 || config.put_fraction > 1) {
    return InvalidArgument("put_fraction outside [0, 1]");
  }
  if (config.keyspace == 0 ||
      config.keyspace > config.shards * (jamlib::kKvSlots * 3 / 4)) {
    return InvalidArgument(
        "keyspace must be in [1, shards * 3/4 * kKvSlots] (an overfull "
        "open-addressed table degrades into full-table probes)");
  }

  core::FabricOptions opts;
  opts.hosts = config.client_hosts + config.shards;
  opts.topology = core::Topology::kFullMesh;
  opts.runtime = config.runtime;
  opts.runtime.jam_cache = config.jam_cache;
  opts.engine.lanes = config.lanes;
  auto fabric = std::make_unique<core::Fabric>(opts);
  Status loaded =
      fabric->BuildAndLoad(jamlib::MakeJamlibPackageBuilder(), "tcjamlib");
  if (!loaded.ok()) return loaded;

  auto ctx = std::make_shared<Ctx>();
  ctx->config = &config;
  ctx->fabric = fabric.get();
  ctx->shard_map = jamlib::KvShardMap(config.shards, config.client_hosts);
  ctx->record_horizon = fabric->engine().Lookahead();
  ctx->shards.resize(config.shards);
  ctx->result.per_shard_executed.assign(config.shards, 0);

  ctx->clients.resize(config.client_hosts);
  for (std::uint32_t c = 0; c < config.client_hosts; ++c) {
    ClientState& cs = ctx->clients[c];
    // Decorrelated per-host streams from one seed (golden-ratio stride).
    cs.rng = Xoshiro256(config.seed + 0x9E3779B97F4A7C15ull * (c + 1));
    cs.quota = ShareOf(config.requests, config.client_hosts, c);
    cs.population = ShareOf(config.simulated_clients, config.client_hosts, c);
    cs.spoke.assign(cs.population, 0);
    cs.links.resize(config.shards);
  }

  ctx->tx_peer.resize(config.client_hosts);
  ctx->rx_peer.resize(config.shards);
  for (std::uint32_t c = 0; c < config.client_hosts; ++c) {
    for (std::uint32_t s = 0; s < config.shards; ++s) {
      auto tx = fabric->PeerIdFor(c, config.client_hosts + s);
      auto rx = fabric->PeerIdFor(config.client_hosts + s, c);
      if (!tx.ok()) return tx.status();
      if (!rx.ok()) return rx.status();
      ctx->tx_peer[c].push_back(*tx);
      ctx->rx_peer[s].resize(config.client_hosts);
      ctx->rx_peer[s][c] = *rx;
    }
  }

  if (config.preload) {
    Status warm = Preload(ctx);
    if (!warm.ok()) return warm;
  }

  // Baselines so the measured window excludes preload traffic.
  std::uint64_t wire_base = 0;
  core::JamCacheStats jam_base{};
  for (std::uint32_t h = 0; h < opts.hosts; ++h) {
    wire_base += fabric->runtime(h).stats().bytes_sent;
    AccumulateJamStats(fabric->runtime(h).jam_cache_stats(), +1, &jam_base);
  }
  for (std::uint32_t s = 0; s < config.shards; ++s) {
    fabric->runtime(config.client_hosts + s)
        .SetOnExecuted([ctx, s](const core::ReceivedMessage& msg) {
          OnShardExecuted(ctx, s, msg);
        });
  }

  const PicoTime started = fabric->engine().Now();
  for (std::uint32_t c = 0; c < config.client_hosts; ++c) {
    if (ctx->clients[c].quota == 0) continue;
    fabric->engine().ScheduleAtOn(
        c, started + 1, [ctx, c]() { Arrive(ctx, c); }, "openloop-arrival");
  }
  // Exactly config.requests arrivals are generated and each completes
  // once, so the laned window-granular condition check cannot overshoot
  // the sample count — results stay identical at every lane count.
  const bool drained = fabric->RunUntil([&ctx]() {
    if (ctx->failed.load(std::memory_order_relaxed)) return true;
    std::uint64_t done = 0;
    for (const ShardState& ss : ctx->shards) done += ss.executed;
    return done >= ctx->config->requests;
  });

  for (std::uint32_t s = 0; s < config.shards; ++s) {
    fabric->runtime(config.client_hosts + s).SetOnExecuted(nullptr);
  }
  MergePartials(*ctx);
  OpenLoopResult result = std::move(ctx->result);

  if (ctx->failed.load(std::memory_order_relaxed)) {
    return StatusOr<OpenLoopResult>(std::move(result));
  }
  if (result.completed < config.requests) {
    result.error = drained ? "run ended short of the request count"
                           : "engine drained with requests still in flight";
    return StatusOr<OpenLoopResult>(std::move(result));
  }

  // Duration from the shard-recorded completion stamps, not the idle
  // engine clock: a laned run's final window may fire trailing NIC events
  // past the last completion, and those must not skew the rate.
  PicoTime last_completed = started;
  for (const ShardState& ss : ctx->shards) {
    last_completed = std::max(last_completed, ss.last_completed_at);
  }
  result.duration = last_completed - started;
  if (result.duration > 0) {
    result.achieved_mops = static_cast<double>(result.completed) * 1e6 /
                           static_cast<double>(result.duration);
  }
  std::uint64_t wire_total = 0;
  for (std::uint32_t h = 0; h < opts.hosts; ++h) {
    wire_total += fabric->runtime(h).stats().bytes_sent;
    AccumulateJamStats(fabric->runtime(h).jam_cache_stats(), +1, &result.jam);
  }
  result.wire_bytes = wire_total - wire_base;
  AccumulateJamStats(jam_base, -1, &result.jam);
  result.ok = true;
  return StatusOr<OpenLoopResult>(std::move(result));
}

}  // namespace twochains::bench
