#include "benchlib/openloop.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <span>

#include "common/rng.hpp"
#include "core/fabric.hpp"
#include "jamlib/jamlib.hpp"
#include "jamlib/kv_service.hpp"

namespace twochains::bench {
namespace {

/// The value stored under @p key (deterministic, never kKvMiss, so a
/// completed get can be checked for hit vs. miss by return value alone).
std::int64_t ValueFor(std::uint64_t key) {
  return static_cast<std::int64_t>(key * 2 + 7);
}

struct Pending {
  PicoTime arrival = 0;
  bool is_get = false;
};

/// One (client host, shard) link's open-loop state: the overflow queue
/// requests wait in when flow control blocks, and whether a slot waiter
/// is already parked on the runtime.
struct Link {
  std::deque<Pending> backlog_meta;
  std::deque<jamlib::KvRequest> backlog;
  bool waiting = false;
};

struct Ctx {
  const OpenLoopConfig* config = nullptr;
  core::Fabric* fabric = nullptr;
  jamlib::KvShardMap shard_map{1, 0};
  OpenLoopResult result;

  Xoshiro256 rng{1};
  double mean_gap_ps = 0;
  std::uint64_t scheduled = 0;  ///< arrivals drawn so far

  /// tx_peer[client][shard]: the shard's PeerId on the client's runtime.
  std::vector<std::vector<core::PeerId>> tx_peer;
  /// rx_peer[shard][client]: the client's PeerId on the shard's runtime
  /// (what ReceivedMessage::from reports).
  std::vector<std::vector<core::PeerId>> rx_peer;

  std::vector<std::vector<Link>> links;  ///< [client][shard]

  /// In-flight requests per shard, keyed by (from peer << 32) | sn.
  std::vector<std::map<std::uint64_t, Pending>> pending;
  /// Requests whose by-handle frame missed the cache and is being resent
  /// full-body (new sn), per (shard, from peer), in NAK order. The resend
  /// completes under an sn the primary map never saw; it is matched FIFO
  /// here. Concurrent misses on one link can swap two near-simultaneous
  /// arrival stamps — a bounded, documented distortion.
  std::vector<std::map<core::PeerId, std::deque<Pending>>> missed;

  std::vector<bool> client_spoke;
  bool failed = false;
};

std::uint64_t PendingKey(core::PeerId from, std::uint32_t sn) {
  return (static_cast<std::uint64_t>(from) << 32) | sn;
}

/// Sends everything the link's backlog holds while slots last; parks a
/// slot waiter when flow control blocks mid-backlog.
void DrainLink(const std::shared_ptr<Ctx>& ctx, std::uint32_t client,
               std::uint32_t shard) {
  Link& link = ctx->links[client][shard];
  core::Runtime& rt = ctx->fabric->runtime(client);
  const core::PeerId peer = ctx->tx_peer[client][shard];
  while (!link.backlog.empty()) {
    if (!rt.HasFreeSlot(peer)) {
      if (!link.waiting) {
        link.waiting = true;
        rt.NotifyWhenSlotFree(peer, [ctx, client, shard]() {
          ctx->links[client][shard].waiting = false;
          DrainLink(ctx, client, shard);
        });
      }
      return;
    }
    const jamlib::KvRequest request = link.backlog.front();
    const Pending meta = link.backlog_meta.front();
    link.backlog.pop_front();
    link.backlog_meta.pop_front();
    const std::vector<std::uint64_t> args = jamlib::KvArgsFor(request);
    const auto receipt = rt.Send(peer, jamlib::KvJamFor(request.op),
                                 core::Invoke::kInjected, args, {});
    if (!receipt.ok()) {
      ctx->failed = true;
      ctx->result.error = "send failed: " + receipt.status().ToString();
      return;
    }
    ++ctx->result.sent;
    ctx->pending[shard][PendingKey(ctx->rx_peer[shard][client],
                                   receipt->sn)] = meta;
  }
}

/// One merged-Poisson arrival: draw client, key (Zipf rank), op; enqueue
/// on the owning link; schedule the next arrival.
void Arrive(const std::shared_ptr<Ctx>& ctx) {
  if (ctx->failed || ctx->scheduled >= ctx->config->requests) return;
  ++ctx->scheduled;
  const OpenLoopConfig& config = *ctx->config;

  const std::uint64_t client_id = ctx->rng.NextBelow(config.simulated_clients);
  if (!ctx->client_spoke[client_id]) {
    ctx->client_spoke[client_id] = true;
    ++ctx->result.distinct_clients;
  }
  const std::uint64_t rank =
      ctx->rng.NextZipf(config.keyspace, config.zipf_theta);
  if (rank < 10) ++ctx->result.hot_head_requests;

  jamlib::KvRequest request;
  request.key = rank;  // rank is the key; KvShardMap's mix spreads the head
  if (ctx->rng.NextBernoulli(config.put_fraction)) {
    request.op = jamlib::KvOp::kPut;
    request.value = ValueFor(request.key);
    ++ctx->result.puts;
  } else {
    request.op = jamlib::KvOp::kGet;
    ++ctx->result.gets;
  }

  const std::uint32_t client =
      static_cast<std::uint32_t>(client_id % config.client_hosts);
  const std::uint32_t shard = ctx->shard_map.ShardOf(request.key);
  Link& link = ctx->links[client][shard];
  if (!link.backlog.empty() || link.waiting) ++ctx->result.queued;
  link.backlog.push_back(request);
  link.backlog_meta.push_back(
      Pending{ctx->fabric->engine().Now(), request.op == jamlib::KvOp::kGet});
  ctx->result.queue_peak =
      std::max<std::uint64_t>(ctx->result.queue_peak, link.backlog.size());
  DrainLink(ctx, client, shard);

  if (ctx->scheduled < config.requests) {
    const double gap = ctx->rng.NextExponential(ctx->mean_gap_ps);
    ctx->fabric->engine().ScheduleAfter(
        static_cast<PicoTime>(gap) + 1, [ctx]() { Arrive(ctx); },
        "openloop-arrival");
  }
}

/// Completion hook for shard @p shard: matches executed jams back to
/// their arrival stamps; reroutes cache-missed frames to the resend FIFO.
void OnShardExecuted(const std::shared_ptr<Ctx>& ctx, std::uint32_t shard,
                     const core::ReceivedMessage& msg) {
  auto& primary = ctx->pending[shard];
  if (msg.cache_miss) {
    const auto it = primary.find(PendingKey(msg.from, msg.sn));
    if (it != primary.end()) {
      ctx->missed[shard][msg.from].push_back(it->second);
      primary.erase(it);
    }
    return;
  }
  if (!msg.executed) return;

  Pending meta;
  const auto it = primary.find(PendingKey(msg.from, msg.sn));
  if (it != primary.end()) {
    meta = it->second;
    primary.erase(it);
  } else {
    auto& fifo = ctx->missed[shard][msg.from];
    if (fifo.empty()) return;  // preload traffic or foreign frame
    meta = fifo.front();
    fifo.pop_front();
  }

  ++ctx->result.completed;
  ++ctx->result.per_shard_executed[shard];
  ctx->result.latency.Add(msg.completed_at - meta.arrival);
  if (meta.is_get &&
      static_cast<std::int64_t>(msg.return_value) != jamlib::kKvMiss) {
    ++ctx->result.get_hits;
  }
}

/// Closed-loop, unmeasured: writes every key once so measured gets hit.
Status Preload(const std::shared_ptr<Ctx>& ctx) {
  const OpenLoopConfig& config = *ctx->config;
  for (std::uint64_t key = 0; key < config.keyspace; ++key) {
    const std::uint32_t client =
        static_cast<std::uint32_t>(key % config.client_hosts);
    const std::uint32_t shard = ctx->shard_map.ShardOf(key);
    core::Runtime& rt = ctx->fabric->runtime(client);
    const core::PeerId peer = ctx->tx_peer[client][shard];
    while (!rt.HasFreeSlot(peer)) {
      bool freed = false;
      rt.NotifyWhenSlotFree(peer, [&freed]() { freed = true; });
      if (!ctx->fabric->RunUntil([&freed]() { return freed; })) {
        return Internal("preload stalled: no slot ever freed");
      }
    }
    const std::uint64_t args[] = {key,
                                  static_cast<std::uint64_t>(ValueFor(key))};
    const auto receipt =
        rt.Send(peer, "kv_put", core::Invoke::kInjected, args, {});
    if (!receipt.ok()) return receipt.status();
  }
  ctx->fabric->Run();  // drain the tail of the preload
  return Status::Ok();
}

void AccumulateJamStats(const core::JamCacheStats& s, std::int64_t sign,
                        core::JamCacheStats* into) {
  const auto add = [sign](std::uint64_t& field, std::uint64_t v) {
    field = sign > 0 ? field + v : field - v;
  };
  add(into->hits, s.hits);
  add(into->misses, s.misses);
  add(into->installs, s.installs);
  add(into->evictions, s.evictions);
  add(into->invalidations, s.invalidations);
  add(into->naks_sent, s.naks_sent);
  add(into->bytes_saved, s.bytes_saved);
  add(into->link_cycles_saved, s.link_cycles_saved);
  add(into->by_handle_sends, s.by_handle_sends);
  add(into->naks_received, s.naks_received);
  add(into->resends, s.resends);
}

}  // namespace

StatusOr<OpenLoopResult> RunKvOpenLoop(const OpenLoopConfig& config) {
  if (config.client_hosts == 0 || config.shards == 0) {
    return InvalidArgument("need at least one client and one shard");
  }
  if (config.requests == 0) return InvalidArgument("requests == 0");
  if (config.simulated_clients == 0) {
    return InvalidArgument("simulated_clients == 0");
  }
  if (!(config.offered_rate_mops > 0)) {
    return InvalidArgument("offered_rate_mops must be > 0");
  }
  if (config.put_fraction < 0 || config.put_fraction > 1) {
    return InvalidArgument("put_fraction outside [0, 1]");
  }
  if (config.keyspace == 0 ||
      config.keyspace > config.shards * (jamlib::kKvSlots * 3 / 4)) {
    return InvalidArgument(
        "keyspace must be in [1, shards * 3/4 * kKvSlots] (an overfull "
        "open-addressed table degrades into full-table probes)");
  }

  core::FabricOptions opts;
  opts.hosts = config.client_hosts + config.shards;
  opts.topology = core::Topology::kFullMesh;
  opts.runtime = config.runtime;
  opts.runtime.jam_cache = config.jam_cache;
  auto fabric = std::make_unique<core::Fabric>(opts);
  Status loaded =
      fabric->BuildAndLoad(jamlib::MakeJamlibPackageBuilder(), "tcjamlib");
  if (!loaded.ok()) return loaded;

  auto ctx = std::make_shared<Ctx>();
  ctx->config = &config;
  ctx->fabric = fabric.get();
  ctx->shard_map = jamlib::KvShardMap(config.shards, config.client_hosts);
  ctx->rng = Xoshiro256(config.seed);
  ctx->mean_gap_ps = 1'000'000.0 / config.offered_rate_mops;
  ctx->client_spoke.assign(config.simulated_clients, false);
  ctx->pending.resize(config.shards);
  ctx->missed.resize(config.shards);
  ctx->result.per_shard_executed.assign(config.shards, 0);
  ctx->links.assign(config.client_hosts, std::vector<Link>(config.shards));

  ctx->tx_peer.resize(config.client_hosts);
  ctx->rx_peer.resize(config.shards);
  for (std::uint32_t c = 0; c < config.client_hosts; ++c) {
    for (std::uint32_t s = 0; s < config.shards; ++s) {
      auto tx = fabric->PeerIdFor(c, config.client_hosts + s);
      auto rx = fabric->PeerIdFor(config.client_hosts + s, c);
      if (!tx.ok()) return tx.status();
      if (!rx.ok()) return rx.status();
      ctx->tx_peer[c].push_back(*tx);
      ctx->rx_peer[s].resize(config.client_hosts);
      ctx->rx_peer[s][c] = *rx;
    }
  }

  if (config.preload) {
    Status warm = Preload(ctx);
    if (!warm.ok()) return warm;
  }

  // Baselines so the measured window excludes preload traffic.
  std::uint64_t wire_base = 0;
  core::JamCacheStats jam_base{};
  for (std::uint32_t h = 0; h < opts.hosts; ++h) {
    wire_base += fabric->runtime(h).stats().bytes_sent;
    AccumulateJamStats(fabric->runtime(h).jam_cache_stats(), +1, &jam_base);
  }
  for (std::uint32_t s = 0; s < config.shards; ++s) {
    fabric->runtime(config.client_hosts + s)
        .SetOnExecuted([ctx, s](const core::ReceivedMessage& msg) {
          OnShardExecuted(ctx, s, msg);
        });
  }

  const PicoTime started = fabric->engine().Now();
  Arrive(ctx);
  const bool drained = fabric->RunUntil([&ctx]() {
    return ctx->failed || ctx->result.completed >= ctx->config->requests;
  });

  OpenLoopResult result = std::move(ctx->result);
  for (std::uint32_t s = 0; s < config.shards; ++s) {
    fabric->runtime(config.client_hosts + s).SetOnExecuted(nullptr);
  }

  if (ctx->failed) return StatusOr<OpenLoopResult>(std::move(result));
  if (result.completed < config.requests) {
    result.error = drained ? "run ended short of the request count"
                           : "engine drained with requests still in flight";
    return StatusOr<OpenLoopResult>(std::move(result));
  }

  result.duration = fabric->engine().Now() - started;
  if (result.duration > 0) {
    result.achieved_mops = static_cast<double>(result.completed) * 1e6 /
                           static_cast<double>(result.duration);
  }
  std::uint64_t wire_total = 0;
  for (std::uint32_t h = 0; h < opts.hosts; ++h) {
    wire_total += fabric->runtime(h).stats().bytes_sent;
    AccumulateJamStats(fabric->runtime(h).jam_cache_stats(), +1, &result.jam);
  }
  result.wire_bytes = wire_total - wire_base;
  AccumulateJamStats(jam_base, -1, &result.jam);
  result.ok = true;
  return StatusOr<OpenLoopResult>(std::move(result));
}

}  // namespace twochains::bench
