// Canonical testbed parameterization for all figure benches (§VI-C), so
// every bench measures the same simulated machine unless it deliberately
// deviates (e.g. toggling stashing or the wait mode).
#pragma once

#include "core/fabric.hpp"
#include "core/two_chains.hpp"

namespace twochains::bench {

/// The paper's two-server testbed with sensible benchmark mailbox shape.
inline core::TestbedOptions PaperTestbed() {
  core::TestbedOptions options;
  options.runtime.banks = 4;
  options.runtime.mailboxes_per_bank = 16;
  options.runtime.mailbox_slot_bytes = KiB(136);  // fits 128 KiB frames
  // The perftest process is single threaded per host (like ucx_perftest):
  // the same core waits on mailboxes and packs outgoing messages, so its
  // cycle counters cover both roles — what Figures 13/14 count.
  options.runtime.sender_core = 0;
  options.host0.memory_bytes = MiB(512);
  options.host1.memory_bytes = MiB(512);
  return options;
}

/// The same simulated machine, scaled out to an N-host fabric (the
/// incast / fan-out scenarios beyond the paper's two-server testbed).
inline core::FabricOptions PaperFabric(
    std::uint32_t hosts,
    core::Topology topology = core::Topology::kFullMesh,
    std::uint32_t hub = 0) {
  const core::TestbedOptions paper = PaperTestbed();
  core::FabricOptions options;
  options.hosts = hosts;
  options.topology = topology;
  options.hub = hub;
  options.host = paper.host0;
  options.nic = paper.nic;
  options.protocol = paper.protocol;
  options.runtime = paper.runtime;
  return options;
}

/// A star fabric whose hub is a 2-domain NUMA machine: hub cores {0,1}
/// form domain 0 and {2,3} domain 1 (clusters align with domains), with a
/// 2-core receiver pool on cores 1 and 2 — one pool core per domain — and
/// sends on core 3. This is the smallest shape where bank placement and
/// cross-domain drains are both observable (fig17, examples/numa_pinning).
inline core::FabricOptions PaperNumaFabric(std::uint32_t hosts,
                                           std::uint32_t hub = 0) {
  core::FabricOptions options = PaperFabric(hosts, core::Topology::kStar,
                                            hub);
  options.host_overrides.assign(hosts, options.host);
  options.host_overrides[hub].cache.domains = 2;
  options.runtime_overrides.assign(hosts, options.runtime);
  options.runtime_overrides[hub].receiver_core = 1;
  options.runtime_overrides[hub].receiver_cores = 2;
  options.runtime_overrides[hub].sender_core = 3;
  return options;
}

/// The wide variant: the hub is an 8-core, 2-domain machine ({0..3} and
/// {4..7}) with a 4-core receiver pool on cores 2..5 — members 0,1 in
/// domain 0 and members 2,3 in domain 1 — and sends on core 6. The
/// smallest shape where a pool core has both a same-domain sibling and
/// remote-domain siblings, i.e. where domain-aware steal victims and
/// same-domain re-shard targets are observable (fig17 --domain-steal,
/// quiesce_test's NUMA placement case).
inline core::FabricOptions PaperNumaWideFabric(std::uint32_t hosts,
                                               std::uint32_t hub = 0) {
  core::FabricOptions options = PaperFabric(hosts, core::Topology::kStar,
                                            hub);
  options.host_overrides.assign(hosts, options.host);
  options.host_overrides[hub].cache.cores = 8;
  options.host_overrides[hub].cache.domains = 2;
  options.runtime_overrides.assign(hosts, options.runtime);
  options.runtime_overrides[hub].receiver_core = 2;
  options.runtime_overrides[hub].receiver_cores = 4;
  options.runtime_overrides[hub].sender_core = 6;
  return options;
}

}  // namespace twochains::bench
