// Discrete-event simulation engine.
//
// The whole testbed (hosts, NICs, links, receiver agents, noise processes)
// runs on one Engine. Components schedule callbacks at absolute or relative
// simulated times; the engine fires them in (time, lane, sequence) order, so
// same-timestamp events fire in scheduling order and every run is
// deterministic. Callbacks may schedule further events and may call Stop().
//
// Internally events live in a slab-allocated intrusive pool (no per-event
// heap allocation: callbacks are held inline by SmallFn, tags are unowned
// string literals) fronted by a timing wheel; cancellation is a generation
// counter compare-and-swap, never a set lookup.
//
// Scale-out: the event population is partitioned into per-host *lanes*
// (`SetVirtualLanes`); with `EngineConfig::lanes > 1` the lanes are sharded
// across that many executor threads and executed in conservative-lookahead
// windows — a lane may run ahead of the global clock by up to
// `lookahead_ps`, the minimum cross-lane scheduling latency (link latency in
// the fabric). Cross-lane schedules post to the target lane's inbox and are
// merged in (time, lane, sequence) order, so results are byte-identical to
// the single-lane engine at every lane count. See docs/ARCHITECTURE.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <string>
#include <type_traits>
#include <utility>

#include "common/status.hpp"
#include "common/units.hpp"

namespace twochains::sim {

/// Identifies a scheduled event so it can be cancelled. Id 0 is never a
/// live event (cross-lane schedules return it: they cannot be cancelled).
using EventId = std::uint64_t;

/// Move-only callable holder with 120 bytes of inline storage, so scheduling
/// a typical capture list never touches the heap (std::function's small
/// buffer is ~16 bytes and every fabric callback spills). Larger or
/// throwing-move captures fall back to a heap pointer transparently.
class SmallFn {
 public:
  static constexpr std::size_t kInlineBytes = 120;

  SmallFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& fn) {  // NOLINT: implicit, mirrors std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      ops_ = &InlineOps<Fn>::kOps;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = &HeapOps<Fn>::kOps;
    }
  }

  SmallFn(SmallFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { Reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

 private:
  struct Ops {
    void (*invoke)(unsigned char*);
    // dst <- src: move-construct into dst, destroy src.
    void (*relocate)(unsigned char*, unsigned char*);
    void (*destroy)(unsigned char*);
  };

  template <typename Fn>
  struct InlineOps {
    static Fn* At(unsigned char* s) noexcept {
      return std::launder(reinterpret_cast<Fn*>(s));
    }
    static void Invoke(unsigned char* s) { (*At(s))(); }
    static void Relocate(unsigned char* d, unsigned char* s) {
      Fn* src = At(s);
      ::new (static_cast<void*>(d)) Fn(std::move(*src));
      src->~Fn();
    }
    static void Destroy(unsigned char* s) { At(s)->~Fn(); }
    static constexpr Ops kOps{&Invoke, &Relocate, &Destroy};
  };

  template <typename Fn>
  struct HeapOps {
    static Fn* Ptr(unsigned char* s) noexcept {
      return *std::launder(reinterpret_cast<Fn**>(s));
    }
    static void Invoke(unsigned char* s) { (*Ptr(s))(); }
    static void Relocate(unsigned char* d, unsigned char* s) {
      ::new (static_cast<void*>(d)) Fn*(Ptr(s));
    }
    static void Destroy(unsigned char* s) { delete Ptr(s); }
    static constexpr Ops kOps{&Invoke, &Relocate, &Destroy};
  };

  void Reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

/// Executor configuration. Documented in docs/TUNING.md (## EngineConfig);
/// the docs gate (tools/check_docs.sh) keeps that table honest.
struct EngineConfig {
  std::uint32_t lanes = 1;
  PicoTime lookahead_ps = 0;
};

class Engine {
 public:
  using Callback = SmallFn;

  explicit Engine(EngineConfig config = {});
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time: the firing event's timestamp inside a
  /// callback, the global maximum across lanes when idle.
  PicoTime Now() const noexcept;

  /// Schedules @p cb at absolute time @p when (>= Now(); earlier times are
  /// clamped so causality cannot run backwards). Inside a callback the event
  /// lands on the scheduling lane; from outside a run it lands on lane 0.
  /// @p tag must have static storage duration (string literal): it is kept
  /// by pointer, never copied, and only read when an event hook is set.
  EventId ScheduleAt(PicoTime when, Callback cb, const char* tag = nullptr);

  /// Schedules @p cb @p delay picoseconds from now.
  EventId ScheduleAfter(PicoTime delay, Callback cb, const char* tag = nullptr);

  /// As ScheduleAt/ScheduleAfter, but the event executes on virtual lane
  /// @p lane. Cross-lane schedules from inside a callback must respect the
  /// lookahead horizon (when >= Now() + lookahead_ps) and return 0 — they
  /// cannot be cancelled.
  EventId ScheduleAtOn(std::uint32_t lane, PicoTime when, Callback cb,
                       const char* tag = nullptr);
  EventId ScheduleAfterOn(std::uint32_t lane, PicoTime delay, Callback cb,
                          const char* tag = nullptr);

  /// Cancels a pending event. Returns false if it already fired or was
  /// cancelled before.
  bool Cancel(EventId id);

  /// Runs until the event queue is empty (or Stop()).
  void Run();

  /// Runs until simulated time would exceed @p deadline; events at exactly
  /// the deadline still fire. Pending later events remain queued. Every
  /// lane's clock advances to the deadline, so a following RunUntil resumes
  /// from a deterministic point at any lane count.
  void RunUntil(PicoTime deadline);

  /// Runs until @p done() returns true, the queue drains, or Stop() is
  /// called. Returns true iff @p done() held. Single-executor runs check
  /// after every event; laned runs check at window boundaries (the lookahead
  /// round), so drivers that need an exact cut use RunUntil deadlines.
  bool RunUntilCondition(const std::function<bool()>& done);

  /// Requests that the current Run*() call return: after the in-flight
  /// callback on a single executor, at the current window boundary when
  /// laned (every lane finishes the window, keeping state deterministic).
  void Stop() noexcept;

  /// True when no events are pending.
  bool Idle() const noexcept { return PendingEvents() == 0; }

  /// Number of pending (not yet fired, not cancelled) events.
  std::size_t PendingEvents() const noexcept;

  /// Total callbacks executed since construction.
  std::uint64_t EventsProcessed() const noexcept;

  /// Optional observation hook called before each event executes
  /// (time, tag; "" when the event was scheduled without a tag). Installing
  /// a hook is what makes tags observable — without one they cost nothing.
  void SetEventHook(std::function<void(PicoTime, const char*)> hook);

  /// Declares the number of virtual lanes (one per fabric host; a switched
  /// fabric homes each net::Switch on its own lane past the hosts, so
  /// switch-buffer state is only ever touched from events in that lane's
  /// order). Must be called while idle, before events are scheduled. Lanes
  /// are sharded across min(config.lanes, lanes) executor threads; with
  /// the default single executor the lane structure only feeds the
  /// (time, lane, seq) order, which is why laned runs replay
  /// byte-identically.
  void SetVirtualLanes(std::uint32_t lanes);

  /// Overrides the conservative lookahead horizon (picoseconds); the fabric
  /// sets this to the minimum cross-host scheduling latency. Clamped to
  /// >= 1. Only consulted when more than one executor shard is active.
  void SetLookahead(PicoTime lookahead_ps);

  std::uint32_t VirtualLanes() const noexcept;
  std::uint32_t ExecutorShards() const noexcept;

  /// The active lookahead horizon (picoseconds). Drivers that hand work
  /// across lanes directly (not through the NIC) schedule at
  /// Now() + Lookahead() — the earliest cross-lane time that is safe at
  /// every executor count.
  PicoTime Lookahead() const noexcept;

  /// Lane of the currently firing event (0 outside a run). What plain
  /// ScheduleAt inherits.
  std::uint32_t CurrentLane() const noexcept;

  /// Total event-slab slots allocated (capacity, not pending count). The
  /// bounded-memory regression asserts this stays flat across
  /// schedule/cancel churn.
  std::size_t AllocatedEventSlots() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The laned executor by its scale-out name: an Engine constructed with an
/// explicit EngineConfig. `LaneEngine({.lanes = 4, .lookahead_ps = l})`
/// reads at the call site; the type adds nothing else.
class LaneEngine : public Engine {
 public:
  using Engine::Engine;
};

}  // namespace twochains::sim
