// Discrete-event simulation engine.
//
// The whole testbed (two hosts, NICs, link, receiver agents, noise process)
// runs on one Engine. Components schedule callbacks at absolute or relative
// simulated times; the engine pops them in (time, sequence) order, so
// same-timestamp events fire in scheduling order and every run is
// deterministic. Callbacks may schedule further events and may call Stop().
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"

namespace twochains::sim {

/// Identifies a scheduled event so it can be cancelled.
using EventId = std::uint64_t;

class Engine {
 public:
  using Callback = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time. Advances only inside Run*().
  PicoTime Now() const noexcept { return now_; }

  /// Schedules @p cb at absolute time @p when (>= Now(); earlier times are
  /// clamped to Now() so causality cannot run backwards).
  EventId ScheduleAt(PicoTime when, Callback cb, std::string tag = {});

  /// Schedules @p cb @p delay picoseconds from now.
  EventId ScheduleAfter(PicoTime delay, Callback cb, std::string tag = {}) {
    return ScheduleAt(now_ + delay, std::move(cb), std::move(tag));
  }

  /// Cancels a pending event. Returns false if it already fired or was
  /// cancelled before.
  bool Cancel(EventId id);

  /// Runs until the event queue is empty (or Stop()).
  void Run();

  /// Runs until simulated time would exceed @p deadline; events at exactly
  /// the deadline still fire. Pending later events remain queued.
  void RunUntil(PicoTime deadline);

  /// Runs until @p done() returns true (checked after every event), the
  /// queue drains, or Stop() is called. Returns true iff @p done() held.
  bool RunUntilCondition(const std::function<bool()>& done);

  /// Requests that the current Run*() call return after the in-flight
  /// callback finishes.
  void Stop() noexcept { stopped_ = true; }

  /// True when no events are pending.
  bool Idle() const noexcept { return live_events_ == 0; }

  /// Number of pending (not yet fired, not cancelled) events.
  std::size_t PendingEvents() const noexcept { return live_events_; }

  /// Total callbacks executed since construction.
  std::uint64_t EventsProcessed() const noexcept { return processed_; }

  /// Optional observation hook called before each event executes
  /// (time, tag). Used by tests and the trace tooling.
  void SetEventHook(std::function<void(PicoTime, const std::string&)> hook) {
    hook_ = std::move(hook);
  }

 private:
  struct Event {
    PicoTime when;
    std::uint64_t seq;  // tiebreak: FIFO among equal timestamps
    EventId id;
    Callback cb;
    std::string tag;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Pops and runs the next event. Returns false when the queue is empty
  /// or only cancelled events remained.
  bool Step();

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<EventId> cancelled_;  // sorted lazily; usually tiny
  std::unordered_set<EventId> pending_;  // scheduled, not yet fired/cancelled
  PicoTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::size_t live_events_ = 0;
  std::uint64_t processed_ = 0;
  bool stopped_ = false;
  std::function<void(PicoTime, const std::string&)> hook_;
};

}  // namespace twochains::sim
