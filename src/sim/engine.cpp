#include "sim/engine.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cassert>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

namespace twochains::sim {
namespace {

constexpr PicoTime kNoEvent = std::numeric_limits<PicoTime>::max();

// Event slab geometry: chunks of 512 nodes. The chunk directory is reserved
// up front so foreign threads can index it lock-free (Cancel) while the
// owner appends.
constexpr std::uint32_t kChunkShift = 9;
constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
constexpr std::uint32_t kMaxChunks = 4096;  // 2M in-flight events per shard

// Timing wheel: 2048 slots of 4096 ps (~8.4 us horizon). The window size
// equals the wheel size, so an occupied slot maps to exactly one granule
// and no per-bucket granule disambiguation is needed. Events beyond the
// horizon wait in the overflow heap and are pulled granule-at-a-time as the
// cursor reaches them.
constexpr std::uint32_t kGranuleShift = 12;
constexpr std::uint32_t kWheelSlots = 2048;
constexpr std::uint32_t kWheelMask = kWheelSlots - 1;
constexpr std::uint32_t kBitmapWords = kWheelSlots / 64;

// Node lifecycle, packed with the generation into one atomic word:
// gs = (generation << 32) | state. Cancel is a single CAS
// (g|kScheduled) -> (g|kCancelled); the generation bump at free makes a
// stale EventId miss the CAS instead of corrupting a reused slot, which is
// also what makes a concurrent cancel/fire race benign.
constexpr std::uint64_t kStFree = 0;
constexpr std::uint64_t kStScheduled = 1;
constexpr std::uint64_t kStCancelled = 2;
constexpr std::uint64_t kStFiring = 3;

constexpr std::uint64_t Pack(std::uint32_t gen, std::uint64_t state) noexcept {
  return (std::uint64_t{gen} << 32) | state;
}
constexpr std::uint32_t GenOf(std::uint64_t gs) noexcept {
  return static_cast<std::uint32_t>(gs >> 32);
}

// EventId layout: [63:56] shard | [55:32] slot+1 | [31:0] generation.
// Slot 0 encodes as 1 so id 0 stays the "not cancellable" sentinel.
constexpr EventId MakeId(std::uint32_t shard, std::uint32_t slot,
                         std::uint32_t gen) noexcept {
  return (std::uint64_t{shard} << 56) | (std::uint64_t{slot + 1} << 32) | gen;
}

struct EventNode {
  PicoTime when = 0;
  std::uint64_t key_lo = 0;  // (source lane << 48) | per-lane sequence
  SmallFn cb;
  const char* tag = nullptr;
  EventNode* next_free = nullptr;
  std::atomic<std::uint64_t> gs{Pack(0, kStFree)};
  std::uint32_t slot = 0;
  std::uint32_t home_lane = 0;
};

// What the ordering structures hold: 32 bytes instead of the node, so heap
// sifts move small POD items. The generation snapshot makes entries for
// swept (freed-in-place) nodes detectably stale at pop.
struct LightItem {
  PicoTime when;
  std::uint64_t key_lo;
  EventNode* node;
  std::uint32_t gen;
};

struct ItemAfter {
  bool operator()(const LightItem& a, const LightItem& b) const noexcept {
    if (a.when != b.when) return a.when > b.when;
    return a.key_lo > b.key_lo;  // key_lo is globally unique: no ties
  }
};

inline void HeapPush(std::vector<LightItem>& h, const LightItem& it) {
  h.push_back(it);
  std::push_heap(h.begin(), h.end(), ItemAfter{});
}
inline void HeapPop(std::vector<LightItem>& h) {
  std::pop_heap(h.begin(), h.end(), ItemAfter{});
  h.pop_back();
}

// A cross-shard schedule, parked until the target shard drains its inbox at
// the next round boundary.
struct InboxItem {
  PicoTime when;
  std::uint64_t key_lo;
  const char* tag;
  std::uint32_t lane;
  SmallFn cb;
};

struct alignas(64) Shard {
  // Ordering structures (owner thread only).
  std::vector<LightItem> active;    // current-granule min-heap
  std::vector<LightItem> overflow;  // beyond-horizon min-heap
  std::array<std::vector<LightItem>, kWheelSlots> buckets;
  std::uint64_t bitmap[kBitmapWords] = {};
  std::uint64_t cursor_granule = 0;
  std::size_t bucket_items = 0;
  PicoTime now = 0;

  // Slab (owner allocates/frees; Cancel from any thread only touches gs).
  std::vector<std::unique_ptr<EventNode[]>> chunks;
  std::atomic<std::uint32_t> chunk_count{0};
  EventNode* free_head = nullptr;

  // Counters. fired is owner-written and only read across threads behind
  // the round barrier; live/cancelled take cross-thread updates.
  std::uint64_t fired = 0;
  std::atomic<std::uint64_t> live{0};
  std::atomic<std::uint64_t> cancelled_pending{0};

  // Cross-shard inbox.
  std::mutex inbox_mu;
  std::vector<InboxItem> inbox;
  std::vector<InboxItem> inbox_scratch;

  // Published at the plan barrier.
  PicoTime local_min = kNoEvent;

  Shard() { chunks.reserve(kMaxChunks); }
};

// First occupied wheel slot strictly after `after` in circular order, or -1.
// Scans whole bitmap words; the final pass re-checks the starting word's low
// bits (slots that wrapped all the way around).
int NextOccupiedSlot(const std::uint64_t* bm, std::uint32_t after) noexcept {
  const std::uint32_t start = (after + 1) & kWheelMask;
  const std::uint32_t w0 = start / 64;
  for (std::uint32_t i = 0; i <= kBitmapWords; ++i) {
    const std::uint32_t wi = (w0 + i) % kBitmapWords;
    std::uint64_t word = bm[wi];
    if (i == 0) word &= ~std::uint64_t{0} << (start % 64);
    if (word != 0) {
      return static_cast<int>(wi * 64 +
                              static_cast<std::uint32_t>(std::countr_zero(word)));
    }
  }
  return -1;
}

struct TlsCtx {
  const void* impl = nullptr;
  Shard* shard = nullptr;
  std::uint32_t lane = 0;
};
thread_local TlsCtx g_tls;

}  // namespace

struct Engine::Impl {
  EngineConfig config;
  std::uint32_t virtual_lanes = 1;
  std::uint32_t shard_count = 1;
  PicoTime lookahead = 1;
  std::vector<std::unique_ptr<Shard>> shards;
  struct alignas(64) LaneSeq {
    std::uint64_t next = 0;
  };
  std::vector<LaneSeq> lane_seq;
  std::function<void(PicoTime, const char*)> hook;
  std::uint64_t processed_base = 0;  // fired counts from torn-down shard sets

  std::atomic<bool> stop{false};
  bool parallel_run = false;  // a laned Run*() is in flight

  // Laned-run round state, written by the serial section at the plan
  // barrier (the barrier's release/acquire publishes the plain fields).
  enum class Mode { kRun, kUntil, kCondition };
  Mode mode = Mode::kRun;
  PicoTime deadline = 0;
  const std::function<bool()>* condition = nullptr;
  bool condition_met = false;
  std::atomic<PicoTime> window_end{0};
  std::atomic<bool> finished{false};

  // Sense-reversing spin barrier across the executor shards.
  std::atomic<std::uint32_t> arrivals{0};
  std::atomic<std::uint64_t> phase{0};

  // Worker pool: shard_count-1 persistent threads, parked on the condition
  // variable between runs; main executes shard 0.
  std::vector<std::thread> workers;
  std::mutex pool_mu;
  std::condition_variable pool_cv;
  std::condition_variable done_cv;
  std::uint64_t epoch = 0;
  std::uint32_t done_count = 0;
  bool shutdown = false;

  ~Impl() { TeardownWorkers(); }

  // ---------------------------------------------------------------- context

  bool InRun() const noexcept {
    return g_tls.impl == this && g_tls.shard != nullptr;
  }

  PicoTime IdleNow() const noexcept {
    PicoTime m = 0;
    for (const auto& s : shards) m = std::max(m, s->now);
    return m;
  }

  PicoTime ContextNow() const noexcept {
    return InRun() ? g_tls.shard->now : IdleNow();
  }

  struct TlsGuard {
    TlsCtx saved;
    TlsGuard(const Impl* impl, Shard* shard) : saved(g_tls) {
      g_tls = TlsCtx{impl, shard, 0};
    }
    ~TlsGuard() { g_tls = saved; }
  };

  // ------------------------------------------------------------------- slab

  EventNode* AllocNode(Shard& sh) {
    EventNode* n = sh.free_head;
    if (n != nullptr) {
      sh.free_head = n->next_free;
      return n;
    }
    const std::uint32_t c = sh.chunk_count.load(std::memory_order_relaxed);
    if (c == kMaxChunks) {
      std::fprintf(stderr, "sim::Engine: event slab exhausted (%u events)\n",
                   kMaxChunks * kChunkSize);
      std::abort();
    }
    auto chunk = std::make_unique<EventNode[]>(kChunkSize);
    for (std::uint32_t i = 0; i < kChunkSize; ++i) {
      chunk[i].slot = c * kChunkSize + i;
    }
    for (std::uint32_t i = kChunkSize - 1; i >= 1; --i) {
      chunk[i].next_free = sh.free_head;
      sh.free_head = &chunk[i];
    }
    EventNode* first = &chunk[0];
    sh.chunks.push_back(std::move(chunk));
    // Release so a foreign Cancel that reads the new count sees the chunk
    // pointer it is about to index.
    sh.chunk_count.store(c + 1, std::memory_order_release);
    return first;
  }

  void FreeNode(Shard& sh, EventNode* n, std::uint32_t gen) noexcept {
    n->gs.store(Pack(gen + 1, kStFree), std::memory_order_relaxed);
    n->tag = nullptr;
    n->next_free = sh.free_head;
    sh.free_head = n;
  }

  void FreeCancelled(Shard& sh, EventNode* n, std::uint32_t gen) noexcept {
    n->cb = SmallFn();  // release captured state now, not at reuse
    FreeNode(sh, n, gen);
    sh.cancelled_pending.fetch_sub(1, std::memory_order_relaxed);
  }

  // -------------------------------------------------------------- the wheel

  void InsertNode(Shard& sh, EventNode* n, std::uint32_t gen) {
    const std::uint64_t g = n->when >> kGranuleShift;
    const LightItem it{n->when, n->key_lo, n, gen};
    if (g <= sh.cursor_granule) {
      assert(g == sh.cursor_granule || n->when >= sh.now);
      HeapPush(sh.active, it);
    } else if (g - sh.cursor_granule < kWheelSlots) {
      const std::uint32_t slot = static_cast<std::uint32_t>(g) & kWheelMask;
      sh.bitmap[slot / 64] |= std::uint64_t{1} << (slot % 64);
      sh.buckets[slot].push_back(it);
      ++sh.bucket_items;
    } else {
      HeapPush(sh.overflow, it);
    }
  }

  // Advances the cursor to the next occupied granule, draining that granule
  // from both the wheel bucket and the overflow heap into the active heap.
  // Returns false when no events remain anywhere.
  bool AdvanceCursor(Shard& sh) {
    const std::uint32_t cslot =
        static_cast<std::uint32_t>(sh.cursor_granule) & kWheelMask;
    std::uint64_t bucket_granule = kNoEvent;
    const int s = NextOccupiedSlot(sh.bitmap, cslot);
    if (s >= 0) {
      bucket_granule =
          sh.cursor_granule +
          ((static_cast<std::uint32_t>(s) - cslot) & kWheelMask);
    }
    const std::uint64_t overflow_granule =
        sh.overflow.empty() ? kNoEvent
                            : sh.overflow.front().when >> kGranuleShift;
    const std::uint64_t g = std::min(bucket_granule, overflow_granule);
    if (g == kNoEvent) return false;
    sh.cursor_granule = g;
    if (bucket_granule == g) {
      const std::uint32_t slot = static_cast<std::uint32_t>(g) & kWheelMask;
      sh.bitmap[slot / 64] &= ~(std::uint64_t{1} << (slot % 64));
      auto& bucket = sh.buckets[slot];
      sh.bucket_items -= bucket.size();
      sh.active.insert(sh.active.end(), bucket.begin(), bucket.end());
      bucket.clear();
    }
    while (!sh.overflow.empty() &&
           (sh.overflow.front().when >> kGranuleShift) == g) {
      sh.active.push_back(sh.overflow.front());
      HeapPop(sh.overflow);
    }
    std::make_heap(sh.active.begin(), sh.active.end(), ItemAfter{});
    return true;
  }

  PicoTime PeekMin(Shard& sh) {
    // May surface a cancelled entry's timestamp: that only makes the global
    // window conservative, never wrong, and the entry is reclaimed at pop.
    if (sh.active.empty() && !AdvanceCursor(sh)) return kNoEvent;
    return sh.active.front().when;
  }

  // Pops the next live event with when < limit and claims it for firing.
  // Cancelled and stale entries encountered on the way are reclaimed
  // without advancing time (matching the original engine's skip semantics).
  EventNode* PopBefore(Shard& sh, PicoTime limit) {
    while (true) {
      if (sh.active.empty() && !AdvanceCursor(sh)) return nullptr;
      const LightItem item = sh.active.front();
      if (item.when >= limit) return nullptr;
      HeapPop(sh.active);
      EventNode* n = item.node;
      const std::uint64_t want = Pack(item.gen, kStScheduled);
      if (parallel_run) {
        std::uint64_t expected = want;
        if (!n->gs.compare_exchange_strong(expected, Pack(item.gen, kStFiring),
                                           std::memory_order_acquire,
                                           std::memory_order_relaxed)) {
          if (expected == Pack(item.gen, kStCancelled)) FreeCancelled(sh, n, item.gen);
          continue;  // cancelled, or stale after a sweep freed the node
        }
      } else {
        const std::uint64_t cur = n->gs.load(std::memory_order_relaxed);
        if (cur != want) {
          if (cur == Pack(item.gen, kStCancelled)) FreeCancelled(sh, n, item.gen);
          continue;
        }
        n->gs.store(Pack(item.gen, kStFiring), std::memory_order_relaxed);
      }
      return n;
    }
  }

  void Fire(Shard& sh, EventNode* n) {
    sh.now = n->when;
    g_tls.lane = n->home_lane;
    ++sh.fired;
    if (hook) hook(n->when, n->tag != nullptr ? n->tag : "");
    SmallFn cb = std::move(n->cb);
    FreeNode(sh, n, GenOf(n->gs.load(std::memory_order_relaxed)));
    sh.live.fetch_sub(1, std::memory_order_relaxed);
    cb();
  }

  // ------------------------------------------------------------------ sweep

  // Reclaims cancelled nodes in place (slab scan + stale-entry filter) so
  // schedule/cancel churn cannot grow the slab: triggered when cancelled
  // events dominate the queued population. Owner-thread only.
  void MaybeSweep(Shard& sh) {
    const std::uint64_t cancelled =
        sh.cancelled_pending.load(std::memory_order_relaxed);
    if (cancelled < 64) return;
    const std::size_t queued =
        sh.active.size() + sh.overflow.size() + sh.bucket_items;
    if (cancelled * 2 < queued) return;
    Sweep(sh);
  }

  void Sweep(Shard& sh) {
    const std::uint32_t chunks = sh.chunk_count.load(std::memory_order_relaxed);
    for (std::uint32_t c = 0; c < chunks; ++c) {
      EventNode* base = sh.chunks[c].get();
      for (std::uint32_t i = 0; i < kChunkSize; ++i) {
        EventNode& n = base[i];
        const std::uint64_t gs = n.gs.load(std::memory_order_relaxed);
        if ((gs & 0xFFFFFFFFu) == kStCancelled) FreeCancelled(sh, &n, GenOf(gs));
      }
    }
    const auto stale = [](const LightItem& it) noexcept {
      return it.node->gs.load(std::memory_order_relaxed) !=
             Pack(it.gen, kStScheduled);
    };
    auto filter_heap = [&](std::vector<LightItem>& h) {
      h.erase(std::remove_if(h.begin(), h.end(), stale), h.end());
      std::make_heap(h.begin(), h.end(), ItemAfter{});
    };
    filter_heap(sh.active);
    filter_heap(sh.overflow);
    for (std::uint32_t w = 0; w < kBitmapWords; ++w) {
      std::uint64_t word = sh.bitmap[w];
      while (word != 0) {
        const std::uint32_t slot =
            w * 64 + static_cast<std::uint32_t>(std::countr_zero(word));
        word &= word - 1;
        auto& bucket = sh.buckets[slot];
        const std::size_t before = bucket.size();
        bucket.erase(std::remove_if(bucket.begin(), bucket.end(), stale),
                     bucket.end());
        sh.bucket_items -= before - bucket.size();
        if (bucket.empty()) {
          sh.bitmap[slot / 64] &= ~(std::uint64_t{1} << (slot % 64));
        }
      }
    }
  }

  // ------------------------------------------------------------- scheduling

  EventId ScheduleOn(std::uint32_t lane, PicoTime when, SmallFn cb,
                     const char* tag) {
    assert(lane < virtual_lanes);
    if (lane >= virtual_lanes) lane %= virtual_lanes;
    std::uint32_t src_lane;
    Shard* cur = nullptr;
    PicoTime floor;
    if (InRun()) {
      cur = g_tls.shard;
      src_lane = g_tls.lane;
      floor = cur->now;
    } else {
      src_lane = lane;
      floor = IdleNow();
    }
    if (when < floor) when = floor;
    const std::uint64_t key_lo =
        (std::uint64_t{src_lane} << 48) | lane_seq[src_lane].next++;
    const std::uint32_t shard_idx = lane % shard_count;
    Shard& dst = *shards[shard_idx];
    if (&dst == cur || !parallel_run) {
      // Same shard, or no laned run in flight: this thread owns dst.
      EventNode* n = AllocNode(dst);
      const std::uint32_t gen =
          GenOf(n->gs.load(std::memory_order_relaxed));
      n->when = when;
      n->key_lo = key_lo;
      n->cb = std::move(cb);
      n->tag = tag;
      n->home_lane = lane;
      n->gs.store(Pack(gen, kStScheduled), std::memory_order_relaxed);
      InsertNode(dst, n, gen);
      dst.live.fetch_add(1, std::memory_order_relaxed);
      return MakeId(shard_idx, n->slot, gen);
    }
    // Cross-shard during a laned run: the lookahead horizon is the safety
    // contract — the target cannot have executed past it.
    assert(cur == nullptr || when >= cur->now + lookahead);
    dst.live.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> l(dst.inbox_mu);
      dst.inbox.push_back(InboxItem{when, key_lo, tag, lane, std::move(cb)});
    }
    return 0;
  }

  bool CancelId(EventId id) {
    const auto shard_idx = static_cast<std::uint32_t>(id >> 56);
    const auto slot_p1 = static_cast<std::uint32_t>((id >> 32) & 0xFFFFFFu);
    const auto gen = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
    if (slot_p1 == 0 || shard_idx >= shard_count) return false;
    Shard& sh = *shards[shard_idx];
    const std::uint32_t slot = slot_p1 - 1;
    if (slot >= sh.chunk_count.load(std::memory_order_acquire) * kChunkSize) {
      return false;
    }
    EventNode* n = &sh.chunks[slot >> kChunkShift][slot & (kChunkSize - 1)];
    std::uint64_t expected = Pack(gen, kStScheduled);
    if (!n->gs.compare_exchange_strong(expected, Pack(gen, kStCancelled),
                                       std::memory_order_relaxed)) {
      return false;  // already fired, already cancelled, or slot reused
    }
    sh.live.fetch_sub(1, std::memory_order_relaxed);
    sh.cancelled_pending.fetch_add(1, std::memory_order_relaxed);
    // Reclaim eagerly only when this thread owns the shard's structures;
    // foreign cancels are swept at the target's next round boundary.
    if ((g_tls.impl == this && g_tls.shard == &sh) || !parallel_run) {
      MaybeSweep(sh);
    }
    return true;
  }

  // ----------------------------------------------------------- scalar runs

  void RunScalar() {
    stop.store(false, std::memory_order_relaxed);
    Shard& sh = *shards[0];
    TlsGuard ctx(this, &sh);
    while (!stop.load(std::memory_order_relaxed)) {
      EventNode* n = PopBefore(sh, kNoEvent);
      if (n == nullptr) break;
      Fire(sh, n);
    }
  }

  void RunUntilScalar(PicoTime deadline_ps) {
    stop.store(false, std::memory_order_relaxed);
    Shard& sh = *shards[0];
    TlsGuard ctx(this, &sh);
    const PicoTime limit =
        deadline_ps == kNoEvent ? kNoEvent : deadline_ps + 1;
    while (!stop.load(std::memory_order_relaxed)) {
      EventNode* n = PopBefore(sh, limit);
      if (n == nullptr) break;
      Fire(sh, n);
    }
    // Even with no events at/below the deadline, time advances to it so
    // callers can measure elapsed windows.
    sh.now = std::max(sh.now, deadline_ps);
  }

  bool RunConditionScalar(const std::function<bool()>& done) {
    stop.store(false, std::memory_order_relaxed);
    if (done()) return true;
    Shard& sh = *shards[0];
    TlsGuard ctx(this, &sh);
    while (!stop.load(std::memory_order_relaxed)) {
      EventNode* n = PopBefore(sh, kNoEvent);
      if (n == nullptr) break;
      Fire(sh, n);
      if (done()) return true;
    }
    return done();
  }

  // ------------------------------------------------------------ laned runs

  // One conservative-lookahead round, executed by every shard thread:
  //   drain inbox -> publish local min -> [barrier: plan] -> execute window
  //   -> [barrier]
  // The plan (serial) computes GVT = min local_min and the window
  // [GVT, GVT+lookahead). Any cross-shard schedule posted from inside a
  // window has when >= source_now + lookahead >= GVT + lookahead, i.e. at or
  // past the window end — so no shard can receive work it should already
  // have executed, and the merge order equals the scalar engine's.
  void RoundLoop(std::uint32_t shard_idx) {
    Shard& sh = *shards[shard_idx];
    while (true) {
      DrainInbox(sh);
      sh.local_min = PeekMin(sh);
      BarrierWait([this] { PlanRound(); });
      if (finished.load(std::memory_order_relaxed)) return;
      const PicoTime limit = window_end.load(std::memory_order_relaxed);
      while (true) {
        EventNode* n = PopBefore(sh, limit);
        if (n == nullptr) break;
        Fire(sh, n);
      }
      BarrierWait([] {});
    }
  }

  void DrainInbox(Shard& sh) {
    {
      std::lock_guard<std::mutex> l(sh.inbox_mu);
      sh.inbox_scratch.swap(sh.inbox);
    }
    // Arrival order in the inbox is wall-clock nondeterministic, but every
    // structure orders by (when, key_lo), so insertion order is invisible.
    for (InboxItem& it : sh.inbox_scratch) {
      EventNode* n = AllocNode(sh);
      const std::uint32_t gen = GenOf(n->gs.load(std::memory_order_relaxed));
      n->when = it.when;
      n->key_lo = it.key_lo;
      n->cb = std::move(it.cb);
      n->tag = it.tag;
      n->home_lane = it.lane;
      n->gs.store(Pack(gen, kStScheduled), std::memory_order_relaxed);
      InsertNode(sh, n, gen);
    }
    sh.inbox_scratch.clear();
    MaybeSweep(sh);
  }

  void PlanRound() {
    PicoTime gvt = kNoEvent;
    for (const auto& s : shards) gvt = std::min(gvt, s->local_min);
    bool fin = false;
    if (stop.load(std::memory_order_relaxed)) {
      fin = true;
    } else if (mode == Mode::kCondition && (*condition)()) {
      condition_met = true;
      fin = true;
    } else if (gvt == kNoEvent) {
      fin = true;
    } else if (mode == Mode::kUntil && gvt > deadline) {
      fin = true;
    }
    if (fin) {
      if (mode == Mode::kUntil) {
        for (const auto& s : shards) s->now = std::max(s->now, deadline);
      }
      finished.store(true, std::memory_order_relaxed);
      return;
    }
    PicoTime we = gvt + lookahead;
    if (we < gvt) we = kNoEvent;  // saturate
    if (mode == Mode::kUntil && deadline != kNoEvent) {
      we = std::min(we, deadline + 1);
    }
    window_end.store(we, std::memory_order_relaxed);
  }

  template <typename SerialFn>
  void BarrierWait(SerialFn&& serial) {
    const std::uint64_t my_phase = phase.load(std::memory_order_acquire);
    if (arrivals.fetch_add(1, std::memory_order_acq_rel) + 1 == shard_count) {
      serial();
      arrivals.store(0, std::memory_order_relaxed);
      phase.store(my_phase + 1, std::memory_order_release);
    } else {
      int spins = 0;
      while (phase.load(std::memory_order_acquire) == my_phase) {
        if (++spins > 4096) std::this_thread::yield();
      }
    }
  }

  bool RunLaned(Mode m, PicoTime deadline_ps,
                const std::function<bool()>* done) {
    stop.store(false, std::memory_order_relaxed);
    mode = m;
    deadline = deadline_ps;
    condition = done;
    condition_met = false;
    finished.store(false, std::memory_order_relaxed);
    parallel_run = true;
    EnsureWorkers();
    {
      std::lock_guard<std::mutex> l(pool_mu);
      ++epoch;
    }
    pool_cv.notify_all();
    {
      TlsGuard ctx(this, shards[0].get());
      RoundLoop(0);
    }
    // Wait for every worker to leave its round loop before returning: a
    // back-to-back Run*() call resets `finished`, and a worker still
    // draining the final barrier must not observe that reset as "the run
    // continues" (the barriers would desynchronize).
    {
      std::unique_lock<std::mutex> l(pool_mu);
      done_cv.wait(l, [&] { return done_count == shard_count - 1; });
      done_count = 0;
    }
    parallel_run = false;
    return condition_met;
  }

  void EnsureWorkers() {
    if (workers.size() == static_cast<std::size_t>(shard_count) - 1) return;
    TeardownWorkers();
    for (std::uint32_t i = 1; i < shard_count; ++i) {
      workers.emplace_back(
          [this, i, seen = epoch]() mutable { WorkerMain(i, seen); });
    }
  }

  void TeardownWorkers() {
    if (workers.empty()) return;
    {
      std::lock_guard<std::mutex> l(pool_mu);
      shutdown = true;
    }
    pool_cv.notify_all();
    for (std::thread& t : workers) t.join();
    workers.clear();
    shutdown = false;
  }

  void WorkerMain(std::uint32_t shard_idx, std::uint64_t seen) {
    while (true) {
      {
        std::unique_lock<std::mutex> l(pool_mu);
        pool_cv.wait(l, [&] { return shutdown || epoch != seen; });
        if (shutdown) return;
        seen = epoch;
      }
      TlsGuard ctx(this, shards[shard_idx].get());
      RoundLoop(shard_idx);
      {
        std::lock_guard<std::mutex> l(pool_mu);
        ++done_count;
      }
      done_cv.notify_one();
    }
  }

  // ---------------------------------------------------------------- mgmt

  void Reconfigure(std::uint32_t lanes) {
    std::uint64_t live = 0;
    for (const auto& s : shards) {
      live += s->live.load(std::memory_order_relaxed);
      processed_base += s->fired;
    }
    assert(live == 0 && "SetVirtualLanes requires an idle engine");
    (void)live;
    TeardownWorkers();
    virtual_lanes = std::max<std::uint32_t>(1, lanes);
    shard_count = std::min(std::max<std::uint32_t>(1, config.lanes),
                           virtual_lanes);
    if (shard_count > 255) shard_count = 255;  // EventId shard byte
    shards.clear();
    shards.reserve(shard_count);
    for (std::uint32_t i = 0; i < shard_count; ++i) {
      shards.push_back(std::make_unique<Shard>());
    }
    lane_seq.assign(virtual_lanes, LaneSeq{});
  }
};

Engine::Engine(EngineConfig config) : impl_(std::make_unique<Impl>()) {
  impl_->config = config;
  impl_->lookahead = std::max<PicoTime>(1, config.lookahead_ps);
  impl_->Reconfigure(1);
}

Engine::~Engine() = default;

PicoTime Engine::Now() const noexcept { return impl_->ContextNow(); }

EventId Engine::ScheduleAt(PicoTime when, Callback cb, const char* tag) {
  const std::uint32_t lane = impl_->InRun() ? g_tls.lane : 0;
  return impl_->ScheduleOn(lane, when, std::move(cb), tag);
}

EventId Engine::ScheduleAfter(PicoTime delay, Callback cb, const char* tag) {
  const std::uint32_t lane = impl_->InRun() ? g_tls.lane : 0;
  return impl_->ScheduleOn(lane, impl_->ContextNow() + delay, std::move(cb),
                           tag);
}

EventId Engine::ScheduleAtOn(std::uint32_t lane, PicoTime when, Callback cb,
                             const char* tag) {
  return impl_->ScheduleOn(lane, when, std::move(cb), tag);
}

EventId Engine::ScheduleAfterOn(std::uint32_t lane, PicoTime delay,
                                Callback cb, const char* tag) {
  return impl_->ScheduleOn(lane, impl_->ContextNow() + delay, std::move(cb),
                           tag);
}

bool Engine::Cancel(EventId id) { return impl_->CancelId(id); }

void Engine::Run() {
  if (impl_->shard_count > 1) {
    impl_->RunLaned(Impl::Mode::kRun, 0, nullptr);
  } else {
    impl_->RunScalar();
  }
}

void Engine::RunUntil(PicoTime deadline) {
  if (impl_->shard_count > 1) {
    impl_->RunLaned(Impl::Mode::kUntil, deadline, nullptr);
  } else {
    impl_->RunUntilScalar(deadline);
  }
}

bool Engine::RunUntilCondition(const std::function<bool()>& done) {
  if (impl_->shard_count > 1) {
    return impl_->RunLaned(Impl::Mode::kCondition, 0, &done);
  }
  return impl_->RunConditionScalar(done);
}

void Engine::Stop() noexcept {
  impl_->stop.store(true, std::memory_order_relaxed);
}

std::size_t Engine::PendingEvents() const noexcept {
  std::uint64_t live = 0;
  for (const auto& s : impl_->shards) {
    live += s->live.load(std::memory_order_relaxed);
  }
  return static_cast<std::size_t>(live);
}

std::uint64_t Engine::EventsProcessed() const noexcept {
  std::uint64_t fired = impl_->processed_base;
  for (const auto& s : impl_->shards) fired += s->fired;
  return fired;
}

void Engine::SetEventHook(std::function<void(PicoTime, const char*)> hook) {
  impl_->hook = std::move(hook);
}

void Engine::SetVirtualLanes(std::uint32_t lanes) {
  impl_->Reconfigure(lanes);
}

void Engine::SetLookahead(PicoTime lookahead_ps) {
  impl_->lookahead = std::max<PicoTime>(1, lookahead_ps);
}

std::uint32_t Engine::VirtualLanes() const noexcept {
  return impl_->virtual_lanes;
}

std::uint32_t Engine::ExecutorShards() const noexcept {
  return impl_->shard_count;
}

PicoTime Engine::Lookahead() const noexcept { return impl_->lookahead; }

std::uint32_t Engine::CurrentLane() const noexcept {
  return impl_->InRun() ? g_tls.lane : 0;
}

std::size_t Engine::AllocatedEventSlots() const noexcept {
  std::size_t slots = 0;
  for (const auto& s : impl_->shards) {
    slots += static_cast<std::size_t>(
                 s->chunk_count.load(std::memory_order_relaxed)) *
             kChunkSize;
  }
  return slots;
}

}  // namespace twochains::sim
