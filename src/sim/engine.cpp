#include "sim/engine.hpp"

#include <algorithm>

namespace twochains::sim {

EventId Engine::ScheduleAt(PicoTime when, Callback cb, std::string tag) {
  const EventId id = next_id_++;
  queue_.push(Event{std::max(when, now_), next_seq_++, id, std::move(cb),
                    std::move(tag)});
  pending_.insert(id);
  ++live_events_;
  return id;
}

bool Engine::Cancel(EventId id) {
  // Events stay in the priority queue; cancellation is recorded and checked
  // at pop time. The cancelled list is expected to stay small (flow-control
  // timeouts that usually fire). An event that already fired (or was never
  // scheduled) is not pending, so cancelling it is a no-op returning false —
  // without this check a stale id would corrupt the live-event count.
  if (pending_.erase(id) == 0) return false;
  cancelled_.push_back(id);
  if (live_events_ > 0) --live_events_;
  return true;
}

bool Engine::Step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    const auto it = std::find(cancelled_.begin(), cancelled_.end(), ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;  // skip cancelled event, try next
    }
    pending_.erase(ev.id);
    now_ = ev.when;
    --live_events_;
    ++processed_;
    if (hook_) hook_(now_, ev.tag);
    ev.cb();
    return true;
  }
  return false;
}

void Engine::Run() {
  stopped_ = false;
  while (!stopped_ && Step()) {
  }
}

void Engine::RunUntil(PicoTime deadline) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.top().when <= deadline) {
    if (!Step()) break;
  }
  // Even with no events at/below the deadline, time advances to it so
  // callers can measure elapsed windows.
  now_ = std::max(now_, deadline);
}

bool Engine::RunUntilCondition(const std::function<bool()>& done) {
  stopped_ = false;
  if (done()) return true;
  while (!stopped_ && Step()) {
    if (done()) return true;
  }
  return done();
}

}  // namespace twochains::sim
