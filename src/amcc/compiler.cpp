#include "amcc/compiler.hpp"

#include "amcc/codegen.hpp"
#include "amcc/parser.hpp"
#include "common/strfmt.hpp"
#include "jamvm/assembler.hpp"

namespace twochains::amcc {

std::string Type::ToString() const {
  std::string s;
  switch (base) {
    case BaseType::kVoid: s = "void"; break;
    case BaseType::kI8: s = "char"; break;
    case BaseType::kI16: s = "short"; break;
    case BaseType::kI32: s = "int"; break;
    case BaseType::kI64: s = "long"; break;
    case BaseType::kU8: s = "unsigned char"; break;
    case BaseType::kU16: s = "unsigned short"; break;
    case BaseType::kU32: s = "unsigned int"; break;
    case BaseType::kU64: s = "unsigned long"; break;
  }
  for (unsigned i = 0; i < pointer_depth; ++i) s += "*";
  return s;
}

StatusOr<CompileResult> Compile(std::string_view source,
                                const std::string& unit_name) {
  TC_ASSIGN_OR_RETURN(const Unit unit, Parse(source, unit_name));
  TC_ASSIGN_OR_RETURN(std::string asm_text, GenerateAsm(unit));
  auto object = vm::Assemble(asm_text, unit_name);
  if (!object.ok()) {
    // An assembler rejection of generated code is a compiler bug; surface
    // the assembly to make it debuggable.
    return Internal(StrFormat("generated assembly failed to assemble: %s\n%s",
                              object.status().message().c_str(),
                              asm_text.c_str()));
  }
  CompileResult result;
  result.object = std::move(object).value();
  result.asm_text = std::move(asm_text);
  return result;
}

}  // namespace twochains::amcc
