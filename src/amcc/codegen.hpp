// Code generation: AMC AST -> jam assembly text.
//
// The generator is deliberately simple and predictable (this is a
// reproduction toolchain, not an optimizing compiler): expression values
// live in t0, binary operands are protected across sub-expression
// evaluation by pushing to the machine stack (with a leaf-operand fast path
// that skips the push/pop), and every local variable has a fixed stack
// slot. What matters for the experiments is preserved: deterministic code
// bytes, PC-relative local data access, and *all* external references
// routed through GOT loads (`ldg`) so the linker/rewriter can rebind them
// — the -fPIC -fno-plt contract of the paper's toolchain.
#pragma once

#include <string>

#include "amcc/ast.hpp"
#include "common/status.hpp"

namespace twochains::amcc {

/// Generates assembly for a parsed unit.
StatusOr<std::string> GenerateAsm(const Unit& unit);

}  // namespace twochains::amcc
